// trace_summarize: turn a Chrome trace-event JSON produced by the obs
// tracer into per-layer latency/throughput rollups.
//
//   trace_summarize trace.json [--json out.json]
//
// Output: one row per (track, event name) with event count and, for "X"
// spans, total/mean/min/max duration (sim picoseconds); "C" counter tracks
// report sample count and the last value. With --json the same rollup is
// also written as machine-readable JSON.
//
// The parser handles exactly the tracer's own output format — one event
// object per line, integer fields — which keeps it dependency-free. It
// exits nonzero on a file that yields no events (wrong file, truncated
// write), so CI smoke runs fail loudly.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

struct Rollup {
  char phase = '?';
  std::uint64_t count = 0;
  std::int64_t dur_total = 0;
  std::int64_t dur_min = 0;
  std::int64_t dur_max = 0;
  std::int64_t last_value = 0;
  std::int64_t first_ts = 0;
  std::int64_t last_ts = 0;
};

/// Extract the string value of `"key":"..."` from a JSON object line.
bool find_str(const std::string& line, const char* key, std::string& out) {
  const std::string pat = std::string("\"") + key + "\":\"";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return false;
  const std::size_t start = at + pat.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return false;
  out = line.substr(start, end - start);
  return true;
}

/// Extract the integer value of `"key":123` from a JSON object line.
bool find_int(const std::string& line, const char* key, std::int64_t& out) {
  const std::string pat = std::string("\"") + key + "\":";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return false;
  out = std::strtoll(line.c_str() + at + pat.size(), nullptr, 10);
  return true;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* in_path = nullptr;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) != 0) {
      in_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: trace_summarize trace.json [--json out]\n");
      return 2;
    }
  }
  if (in_path == nullptr) {
    std::fprintf(stderr, "usage: trace_summarize trace.json [--json out]\n");
    return 2;
  }

  std::FILE* f = std::fopen(in_path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace_summarize: cannot open %s\n", in_path);
    return 1;
  }

  // tid -> track name (from the "M" thread_name metadata records).
  std::map<std::int64_t, std::string> tracks;
  // (track name, event name) -> rollup.
  std::map<std::pair<std::string, std::string>, Rollup> rollups;
  std::int64_t ts_lo = 0, ts_hi = 0;
  bool any_ts = false;

  std::string line;
  char buf[1 << 16];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line.assign(buf);
    std::string ph;
    if (!find_str(line, "ph", ph) || ph.empty()) continue;
    std::int64_t tid = 0;
    find_int(line, "tid", tid);
    std::string name;
    if (ph == "M") {
      // {"ph":"M",...,"args":{"name":"transport"}} — the args name is the
      // second "name" key; find_str grabs the first ("thread_name"), so
      // search past it.
      const std::size_t args = line.find("\"args\"");
      if (args != std::string::npos) {
        std::string tname;
        if (find_str(line.substr(args), "name", tname)) tracks[tid] = tname;
      }
      continue;
    }
    if (!find_str(line, "name", name)) continue;
    std::int64_t ts = 0;
    find_int(line, "ts", ts);
    if (!any_ts || ts < ts_lo) ts_lo = ts;
    if (!any_ts || ts > ts_hi) ts_hi = ts;
    any_ts = true;

    const std::string track =
        tracks.count(tid) != 0 ? tracks[tid] : std::to_string(tid);
    Rollup& r = rollups[{track, name}];
    r.phase = ph[0];
    if (r.count == 0) r.first_ts = ts;
    r.last_ts = ts;
    ++r.count;
    if (ph == "X") {
      std::int64_t dur = 0;
      find_int(line, "dur", dur);
      r.dur_total += dur;
      if (r.count == 1 || dur < r.dur_min) r.dur_min = dur;
      if (dur > r.dur_max) r.dur_max = dur;
      if (ts + dur > ts_hi) ts_hi = ts + dur;  // spans extend the sim window
    } else if (ph == "C") {
      std::int64_t v = 0;
      find_int(line, "value", v);
      r.last_value = v;
    }
  }
  std::fclose(f);

  if (rollups.empty()) {
    std::fprintf(stderr, "trace_summarize: no trace events found in %s\n",
                 in_path);
    return 1;
  }

  const double span_us = any_ts ? static_cast<double>(ts_hi - ts_lo) / 1e6
                                : 0.0;
  std::printf("trace: %s  (%.3f us of sim time, %zu series)\n", in_path,
              span_us, rollups.size());
  std::printf("%-12s %-28s %2s %10s %14s %14s %14s %14s\n", "track", "event",
              "ph", "count", "total_ps", "mean_ps", "min_ps", "max_ps");
  for (const auto& [key, r] : rollups) {
    if (r.phase == 'X') {
      std::printf("%-12s %-28s %2c %10llu %14lld %14lld %14lld %14lld\n",
                  key.first.c_str(), key.second.c_str(), r.phase,
                  static_cast<unsigned long long>(r.count),
                  static_cast<long long>(r.dur_total),
                  static_cast<long long>(r.dur_total /
                                         static_cast<std::int64_t>(r.count)),
                  static_cast<long long>(r.dur_min),
                  static_cast<long long>(r.dur_max));
    } else if (r.phase == 'C') {
      std::printf("%-12s %-28s %2c %10llu %14s last=%-14lld\n",
                  key.first.c_str(), key.second.c_str(), r.phase,
                  static_cast<unsigned long long>(r.count), "-",
                  static_cast<long long>(r.last_value));
    } else {
      // Instants: count plus rate over the event's own active window.
      const double window_s =
          static_cast<double>(r.last_ts - r.first_ts) / 1e12;
      const double rate = window_s > 0.0
                              ? static_cast<double>(r.count) / window_s
                              : 0.0;
      std::printf("%-12s %-28s %2c %10llu %14s rate=%.0f/s\n",
                  key.first.c_str(), key.second.c_str(), r.phase,
                  static_cast<unsigned long long>(r.count), "-", rate);
    }
  }

  // Hybrid fidelity rollup: "fluid_epoch" / "packet_epoch" spans are the
  // HybridDriver's mode windows, summed across fabric regions — so the
  // totals are region-time, and the percentage is fluid's share of total
  // region-time (each region contributes its whole lifetime to exactly
  // one of the two buckets at any instant).
  std::int64_t fluid_ps = 0;
  std::int64_t packet_ps = 0;
  std::uint64_t fluid_epochs = 0;
  for (const auto& [key, r] : rollups) {
    if (key.second == "fluid_epoch") {
      fluid_ps += r.dur_total;
      fluid_epochs += r.count;
    } else if (key.second == "packet_epoch") {
      packet_ps += r.dur_total;
    }
  }
  double fluid_pct = 0.0;
  if (fluid_epochs > 0 || packet_ps > 0) {
    const std::int64_t mode_ps = fluid_ps + packet_ps;
    fluid_pct = mode_ps > 0 ? 100.0 * static_cast<double>(fluid_ps) /
                                  static_cast<double>(mode_ps)
                            : 0.0;
    std::printf(
        "[fluid] %llu fluid epochs, %lld ps region-time fast-forwarded "
        "(%.1f%% of %lld ps region-time; sim span %lld ps)\n",
        static_cast<unsigned long long>(fluid_epochs),
        static_cast<long long>(fluid_ps), fluid_pct,
        static_cast<long long>(mode_ps),
        static_cast<long long>(ts_hi - ts_lo));
  }

  if (json_path != nullptr) {
    std::FILE* out = std::fopen(json_path, "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "trace_summarize: cannot write %s\n", json_path);
      return 1;
    }
    std::fprintf(out, "{\n  \"trace\": \"%s\",\n  \"series\": [",
                 json_escape(in_path).c_str());
    bool first = true;
    for (const auto& [key, r] : rollups) {
      std::fprintf(
          out,
          "%s\n    {\"track\": \"%s\", \"event\": \"%s\", \"ph\": \"%c\", "
          "\"count\": %llu, \"dur_total_ps\": %lld, \"dur_min_ps\": %lld, "
          "\"dur_max_ps\": %lld, \"last_value\": %lld}",
          first ? "" : ",", json_escape(key.first).c_str(),
          json_escape(key.second).c_str(), r.phase,
          static_cast<unsigned long long>(r.count),
          static_cast<long long>(r.dur_total),
          static_cast<long long>(r.dur_min),
          static_cast<long long>(r.dur_max),
          static_cast<long long>(r.last_value));
      first = false;
    }
    std::fprintf(out, "\n  ],\n  \"fluid_epochs\": %llu, \"fluid_ps\": %lld, "
                      "\"fluid_pct\": %.2f\n}\n",
                 static_cast<unsigned long long>(fluid_epochs),
                 static_cast<long long>(fluid_ps), fluid_pct);
    std::fclose(out);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
