// stellarlab — configurable experiment driver for the Stellar simulation.
//
// Run custom what-if experiments without writing code:
//
//   stellarlab --collective allreduce --algo obs --paths 128 \
//              --segments 2 --hosts 16 --aggs 16 --fabric-gbps 200 \
//              --data-mib 32 --ranks 16 --loss 0.01 --loss-agg 3
//
// Prints completion time, bus bandwidth, retransmits and ToR queue stats —
// the same metrics the figure benches report.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>

#include "collective/allreduce.h"
#include "collective/collectives.h"
#include "collective/traffic.h"
#include "common/stats.h"
#include "workload/placement.h"

using namespace stellar;

namespace {

struct Options {
  std::uint32_t segments = 2;
  std::uint32_t hosts = 16;
  std::uint32_t aggs = 16;
  double host_gbps = 200;
  double fabric_gbps = 200;
  std::string collective = "allreduce";  // allreduce|reducescatter|allgather|
                                         // alltoall|permutation
  std::string algo = "obs";
  std::uint16_t paths = 128;
  std::uint32_t ranks = 16;
  double data_mib = 32;
  std::uint32_t iterations = 3;
  double loss = 0.0;
  std::int64_t loss_agg = -1;  // which uplink takes the loss (-1: none)
  std::string placement = "random";  // reranked|random
  double rto_us = 250;
  bool per_path_cc = false;
  std::string cc = "window";  // window|swift
};

MultipathAlgo parse_algo(const std::string& name) {
  if (name == "single") return MultipathAlgo::kSinglePath;
  if (name == "rr") return MultipathAlgo::kRoundRobin;
  if (name == "obs") return MultipathAlgo::kObs;
  if (name == "dwrr") return MultipathAlgo::kDwrr;
  if (name == "bestrtt") return MultipathAlgo::kBestRtt;
  if (name == "mprdma") return MultipathAlgo::kMprdmaLike;
  if (name == "flowlet") return MultipathAlgo::kFlowlet;
  std::fprintf(stderr, "unknown --algo %s\n", name.c_str());
  std::exit(2);
}

[[noreturn]] void usage() {
  std::puts(
      "usage: stellarlab [options]\n"
      "  --collective allreduce|reducescatter|allgather|alltoall|permutation\n"
      "  --algo single|rr|obs|dwrr|bestrtt|mprdma|flowlet   (default obs)\n"
      "  --paths N            paths per connection (default 128)\n"
      "  --ranks N            collective world size (default 16)\n"
      "  --data-mib M         data per collective (default 32)\n"
      "  --iterations N       measured iterations (default 3)\n"
      "  --segments/--hosts/--aggs N   fabric geometry (2/16/16)\n"
      "  --host-gbps/--fabric-gbps G   link rates (200/200)\n"
      "  --loss P --loss-agg K    drop probability on ToR uplink K\n"
      "  --placement reranked|random   rank placement (random)\n"
      "  --rto-us N           retransmission timeout (250)\n"
      "  --per-path-cc        per-path CC contexts instead of shared\n"
      "  --cc window|swift    congestion control algorithm (window)");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--segments") opt.segments = std::atoi(need(i));
    else if (a == "--hosts") opt.hosts = std::atoi(need(i));
    else if (a == "--aggs") opt.aggs = std::atoi(need(i));
    else if (a == "--host-gbps") opt.host_gbps = std::atof(need(i));
    else if (a == "--fabric-gbps") opt.fabric_gbps = std::atof(need(i));
    else if (a == "--collective") opt.collective = need(i);
    else if (a == "--algo") opt.algo = need(i);
    else if (a == "--paths") opt.paths = std::atoi(need(i));
    else if (a == "--ranks") opt.ranks = std::atoi(need(i));
    else if (a == "--data-mib") opt.data_mib = std::atof(need(i));
    else if (a == "--iterations") opt.iterations = std::atoi(need(i));
    else if (a == "--loss") opt.loss = std::atof(need(i));
    else if (a == "--loss-agg") opt.loss_agg = std::atoi(need(i));
    else if (a == "--placement") opt.placement = need(i);
    else if (a == "--rto-us") opt.rto_us = std::atof(need(i));
    else if (a == "--per-path-cc") opt.per_path_cc = true;
    else if (a == "--cc") opt.cc = need(i);
    else usage();
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  Simulator sim;
  FabricConfig fc;
  fc.segments = opt.segments;
  fc.hosts_per_segment = opt.hosts;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = opt.aggs;
  fc.host_link.bandwidth = Bandwidth::gbps(opt.host_gbps);
  fc.fabric_link.bandwidth = Bandwidth::gbps(opt.fabric_gbps);
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);

  if (opt.loss > 0 && opt.loss_agg >= 0) {
    fabric.tor_uplink(0, 0, 0, static_cast<std::uint32_t>(opt.loss_agg))
        .set_drop_probability(opt.loss);
  }

  TransportConfig t;
  t.algo = parse_algo(opt.algo);
  t.num_paths = opt.paths;
  t.rto = SimTime::nanos(static_cast<std::int64_t>(opt.rto_us * 1000));
  t.per_path_cc = opt.per_path_cc;
  t.cc_algo = opt.cc == "swift" ? CcAlgo::kSwiftDelay : CcAlgo::kWindowEcnRtt;

  const PlacementPolicy policy = opt.placement == "reranked"
                                     ? PlacementPolicy::kReranked
                                     : PlacementPolicy::kRandomRanking;
  auto ranks = place_job(fabric, opt.ranks, 0, policy);
  const auto data_bytes =
      static_cast<std::uint64_t>(opt.data_mib * 1024 * 1024);

  std::printf("stellarlab: %s over %s/%u, %u ranks (%s placement), %.0f MiB\n",
              opt.collective.c_str(), multipath_algo_name(t.algo), t.num_paths,
              opt.ranks, placement_policy_name(policy), opt.data_mib);

  RunningStats bus_bw;
  std::uint64_t retx = 0;

  auto run_iterations = [&](auto& task, auto bw_of) {
    std::uint32_t measured = 0;
    std::function<void()> chain = [&] {
      bus_bw.add(bw_of(task));
      if (++measured < opt.iterations) task.start(chain);
    };
    task.start(chain);
    sim.run_until(SimTime::seconds(2.0));
    if (measured < opt.iterations) {
      std::printf("WARNING: only %u/%u iterations completed by the 2 s "
                  "horizon\n", measured, opt.iterations);
    }
  };

  if (opt.collective == "allreduce") {
    AllReduceConfig cfg;
    cfg.data_bytes = data_bytes;
    cfg.transport = t;
    RingAllReduce task(fleet, ranks, cfg);
    run_iterations(task, [](RingAllReduce& a) { return a.bus_bandwidth_gbps(); });
    retx = task.total_retransmits();
  } else if (opt.collective == "reducescatter" ||
             opt.collective == "allgather") {
    CollectiveConfig cfg;
    cfg.data_bytes = data_bytes;
    cfg.transport = t;
    RingReduceScatter task(fleet, ranks, cfg);
    run_iterations(task,
                   [](RingCollective& c) { return c.bus_bandwidth_gbps(); });
  } else if (opt.collective == "alltoall") {
    CollectiveConfig cfg;
    cfg.data_bytes = data_bytes;
    cfg.transport = t;
    AllToAll task(fleet, ranks, cfg);
    run_iterations(task, [](AllToAll& a) { return a.algo_bandwidth_gbps(); });
  } else if (opt.collective == "permutation") {
    PermutationConfig cfg;
    cfg.message_bytes = data_bytes;
    cfg.transport = t;
    PermutationTraffic traffic(fleet, ranks, {}, cfg);
    traffic.start();
    sim.run_until(SimTime::millis(1));
    fabric.reset_stats();
    const SimTime window = SimTime::millis(4);
    const std::uint64_t before = traffic.completed_bytes();
    sim.run_until(sim.now() + window);
    const std::uint64_t delivered = traffic.completed_bytes() - before;
    bus_bw.add(static_cast<double>(delivered) * 8 / window.sec() / 1e9 /
               ranks.size());
    retx = traffic.total_retransmits();
    traffic.stop();
  } else {
    usage();
  }

  RunningStats queue_max;
  for (NetLink* l : fabric.all_tor_uplinks()) {
    queue_max.add(static_cast<double>(l->max_queue_bytes()) / 1024.0);
  }

  std::printf("  bandwidth: mean %.1f Gbps (min %.1f, max %.1f over %llu "
              "iterations)\n",
              bus_bw.mean(), bus_bw.min(), bus_bw.max(),
              static_cast<unsigned long long>(bus_bw.count()));
  std::printf("  retransmits: %llu\n", static_cast<unsigned long long>(retx));
  std::printf("  ToR uplink max queue: mean %.1f KiB, worst %.1f KiB\n",
              queue_max.mean(), queue_max.max());
  std::printf("  simulated time: %s, events: %llu\n",
              sim.now().to_string().c_str(),
              static_cast<unsigned long long>(sim.executed_events()));
  return 0;
}
