#!/usr/bin/env bash
# Full CI gate for the repo. Runs, in order:
#   1. default build (STELLAR_AUDIT=ON) + the complete test suite
#   2. the audit-labelled invariant tests on their own (fast signal)
#   3. the fault-labelled fault-injection/recovery tests on their own
#   4. the sim-labelled engine determinism/stress tests on their own
#   5. the obs-labelled observability golden/property tests on their own
#   6. the migrate-labelled control-plane robustness tests (snapshots,
#      hot-upgrade, live migration, chaos soak) on their own, plus an
#      explicit chaos-soak smoke (fixed seed, audits ON) and a migration
#      bench smoke run twice to prove BENCH_migration.json is
#      byte-deterministic
#   7. a fig09 mini trace dump + trace_summarize smoke (the tracer's
#      byte-determinism and the summarizer's parser, end to end)
#   8. ASan+UBSan build + the complete test suite + the fault, sim, obs
#      and migrate suites
#   9. clang-tidy over src/ (skipped gracefully when not installed)
#  10. STELLAR_AUDIT=OFF + STELLAR_TRACE=OFF build of the bench binaries —
#      proves both instrumentation layers compile out of hot paths
#      entirely — plus a sim_core smoke run (wheel-vs-heap cross-check at
#      reduced scale)
#
#   tools/ci_checks.sh [--skip-san]
#
# --skip-san drops step 3 (the sanitizer rebuild roughly doubles the wall
# time; the default gate runs everything).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
jobs="$(nproc 2> /dev/null || echo 2)"

skip_san=0
for arg in "$@"; do
  case "$arg" in
    --skip-san) skip_san=1 ;;
    *)
      echo "ci_checks: unknown argument '$arg'" >&2
      exit 2
      ;;
  esac
done

step() { printf '\n=== ci_checks: %s ===\n' "$*"; }

step "default build (STELLAR_AUDIT=ON)"
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j"$jobs"

step "full test suite"
ctest --test-dir build --output-on-failure -j"$jobs"

step "invariant audit suite (ctest -L audit)"
ctest --test-dir build --output-on-failure -L audit

step "fault injection suite (ctest -L fault)"
ctest --test-dir build --output-on-failure -L fault

step "engine determinism/stress suite (ctest -L sim)"
ctest --test-dir build --output-on-failure -L sim

step "observability golden/property suite (ctest -L obs)"
ctest --test-dir build --output-on-failure -L obs

step "control-plane robustness suite (ctest -L migrate)"
ctest --test-dir build --output-on-failure -L migrate

step "chaos-soak smoke (fixed seed 0xC0FFEE, >=100 events, audits ON)"
build/tests/stellar_migrate_tests \
  --gtest_filter='ChaosSoakTest.SurvivesHundredEventPlanWithAuditsOn'

step "migration bench smoke (BENCH_migration.json byte-determinism)"
mig_smoke_dir="$(mktemp -d)"
(cd "$mig_smoke_dir" &&
  mkdir run1 run2 &&
  (cd run1 && "$repo_root/build/bench/fig_migration" > fig_migration.log) &&
  (cd run2 && "$repo_root/build/bench/fig_migration" > fig_migration.log) &&
  cmp run1/BENCH_migration.json run2/BENCH_migration.json &&
  head -n 3 run1/BENCH_migration.json)
rm -rf "$mig_smoke_dir"

step "sim_core engine smoke run, default build (cross-check only; audits on)"
build/bench/sim_core 0.05

step "fig09 mini trace + trace_summarize smoke"
obs_smoke_dir="$(mktemp -d)"
(cd "$obs_smoke_dir" &&
  "$repo_root/build/bench/fig09_permutation" 0.02 --trace=mini_trace.json \
    --trace-sample=256 > fig09_smoke.log &&
  "$repo_root/build/tools/trace_summarize" mini_trace.json | head -n 5)
rm -rf "$obs_smoke_dir"

if [ "$skip_san" -eq 0 ]; then
  step "ASan+UBSan build + full test suite"
  cmake -B build-san -S . -DSTELLAR_SANITIZE=address,undefined
  cmake --build build-san -j"$jobs"
  ctest --test-dir build-san --output-on-failure -j"$jobs"
  step "fault injection suite under sanitizers (ctest -L fault)"
  ctest --test-dir build-san --output-on-failure -L fault
  step "engine determinism/stress suite under sanitizers (ctest -L sim)"
  ctest --test-dir build-san --output-on-failure -L sim
  step "observability suite under sanitizers (ctest -L obs)"
  ctest --test-dir build-san --output-on-failure -L obs
  step "control-plane robustness suite under sanitizers (ctest -L migrate)"
  ctest --test-dir build-san --output-on-failure -L migrate
else
  step "sanitizer pass skipped (--skip-san)"
fi

step "clang-tidy"
tools/run_tidy.sh "$repo_root/build"

step "bench build with audits + tracing compiled out (STELLAR_AUDIT=OFF, STELLAR_TRACE=OFF)"
cmake -B build-bench -S . -DSTELLAR_AUDIT=OFF -DSTELLAR_TRACE=OFF
cmake --build build-bench -j"$jobs"

step "sim_core engine smoke run (wheel vs heap cross-check)"
build-bench/bench/sim_core 0.05

echo
echo "ci_checks: all gates passed"
