#!/usr/bin/env bash
# Full CI gate for the repo. Runs, in order:
#   0. stellar-lint determinism/layering sweep (fixture self-tests + the
#      full tree; tools/lint/stellar_lint.py, dependency-free python)
#   1. default build (STELLAR_AUDIT=ON) + the complete test suite
#   2. the audit-labelled invariant tests on their own (fast signal)
#   3. the fault-labelled fault-injection/recovery tests on their own
#   4. the sim-labelled engine determinism/stress tests, run once per
#      engine mode (STELLAR_TEST_THREADS=1 and =4 — the threaded tests
#      compare the parallel engine against that thread count)
#   5. the obs-labelled observability golden/property tests on their own
#   6. the migrate-labelled control-plane robustness tests (snapshots,
#      hot-upgrade, live migration, chaos soak) on their own, plus an
#      explicit chaos-soak smoke (fixed seed, audits ON) and a migration
#      bench smoke run twice to prove BENCH_migration.json is
#      byte-deterministic
#   6b. the tenant-labelled multi-tenant isolation tests (vSwitch QoS,
#      budget admission, kill_tenant reclaim) on their own, plus the
#      adversarial-tenant bench run twice to prove BENCH_tenants.json is
#      byte-deterministic
#   6c. the hybrid-labelled fidelity tests (fluid-solver properties, the
#      golden-equivalence harness, mode-transition fault regressions), plus
#      the fig09-mini packet-vs-hybrid tolerance gate
#      (tools/check_hybrid_equivalence.py), a run-twice hybrid BENCH JSON
#      byte-determinism check, and a hybrid trace smoke asserting
#      trace_summarize reports fluid fast-forward spans
#   7. a fig09 mini trace dump + trace_summarize smoke (the tracer's
#      byte-determinism and the summarizer's parser, end to end)
#   7b. the parallel-engine determinism gate: fig09-mini at --threads=1
#      vs --threads=4 — stdout (minus wall-clock [engine] lines), the
#      BENCH JSON, the metrics snapshot and the trace must all be
#      byte-identical between engine modes
#   8. ASan+UBSan build + the complete test suite + the fault, sim, obs,
#      migrate and tenant suites
#   9. TSan build (-DSTELLAR_SANITIZE=thread) + the threaded shard-safety
#      smoke, with a negative control: a deliberately racy demo binary must
#      FAIL under TSan, proving the wiring detects real races
#  10. clang thread-safety analysis build of the src/ libraries with
#      -Werror=thread-safety (skipped gracefully when clang is absent)
#  11. clang-tidy over src/ (skipped gracefully when not installed)
#  12. STELLAR_AUDIT=OFF + STELLAR_TRACE=OFF build of the bench binaries —
#      proves both instrumentation layers compile out of hot paths
#      entirely — plus a sim_core smoke run (wheel-vs-heap cross-check at
#      reduced scale)
#
#   tools/ci_checks.sh [--skip-san] [--lint-only]
#
# --skip-san drops the sanitizer rebuilds (ASan+UBSan and TSan roughly
# double the wall time; the default gate runs everything).
# --lint-only runs only step 0 — the fast pre-commit path (< ~5 s).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
jobs="$(nproc 2> /dev/null || echo 2)"

skip_san=0
lint_only=0
for arg in "$@"; do
  case "$arg" in
    --skip-san) skip_san=1 ;;
    --lint-only) lint_only=1 ;;
    *)
      echo "ci_checks: unknown argument '$arg'" >&2
      exit 2
      ;;
  esac
done

step() { printf '\n=== ci_checks: %s ===\n' "$*"; }

step "stellar-lint fixture self-tests"
python3 tools/lint/stellar_lint.py --self-test

step "stellar-lint determinism/layering sweep (src/ + bench/)"
python3 tools/lint/stellar_lint.py

if [ "$lint_only" -eq 1 ]; then
  echo
  echo "ci_checks: lint gates passed (--lint-only)"
  exit 0
fi

step "default build (STELLAR_AUDIT=ON)"
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j"$jobs"

step "full test suite"
ctest --test-dir build --output-on-failure -j"$jobs"

step "invariant audit suite (ctest -L audit)"
ctest --test-dir build --output-on-failure -L audit

step "fault injection suite (ctest -L fault)"
ctest --test-dir build --output-on-failure -L fault

step "engine determinism/stress suite (ctest -L sim, both engine modes)"
STELLAR_TEST_THREADS=1 ctest --test-dir build --output-on-failure -L sim
STELLAR_TEST_THREADS=4 ctest --test-dir build --output-on-failure -L sim

step "observability golden/property suite (ctest -L obs)"
ctest --test-dir build --output-on-failure -L obs

step "control-plane robustness suite (ctest -L migrate)"
ctest --test-dir build --output-on-failure -L migrate

step "multi-tenant isolation suite (ctest -L tenant)"
ctest --test-dir build --output-on-failure -L tenant

step "tenant bench smoke (gates + BENCH_tenants.json byte-determinism)"
ten_smoke_dir="$(mktemp -d)"
(cd "$ten_smoke_dir" &&
  mkdir run1 run2 &&
  (cd run1 && "$repo_root/build/bench/fig_tenants" > fig_tenants.log) &&
  (cd run2 && "$repo_root/build/bench/fig_tenants" > fig_tenants.log) &&
  cmp run1/BENCH_tenants.json run2/BENCH_tenants.json &&
  head -n 3 run1/BENCH_tenants.json)
rm -rf "$ten_smoke_dir"

step "hybrid fidelity suite (ctest -L hybrid)"
ctest --test-dir build --output-on-failure -L hybrid

step "hybrid equivalence gate (fig09 mini: packet vs hybrid, run-twice determinism)"
hyb_dir="$(mktemp -d)"
(cd "$hyb_dir" &&
  mkdir packet hybrid1 hybrid2 &&
  (cd packet && "$repo_root/build/bench/fig09_permutation" 0.02 \
    --fidelity=packet > fig09.log) &&
  (cd hybrid1 && "$repo_root/build/bench/fig09_permutation" 0.02 \
    --fidelity=hybrid > fig09.log) &&
  (cd hybrid2 && "$repo_root/build/bench/fig09_permutation" 0.02 \
    --fidelity=hybrid > fig09.log) &&
  # Hybrid fidelity must be byte-deterministic run-to-run...
  cmp hybrid1/BENCH_fig09.json hybrid2/BENCH_fig09.json &&
  # ...and agree with packet fidelity per row within the declared tolerance
  # (docs/HYBRID.md; the mini scale uses a wider band than the unit tests
  # because its measurement window is only ~40 us of sim time).
  python3 "$repo_root/tools/check_hybrid_equivalence.py" \
    packet/BENCH_fig09.json hybrid1/BENCH_fig09.json --tol-pct 25)
rm -rf "$hyb_dir"

step "hybrid trace smoke (fluid-epoch spans visible to trace_summarize)"
hyb_trace_dir="$(mktemp -d)"
(cd "$hyb_trace_dir" &&
  "$repo_root/build/bench/fig09_permutation" 0.02 --fidelity=hybrid \
    --trace=hyb_trace.json --trace-sample=256 > fig09_hybrid.log &&
  "$repo_root/build/tools/trace_summarize" hyb_trace.json \
    | grep '^\[fluid\]')
rm -rf "$hyb_trace_dir"

step "chaos-soak smoke (fixed seed 0xC0FFEE, >=100 events, audits ON)"
build/tests/stellar_migrate_tests \
  --gtest_filter='ChaosSoakTest.SurvivesHundredEventPlanWithAuditsOn'

step "migration bench smoke (BENCH_migration.json byte-determinism)"
mig_smoke_dir="$(mktemp -d)"
(cd "$mig_smoke_dir" &&
  mkdir run1 run2 &&
  (cd run1 && "$repo_root/build/bench/fig_migration" > fig_migration.log) &&
  (cd run2 && "$repo_root/build/bench/fig_migration" > fig_migration.log) &&
  cmp run1/BENCH_migration.json run2/BENCH_migration.json &&
  head -n 3 run1/BENCH_migration.json)
rm -rf "$mig_smoke_dir"

step "sim_core engine smoke run, default build (cross-check only; audits on)"
build/bench/sim_core 0.05

step "fig09 mini trace + trace_summarize smoke"
obs_smoke_dir="$(mktemp -d)"
(cd "$obs_smoke_dir" &&
  "$repo_root/build/bench/fig09_permutation" 0.02 --trace=mini_trace.json \
    --trace-sample=256 > fig09_smoke.log &&
  "$repo_root/build/tools/trace_summarize" mini_trace.json | head -n 5)
rm -rf "$obs_smoke_dir"

step "parallel engine determinism (fig09 mini, --threads=1 vs --threads=4)"
par_det_dir="$(mktemp -d)"
(cd "$par_det_dir" &&
  mkdir t1 t4 &&
  (cd t1 && "$repo_root/build/bench/fig09_permutation" 0.02 --threads=1 \
    --trace=mini_trace.json --trace-sample=256 > fig09.log) &&
  (cd t4 && "$repo_root/build/bench/fig09_permutation" 0.02 --threads=4 \
    --trace=mini_trace.json --trace-sample=256 > fig09.log) &&
  # [engine] lines report wall-clock (and per-shard splits that exist
  # only when threaded); everything else must match byte-for-byte.
  diff <(grep -v '^\[engine\]' t1/fig09.log) \
       <(grep -v '^\[engine\]' t4/fig09.log) &&
  cmp t1/BENCH_fig09.json t4/BENCH_fig09.json &&
  cmp t1/BENCH_fig09_obs.json t4/BENCH_fig09_obs.json &&
  cmp t1/mini_trace.json t4/mini_trace.json &&
  echo "fig09 mini byte-identical across engine modes")
rm -rf "$par_det_dir"

if [ "$skip_san" -eq 0 ]; then
  step "ASan+UBSan build + full test suite"
  cmake -B build-san -S . -DSTELLAR_SANITIZE=address,undefined
  cmake --build build-san -j"$jobs"
  ctest --test-dir build-san --output-on-failure -j"$jobs"
  step "fault injection suite under sanitizers (ctest -L fault)"
  ctest --test-dir build-san --output-on-failure -L fault
  step "engine determinism/stress suite under sanitizers (ctest -L sim, both engine modes)"
  STELLAR_TEST_THREADS=1 ctest --test-dir build-san --output-on-failure -L sim
  STELLAR_TEST_THREADS=4 ctest --test-dir build-san --output-on-failure -L sim
  step "observability suite under sanitizers (ctest -L obs)"
  ctest --test-dir build-san --output-on-failure -L obs
  step "control-plane robustness suite under sanitizers (ctest -L migrate)"
  ctest --test-dir build-san --output-on-failure -L migrate
  step "multi-tenant isolation suite under sanitizers (ctest -L tenant)"
  ctest --test-dir build-san --output-on-failure -L tenant
  step "hybrid fidelity suite under sanitizers (ctest -L hybrid)"
  ctest --test-dir build-san --output-on-failure -L hybrid
else
  step "sanitizer pass skipped (--skip-san)"
fi

if [ "$skip_san" -eq 0 ]; then
  step "TSan build (-DSTELLAR_SANITIZE=thread) + threaded shard-safety smoke"
  cmake -B build-tsan -S . -DSTELLAR_SANITIZE=thread
  cmake --build build-tsan -j"$jobs" \
    --target stellar_tsan_smoke_tests stellar_tsan_race_demo
  build-tsan/tests/stellar_tsan_smoke_tests

  step "TSan negative control (racy demo binary must fail under TSan)"
  if build-tsan/tests/stellar_tsan_race_demo > /dev/null 2>&1; then
    echo "ci_checks: FATAL: tsan_race_demo ran clean under TSan —" >&2
    echo "the sanitizer wiring is not detecting races" >&2
    exit 1
  else
    echo "race demo failed under TSan as required (wiring verified)"
  fi
else
  step "TSan pass skipped (--skip-san)"
fi

step "clang thread-safety analysis (-Werror=thread-safety, src/ libraries)"
if command -v clang++ > /dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++
  cmake --build build-tsa -j"$jobs" --target \
    stellar_common stellar_check stellar_sim stellar_hybrid stellar_obs \
    stellar_memory stellar_pcie stellar_net stellar_rnic stellar_virt \
    stellar_core stellar_collective stellar_workload stellar_audit \
    stellar_fault
else
  echo "clang++ not installed; skipping thread-safety analysis build"
  echo "(the STELLAR_* annotations compile to nothing under gcc)"
fi

step "clang-tidy"
tools/run_tidy.sh "$repo_root/build"

step "bench build with audits + tracing compiled out (STELLAR_AUDIT=OFF, STELLAR_TRACE=OFF)"
cmake -B build-bench -S . -DSTELLAR_AUDIT=OFF -DSTELLAR_TRACE=OFF
cmake --build build-bench -j"$jobs"

step "sim_core engine smoke run (wheel vs heap cross-check)"
build-bench/bench/sim_core 0.05

echo
echo "ci_checks: all gates passed"
