#!/usr/bin/env bash
# Run clang-tidy over every source file in src/ using the repo's .clang-tidy
# configuration and the compile_commands.json of an existing build tree.
#
#   tools/run_tidy.sh [build-dir]      (default: build)
#
# Exits 0 when clang-tidy is unavailable (e.g. gcc-only containers) so CI
# sequences can include this unconditionally; exits non-zero on findings.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

tidy_bin=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" > /dev/null 2>&1; then
    tidy_bin="$candidate"
    break
  fi
done

if [ -z "$tidy_bin" ]; then
  echo "run_tidy: clang-tidy not installed; skipping (checks documented in .clang-tidy)" >&2
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_tidy: $build_dir/compile_commands.json missing;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

cd "$repo_root"
files=$(find src -name '*.cc' | sort)
echo "run_tidy: $tidy_bin over $(echo "$files" | wc -l) files"
# shellcheck disable=SC2086
if ! "$tidy_bin" -p "$build_dir" --quiet $files; then
  echo >&2
  echo "run_tidy: FAILED — clang-tidy reported findings (see above)." >&2
  echo "run_tidy: fix them or add a justified NOLINT(<check>) at the site." >&2
  exit 1
fi
echo "run_tidy: clean"
