#!/usr/bin/env python3
"""stellar-lint: determinism & layering static checks for the Stellar tree.

The simulator's core contract is bit-for-bit determinism: the same binary,
seed, and inputs must produce byte-identical traces, snapshots, and JSON
dumps on every run and every platform (docs/STATIC_ANALYSIS.md). Most
violations of that contract are *textually* recognizable — a wall-clock
read, an iteration over an unordered container feeding an emitter, a
platform-dependent float format — so this linter catches them in CI before
they become flaky-test archaeology.

Rules (each individually suppressible with `// stellar-lint: allow(<rule>)`
on the offending line or the line above):

  wall-clock            No wall-clock / libc-randomness calls outside the
                        whitelist (bench timing helpers, the seeded Rng).
                        time(), clock(), gettimeofday, std::chrono::*_clock,
                        rand(), random_device, srand.
  unordered-iter        No iteration over std::unordered_{map,set} members
                        inside deterministic emitters (to_json / snapshot /
                        audit / digest / ...) or loop bodies that schedule
                        or send — unordered iteration order is
                        implementation-defined and seed-dependent.
  std-function-hot-path No std::function in the simulation hot path
                        (src/sim, net/link, net/fabric): it heap-allocates
                        per capture and double-indirects per call. Use
                        InlineFunction (sim/inline_action.h).
  float-format          No float formatting ("%f/%e/%g", setprecision) in
                        src/ emitters: float text is locale/libc-dependent.
                        Serialize scaled integers (ps, ppm, bytes) instead.
  shard-shared          No mutable file-scope or static-storage state in the
                        shard-homed modules (src/sim, src/net, src/core): the
                        parallel engine (sim/parallel.h) runs shards on
                        concurrent workers, so a mutable static is a data
                        race *and* a determinism leak between shards.
                        const/constexpr and thread_local (shard-private by
                        construction) are exempt.
  layering              #includes must follow the declared module DAG below
                        (e.g. src/sim must not include src/net).

Usage:
  tools/lint/stellar_lint.py [--root DIR] [paths...]   # lint tree (default)
  tools/lint/stellar_lint.py --self-test               # run fixture tests

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Dependency-free by design (stdlib only): it must run in a bare container
and finish in seconds (< ~5 s over the full tree).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Module layering DAG: src/<module> -> set of src/<modules> it may include.
# Mirrors the architecture in DESIGN.md: common at the bottom, sim above it,
# device/network layers above that, core/fault/check orchestrating on top.
# Editing this table is an architecture decision — see docs/STATIC_ANALYSIS.md.
# --------------------------------------------------------------------------
LAYERING: dict[str, set[str]] = {
    "common": set(),
    # check is both the low-level CHECK macro (check.h -> common) and the
    # cross-layer invariant auditors (auditors.* walk every subsystem).
    "check": {"common", "core", "memory", "net", "rnic", "sim", "virt"},
    # sim -> net is the hybrid fidelity driver (sim/hybrid.* maps fluid
    # flows onto real ClosFabric links); the core engine (simulator.*,
    # parallel.*, fluid.*) stays net-free via the stellar_hybrid target.
    "sim": {"common", "check", "net"},
    "obs": {"common", "check", "sim"},
    "memory": {"common", "check"},
    "pcie": {"common", "check", "memory", "obs"},
    "net": {"common", "check", "sim", "obs"},
    "rnic": {"common", "check", "memory", "net", "obs", "pcie", "sim"},
    "virt": {"common", "check", "memory", "obs", "pcie", "rnic", "sim"},
    "collective": {"common", "check", "net", "obs", "rnic", "sim"},
    "workload": {"common", "check", "net", "sim"},
    "core": {"collective", "common", "check", "net", "obs", "pcie", "rnic",
             "sim", "virt", "workload", "memory"},
    "fault": {"common", "check", "net", "obs", "rnic", "sim", "virt",
              "memory", "pcie"},
}

# Files allowed to read wall clocks / libc randomness: the bench timing
# helpers (host-side wall time never feeds simulation state) and the seeded
# deterministic Rng implementation itself.
WALL_CLOCK_WHITELIST = {
    "bench/bench_util.h",
    "src/common/rng.h",
}

# std::function ban applies to the scheduling/delivery hot path only.
HOT_PATH_PREFIXES = ("src/sim/",)
HOT_PATH_FILES_RE = re.compile(r"^src/net/(link|fabric)\.(h|cc)$")

# Emitter context: function names whose output must be byte-deterministic.
EMITTER_RE = re.compile(
    r"to_json|to_table|to_string|write_json|save_state|save\b|snapshot"
    r"|digest|serialize|dump|summar|fingerprint|emit|audit"
)

SUPPRESS_RE = re.compile(r"//\s*stellar-lint:\s*allow\(([a-z0-9-]+)\)")

WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"),
     "std::chrono clock read"),
    (re.compile(r"(?<![\w.>:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0|&)"),
     "time() wall-clock read"),
    (re.compile(r"(?<![\w.>:])gettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.>:])clock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w.>:])(?:std::)?clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"(?<![\w.>:])(?:std::)?s?rand\s*\("), "libc rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
]

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;)]*?:\s*([^)]+)\)")
FUNC_DEF_RE = re.compile(
    r"^[^#/]*?(?:[\w:<>,~&*\s]+\s)?([a-zA-Z_]\w*)\s*\([^;]*$"
    r"|^[^#/]*?(?:[\w:<>,~&*\s]+\s)?([a-zA-Z_]\w*)\s*\([^;{]*\)"
    r"(?:\s*const)?(?:\s*\w+\([^)]*\))?\s*\{"
)

FLOAT_FMT_LITERAL_RE = re.compile(r'%[-+ #0-9.*]*[lL]*[efgEFG]')
FLOAT_FMT_STREAM_RE = re.compile(
    r"std::(setprecision|fixed|scientific|hexfloat|defaultfloat)\b")

STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")

# Modules whose state is homed on engine shards: mutable statics there are
# cross-shard shared state (sim/parallel.h runs shards concurrently).
SHARD_SHARED_PREFIXES = ("src/sim/", "src/net/", "src/core/")
SHARD_SHARED_EXEMPT_RE = re.compile(
    r"\b(thread_local|constexpr|constinit)\b|\bstatic_assert\b")
STATIC_KW_RE = re.compile(r"(?:^|[\s;{}(])static(?:\s|$)")
# Lines that cannot be a namespace-scope variable definition.
SHARD_DECL_SKIP_RE = re.compile(
    r"^\s*(?:[}#]|using\b|typedef\b|namespace\b|template\b|extern\b"
    r"|friend\b|class\b|struct\b|enum\b|return\b|public\s*:|private\s*:"
    r"|protected\s*:|case\b|default\s*:|goto\b|if\b|for\b|while\b|do\b"
    r"|switch\b|else\b|break\b|continue\b|delete\b|operator\b)")
NS_VAR_DEF_RE = re.compile(
    r"^(?:inline\s+)?[A-Za-z_][\w:]*(?:\s*[&*]+\s*|\s+)"
    r"[A-Za-z_][\w:]*\s*(?:=|\{|\[|;)")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')


def strip_template_args(s: str) -> str:
    """Blank balanced <...> groups so template commas/parens don't confuse
    the declaration heuristics."""
    prev = None
    while prev != s:
        prev = s
        s = re.sub(r"<[^<>]*>", "", s)
    return s


class NamespaceTracker:
    """Tracks whether the current line sits at namespace/file scope (every
    open brace on the stack belongs to a namespace). Heuristic like
    FunctionTracker: a brace is a namespace brace when the preceding
    non-terminated code text ends with `namespace [name]`."""

    def __init__(self) -> None:
        self.stack: list[bool] = []
        self.buf = ""

    def at_namespace_scope(self) -> bool:
        return all(self.stack)

    def feed(self, line: str) -> None:
        for c in line:
            if c == "{":
                is_ns = re.search(
                    r"\bnamespace(\s+[A-Za-z_][\w:]*)?\s*$", self.buf
                ) is not None
                self.stack.append(is_ns)
                self.buf = ""
            elif c == "}":
                if self.stack:
                    self.stack.pop()
                self.buf = ""
            elif c == ";":
                self.buf = ""
            else:
                self.buf += c


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class SourceFile:
    path: str      # repo-relative, forward slashes
    raw: list[str]       # original lines (comments intact, for suppressions)
    code: list[str]      # comments and string/char literals blanked out
    literals: list[str]  # comments blanked, string literals KEPT (for %f scan)


def strip_comments(text: str) -> tuple[str, str]:
    """Return (code, literals): code has comments AND string/char literals
    blanked; literals has only comments blanked. Newlines are preserved so
    line numbers survive."""
    code = []
    lit = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                code.append(" ")
                lit.append(" ")
                i += 1
                code.append(" ")
                lit.append(" ")
            elif c == "/" and nxt == "*":
                state = "block_comment"
                code.append(" ")
                lit.append(" ")
                i += 1
                code.append(" ")
                lit.append(" ")
            elif c == '"':
                state = "string"
                code.append(" ")
                lit.append(c)
            elif c == "'":
                state = "char"
                code.append(" ")
                lit.append(c)
            else:
                code.append(c)
                lit.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                code.append(c)
                lit.append(c)
            else:
                code.append(" ")
                lit.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                code.append(" ")
                lit.append(" ")
                i += 1
                code.append(" ")
                lit.append(" ")
            else:
                code.append(c if c == "\n" else " ")
                lit.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                code.append(" ")
                lit.append(c)
                if nxt:
                    code.append(" ")
                    lit.append(nxt)
                    i += 1
            elif c == '"':
                state = "code"
                code.append(" ")
                lit.append(c)
            else:
                code.append(" " if c != "\n" else c)
                lit.append(c)
        elif state == "char":
            if c == "\\":
                code.append(" ")
                lit.append(" ")
                if nxt:
                    code.append(" ")
                    lit.append(" ")
                    i += 1
            elif c == "'":
                state = "code"
                code.append(" ")
                lit.append(c)
            else:
                code.append(" " if c != "\n" else c)
                lit.append(" " if c != "\n" else c)
        i += 1
    return "".join(code), "".join(lit)


def load_file(root: str, rel: str) -> SourceFile:
    with open(os.path.join(root, rel), "r", encoding="utf-8",
              errors="replace") as f:
        text = f.read()
    code, lit = strip_comments(text)
    return SourceFile(path=rel, raw=text.split("\n"), code=code.split("\n"),
                      literals=lit.split("\n"))


def suppressed(sf: SourceFile, lineno: int, rule: str) -> bool:
    """True if line `lineno` (1-based), or the contiguous comment block
    immediately above it, carries an allow(<rule>) suppression."""
    if 1 <= lineno <= len(sf.raw):
        m = SUPPRESS_RE.search(sf.raw[lineno - 1])
        if m and m.group(1) == rule:
            return True
    ln = lineno - 1
    while ln >= 1:
        stripped = sf.raw[ln - 1].strip()
        m = SUPPRESS_RE.search(stripped)
        if m and m.group(1) == rule:
            return True
        # Keep walking up through the attached comment block (and the
        # declaration line the finding is part of, e.g. a wrapped `using`).
        if stripped.startswith("//") or (ln == lineno - 1 and stripped):
            ln -= 1
            continue
        break
    return False


class FunctionTracker:
    """Heuristic tracker for 'which function body is this line inside'.

    Treats `name(...) ... {` at depth 0/1 (namespace/class level) as a
    function definition and tracks brace depth. Good enough for a lint over
    a consistently-formatted tree; not a parser.
    """

    def __init__(self) -> None:
        self.depth = 0
        self.stack: list[tuple[int, str]] = []  # (depth at entry, name)
        self.pending: str | None = None

    def current(self) -> str:
        return self.stack[-1][1] if self.stack else ""

    def feed(self, line: str) -> None:
        # Remember the most recent plausible function name before a '{'.
        for m in re.finditer(r"([a-zA-Z_][\w:]*)\s*\(", line):
            name = m.group(1)
            if name in ("if", "for", "while", "switch", "return", "sizeof",
                        "catch", "static_cast", "reinterpret_cast",
                        "const_cast", "dynamic_cast", "alignof", "decltype"):
                continue
            self.pending = name.split("::")[-1]
        for c in line:
            if c == "{":
                if self.pending is not None:
                    self.stack.append((self.depth, self.pending))
                    self.pending = None
                self.depth += 1
            elif c == "}":
                self.depth -= 1
                if self.stack and self.depth <= self.stack[-1][0]:
                    self.stack.pop()
        if ";" in line:
            self.pending = None


@dataclass
class Linter:
    root: str
    findings: list[Finding] = field(default_factory=list)
    # member name -> declaring module, for unordered members referenced from
    # another module (the cross-layer auditors reach into friends' state).
    unordered_by_module: dict[str, set[str]] = field(default_factory=dict)
    unordered_global: set[str] = field(default_factory=set)

    def report(self, sf: SourceFile, lineno: int, rule: str,
               message: str) -> None:
        if not suppressed(sf, lineno, rule):
            self.findings.append(Finding(sf.path, lineno, rule, message))

    # -- pass 1: collect unordered-container member names ------------------

    def collect_unordered(self, sf: SourceFile) -> None:
        module = module_of(sf.path)
        names = self.unordered_by_module.setdefault(module, set())
        for line in sf.code:
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))

    # -- pass 2: per-file rules --------------------------------------------

    def lint_file(self, sf: SourceFile) -> None:
        self.rule_wall_clock(sf)
        self.rule_std_function(sf)
        self.rule_float_format(sf)
        self.rule_unordered_iter(sf)
        self.rule_shard_shared(sf)
        self.rule_layering(sf)

    def rule_wall_clock(self, sf: SourceFile) -> None:
        if sf.path in WALL_CLOCK_WHITELIST:
            return
        for i, line in enumerate(sf.code, start=1):
            for pat, what in WALL_CLOCK_PATTERNS:
                if pat.search(line):
                    self.report(
                        sf, i, "wall-clock",
                        f"{what}: nondeterministic input to a deterministic "
                        f"simulation (whitelist: bench/bench_util.h timers, "
                        f"src/common/rng.h)")

    def rule_std_function(self, sf: SourceFile) -> None:
        if not (sf.path.startswith(HOT_PATH_PREFIXES)
                or HOT_PATH_FILES_RE.match(sf.path)):
            return
        for i, line in enumerate(sf.code, start=1):
            if STD_FUNCTION_RE.search(line):
                self.report(
                    sf, i, "std-function-hot-path",
                    "std::function in the simulation hot path heap-allocates "
                    "per capture; use InlineFunction (sim/inline_action.h)")

    def rule_float_format(self, sf: SourceFile) -> None:
        if not sf.path.startswith("src/"):
            return
        tracker = FunctionTracker()
        for i, (lit_line, code_line) in enumerate(
                zip(sf.literals, sf.code), start=1):
            # Human-readable renderers (to_string: CLI/log lines) may format
            # floats; machine-readable emitters must not.
            human = "to_string" in tracker.current()
            if not human and FLOAT_FMT_LITERAL_RE.search(lit_line):
                self.report(
                    sf, i, "float-format",
                    'float printf format ("%f/%e/%g") is locale/libc-'
                    "dependent; serialize scaled integers (ps, ppm, bytes)")
            if not human and FLOAT_FMT_STREAM_RE.search(code_line):
                self.report(
                    sf, i, "float-format",
                    "iostream float formatting is locale-dependent; "
                    "serialize scaled integers (ps, ppm, bytes)")
            tracker.feed(code_line)

    def rule_unordered_iter(self, sf: SourceFile) -> None:
        module = module_of(sf.path)
        local = self.unordered_by_module.get(module, set())
        tracker = FunctionTracker()
        lines = sf.code
        for i, line in enumerate(lines, start=1):
            m = RANGE_FOR_RE.search(line)
            if m is not None:
                expr = m.group(1)
                name = self._unordered_name(expr, local)
                if name is not None:
                    func = tracker.current() or pending_name(tracker)
                    in_emitter = bool(EMITTER_RE.search(func))
                    body = " ".join(lines[i - 1:i + 6])
                    # Collect-then-sort is the sanctioned fix (and what
                    # common/ordered.h does): a sort right after the loop
                    # means the iteration order never escapes.
                    if re.search(r"std::sort\s*\(", body):
                        continue
                    feeds_events = re.search(
                        r"\bschedule\w*\s*\(|\bsend\s*\(", body) is not None
                    if in_emitter or feeds_events:
                        why = (f"inside emitter '{func}'" if in_emitter
                               else "loop body schedules/sends")
                        self.report(
                            sf, i, "unordered-iter",
                            f"iterating unordered container '{name}' {why}: "
                            f"iteration order is implementation-defined; "
                            f"sort keys first (common/ordered.h)")
            # for_each-style callbacks over unordered members count too when
            # the surrounding function is an emitter.
            tracker.feed(line)

    def _unordered_name(self, expr: str,
                        local: set[str]) -> str | None:
        expr = expr.strip()
        if re.search(r"\bsorted", expr):
            return None  # sorted_keys(...)/sorted copy: explicitly ordered
        for name in re.findall(r"[a-zA-Z_]\w*", expr):
            if name in local or name in self.unordered_global:
                return name
        return None

    def rule_shard_shared(self, sf: SourceFile) -> None:
        if not sf.path.startswith(SHARD_SHARED_PREFIXES):
            return
        ns = NamespaceTracker()
        for i, line in enumerate(sf.code, start=1):
            at_ns = ns.at_namespace_scope()
            ns.feed(line)
            if SHARD_SHARED_EXEMPT_RE.search(line):
                continue
            m = STATIC_KW_RE.search(line)
            if m is not None:
                rest = strip_template_args(line[m.end():])
                if re.match(r"\s*(?:inline\s+)?const\b", rest):
                    continue  # static const data: immutable, shareable
                if self._is_data_decl(rest):
                    self.report(
                        sf, i, "shard-shared",
                        "mutable static-storage state in a shard-homed "
                        "module: shards run on concurrent workers "
                        "(sim/parallel.h), so this is shared across shards; "
                        "home it on the shard's object graph, make it "
                        "const/constexpr, or use thread_local")
                continue
            # File/namespace-scope variable definitions without the static
            # keyword (anonymous-namespace globals) share state all the same.
            if not at_ns:
                continue
            s = line.strip()
            if not s or not s.endswith(";") or SHARD_DECL_SKIP_RE.match(s):
                continue
            t = strip_template_args(s)
            if re.match(r"^(?:inline\s+)?const\b", t):
                continue
            if NS_VAR_DEF_RE.match(t) and self._is_data_decl(t):
                self.report(
                    sf, i, "shard-shared",
                    "mutable file-scope state in a shard-homed module: "
                    "shards run on concurrent workers (sim/parallel.h), so "
                    "this is shared across shards; home it on the shard's "
                    "object graph, make it const/constexpr, or use "
                    "thread_local")

    @staticmethod
    def _is_data_decl(decl: str) -> bool:
        """True when a (template-stripped) declaration tail is a variable,
        not a function: no parameter list, or an initializer before any
        `(` (e.g. `Foo x = make();`)."""
        paren = decl.find("(")
        if paren < 0:
            return True
        inits = [p for p in (decl.find("="), decl.find("{")) if p >= 0]
        return bool(inits) and min(inits) < paren

    def rule_layering(self, sf: SourceFile) -> None:
        module = module_of(sf.path)
        if module not in LAYERING:
            return
        allowed = LAYERING[module] | {module}
        # Scan the literals-preserved view: the include path is a string.
        for i, line in enumerate(sf.literals, start=1):
            m = INCLUDE_RE.match(line)
            if m is None:
                continue
            inc = m.group(1)
            top = inc.split("/", 1)[0]
            if top in LAYERING and top not in allowed:
                self.report(
                    sf, i, "layering",
                    f"src/{module} must not include src/{top} "
                    f"(declared DAG in tools/lint/stellar_lint.py)")


def pending_name(tracker: FunctionTracker) -> str:
    return tracker.pending or ""


def module_of(path: str) -> str:
    """src/net/link.h -> net; bench/foo.cc -> bench; tools/... -> tools."""
    parts = path.split("/")
    if parts[0] == "src" and len(parts) > 2:
        return parts[1]
    return parts[0]


def normalize_fixture_path(path: str) -> str:
    """Fixture files live under tests/lint_fixtures/<mirror>/...; lint them
    as if the mirror were the repo root so path-based rules apply."""
    marker = "lint_fixtures/"
    idx = path.find(marker)
    if idx >= 0:
        return path[idx + len(marker):]
    return path


def gather_files(root: str, paths: list[str]) -> list[str]:
    exts = (".h", ".cc", ".hpp", ".cpp")
    rels: list[str] = []
    roots = paths if paths else ["src", "bench"]
    for p in roots:
        full = os.path.join(root, p)
        if os.path.isfile(full):
            rels.append(p.replace(os.sep, "/"))
            continue
        for dirpath, _dirnames, filenames in os.walk(full):
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    rel = os.path.relpath(os.path.join(dirpath, fn), root)
                    rels.append(rel.replace(os.sep, "/"))
    return sorted(rels)


def run_lint(root: str, paths: list[str], fixture_mode: bool = False) -> list[Finding]:
    linter = Linter(root=root)
    # Names unordered at their declaration but iterated from another module
    # (the cross-layer auditors befriend subsystem internals).
    linter.unordered_global = {"pinned_ranges_", "rx_", "psns_above_floor"}
    rels = gather_files(root, paths)
    files: list[SourceFile] = []
    for rel in rels:
        sf = load_file(root, rel)
        if fixture_mode:
            sf.path = normalize_fixture_path(sf.path)
        files.append(sf)
    for sf in files:
        linter.collect_unordered(sf)
    for sf in files:
        linter.lint_file(sf)
    return linter.findings


# --------------------------------------------------------------------------
# Self test: every fixture under tests/lint_fixtures declares its expected
# findings with `// expect: <rule>` on the offending line (or none for the
# clean/suppressed fixtures). The test asserts exact match per file.
# --------------------------------------------------------------------------

def self_test(repo_root: str) -> int:
    fdir = os.path.join(repo_root, "tests", "lint_fixtures")
    if not os.path.isdir(fdir):
        print(f"stellar-lint: fixture directory missing: {fdir}",
              file=sys.stderr)
        return 2
    failures = 0
    cases = 0
    findings = run_lint(fdir, [], fixture_mode=True)
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        by_file.setdefault(f.path, []).append(f)

    for dirpath, _dn, filenames in os.walk(fdir):
        for fn in sorted(filenames):
            if not fn.endswith((".h", ".cc")):
                continue
            full = os.path.join(dirpath, fn)
            rel = os.path.relpath(full, fdir).replace(os.sep, "/")
            rel = normalize_fixture_path(rel)
            with open(full, encoding="utf-8") as fh:
                lines = fh.read().split("\n")
            expected: list[tuple[int, str]] = []
            for i, line in enumerate(lines, start=1):
                for m in re.finditer(r"//\s*expect:\s*([a-z0-9-]+)", line):
                    expected.append((i, m.group(1)))
            got = sorted((f.line, f.rule) for f in by_file.get(rel, []))
            want = sorted(expected)
            cases += 1
            if got != want:
                failures += 1
                print(f"FAIL {rel}: expected {want}, got {got}",
                      file=sys.stderr)
                for f in by_file.get(rel, []):
                    print(f"  {f}", file=sys.stderr)
    print(f"stellar-lint self-test: {cases - failures}/{cases} fixtures ok")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="stellar-lint", add_help=True)
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels up from this file)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture self-tests and exit")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs relative to root (default: src bench)")
    args = ap.parse_args(argv)

    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))

    if args.self_test:
        return self_test(root)

    findings = run_lint(root, args.paths)
    for f in findings:
        print(f)
    if findings:
        print(f"stellar-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("stellar-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
