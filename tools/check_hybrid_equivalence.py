#!/usr/bin/env python3
"""Gate: packet-fidelity vs hybrid-fidelity BENCH rows must agree.

    check_hybrid_equivalence.py PACKET.json HYBRID.json [--tol-pct N]
                                [--field goodput_gbps]

Both files are BENCH_<name>.json outputs of the same bench run at
different --fidelity settings. Rows are matched by every non-numeric key
except "fidelity" (for fig09: algo + paths); the compared field must agree
within --tol-pct percent on every row. On failure the full per-row table
is printed so the drift is loud, then exit 1.

Dependency-free (stdlib json only), like the rest of tools/.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    if not rows:
        sys.exit(f"check_hybrid_equivalence: {path} has no rows")
    return rows


def row_key(row, field):
    return tuple(
        (k, v)
        for k, v in sorted(row.items())
        if k not in ("fidelity", field) and not isinstance(v, float)
    )


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("packet")
    ap.add_argument("hybrid")
    ap.add_argument("--tol-pct", type=float, default=20.0)
    ap.add_argument("--field", default="goodput_gbps")
    args = ap.parse_args()

    packet = {row_key(r, args.field): r for r in load_rows(args.packet)}
    hybrid = {row_key(r, args.field): r for r in load_rows(args.hybrid)}
    if set(packet) != set(hybrid):
        sys.exit(
            "check_hybrid_equivalence: row sets differ:\n"
            f"  packet-only: {sorted(set(packet) - set(hybrid))}\n"
            f"  hybrid-only: {sorted(set(hybrid) - set(packet))}"
        )

    failures = []
    print(f"{'row':<40} {'packet':>10} {'hybrid':>10} {'delta%':>8}")
    for key in sorted(packet):
        p = float(packet[key][args.field])
        h = float(hybrid[key][args.field])
        if p == 0.0:
            delta_pct = 0.0 if h == 0.0 else float("inf")
        else:
            delta_pct = 100.0 * abs(h - p) / p
        label = ",".join(f"{k}={v}" for k, v in key)
        flag = "" if delta_pct <= args.tol_pct else "  << OVER TOLERANCE"
        print(f"{label:<40} {p:>10.3f} {h:>10.3f} {delta_pct:>7.2f}%{flag}")
        if delta_pct > args.tol_pct:
            failures.append(label)

    if failures:
        sys.exit(
            f"check_hybrid_equivalence: {len(failures)}/{len(packet)} rows "
            f"exceed the {args.tol_pct}% tolerance on {args.field}: "
            + "; ".join(failures)
        )
    print(
        f"check_hybrid_equivalence: all {len(packet)} rows within "
        f"{args.tol_pct}% on {args.field}"
    )


if __name__ == "__main__":
    main()
