// Max-min fair-share fluid solver: the analytic flow-level network model
// behind hybrid fidelity (docs/HYBRID.md).
//
// The solver sees the fabric as abstract capacitated links and flows with
// fractional per-link weights. A packet-sprayed connection touches a set of
// egress ports, each with the fraction of its packets the spray policy lands
// there; the classic water-filling iteration then assigns every flow the
// max-min fair rate:
//
//   maximize the minimum flow rate subject to  sum_f w_{f,l} * r_f <= C_l
//
// Progressive filling: all unfrozen flows grow at a common rate; the link
// that saturates first freezes every flow crossing it at the current level;
// repeat on the residual network. Each round freezes at least one flow, so
// the iteration terminates in at most F rounds; a per-link inverted index
// makes each solve O(total shares + rounds * active links).
//
// Determinism: links are iterated in index order and flows in insertion
// order, every float is derived from the same arithmetic on every run, and
// the solver never consults pointers, hashes, or clocks — two identical
// call sequences produce bitwise-identical rates.
//
// The solver is pure (src/sim layer: no net/ dependency); HybridDriver
// (sim/hybrid.h) maps real NetLink objects onto link indices.
#pragma once

#include <cstdint>
#include <vector>

#include "check/check.h"

namespace stellar {

class FluidSolver {
 public:
  /// One (link, weight) term of a flow's capacity footprint. `weight` is
  /// the fraction of the flow's packets that cross this link (1.0 for the
  /// shared first/last hop, 1/paths per sprayed fabric link).
  struct LinkShare {
    std::uint32_t link = 0;
    double weight = 1.0;
  };

  /// Register a link; returns its index. Capacity in bytes/second.
  std::uint32_t add_link(double capacity_bytes_per_sec) {
    links_.push_back(Link{capacity_bytes_per_sec, 0.0});
    return static_cast<std::uint32_t>(links_.size() - 1);
  }

  void set_capacity(std::uint32_t link, double capacity_bytes_per_sec) {
    links_.at(link).capacity = capacity_bytes_per_sec;
  }
  double capacity(std::uint32_t link) const { return links_.at(link).capacity; }
  std::size_t link_count() const { return links_.size(); }

  /// Register a flow; returns its id. Shares must be non-empty (every flow
  /// crosses at least its own NIC egress) with positive weights.
  std::uint32_t add_flow(std::vector<LinkShare> shares);

  /// Remove a departed flow. Its slot (and id) is recycled by a later
  /// add_flow — long-running churn keeps the flow table at the peak
  /// concurrent size instead of growing without bound, which matters
  /// because solve() is linear in the table size. Callers must treat a
  /// removed id as dead immediately.
  void remove_flow(std::uint32_t flow);

  std::size_t active_flows() const { return active_count_; }

  /// Recompute max-min rates for the current flow set. Call after any
  /// add/remove/capacity change and before reading rate().
  void solve();

  /// Assigned rate (bytes/second) of an active flow, valid after solve().
  double rate(std::uint32_t flow) const;

  /// Total offered load on a link (sum of weight * rate), from solve().
  double link_load(std::uint32_t link) const { return links_.at(link).load; }

  /// Active flow ids in insertion order (deterministic iteration surface).
  std::vector<std::uint32_t> flow_ids() const;

 private:
  struct Link {
    double capacity = 0.0;  // bytes/sec
    double load = 0.0;      // filled by solve()
  };
  struct Flow {
    std::vector<LinkShare> shares;
    double rate = 0.0;
    bool active = false;
  };

  std::vector<Link> links_;
  std::vector<Flow> flows_;  // indexed by flow id; inactive slots recycled
  std::vector<std::uint32_t> free_ids_;  // LIFO of recyclable slots
  std::size_t active_count_ = 0;
};

}  // namespace stellar
