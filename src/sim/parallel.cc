#include "sim/parallel.h"

#include <thread>
#include <utility>

#include "check/check.h"

namespace stellar {

namespace {
// Worker slot for the innermost RunSet job on this thread. thread_local by
// design: each worker sees only its own slot, so this is shard-private
// state, not shared engine state.
thread_local int tl_run_worker = -1;
}  // namespace

// ---------------------------------------------------------------------------
// ShardedEngine
// ---------------------------------------------------------------------------

ShardedEngine::ShardedEngine(const PdesConfig& cfg)
    : threads_(cfg.threads == 0 ? 1 : cfg.threads),
      lookahead_ps_(cfg.lookahead.ps()) {
  STELLAR_CHECK(cfg.shards >= 1 && cfg.shards <= kMaxShards,
                "shard count %u outside [1, %u]", cfg.shards, kMaxShards);
  STELLAR_CHECK(lookahead_ps_ > 0,
                "conservative PDES needs strictly positive lookahead");
  shards_.reserve(cfg.shards);
  for (std::uint32_t s = 0; s < cfg.shards; ++s) {
    auto sh = std::make_unique<Shard>();
    sh->in.reserve(cfg.shards);
    for (std::uint32_t src = 0; src < cfg.shards; ++src) {
      sh->in.push_back(std::make_unique<SpscChannel<RemoteEvent>>());
    }
    shards_.push_back(std::move(sh));
  }
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::post(std::uint32_t from, std::uint32_t to, SimTime at,
                         Simulator::Action action) {
  STELLAR_CHECK(from < shards() && to < shards(),
                "post between unknown shards %u -> %u", from, to);
  Shard& src = *shards_[from];
  STELLAR_CHECK(at.ps() >= src.sim.now().ps() + lookahead_ps_,
                "handoff at %lld ps violates lookahead (now %lld + L %lld)",
                static_cast<long long>(at.ps()),
                static_cast<long long>(src.sim.now().ps()),
                static_cast<long long>(lookahead_ps_));
  // (src_seq, src_shard) is allocated in the sender's deterministic event
  // order; the receiver's merge key never depends on drain timing.
  STELLAR_CHECK(
      src.next_src_seq <
          (std::uint64_t{1} << (Simulator::kRemoteStampBits - kShardIdBits)),
      "remote stamp space exhausted on shard %u", from);
  const std::uint64_t stamp = src.next_src_seq++ << kShardIdBits | from;
  // in_flight_ rises before the push and falls only after the receiver has
  // folded the event into its wheel, so in_flight_ == 0 proves every
  // channel is empty — the termination test relies on that.
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  // seq_cst, and ordered before the push: the all-idle termination path
  // compares posted_ snapshots across its clock/idle scan, so a post whose
  // in_flight_ bump was already consumed by a drain must still be visible
  // through the counter.
  posted_.fetch_add(1, std::memory_order_seq_cst);
  shards_[to]->in[from]->push(RemoteEvent{at.ps(), stamp, std::move(action)});
}

bool ShardedEngine::drain_inbound(Shard& sh) {
  std::uint64_t got = 0;
  for (auto& chan : sh.in) {
    RemoteEvent ev;
    while (chan->try_pop(ev)) {
      sh.sim.schedule_remote(SimTime::picos(ev.at_ps), ev.stamp,
                             std::move(ev.action));
      ++got;
    }
  }
  if (got != 0) {
    sh.drained += got;
    // idle must read false before in_flight_ can read zero for these
    // events, or the early-termination scan could miss pending work.
    sh.idle.store(false, std::memory_order_seq_cst);
    in_flight_.fetch_sub(got, std::memory_order_seq_cst);
  }
  return got != 0;
}

void ShardedEngine::drive(std::uint32_t worker, std::uint32_t worker_count,
                          std::int64_t deadline_ps) {
  const std::uint32_t n = shards();
  for (;;) {
    bool progressed = false;
    for (std::uint32_t s = worker; s < n; s += worker_count) {
      Shard& sh = *shards_[s];
      // Horizon first, drain second: any message still invisible after
      // the clock reads comes from an event later than the clock we saw,
      // so it lands beyond h by the lookahead bound.
      std::int64_t h = deadline_ps;
      for (std::uint32_t p = 0; p < n; ++p) {
        if (p == s) continue;
        const std::int64_t cp =
            shards_[p]->clock_ps.load(std::memory_order_acquire);
        if (cp + lookahead_ps_ < h) h = cp + lookahead_ps_;
      }
      if (drain_inbound(sh)) progressed = true;
      if (h > sh.clock_ps.load(std::memory_order_relaxed)) {
        sh.sim.run_until(SimTime::picos(h));
        sh.idle.store(sh.sim.empty(), std::memory_order_seq_cst);
        sh.clock_ps.store(h, std::memory_order_release);
        windows_.fetch_add(1, std::memory_order_relaxed);
        progressed = true;
      }
    }
    if (!stop_.load(std::memory_order_acquire)) {
      // Double-checked termination detection. The scan below is racy on
      // its own: a peer can post a handoff while we walk the clocks and
      // idle flags (a sender posting in its final window before its
      // release-store of clock = deadline, or a chained handoff flipping
      // a shard non-idle after we already read its flag as true), leaving
      // an undrained event in a channel at shutdown. So snapshot posted_
      // first, scan, then re-verify before setting stop_.
      const std::uint64_t posted_before =
          posted_.load(std::memory_order_seq_cst);
      if (in_flight_.load(std::memory_order_seq_cst) == 0) {
        bool at_deadline = true;
        bool all_idle = true;
        for (std::uint32_t p = 0; p < n; ++p) {
          if (shards_[p]->clock_ps.load(std::memory_order_acquire) !=
              deadline_ps) {
            at_deadline = false;
          }
          if (!shards_[p]->idle.load(std::memory_order_seq_cst)) {
            all_idle = false;
          }
        }
        // at_deadline is stable once re-confirmed: clocks only grow, every
        // wheel has executed through the deadline so nothing can post
        // anymore, and a post raced against a sender's final clock store
        // is visible to the in_flight_ re-read through that store's
        // release/acquire edge. all_idle additionally requires posted_
        // unchanged across the scan: an idle flag we read as true can go
        // stale through a chained handoff, but every such chain starts
        // with a post, which the snapshot comparison catches.
        if ((at_deadline || all_idle) &&
            in_flight_.load(std::memory_order_seq_cst) == 0 &&
            (at_deadline ||
             posted_.load(std::memory_order_seq_cst) == posted_before)) {
          stop_.store(true, std::memory_order_release);
        }
      }
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (!progressed) std::this_thread::yield();
  }
  for (std::uint32_t s = worker; s < n; s += worker_count) {
    shards_[s]->sim.release_owner();
  }
}

std::uint64_t ShardedEngine::run_until(SimTime deadline) {
  const std::int64_t deadline_ps = deadline.ps();
  running_.store(true, std::memory_order_release);
  std::uint64_t executed_before = 0;
  for (auto& sh : shards_) {
    STELLAR_CHECK(deadline_ps >= sh->clock_ps.load(std::memory_order_relaxed),
                  "ShardedEngine::run_until deadlines must be monotone");
    executed_before += sh->sim.executed_events();
    sh->idle.store(sh->sim.empty(), std::memory_order_relaxed);
    // Hand every shard from the calling thread to whichever worker
    // reaches it first.
    sh->sim.release_owner();
  }
  stop_.store(false, std::memory_order_release);

  const std::uint32_t n = shards();
  const std::uint32_t workers = threads_ < n ? threads_ : n;
  if (workers <= 1) {
    drive(0, 1, deadline_ps);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (std::uint32_t w = 1; w < workers; ++w) {
      pool.emplace_back([this, w, workers, deadline_ps] {
        drive(w, workers, deadline_ps);
      });
    }
    drive(0, workers, deadline_ps);
    for (auto& t : pool) t.join();
  }

  // Merged barrier: park early-terminated shards at the deadline so the
  // final state (now(), clocks) is identical for every thread count, then
  // leave ownership free for auditors/emitters on the calling thread.
  std::uint64_t executed_after = 0;
  for (auto& sh : shards_) {
    if (sh->clock_ps.load(std::memory_order_relaxed) != deadline_ps) {
      sh->sim.run_until(deadline);
      sh->clock_ps.store(deadline_ps, std::memory_order_relaxed);
      sh->sim.release_owner();
    }
    executed_after += sh->sim.executed_events();
  }
  STELLAR_CHECK(in_flight_.load(std::memory_order_seq_cst) == 0,
                "handoffs still in flight at the merged barrier");
  running_.store(false, std::memory_order_release);
  return executed_after - executed_before;
}

void ShardedEngine::assert_quiescent() const {
  STELLAR_CHECK(!running_.load(std::memory_order_acquire),
                "ShardedEngine counters may only be read at a merged "
                "barrier, not while run_until is in flight");
}

std::uint64_t ShardedEngine::executed_events() const {
  assert_quiescent();
  std::uint64_t total = 0;
  for (const auto& sh : shards_) total += sh->sim.executed_events();
  return total;
}

ShardedEngine::EngineStats ShardedEngine::stats() const {
  assert_quiescent();
  EngineStats st;
  st.posted = posted_.load(std::memory_order_relaxed);
  st.in_flight = in_flight_.load(std::memory_order_relaxed);
  st.windows = windows_.load(std::memory_order_relaxed);
  for (const auto& sh : shards_) st.drained += sh->drained;
  return st;
}

// ---------------------------------------------------------------------------
// RunSet
// ---------------------------------------------------------------------------

std::size_t RunSet::add(Job job) {
  STELLAR_CHECK(!executed_, "RunSet is single-use; add before execute()");
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

void RunSet::execute(std::uint32_t threads) {
  STELLAR_CHECK(!executed_, "RunSet is single-use");
  executed_ = true;
  const auto n = jobs_.size();
  if (threads <= 1 || n <= 1) {
    const int prev = tl_run_worker;
    tl_run_worker = 0;
    for (auto& job : jobs_) job();
    tl_run_worker = prev;
    jobs_.clear();
    return;
  }
  const std::uint32_t workers =
      threads < n ? threads : static_cast<std::uint32_t>(n);
  auto drive_worker = [this, workers](std::uint32_t w) {
    const int prev = tl_run_worker;
    tl_run_worker = static_cast<int>(w);
    for (std::size_t i = w; i < jobs_.size(); i += workers) jobs_[i]();
    tl_run_worker = prev;
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::uint32_t w = 1; w < workers; ++w) {
    pool.emplace_back(drive_worker, w);
  }
  drive_worker(0);
  for (auto& t : pool) t.join();
  jobs_.clear();
}

int RunSet::current_worker() { return tl_run_worker; }

}  // namespace stellar
