#include "sim/hybrid.h"

#include <algorithm>
#include <cmath>

namespace stellar {

HybridDriver::HybridDriver(Simulator& sim, ClosFabric& fabric,
                           HybridConfig config)
    : sim_(&sim), fabric_(&fabric), config_(config) {
  STELLAR_CHECK(fabric.hybrid_driver() == nullptr,
                "fabric already has a hybrid driver attached");
  fabric.set_hybrid_driver(this);
  const FabricConfig& fc = fabric.config();
  regions_.resize(static_cast<std::size_t>(fc.rails) * fc.planes);
  for (std::uint32_t r = 0; r < fc.rails; ++r) {
    for (std::uint32_t p = 0; p < fc.planes; ++p) {
      Region& rg = regions_[r * fc.planes + p];
      // Deterministic link order: host/ToR edge links per (segment, host),
      // then the aggregation layer per (segment, agg).
      for (std::uint32_t s = 0; s < fc.segments; ++s) {
        for (std::uint32_t h = 0; h < fc.hosts_per_segment; ++h) {
          rg.links.push_back(&fabric.host_uplink(s, h, r, p));
          rg.links.push_back(&fabric.tor_downlink(s, h, r, p));
        }
      }
      for (std::uint32_t s = 0; s < fc.segments; ++s) {
        for (std::uint32_t a = 0; a < fc.aggs_per_plane; ++a) {
          rg.links.push_back(&fabric.tor_uplink(s, r, p, a));
          rg.links.push_back(&fabric.agg_downlink(a, s, r, p));
        }
      }
      for (NetLink* link : rg.links) {
        rg.link_index.emplace(
            link, rg.solver.add_link(
                      static_cast<double>(link->config().bandwidth.bps()) /
                      8.0));
      }
      rg.span_start = sim.now();
      rg.last_advance = sim.now();
      if (config_.start_fluid) rg.mode = RegionMode::kFluid;
    }
  }
}

HybridDriver::~HybridDriver() {
  for (std::uint32_t r = 0; r < regions_.size(); ++r) {
    Region& rg = regions_[r];
    if (rg.advance_event.valid()) {
      sim_->cancel(rg.advance_event);
      rg.advance_event = EventHandle{};
    }
    emit_span(r, rg, rg.mode);
  }
  fabric_->set_hybrid_driver(nullptr);
}

std::uint32_t HybridDriver::region_of(EndpointId endpoint) const {
  const ClosFabric::EndpointCoords c = fabric_->coords(endpoint);
  return c.rail * fabric_->config().planes + c.plane;
}

void HybridDriver::emit_span(std::uint32_t region, Region& rg,
                             RegionMode ended) {
  const SimTime now = sim_->now();
  if (now > rg.span_start) {
    if (ended == RegionMode::kFluid) rg.fluid_total += now - rg.span_start;
    if (span_hook_) span_hook_(region, ended, rg.span_start, now);
  }
  rg.span_start = now;
}

SimTime HybridDriver::fluid_time() const {
  SimTime total = SimTime::zero();
  for (const Region& rg : regions_) {
    total = total + rg.fluid_total;
    if (rg.mode == RegionMode::kFluid && sim_->now() > rg.span_start) {
      total = total + (sim_->now() - rg.span_start);
    }
  }
  return total;
}

// ---------------------------------------------------------------------------
// Registration
// ---------------------------------------------------------------------------

void HybridDriver::register_client(FluidClient* client) {
  auto info = std::make_unique<ClientInfo>();
  ClientInfo* ci = info.get();
  ci->client = client;
  ci->region = region_of(client->fluid_endpoint());
  Region& rg = regions_[ci->region];
  rg.clients.push_back(ci);
  info_.emplace(client, std::move(info));
  if (rg.mode == RegionMode::kFluid) {
    // Born in fluid: a fresh connection has no packet state, so its freeze
    // is trivial — it only resolves the link shares its spray would use.
    FluidFlowDesc desc = client->fluid_freeze();
    ci->shares.clear();
    for (const auto& [link, weight] : desc.shares) {
      auto it = rg.link_index.find(link);
      STELLAR_CHECK(it != rg.link_index.end(),
                    "fluid flow references a link outside its region");
      ci->shares.push_back(FluidSolver::LinkShare{it->second, weight});
    }
    ci->in_fluid = true;
    if (desc.remaining > 0) {
      ci->flow = rg.solver.add_flow(ci->shares);
      rg.solve_needed = true;
      if (!in_advance_) schedule_kick(ci->region);
    }
  } else {
    arm_tick();
  }
}

void HybridDriver::unregister_client(FluidClient* client) {
  auto it = info_.find(client);
  if (it == info_.end()) return;
  ClientInfo* ci = it->second.get();
  Region& rg = regions_[ci->region];
  if (ci->flow >= 0) {
    rg.solver.remove_flow(static_cast<std::uint32_t>(ci->flow));
    rg.solve_needed = true;
  }
  rg.clients.erase(std::find(rg.clients.begin(), rg.clients.end(), ci));
  info_.erase(it);
}

void HybridDriver::register_receiver(EndpointId endpoint,
                                     FluidReceiver* receiver) {
  receivers_[endpoint] = receiver;
}

void HybridDriver::unregister_receiver(EndpointId endpoint) {
  receivers_.erase(endpoint);
}

FluidReceiver* HybridDriver::receiver(EndpointId endpoint) const {
  auto it = receivers_.find(endpoint);
  return it == receivers_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Fluid service
// ---------------------------------------------------------------------------

void HybridDriver::advance_to_now(Region& rg) {
  const SimTime now = sim_->now();
  if (now <= rg.last_advance) return;
  const double dt = (now - rg.last_advance).sec();
  rg.last_advance = now;
  in_advance_ = true;
  for (ClientInfo* ci : rg.clients) {
    if (!ci->in_fluid || ci->dead || ci->flow < 0) continue;
    const double rate = rg.solver.rate(static_cast<std::uint32_t>(ci->flow));
    if (rate <= 0.0) continue;
    // Integrate rate over the elapsed interval with a fractional-byte
    // carry, so bytes are conserved exactly across rate-change events.
    const double earned = rate * dt + ci->carry;
    const auto want = static_cast<std::uint64_t>(earned);
    if (want == 0) {
      ci->carry = earned;
      continue;
    }
    const std::uint64_t served = ci->client->fluid_serve(want);
    fluid_bytes_served_ += served;
    ci->carry = served == want ? earned - static_cast<double>(want) : 0.0;
  }
  in_advance_ = false;
}

void HybridDriver::service_region(std::uint32_t region) {
  Region& rg = regions_[region];
  if (rg.mode != RegionMode::kFluid) return;
  advance_to_now(rg);
  if (rg.pending_zoom) {
    rg.pending_zoom = false;
    zoom_region(region, rg.pending_zoom_reason);
    return;
  }
  // Retire drained (or errored) flows.
  for (ClientInfo* ci : rg.clients) {
    if (ci->flow < 0) continue;
    if (ci->dead || ci->client->fluid_remaining() == 0) {
      rg.solver.remove_flow(static_cast<std::uint32_t>(ci->flow));
      ci->flow = -1;
      ci->carry = 0.0;
      if (!ci->dead) ++fluid_completions_;
      rg.solve_needed = true;
    }
  }
  if (rg.solve_needed) {
    rg.solver.solve();
    rg.solve_needed = false;
    if (config_.zoom_on_saturation) {
      bool saturated = false;
      for (std::uint32_t l = 0; l < rg.links.size(); ++l) {
        const double cap = rg.solver.capacity(l);
        if (cap > 0.0 && rg.solver.link_load(l) >= 0.999 * cap) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        if (++rg.saturated_solves >= config_.saturation_solves) {
          zoom_region(region, "saturated-bottleneck");
          return;
        }
      } else {
        rg.saturated_solves = 0;
      }
    }
  }
  schedule_next(region);
}

void HybridDriver::schedule_next(std::uint32_t region) {
  Region& rg = regions_[region];
  if (rg.advance_event.valid()) {
    sim_->cancel(rg.advance_event);
    rg.advance_event = EventHandle{};
  }
  const SimTime now = sim_->now();
  SimTime best = SimTime::max();
  bool found = false;
  for (ClientInfo* ci : rg.clients) {
    if (ci->flow < 0) continue;
    const double rate = rg.solver.rate(static_cast<std::uint32_t>(ci->flow));
    if (rate <= 0.0) continue;
    const std::uint64_t upcoming = ci->client->fluid_next_completion_bytes();
    if (upcoming == 0) continue;
    double need = static_cast<double>(upcoming) - ci->carry;
    if (need < 0.0) need = 0.0;
    auto dt_ps = static_cast<std::uint64_t>(std::ceil(need * 1e12 / rate));
    if (dt_ps == 0) dt_ps = 1;
    const SimTime at = now + SimTime::picos(dt_ps);
    if (at < best) {
      best = at;
      found = true;
    }
  }
  if (!found) return;
  rg.advance_event = sim_->schedule_at(best, [this, region] {
    regions_[region].advance_event = EventHandle{};
    service_region(region);
  });
}

void HybridDriver::schedule_kick(std::uint32_t region) {
  Region& rg = regions_[region];
  if (rg.kick_scheduled) return;
  rg.kick_scheduled = true;
  sim_->schedule_at(sim_->now(), [this, region] {
    regions_[region].kick_scheduled = false;
    service_region(region);
  });
}

// ---------------------------------------------------------------------------
// Mode transitions
// ---------------------------------------------------------------------------

void HybridDriver::enter_fluid(std::uint32_t region) {
  Region& rg = regions_[region];
  if (rg.mode == RegionMode::kFluid) return;
  const SimTime now = sim_->now();
  if (now < hold_until_) return;
  for (ClientInfo* ci : rg.clients) {
    if (ci->dead || ci->client->fluid_errored()) continue;
    if (!ci->client->fluid_eligible()) return;  // stay packet this epoch
  }
  // A down link breaks the fluid model's capacity assumptions (flows
  // across it would stall at rate zero and never complete): packet mode
  // owns outages — its retransmit/blacklist machinery routes around them.
  for (const NetLink* link : rg.links) {
    if (!link->is_up()) return;
  }
  // Refresh capacities: degrade faults may have changed link bandwidth
  // since the region was last fluid.
  for (std::uint32_t l = 0; l < rg.links.size(); ++l) {
    rg.solver.set_capacity(
        l, static_cast<double>(rg.links[l]->config().bandwidth.bps()) / 8.0);
  }
  // Absorb every packet the region's links still own into fluid state.
  for (NetLink* link : rg.links) absorbed_packets_ += link->absorb();
  for (ClientInfo* ci : rg.clients) {
    if (ci->dead || ci->client->fluid_errored()) {
      ci->dead = true;
      continue;
    }
    FluidFlowDesc desc = ci->client->fluid_freeze();
    ci->shares.clear();
    for (const auto& [link, weight] : desc.shares) {
      auto it = rg.link_index.find(link);
      STELLAR_CHECK(it != rg.link_index.end(),
                    "fluid flow references a link outside its region");
      ci->shares.push_back(FluidSolver::LinkShare{it->second, weight});
    }
    ci->in_fluid = true;
    ci->carry = 0.0;
    if (desc.remaining > 0) ci->flow = rg.solver.add_flow(ci->shares);
  }
  emit_span(region, rg, RegionMode::kPacket);
  rg.mode = RegionMode::kFluid;
  rg.last_advance = now;
  rg.saturated_solves = 0;
  ++transitions_;
  rg.solver.solve();
  rg.solve_needed = false;
  schedule_next(region);
}

void HybridDriver::zoom_region(std::uint32_t region, const char* reason) {
  Region& rg = regions_[region];
  if (rg.mode != RegionMode::kFluid) return;
  if (in_advance_) {
    // Mid-serve (a completion callback triggered the zoom): finish the
    // serve loop first, then zoom at the same timestamp via the kick.
    rg.pending_zoom = true;
    rg.pending_zoom_reason = reason;
    schedule_kick(region);
    return;
  }
  advance_to_now(rg);
  if (rg.advance_event.valid()) {
    sim_->cancel(rg.advance_event);
    rg.advance_event = EventHandle{};
  }
  rg.pending_zoom = false;
  emit_span(region, rg, RegionMode::kFluid);
  rg.mode = RegionMode::kPacket;
  ++transitions_;
  for (ClientInfo* ci : rg.clients) {
    double rate = 0.0;
    if (ci->flow >= 0) {
      rate = rg.solver.rate(static_cast<std::uint32_t>(ci->flow));
      rg.solver.remove_flow(static_cast<std::uint32_t>(ci->flow));
      ci->flow = -1;
    }
    ci->carry = 0.0;
    if (ci->in_fluid) {
      ci->in_fluid = false;
      // Thaw seeds the congestion window from the fluid rate and calls
      // send_more(), repopulating real link queues.
      ci->client->fluid_thaw(rate);
    }
  }
  rg.solve_needed = false;
  rg.quiet_epochs = 0;
  // Promotion baselines: only *new* ECN marks / retransmits after the zoom
  // count against quietness.
  std::uint64_t ecn = 0;
  for (const NetLink* link : rg.links) ecn += link->ecn_marks();
  std::uint64_t retx = 0;
  for (ClientInfo* ci : rg.clients) {
    if (!ci->dead) retx += ci->client->fluid_retransmit_count();
  }
  rg.last_ecn = ecn;
  rg.last_retx = retx;
  (void)reason;
  arm_tick();
}

void HybridDriver::force_packet(SimTime hold, const char* reason) {
  const SimTime until = sim_->now() + hold;
  if (until > hold_until_) hold_until_ = until;
  for (std::uint32_t r = 0; r < regions_.size(); ++r) zoom_region(r, reason);
  arm_tick();
}

void HybridDriver::request_zoom_window(SimTime start, SimTime end) {
  if (start <= sim_->now()) {
    if (end > hold_until_) hold_until_ = end;
    force_packet(SimTime::zero(), "zoom-window");
    return;
  }
  sim_->schedule_at(start, [this, end] {
    if (end > hold_until_) hold_until_ = end;
    force_packet(SimTime::zero(), "zoom-window");
  });
}

// ---------------------------------------------------------------------------
// Client notifications
// ---------------------------------------------------------------------------

void HybridDriver::on_fluid_post(FluidClient* client) {
  auto it = info_.find(client);
  if (it == info_.end()) return;
  ClientInfo* ci = it->second.get();
  if (!ci->in_fluid || ci->dead) return;
  Region& rg = regions_[ci->region];
  if (ci->flow < 0 && ci->client->fluid_remaining() > 0) {
    ci->flow = rg.solver.add_flow(ci->shares);
    ci->carry = 0.0;
    rg.solve_needed = true;
    if (!in_advance_) schedule_kick(ci->region);
  }
  // A post behind an already-active flow queues after the in-service
  // message: rates and the next completion event are unchanged.
}

void HybridDriver::on_ineligible_post(FluidClient* client) {
  auto it = info_.find(client);
  if (it == info_.end()) return;
  ClientInfo* ci = it->second.get();
  if (!ci->in_fluid) return;
  zoom_region(ci->region, "ineligible-post");
}

void HybridDriver::on_client_error(FluidClient* client) {
  auto it = info_.find(client);
  if (it == info_.end()) return;
  ClientInfo* ci = it->second.get();
  ci->dead = true;
  if (!ci->in_fluid) return;
  ci->in_fluid = false;
  Region& rg = regions_[ci->region];
  if (ci->flow >= 0) {
    rg.solve_needed = true;
    // The flow itself is retired by the next service_region pass — it may
    // currently be mid-iteration in advance_to_now().
    if (!in_advance_) schedule_kick(ci->region);
  }
}

// ---------------------------------------------------------------------------
// Promotion (packet -> fluid) trigger polling
// ---------------------------------------------------------------------------

void HybridDriver::arm_tick() {
  if (tick_armed_) return;
  bool needed = false;
  for (const Region& rg : regions_) {
    if (rg.mode != RegionMode::kPacket) continue;
    for (const ClientInfo* ci : rg.clients) {
      if (!ci->dead) {
        needed = true;
        break;
      }
    }
    if (needed) break;
  }
  if (!needed) return;
  // Never keep an otherwise-drained simulator alive just to poll: when
  // traffic stops, the tick stops with it.
  if (sim_->pending_events() == 0) return;
  tick_armed_ = true;
  sim_->schedule_after(config_.epoch, [this] { tick(); });
}

void HybridDriver::tick() {
  tick_armed_ = false;
  const SimTime now = sim_->now();
  for (std::uint32_t r = 0; r < regions_.size(); ++r) {
    Region& rg = regions_[r];
    if (rg.mode != RegionMode::kPacket) continue;
    bool has_live = false;
    for (const ClientInfo* ci : rg.clients) {
      if (!ci->dead) {
        has_live = true;
        break;
      }
    }
    if (!has_live) continue;
    std::uint64_t ecn = 0;
    for (const NetLink* link : rg.links) ecn += link->ecn_marks();
    std::uint64_t retx = 0;
    for (const ClientInfo* ci : rg.clients) {
      if (!ci->dead) retx += ci->client->fluid_retransmit_count();
    }
    bool quiet = true;
    if (config_.poll_triggers) {
      for (const NetLink* link : rg.links) {
        if (link->queue_bytes() > config_.zoom_queue_bytes) {
          quiet = false;
          break;
        }
      }
      if (ecn != rg.last_ecn || retx != rg.last_retx) quiet = false;
    }
    rg.last_ecn = ecn;
    rg.last_retx = retx;
    if (now < hold_until_) quiet = false;
    if (quiet) {
      ++rg.quiet_epochs;
    } else {
      rg.quiet_epochs = 0;
    }
    const std::uint32_t need =
        config_.poll_triggers ? config_.promote_quiet_epochs : 1;
    if (rg.quiet_epochs >= need) enter_fluid(r);
  }
  arm_tick();
}

}  // namespace stellar
