// Single-producer / single-consumer channel for cross-shard event handoff.
//
// The parallel engine (sim/parallel.h) gives every directed shard pair its
// own channel, so each end is touched by exactly one thread: the sending
// shard's worker pushes from inside event execution, the receiving shard's
// worker drains between conservative windows. That pairing is the whole
// synchronization story — no CAS loops, no MPMC generality, just one
// release store per published item (batched per chunk) and one acquire
// load per consumed chunk.
//
// The queue is unbounded: items live in fixed-size chunks linked
// producer-to-consumer, and the producer allocates a fresh chunk when the
// tail fills. A bounded ring would be cheaper per push, but it can
// deadlock the engine when one worker drives both the full channel's
// producer shard and its consumer shard (the push spin starves the drain).
// Handoffs are orders of magnitude rarer than intra-shard events, so the
// occasional chunk allocation is noise.
//
// Memory ordering contract with the engine's clock protocol: the producer
// publishes every message *before* release-storing its shard clock, and
// the consumer acquire-loads that clock before draining, so a consumer
// that has seen clock C observes every message sent by events at or
// before C. The per-chunk `count` release/acquire pair makes the item
// payloads themselves race-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <utility>

namespace stellar {

template <typename T, std::size_t kChunk = 256>
class SpscChannel {
 public:
  SpscChannel() : head_(new Node), tail_(head_) {}
  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  ~SpscChannel() {
    // Quiescent by contract (the engine joins its workers first): drain
    // unconsumed items, then free the chain.
    T scratch;
    while (try_pop(scratch)) {
    }
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  /// Producer side only.
  void push(T&& item) {
    if (tail_idx_ == kChunk) {
      Node* n = new Node;
      tail_->next.store(n, std::memory_order_release);
      tail_ = n;
      tail_idx_ = 0;
    }
    ::new (tail_->slot(tail_idx_)) T(std::move(item));
    tail_->count.store(tail_idx_ + 1, std::memory_order_release);
    ++tail_idx_;
  }

  /// Consumer side only. Returns false when no published item is visible.
  bool try_pop(T& out) {
    if (head_idx_ == kChunk) {
      Node* n = head_->next.load(std::memory_order_acquire);
      if (n == nullptr) return false;
      delete head_;
      head_ = n;
      head_idx_ = 0;
    }
    if (head_idx_ >= head_->count.load(std::memory_order_acquire)) {
      return false;
    }
    T* item = std::launder(reinterpret_cast<T*>(head_->slot(head_idx_)));
    out = std::move(*item);
    item->~T();
    ++head_idx_;
    return true;
  }

 private:
  struct Node {
    std::atomic<std::size_t> count{0};  // items published in this chunk
    std::atomic<Node*> next{nullptr};
    alignas(T) unsigned char storage[kChunk * sizeof(T)];
    void* slot(std::size_t i) { return storage + i * sizeof(T); }
  };

  // Consumer-owned cursor (own cache line: the two ends never share one).
  alignas(64) Node* head_;
  std::size_t head_idx_ = 0;
  // Producer-owned cursor.
  alignas(64) Node* tail_;
  std::size_t tail_idx_ = 0;
};

}  // namespace stellar
