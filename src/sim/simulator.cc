#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "check/check.h"

namespace stellar {

EventHandle Simulator::schedule_at(SimTime at, Action action) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(action)});
  pending_ids_.insert(id);
  ++live_events_;
  return EventHandle{id};
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  auto it = pending_ids_.find(handle.id());
  if (it == pending_ids_.end()) return false;
  pending_ids_.erase(it);
  cancelled_.insert(handle.id());
  --live_events_;
  return true;
}

bool Simulator::pop_live(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const&; we must move the action out. The
    // const_cast is confined here and safe: the element is popped right
    // after and never re-compared.
    Event& top = const_cast<Event&>(queue_.top());
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    out = std::move(top);
    queue_.pop();
    pending_ids_.erase(out.id);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Event ev;
  if (!pop_live(ev)) return false;
  STELLAR_CHECK(ev.at >= now_,
                "event scheduled at %lld ps would run before now=%lld ps",
                static_cast<long long>(ev.at.ps()),
                static_cast<long long>(now_.ps()));
  now_ = ev.at;
  --live_events_;
  ++executed_;
  ev.action();
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  Event ev;
  while (!queue_.empty()) {
    if (!pop_live(ev)) break;
    if (ev.at > deadline) {
      // Put it back: live event beyond the horizon. Re-push preserving
      // original seq so ordering stays stable.
      pending_ids_.insert(ev.id);
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.at;
    --live_events_;
    ++executed_;
    ++n;
    ev.action();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace stellar
