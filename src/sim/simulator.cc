#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "check/check.h"

namespace stellar {

Simulator::Simulator() = default;

// ---------------------------------------------------------------------------
// Event record pool
// ---------------------------------------------------------------------------

std::uint32_t Simulator::alloc_record() {
  if (free_head_ == kNone) {
    STELLAR_CHECK(pool_capacity_ + kChunkSize <= (std::size_t{1} << kIdxBits),
                  "event-record pool exceeded %llu records",
                  static_cast<unsigned long long>(std::size_t{1} << kIdxBits));
    auto chunk = std::make_unique<EventRecord[]>(kChunkSize);
    const auto base = static_cast<std::uint32_t>(pool_capacity_);
    for (std::size_t i = kChunkSize; i > 0; --i) {
      chunk[i - 1].next_free = free_head_;
      free_head_ = base + static_cast<std::uint32_t>(i) - 1;
    }
    chunks_.push_back(std::move(chunk));
    pool_capacity_ += kChunkSize;
  }
  const std::uint32_t idx = free_head_;
  EventRecord& r = record(idx);
  free_head_ = r.next_free;
  ++allocated_records_;
  return idx;
}

void Simulator::free_record(std::uint32_t idx) {
  EventRecord& r = record(idx);
  r.action.reset();
  r.state = RecState::kFree;
  ++r.gen;  // invalidate any outstanding handle to this slot
  r.next_free = free_head_;
  free_head_ = idx;
  --allocated_records_;
}

// ---------------------------------------------------------------------------
// Overflow heap (far-future events, min-heap by (at, seq))
// ---------------------------------------------------------------------------

void Simulator::overflow_push(Entry e) {
  overflow_.push_back(e);
  std::push_heap(overflow_.begin(), overflow_.end(),
                 [](const Entry& a, const Entry& b) {
                   return EntryLess{}(b, a);
                 });
}

Simulator::Entry Simulator::overflow_pop() {
  std::pop_heap(overflow_.begin(), overflow_.end(),
                [](const Entry& a, const Entry& b) {
                  return EntryLess{}(b, a);
                });
  Entry e = overflow_.back();
  overflow_.pop_back();
  return e;
}

// ---------------------------------------------------------------------------
// Wheel placement
// ---------------------------------------------------------------------------

void Simulator::place_entry(const Entry& e) {
  for (int l = 0; l < kLevels; ++l) {
    const std::int64_t tl = e.at_ps >> level_shift(l);
    const std::int64_t curl =
        cur_tick_ >> (static_cast<unsigned>(l) * kSlotBits);
    if (tl - curl < static_cast<std::int64_t>(kSlots)) {
      WheelLevel& level = levels_[l];
      const std::size_t s = static_cast<std::size_t>(tl) & kSlotMask;
      level.slots[s].push_back(e);
      level.occupied[s >> 6] |= std::uint64_t{1} << (s & 63);
      ++level.count;
      return;
    }
  }
  overflow_push(e);
}

void Simulator::bucket_insert(const Entry& e) {
  auto it = std::upper_bound(bucket_.begin() +
                                 static_cast<std::ptrdiff_t>(bucket_pos_),
                             bucket_.end(), e, EntryLess{});
  bucket_.insert(it, e);
}

void Simulator::rewind_to(std::int64_t new_tick) {
  // The cursor parked on a far-future tick (run_until() peeked past its
  // deadline) and a nearer event is now being scheduled. Slot residency is
  // cursor-relative, so pull every wheel entry out and re-place it against
  // the new, earlier cursor. Rare: only outside-run scheduling after such a
  // park can trigger it, never event-driven scheduling (which is >= now).
  std::vector<Entry> all(bucket_.begin() +
                             static_cast<std::ptrdiff_t>(bucket_pos_),
                         bucket_.end());
  bucket_.clear();
  bucket_pos_ = 0;
  for (auto& level : levels_) {
    if (level.count == 0) continue;
    for (std::size_t s = 0; s < kSlots; ++s) {
      if (level.slots[s].empty()) continue;
      all.insert(all.end(), level.slots[s].begin(), level.slots[s].end());
      level.slots[s].clear();
    }
    std::fill(level.occupied.begin(), level.occupied.end(), 0);
    level.count = 0;
  }
  cur_tick_ = new_tick;
  for (const Entry& e : all) {
    if ((e.at_ps >> kGranularityShift) == cur_tick_) {
      bucket_.push_back(e);
    } else {
      place_entry(e);  // overflow entries stay put; they merge on advance
    }
  }
  std::sort(bucket_.begin(), bucket_.end(), EntryLess{});
}

std::int64_t Simulator::next_occupied_tick(int level) const {
  const WheelLevel& l = levels_[level];
  if (l.count == 0) return -1;
  const std::int64_t curl =
      cur_tick_ >> (static_cast<unsigned>(level) * kSlotBits);
  // Ring-scan the occupancy bitmap starting just after the cursor slot;
  // ring distance order is tick order because a slot holds one tick at a
  // time and all pending ticks are within one wheel revolution.
  const std::size_t start = static_cast<std::size_t>(curl + 1) & kSlotMask;
  std::size_t word = start >> 6;
  std::uint64_t bits = l.occupied[word] & (~std::uint64_t{0} << (start & 63));
  for (std::size_t scanned = 0; scanned <= kSlots / 64; ++scanned) {
    if (bits != 0) {
      const std::size_t s =
          (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
      return l.slots[s].front().at_ps >> level_shift(level);
    }
    ++word;
    if (word == kSlots / 64) word = 0;
    bits = l.occupied[word];
  }
  return -1;  // unreachable while count > 0
}

void Simulator::cascade(int level, std::int64_t level_tick) {
  WheelLevel& l = levels_[level];
  const std::size_t s = static_cast<std::size_t>(level_tick) & kSlotMask;
  std::vector<Entry> moved;
  moved.swap(l.slots[s]);
  l.occupied[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
  l.count -= moved.size();

  cur_tick_ = level_tick << (static_cast<unsigned>(level) * kSlotBits);

  // Entries already sitting in the level-0 slot of the new cursor tick share
  // that tick by construction; they belong to the bucket now.
  WheelLevel& l0 = levels_[0];
  const std::size_t s0 = static_cast<std::size_t>(cur_tick_) & kSlotMask;
  if (!l0.slots[s0].empty()) {
    l0.count -= l0.slots[s0].size();
    l0.occupied[s0 >> 6] &= ~(std::uint64_t{1} << (s0 & 63));
    bucket_.insert(bucket_.end(), l0.slots[s0].begin(), l0.slots[s0].end());
    l0.slots[s0].clear();
  }

  for (const Entry& e : moved) {
    if (tombstones_ != 0 &&
        record(entry_idx(e)).state == RecState::kCancelled) {
      // Sweep tombstones on the way down instead of carrying them along.
      free_record(entry_idx(e));
      --tombstones_;
      continue;
    }
    if ((e.at_ps >> kGranularityShift) == cur_tick_) {
      bucket_.push_back(e);
    } else {
      place_entry(e);
    }
  }
}

bool Simulator::advance_to_next_bucket() {
  bucket_.clear();
  bucket_pos_ = 0;
  for (;;) {
    if (!bucket_.empty()) {
      // A cascade (or slot/overflow move) established the active tick; fold
      // in any overflow entries that share it and expose the sorted bucket.
      while (!overflow_.empty() &&
             (overflow_.front().at_ps >> kGranularityShift) == cur_tick_) {
        bucket_.push_back(overflow_pop());
      }
      std::sort(bucket_.begin(), bucket_.end(), EntryLess{});
      return true;
    }
    const std::int64_t t0 = next_occupied_tick(0);
    const std::int64_t t1 = next_occupied_tick(1);
    const std::int64_t t1win = t1 >= 0 ? t1 << kSlotBits : -1;
    const std::int64_t tov =
        overflow_.empty() ? -1 : overflow_.front().at_ps >> kGranularityShift;
    if (t0 < 0 && t1win < 0 && tov < 0) return false;
    // Cascade the outer wheel when its window opens first. Ties go to the
    // cascade: its window may share the tick with level-0/overflow entries,
    // and the bucket merge above reunites them.
    if (t1win >= 0 && (t0 < 0 || t1win <= t0) && (tov < 0 || t1win <= tov)) {
      cascade(1, t1);
      continue;
    }
    if (t0 >= 0 && (tov < 0 || t0 <= tov)) {
      cur_tick_ = t0;
      WheelLevel& l0 = levels_[0];
      const std::size_t s = static_cast<std::size_t>(t0) & kSlotMask;
      bucket_.swap(l0.slots[s]);
      l0.occupied[s >> 6] &= ~(std::uint64_t{1} << (s & 63));
      l0.count -= bucket_.size();
      continue;
    }
    cur_tick_ = tov;
    while (!overflow_.empty() &&
           (overflow_.front().at_ps >> kGranularityShift) == cur_tick_) {
      bucket_.push_back(overflow_pop());
    }
  }
}

std::uint32_t Simulator::peek_live() {
  for (;;) {
    while (bucket_pos_ < bucket_.size()) {
      const Entry& e = bucket_[bucket_pos_];
      const std::uint32_t idx = entry_idx(e);
      if (bucket_pos_ + 1 < bucket_.size()) {
        // The next record is touched either way (tombstone sweep or the
        // next peek); overlap its load with this event's work.
        __builtin_prefetch(&record(entry_idx(bucket_[bucket_pos_ + 1])));
      }
      if (tombstones_ != 0 && record(idx).state == RecState::kCancelled) {
        free_record(idx);
        --tombstones_;
        ++bucket_pos_;
        continue;
      }
      return idx;
    }
    if (!advance_to_next_bucket()) return kNone;
  }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

EventHandle Simulator::schedule_at(SimTime at, Action action) {
  return schedule_at_seq(at, next_seq_++, std::move(action));
}

EventHandle Simulator::schedule_at_seq(SimTime at, std::uint64_t reserved_seq,
                                       Action action) {
  owner_.assert_held();
  STELLAR_DCHECK(reserved_seq < next_seq_,
                 "seq %llu was never reserved (next is %llu)",
                 static_cast<unsigned long long>(reserved_seq),
                 static_cast<unsigned long long>(next_seq_));
  STELLAR_CHECK(reserved_seq < (std::uint64_t{1} << kRemoteStampBits),
                "local event seq space exhausted");
  return schedule_with_key(at, reserved_seq, std::move(action));
}

EventHandle Simulator::schedule_remote(SimTime at, std::uint64_t stamp,
                                       Action action) {
  owner_.assert_held();
  // Remote stamps are allocated on the *sending* shard, so they are
  // unrelated to (and routinely numerically ahead of) this shard's
  // next_seq_ — they get their own tier instead of the reserved-seq
  // validation above. The rewind machinery below is shared: an inbound
  // handoff can land behind a cursor that run_until() parked on a
  // far-future slot, exactly like outside-run local scheduling.
  STELLAR_CHECK(stamp < (std::uint64_t{1} << kRemoteStampBits),
                "remote event stamp space exhausted");
  return schedule_with_key(at, (std::uint64_t{1} << kRemoteStampBits) | stamp,
                           std::move(action));
}

EventHandle Simulator::schedule_with_key(SimTime at, std::uint64_t seq,
                                         Action action) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint32_t idx = alloc_record();
  EventRecord& r = record(idx);
  r.at_ps = at.ps();
  r.state = RecState::kPending;
  r.action = std::move(action);
  const Entry e{at.ps(), seq << kIdxBits | idx};
  const std::int64_t t0 = at.ps() >> kGranularityShift;
  if (t0 < cur_tick_) rewind_to(t0);
  if (t0 == cur_tick_) {
    bucket_insert(e);
  } else if (static_cast<std::uint64_t>(t0 - cur_tick_) < kSlots) {
    // Hot path: almost every event lands in the level-0 window.
    WheelLevel& l0 = levels_[0];
    const std::size_t s = static_cast<std::size_t>(t0) & kSlotMask;
    l0.slots[s].push_back(e);
    l0.occupied[s >> 6] |= std::uint64_t{1} << (s & 63);
    ++l0.count;
  } else {
    place_entry(e);
  }
  ++live_events_;
  ++pending_count_;
  return EventHandle{(static_cast<std::uint64_t>(idx) + 1) << 32 | r.gen};
}

bool Simulator::cancel(EventHandle handle) {
  owner_.assert_held();
  if (!handle.valid()) return false;
  const std::uint64_t id = handle.id();
  const std::uint64_t slot = id >> 32;
  if (slot == 0 || slot > pool_capacity_) return false;
  const auto idx = static_cast<std::uint32_t>(slot - 1);
  EventRecord& r = record(idx);
  if (r.state != RecState::kPending ||
      r.gen != static_cast<std::uint32_t>(id)) {
    return false;
  }
  r.state = RecState::kCancelled;
  r.action.reset();  // release captures now; the entry sweeps lazily
  --live_events_;
  --pending_count_;
  ++tombstones_;
  return true;
}

void Simulator::consume_and_run(std::uint32_t idx) {
  EventRecord& r = record(idx);
  STELLAR_CHECK(r.at_ps >= now_.ps(),
                "event scheduled at %lld ps would run before now=%lld ps",
                static_cast<long long>(r.at_ps),
                static_cast<long long>(now_.ps()));
  now_ = SimTime::picos(r.at_ps);
  ++bucket_pos_;
  // Retire the record before invoking: the generation bump kills any
  // outstanding handle (a self-cancel from inside the action must fail,
  // as it did when events were popped off the old heap), but the record
  // joins the free list only after the action returns, so the closure
  // runs in place — no 64-byte relocation per event — and a reentrant
  // schedule can never be handed this slot while it executes. All the
  // counters (including the pool's) drop before the call, so an auditor
  // running *inside* the action sees consistent double-entry books.
  r.state = RecState::kFree;
  ++r.gen;
  --live_events_;
  --pending_count_;
  --allocated_records_;
  ++executed_;
  r.action();
  r.action.reset();
  r.next_free = free_head_;
  free_head_ = idx;
}

bool Simulator::step() {
  owner_.assert_held();
  const std::uint32_t idx = peek_live();
  if (idx == kNone) return false;
  consume_and_run(idx);
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  owner_.assert_held();
  std::uint64_t n = 0;
  for (;;) {
    const std::uint32_t idx = peek_live();
    if (idx == kNone) break;
    // Live event beyond the horizon: leave it queued — peeking never pops,
    // so there is nothing to re-push.
    if (record(idx).at_ps > deadline.ps()) break;
    consume_and_run(idx);
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

Simulator::HeapStats Simulator::heap_stats() const {
  owner_.assert_held();
  HeapStats st;
  for (const auto& level : levels_) {
    for (const auto& slot : level.slots) st.wheel_entries += slot.size();
  }
  st.overflow_entries = overflow_.size();
  st.bucket_entries = bucket_.size() - bucket_pos_;
  st.queued = st.wheel_entries + st.overflow_entries + st.bucket_entries;
  st.tombstones = tombstones_;
  st.pending_ids = pending_count_;
  st.live_events = live_events_;
  st.allocated_records = allocated_records_;
  st.pool_capacity = pool_capacity_;
  return st;
}

}  // namespace stellar
