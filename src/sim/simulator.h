// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps run in the
// order they were scheduled (a monotonically increasing sequence number
// breaks ties), so every experiment is exactly reproducible.
//
// Hot-path design (docs/PERF.md has the full write-up):
//
//  * Scheduling is a hierarchical timing wheel (calendar queue): two
//    4096-slot wheels — 8.192 ns slots covering ~33.6 us, then ~33.6 us
//    slots covering ~137 ms — with a binary min-heap for events beyond the
//    outer horizon. Schedule and pop are O(1) amortized; only far-future
//    timers (fault plans, second-scale horizons) ever touch the heap.
//  * Events live in a pooled slab of records addressed by index; an
//    EventHandle encodes (index, generation), so cancel() is one array
//    access plus a generation compare — no hash lookups anywhere.
//  * Callables are stored as InlineAction (64-byte small-buffer storage),
//    so scheduling a hot-path event never heap-allocates.
//
// Determinism contract: events fire in strict (time, seq) order. Wheel
// slots are coarser than a picosecond, so each slot is sorted by
// (time, seq) when it becomes current; cascades and overflow merges
// preserve the same total order. See tests/sim_determinism_test.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "sim/inline_action.h"

namespace stellar {

/// Handle returned by Simulator::schedule(); can cancel a pending event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }
  std::uint64_t id() const { return id_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  using Action = InlineAction;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `action` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` after the current time.
  EventHandle schedule_after(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Consume and return the next tie-break sequence number without
  /// scheduling anything. A pipelined producer (e.g. a link draining many
  /// in-flight packets through one shared event) reserves a seq at the
  /// moment it would classically have scheduled a per-item event, then
  /// arms the shared event with schedule_at_seq(): equal-timestamp FIFO
  /// ordering against every other event stays exactly as if each item had
  /// its own event.
  std::uint64_t reserve_seq() {
    owner_.assert_held();
    return next_seq_++;
  }

  /// Schedule `action` at `at` using a previously reserve_seq()'d tie-break
  /// sequence number instead of consuming a fresh one. Each reserved seq
  /// must be used at most once.
  EventHandle schedule_at_seq(SimTime at, std::uint64_t reserved_seq,
                              Action action);

  /// Remote-tier tie-break stamps. The 40-bit sequence space is split in
  /// two: locally allocated seqs (schedule_at / reserve_seq) stay below
  /// 2^kRemoteStampBits, and cross-shard handoffs delivered by the parallel
  /// engine (sim/parallel.h) carry a sender-allocated `stamp` that lands in
  /// the top half as seq' = 2^kRemoteStampBits | stamp. At equal
  /// timestamps every local event therefore sorts before every inbound
  /// remote, and because each stamp encodes (src_seq, src_shard) — both
  /// allocated deterministically on the sending shard — the merged
  /// (time, seq) execution order is a pure function of the workload,
  /// independent of channel drain timing or thread count.
  static constexpr unsigned kRemoteStampBits = 39;

  /// Schedule an inbound cross-shard event. `stamp` must be unique per
  /// sender (the parallel engine packs (src_seq << shard_bits | src_shard))
  /// and `at` must satisfy the conservative lookahead bound, i.e. lie at or
  /// beyond every horizon this shard has already run to.
  EventHandle schedule_remote(SimTime at, std::uint64_t stamp, Action action);

  /// Renounce the SingleOwner claim on the whole scheduler so another
  /// thread can claim it: the parallel engine hands each shard to its
  /// worker at window start and back to the driving thread (for auditors
  /// and emitters) at the merged barrier. Call only at quiescent hand-off
  /// points — never while events are executing.
  void release_owner() const { owner_.release(); }

  /// Cancel a pending event. Returns false if it already ran / was cancelled.
  bool cancel(EventHandle handle);

  /// Run until the event queue drains. Returns number of events executed.
  std::uint64_t run();

  /// Run until the queue drains or simulated time reaches `deadline`
  /// (events at exactly `deadline` do run). Remaining events stay queued.
  std::uint64_t run_until(SimTime deadline);

  /// Execute at most one pending event. Returns false if queue is empty.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::uint64_t pending_events() const { return live_events_; }
  std::uint64_t executed_events() const { return executed_; }

  /// Internal bookkeeping snapshot for the scheduler-sanity invariant
  /// auditor. `queued` is ground truth (the wheels, overflow heap, and
  /// current bucket are walked); the other totals are double-entry
  /// counters that must agree with it and with each other.
  struct HeapStats {
    std::size_t queued = 0;       // entries walked across wheel+heap+bucket
    std::size_t tombstones = 0;   // cancelled entries awaiting lazy sweep
    std::size_t pending_ids = 0;  // live (schedulable) entries [counter]
    std::uint64_t live_events = 0;
    // Breakdown + pool accounting (bench/auditor detail).
    std::size_t wheel_entries = 0;     // across all wheel levels
    std::size_t overflow_entries = 0;  // far-future min-heap
    std::size_t bucket_entries = 0;    // current-slot bucket remainder
    std::size_t allocated_records = 0; // pool records in use
    std::size_t pool_capacity = 0;     // pool records ever created
  };
  HeapStats heap_stats() const;

 private:
  friend struct SimulatorTestPeer;  // corruption injection in audit tests

  // Shard-safety contract: the whole scheduler is single-owner state — one
  // shard (today: the one simulation thread) drives it without locks. The
  // deep scheduler structures are STELLAR_GUARDED_BY(owner_); every public
  // mutating entry point opens with owner_.assert_held(), which the clang
  // thread-safety analysis treats as acquiring the capability and audit
  // builds enforce at runtime (src/common/mutex.h). The published counters
  // (now_, live_events_, executed_, next_seq_) stay unannotated: they are
  // written only under the same ownership and read by cold accessors.

  // -- Event record pool ------------------------------------------------------
  //
  // Records live in fixed chunks (stable addresses) and are recycled
  // through a free list. A handle id packs (index+1) << 32 | generation;
  // generation bumps on every recycle, so stale handles can never cancel
  // a reused slot.

  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  enum class RecState : std::uint8_t { kFree, kPending, kCancelled };

  struct EventRecord {
    InlineAction action;
    // `at` is only meaningful while pending/cancelled and `next_free` only
    // while free, so they share storage: the record stays ≤ 96 bytes.
    union {
      std::int64_t at_ps;  // pending/cancelled (SimTime is non-trivial)
      std::uint32_t next_free;
    };
    std::uint32_t gen = 0;
    RecState state = RecState::kFree;
  };

  static constexpr unsigned kChunkBits = 9;  // 512 records per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;

  // -- Timing wheel -----------------------------------------------------------

  /// A scheduled entry as stored in wheel slots / overflow / bucket.
  /// 16 bytes: `key` packs (seq << kIdxBits) | record-index, so comparing
  /// (at_ps, key) is the unique (time, seq) total execution order (seq is
  /// unique, so the idx low bits never decide) and sort/cascade moves stay
  /// cheap. kIdxBits caps the pool at 16M live records and seq at 2^40
  /// events — both checked, neither reachable in practice.
  static constexpr unsigned kIdxBits = 24;
  static constexpr std::uint64_t kIdxMask = (std::uint64_t{1} << kIdxBits) - 1;
  // The remote tier is the top bit of the seq field; locals get the rest.
  static_assert(kRemoteStampBits + 1 == 64 - kIdxBits,
                "remote stamp tier must exactly fill the seq field");

  struct Entry {
    std::int64_t at_ps;
    std::uint64_t key;
  };
  static constexpr std::uint32_t entry_idx(const Entry& e) {
    return static_cast<std::uint32_t>(e.key & kIdxMask);
  }
  /// Inline comparator (std::sort with a function pointer cannot inline the
  /// compare, which dominated bucket sorting before this).
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at_ps != b.at_ps) return a.at_ps < b.at_ps;
      return a.key < b.key;
    }
  };

  static constexpr int kLevels = 2;
  static constexpr unsigned kSlotBits = 12;  // 4096 slots per level
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;
  static constexpr std::size_t kSlotMask = kSlots - 1;
  /// Level-0 slot width: 2^13 ps = 8.192 ns — fine enough that a loaded
  /// fabric puts only a handful of events in each slot, keeping the
  /// per-slot sort cheap. Level l slot width is 2^(13 + 12*l) ps, so level
  /// 1 slots span ~33.6 us and the wheels together cover ~137 ms ahead of
  /// the cursor; only longer timers (fault plans, multi-second horizons)
  /// reach the overflow heap.
  static constexpr unsigned kGranularityShift = 13;

  struct WheelLevel {
    std::vector<std::vector<Entry>> slots{kSlots};
    std::vector<std::uint64_t> occupied =
        std::vector<std::uint64_t>(kSlots / 64, 0);
    std::size_t count = 0;
  };

  static constexpr unsigned level_shift(int level) {
    return kGranularityShift + static_cast<unsigned>(level) * kSlotBits;
  }

  EventRecord& record(std::uint32_t idx) STELLAR_REQUIRES(owner_) {
    return chunks_[idx >> kChunkBits][idx & (kChunkSize - 1)];
  }
  const EventRecord& record(std::uint32_t idx) const
      STELLAR_REQUIRES(owner_) {
    return chunks_[idx >> kChunkBits][idx & (kChunkSize - 1)];
  }

  std::uint32_t alloc_record() STELLAR_REQUIRES(owner_);
  void free_record(std::uint32_t idx) STELLAR_REQUIRES(owner_);

  /// Place an entry whose level-0 tick differs from cur_tick_ into the
  /// right wheel level or the overflow heap.
  void place_entry(const Entry& e) STELLAR_REQUIRES(owner_);
  /// Sorted insert into the active bucket (entry tick == cur_tick_).
  void bucket_insert(const Entry& e) STELLAR_REQUIRES(owner_);
  /// Move the un-drained tail of the bucket back into the wheels and make
  /// `new_tick` the active tick (scheduling earlier than the cursor after
  /// run_until() parked it on a far-future slot).
  void rewind_to(std::int64_t new_tick) STELLAR_REQUIRES(owner_);
  /// Smallest pending tick at `level` granularity, or -1 if level empty.
  std::int64_t next_occupied_tick(int level) const STELLAR_REQUIRES(owner_);
  /// Move one outer-level slot down: its entries land in the level-0
  /// wheel or the bucket; tombstones are swept on the way.
  void cascade(int level, std::int64_t level_tick) STELLAR_REQUIRES(owner_);
  /// Load the next non-empty slot into bucket_ (sorted). False if drained.
  bool advance_to_next_bucket() STELLAR_REQUIRES(owner_);
  /// Shared body of schedule_at_seq / schedule_remote: place an entry
  /// keyed (at, seq << kIdxBits | idx), rewinding a parked cursor when the
  /// event lands behind it. `seq` is a full 40-bit key tier (local or
  /// remote) already validated by the caller.
  EventHandle schedule_with_key(SimTime at, std::uint64_t seq, Action action)
      STELLAR_REQUIRES(owner_);
  /// Index of the next live event without consuming it, or kNone.
  /// Sweeps tombstones and advances the wheel cursor as needed.
  std::uint32_t peek_live() STELLAR_REQUIRES(owner_);
  /// Pop the event found by peek_live() and run it.
  void consume_and_run(std::uint32_t idx) STELLAR_REQUIRES(owner_);

  void overflow_push(Entry e) STELLAR_REQUIRES(owner_);
  Entry overflow_pop() STELLAR_REQUIRES(owner_);

  // Single-owner capability for the whole scheduler (see contract above).
  SingleOwner owner_;

  // Pool.
  std::vector<std::unique_ptr<EventRecord[]>> chunks_
      STELLAR_GUARDED_BY(owner_);
  std::uint32_t free_head_ STELLAR_GUARDED_BY(owner_) = kNone;
  std::size_t pool_capacity_ STELLAR_GUARDED_BY(owner_) = 0;
  std::size_t allocated_records_ STELLAR_GUARDED_BY(owner_) = 0;

  // Scheduler structures.
  WheelLevel levels_[kLevels] STELLAR_GUARDED_BY(owner_);
  // min-heap by (at, seq)
  std::vector<Entry> overflow_ STELLAR_GUARDED_BY(owner_);
  // active tick, sorted ascending
  std::vector<Entry> bucket_ STELLAR_GUARDED_BY(owner_);
  // consumed prefix of bucket_
  std::size_t bucket_pos_ STELLAR_GUARDED_BY(owner_) = 0;
  // level-0 tick the bucket belongs to
  std::int64_t cur_tick_ STELLAR_GUARDED_BY(owner_) = 0;

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t live_events_ = 0;
  std::uint64_t executed_ = 0;
  // Double-entry bookkeeping mirrored by the auditor against `queued`.
  std::size_t pending_count_ STELLAR_GUARDED_BY(owner_) = 0;
  std::size_t tombstones_ STELLAR_GUARDED_BY(owner_) = 0;
};

}  // namespace stellar
