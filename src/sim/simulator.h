// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events at equal timestamps run in the
// order they were scheduled (a monotonically increasing sequence number
// breaks ties), so every experiment is exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace stellar {

/// Handle returned by Simulator::schedule(); can cancel a pending event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }
  std::uint64_t id() const { return id_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedule `action` to run at absolute time `at` (must be >= now()).
  EventHandle schedule_at(SimTime at, Action action);

  /// Schedule `action` to run `delay` after the current time.
  EventHandle schedule_after(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancel a pending event. Returns false if it already ran / was cancelled.
  bool cancel(EventHandle handle);

  /// Run until the event queue drains. Returns number of events executed.
  std::uint64_t run();

  /// Run until the queue drains or simulated time reaches `deadline`
  /// (events at exactly `deadline` do run). Remaining events stay queued.
  std::uint64_t run_until(SimTime deadline);

  /// Execute at most one pending event. Returns false if queue is empty.
  bool step();

  bool empty() const { return live_events_ == 0; }
  std::uint64_t pending_events() const { return live_events_; }
  std::uint64_t executed_events() const { return executed_; }

  /// Internal bookkeeping snapshot for the heap-sanity invariant auditor:
  /// every queued entry is either pending or tombstoned, and the live-event
  /// counter mirrors the pending-id set.
  struct HeapStats {
    std::size_t queued = 0;       // entries in the priority queue
    std::size_t tombstones = 0;   // cancelled ids awaiting lazy removal
    std::size_t pending_ids = 0;  // ids of schedulable (live) events
    std::uint64_t live_events = 0;
  };
  HeapStats heap_stats() const {
    return {queue_.size(), cancelled_.size(), pending_ids_.size(),
            live_events_};
  }

 private:
  friend struct SimulatorTestPeer;  // corruption injection in audit tests
  struct Event {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::uint64_t id;
    Action action;

    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  // Cancellation is lazy: ids land in a tombstone set and the event is
  // dropped when it surfaces at the heap top, keeping cancel() O(1).
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_ids_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t live_events_ = 0;
  std::uint64_t executed_ = 0;

  /// Pop events until a live one is found; returns false if queue drained.
  bool pop_live(Event& out);
};

}  // namespace stellar
