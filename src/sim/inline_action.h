// Allocation-free callable for the simulation hot path.
//
// InlineAction is a move-only replacement for std::function<void()> whose
// small-buffer storage is large enough (kInlineBytes) that every hot-path
// event closure in the engine fits inline — scheduling a packet hop never
// touches the heap. Callables that exceed the buffer still work (they fall
// back to a heap box), so cold-path code keeps its ergonomics; hot call
// sites pin the contract with `static_assert(InlineAction::fits_inline<F>)`.
//
// Dispatch is split for speed where it matters:
//
//  * invoke_ is a dedicated function pointer, so operator() is one indirect
//    call — no op-code dispatch on the hot fire path.
//  * manage_ handles relocate/destroy and is nullptr for trivially copyable,
//    trivially destructible callables (the common pointer-capture lambdas):
//    moving those is a plain 64-byte copy and destruction is free, so
//    scheduler slot reshuffles never make an indirect call per element.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace stellar {

class InlineAction {
 public:
  /// Inline storage size. ≥64B by design contract (docs/PERF.md): large
  /// enough for a captured `this` plus a handful of scalar captures.
  static constexpr std::size_t kInlineBytes = 64;

  /// True when F is stored inline (no heap allocation on construction).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineBytes &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = &inline_invoke<Fn>;
      if constexpr (!trivial<Fn>) manage_ = &inline_manager<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      invoke_ = &boxed_invoke<Fn>;
      manage_ = &boxed_manager<Fn>;
    }
  }

  InlineAction(InlineAction&& o) noexcept
      : invoke_(o.invoke_), manage_(o.manage_) {
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        std::memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        manage_(Op::kRelocate, buf_, o.buf_);
      }
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
  }

  InlineAction& operator=(InlineAction&& o) noexcept {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      if (invoke_ != nullptr) {
        if (manage_ == nullptr) {
          std::memcpy(buf_, o.buf_, kInlineBytes);
        } else {
          manage_(Op::kRelocate, buf_, o.buf_);
        }
        o.invoke_ = nullptr;
        o.manage_ = nullptr;
      }
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  enum class Op { kRelocate, kDestroy };
  using Invoker = void (*)(void* self);
  using Manager = void (*)(Op, void* self, void* other);

  /// Trivial callables move by memcpy and need no destructor call.
  template <typename Fn>
  static constexpr bool trivial =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static void inline_invoke(void* self) {
    (*std::launder(reinterpret_cast<Fn*>(self)))();
  }

  template <typename Fn>
  static void boxed_invoke(void* self) {
    (**reinterpret_cast<Fn**>(self))();
  }

  template <typename Fn>
  static void inline_manager(Op op, void* self, void* other) {
    switch (op) {
      case Op::kRelocate: {
        auto* src = std::launder(reinterpret_cast<Fn*>(other));
        ::new (self) Fn(std::move(*src));
        src->~Fn();
        break;
      }
      case Op::kDestroy:
        std::launder(reinterpret_cast<Fn*>(self))->~Fn();
        break;
    }
  }

  template <typename Fn>
  static void boxed_manager(Op op, void* self, void* other) {
    auto** box = reinterpret_cast<Fn**>(self);
    switch (op) {
      case Op::kRelocate:
        *box = *reinterpret_cast<Fn**>(other);
        break;
      case Op::kDestroy:
        delete *box;
        break;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  Invoker invoke_ = nullptr;
  Manager manage_ = nullptr;
};

}  // namespace stellar
