// Allocation-free callables for the simulation hot path.
//
// InlineFunction<R(Args...)> is a move-only replacement for std::function
// whose small-buffer storage is large enough (kInlineBytes) that every
// hot-path closure in the engine fits inline — scheduling a packet hop or
// delivering a packet through a link never touches the heap. Callables that
// exceed the buffer still work (they fall back to a heap box), so cold-path
// code keeps its ergonomics; hot call sites pin the contract with
// `static_assert(InlineAction::fits_inline<F>)`.
//
// InlineAction (= InlineFunction<void()>) is the event-closure type the
// Simulator schedules; NetLink/ClosFabric use the one-argument form for
// per-packet delivery. The determinism lint (tools/lint/stellar_lint.py,
// rule std-function-hot-path) keeps std::function out of these layers.
//
// Dispatch is split for speed where it matters:
//
//  * invoke_ is a dedicated function pointer, so operator() is one indirect
//    call — no op-code dispatch on the hot fire path.
//  * manage_ handles relocate/destroy and is nullptr for trivially copyable,
//    trivially destructible callables (the common pointer-capture lambdas):
//    moving those is a plain 64-byte copy and destruction is free, so
//    scheduler slot reshuffles never make an indirect call per element.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace stellar {

template <typename Sig>
class InlineFunction;  // only the R(Args...) specialization exists

template <typename R, typename... Args>
class InlineFunction<R(Args...)> {
 public:
  /// Inline storage size. ≥64B by design contract (docs/PERF.md): large
  /// enough for a captured `this` plus a handful of scalar captures.
  static constexpr std::size_t kInlineBytes = 64;

  /// True when F is stored inline (no heap allocation on construction).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(F) <= kInlineBytes &&
      alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = &inline_invoke<Fn>;
      if constexpr (!trivial<Fn>) manage_ = &inline_manager<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      invoke_ = &boxed_invoke<Fn>;
      manage_ = &boxed_manager<Fn>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept
      : invoke_(o.invoke_), manage_(o.manage_) {
    if (invoke_ != nullptr) {
      if (manage_ == nullptr) {
        std::memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        manage_(Op::kRelocate, buf_, o.buf_);
      }
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      if (invoke_ != nullptr) {
        if (manage_ == nullptr) {
          std::memcpy(buf_, o.buf_, kInlineBytes);
        } else {
          manage_(Op::kRelocate, buf_, o.buf_);
        }
        o.invoke_ = nullptr;
        o.manage_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() {
    if (manage_ != nullptr) manage_(Op::kDestroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kRelocate, kDestroy };
  using Invoker = R (*)(void* self, Args&&... args);
  using Manager = void (*)(Op, void* self, void* other);

  /// Trivial callables move by memcpy and need no destructor call.
  template <typename Fn>
  static constexpr bool trivial =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static R inline_invoke(void* self, Args&&... args) {
    return (*std::launder(reinterpret_cast<Fn*>(self)))(
        std::forward<Args>(args)...);
  }

  template <typename Fn>
  static R boxed_invoke(void* self, Args&&... args) {
    return (**reinterpret_cast<Fn**>(self))(std::forward<Args>(args)...);
  }

  template <typename Fn>
  static void inline_manager(Op op, void* self, void* other) {
    switch (op) {
      case Op::kRelocate: {
        auto* src = std::launder(reinterpret_cast<Fn*>(other));
        ::new (self) Fn(std::move(*src));
        src->~Fn();
        break;
      }
      case Op::kDestroy:
        std::launder(reinterpret_cast<Fn*>(self))->~Fn();
        break;
    }
  }

  template <typename Fn>
  static void boxed_manager(Op op, void* self, void* other) {
    auto** box = reinterpret_cast<Fn**>(self);
    switch (op) {
      case Op::kRelocate:
        *box = *reinterpret_cast<Fn**>(other);
        break;
      case Op::kDestroy:
        delete *box;
        break;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  Invoker invoke_ = nullptr;
  Manager manage_ = nullptr;
};

/// The event-closure type the Simulator schedules.
using InlineAction = InlineFunction<void()>;

}  // namespace stellar
