#include "sim/fluid.h"

#include <limits>

namespace stellar {

std::uint32_t FluidSolver::add_flow(std::vector<LinkShare> shares) {
  STELLAR_CHECK(!shares.empty(), "fluid flow must cross at least one link");
  for (const LinkShare& s : shares) {
    STELLAR_CHECK(s.link < links_.size(), "fluid flow references unknown link");
    STELLAR_CHECK(s.weight > 0.0, "fluid link share weight must be positive");
  }
  ++active_count_;
  if (!free_ids_.empty()) {
    const std::uint32_t id = free_ids_.back();
    free_ids_.pop_back();
    flows_[id] = Flow{std::move(shares), 0.0, true};
    return id;
  }
  flows_.push_back(Flow{std::move(shares), 0.0, true});
  return static_cast<std::uint32_t>(flows_.size() - 1);
}

void FluidSolver::remove_flow(std::uint32_t flow) {
  Flow& f = flows_.at(flow);
  STELLAR_CHECK(f.active, "removing an inactive fluid flow");
  f.active = false;
  f.rate = 0.0;
  f.shares.clear();
  f.shares.shrink_to_fit();
  --active_count_;
  free_ids_.push_back(flow);
}

double FluidSolver::rate(std::uint32_t flow) const {
  const Flow& f = flows_.at(flow);
  STELLAR_CHECK(f.active, "querying rate of an inactive fluid flow");
  return f.rate;
}

std::vector<std::uint32_t> FluidSolver::flow_ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(active_count_);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].active) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

void FluidSolver::solve() {
  const std::size_t nl = links_.size();
  for (Link& l : links_) l.load = 0.0;
  if (active_count_ == 0) return;

  // Per-link residual capacity and total unfrozen weight. Iteration order
  // is strictly by index, so the floating-point accumulation order — and
  // therefore every derived rate — is identical across runs.
  std::vector<double> residual(nl);
  std::vector<double> unfrozen_weight(nl, 0.0);
  // Integer crossing counts decide whether a link still constrains anyone:
  // the float weight sum can retain a tiny residue after its last flow
  // froze (subtractive cancellation), which would otherwise let a spent
  // link masquerade as the bottleneck that nobody crosses.
  std::vector<std::uint32_t> unfrozen_count(nl, 0);
  for (std::size_t l = 0; l < nl; ++l) residual[l] = links_[l].capacity;

  std::vector<std::uint32_t> active_flows;
  active_flows.reserve(active_count_);
  std::size_t total_shares = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (!flows_[i].active) continue;
    active_flows.push_back(static_cast<std::uint32_t>(i));
    total_shares += flows_[i].shares.size();
    for (const LinkShare& s : flows_[i].shares) {
      unfrozen_weight[s.link] += s.weight;
      ++unfrozen_count[s.link];
    }
  }

  // Inverted index (CSR): for each link, the flows crossing it in flow-index
  // order. Freezing then walks only the bottleneck links' crossing lists
  // instead of rescanning every unfrozen flow's shares each round, which
  // turns the per-solve cost from O(rounds * flows * shares) into
  // O(flows * shares + rounds * active_links).
  std::vector<std::size_t> csr_pos(nl + 1, 0);
  for (std::uint32_t fid : active_flows) {
    for (const LinkShare& s : flows_[fid].shares) ++csr_pos[s.link + 1];
  }
  for (std::size_t l = 0; l < nl; ++l) csr_pos[l + 1] += csr_pos[l];
  std::vector<std::uint32_t> csr_flows(total_shares);
  {
    std::vector<std::size_t> fill(csr_pos.begin(), csr_pos.end() - 1);
    for (std::uint32_t fid : active_flows) {
      for (const LinkShare& s : flows_[fid].shares) {
        csr_flows[fill[s.link]++] = fid;
      }
    }
  }

  // Links with any unfrozen flow, in index order; compacted as they drain
  // so later rounds scan progressively fewer links.
  std::vector<std::uint32_t> active_links;
  active_links.reserve(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    if (unfrozen_count[l] > 0) {
      active_links.push_back(static_cast<std::uint32_t>(l));
    }
  }

  // Bottleneck matching uses a relative tolerance: links that are equal
  // bottlenecks in exact arithmetic can differ in the last few ulps once
  // residuals are updated in different orders, and exact comparison would
  // then freeze those symmetric groups one link per round instead of all
  // at once. The tolerance is deterministic (same arithmetic every run)
  // and the rate perturbation it admits is ~1e-12 relative — far inside
  // the fluid approximation itself.
  constexpr double kBottleneckTol = 1e-12;

  // Progressive filling. Each round picks the link(s) with the smallest
  // attainable common rate, freezes every flow crossing them, and charges
  // the frozen bandwidth against the residual network.
  std::vector<char> frozen(flows_.size(), 0);
  std::size_t remaining = active_flows.size();
  while (remaining > 0) {
    double rmin = std::numeric_limits<double>::infinity();
    std::size_t keep = 0;
    for (std::size_t k = 0; k < active_links.size(); ++k) {
      const std::uint32_t l = active_links[k];
      if (unfrozen_count[l] == 0 || unfrozen_weight[l] <= 0.0) continue;
      active_links[keep++] = l;
      const double r =
          residual[l] > 0.0 ? residual[l] / unfrozen_weight[l] : 0.0;
      if (r < rmin) rmin = r;
    }
    active_links.resize(keep);
    // Every unfrozen flow crosses at least one weighted link, so some link
    // had unfrozen_weight > 0 and rmin is finite.
    STELLAR_CHECK(rmin < std::numeric_limits<double>::infinity(),
                  "fluid solve found no constraining link");

    const double cutoff = rmin + rmin * kBottleneckTol;
    bool froze_any = false;
    for (const std::uint32_t l : active_links) {
      if (unfrozen_count[l] == 0 || unfrozen_weight[l] <= 0.0) continue;
      const double r =
          residual[l] > 0.0 ? residual[l] / unfrozen_weight[l] : 0.0;
      if (r > cutoff) continue;
      // Bottleneck link: freeze its unfrozen crossing flows at rmin.
      for (std::size_t i = csr_pos[l]; i < csr_pos[l + 1]; ++i) {
        const std::uint32_t fid = csr_flows[i];
        if (frozen[fid]) continue;
        frozen[fid] = 1;
        froze_any = true;
        --remaining;
        Flow& f = flows_[fid];
        f.rate = rmin;
        for (const LinkShare& s : f.shares) {
          unfrozen_weight[s.link] -= s.weight;
          --unfrozen_count[s.link];
          residual[s.link] -= s.weight * rmin;
          if (residual[s.link] < 0.0) residual[s.link] = 0.0;
          if (unfrozen_weight[s.link] < 0.0) unfrozen_weight[s.link] = 0.0;
        }
      }
    }
    STELLAR_CHECK(froze_any, "fluid solve made no progress");
  }

  for (const Flow& f : flows_) {
    if (!f.active) continue;
    for (const LinkShare& s : f.shares) {
      links_[s.link].load += s.weight * f.rate;
    }
  }
}

}  // namespace stellar
