// Hybrid fidelity driver: flow-level fast-forward with packet-level zoom
// (ROADMAP item 2; math and tolerance rationale in docs/HYBRID.md).
//
// Each fabric region — one (rail, plane), the unit connections never cross
// on a rail-optimized fabric — is in one of two modes:
//
//   * kPacket: the existing per-packet engine; the driver only watches
//     trigger counters (queue occupancy, ECN marks, retransmits).
//   * kFluid: no packets exist. Every connection is a fluid flow served at
//     the max-min fair rate of FluidSolver over the real link graph, and
//     the simulator jumps straight between flow-completion events.
//
// Transitions are loss-free and deterministic in both directions:
//
//   packet -> fluid (freeze): every link absorb()s the packets it owns
//     (counted by the conservation auditor as their own terminal outcome),
//     and each transport rewinds unacked wire bytes into unsent demand —
//     the same bytes continue as fluid flow state. A receiver-side
//     completion ledger suppresses the double delivery this re-serve
//     could otherwise cause for messages whose ACKs were mid-flight.
//   fluid -> packet (thaw): flows stop, each transport's congestion window
//     is seeded from its fluid rate (rate * base RTT), and send_more()
//     repopulates real queues.
//
// Drop-to-packet triggers: any FaultInjector event touching the fabric, a
// connection posting work the fluid model cannot serve (SEND/READ, QP
// error), an explicit zoom window (benches use this to cover measurement
// or --trace windows), and optionally a persistently saturated bottleneck.
// Promotion back to fluid requires N consecutive quiet trigger epochs
// (queues under threshold, no new ECN marks or retransmits).
//
// Everything is deterministic: regions, links, and clients are iterated in
// construction/registration order, rates come from the deterministic
// solver, and event times are integer picoseconds derived from the same
// arithmetic on every run.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "net/fabric.h"
#include "net/link.h"
#include "sim/fluid.h"
#include "sim/inline_action.h"
#include "sim/simulator.h"

namespace stellar {

enum class RegionMode : std::uint8_t { kPacket, kFluid };

/// A connection's footprint on the link graph, produced by fluid_freeze().
/// `shares` lists (link, fraction-of-packets) in deterministic route order
/// — first-encounter order over path ids, never pointer order.
struct FluidFlowDesc {
  std::uint64_t remaining = 0;  // unacked bytes re-served as fluid demand
  std::vector<std::pair<const NetLink*, double>> shares;
};

/// Sender side of a connection under fluid service (RdmaConnection).
class FluidClient {
 public:
  virtual ~FluidClient() = default;
  virtual std::uint64_t fluid_conn_id() const = 0;
  /// Local endpoint; the driver derives the region from its coordinates.
  virtual EndpointId fluid_endpoint() const = 0;
  /// True if every queued message is fluid-servable (WRITE) and the QP is
  /// healthy. A false answer keeps (or drops) the region in packet mode.
  virtual bool fluid_eligible() const = 0;
  /// True once the QP entered its terminal error state. Errored clients
  /// are skipped at freeze time rather than blocking the whole region.
  virtual bool fluid_errored() const = 0;
  /// Convert packet state to fluid state (rewind unacked bytes, cancel
  /// timers). Called once per freeze; must be valid on a fresh connection.
  virtual FluidFlowDesc fluid_freeze() = 0;
  /// Convert back: seed the congestion window from the last fluid rate
  /// (bytes/sec; 0 = no assigned rate) and resume packet transmission.
  virtual void fluid_thaw(double rate_bytes_per_sec) = 0;
  /// Serve up to `bytes` of queued demand, firing receiver-then-sender
  /// completions exactly as packet mode would. Returns bytes consumed.
  virtual std::uint64_t fluid_serve(std::uint64_t bytes) = 0;
  /// Unserved fluid demand in bytes (0 = flow inactive).
  virtual std::uint64_t fluid_remaining() const = 0;
  /// Bytes until the in-service message completes (0 = no demand).
  virtual std::uint64_t fluid_next_completion_bytes() const = 0;
  /// Cumulative retransmit count — a promotion quietness signal.
  virtual std::uint64_t fluid_retransmit_count() const = 0;
};

/// Receiver side (RdmaEngine): accepts a whole-message fluid delivery.
struct FluidDelivery {
  std::uint64_t conn_id = 0;
  std::uint64_t msg_id = 0;
  std::uint64_t bytes = 0;
  std::uint32_t tag = 0;
  EndpointId src = 0;
};
class FluidReceiver {
 public:
  virtual ~FluidReceiver() = default;
  virtual void fluid_deliver(const FluidDelivery& delivery) = 0;
  /// Partial-progress sync at thaw. `bytes` is the sender's cumulative
  /// served prefix of a still-incomplete message: those bytes never travel
  /// as packets, so the receiver must fold them into its reassembly state
  /// before the packet-mode tail arrives or the message never completes on
  /// the receive side.
  virtual void fluid_advance(const FluidDelivery& delivery) = 0;
};

struct HybridConfig {
  /// Regions start in fluid mode (connections created under a fluid region
  /// are born fluid; their first post never builds packet state).
  bool start_fluid = true;
  /// Poll promotion triggers (hybrid fidelity). false = pure fluid
  /// fidelity: a forced zoom promotes back after one epoch, unconditionally.
  bool poll_triggers = true;
  /// Trigger-poll period while any region is in packet mode.
  SimTime epoch = SimTime::micros(5);
  /// Promotion requires every region link's queue below this.
  std::uint64_t zoom_queue_bytes = 256u << 10;
  /// Consecutive quiet epochs required before promotion.
  std::uint32_t promote_quiet_epochs = 3;
  /// Optionally zoom when the solver reports a saturated bottleneck for
  /// this many consecutive solves (off by default: a max-min bottleneck is
  /// *stable* congestion, which fluid models exactly; benches zoom via
  /// explicit windows instead).
  bool zoom_on_saturation = false;
  std::uint32_t saturation_solves = 4;
};

class HybridDriver {
 public:
  /// Mode-span observation hook, fired when a region leaves a mode (and at
  /// driver destruction for the open span). Benches wire this into the
  /// tracer; the sim layer itself stays obs-free.
  using SpanHook = InlineFunction<void(std::uint32_t region, RegionMode mode,
                                       SimTime begin, SimTime end)>;

  HybridDriver(Simulator& sim, ClosFabric& fabric, HybridConfig config = {});
  ~HybridDriver();
  HybridDriver(const HybridDriver&) = delete;
  HybridDriver& operator=(const HybridDriver&) = delete;

  // -- Registration (called by RdmaEngine) ----------------------------------

  void register_client(FluidClient* client);
  void unregister_client(FluidClient* client);
  void register_receiver(EndpointId endpoint, FluidReceiver* receiver);
  void unregister_receiver(EndpointId endpoint);
  FluidReceiver* receiver(EndpointId endpoint) const;

  // -- Mode control ---------------------------------------------------------

  std::uint32_t region_count() const {
    return static_cast<std::uint32_t>(regions_.size());
  }
  RegionMode region_mode(std::uint32_t region) const {
    return regions_[region].mode;
  }
  RegionMode mode_of(std::uint32_t rail, std::uint32_t plane) const {
    return regions_[rail * fabric_->config().planes + plane].mode;
  }

  /// Drop every region to packet mode now and hold promotion off for at
  /// least `hold`. The FaultInjector calls this for every fabric-touching
  /// event; safe to call redundantly.
  void force_packet(SimTime hold, const char* reason);

  /// Explicit packet-fidelity window [start, end): regions zoom at `start`
  /// and may promote only after `end` (measurement / --trace windows).
  void request_zoom_window(SimTime start, SimTime end);

  // -- Client notifications (called by the transport) -----------------------

  /// New fluid-servable demand was queued on a frozen connection.
  void on_fluid_post(FluidClient* client);
  /// A frozen connection queued work fluid cannot serve — zoom its region.
  void on_ineligible_post(FluidClient* client);
  /// A frozen connection entered QP error; its flow leaves the solver.
  void on_client_error(FluidClient* client);

  void set_span_hook(SpanHook hook) { span_hook_ = std::move(hook); }

  // -- Stats ----------------------------------------------------------------

  std::uint64_t transitions() const { return transitions_; }
  std::uint64_t absorbed_packets() const { return absorbed_packets_; }
  std::uint64_t fluid_bytes_served() const { return fluid_bytes_served_; }
  std::uint64_t fluid_completions() const { return fluid_completions_; }
  /// Simulated time spent in fluid mode, summed over regions (open spans
  /// included up to now()).
  SimTime fluid_time() const;

 private:
  struct ClientInfo {
    FluidClient* client = nullptr;
    std::uint32_t region = 0;
    bool in_fluid = false;
    bool dead = false;  // QP error while frozen; never re-frozen
    std::int64_t flow = -1;
    double carry = 0.0;  // fractional bytes carried between advances
    std::vector<FluidSolver::LinkShare> shares;  // resolved at freeze
  };

  struct Region {
    RegionMode mode = RegionMode::kPacket;
    FluidSolver solver;
    std::vector<NetLink*> links;  // deterministic fabric order
    std::unordered_map<const NetLink*, std::uint32_t> link_index;  // lookup
    std::vector<ClientInfo*> clients;  // registration order
    EventHandle advance_event;
    SimTime last_advance = SimTime::zero();
    bool solve_needed = false;
    bool kick_scheduled = false;
    bool pending_zoom = false;
    const char* pending_zoom_reason = "";
    std::uint32_t quiet_epochs = 0;
    std::uint32_t saturated_solves = 0;
    SimTime span_start = SimTime::zero();
    SimTime fluid_total = SimTime::zero();
    std::uint64_t last_ecn = 0;
    std::uint64_t last_retx = 0;
  };

  std::uint32_t region_of(EndpointId endpoint) const;
  void enter_fluid(std::uint32_t region);
  void zoom_region(std::uint32_t region, const char* reason);
  /// Serve elapsed time, prune finished flows, re-solve, schedule the next
  /// completion — the single advance path every event funnels through.
  void service_region(std::uint32_t region);
  void advance_to_now(Region& rg);
  void schedule_next(std::uint32_t region);
  void schedule_kick(std::uint32_t region);
  void emit_span(std::uint32_t region, Region& rg, RegionMode ended);
  void arm_tick();
  void tick();

  Simulator* sim_;
  ClosFabric* fabric_;
  HybridConfig config_;
  std::vector<Region> regions_;
  std::unordered_map<FluidClient*, std::unique_ptr<ClientInfo>> info_;
  std::unordered_map<EndpointId, FluidReceiver*> receivers_;
  SpanHook span_hook_;
  SimTime hold_until_ = SimTime::zero();
  bool tick_armed_ = false;
  bool in_advance_ = false;
  std::uint64_t transitions_ = 0;
  std::uint64_t absorbed_packets_ = 0;
  std::uint64_t fluid_bytes_served_ = 0;
  std::uint64_t fluid_completions_ = 0;
};

}  // namespace stellar
