// Parallel event engine: sharded conservative PDES over the timing wheel.
//
// A ShardedEngine owns N shards, each a private Simulator (its own timing
// wheel, event pool and SingleOwner capability) plus the model state homed
// on it. Shards run on worker threads under conservative synchronization:
//
//  * Lookahead L. Every cross-shard dependency is a handoff posted at
//    least L after the sending event (for the fabric, L = the minimum
//    propagation delay of any cross-shard link — see
//    net/fabric_partition.h). L is the engine's only physics input.
//
//  * Clocks. Each shard publishes an atomic clock C_s = "I have executed
//    every event at or before C_s" (release store after run_until, so all
//    channel pushes made by those events are visible to an acquire
//    reader).
//
//  * Windows, barrier-free. A shard's safe horizon is
//    h = min(deadline, min_{p != s} C_p + L): any event a peer could still
//    send lands strictly after h, so the shard drains its inbound
//    channels and runs its wheel to h without ever blocking on a barrier.
//    Shards advance independently; the slowest peer only caps the
//    horizon, it never forces a stop-the-world.
//
//  * Handoffs. post(from, to, at, action) stamps the event with a
//    sender-allocated (src_seq, src_shard) and sends it through the
//    directed SPSC channel (sim/spsc.h). The receiver folds it into its
//    wheel as a remote-tier event (Simulator::schedule_remote), which may
//    rewind a parked cursor if the handoff lands behind it.
//
// Deterministic merge rule: every shard executes in (at_ps, seq) order,
// where local events carry shard-allocated seqs below 2^39 and inbound
// handoffs carry 2^39 | (src_seq << 5 | src_shard). Both allocations are
// functions of the workload alone — never of thread placement or channel
// drain timing — so the global execution order reconstructed across
// shards (and therefore every emitter: BENCH JSON, traces, metrics, audit
// walks) is byte-identical for any --threads=N, with --threads=1 as the
// reference. tools/ci_checks.sh gates on exactly that.
//
// Liveness: the shard holding the minimum clock always has
// h >= C_min + L > C_min, so some shard can always advance; termination
// is all clocks at the deadline with no handoff in flight (or every shard
// simultaneously idle with empty channels, which ends the run early).
// Detection is double-checked: in_flight_ is re-verified after the
// clock/idle scan (and the all-idle path also requires the posted-handoff
// counter unchanged across the scan), so a handoff posted mid-scan can
// never be stranded in a channel by a premature stop.
//
// RunSet (below) is the second sharding axis: whole *independent runs*
// (fig-bench sweep points) distributed across workers with
// index-deterministic placement, so emitters that buffer per-run and
// print in index order are byte-identical by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "sim/inline_action.h"
#include "sim/simulator.h"
#include "sim/spsc.h"

namespace stellar {

struct PdesConfig {
  std::uint32_t shards = 1;   // <= ShardedEngine::kMaxShards
  std::uint32_t threads = 1;  // worker threads; 1 runs inline on the caller
  /// Conservative lookahead: a handoff posted by an event at t must carry
  /// at >= t + lookahead. Larger values mean fewer, fatter windows.
  SimTime lookahead = SimTime::nanos(600);
};

class ShardedEngine {
 public:
  /// Shard ids ride in the low 5 bits of every remote stamp.
  static constexpr std::uint32_t kMaxShards = 32;
  static constexpr unsigned kShardIdBits = 5;

  explicit ShardedEngine(const PdesConfig& cfg);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;
  ~ShardedEngine();

  std::uint32_t shards() const { return static_cast<std::uint32_t>(shards_.size()); }
  std::uint32_t threads() const { return threads_; }
  SimTime lookahead() const { return SimTime::picos(lookahead_ps_); }

  Simulator& shard(std::uint32_t s) { return shards_[s]->sim; }
  const Simulator& shard(std::uint32_t s) const { return shards_[s]->sim; }

  /// Cross-shard handoff. Must be called from shard `from`'s owning
  /// thread (typically from inside one of its executing events); `at`
  /// must be at least lookahead past shard `from`'s current time.
  void post(std::uint32_t from, std::uint32_t to, SimTime at,
            Simulator::Action action);

  /// Drive all shards conservatively until `deadline` (inclusive; must be
  /// monotone across calls). Spawns workers when threads > 1, otherwise
  /// runs the same protocol round-robin on the calling thread. On return
  /// every shard is quiescent at now() == deadline (or globally drained)
  /// with ownership released, so auditors and emitters on the calling
  /// thread may walk them — this is the merged barrier. Returns the
  /// number of events executed by this call across all shards.
  std::uint64_t run_until(SimTime deadline);

  std::uint64_t executed_events() const;                 // aggregate
  std::uint64_t shard_executed(std::uint32_t s) const {  // per shard
    assert_quiescent();
    return shards_[s]->sim.executed_events();
  }

  /// Handoff accounting for the merged-barrier auditor: at a barrier
  /// every posted handoff has been drained into its target wheel.
  struct EngineStats {
    std::uint64_t posted = 0;
    std::uint64_t drained = 0;
    std::uint64_t in_flight = 0;
    std::uint64_t windows = 0;  // run_until windows driven (diagnostic
                                // only: varies with thread placement)
  };
  EngineStats stats() const;

 private:
  struct RemoteEvent {
    std::int64_t at_ps = 0;
    std::uint64_t stamp = 0;
    InlineAction action;
  };

  struct alignas(64) Shard {
    Simulator sim;
    /// "Every event at or before clock_ps has executed here."
    std::atomic<std::int64_t> clock_ps{0};
    /// True when the shard's wheel was empty after its last window (and
    /// nothing has been drained into it since). Drives early termination.
    std::atomic<bool> idle{true};
    // Worker-owned (never touched cross-thread while running):
    std::uint64_t next_src_seq = 0;  // remote-stamp allocator
    std::uint64_t drained = 0;
    std::vector<std::unique_ptr<SpscChannel<RemoteEvent>>> in;  // [sender]
  };

  /// Worker `w` drives shards s where s % worker_count == w.
  void drive(std::uint32_t worker, std::uint32_t worker_count,
             std::int64_t deadline_ps);
  bool drain_inbound(Shard& sh);
  /// executed_events()/shard_executed()/stats() sum plain per-shard
  /// counters that worker threads own while run_until is in flight —
  /// checks that the caller is at a merged barrier.
  void assert_quiescent() const;

  std::uint32_t threads_;
  std::int64_t lookahead_ps_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> posted_{0};
  std::atomic<std::uint64_t> windows_{0};
  std::atomic<bool> stop_{false};
  /// True from run_until entry to the merged barrier.
  std::atomic<bool> running_{false};
};

/// Deterministic executor for independent run-jobs (the second sharding
/// axis: whole fig-bench runs instead of fabric regions). Job i is
/// assigned to worker (i % threads) and every worker executes its jobs in
/// ascending index order, so each job sees an identical schedule for any
/// thread count. Jobs must be mutually independent and write results into
/// index-addressed slots; callers emit output after execute() returns, in
/// index order, making it byte-identical by construction.
class RunSet {
 public:
  using Job = InlineFunction<void()>;

  /// Returns the job's index.
  std::size_t add(Job job);
  std::size_t size() const { return jobs_.size(); }

  /// Runs all jobs and returns when the last one finishes. threads <= 1
  /// executes inline on the caller. A RunSet is single-use.
  void execute(std::uint32_t threads);

  /// Worker slot executing the innermost current job on this thread
  /// (0..threads-1 during execute(), 0 for inline execution), or -1
  /// outside any job. Lets shared sinks (bench EngineMeter) attribute
  /// work to shards without threading a handle through every call site.
  static int current_worker();

 private:
  std::vector<Job> jobs_;
  bool executed_ = false;
};

}  // namespace stellar
