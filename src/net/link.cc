#include "net/link.h"

namespace stellar {

void NetLink::account_queue_change(std::uint64_t new_bytes) {
  const SimTime now = sim_->now();
  queue_integral_ +=
      static_cast<double>(queue_bytes_) * (now - last_change_).sec();
  last_change_ = now;
  queue_bytes_ = new_bytes;
  if (queue_bytes_ > max_queue_bytes_) max_queue_bytes_ = queue_bytes_;
}

void NetLink::enqueue(NetPacket&& p) {
  const std::uint32_t wire = p.wire_bytes();
  if (!up_) {
    ++down_drops_;
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.chance(config_.drop_probability)) {
    ++random_drops_;
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  if (queue_bytes_ + wire > config_.queue_capacity_bytes) {
    ++tail_drops_;
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  STELLAR_AUDIT_ONLY(++audit_accepted_;)
  if (!p.is_ack && queue_bytes_ + wire > config_.ecn_threshold_bytes) {
    p.ecn_marked = true;
    ++ecn_marks_;
  }
  account_queue_change(queue_bytes_ + wire);
  // Strict priority: control packets (ACKs) bypass queued data, as RoCE
  // deployments configure for CNP/ACK traffic classes.
  if (p.is_ack) {
    control_queue_.push_back(std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  if (!busy_) start_transmission();
}

void NetLink::start_transmission() {
  STELLAR_CHECK(!queue_.empty() || !control_queue_.empty(),
                "link %s started transmitting with both queues empty",
                name_.c_str());
  busy_ = true;
  std::deque<NetPacket>* q =
      control_queue_.empty() ? &queue_ : &control_queue_;
  const std::uint32_t wire = q->front().wire_bytes();
  const SimTime tx = config_.bandwidth.transmit_time(wire);
  tx_event_ = sim_->schedule_after(tx, [this, q] {
    tx_event_ = EventHandle{};
    NetPacket p = std::move(q->front());
    q->pop_front();
    const std::uint32_t wire_done = p.wire_bytes();
    account_queue_change(queue_bytes_ - wire_done);
    bytes_sent_ += wire_done;
    ++packets_sent_;
    // Hand off after propagation; the wire is free for the next packet now.
    sim_->schedule_after(config_.propagation, [this, p = std::move(p)]() mutable {
      STELLAR_AUDIT_ONLY(deliver_ ? ++audit_released_ : ++audit_sink_drops_;)
      if (deliver_) deliver_(std::move(p));
    });
    if (!queue_.empty() || !control_queue_.empty()) {
      start_transmission();
    } else {
      busy_ = false;
    }
  });
}

void NetLink::set_down(LinkDrainMode mode) {
  // A kVoid on an already-down (draining) link still empties the queue.
  up_ = false;
  if (mode != LinkDrainMode::kVoid) return;
  if (tx_event_.valid()) {
    // Abort the packet mid-serialization; it never left the device.
    sim_->cancel(tx_event_);
    tx_event_ = EventHandle{};
  }
  busy_ = false;
  const std::uint64_t n = queue_.size() + control_queue_.size();
  voided_packets_ += n;
  STELLAR_AUDIT_ONLY(audit_sink_drops_ += n;)
  queue_.clear();
  control_queue_.clear();
  account_queue_change(0);
}

void NetLink::set_up() {
  if (up_) return;
  up_ = true;
  // A kDrain-downed link keeps transmitting while down, so only a link that
  // went fully quiet needs a restart (nothing to do: its queues are empty).
  if (!busy_ && (!queue_.empty() || !control_queue_.empty())) {
    start_transmission();
  }
}

double NetLink::mean_queue_bytes() const {
  const SimTime now = sim_->now();
  const double window = (now - stats_epoch_).sec();
  if (window <= 0.0) return static_cast<double>(queue_bytes_);
  const double integral =
      queue_integral_ +
      static_cast<double>(queue_bytes_) * (now - last_change_).sec();
  return integral / window;
}

void NetLink::reset_stats() {
  max_queue_bytes_ = queue_bytes_;
  bytes_sent_ = 0;
  packets_sent_ = 0;
  tail_drops_ = 0;
  random_drops_ = 0;
  ecn_marks_ = 0;
  down_drops_ = 0;
  voided_packets_ = 0;
  queue_integral_ = 0.0;
  last_change_ = sim_->now();
  stats_epoch_ = sim_->now();
  // Re-baseline the conservation epoch: the packets this link still holds
  // are carried over as the new accepted count, all outcome counters start
  // from zero. held_packets() is unchanged by construction, so a mid-run
  // reset never fakes or leaks packets (ClosFabric::reset_stats() adjusts
  // the fabric-level injected/delivered counters to match).
  STELLAR_AUDIT_ONLY(audit_accepted_ = held_packets(); audit_released_ = 0;
                     audit_sink_drops_ = 0; audit_ingress_drops_ = 0;)
}

}  // namespace stellar
