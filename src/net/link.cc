#include "net/link.h"

namespace stellar {

void NetLink::account_queue_change(std::uint64_t new_bytes) {
  const SimTime now = sim_->now();
  queue_integral_ +=
      static_cast<double>(queue_bytes_) * (now - last_change_).sec();
  last_change_ = now;
  queue_bytes_ = new_bytes;
  if (queue_bytes_ > max_queue_bytes_) max_queue_bytes_ = queue_bytes_;
}

void NetLink::enqueue(NetPacket&& p) {
  const std::uint32_t wire = p.wire_bytes();
  if (config_.drop_probability > 0.0 &&
      rng_.chance(config_.drop_probability)) {
    ++random_drops_;
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  if (queue_bytes_ + wire > config_.queue_capacity_bytes) {
    ++tail_drops_;
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  STELLAR_AUDIT_ONLY(++audit_accepted_;)
  if (!p.is_ack && queue_bytes_ + wire > config_.ecn_threshold_bytes) {
    p.ecn_marked = true;
    ++ecn_marks_;
  }
  account_queue_change(queue_bytes_ + wire);
  // Strict priority: control packets (ACKs) bypass queued data, as RoCE
  // deployments configure for CNP/ACK traffic classes.
  if (p.is_ack) {
    control_queue_.push_back(std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  if (!busy_) start_transmission();
}

void NetLink::start_transmission() {
  STELLAR_CHECK(!queue_.empty() || !control_queue_.empty(),
                "link %s started transmitting with both queues empty",
                name_.c_str());
  busy_ = true;
  std::deque<NetPacket>* q =
      control_queue_.empty() ? &queue_ : &control_queue_;
  const std::uint32_t wire = q->front().wire_bytes();
  const SimTime tx = config_.bandwidth.transmit_time(wire);
  sim_->schedule_after(tx, [this, q] {
    NetPacket p = std::move(q->front());
    q->pop_front();
    const std::uint32_t wire_done = p.wire_bytes();
    account_queue_change(queue_bytes_ - wire_done);
    bytes_sent_ += wire_done;
    ++packets_sent_;
    // Hand off after propagation; the wire is free for the next packet now.
    sim_->schedule_after(config_.propagation, [this, p = std::move(p)]() mutable {
      STELLAR_AUDIT_ONLY(deliver_ ? ++audit_released_ : ++audit_sink_drops_;)
      if (deliver_) deliver_(std::move(p));
    });
    if (!queue_.empty() || !control_queue_.empty()) {
      start_transmission();
    } else {
      busy_ = false;
    }
  });
}

double NetLink::mean_queue_bytes() const {
  const SimTime now = sim_->now();
  const double window = (now - stats_epoch_).sec();
  if (window <= 0.0) return static_cast<double>(queue_bytes_);
  const double integral =
      queue_integral_ +
      static_cast<double>(queue_bytes_) * (now - last_change_).sec();
  return integral / window;
}

void NetLink::reset_stats() {
  max_queue_bytes_ = queue_bytes_;
  bytes_sent_ = 0;
  packets_sent_ = 0;
  tail_drops_ = 0;
  random_drops_ = 0;
  ecn_marks_ = 0;
  queue_integral_ = 0.0;
  last_change_ = sim_->now();
  stats_epoch_ = sim_->now();
}

}  // namespace stellar
