#include "net/link.h"

#include <iterator>
#include <utility>

#include "obs/obs.h"

namespace stellar {

void NetLink::account_queue_change(std::uint64_t new_bytes) {
  const SimTime now = sim_->now();
  queue_integral_ +=
      static_cast<double>(queue_bytes_) * (now - last_change_).sec();
  last_change_ = now;
  queue_bytes_ = new_bytes;
  if (queue_bytes_ > max_queue_bytes_) max_queue_bytes_ = queue_bytes_;
  STELLAR_TRACE_ONLY(
      obs::track(obs::TraceCat::kLink, name_, now,
                 static_cast<std::int64_t>(queue_bytes_));)
}

void NetLink::enqueue(NetPacket&& p) {
  const std::uint32_t wire = p.wire_bytes();
  if (!up_) {
    ++down_drops_;
    STELLAR_TRACE_ONLY(obs::count("link/down_drops");)
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  if (config_.drop_probability > 0.0 &&
      rng_.chance(config_.drop_probability)) {
    ++random_drops_;
    STELLAR_TRACE_ONLY(obs::count("link/random_drops");)
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  if (queue_bytes_ + wire > config_.queue_capacity_bytes) {
    ++tail_drops_;
    STELLAR_TRACE_ONLY(obs::count("link/tail_drops");)
    STELLAR_AUDIT_ONLY(++audit_ingress_drops_;)
    return;
  }
  STELLAR_TRACE_ONLY(obs::count("link/enqueued");)
  STELLAR_AUDIT_ONLY(++audit_accepted_;)
  if (!p.is_ack && queue_bytes_ + wire > config_.ecn_threshold_bytes) {
    p.ecn_marked = true;
    ++ecn_marks_;
    STELLAR_TRACE_ONLY(obs::count("link/ecn_marks");)
  }
  account_queue_change(queue_bytes_ + wire);
  // Strict priority: control packets (ACKs) bypass queued data, as RoCE
  // deployments configure for CNP/ACK traffic classes.
  if (p.is_ack) {
    control_queue_.push_back(std::move(p));
  } else {
    queue_.push_back(std::move(p));
  }
  if (!busy_) start_transmission();
}

void NetLink::start_transmission() {
  STELLAR_CHECK(!queue_.empty() || !control_queue_.empty(),
                "link %s started transmitting with both queues empty",
                name_.c_str());
  busy_ = true;
  tx_from_control_ = !control_queue_.empty();
  const std::deque<NetPacket>& q = tx_from_control_ ? control_queue_ : queue_;
  tx_wire_bytes_ = q.front().wire_bytes();
  const SimTime tx = config_.bandwidth.transmit_time(tx_wire_bytes_);
  auto fire = [this] { complete_transmission(); };
  static_assert(InlineAction::fits_inline<decltype(fire)>,
                "hot-path tx closure must not heap-allocate");
  tx_event_ = sim_->schedule_after(tx, std::move(fire));
}

void NetLink::complete_transmission() {
  tx_event_ = EventHandle{};
  // Recompute the source queue from the committed class rather than a
  // pointer captured at schedule time; a drain/set_down in between would
  // have cancelled this event, and if anything else ever empties the queue
  // the checks below trip instead of popping the wrong packet.
  std::deque<NetPacket>& q = tx_from_control_ ? control_queue_ : queue_;
  STELLAR_CHECK(!q.empty(),
                "link %s finished serializing from an empty %s queue",
                name_.c_str(), tx_from_control_ ? "control" : "data");
  STELLAR_CHECK(q.front().wire_bytes() == tx_wire_bytes_,
                "link %s wire packet changed mid-serialization "
                "(%u bytes committed, %u at head)",
                name_.c_str(), tx_wire_bytes_, q.front().wire_bytes());
  NetPacket p = std::move(q.front());
  q.pop_front();
  const std::uint32_t wire_done = p.wire_bytes();
  account_queue_change(queue_bytes_ - wire_done);
  bytes_sent_ += wire_done;
  ++packets_sent_;
  // Hand off after propagation; the wire is free for the next packet now.
  // Constant per-link propagation keeps the in-flight FIFO arrival-ordered,
  // so the packet joins the FIFO instead of carrying its own closure; a
  // runtime set_propagation() shrink is the one case needing a re-sort.
  const SimTime arrival = sim_->now() + config_.propagation;
  const std::uint64_t seq = sim_->reserve_seq();
  if (!inflight_.empty() && arrival < inflight_.back().arrival) {
    auto it = inflight_.end();
    while (it != inflight_.begin() && arrival < std::prev(it)->arrival) --it;
    inflight_.insert(it, InFlight{std::move(p), arrival, seq});
  } else {
    inflight_.push_back(InFlight{std::move(p), arrival, seq});
  }
  schedule_delivery();
  if (!queue_.empty() || !control_queue_.empty()) {
    start_transmission();
  } else {
    busy_ = false;
  }
}

void NetLink::schedule_delivery() {
  if (inflight_.empty()) return;
  const InFlight& front = inflight_.front();
  if (delivery_event_.valid()) {
    if (delivery_at_ <= front.arrival) return;  // already armed early enough
    sim_->cancel(delivery_event_);  // a nearer arrival slid in front
  }
  delivery_at_ = front.arrival;
  auto fire = [this] { deliver_due(); };
  static_assert(InlineAction::fits_inline<decltype(fire)>,
                "hot-path delivery closure must not heap-allocate");
  // Arm with the front packet's reserved seq: the event fires with the same
  // (time, seq) its dedicated propagation event would have carried.
  delivery_event_ = sim_->schedule_at_seq(front.arrival, front.seq,
                                          std::move(fire));
}

void NetLink::deliver_due() {
  delivery_event_ = EventHandle{};
  STELLAR_CHECK(!inflight_.empty() &&
                    inflight_.front().arrival == sim_->now(),
                "link %s delivery fired with no due packet", name_.c_str());
  NetPacket p = std::move(inflight_.front().pkt);
  inflight_.pop_front();
  STELLAR_AUDIT_ONLY(deliver_ ? ++audit_released_ : ++audit_sink_drops_;)
  if (deliver_) deliver_(std::move(p));
  schedule_delivery();
}

void NetLink::set_down(LinkDrainMode mode) {
  // A kVoid on an already-down (draining) link still empties the queue.
  up_ = false;
  if (mode != LinkDrainMode::kVoid) return;
  if (tx_event_.valid()) {
    // Abort the packet mid-serialization; it never left the device.
    sim_->cancel(tx_event_);
    tx_event_ = EventHandle{};
  }
  busy_ = false;
  const std::uint64_t n = queue_.size() + control_queue_.size();
  voided_packets_ += n;
  STELLAR_AUDIT_ONLY(audit_sink_drops_ += n;)
  queue_.clear();
  control_queue_.clear();
  account_queue_change(0);
}

std::uint64_t NetLink::absorb() {
  if (tx_event_.valid()) {
    sim_->cancel(tx_event_);
    tx_event_ = EventHandle{};
  }
  busy_ = false;
  if (delivery_event_.valid()) {
    sim_->cancel(delivery_event_);
    delivery_event_ = EventHandle{};
  }
  const std::uint64_t n =
      queue_.size() + control_queue_.size() + inflight_.size();
  queue_.clear();
  control_queue_.clear();
  inflight_.clear();
  absorbed_packets_ += n;
  STELLAR_AUDIT_ONLY(audit_absorbed_ += n;)
  account_queue_change(0);
  return n;
}

void NetLink::set_up() {
  if (up_) return;
  up_ = true;
  // A kDrain-downed link keeps transmitting while down, so only a link that
  // went fully quiet needs a restart (nothing to do: its queues are empty).
  if (!busy_ && (!queue_.empty() || !control_queue_.empty())) {
    start_transmission();
  }
}

double NetLink::mean_queue_bytes() const {
  const SimTime now = sim_->now();
  const double window = (now - stats_epoch_).sec();
  if (window <= 0.0) return static_cast<double>(queue_bytes_);
  const double integral =
      queue_integral_ +
      static_cast<double>(queue_bytes_) * (now - last_change_).sec();
  return integral / window;
}

void NetLink::reset_stats() {
  max_queue_bytes_ = queue_bytes_;
  bytes_sent_ = 0;
  packets_sent_ = 0;
  tail_drops_ = 0;
  random_drops_ = 0;
  ecn_marks_ = 0;
  down_drops_ = 0;
  voided_packets_ = 0;
  absorbed_packets_ = 0;
  queue_integral_ = 0.0;
  last_change_ = sim_->now();
  stats_epoch_ = sim_->now();
  // Re-baseline the conservation epoch: the packets this link still holds
  // are carried over as the new accepted count, all outcome counters start
  // from zero. held_packets() is unchanged by construction, so a mid-run
  // reset never fakes or leaks packets (ClosFabric::reset_stats() adjusts
  // the fabric-level injected/delivered counters to match).
  STELLAR_AUDIT_ONLY(audit_accepted_ = held_packets(); audit_released_ = 0;
                     audit_sink_drops_ = 0; audit_ingress_drops_ = 0;
                     audit_absorbed_ = 0;)
}

}  // namespace stellar
