// Dual-plane, rail-optimized Clos fabric (the HPN-style topology of §3.1(6)
// and §7), scaled for simulation.
//
// Geometry:
//   * `segments` pods, each with `hosts_per_segment` GPU servers;
//   * each server has `rails` RNICs; each RNIC has `planes` ports (dual
//     plane in production);
//   * per (rail, plane) each segment owns one ToR; all ToRs of a
//     (rail, plane) pair connect to `aggs_per_plane` aggregation switches.
//   * rails are isolated (rail-optimized): connections stay on one rail and
//     one plane, exactly like production NCCL traffic.
//
// Switches are decomposed into their egress ports: every port is a NetLink,
// so per-port queue depth / load statistics (Figures 9 and 12) fall out of
// link counters directly. A route is a precomputed vector of links; the
// multipath path_id selects the aggregation switch for cross-segment hops.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/inline_action.h"
#include "sim/simulator.h"

namespace stellar {

class HybridDriver;  // sim/hybrid.h — attached via set_hybrid_driver()

struct FabricConfig {
  std::uint32_t segments = 2;
  std::uint32_t hosts_per_segment = 16;
  std::uint32_t rails = 1;
  std::uint32_t planes = 2;
  std::uint32_t aggs_per_plane = 16;
  LinkConfig host_link{Bandwidth::gbps(200), SimTime::nanos(600), 8u << 20,
                       512u << 10, 0.0};
  LinkConfig fabric_link{Bandwidth::gbps(400), SimTime::nanos(600), 16u << 20,
                         1u << 20, 0.0};
};

class ClosFabric {
 public:
  /// Endpoint receive handler, invoked once per delivered packet — an
  /// InlineFunction for the same reason as NetLink::DeliverFn.
  using Handler = InlineFunction<void(NetPacket&&)>;

  ClosFabric(Simulator& sim, FabricConfig config);

  // -- Addressing -------------------------------------------------------------

  EndpointId endpoint(std::uint32_t segment, std::uint32_t host,
                      std::uint32_t rail, std::uint32_t plane) const;
  std::uint32_t endpoint_count() const;

  struct EndpointCoords {
    std::uint32_t segment, host, rail, plane;
  };
  EndpointCoords coords(EndpointId id) const;

  /// Attach the receive handler (the RNIC transport) for an endpoint.
  void set_handler(EndpointId id, Handler handler);

  // -- Data path ----------------------------------------------------------------

  /// Inject a packet. src/dst must share rail and plane; path_id picks the
  /// aggregation switch for cross-segment routes (hashed per connection so
  /// distinct connections map path ids onto different switch subsets).
  Status send(NetPacket&& p);

  /// Number of distinct physical routes between two endpoints.
  std::uint32_t physical_paths(EndpointId src, EndpointId dst) const;

  /// The exact link sequence packets of (conn_id, path_id) traverse between
  /// src and dst — the same cached route send() uses. Hybrid fidelity reads
  /// this to charge a fluid flow's rate against the physical links its
  /// packet-mode spray would have crossed.
  const std::vector<NetLink*>& path_links(EndpointId src, EndpointId dst,
                                          std::uint64_t conn_id,
                                          std::uint16_t path_id) {
    return *route_for(src, dst, conn_id, path_id);
  }

  // -- Hybrid fidelity ---------------------------------------------------------

  /// Attach/detach the hybrid fidelity driver (sim/hybrid.h). Owned by the
  /// caller; the driver detaches itself on destruction. Transports and the
  /// fault injector discover it through this hook, so a fabric without a
  /// driver runs pure packet mode with zero overhead.
  void set_hybrid_driver(HybridDriver* driver) { hybrid_driver_ = driver; }
  HybridDriver* hybrid_driver() const { return hybrid_driver_; }

  // -- Telemetry / fault injection ---------------------------------------------

  /// All ToR->Agg egress ports for one (segment, rail, plane) ToR.
  std::vector<NetLink*> tor_uplinks(std::uint32_t segment, std::uint32_t rail,
                                    std::uint32_t plane);
  /// Every ToR uplink in the fabric.
  std::vector<NetLink*> all_tor_uplinks();
  /// Every host->ToR ingress port (host NIC egress).
  std::vector<NetLink*> all_host_links();

  NetLink& tor_uplink(std::uint32_t segment, std::uint32_t rail,
                      std::uint32_t plane, std::uint32_t agg);
  NetLink& agg_downlink(std::uint32_t agg, std::uint32_t segment,
                        std::uint32_t rail, std::uint32_t plane);
  NetLink& host_uplink(std::uint32_t segment, std::uint32_t host,
                       std::uint32_t rail, std::uint32_t plane);
  NetLink& tor_downlink(std::uint32_t segment, std::uint32_t host,
                        std::uint32_t rail, std::uint32_t plane);

  // -- Switch port groups (whole-switch failure injection) --------------------
  //
  // A switch failure takes down every cable touching the switch: its own
  // egress ports plus the far-end egress ports that feed it (a packet sent
  // onto a cable whose far end is dead is lost; modelling the loss at the
  // near-end ingress keeps conservation accounting exact).

  /// All ports of one aggregation switch: agg->ToR downlinks of `agg` in
  /// every (segment, rail, plane), plus the ToR->Agg uplinks feeding it.
  std::vector<NetLink*> agg_switch_ports(std::uint32_t agg);
  /// All ports of one ToR: its host downlinks and Agg uplinks, plus the
  /// host NIC egresses and Agg downlinks that feed it.
  std::vector<NetLink*> tor_switch_ports(std::uint32_t segment,
                                         std::uint32_t rail,
                                         std::uint32_t plane);

  void reset_stats();

  /// Diagnostics hook: called for every hop a packet takes (`link` is the
  /// egress port it was forwarded on; nullptr marks final delivery). This
  /// is the tooling counterpart of §7.1's observability argument — with
  /// sender-chosen path ids, a tracer can reconstruct exact trajectories.
  // stellar-lint: allow(std-function-hot-path) diagnostics-only hook, null
  // on measured runs; std::function keeps it copyable for tooling.
  using TraceHook =
      std::function<void(const NetPacket&, const NetLink* link, SimTime at)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  const FabricConfig& config() const { return config_; }
  Simulator& simulator() { return *sim_; }

  std::uint64_t delivered_packets() const { return delivered_; }
  /// Packets that reached an endpoint with no registered handler.
  std::uint64_t dropped_no_handler() const { return dropped_no_handler_; }
  /// Packets accepted by send() (STELLAR_AUDIT instrumentation; stays 0 in
  /// audit-off builds). Feeds the conservation auditor; reset_stats()
  /// re-baselines it to the packets still in flight so the conservation
  /// equation holds per measurement epoch.
  std::uint64_t injected_packets() const { return injected_; }

  /// Every egress port in the fabric (host NICs, ToR down/up, Agg down),
  /// for whole-fabric accounting sweeps.
  std::vector<const NetLink*> all_links() const;

 private:
  friend struct FabricTestPeer;  // corruption injection in audit tests
  // Link array indices. All per (rail, plane) grouping.
  std::size_t host_up_idx(std::uint32_t s, std::uint32_t h, std::uint32_t r,
                          std::uint32_t p) const;
  std::size_t tor_down_idx(std::uint32_t s, std::uint32_t h, std::uint32_t r,
                           std::uint32_t p) const;
  std::size_t tor_up_idx(std::uint32_t s, std::uint32_t r, std::uint32_t p,
                         std::uint32_t a) const;
  std::size_t agg_down_idx(std::uint32_t a, std::uint32_t s, std::uint32_t r,
                           std::uint32_t p) const;

  const std::vector<NetLink*>* route_for(EndpointId src, EndpointId dst,
                                         std::uint64_t conn_id,
                                         std::uint16_t path_id);

  void advance(NetPacket&& p);

  Simulator* sim_;
  FabricConfig config_;

  std::vector<std::unique_ptr<NetLink>> host_up_;   // endpoint -> ToR
  std::vector<std::unique_ptr<NetLink>> tor_down_;  // ToR -> endpoint
  std::vector<std::unique_ptr<NetLink>> tor_up_;    // ToR -> Agg
  std::vector<std::unique_ptr<NetLink>> agg_down_;  // Agg -> ToR

  std::vector<Handler> handlers_;
  TraceHook trace_;
  HybridDriver* hybrid_driver_ = nullptr;
  std::unordered_map<std::uint64_t, std::vector<NetLink*>> route_cache_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_no_handler_ = 0;
  std::uint64_t injected_ = 0;
};

}  // namespace stellar
