// Network packet for the fabric simulation.
//
// Carries exactly the header state the Stellar transport needs: connection
// id, PSN (packets may arrive out of order under spraying and are placed
// directly, DPP-style), message bookkeeping for receiver-side completion,
// ECN, and the path id chosen by the multipath selector.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace stellar {

using EndpointId = std::uint32_t;
inline constexpr EndpointId kInvalidEndpoint = 0xFFFFFFFFu;

class NetLink;  // defined in net/link.h

/// Verbs operation the packet belongs to. READ responses travel as kWrite
/// data on the reverse-direction connection.
enum class PacketKind : std::uint8_t { kWrite, kSend, kReadRequest };

struct NetPacket {
  PacketKind kind = PacketKind::kWrite;
  // -- Transport header -------------------------------------------------------
  std::uint64_t conn_id = 0;
  std::uint64_t psn = 0;        // packet sequence number within connection
  std::uint32_t payload = 0;    // payload bytes (0 for pure ACK)
  std::uint32_t header = 64;    // header+overhead bytes on the wire
  bool is_ack = false;
  bool ecn_marked = false;      // CE mark accumulated along the path
  bool ecn_echo = false;        // ACK: echoes the data packet's CE mark
  /// Blacklist-reinstatement probe (§7.2 failure mitigation): a single
  /// header-only packet on a held-out path. Probes ride their own sequence
  /// space and never touch receiver PSN/message state; the ACK echoes the
  /// flag (and path_id) so the sender can re-admit the path.
  bool is_probe = false;

  // Message bookkeeping: receiver completes a message when it has all
  // payload bytes of msg_id. Total length rides in every packet (simulation
  // convenience standing in for a real first/last-packet protocol).
  std::uint64_t msg_id = 0;
  std::uint64_t msg_bytes = 0;
  std::uint64_t msg_offset = 0;
  std::uint32_t msg_tag = 0;  // application tag (e.g. collective lane)

  // ACK info.
  std::uint64_t ack_psn = 0;    // PSN being acknowledged (per-packet ack)

  // -- Routing ----------------------------------------------------------------
  EndpointId src = kInvalidEndpoint;
  EndpointId dst = kInvalidEndpoint;
  std::uint16_t path_id = 0;

  const std::vector<NetLink*>* route = nullptr;  // owned by the fabric
  std::uint16_t hop = 0;

  // -- Telemetry ---------------------------------------------------------------
  SimTime sent_at;

  std::uint32_t wire_bytes() const { return payload + header; }
};

}  // namespace stellar
