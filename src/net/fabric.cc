#include "net/fabric.h"

#include <stdexcept>
#include <string>

#include "check/check.h"
#include "obs/obs.h"

namespace stellar {

namespace {
std::string link_name(const char* kind, std::uint32_t a, std::uint32_t b,
                      std::uint32_t c, std::uint32_t d) {
  return std::string(kind) + "[" + std::to_string(a) + "." + std::to_string(b) +
         "." + std::to_string(c) + "." + std::to_string(d) + "]";
}
}  // namespace

ClosFabric::ClosFabric(Simulator& sim, FabricConfig config)
    : sim_(&sim), config_(config) {
  const auto& c = config_;
  if (c.segments == 0 || c.hosts_per_segment == 0 || c.rails == 0 ||
      c.planes == 0 || c.aggs_per_plane == 0) {
    throw std::invalid_argument("ClosFabric: all dimensions must be nonzero");
  }

  const std::size_t n_host_links = static_cast<std::size_t>(c.segments) *
                                   c.hosts_per_segment * c.rails * c.planes;
  const std::size_t n_tor_links = static_cast<std::size_t>(c.segments) *
                                  c.rails * c.planes * c.aggs_per_plane;

  // Each link gets its own inline delivery closure (DeliverFn is move-only).
  auto deliver = [this] {
    return [this](NetPacket&& p) { advance(std::move(p)); };
  };

  std::uint64_t seed = 0xC0FFEE;
  host_up_.reserve(n_host_links);
  tor_down_.reserve(n_host_links);
  for (std::uint32_t s = 0; s < c.segments; ++s) {
    for (std::uint32_t h = 0; h < c.hosts_per_segment; ++h) {
      for (std::uint32_t r = 0; r < c.rails; ++r) {
        for (std::uint32_t p = 0; p < c.planes; ++p) {
          host_up_.push_back(std::make_unique<NetLink>(
              sim, link_name("host_up", s, h, r, p), c.host_link, ++seed));
          host_up_.back()->set_deliver(deliver());
          tor_down_.push_back(std::make_unique<NetLink>(
              sim, link_name("tor_down", s, h, r, p), c.host_link, ++seed));
          tor_down_.back()->set_deliver(deliver());
        }
      }
    }
  }

  tor_up_.reserve(n_tor_links);
  agg_down_.reserve(n_tor_links);
  for (std::uint32_t s = 0; s < c.segments; ++s) {
    for (std::uint32_t r = 0; r < c.rails; ++r) {
      for (std::uint32_t p = 0; p < c.planes; ++p) {
        for (std::uint32_t a = 0; a < c.aggs_per_plane; ++a) {
          tor_up_.push_back(std::make_unique<NetLink>(
              sim, link_name("tor_up", s, r, p, a), c.fabric_link, ++seed));
          tor_up_.back()->set_deliver(deliver());
          agg_down_.push_back(std::make_unique<NetLink>(
              sim, link_name("agg_down", a, s, r, p), c.fabric_link, ++seed));
          agg_down_.back()->set_deliver(deliver());
        }
      }
    }
  }

  handlers_.resize(endpoint_count());
}

EndpointId ClosFabric::endpoint(std::uint32_t segment, std::uint32_t host,
                                std::uint32_t rail,
                                std::uint32_t plane) const {
  const auto& c = config_;
  STELLAR_DCHECK(segment < c.segments && host < c.hosts_per_segment &&
                     rail < c.rails && plane < c.planes,
                 "endpoint(%u, %u, %u, %u) outside fabric %ux%ux%ux%u",
                 segment, host, rail, plane, c.segments, c.hosts_per_segment,
                 c.rails, c.planes);
  return ((segment * c.hosts_per_segment + host) * c.rails + rail) * c.planes +
         plane;
}

std::uint32_t ClosFabric::endpoint_count() const {
  return config_.segments * config_.hosts_per_segment * config_.rails *
         config_.planes;
}

ClosFabric::EndpointCoords ClosFabric::coords(EndpointId id) const {
  const auto& c = config_;
  EndpointCoords out;
  out.plane = id % c.planes;
  id /= c.planes;
  out.rail = id % c.rails;
  id /= c.rails;
  out.host = id % c.hosts_per_segment;
  out.segment = id / c.hosts_per_segment;
  return out;
}

void ClosFabric::set_handler(EndpointId id, Handler handler) {
  handlers_.at(id) = std::move(handler);
}

std::size_t ClosFabric::host_up_idx(std::uint32_t s, std::uint32_t h,
                                    std::uint32_t r, std::uint32_t p) const {
  return endpoint(s, h, r, p);
}
std::size_t ClosFabric::tor_down_idx(std::uint32_t s, std::uint32_t h,
                                     std::uint32_t r, std::uint32_t p) const {
  return endpoint(s, h, r, p);
}
std::size_t ClosFabric::tor_up_idx(std::uint32_t s, std::uint32_t r,
                                   std::uint32_t p, std::uint32_t a) const {
  const auto& c = config_;
  return ((static_cast<std::size_t>(s) * c.rails + r) * c.planes + p) *
             c.aggs_per_plane +
         a;
}
std::size_t ClosFabric::agg_down_idx(std::uint32_t a, std::uint32_t s,
                                     std::uint32_t r, std::uint32_t p) const {
  // Same shape as tor_up but keyed from the agg side; reuse the layout.
  return tor_up_idx(s, r, p, a);
}

NetLink& ClosFabric::tor_uplink(std::uint32_t segment, std::uint32_t rail,
                                std::uint32_t plane, std::uint32_t agg) {
  return *tor_up_.at(tor_up_idx(segment, rail, plane, agg));
}
NetLink& ClosFabric::agg_downlink(std::uint32_t agg, std::uint32_t segment,
                                  std::uint32_t rail, std::uint32_t plane) {
  return *agg_down_.at(agg_down_idx(agg, segment, rail, plane));
}
NetLink& ClosFabric::host_uplink(std::uint32_t segment, std::uint32_t host,
                                 std::uint32_t rail, std::uint32_t plane) {
  return *host_up_.at(host_up_idx(segment, host, rail, plane));
}
NetLink& ClosFabric::tor_downlink(std::uint32_t segment, std::uint32_t host,
                                  std::uint32_t rail, std::uint32_t plane) {
  return *tor_down_.at(tor_down_idx(segment, host, rail, plane));
}

std::vector<NetLink*> ClosFabric::tor_uplinks(std::uint32_t segment,
                                              std::uint32_t rail,
                                              std::uint32_t plane) {
  std::vector<NetLink*> out;
  out.reserve(config_.aggs_per_plane);
  for (std::uint32_t a = 0; a < config_.aggs_per_plane; ++a) {
    out.push_back(&tor_uplink(segment, rail, plane, a));
  }
  return out;
}

std::vector<NetLink*> ClosFabric::all_tor_uplinks() {
  std::vector<NetLink*> out;
  out.reserve(tor_up_.size());
  for (auto& l : tor_up_) out.push_back(l.get());
  return out;
}

std::vector<const NetLink*> ClosFabric::all_links() const {
  std::vector<const NetLink*> out;
  out.reserve(host_up_.size() + tor_down_.size() + tor_up_.size() +
              agg_down_.size());
  for (const auto& l : host_up_) out.push_back(l.get());
  for (const auto& l : tor_down_) out.push_back(l.get());
  for (const auto& l : tor_up_) out.push_back(l.get());
  for (const auto& l : agg_down_) out.push_back(l.get());
  return out;
}

std::vector<NetLink*> ClosFabric::all_host_links() {
  std::vector<NetLink*> out;
  out.reserve(host_up_.size());
  for (auto& l : host_up_) out.push_back(l.get());
  return out;
}

std::vector<NetLink*> ClosFabric::agg_switch_ports(std::uint32_t agg) {
  const auto& c = config_;
  STELLAR_CHECK(agg < c.aggs_per_plane, "agg_switch_ports(%u): only %u aggs",
                agg, c.aggs_per_plane);
  std::vector<NetLink*> out;
  out.reserve(2ull * c.segments * c.rails * c.planes);
  for (std::uint32_t s = 0; s < c.segments; ++s) {
    for (std::uint32_t r = 0; r < c.rails; ++r) {
      for (std::uint32_t p = 0; p < c.planes; ++p) {
        out.push_back(agg_down_[agg_down_idx(agg, s, r, p)].get());
        out.push_back(tor_up_[tor_up_idx(s, r, p, agg)].get());
      }
    }
  }
  return out;
}

std::vector<NetLink*> ClosFabric::tor_switch_ports(std::uint32_t segment,
                                                   std::uint32_t rail,
                                                   std::uint32_t plane) {
  const auto& c = config_;
  STELLAR_CHECK(segment < c.segments && rail < c.rails && plane < c.planes,
                "tor_switch_ports(%u, %u, %u) outside fabric", segment, rail,
                plane);
  std::vector<NetLink*> out;
  out.reserve(2ull * (c.hosts_per_segment + c.aggs_per_plane));
  for (std::uint32_t h = 0; h < c.hosts_per_segment; ++h) {
    out.push_back(tor_down_[tor_down_idx(segment, h, rail, plane)].get());
    out.push_back(host_up_[host_up_idx(segment, h, rail, plane)].get());
  }
  for (std::uint32_t a = 0; a < c.aggs_per_plane; ++a) {
    out.push_back(tor_up_[tor_up_idx(segment, rail, plane, a)].get());
    out.push_back(agg_down_[agg_down_idx(a, segment, rail, plane)].get());
  }
  return out;
}

void ClosFabric::reset_stats() {
  for (auto& l : host_up_) l->reset_stats();
  for (auto& l : tor_down_) l->reset_stats();
  for (auto& l : tor_up_) l->reset_stats();
  for (auto& l : agg_down_) l->reset_stats();
  // Re-baseline the conservation epoch to match the per-link resets: the
  // packets still held by links are the only ones the new epoch inherits,
  // so they seed the injected count; terminal outcomes start from zero.
  STELLAR_AUDIT_ONLY(std::uint64_t held = 0;
                     for (const NetLink* l : all_links()) {
                       held += l->held_packets();
                     } injected_ = held;)
  delivered_ = 0;
  dropped_no_handler_ = 0;
}

std::uint32_t ClosFabric::physical_paths(EndpointId src,
                                         EndpointId dst) const {
  const auto a = coords(src);
  const auto b = coords(dst);
  if (a.rail != b.rail || a.plane != b.plane) return 0;
  return a.segment == b.segment ? 1 : config_.aggs_per_plane;
}

const std::vector<NetLink*>* ClosFabric::route_for(EndpointId src,
                                                   EndpointId dst,
                                                   std::uint64_t conn_id,
                                                   std::uint16_t path_id) {
  const auto a = coords(src);
  const auto b = coords(dst);
  // Map the transport-level path id onto a physical aggregation switch.
  // The hash makes each connection's path set a pseudo-random cover of the
  // aggregation layer: few paths -> partial (imbalanced) cover; 128 paths
  // -> near-uniform cover (Figure 12's convergence point).
  const std::uint32_t agg =
      a.segment == b.segment
          ? 0
          : static_cast<std::uint32_t>(hash_combine(conn_id, path_id) %
                                       config_.aggs_per_plane);

  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 40) ^
      (static_cast<std::uint64_t>(dst) << 16) ^ agg;
  auto it = route_cache_.find(key);
  if (it != route_cache_.end()) return &it->second;

  std::vector<NetLink*> route;
  route.push_back(host_up_[host_up_idx(a.segment, a.host, a.rail, a.plane)].get());
  if (a.segment != b.segment) {
    route.push_back(tor_up_[tor_up_idx(a.segment, a.rail, a.plane, agg)].get());
    route.push_back(
        agg_down_[agg_down_idx(agg, b.segment, b.rail, b.plane)].get());
  }
  route.push_back(
      tor_down_[tor_down_idx(b.segment, b.host, b.rail, b.plane)].get());
  auto [pos, inserted] = route_cache_.emplace(key, std::move(route));
  (void)inserted;
  return &pos->second;
}

Status ClosFabric::send(NetPacket&& p) {
  if (p.src >= endpoint_count() || p.dst >= endpoint_count()) {
    return invalid_argument("ClosFabric::send: bad endpoint");
  }
  const auto a = coords(p.src);
  const auto b = coords(p.dst);
  if (a.rail != b.rail || a.plane != b.plane) {
    return invalid_argument(
        "ClosFabric::send: endpoints must share rail and plane "
        "(rail-optimized fabric)");
  }
  if (p.src == p.dst) {
    return invalid_argument("ClosFabric::send: src == dst");
  }
  p.route = route_for(p.src, p.dst, p.conn_id, p.path_id);
  p.hop = 0;
  p.sent_at = sim_->now();
  STELLAR_AUDIT_ONLY(++injected_;)
  STELLAR_TRACE_ONLY(
      obs::count("fabric/injected");
      obs::instant(obs::TraceCat::kNet, p.is_ack ? "inject_ack" : "inject",
                   sim_->now(),
                   obs::TraceArgs{
                       "conn", static_cast<std::int64_t>(p.conn_id), "psn",
                       static_cast<std::int64_t>(p.is_ack ? p.ack_psn : p.psn),
                       "path", p.path_id});)
  if (trace_) trace_(p, (*p.route)[0], sim_->now());
  (*p.route)[0]->enqueue(std::move(p));
  return Status::ok();
}

void ClosFabric::advance(NetPacket&& p) {
  ++p.hop;
  if (p.hop < p.route->size()) {
    if (trace_) trace_(p, (*p.route)[p.hop], sim_->now());
    (*p.route)[p.hop]->enqueue(std::move(p));
    return;
  }
  if (trace_) trace_(p, nullptr, sim_->now());
  auto& handler = handlers_.at(p.dst);
  if (!handler) {
    // No engine attached at the destination: the packet is lost. Counted
    // separately so misconfigured experiments are observable.
    ++dropped_no_handler_;
    STELLAR_TRACE_ONLY(obs::count("fabric/dropped_no_handler");)
    return;
  }
  ++delivered_;
  STELLAR_TRACE_ONLY(
      obs::count("fabric/delivered");
      obs::record_time("fabric/transit_ps", sim_->now() - p.sent_at);)
  handler(std::move(p));
}

}  // namespace stellar
