// Fabric partitioning rule for the parallel engine (sim/parallel.h).
//
// The dual-plane, rail-isolated Clos gives natural shard boundaries:
// every endpoint is addressed by (segment, host, rail, plane), all
// host<->ToR traffic stays inside one (segment, plane), and rails never
// mix — so homing each (segment, plane) region on one shard puts every
// host link, host/RNIC state and ToR port of that region on a single
// worker. The only cross-shard hops are ToR->Agg->ToR crossings between
// segments of the same plane, which ride fabric_link cables; their
// propagation delay is the conservative lookahead:
//
//     L = fabric_link.propagation   (600 ns default)
//
// because a packet leaving shard A at t cannot influence shard B before
// t + L. Host links never cross shards, so their (possibly smaller)
// latency does not cap L. When the requested shard budget is smaller
// than segments x planes, regions fold onto shards round-robin by the
// natural index plane * segments + segment — a pure function of the
// geometry, so the partition (and with it the deterministic merge order)
// never depends on thread count or load.
#pragma once

#include <cstdint>

#include "net/fabric.h"
#include "sim/parallel.h"

namespace stellar {

struct FabricPartition {
  std::uint32_t segments = 1;
  std::uint32_t planes = 1;
  std::uint32_t shards = 1;
  SimTime lookahead = SimTime::zero();

  /// Shard homing a (segment, plane) region — and with it the region's
  /// hosts, RNIC state, host links and ToR ports.
  std::uint32_t shard_of(std::uint32_t segment, std::uint32_t plane) const {
    return (plane * segments + segment) % shards;
  }

  /// Engine configuration for this partition.
  PdesConfig parallel_config(std::uint32_t threads) const {
    PdesConfig cfg;
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.lookahead = lookahead;
    return cfg;
  }
};

/// Partition `config`'s fabric into at most `max_shards` per-(segment,
/// plane) shards. max_shards is clamped to [1, kMaxShards] and to the
/// region count; the lookahead is the minimum propagation of any link
/// class that can cross shards (fabric_link only, by construction).
inline FabricPartition make_fabric_partition(const FabricConfig& config,
                                             std::uint32_t max_shards) {
  FabricPartition part;
  part.segments = config.segments;
  part.planes = config.planes;
  const std::uint32_t regions = config.segments * config.planes;
  std::uint32_t shards = max_shards == 0 ? 1 : max_shards;
  if (shards > ShardedEngine::kMaxShards) shards = ShardedEngine::kMaxShards;
  if (shards > regions) shards = regions;
  part.shards = shards;
  part.lookahead = config.fabric_link.propagation;
  return part;
}

}  // namespace stellar
