// Unidirectional link with an output FIFO: the unit from which switches are
// composed (each link is one switch/host egress port).
//
// Event-driven: a packet at the queue head occupies the wire for its
// serialization time, then arrives at the far side after the propagation
// delay. ECN is marked at enqueue when the backlog exceeds the threshold
// (DCTCP-style). Optional random drop models the lossy link of Figure 11.
//
// Two traffic classes, as in production RoCE deployments: ACK/CNP control
// packets ride a strict-priority queue ahead of data, so congestion-control
// feedback is not delayed by a saturated reverse path.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "check/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "net/packet.h"
#include "sim/inline_action.h"
#include "sim/simulator.h"

namespace stellar {

struct LinkConfig {
  Bandwidth bandwidth = Bandwidth::gbps(200);
  SimTime propagation = SimTime::nanos(600);
  std::uint64_t queue_capacity_bytes = 4u << 20;  // 4 MiB per port
  std::uint64_t ecn_threshold_bytes = 256u << 10; // mark above 256 KiB
  double drop_probability = 0.0;                  // random corruption/loss
};

/// What happens to packets already queued on a link when it goes down.
enum class LinkDrainMode {
  /// Discard everything immediately (optics cut mid-flight); each packet is
  /// accounted as an audited drop so conservation holds.
  kVoid,
  /// Lame-duck: stop accepting new packets but let the queue finish
  /// transmitting (administrative drain before maintenance).
  kDrain,
};

class NetLink {
 public:
  /// Per-packet delivery target. InlineFunction (not std::function): this
  /// fires once per packet per hop, and the capture must stay heap-free.
  using DeliverFn = InlineFunction<void(NetPacket&&)>;

  NetLink(Simulator& sim, std::string name, LinkConfig config,
          std::uint64_t drop_seed = 1)
      : sim_(&sim), name_(std::move(name)), config_(config), rng_(drop_seed) {}

  NetLink(const NetLink&) = delete;
  NetLink& operator=(const NetLink&) = delete;

  /// Where packets go once they traverse this link (next link or endpoint).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  void set_drop_probability(double p) { config_.drop_probability = p; }

  /// Degrade (or restore) the link rate at runtime — models flapping
  /// optics and asymmetric paths. Takes effect from the next transmission.
  void set_bandwidth(Bandwidth bw) { config_.bandwidth = bw; }

  /// Degrade (or restore) the propagation delay at runtime — models the
  /// latency windows of a congested/rerouted optical path.
  void set_propagation(SimTime propagation) {
    config_.propagation = propagation;
  }

  // -- Hard failure (link down/up) ------------------------------------------
  //
  // A downed link rejects all ingress (each attempt counted as a down-drop
  // and, under audit, an ingress drop). kVoid additionally destroys every
  // queued packet — including the one mid-serialization — accounting each
  // as an audited sink drop so packet conservation holds across the outage.
  // Packets already past serialization (propagating) still arrive: they
  // left the failed device before it died.

  void set_down(LinkDrainMode mode = LinkDrainMode::kVoid);
  void set_up();
  bool is_up() const { return up_; }

  // -- Hybrid fidelity (packet -> fluid conversion) -------------------------

  /// Atomically hand every packet this link currently owns — queued,
  /// mid-serialization, or propagating — to the fluid model. The bytes
  /// live on as fluid flow state (the transport rewinds them into unsent
  /// demand), so unlike a drop they are not lost; the conservation auditor
  /// closes the ledger through the absorbed counter. Cancels the pending
  /// transmission and delivery events and empties all queues. Returns the
  /// number of packets absorbed.
  std::uint64_t absorb();

  /// Packets handed to the fluid model by absorb() since the last reset.
  std::uint64_t absorbed_packets() const { return absorbed_packets_; }

  /// Offer a packet to the egress queue. May tail-drop or randomly drop.
  void enqueue(NetPacket&& p);

  const std::string& name() const { return name_; }
  const LinkConfig& config() const { return config_; }

  // -- Statistics (reset with reset_stats() at measurement-window start) ----

  std::uint64_t queue_bytes() const { return queue_bytes_; }
  std::uint64_t max_queue_bytes() const { return max_queue_bytes_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t tail_drops() const { return tail_drops_; }
  std::uint64_t random_drops() const { return random_drops_; }
  std::uint64_t ecn_marks() const { return ecn_marks_; }
  /// Ingress rejections while the link was down.
  std::uint64_t down_drops() const { return down_drops_; }
  /// Queued packets destroyed by set_down(kVoid).
  std::uint64_t voided_packets() const { return voided_packets_; }

  /// Time-weighted mean of queue depth since the last reset.
  double mean_queue_bytes() const;

  void reset_stats();

  // -- Conservation accounting (STELLAR_AUDIT only) -------------------------
  //
  // Epoch counters for the packet-conservation auditor: a packet offered
  // to the link is either rejected at ingress (audit_ingress_drops), or
  // accepted and later exactly one of released downstream
  // (audit_released), destroyed — for lack of a sink, or voided by a
  // link-down (audit_sink_drops) — or handed to the fluid model by a
  // hybrid mode switch (audit_absorbed). Packets currently owned by the
  // link (queued, serializing, or propagating) are the difference.
  //
  // reset_stats() re-baselines the epoch without breaking conservation:
  // accepted collapses to the packets still held, the outcome counters go
  // to zero (ClosFabric::reset_stats() re-baselines its injected/delivered
  // counters to match, so the fabric-wide equation holds per epoch).

  std::uint64_t audit_accepted() const { return audit_accepted_; }
  std::uint64_t audit_released() const { return audit_released_; }
  std::uint64_t audit_ingress_drops() const { return audit_ingress_drops_; }
  std::uint64_t audit_sink_drops() const { return audit_sink_drops_; }
  std::uint64_t audit_absorbed() const { return audit_absorbed_; }
  std::uint64_t held_packets() const {
    return audit_accepted_ - audit_released_ - audit_sink_drops_ -
           audit_absorbed_;
  }

 private:
  void start_transmission();
  void complete_transmission();
  void account_queue_change(std::uint64_t new_bytes);
  void deliver_due();
  void schedule_delivery();

  Simulator* sim_;
  std::string name_;
  LinkConfig config_;
  Rng rng_;
  DeliverFn deliver_;

  std::deque<NetPacket> queue_;       // data class
  std::deque<NetPacket> control_queue_;  // strict-priority (ACK/CNP) class
  bool busy_ = false;
  bool up_ = true;
  EventHandle tx_event_;  // pending serialization-complete, for kVoid abort
  // The transmission committed to the wire: which class it came from and
  // its wire size. Recomputed pointers at fire time + these checks replace
  // the old captured-queue-pointer closure, so a drain between schedule
  // and fire can never act on a stale choice of queue.
  bool tx_from_control_ = false;
  std::uint32_t tx_wire_bytes_ = 0;

  // Pipelined propagation: packets past serialization sit in an in-flight
  // FIFO ordered by arrival time, drained by one self-rescheduling
  // delivery event per link — no per-packet closure, no allocation. Each
  // packet reserves its tie-break seq the moment serialization completes
  // (where a per-packet event would have been scheduled), so the delivery
  // event fires with exactly the (time, seq) the classic two-events-per-hop
  // engine produced — byte-identical simulation results.
  struct InFlight {
    NetPacket pkt;
    SimTime arrival;
    std::uint64_t seq;  // reserved at serialization end
  };
  std::deque<InFlight> inflight_;
  EventHandle delivery_event_;
  SimTime delivery_at_ = SimTime::zero();  // fire time of delivery_event_

  std::uint64_t queue_bytes_ = 0;
  std::uint64_t max_queue_bytes_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t tail_drops_ = 0;
  std::uint64_t random_drops_ = 0;
  std::uint64_t ecn_marks_ = 0;
  std::uint64_t down_drops_ = 0;
  std::uint64_t voided_packets_ = 0;
  std::uint64_t absorbed_packets_ = 0;

  // Integral of queue_bytes over time, for the time-weighted mean.
  double queue_integral_ = 0.0;     // byte-seconds
  SimTime last_change_ = SimTime::zero();
  SimTime stats_epoch_ = SimTime::zero();

  // Conservation accounting (see accessors above). Only incremented when
  // STELLAR_AUDIT instrumentation is compiled in.
  std::uint64_t audit_accepted_ = 0;
  std::uint64_t audit_released_ = 0;
  std::uint64_t audit_ingress_drops_ = 0;
  std::uint64_t audit_sink_drops_ = 0;
  std::uint64_t audit_absorbed_ = 0;
};

}  // namespace stellar
