// Cross-layer fault injection (§7.2 failure mitigation, exercised end to
// end): a FaultInjector executes a seeded, time-ordered FaultPlan against a
// live simulation —
//
//   * hard link failures (down / up / flapping), with the queued packets
//     either voided or drained under exact conservation accounting;
//   * whole-switch failures via the fabric's switch port groups (every
//     cable touching the switch dies at once);
//   * transient degradation windows (loss probability and/or added
//     propagation latency on one link, restored afterwards);
//   * RNIC device resets (all QPs to error, an ingress-black window);
//   * control-path resource pressure (PVDMA pins fail with
//     kResourceExhausted for a window; the hypervisor retry path backs off);
//   * adversarial-tenant storms (QP/MR churn, IOTLB-thrash scans, pin
//     floods, cold-start stampedes) and a mid-attack tenant kill, executed
//     through decoupled TenantTarget hooks so the isolation layer's
//     throttle/shed defenses are what the storm actually hits.
//
// Plans are plain data, so tests and benches script scenarios declaratively
// and replay them byte-for-byte: the same plan and seed produce identical
// fault telemetry on every run.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "fault/telemetry.h"
#include "net/fabric.h"
#include "rnic/transport.h"
#include "sim/simulator.h"
#include "virt/pvdma.h"

namespace stellar {

enum class FaultKind : std::uint8_t {
  kLinkDown,        // hard-fail one link (stays down until kLinkUp)
  kLinkUp,          // restore one link
  kLinkFlap,        // `flaps` down/up cycles on one link
  kSwitchDown,      // hard-fail every port of one switch
  kSwitchUp,        // restore every port of one switch
  kDegrade,         // loss/latency window on one link, auto-restored
  kRnicReset,       // device reset on one registered engine
  kPinPressure,     // PVDMA pin pressure window on one registered Pvdma
  kBackendRestart,  // vStellar backend hot-upgrade on one control target
  kLiveMigrate,     // live-migrate one control target's VM
  // Adversarial-tenant storms, executed via TenantTarget hooks. `intensity`
  // scales each burst; sustained attacks schedule repeated events.
  kQpChurn,           // create+destroy QP cycles against one tenant's quota
  kMrChurn,           // register+deregister MR cycles (MTT/quota pressure)
  kIotlbThrash,       // wide scan of translations to thrash IOTLB/ATC shares
  kPinFlood,          // PVDMA pin pressure against the host pin capacity
  kColdStartStampede, // burst of container cold starts (RunD-style)
  kTenantKill,        // kill the tenant mid-attack; all resources reclaimed
};

const char* fault_kind_name(FaultKind kind);

/// Which per-port link array a LinkRef addresses.
enum class LinkLayer : std::uint8_t { kHostUp, kTorDown, kTorUp, kAggDown };

/// Coordinates of one fabric egress port. Field meaning depends on layer:
///   kHostUp / kTorDown: {segment, host, rail, plane}
///   kTorUp:             {segment, rail, plane, agg}
///   kAggDown:           {agg, segment, rail, plane}
struct LinkRef {
  LinkLayer layer = LinkLayer::kTorUp;
  std::uint32_t a = 0, b = 0, c = 0, d = 0;
};

/// One whole switch: an aggregation switch (by index within the plane) or a
/// ToR (by segment/rail/plane).
struct SwitchRef {
  bool is_tor = false;
  std::uint32_t agg = 0;                           // !is_tor
  std::uint32_t segment = 0, rail = 0, plane = 0;  // is_tor
};

struct FaultEvent {
  SimTime at;
  FaultKind kind = FaultKind::kLinkDown;
  /// Telemetry tag; pairs a down with its up and a window with its clear.
  std::string label;

  LinkRef link;    // kLinkDown/kLinkUp/kLinkFlap/kDegrade
  SwitchRef sw;    // kSwitchDown/kSwitchUp
  LinkDrainMode drain = LinkDrainMode::kVoid;

  /// kLinkFlap: down time per cycle. kDegrade/kRnicReset/kPinPressure:
  /// window length.
  SimTime duration;
  std::uint32_t flaps = 1;   // kLinkFlap: number of down/up cycles
  SimTime flap_period;       // kLinkFlap: cycle start-to-start (>= duration)

  double degrade_loss = 0.0;     // kDegrade: drop probability in the window
  SimTime degrade_latency;       // kDegrade: extra propagation in the window

  std::uint32_t engine = 0;  // kRnicReset: index into registered engines
  std::uint32_t pvdma = 0;   // kPinPressure: index into registered Pvdmas
  /// kBackendRestart/kLiveMigrate: index into registered control targets.
  std::uint32_t control = 0;
  /// Adversarial-tenant kinds: index into registered tenant targets.
  std::uint32_t tenant = 0;
  /// Burst size for the storm kinds — churn rounds (kQpChurn/kMrChurn),
  /// pages scanned (kIotlbThrash), bytes pinned (kPinFlood), or containers
  /// booted (kColdStartStampede). Ignored by kTenantKill.
  std::uint64_t intensity = 1;
};

struct FaultPlan {
  /// Recorded into the telemetry; reserved as the jitter source for
  /// randomized plans. Two runs with the same plan and seed are identical.
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;
};

// Shard-safety contract: a FaultInjector manipulates its shard's live
// fabric/engine state from scheduled events, so it is SingleOwner — owned
// by the thread driving the simulator, never locked.
class FaultInjector {
 public:
  FaultInjector(Simulator& sim, ClosFabric& fabric,
                FaultTelemetry* telemetry = nullptr)
      : sim_(&sim), fabric_(&fabric), telemetry_(telemetry) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Targets for kRnicReset / kPinPressure, addressed by registration index.
  void register_engine(RdmaEngine* engine) {
    owner_.assert_held();
    engines_.push_back(engine);
  }
  void register_pvdma(Pvdma* pvdma) {
    owner_.assert_held();
    pvdmas_.push_back(pvdma);
  }

  /// Target for the control-plane fault kinds. Callbacks keep this library
  /// decoupled from the host/runtime layers that actually implement a
  /// backend hot-upgrade or a live migration:
  ///  - backend_restart(window): quiesce + snapshot + restore the backend;
  ///    `window` is the ingress blackout the restart imposes.
  ///  - live_migrate(budget): run the migration; returns the realized
  ///    downtime (used to time the telemetry "cleared" mark).
  struct ControlTarget {
    std::function<Status(SimTime window)> backend_restart;
    std::function<StatusOr<SimTime>(SimTime budget)> live_migrate;
  };
  void register_control(ControlTarget target) {
    owner_.assert_held();
    controls_.push_back(std::move(target));
  }

  /// Target for the adversarial-tenant fault kinds. Like ControlTarget,
  /// callbacks keep this library decoupled from the host layer that owns
  /// verbs/MTT/PVDMA state. Each hook performs one burst of the attack
  /// synchronously at the event's simulated time and returns ok when the
  /// burst ran to completion — a quota shed or throttle hitting the attacker
  /// is the DEFENSE WORKING, not an injector failure, so hooks must absorb
  /// kFailedPrecondition/kResourceExhausted from the attacked layer and
  /// count them on their own side. Only infrastructure breakage (a hook
  /// precondition violated, an unexpected status) should surface as error.
  ///  - qp_churn(rounds) / mr_churn(rounds): create+destroy cycles.
  ///  - iotlb_thrash(pages): touch `pages` distinct translations.
  ///  - pin_flood(bytes): demand-pin `bytes` of fresh guest memory.
  ///  - cold_start(vms): boot `vms` extra containers back to back.
  ///  - kill(): tear the tenant down mid-attack; returns bytes reclaimed.
  struct TenantTarget {
    TenantId tenant = kHostTenant;  // telemetry attribution only
    std::function<Status(std::uint64_t rounds)> qp_churn;
    std::function<Status(std::uint64_t rounds)> mr_churn;
    std::function<Status(std::uint64_t pages)> iotlb_thrash;
    std::function<Status(std::uint64_t bytes)> pin_flood;
    std::function<Status(std::uint64_t vms)> cold_start;
    std::function<StatusOr<std::uint64_t>()> kill;
  };
  void register_tenant_target(TenantTarget target) {
    owner_.assert_held();
    tenants_.push_back(std::move(target));
  }

  /// Validate every event and schedule the whole plan. Events at equal
  /// timestamps execute in plan order (the simulator's FIFO tie-break).
  Status arm(const FaultPlan& plan);

  std::uint64_t events_executed() const {
    owner_.assert_held();
    return executed_;
  }

 private:
  Status validate(const FaultEvent& e) const STELLAR_REQUIRES(owner_);
  // Entry points of scheduled events (owning thread); they assert ownership
  // themselves rather than REQUIRES so the scheduling lambdas stay plain.
  void execute(const FaultEvent& e);
  void flap_cycle(FaultEvent e, std::uint32_t remaining);
  NetLink& resolve(const LinkRef& ref) const STELLAR_REQUIRES(owner_);
  std::vector<NetLink*> switch_ports(const SwitchRef& ref) const
      STELLAR_REQUIRES(owner_);

  void note_fault(const FaultEvent& e) STELLAR_REQUIRES(owner_);
  void note_cleared(const std::string& label) STELLAR_REQUIRES(owner_);

  SingleOwner owner_;
  Simulator* sim_;
  ClosFabric* fabric_;
  FaultTelemetry* telemetry_;
  std::vector<RdmaEngine*> engines_ STELLAR_GUARDED_BY(owner_);
  std::vector<Pvdma*> pvdmas_ STELLAR_GUARDED_BY(owner_);
  std::vector<ControlTarget> controls_ STELLAR_GUARDED_BY(owner_);
  std::vector<TenantTarget> tenants_ STELLAR_GUARDED_BY(owner_);
  std::uint64_t executed_ STELLAR_GUARDED_BY(owner_) = 0;
};

}  // namespace stellar
