// Cross-layer fault injection (§7.2 failure mitigation, exercised end to
// end): a FaultInjector executes a seeded, time-ordered FaultPlan against a
// live simulation —
//
//   * hard link failures (down / up / flapping), with the queued packets
//     either voided or drained under exact conservation accounting;
//   * whole-switch failures via the fabric's switch port groups (every
//     cable touching the switch dies at once);
//   * transient degradation windows (loss probability and/or added
//     propagation latency on one link, restored afterwards);
//   * RNIC device resets (all QPs to error, an ingress-black window);
//   * control-path resource pressure (PVDMA pins fail with
//     kResourceExhausted for a window; the hypervisor retry path backs off).
//
// Plans are plain data, so tests and benches script scenarios declaratively
// and replay them byte-for-byte: the same plan and seed produce identical
// fault telemetry on every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "fault/telemetry.h"
#include "net/fabric.h"
#include "rnic/transport.h"
#include "sim/simulator.h"
#include "virt/pvdma.h"

namespace stellar {

enum class FaultKind : std::uint8_t {
  kLinkDown,        // hard-fail one link (stays down until kLinkUp)
  kLinkUp,          // restore one link
  kLinkFlap,        // `flaps` down/up cycles on one link
  kSwitchDown,      // hard-fail every port of one switch
  kSwitchUp,        // restore every port of one switch
  kDegrade,         // loss/latency window on one link, auto-restored
  kRnicReset,       // device reset on one registered engine
  kPinPressure,     // PVDMA pin pressure window on one registered Pvdma
  kBackendRestart,  // vStellar backend hot-upgrade on one control target
  kLiveMigrate,     // live-migrate one control target's VM
};

const char* fault_kind_name(FaultKind kind);

/// Which per-port link array a LinkRef addresses.
enum class LinkLayer : std::uint8_t { kHostUp, kTorDown, kTorUp, kAggDown };

/// Coordinates of one fabric egress port. Field meaning depends on layer:
///   kHostUp / kTorDown: {segment, host, rail, plane}
///   kTorUp:             {segment, rail, plane, agg}
///   kAggDown:           {agg, segment, rail, plane}
struct LinkRef {
  LinkLayer layer = LinkLayer::kTorUp;
  std::uint32_t a = 0, b = 0, c = 0, d = 0;
};

/// One whole switch: an aggregation switch (by index within the plane) or a
/// ToR (by segment/rail/plane).
struct SwitchRef {
  bool is_tor = false;
  std::uint32_t agg = 0;                           // !is_tor
  std::uint32_t segment = 0, rail = 0, plane = 0;  // is_tor
};

struct FaultEvent {
  SimTime at;
  FaultKind kind = FaultKind::kLinkDown;
  /// Telemetry tag; pairs a down with its up and a window with its clear.
  std::string label;

  LinkRef link;    // kLinkDown/kLinkUp/kLinkFlap/kDegrade
  SwitchRef sw;    // kSwitchDown/kSwitchUp
  LinkDrainMode drain = LinkDrainMode::kVoid;

  /// kLinkFlap: down time per cycle. kDegrade/kRnicReset/kPinPressure:
  /// window length.
  SimTime duration;
  std::uint32_t flaps = 1;   // kLinkFlap: number of down/up cycles
  SimTime flap_period;       // kLinkFlap: cycle start-to-start (>= duration)

  double degrade_loss = 0.0;     // kDegrade: drop probability in the window
  SimTime degrade_latency;       // kDegrade: extra propagation in the window

  std::uint32_t engine = 0;  // kRnicReset: index into registered engines
  std::uint32_t pvdma = 0;   // kPinPressure: index into registered Pvdmas
  /// kBackendRestart/kLiveMigrate: index into registered control targets.
  std::uint32_t control = 0;
};

struct FaultPlan {
  /// Recorded into the telemetry; reserved as the jitter source for
  /// randomized plans. Two runs with the same plan and seed are identical.
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;
};

// Shard-safety contract: a FaultInjector manipulates its shard's live
// fabric/engine state from scheduled events, so it is SingleOwner — owned
// by the thread driving the simulator, never locked.
class FaultInjector {
 public:
  FaultInjector(Simulator& sim, ClosFabric& fabric,
                FaultTelemetry* telemetry = nullptr)
      : sim_(&sim), fabric_(&fabric), telemetry_(telemetry) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Targets for kRnicReset / kPinPressure, addressed by registration index.
  void register_engine(RdmaEngine* engine) {
    owner_.assert_held();
    engines_.push_back(engine);
  }
  void register_pvdma(Pvdma* pvdma) {
    owner_.assert_held();
    pvdmas_.push_back(pvdma);
  }

  /// Target for the control-plane fault kinds. Callbacks keep this library
  /// decoupled from the host/runtime layers that actually implement a
  /// backend hot-upgrade or a live migration:
  ///  - backend_restart(window): quiesce + snapshot + restore the backend;
  ///    `window` is the ingress blackout the restart imposes.
  ///  - live_migrate(budget): run the migration; returns the realized
  ///    downtime (used to time the telemetry "cleared" mark).
  struct ControlTarget {
    std::function<Status(SimTime window)> backend_restart;
    std::function<StatusOr<SimTime>(SimTime budget)> live_migrate;
  };
  void register_control(ControlTarget target) {
    owner_.assert_held();
    controls_.push_back(std::move(target));
  }

  /// Validate every event and schedule the whole plan. Events at equal
  /// timestamps execute in plan order (the simulator's FIFO tie-break).
  Status arm(const FaultPlan& plan);

  std::uint64_t events_executed() const {
    owner_.assert_held();
    return executed_;
  }

 private:
  Status validate(const FaultEvent& e) const STELLAR_REQUIRES(owner_);
  // Entry points of scheduled events (owning thread); they assert ownership
  // themselves rather than REQUIRES so the scheduling lambdas stay plain.
  void execute(const FaultEvent& e);
  void flap_cycle(FaultEvent e, std::uint32_t remaining);
  NetLink& resolve(const LinkRef& ref) const STELLAR_REQUIRES(owner_);
  std::vector<NetLink*> switch_ports(const SwitchRef& ref) const
      STELLAR_REQUIRES(owner_);

  void note_fault(const FaultEvent& e) STELLAR_REQUIRES(owner_);
  void note_cleared(const std::string& label) STELLAR_REQUIRES(owner_);

  SingleOwner owner_;
  Simulator* sim_;
  ClosFabric* fabric_;
  FaultTelemetry* telemetry_;
  std::vector<RdmaEngine*> engines_ STELLAR_GUARDED_BY(owner_);
  std::vector<Pvdma*> pvdmas_ STELLAR_GUARDED_BY(owner_);
  std::vector<ControlTarget> controls_ STELLAR_GUARDED_BY(owner_);
  std::uint64_t executed_ STELLAR_GUARDED_BY(owner_) = 0;
};

}  // namespace stellar
