#include "fault/chaos.h"

#include <algorithm>
#include <string>

#include "common/rng.h"

namespace stellar {

namespace {

SimTime random_in(Rng& rng, SimTime lo, SimTime hi) {
  if (hi <= lo) return lo;
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi.ps()) - static_cast<std::uint64_t>(lo.ps());
  return lo + SimTime::picos(static_cast<std::int64_t>(rng.below(span)));
}

LinkRef random_link(Rng& rng, const FabricConfig& c) {
  LinkRef l;
  switch (rng.below(4)) {
    case 0:
      l.layer = LinkLayer::kHostUp;
      l.a = static_cast<std::uint32_t>(rng.below(c.segments));
      l.b = static_cast<std::uint32_t>(rng.below(c.hosts_per_segment));
      l.c = static_cast<std::uint32_t>(rng.below(c.rails));
      l.d = static_cast<std::uint32_t>(rng.below(c.planes));
      break;
    case 1:
      l.layer = LinkLayer::kTorDown;
      l.a = static_cast<std::uint32_t>(rng.below(c.segments));
      l.b = static_cast<std::uint32_t>(rng.below(c.hosts_per_segment));
      l.c = static_cast<std::uint32_t>(rng.below(c.rails));
      l.d = static_cast<std::uint32_t>(rng.below(c.planes));
      break;
    case 2:
      l.layer = LinkLayer::kTorUp;
      l.a = static_cast<std::uint32_t>(rng.below(c.segments));
      l.b = static_cast<std::uint32_t>(rng.below(c.rails));
      l.c = static_cast<std::uint32_t>(rng.below(c.planes));
      l.d = static_cast<std::uint32_t>(rng.below(c.aggs_per_plane));
      break;
    default:
      l.layer = LinkLayer::kAggDown;
      l.a = static_cast<std::uint32_t>(rng.below(c.aggs_per_plane));
      l.b = static_cast<std::uint32_t>(rng.below(c.segments));
      l.c = static_cast<std::uint32_t>(rng.below(c.rails));
      l.d = static_cast<std::uint32_t>(rng.below(c.planes));
      break;
  }
  return l;
}

SwitchRef random_switch(Rng& rng, const FabricConfig& c) {
  SwitchRef s;
  s.is_tor = rng.chance(0.5);
  if (s.is_tor) {
    s.segment = static_cast<std::uint32_t>(rng.below(c.segments));
    s.rail = static_cast<std::uint32_t>(rng.below(c.rails));
    s.plane = static_cast<std::uint32_t>(rng.below(c.planes));
  } else {
    s.agg = static_cast<std::uint32_t>(rng.below(c.aggs_per_plane));
  }
  return s;
}

}  // namespace

FaultPlan make_chaos_plan(const FabricConfig& fabric, const ChaosConfig& cfg) {
  FaultPlan plan;
  plan.seed = cfg.seed;
  Rng rng(hash_combine(cfg.seed, 0xC4A05));

  // Hard outages (anything that blacks out a whole path set) are serialized
  // on this cursor so two of them never overlap: any single outage is
  // survivable by design, a random conjunction might not be.
  SimTime hard_free = cfg.start;
  const SimTime end = cfg.start + cfg.horizon;
  std::size_t seq = 0;

  auto label = [&](const char* kind) {
    return std::string(kind) + "#" + std::to_string(seq++);
  };

  while (plan.events.size() < cfg.events) {
    const std::uint64_t pick = rng.below(10);
    const SimTime at = random_in(rng, cfg.start, end);
    const SimTime outage =
        random_in(rng, SimTime::micros(10), cfg.max_outage);

    if (pick <= 1) {
      // Paired hard link down/up, serialized with other hard outages.
      const SimTime down_at = std::max(at, hard_free);
      FaultEvent down;
      down.at = down_at;
      down.kind = FaultKind::kLinkDown;
      down.label = label("link");
      down.link = random_link(rng, fabric);
      down.drain = rng.chance(0.5) ? LinkDrainMode::kVoid
                                   : LinkDrainMode::kDrain;
      FaultEvent up = down;
      up.at = down_at + outage;
      up.kind = FaultKind::kLinkUp;
      hard_free = up.at + SimTime::micros(20);
      plan.events.push_back(down);
      plan.events.push_back(up);
    } else if (pick == 2) {
      // Paired whole-switch death.
      const SimTime down_at = std::max(at, hard_free);
      FaultEvent down;
      down.at = down_at;
      down.kind = FaultKind::kSwitchDown;
      down.label = label("switch");
      down.sw = random_switch(rng, fabric);
      down.drain = LinkDrainMode::kVoid;
      FaultEvent up = down;
      up.at = down_at + outage;
      up.kind = FaultKind::kSwitchUp;
      hard_free = up.at + SimTime::micros(20);
      plan.events.push_back(down);
      plan.events.push_back(up);
    } else if (pick == 3) {
      FaultEvent e;
      e.at = std::max(at, hard_free);
      e.kind = FaultKind::kLinkFlap;
      e.label = label("flap");
      e.link = random_link(rng, fabric);
      e.duration = random_in(rng, SimTime::micros(5), SimTime::micros(30));
      e.flaps = static_cast<std::uint32_t>(1 + rng.below(3));
      e.flap_period = e.duration + e.duration;
      hard_free = e.at +
                  SimTime::picos(static_cast<std::int64_t>(e.flaps) *
                                 e.flap_period.ps()) +
                  SimTime::micros(20);
      plan.events.push_back(e);
    } else if (pick <= 5) {
      // Soft degradation: free to overlap anything.
      FaultEvent e;
      e.at = at;
      e.kind = FaultKind::kDegrade;
      e.label = label("degrade");
      e.link = random_link(rng, fabric);
      e.duration = random_in(rng, SimTime::micros(50), SimTime::micros(500));
      e.degrade_loss = 0.3 * rng.uniform();
      e.degrade_latency =
          random_in(rng, SimTime::zero(), SimTime::micros(2));
      plan.events.push_back(e);
    } else if (pick == 6 && cfg.engines > 0) {
      const SimTime reset_at = std::max(at, hard_free);
      FaultEvent e;
      e.at = reset_at;
      e.kind = FaultKind::kRnicReset;
      e.label = label("reset");
      e.engine = static_cast<std::uint32_t>(rng.below(cfg.engines));
      e.duration = outage;
      hard_free = reset_at + outage + SimTime::micros(20);
      plan.events.push_back(e);
    } else if (pick == 7 && cfg.pvdmas > 0) {
      FaultEvent e;
      e.at = at;
      e.kind = FaultKind::kPinPressure;
      e.label = label("pressure");
      e.pvdma = static_cast<std::uint32_t>(rng.below(cfg.pvdmas));
      e.duration = random_in(rng, SimTime::micros(20), SimTime::micros(200));
      plan.events.push_back(e);
    } else if (pick == 8 && cfg.controls > 0) {
      FaultEvent e;
      e.at = std::max(at, hard_free);
      e.kind = FaultKind::kBackendRestart;
      e.label = label("restart");
      e.control = static_cast<std::uint32_t>(rng.below(cfg.controls));
      e.duration = outage;
      hard_free = e.at + outage + SimTime::micros(20);
      plan.events.push_back(e);
    } else if (pick == 9 && cfg.controls > 0) {
      FaultEvent e;
      e.at = std::max(at, hard_free);
      e.kind = FaultKind::kLiveMigrate;
      e.label = label("migrate");
      e.control = static_cast<std::uint32_t>(rng.below(cfg.controls));
      e.duration = outage;
      hard_free = e.at + outage + SimTime::micros(20);
      plan.events.push_back(e);
    } else {
      // Target class unavailable: fall back to a soft degrade so the draw
      // still advances deterministically.
      FaultEvent e;
      e.at = at;
      e.kind = FaultKind::kDegrade;
      e.label = label("degrade");
      e.link = random_link(rng, fabric);
      e.duration = random_in(rng, SimTime::micros(50), SimTime::micros(300));
      e.degrade_loss = 0.2 * rng.uniform();
      e.degrade_latency = random_in(rng, SimTime::zero(), SimTime::micros(1));
      plan.events.push_back(e);
    }
  }

  std::stable_sort(
      plan.events.begin(), plan.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

}  // namespace stellar
