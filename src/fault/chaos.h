// Chaos-soak plan generation: seeded random FaultPlans composing every
// fault kind the injector knows — data-plane faults (PR 2) plus the
// control-plane kinds (backend restart, live migration) — against a live
// workload. The same seed always produces the same plan, so a soak failure
// replays byte-for-byte.
//
// The generator is deliberately survivable-by-construction: hard outages
// (link/switch down) are kept short and serialized in time, so the
// RTO/retransmit + blacklist machinery can always recover and a collective
// running under the plan is expected to *complete* — the soak asserts
// invariants, not crashes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.h"
#include "fault/fault.h"
#include "net/fabric.h"

namespace stellar {

struct ChaosConfig {
  std::uint64_t seed = 1;
  /// Number of fault events to generate (paired down/up count as two).
  std::size_t events = 100;
  /// Faults start no earlier than `start` and are injected across
  /// `horizon` of simulated time.
  SimTime start = SimTime::millis(1);
  SimTime horizon = SimTime::millis(40);
  /// Registered target counts on the injector (0 disables that kind).
  std::size_t engines = 0;
  std::size_t pvdmas = 0;
  std::size_t controls = 0;
  /// Longest hard outage (link/switch down, reset window). Kept well under
  /// the retry budget (max_retries * rto) so no QP is ever starved to
  /// death by the plan itself.
  SimTime max_outage = SimTime::micros(120);
};

/// Build a random, seed-deterministic plan valid for `fabric`.
FaultPlan make_chaos_plan(const FabricConfig& fabric, const ChaosConfig& cfg);

}  // namespace stellar
