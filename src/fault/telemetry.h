// FaultTelemetry: the measurement side of the fault-injection framework.
//
// A periodic sampler snapshots transport health (goodput, timeouts,
// retransmits, errored QPs, blacklisted paths) across a set of watched
// RdmaEngines, and the FaultInjector reports every fault start/clear into
// the same timeline. analyze() then derives, per fault event, the
// time-to-detect (first post-injection sample showing new timeouts or QP
// errors), the time-to-recover (goodput back to >= 90% of the pre-fault
// baseline), and the goodput dip (worst fault-window interval throughput
// relative to that baseline) — the §7.2 recovery metrics.
//
// Everything is deterministic: samples fire on the simulator clock, all
// times serialize as integer picoseconds, and to_json() is byte-identical
// across runs of the same plan and seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "rnic/transport.h"
#include "sim/simulator.h"

namespace stellar {

class FaultTelemetry {
 public:
  struct FaultRecord {
    std::string label;
    std::string kind;
    SimTime injected_at;
    SimTime cleared_at;
    bool cleared = false;
  };

  /// Cumulative transport counters across all watched engines.
  struct Sample {
    SimTime at;
    std::uint64_t goodput_bytes = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t errored_qps = 0;
    std::uint64_t blacklisted_paths = 0;
  };

  struct EventAnalysis {
    std::string label;
    std::string kind;
    SimTime injected_at;
    bool detected = false;
    bool recovered = false;
    SimTime detect_latency;   // injection -> first sample with new distress
    SimTime recover_latency;  // injection -> goodput back at baseline
    double goodput_dip = 1.0; // worst fault-window interval / baseline
  };

  /// Engines whose counters feed the sampler. Register before attach().
  void watch_engine(const RdmaEngine* engine) { engines_.push_back(engine); }

  /// Sample every `period` of simulated time. The recurring event re-arms
  /// only while the simulator has other pending work (the AuditRegistry
  /// pattern), so the final sample sees the drained end state and run()
  /// still terminates.
  void attach(Simulator& sim, SimTime period);
  void detach();
  bool attached() const { return sim_ != nullptr; }

  /// Injector-facing timeline hooks.
  void set_seed(std::uint64_t seed) { seed_ = seed; }
  void on_fault(std::string label, std::string kind, SimTime at);
  void on_fault_cleared(const std::string& label, SimTime at);

  const std::vector<FaultRecord>& faults() const { return faults_; }
  const std::vector<Sample>& samples() const { return samples_; }

  std::vector<EventAnalysis> analyze() const;

  /// Deterministic machine-readable dump (seed, faults, samples, analysis).
  std::string to_json() const;

 private:
  void fire();
  Sample snapshot() const;

  Simulator* sim_ = nullptr;
  SimTime period_;
  EventHandle pending_;
  std::uint64_t seed_ = 0;
  std::vector<const RdmaEngine*> engines_;
  std::vector<FaultRecord> faults_;
  std::vector<Sample> samples_;
};

}  // namespace stellar
