// FaultTelemetry: the measurement side of the fault-injection framework.
//
// A periodic sampler snapshots transport health (goodput, timeouts,
// retransmits, errored QPs, blacklisted paths) across a set of watched
// RdmaEngines, and the FaultInjector reports every fault start/clear into
// the same timeline. analyze() then derives, per fault event, the
// time-to-detect (first post-injection sample showing new timeouts or QP
// errors), the time-to-recover (goodput back to >= 90% of the pre-fault
// baseline), and the goodput dip (worst fault-window interval throughput
// relative to that baseline) — the §7.2 recovery metrics.
//
// Everything is deterministic: samples fire on the simulator clock, all
// times serialize as integer picoseconds, and to_json() is byte-identical
// across runs of the same plan and seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "rnic/transport.h"
#include "sim/simulator.h"
#include "virt/hypervisor.h"

namespace stellar {

// Shard-safety contract: SingleOwner, like the FaultInjector feeding it —
// samples and fault marks are appended from simulator events on the owning
// shard's thread, and analyze()/to_json() run there after the drain.
class FaultTelemetry {
 public:
  struct FaultRecord {
    std::string label;
    std::string kind;
    SimTime injected_at;
    SimTime cleared_at;
    bool cleared = false;
  };

  /// Cumulative transport counters across all watched engines, plus pin
  /// retries across all watched hypervisors.
  struct Sample {
    SimTime at;
    std::uint64_t goodput_bytes = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t errored_qps = 0;
    std::uint64_t blacklisted_paths = 0;
    std::uint64_t pin_retries = 0;
  };

  struct EventAnalysis {
    std::string label;
    std::string kind;
    SimTime injected_at;
    bool detected = false;
    bool recovered = false;
    SimTime detect_latency;   // injection -> first sample with new distress
    SimTime recover_latency;  // injection -> goodput back at baseline
    double goodput_dip = 1.0; // worst fault-window interval / baseline
  };

  /// Engines whose counters feed the sampler. Register before attach().
  void watch_engine(const RdmaEngine* engine) {
    owner_.assert_held();
    engines_.push_back(engine);
  }

  /// Hypervisors whose pin-retry counters feed the sampler and the
  /// per-tenant retry attribution in to_json() — this is what separates an
  /// attacker's own retry storm from collateral retries on victims.
  void watch_hypervisor(const Hypervisor* hypervisor) {
    owner_.assert_held();
    hypervisors_.push_back(hypervisor);
  }

  /// Total pin retries per tenant across all watched hypervisors (ordered,
  /// so emitters iterating it are deterministic).
  std::map<VmId, std::uint64_t> pin_retries_by_tenant() const;

  /// Sample every `period` of simulated time. The recurring event re-arms
  /// only while the simulator has other pending work (the AuditRegistry
  /// pattern), so the final sample sees the drained end state and run()
  /// still terminates.
  void attach(Simulator& sim, SimTime period);
  void detach();
  bool attached() const {
    owner_.assert_held();
    return sim_ != nullptr;
  }

  /// Injector-facing timeline hooks.
  void set_seed(std::uint64_t seed) {
    owner_.assert_held();
    seed_ = seed;
  }
  void on_fault(std::string label, std::string kind, SimTime at);
  void on_fault_cleared(const std::string& label, SimTime at);

  const std::vector<FaultRecord>& faults() const {
    owner_.assert_held();
    return faults_;
  }
  const std::vector<Sample>& samples() const {
    owner_.assert_held();
    return samples_;
  }

  std::vector<EventAnalysis> analyze() const;

  /// Deterministic machine-readable dump (seed, faults, samples, analysis).
  std::string to_json() const;

 private:
  // Runs as a simulator event (owning thread); asserts ownership itself.
  void fire();
  Sample snapshot() const STELLAR_REQUIRES(owner_);

  SingleOwner owner_;
  Simulator* sim_ STELLAR_GUARDED_BY(owner_) = nullptr;
  SimTime period_ STELLAR_GUARDED_BY(owner_);
  EventHandle pending_ STELLAR_GUARDED_BY(owner_);
  std::uint64_t seed_ STELLAR_GUARDED_BY(owner_) = 0;
  std::vector<const RdmaEngine*> engines_ STELLAR_GUARDED_BY(owner_);
  std::vector<const Hypervisor*> hypervisors_ STELLAR_GUARDED_BY(owner_);
  std::vector<FaultRecord> faults_ STELLAR_GUARDED_BY(owner_);
  std::vector<Sample> samples_ STELLAR_GUARDED_BY(owner_);
};

}  // namespace stellar
