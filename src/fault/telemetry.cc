#include "fault/telemetry.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace stellar {

namespace {

// Recovery is declared when an interval's goodput reaches this fraction of
// the pre-fault baseline rate.
constexpr double kRecoveredFraction = 0.9;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void FaultTelemetry::attach(Simulator& sim, SimTime period) {
  owner_.assert_held();
  detach();
  sim_ = &sim;
  period_ = period;
  // Take the t=attach baseline sample immediately, then sample every period.
  samples_.push_back(snapshot());
  pending_ = sim_->schedule_after(period_, [this] { fire(); });
}

void FaultTelemetry::detach() {
  owner_.assert_held();
  if (sim_ != nullptr && pending_.valid()) {
    sim_->cancel(pending_);
  }
  pending_ = EventHandle{};
  sim_ = nullptr;
}

void FaultTelemetry::fire() {
  owner_.assert_held();
  pending_ = EventHandle{};
  samples_.push_back(snapshot());
  // Mirror the sample onto the shared registry/trace so fault telemetry
  // shows up next to every other layer's series.
  STELLAR_TRACE_ONLY(
      const Sample& s = samples_.back();
      obs::gauge_set("fault/errored_qps",
                     static_cast<std::int64_t>(s.errored_qps));
      obs::gauge_set("fault/blacklisted_paths",
                     static_cast<std::int64_t>(s.blacklisted_paths));
      obs::track(obs::TraceCat::kFault, "goodput_bytes", s.at,
                 static_cast<std::int64_t>(s.goodput_bytes));
      obs::track(obs::TraceCat::kFault, "retransmits", s.at,
                 static_cast<std::int64_t>(s.retransmits));)
  // Re-arm only while other work is queued: the firing that observes an
  // empty queue recorded the drained end state, and the simulation may end.
  if (sim_ != nullptr && !sim_->empty()) {
    pending_ = sim_->schedule_after(period_, [this] { fire(); });
  }
}

FaultTelemetry::Sample FaultTelemetry::snapshot() const {
  Sample s;
  s.at = sim_ != nullptr ? sim_->now() : SimTime::zero();
  for (const RdmaEngine* engine : engines_) {
    s.goodput_bytes += engine->rx_goodput_bytes();
    for (const auto& conn : engine->connections()) {
      s.timeouts += conn->timeouts();
      s.retransmits += conn->retransmits();
      s.errored_qps += conn->in_error() ? 1 : 0;
      s.blacklisted_paths += conn->blacklisted_paths();
    }
  }
  for (const Hypervisor* hv : hypervisors_) {
    s.pin_retries += hv->pin_retries();
  }
  return s;
}

std::map<VmId, std::uint64_t> FaultTelemetry::pin_retries_by_tenant() const {
  owner_.assert_held();
  std::map<VmId, std::uint64_t> out;
  for (const Hypervisor* hv : hypervisors_) {
    for (const auto& [vm, retries] : hv->pin_retries_by_vm()) {
      out[vm] += retries;
    }
  }
  return out;
}

void FaultTelemetry::on_fault(std::string label, std::string kind,
                              SimTime at) {
  owner_.assert_held();
  FaultRecord rec;
  rec.label = std::move(label);
  rec.kind = std::move(kind);
  rec.injected_at = at;
  STELLAR_TRACE_ONLY(obs::count("fault/injected");
                     obs::instant(obs::TraceCat::kFault, rec.label, at);)
  faults_.push_back(std::move(rec));
}

void FaultTelemetry::on_fault_cleared(const std::string& label, SimTime at) {
  owner_.assert_held();
  // Clear the most recent un-cleared record with this label (flap cycles
  // reuse one record: only the final up marks it cleared).
  for (auto it = faults_.rbegin(); it != faults_.rend(); ++it) {
    if (it->label == label && !it->cleared) {
      it->cleared = true;
      it->cleared_at = at;
      STELLAR_TRACE_ONLY(
          obs::count("fault/cleared");
          obs::instant(obs::TraceCat::kFault, label + "/cleared", at);)
      return;
    }
  }
}

std::vector<FaultTelemetry::EventAnalysis> FaultTelemetry::analyze() const {
  owner_.assert_held();
  std::vector<EventAnalysis> out;
  out.reserve(faults_.size());
  for (const FaultRecord& fault : faults_) {
    EventAnalysis ea;
    ea.label = fault.label;
    ea.kind = fault.kind;
    ea.injected_at = fault.injected_at;

    // Pre-fault baseline: mean per-second goodput over the non-idle
    // intervals that completed before the injection.
    double baseline = 0.0;
    std::uint64_t pre_intervals = 0;
    for (std::size_t i = 1; i < samples_.size(); ++i) {
      const Sample& prev = samples_[i - 1];
      const Sample& cur = samples_[i];
      if (cur.at > fault.injected_at) break;
      const double secs = (cur.at - prev.at).sec();
      if (secs <= 0.0 || cur.goodput_bytes == prev.goodput_bytes) continue;
      baseline += static_cast<double>(cur.goodput_bytes - prev.goodput_bytes) /
                  secs;
      ++pre_intervals;
    }
    if (pre_intervals > 0) baseline /= static_cast<double>(pre_intervals);

    double worst_rate = baseline;
    for (std::size_t i = 1; i < samples_.size(); ++i) {
      const Sample& prev = samples_[i - 1];
      const Sample& cur = samples_[i];
      if (cur.at <= fault.injected_at) continue;

      // Detection: the first post-injection sample showing new transport
      // distress (timeouts, retransmits, or QPs moving to error).
      if (!ea.detected && (cur.timeouts > prev.timeouts ||
                           cur.retransmits > prev.retransmits ||
                           cur.errored_qps > prev.errored_qps)) {
        ea.detected = true;
        ea.detect_latency = cur.at - fault.injected_at;
      }

      const double secs = (cur.at - prev.at).sec();
      if (secs <= 0.0) continue;
      const double rate =
          static_cast<double>(cur.goodput_bytes - prev.goodput_bytes) / secs;
      if (!ea.recovered) worst_rate = std::min(worst_rate, rate);
      if (!ea.recovered && baseline > 0.0 &&
          rate >= kRecoveredFraction * baseline) {
        ea.recovered = true;
        ea.recover_latency = cur.at - fault.injected_at;
      }
    }
    ea.goodput_dip = baseline > 0.0 ? worst_rate / baseline : 1.0;
    if (ea.goodput_dip < 0.0) ea.goodput_dip = 0.0;
    out.push_back(std::move(ea));
  }
  return out;
}

std::string FaultTelemetry::to_json() const {
  owner_.assert_held();
  std::string out = "{\n  \"seed\": " + std::to_string(seed_) + ",\n";

  out += "  \"faults\": [";
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    const FaultRecord& f = faults_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"label\": \"" + json_escape(f.label) + "\", \"kind\": \"" +
           json_escape(f.kind) +
           "\", \"injected_ps\": " + std::to_string(f.injected_at.ps()) +
           ", \"cleared\": " + (f.cleared ? "true" : "false") +
           ", \"cleared_ps\": " + std::to_string(f.cleared_at.ps()) + "}";
  }
  out += faults_.empty() ? "],\n" : "\n  ],\n";

  out += "  \"samples\": [";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"at_ps\": " + std::to_string(s.at.ps()) +
           ", \"goodput_bytes\": " + std::to_string(s.goodput_bytes) +
           ", \"timeouts\": " + std::to_string(s.timeouts) +
           ", \"retransmits\": " + std::to_string(s.retransmits) +
           ", \"errored_qps\": " + std::to_string(s.errored_qps) +
           ", \"blacklisted_paths\": " + std::to_string(s.blacklisted_paths) +
           ", \"pin_retries\": " + std::to_string(s.pin_retries) + "}";
  }
  out += samples_.empty() ? "],\n" : "\n  ],\n";

  // Attacker-vs-victim retry attribution (std::map iteration is ordered, so
  // this emitter is deterministic by construction).
  const auto by_tenant = pin_retries_by_tenant();
  out += "  \"pin_retries_by_tenant\": {";
  bool first_tenant = true;
  for (const auto& [vm, retries] : by_tenant) {
    out += first_tenant ? "\n" : ",\n";
    first_tenant = false;
    out += "    \"" + std::to_string(vm) + "\": " + std::to_string(retries);
  }
  out += by_tenant.empty() ? "},\n" : "\n  },\n";

  const auto analysis = analyze();
  out += "  \"analysis\": [";
  for (std::size_t i = 0; i < analysis.size(); ++i) {
    const EventAnalysis& a = analysis[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"label\": \"" + json_escape(a.label) + "\", \"kind\": \"" +
           json_escape(a.kind) +
           "\", \"injected_ps\": " + std::to_string(a.injected_at.ps()) +
           ", \"detected\": " + (a.detected ? "true" : "false") +
           ", \"detect_latency_ps\": " +
           std::to_string(a.detect_latency.ps()) +
           ", \"recovered\": " + (a.recovered ? "true" : "false") +
           ", \"recover_latency_ps\": " +
           std::to_string(a.recover_latency.ps()) +
           // Serialized as integer parts-per-million: "%f"-style float
           // formatting is banned in deterministic emitters (stellar-lint
           // rule float-format); the analysis struct keeps the double.
           ", \"goodput_dip_ppm\": " +
           std::to_string(static_cast<long long>(
               std::llround(a.goodput_dip * 1e6))) +
           "}";
  }
  out += analysis.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace stellar
