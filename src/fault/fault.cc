#include "fault/fault.h"

#include <algorithm>

#include "check/check.h"

namespace stellar {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kLinkFlap: return "link_flap";
    case FaultKind::kSwitchDown: return "switch_down";
    case FaultKind::kSwitchUp: return "switch_up";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kRnicReset: return "rnic_reset";
    case FaultKind::kPinPressure: return "pin_pressure";
    case FaultKind::kBackendRestart: return "backend_restart";
    case FaultKind::kLiveMigrate: return "live_migrate";
    case FaultKind::kQpChurn: return "qp_churn";
    case FaultKind::kMrChurn: return "mr_churn";
    case FaultKind::kIotlbThrash: return "iotlb_thrash";
    case FaultKind::kPinFlood: return "pin_flood";
    case FaultKind::kColdStartStampede: return "cold_start_stampede";
    case FaultKind::kTenantKill: return "tenant_kill";
  }
  return "unknown";
}

Status FaultInjector::arm(const FaultPlan& plan) {
  owner_.assert_held();
  for (const FaultEvent& e : plan.events) {
    Status s = validate(e);
    if (!s.is_ok()) return s;
  }
  if (telemetry_ != nullptr) telemetry_->set_seed(plan.seed);
  for (const FaultEvent& e : plan.events) {
    sim_->schedule_at(e.at, [this, e] { execute(e); });
  }
  return Status::ok();
}

Status FaultInjector::validate(const FaultEvent& e) const {
  const FabricConfig& c = fabric_->config();
  auto link_ok = [&](const LinkRef& l) {
    switch (l.layer) {
      case LinkLayer::kHostUp:
      case LinkLayer::kTorDown:
        return l.a < c.segments && l.b < c.hosts_per_segment && l.c < c.rails &&
               l.d < c.planes;
      case LinkLayer::kTorUp:
        return l.a < c.segments && l.b < c.rails && l.c < c.planes &&
               l.d < c.aggs_per_plane;
      case LinkLayer::kAggDown:
        return l.a < c.aggs_per_plane && l.b < c.segments && l.c < c.rails &&
               l.d < c.planes;
    }
    return false;
  };
  auto switch_ok = [&](const SwitchRef& s) {
    return s.is_tor ? (s.segment < c.segments && s.rail < c.rails &&
                       s.plane < c.planes)
                    : s.agg < c.aggs_per_plane;
  };
  const std::string tag = "FaultPlan[" + e.label + "]: ";
  switch (e.kind) {
    case FaultKind::kLinkDown:
    case FaultKind::kLinkUp:
      if (!link_ok(e.link)) return invalid_argument(tag + "bad link ref");
      break;
    case FaultKind::kLinkFlap:
      if (!link_ok(e.link)) return invalid_argument(tag + "bad link ref");
      if (e.flaps == 0) return invalid_argument(tag + "flaps must be >= 1");
      if (e.duration <= SimTime::zero()) {
        return invalid_argument(tag + "flap duration must be > 0");
      }
      break;
    case FaultKind::kSwitchDown:
    case FaultKind::kSwitchUp:
      if (!switch_ok(e.sw)) return invalid_argument(tag + "bad switch ref");
      break;
    case FaultKind::kDegrade:
      if (!link_ok(e.link)) return invalid_argument(tag + "bad link ref");
      if (e.duration <= SimTime::zero()) {
        return invalid_argument(tag + "degrade window must be > 0");
      }
      if (e.degrade_loss < 0.0 || e.degrade_loss > 1.0) {
        return invalid_argument(tag + "degrade_loss must be in [0, 1]");
      }
      break;
    case FaultKind::kRnicReset:
      if (e.engine >= engines_.size()) {
        return invalid_argument(tag + "engine index out of range");
      }
      if (e.duration <= SimTime::zero()) {
        return invalid_argument(tag + "reset window must be > 0");
      }
      break;
    case FaultKind::kPinPressure:
      if (e.pvdma >= pvdmas_.size()) {
        return invalid_argument(tag + "pvdma index out of range");
      }
      if (e.duration <= SimTime::zero()) {
        return invalid_argument(tag + "pressure window must be > 0");
      }
      break;
    case FaultKind::kBackendRestart:
      if (e.control >= controls_.size()) {
        return invalid_argument(tag + "control index out of range");
      }
      if (!controls_[e.control].backend_restart) {
        return invalid_argument(tag + "target has no backend_restart hook");
      }
      if (e.duration <= SimTime::zero()) {
        return invalid_argument(tag + "restart window must be > 0");
      }
      break;
    case FaultKind::kLiveMigrate:
      if (e.control >= controls_.size()) {
        return invalid_argument(tag + "control index out of range");
      }
      if (!controls_[e.control].live_migrate) {
        return invalid_argument(tag + "target has no live_migrate hook");
      }
      break;
    case FaultKind::kQpChurn:
    case FaultKind::kMrChurn:
    case FaultKind::kIotlbThrash:
    case FaultKind::kPinFlood:
    case FaultKind::kColdStartStampede: {
      if (e.tenant >= tenants_.size()) {
        return invalid_argument(tag + "tenant target index out of range");
      }
      if (e.intensity == 0) {
        return invalid_argument(tag + "storm intensity must be >= 1");
      }
      const TenantTarget& t = tenants_[e.tenant];
      const bool hooked =
          (e.kind == FaultKind::kQpChurn && t.qp_churn) ||
          (e.kind == FaultKind::kMrChurn && t.mr_churn) ||
          (e.kind == FaultKind::kIotlbThrash && t.iotlb_thrash) ||
          (e.kind == FaultKind::kPinFlood && t.pin_flood) ||
          (e.kind == FaultKind::kColdStartStampede && t.cold_start);
      if (!hooked) {
        return invalid_argument(tag + "target has no hook for this storm");
      }
      break;
    }
    case FaultKind::kTenantKill:
      if (e.tenant >= tenants_.size()) {
        return invalid_argument(tag + "tenant target index out of range");
      }
      if (!tenants_[e.tenant].kill) {
        return invalid_argument(tag + "target has no kill hook");
      }
      break;
  }
  return Status::ok();
}

NetLink& FaultInjector::resolve(const LinkRef& ref) const {
  switch (ref.layer) {
    case LinkLayer::kHostUp:
      return fabric_->host_uplink(ref.a, ref.b, ref.c, ref.d);
    case LinkLayer::kTorDown:
      return fabric_->tor_downlink(ref.a, ref.b, ref.c, ref.d);
    case LinkLayer::kTorUp:
      return fabric_->tor_uplink(ref.a, ref.b, ref.c, ref.d);
    case LinkLayer::kAggDown:
      return fabric_->agg_downlink(ref.a, ref.b, ref.c, ref.d);
  }
  STELLAR_CHECK(false, "unreachable LinkLayer");
  return fabric_->tor_uplink(0, 0, 0, 0);
}

std::vector<NetLink*> FaultInjector::switch_ports(const SwitchRef& ref) const {
  return ref.is_tor
             ? fabric_->tor_switch_ports(ref.segment, ref.rail, ref.plane)
             : fabric_->agg_switch_ports(ref.agg);
}

void FaultInjector::note_fault(const FaultEvent& e) {
  if (telemetry_ != nullptr) {
    telemetry_->on_fault(e.label, fault_kind_name(e.kind), sim_->now());
  }
}

void FaultInjector::note_cleared(const std::string& label) {
  if (telemetry_ != nullptr) telemetry_->on_fault_cleared(label, sim_->now());
}

void FaultInjector::execute(const FaultEvent& e) {
  owner_.assert_held();
  ++executed_;
  // Hybrid fidelity: a fabric-touching fault forces packet-level zoom
  // before it executes — fluid models stable epochs only, and the outage
  // must hit real queues/QPs, not an analytic flow. The hold keeps the
  // promotion logic off for at least the fault's own window. Tenant-storm
  // and pin-pressure kinds exercise the control/tenant plane, not the
  // fabric, and stay fluid-compatible.
  if (HybridDriver* driver = fabric_->hybrid_driver()) {
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkFlap:
      case FaultKind::kSwitchDown:
      case FaultKind::kSwitchUp:
      case FaultKind::kDegrade:
      case FaultKind::kRnicReset:
      case FaultKind::kBackendRestart:
      case FaultKind::kLiveMigrate:
        driver->force_packet(std::max(e.duration, SimTime::micros(100)),
                             fault_kind_name(e.kind));
        break;
      default:
        break;
    }
  }
  switch (e.kind) {
    case FaultKind::kLinkDown:
      resolve(e.link).set_down(e.drain);
      note_fault(e);
      break;

    case FaultKind::kLinkUp:
      resolve(e.link).set_up();
      note_cleared(e.label);
      break;

    case FaultKind::kLinkFlap:
      note_fault(e);
      flap_cycle(e, e.flaps);
      break;

    case FaultKind::kSwitchDown:
      for (NetLink* port : switch_ports(e.sw)) port->set_down(e.drain);
      note_fault(e);
      break;

    case FaultKind::kSwitchUp:
      for (NetLink* port : switch_ports(e.sw)) port->set_up();
      note_cleared(e.label);
      break;

    case FaultKind::kDegrade: {
      NetLink& link = resolve(e.link);
      const double orig_loss = link.config().drop_probability;
      const SimTime orig_prop = link.config().propagation;
      link.set_drop_probability(e.degrade_loss);
      link.set_propagation(orig_prop + e.degrade_latency);
      note_fault(e);
      sim_->schedule_after(
          e.duration, [this, &link, orig_loss, orig_prop, label = e.label] {
            link.set_drop_probability(orig_loss);
            link.set_propagation(orig_prop);
            note_cleared(label);
          });
      break;
    }

    case FaultKind::kRnicReset:
      engines_[e.engine]->reset_device(e.duration);
      note_fault(e);
      sim_->schedule_after(e.duration,
                           [this, label = e.label] { note_cleared(label); });
      break;

    case FaultKind::kPinPressure:
      pvdmas_[e.pvdma]->set_resource_pressure(true);
      note_fault(e);
      sim_->schedule_after(e.duration,
                           [this, pvdma = e.pvdma, label = e.label] {
                             pvdmas_[pvdma]->set_resource_pressure(false);
                             note_cleared(label);
                           });
      break;

    case FaultKind::kBackendRestart: {
      note_fault(e);
      STELLAR_CHECK_OK(controls_[e.control].backend_restart(e.duration),
                       "backend restart hook failed");
      sim_->schedule_after(e.duration,
                           [this, label = e.label] { note_cleared(label); });
      break;
    }

    case FaultKind::kLiveMigrate: {
      note_fault(e);
      auto downtime = controls_[e.control].live_migrate(e.duration);
      STELLAR_CHECK_OK(downtime.status(), "live migrate hook failed");
      sim_->schedule_after(downtime.value(),
                           [this, label = e.label] { note_cleared(label); });
      break;
    }

    // Adversarial-tenant bursts run synchronously at the event time; the
    // cleared mark lands as soon as the burst returns. Sustained storms are
    // plans with many events, each its own fault/cleared pair.
    case FaultKind::kQpChurn:
    case FaultKind::kMrChurn:
    case FaultKind::kIotlbThrash:
    case FaultKind::kPinFlood:
    case FaultKind::kColdStartStampede: {
      const TenantTarget& t = tenants_[e.tenant];
      note_fault(e);
      Status burst = Status::ok();
      switch (e.kind) {
        case FaultKind::kQpChurn: burst = t.qp_churn(e.intensity); break;
        case FaultKind::kMrChurn: burst = t.mr_churn(e.intensity); break;
        case FaultKind::kIotlbThrash:
          burst = t.iotlb_thrash(e.intensity);
          break;
        case FaultKind::kPinFlood: burst = t.pin_flood(e.intensity); break;
        default: burst = t.cold_start(e.intensity); break;
      }
      STELLAR_CHECK_OK(burst, "tenant storm hook failed");
      note_cleared(e.label);
      break;
    }

    case FaultKind::kTenantKill: {
      note_fault(e);
      auto reclaimed = tenants_[e.tenant].kill();
      STELLAR_CHECK_OK(reclaimed.status(), "tenant kill hook failed");
      note_cleared(e.label);
      break;
    }
  }
}

void FaultInjector::flap_cycle(FaultEvent e, std::uint32_t remaining) {
  owner_.assert_held();
  NetLink& link = resolve(e.link);
  link.set_down(e.drain);
  sim_->schedule_after(e.duration, [this, e, remaining, &link] {
    link.set_up();
    if (remaining <= 1) {
      note_cleared(e.label);
      return;
    }
    const SimTime period = std::max(e.flap_period, e.duration);
    const SimTime next_down = period - e.duration;  // time to stay up
    sim_->schedule_after(next_down, [this, e, remaining] {
      flap_cycle(e, remaining - 1);
    });
  });
}

}  // namespace stellar
