#include "virt/pvdma.h"

#include "common/log.h"
#include "obs/obs.h"

namespace stellar {

namespace {
// The MMIO window of pcie/host_pcie.cc: any HPA at or above this belongs to
// a device BAR, not DRAM. Used to classify stale-mapping destinations.
constexpr std::uint64_t kBarWindowBase = 1ull << 46;
}  // namespace

StatusOr<Pvdma::MapResult> Pvdma::prepare_dma(Gpa gpa, std::uint64_t len) {
  if (len == 0) return invalid_argument("Pvdma::prepare_dma: zero length");
  if (pressured_) {
    ++pressured_rejections_;
    STELLAR_TRACE_ONLY(obs::count("pvdma/pressured_rejections");)
    return resource_exhausted(
        "Pvdma::prepare_dma: pin resources exhausted (injected pressure)");
  }
  MapResult out;
  out.cache_hit = true;

  const std::uint64_t bs = config_.block_size;
  const Gpa first = gpa.align_down(bs);
  const Gpa last = (gpa + (len - 1)).align_down(bs);
  for (Gpa block = first; block <= last; block = block + bs) {
    out.cost += config_.map_cache_lookup;
    if (cache_.lookup(block)) {
      cache_.add_user(block);
      STELLAR_TRACE_ONLY(obs::count("pvdma/map_cache_hits");)
      continue;
    }
    STELLAR_TRACE_ONLY(obs::count("pvdma/map_cache_misses");)
    out.cache_hit = false;
    if (pin_budget_bytes_ != 0 && pinned_bytes_ + bs > pin_budget_bytes_) {
      ++budget_rejections_;
      STELLAR_TRACE_ONLY(obs::count("pvdma/budget_rejections");)
      return failed_precondition(
          "Pvdma::prepare_dma: tenant pin budget exceeded");
    }
    if (!iommu_->pin_capacity_available(bs)) {
      ++capacity_rejections_;
      STELLAR_TRACE_ONLY(obs::count("pvdma/capacity_rejections");)
      return resource_exhausted(
          "Pvdma::prepare_dma: host pin capacity exhausted");
    }
    Status s = register_block(block);
    if (!s.is_ok()) return s;
    cache_.insert(block);
    ++blocks_registered_;
    out.cost += iommu_->pin_cost(bs);
    iommu_->note_pinned(bs, tenant_);
    pinned_bytes_ += bs;
    out.pinned_bytes += bs;
    STELLAR_TRACE_ONLY(obs::count("pvdma/blocks_pinned");
                       obs::gauge_add("pvdma/pinned_bytes",
                                      static_cast<std::int64_t>(bs));)
  }
  STELLAR_TRACE_ONLY(
      obs::count("pvdma/prepares");
      obs::record_time("pvdma/prepare_cost_ps", out.cost);
      obs::complete_here(
          obs::TraceCat::kPvdma, "prepare_dma", out.cost,
          obs::TraceArgs{"bytes", static_cast<std::int64_t>(len), "hit",
                         out.cache_hit ? 1 : 0, "pinned",
                         static_cast<std::int64_t>(out.pinned_bytes)});)
  return out;
}

void Pvdma::release_dma(Gpa gpa, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t bs = config_.block_size;
  const Gpa first = gpa.align_down(bs);
  const Gpa last = (gpa + (len - 1)).align_down(bs);
  for (Gpa block = first; block <= last; block = block + bs) {
    if (!cache_.contains(block)) {
      // Releasing a block that was never prepared (or already fully
      // released) is a pin-lifecycle bug in the caller — the double-unpin
      // class the invariant auditor flags.
      ++double_unpins_;
      STELLAR_TRACE_ONLY(obs::count("pvdma/double_unpins");)
      LOG_WARN("Pvdma::release_dma: block GPA 0x%llx was never mapped "
               "(double unpin?)",
               static_cast<unsigned long long>(block.value()));
      continue;
    }
    if (cache_.release_user(block)) {
      unregister_block(block);
      cache_.erase(block);
      iommu_->note_unpinned(bs, tenant_);
      pinned_bytes_ -= bs < pinned_bytes_ ? bs : pinned_bytes_;
      STELLAR_TRACE_ONLY(obs::count("pvdma/blocks_unpinned");
                         obs::gauge_add("pvdma/pinned_bytes",
                                        -static_cast<std::int64_t>(bs));)
    }
    // else: other users keep the block alive — including any stale device-
    // register sub-mappings it may contain (Figure 5d).
  }
}

std::uint64_t Pvdma::release_all() {
  const std::uint64_t bs = config_.block_size;
  std::vector<Gpa> blocks;
  blocks.reserve(cache_.block_count());
  cache_.for_each_block(
      [&blocks](Gpa start, std::uint32_t) { blocks.push_back(start); });
  std::uint64_t released = 0;
  for (Gpa block : blocks) {
    unregister_block(block);
    cache_.erase(block);
    iommu_->note_unpinned(bs, tenant_);
    pinned_bytes_ -= bs < pinned_bytes_ ? bs : pinned_bytes_;
    released += bs;
  }
  STELLAR_TRACE_ONLY(if (released > 0) {
    obs::gauge_add("pvdma/pinned_bytes", -static_cast<std::int64_t>(released));
  })
  return released;
}

Status Pvdma::register_block(Gpa block_start) {
  const std::uint64_t bs = config_.block_size;
  const std::uint64_t pages = bs / kPage4K;

  // Walk the block's 4 KiB pages through the EPT and coalesce contiguous
  // HPA runs into IOMMU ranges. Unmapped guest pages are simply skipped
  // (they fault if the device ever touches them).
  std::uint64_t run_start_gpa = 0;
  std::uint64_t run_start_hpa = 0;
  std::uint64_t run_len = 0;

  auto flush_run = [&]() -> Status {
    if (run_len == 0) return Status::ok();
    Status s = iommu_->map(IoVa{iova_base_ + run_start_gpa},
                           Hpa{run_start_hpa}, run_len);
    run_len = 0;
    return s;
  };

  for (std::uint64_t i = 0; i < pages; ++i) {
    const Gpa page = block_start + i * kPage4K;
    auto hpa = ept_->translate(page);
    if (!hpa.is_ok()) {
      Status s = flush_run();
      if (!s.is_ok()) return s;
      continue;
    }
    if (run_len > 0 && run_start_hpa + run_len == hpa.value().value() ) {
      run_len += kPage4K;
      continue;
    }
    Status s = flush_run();
    if (!s.is_ok()) return s;
    run_start_gpa = page.value();
    run_start_hpa = hpa.value().value();
    run_len = kPage4K;
  }
  return flush_run();
}

void Pvdma::unregister_block(Gpa block_start) {
  const std::size_t removed =
      iommu_->unmap_range(IoVa{iova_base_ + block_start.value()},
                          config_.block_size);
  if (removed == 0) {
    // The block was resident in the Map Cache yet carried no IOMMU ranges:
    // someone already tore the window down behind our back.
    ++double_unpins_;
    LOG_WARN("Pvdma::unregister_block: IOMMU window for block GPA 0x%llx "
             "was already empty (double unpin?)",
             static_cast<unsigned long long>(block_start.value()));
  }
}

void Pvdma::save_state(SnapshotWriter& w) const {
  cache_.save_state(w);
  w.u64(pinned_bytes_);
  w.u64(blocks_registered_);
  w.u64(stale_accesses_);
  w.u64(double_unpins_);
  w.u64(pressured_rejections_);
  w.b(pressured_);
  w.u64(budget_rejections_);
  w.u64(capacity_rejections_);
  w.u64(pin_budget_bytes_);
  w.u32(tenant_);
}

Status Pvdma::restore_state(SnapshotReader& r, bool adopt_pins) {
  if (adopt_pins) {
    // Hot upgrade: the IOMMU (hardware) kept every pin across the backend
    // swap — adopt the serialized pin table as-is.
    if (Status s = cache_.restore_state(r); !s.is_ok()) return s;
    pinned_bytes_ = r.u64();
  } else {
    // Migration: consume the source's pin table but start empty — nothing
    // is pinned on this host yet. First DMA touches re-pin on demand.
    MapCache discarded(config_.block_size);
    if (Status s = discarded.restore_state(r); !s.is_ok()) return s;
    (void)r.u64();  // source pinned_bytes
    cache_ = MapCache(config_.block_size);
    pinned_bytes_ = 0;
  }
  blocks_registered_ = r.u64();
  stale_accesses_ = r.u64();
  double_unpins_ = r.u64();
  pressured_rejections_ = r.u64();
  pressured_ = r.b();
  budget_rejections_ = r.u64();
  capacity_rejections_ = r.u64();
  pin_budget_bytes_ = r.u64();
  tenant_ = r.u32();
  return Status::ok();
}

Pvdma::DeviceAccess Pvdma::translate_for_device(Gpa gpa) {
  DeviceAccess out;
  auto tr = iommu_->translate(IoVa{iova_base_ + gpa.value()}, tenant_);
  if (!tr.is_ok()) {
    out.kind = AccessKind::kFault;
    return out;
  }
  out.hpa = tr.value().hpa;

  // Cross-check against the EPT's *current* view. A divergence means the
  // IOMMU holds a stale mapping — the Figure-5 bug. In the production
  // incident the stale target was the RNIC doorbell register.
  auto current = ept_->translate(gpa);
  const bool stale = !current.is_ok() || current.value() != out.hpa;
  if (stale) {
    ++stale_accesses_;
    out.kind = AccessKind::kStaleDeviceMapping;
    (void)kBarWindowBase;  // classification detail: stale targets are
                           // usually BAR space, but any divergence is fatal
    return out;
  }
  out.kind = AccessKind::kRam;
  return out;
}

}  // namespace stellar
