#include "virt/hypervisor.h"

#include <algorithm>

namespace stellar {

StatusOr<Hypervisor::BootReport> Hypervisor::boot_container(
    RundContainer& container) {
  if (state_.count(container.id()) != 0) {
    return already_exists("Hypervisor: container already booted");
  }
  auto backing = pcie_->main_memory().allocate(container.memory_bytes(),
                                               kPage2M);
  if (!backing.is_ok()) return backing.status();

  auto vm = std::make_unique<VmState>();
  vm->backing_base = backing.value();
  vm->backing_len = container.memory_bytes();
  Status s = vm->ept.map(Gpa{0}, vm->backing_base, vm->backing_len);
  if (!s.is_ok()) {
    (void)pcie_->main_memory().release(backing.value());
    return s;
  }
  vm->pvdma = std::make_unique<Pvdma>(pcie_->iommu(), vm->ept);

  BootReport report;
  const double gib =
      static_cast<double>(container.memory_bytes()) / (1024.0 * 1024 * 1024);
  report.hypervisor_time =
      config_.microvm_base_boot +
      SimTime::picos(static_cast<std::int64_t>(
          gib * static_cast<double>(config_.per_gib_overhead.ps())));

  if (!config_.use_pvdma) {
    // VFIO-era behaviour: every guest page is IOMMU-mapped and pinned up
    // front, because any of it may become an RDMA buffer or BAR target.
    report.pin_time = pcie_->iommu().pin_cost(container.memory_bytes());
    Status pin = pcie_->iommu().map(IoVa{0}, vm->backing_base,
                                    vm->backing_len);
    if (!pin.is_ok()) {
      (void)pcie_->main_memory().release(backing.value());
      return pin;
    }
    pcie_->iommu().note_pinned(vm->backing_len);
  }

  report.total = report.hypervisor_time + report.pin_time;
  state_.emplace(container.id(), std::move(vm));
  container.set_booted(true);
  return report;
}

Status Hypervisor::shutdown_container(RundContainer& container) {
  auto it = state_.find(container.id());
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  VmState& vm = *it->second;
  if (!config_.use_pvdma) {
    pcie_->iommu().unmap_range(IoVa{0}, vm.backing_len);
    pcie_->iommu().note_unpinned(vm.backing_len);
  }
  (void)pcie_->main_memory().release(vm.backing_base);
  state_.erase(it);
  container.set_booted(false);
  return Status::ok();
}

void Hypervisor::prepare_dma_with_retry(Simulator& sim, VmId vm, Gpa gpa,
                                        std::uint64_t len, PinCallback done) {
  retry_pin(sim, vm, gpa, len, /*attempt=*/1,
            config_.pin_retry.initial_backoff, std::move(done));
}

void Hypervisor::retry_pin(Simulator& sim, VmId vm, Gpa gpa,
                           std::uint64_t len, std::uint32_t attempt,
                           SimTime backoff, PinCallback done) {
  auto it = state_.find(vm);
  if (it == state_.end()) {
    if (done) done(not_found("Hypervisor: container not booted"));
    return;
  }
  auto result = it->second->pvdma->prepare_dma(gpa, len);
  // Only resource pressure is transient; everything else (and the attempt
  // budget running out) is reported to the caller as-is.
  if (result.is_ok() ||
      result.status().code() != StatusCode::kResourceExhausted ||
      attempt >= config_.pin_retry.max_attempts) {
    if (done) done(std::move(result));
    return;
  }
  ++pin_retries_;
  const SimTime next_backoff =
      std::min(backoff + backoff, config_.pin_retry.max_backoff);
  sim.schedule_after(backoff, [this, &sim, vm, gpa, len, attempt, next_backoff,
                               done = std::move(done)]() mutable {
    retry_pin(sim, vm, gpa, len, attempt + 1, next_backoff, std::move(done));
  });
}

StatusOr<Hypervisor::VdbMapping> Hypervisor::map_vdb(RundContainer& container,
                                                     Hpa doorbell_hpa) {
  auto it = state_.find(container.id());
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  VmState& vm = *it->second;

  VdbMapping mapping;
  if (config_.vdb_in_shm) {
    auto shm = vm.shm.map(doorbell_hpa, kPage4K);
    if (!shm.is_ok()) return shm.status();
    mapping.in_shm = true;
    mapping.shm = shm.value();
    return mapping;
  }

  // Pre-fix layout: carve a 4 KiB hole out of guest RAM and EPT-map it to
  // the doorbell register. This is what can later be swallowed by a 2 MiB
  // PVDMA block (Figure 5, step 3).
  auto gpa = container.alloc(kPage4K, kPage4K);
  if (!gpa.is_ok()) return gpa.status();
  Status s = vm.ept.map_register_hole(gpa.value(), doorbell_hpa, kPage4K);
  if (!s.is_ok()) return s;
  mapping.in_shm = false;
  mapping.gpa = gpa.value();
  return mapping;
}

Status Hypervisor::unmap_vdb(RundContainer& container,
                             const VdbMapping& mapping) {
  auto it = state_.find(container.id());
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  VmState& vm = *it->second;
  if (mapping.in_shm) return vm.shm.unmap(mapping.shm);
  // Figure 5 step 4: the register mapping is torn down and the GPA goes
  // back to plain RAM, free for the guest OS to reuse.
  return vm.ept.restore_ram(mapping.gpa,
                            vm.backing_base + mapping.gpa.value(), kPage4K);
}

}  // namespace stellar
