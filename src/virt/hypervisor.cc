#include "virt/hypervisor.h"

#include <algorithm>

#include "common/rng.h"

namespace stellar {

namespace {
constexpr std::uint32_t kVmTag = snapshot_tag('H', 'V', 'V', 'M');
}  // namespace

StatusOr<Hypervisor::BootReport> Hypervisor::boot_container(
    RundContainer& container) {
  if (state_.count(container.id()) != 0) {
    return already_exists("Hypervisor: container already booted");
  }
  auto backing = pcie_->main_memory().allocate(container.memory_bytes(),
                                               kPage2M);
  if (!backing.is_ok()) return backing.status();

  auto vm = std::make_unique<VmState>();
  vm->backing_base = backing.value();
  vm->backing_len = container.memory_bytes();
  Status s = vm->ept.map(Gpa{0}, vm->backing_base, vm->backing_len);
  if (!s.is_ok()) {
    (void)pcie_->main_memory().release(backing.value());
    return s;
  }
  // The VM's backing base is globally unique in HPA space, so it doubles as
  // a collision-free IoVa window base for this guest's pins.
  vm->pvdma = std::make_unique<Pvdma>(pcie_->iommu(), vm->ept, PvdmaConfig{},
                                      vm->backing_base.value());
  vm->pvdma->set_tenant(container.id());

  BootReport report;
  const double gib =
      static_cast<double>(container.memory_bytes()) / (1024.0 * 1024 * 1024);
  report.hypervisor_time =
      config_.microvm_base_boot +
      SimTime::picos(static_cast<std::int64_t>(
          gib * static_cast<double>(config_.per_gib_overhead.ps())));

  if (!config_.use_pvdma) {
    // VFIO-era behaviour: every guest page is IOMMU-mapped and pinned up
    // front, because any of it may become an RDMA buffer or BAR target.
    report.pin_time = pcie_->iommu().pin_cost(container.memory_bytes());
    Status pin = pcie_->iommu().map(IoVa{vm->backing_base.value()},
                                    vm->backing_base, vm->backing_len);
    if (!pin.is_ok()) {
      (void)pcie_->main_memory().release(backing.value());
      return pin;
    }
    pcie_->iommu().note_pinned(vm->backing_len, container.id());
  }

  report.total = report.hypervisor_time + report.pin_time;
  state_.emplace(container.id(), std::move(vm));
  container.set_booted(true);
  return report;
}

Status Hypervisor::shutdown_container(RundContainer& container) {
  auto it = state_.find(container.id());
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  VmState& vm = *it->second;
  if (config_.use_pvdma) {
    // Reclaim every demand-pinned block, including raw prepare_dma pins no
    // MR teardown covers — a dead tenant must not hold host pin capacity.
    (void)vm.pvdma->release_all();
  } else {
    pcie_->iommu().unmap_range(IoVa{vm.backing_base.value()}, vm.backing_len);
    pcie_->iommu().note_unpinned(vm.backing_len, container.id());
  }
  (void)pcie_->main_memory().release(vm.backing_base);
  state_.erase(it);
  container.set_booted(false);
  return Status::ok();
}

void Hypervisor::prepare_dma_with_retry(Simulator& sim, VmId vm, Gpa gpa,
                                        std::uint64_t len, PinCallback done) {
  retry_pin(sim, vm, gpa, len, /*attempt=*/1,
            config_.pin_retry.initial_backoff, std::move(done));
}

void Hypervisor::retry_pin(Simulator& sim, VmId vm, Gpa gpa,
                           std::uint64_t len, std::uint32_t attempt,
                           SimTime backoff, PinCallback done) {
  auto it = state_.find(vm);
  if (it == state_.end()) {
    if (done) done(not_found("Hypervisor: container not booted"));
    return;
  }
  auto result = it->second->pvdma->prepare_dma(gpa, len);
  // Only resource pressure is transient; everything else (and the attempt
  // budget running out) is reported to the caller as-is.
  if (result.is_ok() ||
      result.status().code() != StatusCode::kResourceExhausted ||
      attempt >= config_.pin_retry.max_attempts) {
    if (done) done(std::move(result));
    return;
  }
  ++pin_retries_;
  ++pin_retries_by_vm_[vm];
  const SimTime next_backoff =
      std::min(backoff + backoff, config_.pin_retry.max_backoff);
  // Jitter the actual sleep so guests that hit the same pressure window
  // don't retry in lock-step and stampede the pin path when it lifts.
  const SimTime delay = jittered_delay(vm, gpa, attempt, backoff);
  sim.schedule_after(delay, [this, &sim, vm, gpa, len, attempt, next_backoff,
                             done = std::move(done)]() mutable {
    retry_pin(sim, vm, gpa, len, attempt + 1, next_backoff, std::move(done));
  });
}

SimTime Hypervisor::jittered_delay(VmId vm, Gpa gpa, std::uint32_t attempt,
                                   SimTime backoff) const {
  const double jitter = config_.pin_retry.jitter;
  if (jitter <= 0.0) return backoff;
  // Stateless draw: a hash of (seed, vm, gpa, attempt) is deterministic
  // across runs yet decorrelated across guests and attempts.
  const std::uint64_t h = hash_combine(
      hash_combine(config_.pin_retry.jitter_seed, vm),
      hash_combine(gpa.value(), attempt));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  const double scale = 1.0 - jitter * u;  // (1 - jitter, 1]
  SimTime delay = SimTime::picos(static_cast<std::int64_t>(
      static_cast<double>(backoff.ps()) * scale));
  if (delay < SimTime::picos(1)) delay = SimTime::picos(1);
  return delay;
}

StatusOr<Hypervisor::VdbMapping> Hypervisor::map_vdb(RundContainer& container,
                                                     Hpa doorbell_hpa) {
  auto it = state_.find(container.id());
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  VmState& vm = *it->second;

  VdbMapping mapping;
  if (config_.vdb_in_shm) {
    auto shm = vm.shm.map(doorbell_hpa, kPage4K);
    if (!shm.is_ok()) return shm.status();
    mapping.in_shm = true;
    mapping.shm = shm.value();
    return mapping;
  }

  // Pre-fix layout: carve a 4 KiB hole out of guest RAM and EPT-map it to
  // the doorbell register. This is what can later be swallowed by a 2 MiB
  // PVDMA block (Figure 5, step 3).
  auto gpa = container.alloc(kPage4K, kPage4K);
  if (!gpa.is_ok()) return gpa.status();
  Status s = vm.ept.map_register_hole(gpa.value(), doorbell_hpa, kPage4K);
  if (!s.is_ok()) return s;
  mapping.in_shm = false;
  mapping.gpa = gpa.value();
  return mapping;
}

std::vector<VmId> Hypervisor::booted_vms() const {
  std::vector<VmId> vms;
  vms.reserve(state_.size());
  for (const auto& [id, st] : state_) vms.push_back(id);
  std::sort(vms.begin(), vms.end());
  return vms;
}

void Hypervisor::serialize_vm_state(const VmState& vm,
                                    SnapshotWriter& w) const {
  w.u64(vm.backing_base.value());
  w.u64(vm.backing_len);
  vm.ept.save_state(w);
  vm.pvdma->save_state(w);
  vm.shm.save_state(w);
  vm.control.save_state(w);
}

StatusOr<std::string> Hypervisor::serialize_vm(VmId vm) const {
  auto it = state_.find(vm);
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  SnapshotWriter w;
  w.section(kVmTag);
  w.u32(vm);
  serialize_vm_state(*it->second, w);
  return w.take();
}

Status Hypervisor::restore_vm_hot(VmId vm, const std::string& bytes) {
  auto it = state_.find(vm);
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  VmState& st = *it->second;
  SnapshotReader r(bytes);
  if (Status s = r.expect_section(kVmTag); !s.is_ok()) return s;
  const VmId id = r.u32();
  if (id != vm) {
    return invalid_argument("Hypervisor::restore_vm_hot: snapshot is for VM " +
                            std::to_string(id));
  }
  const Hpa old_base{r.u64()};
  const std::uint64_t old_len = r.u64();
  if (old_base.value() != st.backing_base.value() ||
      old_len != st.backing_len) {
    return invalid_argument(
        "Hypervisor::restore_vm_hot: backing window changed — hot restore "
        "requires the guest to keep its physical frames");
  }
  // Same host, same frames: delta 0, register windows kept, pins adopted.
  st.ept.restore_state(r, /*delta=*/0, old_base, old_len,
                       /*include_registers=*/true);
  if (Status s = st.pvdma->restore_state(r, /*adopt_pins=*/true); !s.is_ok()) {
    return s;
  }
  st.shm.restore_state(r);
  st.control.restore_state(r);
  return r.finish();
}

StatusOr<Hypervisor::HotUpgradeReport> Hypervisor::hot_upgrade() {
  HotUpgradeReport report;
  for (VmId vm : booted_vms()) {
    VmState& st = *state_.at(vm);
    st.control.quiesce();
    auto snap = serialize_vm(vm);
    if (!snap.is_ok()) {
      st.control.resume();
      return snap.status();
    }
    // The new backend process reconstructs its view purely from the
    // snapshot — restoring in place models "attach to existing guest and
    // hardware state".
    if (Status s = restore_vm_hot(vm, snap.value()); !s.is_ok()) {
      st.control.resume();
      return s;
    }
    auto again = serialize_vm(vm);
    if (!again.is_ok()) {
      st.control.resume();
      return again.status();
    }
    if (again.value() != snap.value()) report.roundtrip_identical = false;
    report.snapshot_bytes += snap.value().size();
    ++report.vms;
    report.stalled_commands += st.control.stalled_commands();
    st.control.resume();
  }
  return report;
}

StatusOr<Hypervisor::BootReport> Hypervisor::restore_container(
    RundContainer& container, const std::string& bytes) {
  if (state_.count(container.id()) != 0) {
    return already_exists("Hypervisor: container already booted");
  }
  SnapshotReader r(bytes);
  if (Status s = r.expect_section(kVmTag); !s.is_ok()) return s;
  const VmId id = r.u32();
  if (id != container.id()) {
    return invalid_argument(
        "Hypervisor::restore_container: snapshot is for VM " +
        std::to_string(id) + ", container is " +
        std::to_string(container.id()));
  }
  const Hpa old_base{r.u64()};
  const std::uint64_t old_len = r.u64();
  if (old_len != container.memory_bytes()) {
    return invalid_argument(
        "Hypervisor::restore_container: memory size mismatch");
  }

  auto backing = pcie_->main_memory().allocate(old_len, kPage2M);
  if (!backing.is_ok()) return backing.status();

  auto vm = std::make_unique<VmState>();
  vm->backing_base = backing.value();
  vm->backing_len = old_len;
  const std::int64_t delta =
      static_cast<std::int64_t>(vm->backing_base.value()) -
      static_cast<std::int64_t>(old_base.value());
  // Rebase guest RAM onto this host's backing window; drop the source
  // host's device-register windows (re-created with the devices).
  vm->ept.restore_state(r, delta, old_base, old_len,
                        /*include_registers=*/false);
  vm->pvdma = std::make_unique<Pvdma>(pcie_->iommu(), vm->ept, PvdmaConfig{},
                                      vm->backing_base.value());
  vm->pvdma->set_tenant(container.id());
  Status restored = vm->pvdma->restore_state(r, /*adopt_pins=*/false);
  if (restored.is_ok()) {
    // Source shm doorbell windows point at the source host's MMIO: consume
    // and drop; this host maps its own when devices are re-created.
    ShmRegion discarded;
    discarded.restore_state(r);
    vm->control.restore_state(r);
    restored = r.finish();
  }
  if (!restored.is_ok()) {
    (void)pcie_->main_memory().release(vm->backing_base);
    return restored;
  }

  BootReport report;
  const double gib =
      static_cast<double>(old_len) / (1024.0 * 1024 * 1024);
  // Resume on a pre-warmed microvm shell: the per-GiB table rebuild is
  // paid, the base boot is not (that is the point of migrating).
  report.hypervisor_time = SimTime::picos(static_cast<std::int64_t>(
      gib * static_cast<double>(config_.per_gib_overhead.ps())));
  if (!config_.use_pvdma) {
    report.pin_time = pcie_->iommu().pin_cost(old_len);
    Status pin = pcie_->iommu().map(IoVa{vm->backing_base.value()},
                                    vm->backing_base, vm->backing_len);
    if (!pin.is_ok()) {
      (void)pcie_->main_memory().release(vm->backing_base);
      return pin;
    }
    pcie_->iommu().note_pinned(vm->backing_len, container.id());
  }
  report.total = report.hypervisor_time + report.pin_time;
  state_.emplace(container.id(), std::move(vm));
  container.set_booted(true);
  return report;
}

Status Hypervisor::unmap_vdb(RundContainer& container,
                             const VdbMapping& mapping) {
  auto it = state_.find(container.id());
  if (it == state_.end()) return not_found("Hypervisor: container not booted");
  VmState& vm = *it->second;
  if (mapping.in_shm) return vm.shm.unmap(mapping.shm);
  // Figure 5 step 4: the register mapping is torn down and the GPA goes
  // back to plain RAM, free for the guest OS to reuse.
  return vm.ept.restore_ram(mapping.gpa,
                            vm.backing_base + mapping.gpa.value(), kPage4K);
}

}  // namespace stellar
