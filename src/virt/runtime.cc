#include "virt/runtime.h"

namespace stellar {

const char* virt_mode_name(VirtMode mode) {
  switch (mode) {
    case VirtMode::kSriovVfio:
      return "SR-IOV/VFIO";
    case VirtMode::kHyvMasq:
      return "HyV/MasQ";
    case VirtMode::kVStellar:
      return "vStellar";
    case VirtMode::kBareMetal:
      return "bare-metal";
  }
  return "?";
}

StartupBreakdown container_startup_cost(VirtMode mode,
                                        std::uint64_t memory_bytes,
                                        const RnicConfig& rnic,
                                        const IommuConfig& iommu,
                                        const HypervisorConfig& hyp) {
  StartupBreakdown out;
  const double gib =
      static_cast<double>(memory_bytes) / (1024.0 * 1024.0 * 1024.0);
  const SimTime per_gib = SimTime::picos(static_cast<std::int64_t>(
      gib * static_cast<double>(hyp.per_gib_overhead.ps())));

  auto pin_all = [&]() {
    const std::uint64_t pages = (memory_bytes + kPage4K - 1) / kPage4K;
    return iommu.pin_call_overhead +
           iommu.pin_per_page * static_cast<std::int64_t>(pages);
  };

  switch (mode) {
    case VirtMode::kSriovVfio:
      // VFs exist only if pre-provisioned at host boot; per-container cost
      // still includes attaching via VFIO — modelled as one VF create slot.
      out.device_provision = rnic.vf_create_time;
      out.memory_pin = pin_all();
      out.hypervisor = hyp.microvm_base_boot + per_gib;
      break;
    case VirtMode::kHyvMasq:
      out.device_provision = rnic.sf_create_time;
      out.memory_pin = pin_all();  // HyV/MasQ still pin everything (§4)
      out.hypervisor = hyp.microvm_base_boot + per_gib;
      break;
    case VirtMode::kVStellar:
      out.device_provision = rnic.sf_create_time;
      out.memory_pin = SimTime::zero();  // PVDMA pins on demand
      out.hypervisor = hyp.microvm_base_boot + per_gib;
      break;
    case VirtMode::kBareMetal:
      break;
  }
  return out;
}

}  // namespace stellar
