// RunD secure container model: a MicroVM with its own guest-physical
// address space. Only what the experiments need: memory size, a guest
// allocator (so tests can recreate the adjacent-allocation layout behind
// the Figure-5 bug), and identity bookkeeping.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "memory/address.h"
#include "rnic/verbs.h"

namespace stellar {

class RundContainer {
 public:
  RundContainer(VmId id, std::string name, std::uint64_t memory_bytes)
      : id_(id), name_(std::move(name)), memory_bytes_(memory_bytes) {}

  VmId id() const { return id_; }
  const std::string& name() const { return name_; }
  std::uint64_t memory_bytes() const { return memory_bytes_; }

  /// Bump allocator over guest-physical RAM. Deliberately simple: guests
  /// allocating adjacent structures is exactly what triggers the PVDMA
  /// conflict, so tests want deterministic adjacency.
  StatusOr<Gpa> alloc(std::uint64_t len, std::uint64_t align = kPage4K) {
    const std::uint64_t aligned = (next_ + align - 1) & ~(align - 1);
    if (aligned + len > memory_bytes_) {
      return resource_exhausted("RundContainer: guest memory exhausted");
    }
    next_ = aligned + len;
    return Gpa{aligned};
  }

  /// Reset the allocator cursor (models the guest OS reusing freed memory).
  void reuse_from(Gpa addr) { next_ = addr.value(); }

  /// Allocator cursor, exposed so live migration can carry the guest's
  /// memory layout onto the destination container.
  std::uint64_t alloc_cursor() const { return next_; }
  void set_alloc_cursor(std::uint64_t v) { next_ = v; }

  bool booted() const { return booted_; }
  void set_booted(bool value) { booted_ = value; }

 private:
  VmId id_;
  std::string name_;
  std::uint64_t memory_bytes_;
  std::uint64_t next_ = kPage2M;  // skip guest page zero region
  bool booted_ = false;
};

}  // namespace stellar
