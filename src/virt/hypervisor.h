// Hypervisor model: boots RunD containers, owns per-container EPT and
// PVDMA state, and maps virtual doorbells either into guest RAM (the
// pre-fix layout that can collide with PVDMA blocks) or into the virtio
// shm I/O space (the production fix).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include <functional>

#include "common/status.h"
#include "common/units.h"
#include "memory/ept.h"
#include "pcie/host_pcie.h"
#include "sim/simulator.h"
#include "virt/container.h"
#include "virt/pvdma.h"
#include "virt/virtio.h"

namespace stellar {

/// Backoff schedule for pin attempts hitting transient resource pressure
/// (kResourceExhausted): retry after initial_backoff, doubling up to
/// max_backoff, at most max_attempts tries total.
struct PinRetryPolicy {
  std::uint32_t max_attempts = 8;
  SimTime initial_backoff = SimTime::micros(50);
  SimTime max_backoff = SimTime::millis(5);
};

struct HypervisorConfig {
  bool use_pvdma = true;
  bool vdb_in_shm = true;   // Figure-5 fix: doorbells live in shm I/O space
  SimTime microvm_base_boot = SimTime::seconds(8.0);
  /// Per-GiB hypervisor overhead independent of pinning (page-table setup,
  /// balloon negotiation, ...): the +11 s between 160 GB and 1.6 TB pods.
  SimTime per_gib_overhead = SimTime::millis(8);
  PinRetryPolicy pin_retry;
};

class Hypervisor {
 public:
  explicit Hypervisor(HostPcie& pcie, HypervisorConfig config = {})
      : pcie_(&pcie), config_(config) {}

  struct BootReport {
    SimTime total;
    SimTime pin_time;         // zero under PVDMA
    SimTime hypervisor_time;  // base + per-GiB overhead
  };

  /// Allocate backing memory, build the EPT, and (without PVDMA) pin the
  /// whole guest in the IOMMU — the Figure-6 cost model.
  StatusOr<BootReport> boot_container(RundContainer& container);

  Status shutdown_container(RundContainer& container);

  // -- Per-container state ------------------------------------------------------

  Ept& ept(VmId vm) { return state_.at(vm)->ept; }
  Pvdma& pvdma(VmId vm) { return *state_.at(vm)->pvdma; }
  ShmRegion& shm(VmId vm) { return state_.at(vm)->shm; }
  VirtioControlPath& control_path(VmId vm) { return state_.at(vm)->control; }

  /// Map a device doorbell page for the guest. Returns the guest-visible
  /// address: a GPA (RAM hole) without the shm fix, a ShmAddr with it.
  struct VdbMapping {
    bool in_shm = false;
    Gpa gpa;        // valid when !in_shm
    ShmAddr shm;    // valid when in_shm
  };
  StatusOr<VdbMapping> map_vdb(RundContainer& container, Hpa doorbell_hpa);
  Status unmap_vdb(RundContainer& container, const VdbMapping& mapping);

  /// prepare_dma with retry-on-pressure: attempts the pin immediately; on
  /// kResourceExhausted schedules retries in simulated time per the
  /// configured PinRetryPolicy (capped exponential backoff). `done` fires
  /// exactly once — with the successful MapResult, the terminal
  /// kResourceExhausted after the attempt budget, or any other error
  /// immediately (only pressure is considered transient).
  using PinCallback = std::function<void(StatusOr<Pvdma::MapResult>)>;
  void prepare_dma_with_retry(Simulator& sim, VmId vm, Gpa gpa,
                              std::uint64_t len, PinCallback done);
  /// Pin attempts that hit pressure and were re-scheduled.
  std::uint64_t pin_retries() const { return pin_retries_; }

  const HypervisorConfig& config() const { return config_; }

 private:
  struct VmState {
    Ept ept;
    std::unique_ptr<Pvdma> pvdma;
    ShmRegion shm;
    VirtioControlPath control;
    Hpa backing_base;
    std::uint64_t backing_len = 0;
  };

  void retry_pin(Simulator& sim, VmId vm, Gpa gpa, std::uint64_t len,
                 std::uint32_t attempt, SimTime backoff, PinCallback done);

  HostPcie* pcie_;
  HypervisorConfig config_;
  std::unordered_map<VmId, std::unique_ptr<VmState>> state_;
  std::uint64_t pin_retries_ = 0;
};

}  // namespace stellar
