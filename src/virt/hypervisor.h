// Hypervisor model: boots RunD containers, owns per-container EPT and
// PVDMA state, and maps virtual doorbells either into guest RAM (the
// pre-fix layout that can collide with PVDMA blocks) or into the virtio
// shm I/O space (the production fix).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include <functional>

#include "common/snapshot.h"
#include "common/status.h"
#include "common/units.h"
#include "memory/ept.h"
#include "pcie/host_pcie.h"
#include "sim/simulator.h"
#include "virt/container.h"
#include "virt/pvdma.h"
#include "virt/virtio.h"

namespace stellar {

/// Backoff schedule for pin attempts hitting transient resource pressure
/// (kResourceExhausted): retry after initial_backoff, doubling up to
/// max_backoff, at most max_attempts tries total.
///
/// Each scheduled delay is *jittered*: a deterministic hash of
/// (jitter_seed, vm, gpa, attempt) scales the exponential envelope into
/// ((1 - jitter) * backoff, backoff]. Without this, every guest that hit
/// the same pressure window retries on the same synchronized schedule and
/// stampedes the IOMMU pin path the instant pressure lifts. jitter = 0
/// restores the old synchronized behaviour.
struct PinRetryPolicy {
  std::uint32_t max_attempts = 8;
  SimTime initial_backoff = SimTime::micros(50);
  SimTime max_backoff = SimTime::millis(5);
  double jitter = 0.5;
  std::uint64_t jitter_seed = 0x57E11A5ull;
};

struct HypervisorConfig {
  bool use_pvdma = true;
  bool vdb_in_shm = true;   // Figure-5 fix: doorbells live in shm I/O space
  SimTime microvm_base_boot = SimTime::seconds(8.0);
  /// Per-GiB hypervisor overhead independent of pinning (page-table setup,
  /// balloon negotiation, ...): the +11 s between 160 GB and 1.6 TB pods.
  SimTime per_gib_overhead = SimTime::millis(8);
  PinRetryPolicy pin_retry;
};

class Hypervisor {
 public:
  explicit Hypervisor(HostPcie& pcie, HypervisorConfig config = {})
      : pcie_(&pcie), config_(config) {}

  struct BootReport {
    SimTime total;
    SimTime pin_time;         // zero under PVDMA
    SimTime hypervisor_time;  // base + per-GiB overhead
  };

  /// Allocate backing memory, build the EPT, and (without PVDMA) pin the
  /// whole guest in the IOMMU — the Figure-6 cost model.
  StatusOr<BootReport> boot_container(RundContainer& container);

  Status shutdown_container(RundContainer& container);

  // -- Per-container state ------------------------------------------------------

  Ept& ept(VmId vm) { return state_.at(vm)->ept; }
  Pvdma& pvdma(VmId vm) { return *state_.at(vm)->pvdma; }
  ShmRegion& shm(VmId vm) { return state_.at(vm)->shm; }
  VirtioControlPath& control_path(VmId vm) { return state_.at(vm)->control; }

  /// Map a device doorbell page for the guest. Returns the guest-visible
  /// address: a GPA (RAM hole) without the shm fix, a ShmAddr with it.
  struct VdbMapping {
    bool in_shm = false;
    Gpa gpa;        // valid when !in_shm
    ShmAddr shm;    // valid when in_shm
  };
  StatusOr<VdbMapping> map_vdb(RundContainer& container, Hpa doorbell_hpa);
  Status unmap_vdb(RundContainer& container, const VdbMapping& mapping);

  /// prepare_dma with retry-on-pressure: attempts the pin immediately; on
  /// kResourceExhausted schedules retries in simulated time per the
  /// configured PinRetryPolicy (capped exponential backoff). `done` fires
  /// exactly once — with the successful MapResult, the terminal
  /// kResourceExhausted after the attempt budget, or any other error
  /// immediately (only pressure is considered transient).
  using PinCallback = std::function<void(StatusOr<Pvdma::MapResult>)>;
  void prepare_dma_with_retry(Simulator& sim, VmId vm, Gpa gpa,
                              std::uint64_t len, PinCallback done);
  /// Pin attempts that hit pressure and were re-scheduled.
  std::uint64_t pin_retries() const { return pin_retries_; }
  /// Same, attributed to the requesting tenant — lets attack telemetry
  /// separate the attacker's own retry storm from victim collateral.
  std::uint64_t pin_retries(VmId vm) const {
    auto it = pin_retries_by_vm_.find(vm);
    return it == pin_retries_by_vm_.end() ? 0 : it->second;
  }
  const std::map<VmId, std::uint64_t>& pin_retries_by_vm() const {
    return pin_retries_by_vm_;
  }

  const HypervisorConfig& config() const { return config_; }

  bool booted(VmId vm) const { return state_.count(vm) != 0; }
  /// Booted VM ids in sorted order (deterministic iteration).
  std::vector<VmId> booted_vms() const;

  // -- Control-plane robustness -------------------------------------------------

  /// Serialize the full guest-visible hypervisor state of one VM (EPT,
  /// PVDMA pin table + Map Cache, shm windows, virtio counters) into a
  /// deterministic byte-stable snapshot.
  StatusOr<std::string> serialize_vm(VmId vm) const;

  /// Restore a serialize_vm() snapshot onto the *same* VM in place — the
  /// backend half of a hot upgrade. The IOMMU, backing memory, and every
  /// external pointer into the VmState stay valid; pins are adopted.
  Status restore_vm_hot(VmId vm, const std::string& bytes);

  struct HotUpgradeReport {
    std::size_t vms = 0;
    std::uint64_t snapshot_bytes = 0;
    /// Every VM's state re-serialized byte-identically after the restore.
    bool roundtrip_identical = true;
    /// Control commands that stalled in parked virtqueues mid-upgrade.
    std::uint64_t stalled_commands = 0;
  };

  /// Backend hot-upgrade: quiesce every VM's virtio control queues, drop
  /// and reconstruct the backend's per-VM state from snapshots, verify the
  /// round trip is byte-identical, and resume. Guest pages stay pinned in
  /// the IOMMU throughout (hardware state survives the process swap).
  StatusOr<HotUpgradeReport> hot_upgrade();

  /// Live-migration destination: boot `container` directly from a source
  /// snapshot. Fresh backing memory is allocated and the EPT rebased onto
  /// it; nothing is pinned yet — PVDMA re-pins dirty blocks on demand (the
  /// Map Cache cold path). Device-register windows and shm doorbells are
  /// NOT restored: the caller re-creates virtual devices on this host.
  StatusOr<BootReport> restore_container(RundContainer& container,
                                         const std::string& bytes);

  Hpa backing_base(VmId vm) const { return state_.at(vm)->backing_base; }
  std::uint64_t backing_len(VmId vm) const {
    return state_.at(vm)->backing_len;
  }

 private:
  struct VmState {
    Ept ept;
    std::unique_ptr<Pvdma> pvdma;
    ShmRegion shm;
    VirtioControlPath control;
    Hpa backing_base;
    std::uint64_t backing_len = 0;
  };

  void retry_pin(Simulator& sim, VmId vm, Gpa gpa, std::uint64_t len,
                 std::uint32_t attempt, SimTime backoff, PinCallback done);
  /// Jittered retry delay within the deterministic exponential envelope.
  SimTime jittered_delay(VmId vm, Gpa gpa, std::uint32_t attempt,
                         SimTime backoff) const;
  void serialize_vm_state(const VmState& vm, SnapshotWriter& w) const;

  HostPcie* pcie_;
  HypervisorConfig config_;
  std::unordered_map<VmId, std::unique_ptr<VmState>> state_;
  std::uint64_t pin_retries_ = 0;
  std::map<VmId, std::uint64_t> pin_retries_by_vm_;
};

}  // namespace stellar
