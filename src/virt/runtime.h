// Side-by-side startup/cost models for the virtualization generations the
// paper compares. Composes the primitive costs owned by Rnic, Iommu and
// Hypervisor into one per-mode startup breakdown (Figure 6 and the §4
// provisioning claims).
#pragma once

#include <cstdint>

#include "common/units.h"
#include "rnic/device.h"
#include "rnic/gdr.h"
#include "virt/hypervisor.h"

namespace stellar {

enum class VirtMode {
  kSriovVfio,  // current production baseline: SR-IOV VF + VFIO + pin-all
  kHyvMasq,    // paravirt control path, but pin-all and RC-routed GDR
  kVStellar,   // Stellar: PVDMA + eMTT + SF-style virtual devices
  kBareMetal,  // no virtualization (reference)
};

const char* virt_mode_name(VirtMode mode);

/// Which GDR data path a virtualization mode ends up on.
inline GdrMode gdr_mode_for(VirtMode mode) {
  switch (mode) {
    case VirtMode::kSriovVfio:
      return GdrMode::kAtsAtc;
    case VirtMode::kHyvMasq:
      return GdrMode::kRcRouted;
    case VirtMode::kVStellar:
    case VirtMode::kBareMetal:
      return GdrMode::kEmtt;
  }
  return GdrMode::kEmtt;
}

struct StartupBreakdown {
  SimTime device_provision;  // VF reset+create vs vStellar device create
  SimTime memory_pin;        // pin-all cost; zero under PVDMA
  SimTime hypervisor;        // MicroVM base + per-GiB overhead
  SimTime total() const { return device_provision + memory_pin + hypervisor; }
};

/// Startup cost of one container of `memory_bytes` under `mode`, given the
/// RNIC's provisioning constants and the IOMMU pin model.
StartupBreakdown container_startup_cost(VirtMode mode,
                                        std::uint64_t memory_bytes,
                                        const RnicConfig& rnic,
                                        const IommuConfig& iommu,
                                        const HypervisorConfig& hyp);

}  // namespace stellar
