#include "virt/virtio_net.h"

namespace stellar {

const char* iommu_mode_name(IommuMode mode) {
  switch (mode) {
    case IommuMode::kPassthrough:
      return "pt";
    case IommuMode::kNoPassthrough:
      return "nopt";
  }
  return "?";
}

const char* tcp_stack_name(TcpStack stack) {
  switch (stack) {
    case TcpStack::kVfioVf:
      return "VFIO/VF";
    case TcpStack::kVirtioSfVdpa:
      return "virtio/SF/vDPA";
  }
  return "?";
}

Status validate_platform(const HostPlatformConfig& config) {
  if (config.ats_requires_nopt && config.ats_enabled &&
      config.iommu_mode == IommuMode::kPassthrough) {
    return failed_precondition(
        "platform: ATS cannot be enabled with iommu=pt on this server "
        "model (3.1(4)); use iommu=nopt or disable ATS");
  }
  return Status::ok();
}

Bandwidth host_tcp_throughput(const HostPlatformConfig& config) {
  double factor = 1.0;
  if (config.iommu_mode == IommuMode::kNoPassthrough) {
    // Kernel TCP must map every skb through the IOMMU (IOVA as the DMA
    // address): measured ~40% throughput loss on the affected hosts.
    factor = 0.6;
  }
  return Bandwidth::bits_per_sec(static_cast<std::int64_t>(
      static_cast<double>(config.nic_line_rate.bps()) * factor));
}

Bandwidth tenant_tcp_throughput(TcpStack stack,
                                const HostPlatformConfig& config) {
  double factor = 1.0;
  switch (stack) {
    case TcpStack::kVfioVf:
      factor = 1.0;
      break;
    case TcpStack::kVirtioSfVdpa:
      factor = 0.95;  // the ~5% virtio/SF/VxLAN penalty (§4)
      break;
  }
  // Tenant traffic DMAs through the same platform IOMMU path as the host.
  if (config.iommu_mode == IommuMode::kNoPassthrough &&
      stack == TcpStack::kVfioVf) {
    // The VF's kernel driver inside the guest suffers the same IOVA cost.
    factor *= 0.9;
  }
  return Bandwidth::bits_per_sec(static_cast<std::int64_t>(
      static_cast<double>(config.nic_line_rate.bps()) * factor));
}

bool baseline_gdr_possible(const HostPlatformConfig& config) {
  // The VFIO/ATC baseline needs ATS for GDR address translation. Stellar's
  // eMTT does not (translated TLPs skip the IOMMU entirely).
  return config.ats_enabled;
}

}  // namespace stellar
