// Virtio plumbing used by vStellar (§4, §5):
//  * the control path — verbs control commands (QP create/modify, MR
//    registration) travel guest driver -> host driver through a virtqueue,
//    where the host applies security and virtualization policy;
//  * the shared-memory (shm) region — an I/O address space *distinct from
//    guest RAM* into which the virtual Doorbell is mapped, eliminating the
//    PVDMA 2 MiB / EPT 4 KiB overlap of Figure 5 by construction.
#pragma once

#include <cstdint>

#include "common/snapshot.h"
#include "common/status.h"
#include "common/units.h"
#include "memory/address.h"
#include "memory/iommu.h"
#include "memory/range_map.h"

namespace stellar {

/// Address in the virtio shm I/O space (never overlaps GPA RAM).
using ShmAddr = Addr<struct ShmTag>;

enum class ControlCommand : std::uint8_t {
  kCreateQp,
  kModifyQp,
  kQueryQp,
  kDestroyQp,
  kRegisterMr,
  kDeregisterMr,
  kCreatePd,
};

class VirtioControlPath {
 public:
  struct Config {
    SimTime virtqueue_rtt = SimTime::micros(8);    // kick + response
    SimTime host_processing = SimTime::micros(22); // policy + HW programming
    /// Extra latency a command eats while the backend is quiesced for a
    /// hot-upgrade: the virtqueue kick is parked until the new backend
    /// process attaches and drains the queue.
    SimTime quiesce_stall = SimTime::micros(40);
  };

  VirtioControlPath() : config_(Config{}) {}
  explicit VirtioControlPath(Config config) : config_(config) {}

  /// Latency of one control command (data-path ops never pass through
  /// here — that is the hybrid-virtualization point of vStellar).
  SimTime execute(ControlCommand cmd) {
    ++commands_;
    (void)cmd;
    SimTime latency = config_.virtqueue_rtt + config_.host_processing;
    if (quiesced_) {
      // Backend mid-upgrade: the command sits in the virtqueue until the
      // new process takes over. The guest never sees a failure — only the
      // stall (the operational win over SR-IOV teardown).
      ++stalled_commands_;
      latency = latency + config_.quiesce_stall;
    }
    return latency;
  }

  /// Hot-upgrade fencing: while quiesced, control commands stall instead of
  /// executing at full speed; the data path is untouched.
  void quiesce() { quiesced_ = true; }
  void resume() { quiesced_ = false; }
  bool quiesced() const { return quiesced_; }

  std::uint64_t commands_executed() const { return commands_; }
  std::uint64_t stalled_commands() const { return stalled_commands_; }

  /// Checkpoint/restore of the virtqueue statistics (guest-visible via
  /// driver counters, so they must survive a backend swap).
  void save_state(SnapshotWriter& w) const {
    w.u64(commands_);
    w.u64(stalled_commands_);
  }
  void restore_state(SnapshotReader& r) {
    commands_ = r.u64();
    stalled_commands_ = r.u64();
  }

 private:
  Config config_;
  std::uint64_t commands_ = 0;
  std::uint64_t stalled_commands_ = 0;
  bool quiesced_ = false;
};

/// The shm region: windows of host MMIO (e.g. RNIC doorbell pages) exposed
/// to the guest at shm offsets. Because this space is disjoint from guest
/// RAM, PVDMA block registration can never cover a doorbell.
class ShmRegion {
 public:
  explicit ShmRegion(std::uint64_t size = 1ull << 30) : size_(size) {}

  /// Expose `len` bytes of host MMIO starting at `target` to the guest.
  StatusOr<ShmAddr> map(Hpa target, std::uint64_t len) {
    const std::uint64_t at = next_;
    if (at + len > size_) return resource_exhausted("ShmRegion: full");
    Status s = table_.map(ShmAddr{at}, target, len);
    if (!s.is_ok()) return s;
    next_ = at + ((len + kPage4K - 1) & ~(kPage4K - 1));
    return ShmAddr{at};
  }

  Status unmap(ShmAddr addr) { return table_.unmap(addr); }

  StatusOr<Hpa> translate(ShmAddr addr) const { return table_.translate(addr); }

  /// GPUDirect Async support (§5): explicitly register a doorbell window in
  /// the IOMMU so a GPU can ring it via DMA. This is the deliberate,
  /// hypervisor-mediated counterpart of the accidental coverage PVDMA used
  /// to create.
  Status register_for_device_dma(ShmAddr addr, std::uint64_t len,
                                 Iommu& iommu, IoVa device_va) {
    auto hpa = table_.translate(addr);
    if (!hpa.is_ok()) return hpa.status();
    return iommu.map(device_va, hpa.value(), len);
  }

  std::size_t window_count() const { return table_.range_count(); }

  /// Checkpoint/restore. Only meaningful for a same-host backend swap: the
  /// windows point at host MMIO, so a migrated guest gets a *fresh* shm
  /// region and the destination re-maps its own doorbells.
  void save_state(SnapshotWriter& w) const {
    w.u64(size_);
    w.u64(next_);
    table_.save_state(w);
  }
  void restore_state(SnapshotReader& r) {
    size_ = r.u64();
    next_ = r.u64();
    table_.restore_state(r);
  }

 private:
  std::uint64_t size_;
  std::uint64_t next_ = 0;
  RangeMap<ShmAddr, Hpa> table_;
};

}  // namespace stellar
