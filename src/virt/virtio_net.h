// The non-RDMA half of Figure 3: virtio-net / vDPA / SF / VxLAN for TCP,
// and the Problem-4 interaction between PCIe ATS and the host IOMMU mode.
//
// Stellar routes all non-RDMA traffic through this stack. It costs ~5%
// versus the VFIO/VF path (§4) — acceptable because TCP in AI jobs is
// control-plane chatter. The model also carries the §3.1(4) operational
// constraint: on the affected server model ATS cannot be enabled with
// iommu=pt, and running nopt to keep GDR working degrades the host kernel's
// TCP stack (the kernel must then use IOVAs as DMA addresses).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"

namespace stellar {

enum class IommuMode : std::uint8_t { kPassthrough, kNoPassthrough };

const char* iommu_mode_name(IommuMode mode);

struct HostPlatformConfig {
  IommuMode iommu_mode = IommuMode::kNoPassthrough;
  bool ats_enabled = true;
  /// The affected server model of §3.1(4): ATS + iommu=pt is broken.
  bool ats_requires_nopt = true;
  Bandwidth nic_line_rate = Bandwidth::gbps(200);
};

/// Validate a platform configuration against the §3.1(4) constraint.
Status validate_platform(const HostPlatformConfig& config);

/// Host-kernel TCP throughput under the platform settings: iommu=nopt
/// forces the kernel TCP stack through IOVA-based DMA mapping — the
/// customer-visible regression that motivated splitting RDMA away from
/// the shared PCIe settings.
Bandwidth host_tcp_throughput(const HostPlatformConfig& config);

/// Tenant TCP throughput through a given virtualization stack.
enum class TcpStack : std::uint8_t {
  kVfioVf,       // VF passthrough (the baseline; needs a VF + BDF)
  kVirtioSfVdpa, // Stellar: virtio-net over an SF with vDPA + VxLAN
};

const char* tcp_stack_name(TcpStack stack);

/// §4: the virtio/SF/VxLAN path costs ~5% vs VF passthrough.
Bandwidth tenant_tcp_throughput(TcpStack stack,
                                const HostPlatformConfig& config);

/// Can the platform support GDR for secure containers? (Requires ATS under
/// the VFIO baseline; Stellar's eMTT removes the dependency entirely.)
bool baseline_gdr_possible(const HostPlatformConfig& config);

}  // namespace stellar
