// PVDMA: Para-Virtualized Direct Memory Access (§5).
//
// Instead of pinning all guest memory at boot, the hypervisor intercepts
// the first DMA touching each 2 MiB guest-physical block, registers the
// block's GPA->HPA mapping in the IOMMU (resolved page-by-page through the
// EPT) and pins it. A Map Cache makes repeat accesses free.
//
// The model faithfully includes the Figure-5 hazard: a 2 MiB block may
// cover a 4 KiB EPT *device-register* mapping (the vDB). The block then
// carries a device-register translation into the IOMMU; when the register
// mapping is later torn down while the block stays referenced, the stale
// entry persists, and a guest reusing that GPA for DMA-able memory will be
// routed into the device's BAR. translate_for_device() reports exactly this
// as a kStaleDeviceMapping access, which the conflict test/example assert.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "memory/address.h"
#include "memory/ept.h"
#include "memory/iommu.h"
#include "memory/map_cache.h"

namespace stellar {

struct PvdmaConfig {
  std::uint64_t block_size = kPage2M;
  SimTime map_cache_lookup = SimTime::nanos(80);
};

class Pvdma {
 public:
  /// `iova_base` namespaces this VM's IOMMU window: block GPA g maps at
  /// IoVa{iova_base + g}, so two guests pinning the same GPA never collide
  /// in the shared IOMMU. The hypervisor passes the VM's (globally unique)
  /// backing base; 0 keeps the legacy single-VM identity mapping.
  Pvdma(Iommu& iommu, Ept& ept, PvdmaConfig config = {},
        std::uint64_t iova_base = 0)
      : iommu_(&iommu), ept_(&ept), config_(config),
        cache_(config.block_size), iova_base_(iova_base) {}

  struct MapResult {
    SimTime cost;          // map-cache lookup + (on miss) register + pin
    bool cache_hit = false;
    std::uint64_t pinned_bytes = 0;
  };

  /// A guest device driver is about to DMA into [gpa, gpa+len): make sure
  /// every covering block is registered and pinned (Figure 4 stages 1-2).
  ///
  /// Failure taxonomy (docs/TENANCY.md):
  ///  * kFailedPrecondition — this tenant's own pin budget is exhausted.
  ///    Non-retryable: backing off cannot help; the tenant must release.
  ///  * kResourceExhausted — host-wide pin capacity (or injected pressure).
  ///    Transient: lifts when any tenant unpins, so the hypervisor retry
  ///    path backs off and retries.
  StatusOr<MapResult> prepare_dma(Gpa gpa, std::uint64_t len);

  /// Attribute this VM's IOMMU usage (pins, IOTLB entries) to `tenant`.
  void set_tenant(TenantId tenant) { tenant_ = tenant; }
  TenantId tenant() const { return tenant_; }

  /// Cap this tenant's pinned bytes (0 = unlimited). Exceeding it sheds
  /// the request with kFailedPrecondition — loud, attributable, and with
  /// zero collateral on other tenants.
  void set_pin_budget(std::uint64_t bytes) { pin_budget_bytes_ = bytes; }
  std::uint64_t pin_budget_bytes() const { return pin_budget_bytes_; }
  /// prepare_dma() calls shed because this tenant was over its own budget.
  std::uint64_t budget_rejections() const { return budget_rejections_; }
  /// prepare_dma() calls rejected because host-wide pin capacity was full.
  std::uint64_t capacity_rejections() const { return capacity_rejections_; }

  /// Control-path fault injection: while pressured, every prepare_dma()
  /// that would need to pin (or even look up) returns kResourceExhausted —
  /// the hypervisor pin path is out of pin budget / IOMMU slots. Callers
  /// are expected to back off and retry (Hypervisor::prepare_dma_with_retry).
  void set_resource_pressure(bool on) { pressured_ = on; }
  bool resource_pressure() const { return pressured_; }
  /// prepare_dma() calls rejected by injected pressure.
  std::uint64_t pressured_rejections() const { return pressured_rejections_; }

  /// The consumer (e.g. the GPU) is done with [gpa, gpa+len); blocks whose
  /// user count drops to zero are unmapped and unpinned.
  void release_dma(Gpa gpa, std::uint64_t len);

  /// Container-teardown reclaim: unmap and unpin every resident block
  /// regardless of user count — the guest is gone, so no DMA consumer can
  /// remain, and leaving raw demand-pins behind would leak host pin
  /// capacity to a dead tenant (the kill-mid-flood path depends on this).
  /// Returns the bytes unpinned.
  std::uint64_t release_all();

  /// Device-side translation of a DMA request, as the IOMMU would perform
  /// it. Detects the Figure-5 failure mode.
  enum class AccessKind { kRam, kStaleDeviceMapping, kFault };
  struct DeviceAccess {
    AccessKind kind = AccessKind::kFault;
    Hpa hpa;
  };
  DeviceAccess translate_for_device(Gpa gpa);

  const MapCache& map_cache() const { return cache_; }
  const PvdmaConfig& config() const { return config_; }
  /// Base of this VM's IoVa window (see constructor).
  std::uint64_t iova_base() const { return iova_base_; }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::uint64_t blocks_registered() const { return blocks_registered_; }
  std::uint64_t stale_accesses() const { return stale_accesses_; }
  /// Times release_dma() tried to unpin a block that was never mapped (or
  /// already torn down), plus block teardowns that found the IOMMU window
  /// already empty. Logged when it happens; the pin-accounting auditor
  /// flags a nonzero count as a double-unpin bug.
  std::uint64_t double_unpins() const { return double_unpins_; }

  /// Checkpoint the pin table (Map Cache residency + user counts) and the
  /// accounting counters.
  void save_state(SnapshotWriter& w) const;

  /// Restore a checkpoint. `adopt_pins = true` is the backend hot-upgrade
  /// path: the guest's pages stayed pinned in the (untouched) IOMMU while
  /// the backend process was swapped, so the restored Map Cache adopts them
  /// and the pin-accounting auditor stays green. `adopt_pins = false` is
  /// the migration path: nothing is pinned on the destination yet, so the
  /// pin table starts empty (first DMA touches re-pin on demand — the Map
  /// Cache cold path) while the cumulative statistics carry over.
  Status restore_state(SnapshotReader& r, bool adopt_pins);

 private:
  /// Register one block in the IOMMU by walking the EPT 4 KiB pages and
  /// coalescing contiguous HPA runs.
  Status register_block(Gpa block_start);
  void unregister_block(Gpa block_start);

  Iommu* iommu_;
  Ept* ept_;
  PvdmaConfig config_;
  MapCache cache_;
  std::uint64_t iova_base_ = 0;
  TenantId tenant_ = kHostTenant;
  std::uint64_t pin_budget_bytes_ = 0;
  std::uint64_t budget_rejections_ = 0;
  std::uint64_t capacity_rejections_ = 0;
  std::uint64_t pinned_bytes_ = 0;
  std::uint64_t blocks_registered_ = 0;
  std::uint64_t stale_accesses_ = 0;
  std::uint64_t double_unpins_ = 0;
  bool pressured_ = false;
  std::uint64_t pressured_rejections_ = 0;
};

}  // namespace stellar
