// The collective family beyond AllReduce, built on the same sliced ring /
// direct-exchange machinery:
//   RingReduceScatter — N-1 ring steps, each rank ends with one reduced
//                       data/N chunk;
//   RingAllGather     — N-1 ring steps, each rank ends with all chunks;
//   AllToAll          — direct exchange, every rank sends data/N to every
//                       other rank (expert-parallel dispatch/combine, §9's
//                       MoE discussion).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "collective/fleet.h"
#include "common/units.h"

namespace stellar {

struct CollectiveConfig {
  std::uint64_t data_bytes = 64ull << 20;
  std::uint32_t slices = 4;  // ring collectives only
  TransportConfig transport;
};

/// Shared implementation of single-phase ring collectives (N-1 steps of a
/// data/N chunk with per-slice pipelining).
class RingCollective {
 public:
  RingCollective(EngineFleet& fleet, std::vector<EndpointId> ranks,
                 CollectiveConfig config, std::uint32_t phases);

  /// `on_complete` fires exactly once per start(): on success, or
  /// immediately when any ring connection enters the error state (fail
  /// fast — check status() to tell the two apart).
  void start(std::function<void()> on_complete = {});

  bool running() const { return running_; }
  /// OK while healthy/finished; the first connection error otherwise.
  Status status() const { return status_; }
  SimTime last_duration() const { return last_duration_; }
  std::uint64_t chunk_bytes() const { return chunk_bytes_; }
  std::uint64_t slice_bytes() const { return slice_bytes_; }
  std::size_t world_size() const { return ranks_.size(); }

  /// NCCL bus bandwidth: phases*(N-1)/N * S / t.
  double bus_bandwidth_gbps() const;

  /// Algorithmic bandwidth: S / t.
  double algo_bandwidth_gbps() const;

  std::uint64_t total_retransmits() const;

  /// Migration hook: while paused, a rank's state machine keeps consuming
  /// receiver-side completions but defers its own transmissions (the VM is
  /// checkpointed/moved); resume_rank replays everything deferred. Peers
  /// simply see the rank go quiet — no protocol change.
  void pause_rank(std::size_t rank);
  void resume_rank(std::size_t rank);
  bool rank_paused(std::size_t rank) const { return paused_[rank] != 0; }

 private:
  void on_slice_received(std::size_t rank, std::uint32_t lane);
  void send_unit(std::size_t rank, std::uint32_t lane);
  void abort_with(const Status& reason);

  EngineFleet* fleet_;
  std::vector<EndpointId> ranks_;
  CollectiveConfig config_;
  std::uint32_t phases_;
  std::uint64_t chunk_bytes_;
  std::uint64_t slice_bytes_;
  std::uint32_t units_per_lane_;

  std::vector<RdmaConnection*> to_next_;
  std::vector<std::uint32_t> sent_;
  std::vector<std::uint32_t> recv_;
  std::vector<std::uint32_t> rank_received_total_;
  std::vector<char> paused_;
  std::vector<std::vector<std::uint32_t>> deferred_;  // lanes per paused rank

  bool running_ = false;
  std::size_t finished_ranks_ = 0;
  SimTime started_at_;
  SimTime last_duration_;
  Status status_;
  std::function<void()> on_complete_;

  std::uint32_t& sent_at(std::size_t rank, std::uint32_t lane) {
    return sent_[rank * config_.slices + lane];
  }
  std::uint32_t& recv_at(std::size_t rank, std::uint32_t lane) {
    return recv_[rank * config_.slices + lane];
  }
};

class RingReduceScatter : public RingCollective {
 public:
  RingReduceScatter(EngineFleet& fleet, std::vector<EndpointId> ranks,
                    CollectiveConfig config)
      : RingCollective(fleet, std::move(ranks), config, /*phases=*/1) {}
};

class RingAllGather : public RingCollective {
 public:
  RingAllGather(EngineFleet& fleet, std::vector<EndpointId> ranks,
                CollectiveConfig config)
      : RingCollective(fleet, std::move(ranks), config, /*phases=*/1) {}
};

/// Pipeline-chain broadcast: rank 0's payload flows down the chain
/// 0 -> 1 -> ... -> N-1, slice-pipelined (a rank forwards each slice as
/// soon as it arrives). Every non-root rank ends with the full payload.
class ChainBroadcast {
 public:
  ChainBroadcast(EngineFleet& fleet, std::vector<EndpointId> ranks,
                 CollectiveConfig config);

  void start(std::function<void()> on_complete = {});

  bool running() const { return running_; }
  /// OK while healthy/finished; the first connection error otherwise.
  Status status() const { return status_; }
  SimTime last_duration() const { return last_duration_; }
  std::uint64_t slice_bytes() const { return slice_bytes_; }

  /// Payload bandwidth: S / t.
  double algo_bandwidth_gbps() const;

 private:
  void on_slice_received(std::size_t rank, std::uint32_t lane);
  void abort_with(const Status& reason);

  EngineFleet* fleet_;
  std::vector<EndpointId> ranks_;
  CollectiveConfig config_;
  std::uint64_t slice_bytes_;
  std::uint32_t slices_total_;

  std::vector<RdmaConnection*> to_next_;  // conn i -> i+1 (none for last)
  std::vector<std::uint32_t> received_;

  bool running_ = false;
  SimTime started_at_;
  SimTime last_duration_;
  Status status_;
  std::function<void()> on_complete_;
};

/// Barrier: a minimal (one MTU per chunk) two-phase ring — completes when
/// every rank has transitively heard from every other rank.
class RingBarrier : public RingCollective {
 public:
  RingBarrier(EngineFleet& fleet, std::vector<EndpointId> ranks,
              TransportConfig transport);
};

/// Hierarchical AllReduce, as rail-optimized NCCL runs it in production:
/// an intra-host NVLink reduce (modelled as a fixed-latency local stage,
/// no fabric traffic), one inter-host ring per rail carrying 1/gpus_per_host
/// of the data on that rail's NIC, then an intra-host broadcast. This is
/// the mechanism behind the rail-share term in the workload model.
class HierarchicalAllReduce {
 public:
  struct Config {
    std::uint64_t data_bytes = 64ull << 20;
    std::uint32_t gpus_per_host = 8;
    SimTime nvlink_stage = SimTime::micros(40);  // intra-host reduce/bcast
    std::uint32_t slices = 4;
    TransportConfig transport;
  };

  /// `host_leaders` is one endpoint per host (a rail's NIC); each carries
  /// its rail's 1/gpus_per_host shard of the inter-host ring.
  HierarchicalAllReduce(EngineFleet& fleet,
                        std::vector<EndpointId> host_leaders, Config config);

  void start(std::function<void()> on_complete = {});

  /// Status of the inter-host ring (the only fabric-touching stage).
  Status status() const;
  SimTime last_duration() const { return last_duration_; }
  /// Bus bandwidth per GPU as NCCL reports it.
  double bus_bandwidth_gbps() const;

 private:
  EngineFleet* fleet_;
  Config config_;
  std::unique_ptr<RingCollective> inter_host_;
  SimTime started_at_;
  SimTime last_duration_;
  std::function<void()> on_complete_;
};

/// Direct all-to-all exchange: rank i sends data/N to every rank j != i on
/// a dedicated connection. Completion when every rank received N-1 shards.
class AllToAll {
 public:
  AllToAll(EngineFleet& fleet, std::vector<EndpointId> ranks,
           CollectiveConfig config);

  void start(std::function<void()> on_complete = {});

  bool running() const { return running_; }
  /// OK while healthy/finished; the first connection error otherwise.
  Status status() const { return status_; }
  SimTime last_duration() const { return last_duration_; }
  std::uint64_t shard_bytes() const { return shard_bytes_; }

  /// Algorithmic bandwidth per rank: (N-1)/N * S / t.
  double algo_bandwidth_gbps() const;

 private:
  void on_shard_received(std::size_t rank);
  void abort_with(const Status& reason);

  EngineFleet* fleet_;
  std::vector<EndpointId> ranks_;
  CollectiveConfig config_;
  std::uint64_t shard_bytes_;

  // conns_[i * N + j]: connection rank i -> rank j (null on diagonal).
  std::vector<RdmaConnection*> conns_;
  std::vector<std::uint32_t> received_;

  bool running_ = false;
  std::size_t finished_ranks_ = 0;
  SimTime started_at_;
  SimTime last_duration_;
  Status status_;
  std::function<void()> on_complete_;
};

}  // namespace stellar
