// Ring AllReduce over the Stellar multipath transport: the two-phase
// (reduce-scatter + all-gather) specialization of RingCollective — the
// algorithm NCCL runs for the AllReduce tasks of Figures 10, 11, 15, 16.
#pragma once

#include "collective/collectives.h"

namespace stellar {

using AllReduceConfig = CollectiveConfig;

class RingAllReduce : public RingCollective {
 public:
  /// `ranks` must all live on the same rail+plane (rail-optimized rings).
  RingAllReduce(EngineFleet& fleet, std::vector<EndpointId> ranks,
                AllReduceConfig config)
      : RingCollective(fleet, std::move(ranks), config, /*phases=*/2) {}
};

}  // namespace stellar
