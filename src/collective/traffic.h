// Traffic generators for the §7.2 experiments:
//  * PermutationTraffic — every source streams RDMA WRITEs to a fixed,
//    randomly chosen partner (the Figure-9 pattern);
//  * BurstyDriver — wraps any restartable task into an on/off duty cycle
//    (the 5 s-on / 5 s-off background of Figure 10b).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "collective/fleet.h"
#include "common/rng.h"
#include "common/units.h"

namespace stellar {

struct PermutationConfig {
  std::uint64_t message_bytes = 1ull << 20;
  TransportConfig transport;
  std::uint64_t seed = 42;
};

class PermutationTraffic {
 public:
  /// Builds a random derangement over `sources` -> `sinks` (both must have
  /// the same size and live on one rail/plane). When `sinks` is empty, the
  /// permutation is over `sources` themselves.
  PermutationTraffic(EngineFleet& fleet, std::vector<EndpointId> sources,
                     std::vector<EndpointId> sinks, PermutationConfig config);

  /// Start continuous streaming: each flow reposts a message as soon as the
  /// previous one completes, until stop() is called.
  void start();
  void stop();

  std::uint64_t completed_bytes() const;
  std::uint64_t total_retransmits() const;
  std::size_t flow_count() const { return conns_.size(); }
  const std::vector<RdmaConnection*>& connections() const { return conns_; }

  /// OK while every flow is healthy; the first QP error otherwise. A dead
  /// flow stops reposting (fail fast) while the others keep streaming.
  Status status() const { return status_; }
  std::size_t failed_flows() const { return failed_flows_; }

 private:
  void repost(std::size_t flow);

  EngineFleet* fleet_;
  PermutationConfig config_;
  std::vector<RdmaConnection*> conns_;
  bool running_ = false;
  Status status_;
  std::size_t failed_flows_ = 0;
};

/// Drives a restartable task (e.g. a RingAllReduce) in on/off cycles.
class BurstyDriver {
 public:
  using StartFn = std::function<void(std::function<void()> on_complete)>;

  BurstyDriver(Simulator& sim, StartFn start, SimTime on_period,
               SimTime off_period)
      : sim_(&sim), start_(std::move(start)), on_(on_period), off_(off_period) {}

  /// Begin cycling immediately; runs until stop().
  void run();
  void stop() { running_ = false; }

  std::uint64_t bursts_completed() const { return bursts_; }

 private:
  void burst_loop();

  Simulator* sim_;
  StartFn start_;
  std::function<void()> restart_;  // held here so completions don't self-own
  SimTime on_;
  SimTime off_;
  bool running_ = false;
  bool task_active_ = false;
  SimTime burst_started_;
  std::uint64_t bursts_ = 0;
};

}  // namespace stellar
