#include "collective/traffic.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace stellar {

PermutationTraffic::PermutationTraffic(EngineFleet& fleet,
                                       std::vector<EndpointId> sources,
                                       std::vector<EndpointId> sinks,
                                       PermutationConfig config)
    : fleet_(&fleet), config_(config) {
  const bool self_permutation = sinks.empty();
  if (self_permutation) sinks = sources;
  if (sinks.size() != sources.size()) {
    throw std::invalid_argument("PermutationTraffic: size mismatch");
  }

  // Fisher-Yates shuffle; for self-permutations, retry until derangement
  // (no flow to itself). Deterministic under the config seed.
  Rng rng(config_.seed);
  auto shuffle = [&] {
    for (std::size_t i = sinks.size(); i > 1; --i) {
      std::swap(sinks[i - 1], sinks[rng.below(i)]);
    }
  };
  shuffle();
  if (self_permutation) {
    bool ok = false;
    for (int attempt = 0; attempt < 64 && !ok; ++attempt) {
      ok = true;
      for (std::size_t i = 0; i < sinks.size(); ++i) {
        if (sinks[i] == sources[i]) {
          ok = false;
          shuffle();
          break;
        }
      }
    }
    if (!ok) {
      throw std::invalid_argument(
          "PermutationTraffic: could not build a derangement");
    }
  }

  conns_.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    auto conn = fleet_->connect(sources[i], sinks[i], config_.transport);
    if (!conn.is_ok()) {
      throw std::invalid_argument("PermutationTraffic: " +
                                  conn.status().to_string());
    }
    conns_.push_back(conn.value());
    // A flow whose QP dies stops reposting instead of waiting on a
    // completion that will never fire; the first error is kept for callers.
    conns_.back()->set_on_error([this](const Status& reason) {
      ++failed_flows_;
      if (status_.is_ok()) status_ = reason;
    });
  }
}

void PermutationTraffic::start() {
  running_ = true;
  for (std::size_t i = 0; i < conns_.size(); ++i) repost(i);
}

void PermutationTraffic::stop() { running_ = false; }

void PermutationTraffic::repost(std::size_t flow) {
  if (!running_ || conns_[flow]->in_error()) return;
  conns_[flow]->post_write(config_.message_bytes, [this, flow] {
    STELLAR_TRACE_ONLY(
        obs::count("traffic/messages");
        obs::count("traffic/bytes", config_.message_bytes);)
    repost(flow);
  });
}

std::uint64_t PermutationTraffic::completed_bytes() const {
  std::uint64_t total = 0;
  for (const RdmaConnection* c : conns_) total += c->completed_bytes();
  return total;
}

std::uint64_t PermutationTraffic::total_retransmits() const {
  std::uint64_t total = 0;
  for (const RdmaConnection* c : conns_) total += c->retransmits();
  return total;
}

// ---------------------------------------------------------------------------
// BurstyDriver
// ---------------------------------------------------------------------------

void BurstyDriver::run() {
  running_ = true;
  burst_loop();
}

void BurstyDriver::burst_loop() {
  if (!running_) return;
  burst_started_ = sim_->now();
  task_active_ = true;

  // Run the task back-to-back inside the on-window; then idle for the
  // off-window and repeat. The completion callback re-submits the task, so
  // the driver keeps it alive as a member; start_ receives a copy each time.
  restart_ = [this] {
    ++bursts_;
    if (!running_) {
      task_active_ = false;
      return;
    }
    if (sim_->now() - burst_started_ < on_) {
      start_(restart_);
    } else {
      task_active_ = false;
      const SimTime elapsed = sim_->now() - burst_started_;
      const SimTime idle = elapsed < on_ + off_ ? on_ + off_ - elapsed
                                                : SimTime::zero();
      sim_->schedule_after(idle, [this] { burst_loop(); });
    }
  };
  start_(restart_);
}

}  // namespace stellar
