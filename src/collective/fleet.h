// EngineFleet: lazily creates one RdmaEngine per fabric endpoint so that
// collectives and traffic generators can share endpoints without fighting
// over the fabric's single per-endpoint packet handler.
#pragma once

#include <memory>
#include <unordered_map>

#include "net/fabric.h"
#include "rnic/transport.h"

namespace stellar {

class EngineFleet {
 public:
  EngineFleet(Simulator& sim, ClosFabric& fabric)
      : sim_(&sim), fabric_(&fabric) {}

  RdmaEngine& at(EndpointId id) {
    auto it = engines_.find(id);
    if (it == engines_.end()) {
      it = engines_
               .emplace(id, std::make_unique<RdmaEngine>(*sim_, *fabric_, id))
               .first;
    }
    return *it->second;
  }

  /// Open a connection, instantiating BOTH endpoint engines. Prefer this
  /// over `at(from).connect(to)`: an endpoint without an engine has no
  /// packet handler, and traffic sent to it would silently black-hole.
  StatusOr<RdmaConnection*> connect(EndpointId from, EndpointId to,
                                    const TransportConfig& config) {
    at(to);  // ensure the receiver side exists before traffic flows
    return at(from).connect(to, config);
  }

  Simulator& simulator() { return *sim_; }
  ClosFabric& fabric() { return *fabric_; }

  /// Visit every instantiated engine — audit sweeps attach one transport
  /// auditor per engine this way.
  template <typename Fn>
  void for_each_engine(Fn&& fn) const {
    for (const auto& [id, engine] : engines_) fn(*engine);
  }
  std::size_t engine_count() const { return engines_.size(); }

 private:
  Simulator* sim_;
  ClosFabric* fabric_;
  std::unordered_map<EndpointId, std::unique_ptr<RdmaEngine>> engines_;
};

}  // namespace stellar
