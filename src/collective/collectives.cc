#include "collective/collectives.h"

#include <algorithm>
#include <stdexcept>

#include "check/check.h"
#include "obs/obs.h"

namespace stellar {

// ---------------------------------------------------------------------------
// RingCollective
// ---------------------------------------------------------------------------

RingCollective::RingCollective(EngineFleet& fleet,
                               std::vector<EndpointId> ranks,
                               CollectiveConfig config, std::uint32_t phases)
    : fleet_(&fleet),
      ranks_(std::move(ranks)),
      config_(config),
      phases_(phases) {
  const std::size_t n = ranks_.size();
  if (n < 2) throw std::invalid_argument("RingCollective: need >= 2 ranks");
  if (config_.slices == 0) {
    throw std::invalid_argument("RingCollective: slices must be >= 1");
  }
  chunk_bytes_ = (config_.data_bytes + n - 1) / n;
  slice_bytes_ = (chunk_bytes_ + config_.slices - 1) / config_.slices;
  units_per_lane_ = static_cast<std::uint32_t>(phases_ * (n - 1));

  to_next_.resize(n);
  sent_.assign(n * config_.slices, 0);
  recv_.assign(n * config_.slices, 0);
  rank_received_total_.assign(n, 0);
  paused_.assign(n, 0);
  deferred_.assign(n, {});

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = (i + 1) % n;
    auto conn = fleet_->connect(ranks_[i], ranks_[next], config_.transport);
    if (!conn.is_ok()) {
      throw std::invalid_argument("RingCollective: " +
                                  conn.status().to_string());
    }
    to_next_[i] = conn.value();
    // Fail fast on a dead QP: without this the ring would silently stall
    // forever once any connection exhausts its retry budget.
    to_next_[i]->set_on_error(
        [this](const Status& reason) { abort_with(reason); });
    fleet_->at(ranks_[next])
        .set_conn_message_handler(
            to_next_[i]->id(), [this, next](const RxMessage& m) {
              on_slice_received(next, m.tag);
            });
  }
}

void RingCollective::start(std::function<void()> on_complete) {
  STELLAR_CHECK(!running_, "collective started while already running");
  running_ = true;
  finished_ranks_ = 0;
  status_ = Status::ok();
  on_complete_ = std::move(on_complete);
  std::fill(sent_.begin(), sent_.end(), 0);
  std::fill(recv_.begin(), recv_.end(), 0);
  std::fill(rank_received_total_.begin(), rank_received_total_.end(), 0);
  std::fill(paused_.begin(), paused_.end(), 0);
  for (auto& lanes : deferred_) lanes.clear();
  started_at_ = fleet_->simulator().now();
  for (std::size_t i = 0; i < ranks_.size(); ++i) {
    for (std::uint32_t lane = 0; lane < config_.slices; ++lane) {
      send_unit(i, lane);
    }
  }
}

void RingCollective::send_unit(std::size_t rank, std::uint32_t lane) {
  ++sent_at(rank, lane);
  if (paused_[rank] != 0) {
    // Rank is being checkpointed/migrated: account the unit as sent (the
    // flow-control guard in on_slice_received keys off sent_) but hold the
    // actual transmission until resume_rank replays it.
    deferred_[rank].push_back(lane);
    return;
  }
  to_next_[rank]->post_write(slice_bytes_, {}, lane);
}

void RingCollective::pause_rank(std::size_t rank) { paused_[rank] = 1; }

void RingCollective::resume_rank(std::size_t rank) {
  if (paused_[rank] == 0) return;
  paused_[rank] = 0;
  std::vector<std::uint32_t> lanes;
  lanes.swap(deferred_[rank]);
  for (std::uint32_t lane : lanes) {
    to_next_[rank]->post_write(slice_bytes_, {}, lane);
  }
}

void RingCollective::on_slice_received(std::size_t rank, std::uint32_t lane) {
  if (!running_) return;
  ++recv_at(rank, lane);
  ++rank_received_total_[rank];
  if (sent_at(rank, lane) < units_per_lane_ &&
      sent_at(rank, lane) <= recv_at(rank, lane)) {
    send_unit(rank, lane);
  }
  if (rank_received_total_[rank] == units_per_lane_ * config_.slices) {
    if (++finished_ranks_ < ranks_.size()) return;
    running_ = false;
    last_duration_ = fleet_->simulator().now() - started_at_;
    STELLAR_TRACE_ONLY(
        obs::count("collective/ring_ops");
        obs::complete(obs::TraceCat::kCollective, "ring", started_at_,
                      last_duration_,
                      obs::TraceArgs{"bytes", static_cast<std::int64_t>(
                                                  config_.data_bytes)});)
    if (on_complete_) {
      auto cb = std::move(on_complete_);
      on_complete_ = {};
      cb();
    }
  }
}

void RingCollective::abort_with(const Status& reason) {
  if (!status_.is_ok()) return;  // first failure wins
  status_ = reason;
  if (!running_) return;
  running_ = false;
  last_duration_ = fleet_->simulator().now() - started_at_;
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = {};
    cb();
  }
}

double RingCollective::bus_bandwidth_gbps() const {
  if (last_duration_ <= SimTime::zero()) return 0.0;
  const double n = static_cast<double>(ranks_.size());
  const double factor = phases_ * (n - 1.0) / n;
  return factor * static_cast<double>(config_.data_bytes) * 8.0 /
         last_duration_.sec() / 1e9;
}

double RingCollective::algo_bandwidth_gbps() const {
  if (last_duration_ <= SimTime::zero()) return 0.0;
  return static_cast<double>(config_.data_bytes) * 8.0 /
         last_duration_.sec() / 1e9;
}

std::uint64_t RingCollective::total_retransmits() const {
  std::uint64_t total = 0;
  for (const RdmaConnection* c : to_next_) total += c->retransmits();
  return total;
}

// ---------------------------------------------------------------------------
// ChainBroadcast
// ---------------------------------------------------------------------------

ChainBroadcast::ChainBroadcast(EngineFleet& fleet,
                               std::vector<EndpointId> ranks,
                               CollectiveConfig config)
    : fleet_(&fleet), ranks_(std::move(ranks)), config_(config) {
  const std::size_t n = ranks_.size();
  if (n < 2) throw std::invalid_argument("ChainBroadcast: need >= 2 ranks");
  if (config_.slices == 0) {
    throw std::invalid_argument("ChainBroadcast: slices must be >= 1");
  }
  slice_bytes_ = (config_.data_bytes + config_.slices - 1) / config_.slices;
  slices_total_ = config_.slices;

  to_next_.assign(n, nullptr);
  received_.assign(n, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    auto conn = fleet_->connect(ranks_[i], ranks_[i + 1], config_.transport);
    if (!conn.is_ok()) {
      throw std::invalid_argument("ChainBroadcast: " +
                                  conn.status().to_string());
    }
    to_next_[i] = conn.value();
    to_next_[i]->set_on_error(
        [this](const Status& reason) { abort_with(reason); });
    const std::size_t next = i + 1;
    fleet_->at(ranks_[next])
        .set_conn_message_handler(conn.value()->id(),
                                  [this, next](const RxMessage& m) {
                                    on_slice_received(next, m.tag);
                                  });
  }
}

void ChainBroadcast::start(std::function<void()> on_complete) {
  STELLAR_CHECK(!running_, "collective started while already running");
  running_ = true;
  status_ = Status::ok();
  on_complete_ = std::move(on_complete);
  std::fill(received_.begin(), received_.end(), 0);
  started_at_ = fleet_->simulator().now();
  // The root pushes every slice; downstream ranks forward on receipt.
  for (std::uint32_t lane = 0; lane < slices_total_; ++lane) {
    to_next_[0]->post_write(slice_bytes_, {}, lane);
  }
}

void ChainBroadcast::on_slice_received(std::size_t rank, std::uint32_t lane) {
  if (!running_) return;
  ++received_[rank];
  // Forward the slice down the chain (cut-through at slice granularity).
  if (to_next_[rank] != nullptr) {
    to_next_[rank]->post_write(slice_bytes_, {}, lane);
  }
  // Done when the tail of the chain has the full payload.
  if (rank == ranks_.size() - 1 && received_[rank] == slices_total_) {
    running_ = false;
    last_duration_ = fleet_->simulator().now() - started_at_;
    STELLAR_TRACE_ONLY(
        obs::count("collective/broadcast_ops");
        obs::complete(obs::TraceCat::kCollective, "broadcast", started_at_,
                      last_duration_,
                      obs::TraceArgs{"bytes", static_cast<std::int64_t>(
                                                  config_.data_bytes)});)
    if (on_complete_) {
      auto cb = std::move(on_complete_);
      on_complete_ = {};
      cb();
    }
  }
}

void ChainBroadcast::abort_with(const Status& reason) {
  if (!status_.is_ok()) return;
  status_ = reason;
  if (!running_) return;
  running_ = false;
  last_duration_ = fleet_->simulator().now() - started_at_;
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = {};
    cb();
  }
}

double ChainBroadcast::algo_bandwidth_gbps() const {
  if (last_duration_ <= SimTime::zero()) return 0.0;
  return static_cast<double>(config_.data_bytes) * 8.0 /
         last_duration_.sec() / 1e9;
}

// ---------------------------------------------------------------------------
// RingBarrier
// ---------------------------------------------------------------------------

namespace {
CollectiveConfig barrier_config(TransportConfig transport) {
  CollectiveConfig cfg;
  cfg.data_bytes = 64;  // token-sized chunks
  cfg.slices = 1;
  cfg.transport = transport;
  return cfg;
}
}  // namespace

RingBarrier::RingBarrier(EngineFleet& fleet, std::vector<EndpointId> ranks,
                         TransportConfig transport)
    : RingCollective(fleet, std::move(ranks), barrier_config(transport),
                     /*phases=*/2) {}

// ---------------------------------------------------------------------------
// HierarchicalAllReduce
// ---------------------------------------------------------------------------

HierarchicalAllReduce::HierarchicalAllReduce(
    EngineFleet& fleet, std::vector<EndpointId> host_leaders, Config config)
    : fleet_(&fleet), config_(config) {
  CollectiveConfig ring;
  // Each rail ring carries 1/gpus_per_host of the gradient.
  ring.data_bytes =
      (config_.data_bytes + config_.gpus_per_host - 1) / config_.gpus_per_host;
  ring.slices = config_.slices;
  ring.transport = config_.transport;
  inter_host_ = std::make_unique<RingCollective>(fleet, std::move(host_leaders),
                                                 ring, /*phases=*/2);
}

void HierarchicalAllReduce::start(std::function<void()> on_complete) {
  on_complete_ = std::move(on_complete);
  started_at_ = fleet_->simulator().now();
  // Intra-host NVLink reduce, then the inter-host rail rings, then the
  // intra-host broadcast.
  fleet_->simulator().schedule_after(config_.nvlink_stage, [this] {
    inter_host_->start([this] {
      fleet_->simulator().schedule_after(config_.nvlink_stage, [this] {
        last_duration_ = fleet_->simulator().now() - started_at_;
        if (on_complete_) {
          auto cb = std::move(on_complete_);
          on_complete_ = {};
          cb();
        }
      });
    });
  });
}

Status HierarchicalAllReduce::status() const { return inter_host_->status(); }

double HierarchicalAllReduce::bus_bandwidth_gbps() const {
  if (last_duration_ <= SimTime::zero()) return 0.0;
  // NCCL accounting for the full (un-split) gradient across all GPUs.
  const double n = static_cast<double>(inter_host_->world_size()) *
                   config_.gpus_per_host;
  const double factor = 2.0 * (n - 1.0) / n;
  return factor * static_cast<double>(config_.data_bytes) * 8.0 /
         last_duration_.sec() / 1e9;
}

// ---------------------------------------------------------------------------
// AllToAll
// ---------------------------------------------------------------------------

AllToAll::AllToAll(EngineFleet& fleet, std::vector<EndpointId> ranks,
                   CollectiveConfig config)
    : fleet_(&fleet), ranks_(std::move(ranks)), config_(config) {
  const std::size_t n = ranks_.size();
  if (n < 2) throw std::invalid_argument("AllToAll: need >= 2 ranks");
  shard_bytes_ = (config_.data_bytes + n - 1) / n;

  conns_.assign(n * n, nullptr);
  received_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      auto conn = fleet_->connect(ranks_[i], ranks_[j], config_.transport);
      if (!conn.is_ok()) {
        throw std::invalid_argument("AllToAll: " + conn.status().to_string());
      }
      conns_[i * n + j] = conn.value();
      conns_[i * n + j]->set_on_error(
          [this](const Status& reason) { abort_with(reason); });
      fleet_->at(ranks_[j])
          .set_conn_message_handler(conn.value()->id(),
                                    [this, j](const RxMessage&) {
                                      on_shard_received(j);
                                    });
    }
  }
}

void AllToAll::start(std::function<void()> on_complete) {
  STELLAR_CHECK(!running_, "collective started while already running");
  running_ = true;
  finished_ranks_ = 0;
  status_ = Status::ok();
  on_complete_ = std::move(on_complete);
  std::fill(received_.begin(), received_.end(), 0);
  started_at_ = fleet_->simulator().now();
  const std::size_t n = ranks_.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) conns_[i * n + j]->post_write(shard_bytes_);
    }
  }
}

void AllToAll::on_shard_received(std::size_t rank) {
  if (!running_) return;
  if (++received_[rank] < ranks_.size() - 1) return;
  if (++finished_ranks_ < ranks_.size()) return;
  running_ = false;
  last_duration_ = fleet_->simulator().now() - started_at_;
  STELLAR_TRACE_ONLY(
      obs::count("collective/alltoall_ops");
      obs::complete(obs::TraceCat::kCollective, "alltoall", started_at_,
                    last_duration_,
                    obs::TraceArgs{"bytes", static_cast<std::int64_t>(
                                                config_.data_bytes)});)
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = {};
    cb();
  }
}

void AllToAll::abort_with(const Status& reason) {
  if (!status_.is_ok()) return;
  status_ = reason;
  if (!running_) return;
  running_ = false;
  last_duration_ = fleet_->simulator().now() - started_at_;
  if (on_complete_) {
    auto cb = std::move(on_complete_);
    on_complete_ = {};
    cb();
  }
}

double AllToAll::algo_bandwidth_gbps() const {
  if (last_duration_ <= SimTime::zero()) return 0.0;
  const double n = static_cast<double>(ranks_.size());
  return (n - 1.0) / n * static_cast<double>(config_.data_bytes) * 8.0 /
         last_duration_.sec() / 1e9;
}

}  // namespace stellar
