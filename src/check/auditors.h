// The five cross-layer invariant auditors (docs/INVARIANTS.md catalogues
// every rule with its paper-section pointer):
//
//   FabricConservationAuditor  packet conservation across net/fabric+net/link
//   PinAccountingAuditor       IOMMU pins vs PVDMA Map Cache residency (§5)
//   EmttCoherenceAuditor       eMTT entries vs EPT truth / pinned blocks (§6)
//   TransportAuditor           QP/PSN/window/RTO legality (§7)
//   SimulatorAuditor           timing-wheel scheduler bookkeeping sanity
//
// Auditors hold non-owning pointers: the audited objects must outlive the
// registry (or the registry must be destroyed/detached first, as the
// integration tests do before container shutdown).
#pragma once

#include "check/audit.h"
#include "core/stellar.h"
#include "memory/ept.h"
#include "memory/iommu.h"
#include "net/fabric.h"
#include "rnic/transport.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "virt/pvdma.h"

namespace stellar {

/// (a) Every packet injected into the fabric is exactly one of: delivered,
/// dropped (tail/random/no-handler/no-sink), or still held by one link.
/// Counter instrumentation only exists with STELLAR_AUDIT=ON; in audit-off
/// builds this auditor performs no checks.
class FabricConservationAuditor final : public InvariantAuditor {
 public:
  explicit FabricConservationAuditor(const ClosFabric& fabric)
      : fabric_(&fabric) {}
  const char* name() const override { return "fabric-conservation"; }
  void audit(AuditReport& report) const override;

 private:
  const ClosFabric* fabric_;
};

/// (b) IOMMU pin refcounts consistent with PVDMA Map Cache residency:
/// pinned bytes match cache residency on both sides, every IOMMU range lies
/// inside a resident (use-counted) block, every resident block's EPT-mapped
/// pages still have IOMMU coverage, and double-unpins are flagged.
class PinAccountingAuditor final : public InvariantAuditor {
 public:
  /// `exclusive_iommu`: this PVDMA instance is the IOMMU's only pinner, so
  /// the IOMMU-side pinned-byte counter must match PVDMA's exactly.
  PinAccountingAuditor(const Pvdma& pvdma, const Iommu& iommu, const Ept& ept,
                       bool exclusive_iommu = true)
      : pvdma_(&pvdma),
        iommu_(&iommu),
        ept_(&ept),
        exclusive_iommu_(exclusive_iommu) {}
  const char* name() const override { return "pin-accounting"; }
  void audit(AuditReport& report) const override;

 private:
  const Pvdma* pvdma_;
  const Iommu* iommu_;
  const Ept* ept_;
  bool exclusive_iommu_;
};

/// (c) No eMTT entry points at an unpinned or swapped HPA: for every
/// host-DRAM MR of every vStellar device, the eMTT's stored final HPA still
/// matches the EPT's current translation (checked at each PVDMA-block
/// boundary) and the covering Map Cache blocks are still resident.
class EmttCoherenceAuditor final : public InvariantAuditor {
 public:
  explicit EmttCoherenceAuditor(StellarHost& host) : host_(&host) {}
  const char* name() const override { return "emtt-coherence"; }
  void audit(AuditReport& report) const override;

 private:
  StellarHost* host_;
};

/// (d) Transport/QP state legality for every connection of one engine:
/// in-flight byte accounting matches the outstanding table (shared and
/// per-path), PSNs never reach next_psn_, the RTO timer is armed exactly
/// when unacked packets exist, an errored QP holds no in-flight state, and
/// receiver PSN floors are compacted correctly.
class TransportAuditor final : public InvariantAuditor {
 public:
  explicit TransportAuditor(const RdmaEngine& engine) : engine_(&engine) {}
  const char* name() const override { return "transport-legality"; }
  void audit(AuditReport& report) const override;

 private:
  const RdmaEngine* engine_;
};

/// (f) Multi-tenant accounting closure (docs/TENANCY.md): every shared
/// resource's per-tenant ledger must sum exactly to its global counter —
/// IOMMU pinned bytes and IOTLB occupancy, per-RNIC MTT pages and verbs
/// MR/QP counts, vSwitch rule slots and egress backlog — and, with PVDMA
/// enabled, each booted VM's own pin counter must equal the IOMMU's
/// attribution for that tenant. Any gap means usage leaked across tenant
/// boundaries (the precondition for unattributable noisy-neighbor damage).
class TenantIsolationAuditor final : public InvariantAuditor {
 public:
  explicit TenantIsolationAuditor(StellarHost& host) : host_(&host) {}
  const char* name() const override { return "tenant-isolation"; }
  void audit(AuditReport& report) const override;

 private:
  StellarHost* host_;
};

/// (e) Simulator scheduler sanity: the live-event counter matches the
/// pending-entry counter, the walked timing-wheel structures (wheel slots +
/// overflow heap + active bucket) hold exactly pending + tombstoned
/// entries, and the event-record pool's in-use count backs each of them
/// exactly once (no leaked or double-freed records).
class SimulatorAuditor final : public InvariantAuditor {
 public:
  explicit SimulatorAuditor(const Simulator& sim) : sim_(&sim) {}
  const char* name() const override { return "simulator-heap"; }
  void audit(AuditReport& report) const override;

 private:
  const Simulator* sim_;
};

/// (e') Parallel-engine sanity: the SimulatorAuditor walk applied to every
/// shard of a ShardedEngine, plus handoff-channel conservation — every
/// posted cross-shard event has been drained into its target wheel (no
/// event parked forever in an SPSC channel). Must run at a merged barrier
/// (after ShardedEngine::run_until returned), when the driving thread may
/// claim each shard's SingleOwner capability for the walk.
class ShardedEngineAuditor final : public InvariantAuditor {
 public:
  explicit ShardedEngineAuditor(const ShardedEngine& engine)
      : engine_(&engine) {}
  const char* name() const override { return "sharded-engine"; }
  void audit(AuditReport& report) const override;

 private:
  const ShardedEngine* engine_;
};

}  // namespace stellar
