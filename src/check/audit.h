// Cross-layer invariant auditing.
//
// An InvariantAuditor walks one subsystem's state and reports anything that
// violates a protocol invariant (packet conservation, pin accounting, eMTT
// coherence, ...). The AuditRegistry runs a set of auditors either on
// demand (run_all) or periodically on a Simulator: attach() re-arms itself
// only while other events are pending, so the final firing audits the
// drained end state and the simulation still terminates.
//
// Findings are collected into an AuditReport. By default a non-clean report
// trips a STELLAR_CHECK (routing through the configurable fail handler);
// tests that deliberately corrupt state switch the registry to collect-only
// with set_trap_on_finding(false) and inspect the report.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sim/simulator.h"

namespace stellar {

class AuditReport {
 public:
  struct Finding {
    std::string auditor;
    std::string detail;
  };

  /// Record one invariant violation.
  void fail(std::string auditor, std::string detail) {
    findings_.push_back({std::move(auditor), std::move(detail)});
  }

  /// Count one invariant comparison performed, violated or not. Lets tests
  /// assert an auditor actually inspected state rather than returning early.
  void note_check() { ++checks_performed_; }

  bool clean() const { return findings_.empty(); }
  const std::vector<Finding>& findings() const { return findings_; }
  std::uint64_t checks_performed() const { return checks_performed_; }

  /// One line per finding, newline-separated; "" when clean.
  std::string to_string() const;

 private:
  std::vector<Finding> findings_;
  std::uint64_t checks_performed_ = 0;
};

class InvariantAuditor {
 public:
  virtual ~InvariantAuditor() = default;
  virtual const char* name() const = 0;
  /// Inspect the audited subsystem and append any violations to `report`.
  virtual void audit(AuditReport& report) const = 0;
};

// Shard-safety contract: an AuditRegistry belongs to the thread driving its
// Simulator (auditors walk that shard's live data structures mid-run, so a
// lock could not make cross-thread use safe anyway). SingleOwner documents
// and — in audit builds — enforces that, exactly like the Simulator itself.
class AuditRegistry {
 public:
  AuditRegistry() = default;
  AuditRegistry(const AuditRegistry&) = delete;
  AuditRegistry& operator=(const AuditRegistry&) = delete;
  ~AuditRegistry();

  void add(std::unique_ptr<InvariantAuditor> auditor) {
    owner_.assert_held();
    auditors_.push_back(std::move(auditor));
  }
  std::size_t auditor_count() const {
    owner_.assert_held();
    return auditors_.size();
  }

  /// Run every auditor once. With trap_on_finding (the default), a dirty
  /// report fails a STELLAR_CHECK; otherwise the report is returned for the
  /// caller to inspect.
  AuditReport run_all();

  /// Audit every `period` of simulated time. The recurring event re-arms
  /// only while the simulator has other pending work, so the last firing
  /// audits the drained state and run() still terminates.
  void attach_periodic(Simulator& sim, SimTime period);
  void detach();
  bool attached() const {
    owner_.assert_held();
    return sim_ != nullptr;
  }

  void set_trap_on_finding(bool trap) {
    owner_.assert_held();
    trap_on_finding_ = trap;
  }

  std::uint64_t runs() const {
    owner_.assert_held();
    return runs_;
  }
  /// Total findings across all runs (0 on a healthy simulation).
  std::uint64_t total_findings() const {
    owner_.assert_held();
    return total_findings_;
  }

 private:
  // Runs as a simulator event (owning thread); asserts ownership itself.
  void fire();

  SingleOwner owner_;
  std::vector<std::unique_ptr<InvariantAuditor>> auditors_
      STELLAR_GUARDED_BY(owner_);
  Simulator* sim_ STELLAR_GUARDED_BY(owner_) = nullptr;
  SimTime period_ STELLAR_GUARDED_BY(owner_) = SimTime::zero();
  EventHandle pending_ STELLAR_GUARDED_BY(owner_);
  bool trap_on_finding_ STELLAR_GUARDED_BY(owner_) = true;
  std::uint64_t runs_ STELLAR_GUARDED_BY(owner_) = 0;
  std::uint64_t total_findings_ STELLAR_GUARDED_BY(owner_) = 0;
};

}  // namespace stellar
