#include "check/check.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace stellar {

namespace {
CheckFailHandler& handler_slot() {
  static CheckFailHandler handler;  // empty => default behavior
  return handler;
}
}  // namespace

std::string CheckFailure::to_string() const {
  std::string out = "CHECK failed at ";
  out += file != nullptr ? file : "?";
  out += ":" + std::to_string(line);
  out += ": ";
  out += condition != nullptr ? condition : "?";
  if (!message.empty()) {
    out += " — " + message;
  }
  return out;
}

CheckFailHandler set_check_fail_handler(CheckFailHandler handler) {
  CheckFailHandler previous = std::move(handler_slot());
  handler_slot() = std::move(handler);
  return previous;
}

namespace detail {

void check_failed(const char* file, int line, const char* condition,
                  std::string message) {
  CheckFailure failure{file, line, condition, std::move(message)};
  if (const CheckFailHandler& handler = handler_slot()) {
    handler(failure);
    // A trap handler normally throws or longjmps. Falling through means
    // nobody dealt with a broken invariant: refuse to continue.
  }
  std::fprintf(stderr, "%s\n", failure.to_string().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace stellar
