#include "check/audit.h"

namespace stellar {

std::string AuditReport::to_string() const {
  std::string out;
  for (const Finding& f : findings_) {
    if (!out.empty()) out += "\n";
    out += "[" + f.auditor + "] " + f.detail;
  }
  return out;
}

AuditRegistry::~AuditRegistry() { detach(); }

AuditReport AuditRegistry::run_all() {
  owner_.assert_held();
  AuditReport report;
  for (const auto& auditor : auditors_) {
    auditor->audit(report);
  }
  ++runs_;
  total_findings_ += report.findings().size();
  if (trap_on_finding_ && !report.clean()) {
    STELLAR_CHECK(report.clean(), "invariant audit found %zu violation(s):\n%s",
                  report.findings().size(), report.to_string().c_str());
  }
  return report;
}

void AuditRegistry::attach_periodic(Simulator& sim, SimTime period) {
  owner_.assert_held();
  detach();
  sim_ = &sim;
  period_ = period;
  pending_ = sim_->schedule_after(period_, [this] { fire(); });
}

void AuditRegistry::detach() {
  owner_.assert_held();
  if (sim_ != nullptr && pending_.valid()) {
    sim_->cancel(pending_);
  }
  pending_ = EventHandle{};
  sim_ = nullptr;
}

void AuditRegistry::fire() {
  owner_.assert_held();
  pending_ = EventHandle{};
  (void)run_all();
  // Re-arm only while other work is queued: the firing that observes an
  // empty queue was the drain-time audit, and the simulation may end.
  if (sim_ != nullptr && !sim_->empty()) {
    pending_ = sim_->schedule_after(period_, [this] { fire(); });
  }
}

}  // namespace stellar
