#include "check/auditors.h"

#include <algorithm>
#include <string>

#include "common/ordered.h"

#include "memory/address.h"

namespace stellar {

namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// (a) Packet conservation: injected = delivered + dropped + in-flight.
// ---------------------------------------------------------------------------

void FabricConservationAuditor::audit(AuditReport& report) const {
#if STELLAR_AUDIT_ENABLED
  std::uint64_t link_drops = 0;
  std::uint64_t held = 0;
  std::uint64_t absorbed = 0;
  for (const NetLink* link : fabric_->all_links()) {
    link_drops += link->audit_ingress_drops() + link->audit_sink_drops();
    held += link->held_packets();
    // Packets handed to the fluid model by a hybrid mode switch: not lost
    // (the transport rewinds their bytes into fluid demand), but no longer
    // owned by any link — they close the ledger as their own terminal
    // outcome.
    absorbed += link->audit_absorbed();
    // Per-link sanity: a link can never have released, dropped, or
    // absorbed more packets than it accepted (held_packets() underflows
    // otherwise).
    report.note_check();
    if (link->audit_released() + link->audit_sink_drops() +
            link->audit_absorbed() >
        link->audit_accepted()) {
      report.fail(name(), "link " + link->name() +
                              " released more packets than it accepted");
    }
  }
  const std::uint64_t injected = fabric_->injected_packets();
  const std::uint64_t accounted = fabric_->delivered_packets() +
                                  fabric_->dropped_no_handler() + link_drops +
                                  absorbed + held;
  report.note_check();
  if (injected != accounted) {
    report.fail(name(),
                "packet conservation violated: injected=" +
                    std::to_string(injected) + " but delivered=" +
                    std::to_string(fabric_->delivered_packets()) +
                    " + no-handler=" +
                    std::to_string(fabric_->dropped_no_handler()) +
                    " + link-drops=" + std::to_string(link_drops) +
                    " + fluid-absorbed=" + std::to_string(absorbed) +
                    " + in-flight=" + std::to_string(held) + " = " +
                    std::to_string(accounted));
  }
#else
  (void)report;
#endif
}

// ---------------------------------------------------------------------------
// (b) IOMMU pins vs PVDMA Map Cache residency (§5 pin lifecycle).
// ---------------------------------------------------------------------------

void PinAccountingAuditor::audit(AuditReport& report) const {
  const MapCache& cache = pvdma_->map_cache();
  const std::uint64_t block_size = cache.block_size();

  // PVDMA's pinned-byte counter is exactly the resident block set.
  report.note_check();
  const std::uint64_t resident_bytes = cache.block_count() * block_size;
  if (pvdma_->pinned_bytes() != resident_bytes) {
    report.fail(name(), "PVDMA pinned_bytes=" +
                            std::to_string(pvdma_->pinned_bytes()) +
                            " but Map Cache holds " +
                            std::to_string(cache.block_count()) +
                            " blocks = " + std::to_string(resident_bytes) +
                            " bytes");
  }

  // The IOMMU-side pin counter agrees when PVDMA is the only pinner.
  if (exclusive_iommu_) {
    report.note_check();
    if (iommu_->pinned_bytes() != pvdma_->pinned_bytes()) {
      report.fail(name(), "IOMMU pinned_bytes=" +
                              std::to_string(iommu_->pinned_bytes()) +
                              " != PVDMA pinned_bytes=" +
                              std::to_string(pvdma_->pinned_bytes()));
    }
  }

  // Every resident block: alive (users >= 1) and its EPT-mapped pages still
  // covered by the IOMMU (an unpin must not race a live registration).
  cache.for_each_block([&](Gpa block, std::uint32_t users) {
    report.note_check();
    if (users == 0) {
      report.fail(name(), "Map Cache block " + hex(block.value()) +
                              " resident with zero users");
    }
    for (std::uint64_t off = 0; off < block_size; off += kPage4K) {
      const Gpa page = block + off;
      if (!ept_->translate(page).is_ok()) continue;  // never registered
      report.note_check();
      if (!iommu_->is_mapped(IoVa{pvdma_->iova_base() + page.value()})) {
        report.fail(name(), "pinned block " + hex(block.value()) +
                                " lost its IOMMU mapping at GPA " +
                                hex(page.value()));
        break;  // one finding per block is enough
      }
    }
  });

  // Conversely, no IOMMU range may outlive its block: anything mapped
  // outside the resident set is a stale entry left behind by an unpin.
  // Only checkable when this PVDMA owns the IOMMU — on a shared IOMMU the
  // other guests' live mappings are indistinguishable from stale ones.
  if (exclusive_iommu_) {
    for (const auto& [start, entry] : iommu_->table()) {
      report.note_check();
      // IOMMU windows live at iova_base + GPA (per-VM namespacing).
      const Gpa first{start - pvdma_->iova_base()};
      const Gpa last{start - pvdma_->iova_base() + entry.len - 1};
      if (!cache.contains(first) || !cache.contains(last)) {
        report.fail(name(), "stale IOMMU mapping [" + hex(start) + ", " +
                                hex(start + entry.len) +
                                ") outside any resident Map Cache block");
      }
    }
  }

  // Double-unpins are logged when they happen; surface them here too.
  report.note_check();
  if (pvdma_->double_unpins() != 0) {
    report.fail(name(), std::to_string(pvdma_->double_unpins()) +
                            " double-unpin(s) observed (see log)");
  }
}

// ---------------------------------------------------------------------------
// (c) eMTT coherence (§6): entries never point at unpinned or swapped HPAs.
// ---------------------------------------------------------------------------

void EmttCoherenceAuditor::audit(AuditReport& report) const {
  for (const auto& device : host_->devices_) {
    const Rnic& rnic = *device->rnic_;
    Hypervisor& hyp = host_->hypervisor();
    const Ept& ept = hyp.ept(device->vm_);
    const MapCache& cache = hyp.pvdma(device->vm_).map_cache();
    const std::uint64_t block_size = cache.block_size();

    // pinned_ranges_ is a hash map; findings must emit in a deterministic
    // order, so walk the MR keys sorted.
    for (const MrKey key : sorted_keys(device->pinned_ranges_)) {
      const auto [gpa, len] = device->pinned_ranges_.at(key);
      auto mr = rnic.verbs().mr(key);
      report.note_check();
      if (!mr.is_ok()) {
        report.fail(name(), "pinned range for MR key " + std::to_string(key) +
                                " has no verbs MR");
        continue;
      }
      const Gva base = mr.value()->base;

      // Probe each PVDMA-block stride of the MR plus its last byte: the
      // eMTT's stored final HPA must match the EPT's *current* translation
      // (a mismatch means the host swapped/remapped the page under a live
      // registration), and the backing block must still be resident.
      for (std::uint64_t probe = 0, done = 0; !done;
           done = (probe == len - 1),
                        probe = std::min(probe + block_size, len - 1)) {
        report.note_check();
        if (!cache.contains(gpa + probe)) {
          report.fail(name(), "eMTT entry for MR " + std::to_string(key) +
                                  " points into unpinned GPA " +
                                  hex((gpa + probe).value()));
          break;
        }
        auto entry = rnic.mtt().lookup(key, base + probe);
        report.note_check();
        if (!entry.is_ok() || !entry.value().translated) {
          report.fail(name(), "MR " + std::to_string(key) +
                                  " lacks an eMTT translation at offset " +
                                  std::to_string(probe));
          break;
        }
        auto current = ept.translate(gpa + probe);
        report.note_check();
        if (!current.is_ok() ||
            current.value().value() != entry.value().target) {
          report.fail(
              name(),
              "eMTT entry for MR " + std::to_string(key) + " stores HPA " +
                  hex(entry.value().target) + " but EPT now maps GPA " +
                  hex((gpa + probe).value()) + " to " +
                  (current.is_ok() ? hex(current.value().value())
                                   : std::string("<unmapped>")) +
                  " (swapped under a live registration)");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// (d) Transport/QP state legality (§7 spray + RTO rules).
// ---------------------------------------------------------------------------

void TransportAuditor::audit(AuditReport& report) const {
  for (const auto& conn : engine_->connections_) {
    const std::string tag = "conn " + std::to_string(conn->id());

    // In-flight byte accounting matches the outstanding table exactly.
    std::uint64_t outstanding_bytes = 0;
    std::uint64_t max_psn = 0;
    for (const auto& [psn, meta] : conn->outstanding_) {
      outstanding_bytes += meta.bytes;
      max_psn = std::max(max_psn, psn);
    }
    report.note_check();
    if (conn->inflight_bytes_ != outstanding_bytes) {
      report.fail(name(), tag + ": inflight_bytes=" +
                              std::to_string(conn->inflight_bytes_) +
                              " != sum(outstanding)=" +
                              std::to_string(outstanding_bytes));
    }

    // PSNs are allocated monotonically; nothing in flight may carry a PSN
    // the sender has not issued yet.
    report.note_check();
    if (!conn->outstanding_.empty() && max_psn >= conn->next_psn_) {
      report.fail(name(), tag + ": outstanding PSN " + std::to_string(max_psn) +
                              " >= next_psn " +
                              std::to_string(conn->next_psn_));
    }

    // Outstanding data never exceeds the hard window ceiling (admission
    // checks inflight < window before each packet, so the overshoot is at
    // most one MTU above the configured maximum).
    report.note_check();
    if (conn->inflight_bytes_ >
        conn->config_.cc.max_window + conn->config_.mtu) {
      report.fail(name(), tag + ": inflight_bytes=" +
                              std::to_string(conn->inflight_bytes_) +
                              " exceeds max_window+mtu=" +
                              std::to_string(conn->config_.cc.max_window +
                                             conn->config_.mtu));
    }

    // An errored QP holds no in-flight state; a healthy QP arms the RTO
    // timer exactly when unacked packets exist.
    report.note_check();
    if (conn->error_ && !conn->outstanding_.empty()) {
      report.fail(name(), tag + ": QP in error state but " +
                              std::to_string(conn->outstanding_.size()) +
                              " packets still outstanding");
    }
    report.note_check();
    if (!conn->error_ &&
        conn->rto_event_.valid() != !conn->outstanding_.empty()) {
      report.fail(name(),
                  tag + (conn->rto_event_.valid()
                             ? ": RTO timer armed with nothing outstanding"
                             : ": unacked packets but no RTO timer armed"));
    }

    // Per-path accounting sums to the shared total (§9 ablation mode).
    if (conn->config_.per_path_cc) {
      std::uint64_t per_path_sum = 0;
      for (std::uint64_t v : conn->per_path_inflight_) per_path_sum += v;
      report.note_check();
      if (per_path_sum != conn->inflight_bytes_) {
        report.fail(name(), tag + ": per-path inflight sum " +
                                std::to_string(per_path_sum) +
                                " != inflight_bytes " +
                                std::to_string(conn->inflight_bytes_));
      }
    }
  }

  // Receiver-side PSN tracking: the floor is fully compacted (nothing at or
  // below it is still stored) and the recorded high-water mark is sane.
  // rx_ is a hash map; findings must emit in a deterministic order, so
  // walk the connection ids sorted.
  for (const std::uint64_t conn_id : sorted_keys(engine_->rx_)) {
    const auto& rx = engine_->rx_.at(conn_id);
    const std::string tag = "rx conn " + std::to_string(conn_id);
    report.note_check();
    bool below_floor = false;
    // stellar-lint: allow(unordered-iter) order-insensitive: computes one
    // any-below-floor boolean; no per-element emission or scheduling.
    for (std::uint64_t psn : rx.psns_above_floor) {
      if (psn <= rx.psn_floor) {
        below_floor = true;
        break;
      }
    }
    if (below_floor) {
      report.fail(name(), tag + ": PSN set holds entries at or below floor " +
                              std::to_string(rx.psn_floor));
    }
    report.note_check();
    if (rx.any && rx.highest_psn + 1 < rx.psn_floor) {
      report.fail(name(), tag + ": highest_psn " +
                              std::to_string(rx.highest_psn) +
                              " inconsistent with floor " +
                              std::to_string(rx.psn_floor));
    }
  }
}

// ---------------------------------------------------------------------------
// (e) Simulator event-heap sanity.
// ---------------------------------------------------------------------------

namespace {

/// The scheduler-bookkeeping walk shared by SimulatorAuditor (one engine)
/// and ShardedEngineAuditor (each shard, tagged).
void audit_one_simulator(const Simulator& sim, const char* auditor,
                         const std::string& tag, AuditReport& report) {
  const Simulator::HeapStats stats = sim.heap_stats();
  report.note_check();
  if (stats.pending_ids != stats.live_events) {
    report.fail(auditor, tag + "live_events=" +
                             std::to_string(stats.live_events) +
                             " != pending entry count " +
                             std::to_string(stats.pending_ids));
  }
  // `queued` is ground truth: the wheel slots, overflow heap, and active
  // bucket are walked, so a counter that drifts from the structures (or an
  // entry lost between them) shows up here.
  report.note_check();
  if (stats.queued != stats.pending_ids + stats.tombstones) {
    report.fail(auditor, tag + "scheduler holds " +
                             std::to_string(stats.queued) +
                             " entries but pending=" +
                             std::to_string(stats.pending_ids) +
                             " + tombstones=" +
                             std::to_string(stats.tombstones) + " = " +
                             std::to_string(stats.pending_ids +
                                            stats.tombstones));
  }
  // Every pool record in use backs exactly one queued entry (pending or
  // tombstoned) — a leak or double-free in the record pool breaks this.
  report.note_check();
  if (stats.allocated_records != stats.pending_ids + stats.tombstones) {
    report.fail(auditor, tag + "record pool has " +
                             std::to_string(stats.allocated_records) +
                             " records in use but pending+tombstones = " +
                             std::to_string(stats.pending_ids +
                                            stats.tombstones));
  }
}

}  // namespace

void SimulatorAuditor::audit(AuditReport& report) const {
  audit_one_simulator(*sim_, name(), "", report);
}

// ---------------------------------------------------------------------------
// (e') Parallel engine: per-shard heap sanity + handoff conservation.
// ---------------------------------------------------------------------------

void ShardedEngineAuditor::audit(AuditReport& report) const {
  for (std::uint32_t s = 0; s < engine_->shards(); ++s) {
    audit_one_simulator(engine_->shard(s), name(),
                        "shard " + std::to_string(s) + ": ", report);
  }
  const ShardedEngine::EngineStats st = engine_->stats();
  // At a merged barrier every posted handoff has been folded into its
  // target wheel: nothing rides a channel across a barrier.
  report.note_check();
  if (st.in_flight != 0) {
    report.fail(name(), "handoffs still in flight at a merged barrier: " +
                            std::to_string(st.in_flight));
  }
  report.note_check();
  if (st.posted != st.drained + st.in_flight) {
    report.fail(name(), "handoff conservation broken: posted=" +
                            std::to_string(st.posted) + " != drained=" +
                            std::to_string(st.drained) + " + in_flight=" +
                            std::to_string(st.in_flight));
  }
}

// ---------------------------------------------------------------------------
// (f) Per-tenant accounting sums to global usage.
// ---------------------------------------------------------------------------

void TenantIsolationAuditor::audit(AuditReport& report) const {
  const Iommu& iommu = host_->pcie().iommu();

  std::uint64_t pinned_sum = 0;
  for (const auto& [tenant, bytes] : iommu.pinned_by_tenant()) {
    pinned_sum += bytes;
  }
  report.note_check();
  if (pinned_sum != iommu.pinned_bytes()) {
    report.fail(name(), "IOMMU pinned bytes: per-tenant sum " +
                            std::to_string(pinned_sum) + " != global " +
                            std::to_string(iommu.pinned_bytes()));
  }

  std::size_t iotlb_sum = 0;
  for (const auto& [tenant, n] : iommu.iotlb_occupancy_by_tenant()) {
    iotlb_sum += n;
  }
  report.note_check();
  if (iotlb_sum != iommu.iotlb_size()) {
    report.fail(name(), "IOTLB occupancy: per-tenant sum " +
                            std::to_string(iotlb_sum) + " != resident " +
                            std::to_string(iommu.iotlb_size()));
  }

  for (std::size_t i = 0; i < host_->rnic_count(); ++i) {
    const Rnic& rnic = host_->rnic(i);
    const std::string where = " (rnic " + std::to_string(i) + ")";

    std::uint64_t mtt_sum = 0;
    for (const auto& [tenant, pages] : rnic.mtt().pages_by_tenant()) {
      mtt_sum += pages;
    }
    report.note_check();
    if (mtt_sum != rnic.mtt().used_pages()) {
      report.fail(name(), "MTT pages: per-tenant sum " +
                              std::to_string(mtt_sum) + " != used " +
                              std::to_string(rnic.mtt().used_pages()) + where);
    }

    std::size_t mr_sum = 0;
    for (const auto& [vm, n] : rnic.verbs().mr_count_by_vm()) mr_sum += n;
    report.note_check();
    if (mr_sum != rnic.verbs().mr_count()) {
      report.fail(name(), "verbs MRs: per-tenant sum " +
                              std::to_string(mr_sum) + " != total " +
                              std::to_string(rnic.verbs().mr_count()) + where);
    }

    std::size_t qp_sum = 0;
    for (const auto& [vm, n] : rnic.verbs().qp_count_by_vm()) qp_sum += n;
    report.note_check();
    if (qp_sum != rnic.verbs().qp_count()) {
      report.fail(name(), "verbs QPs: per-tenant sum " +
                              std::to_string(qp_sum) + " != total " +
                              std::to_string(rnic.verbs().qp_count()) + where);
    }
  }

  const VSwitch& vsw = host_->vswitch();
  std::size_t rule_sum = 0;
  for (const auto& [tenant, n] : vsw.rules_by_tenant()) rule_sum += n;
  report.note_check();
  if (rule_sum != vsw.rule_count()) {
    report.fail(name(), "vSwitch rules: per-tenant sum " +
                            std::to_string(rule_sum) + " != table size " +
                            std::to_string(vsw.rule_count()));
  }
  std::size_t depth_sum = 0;
  for (const auto& [tenant, n] : vsw.queue_depth_by_tenant()) depth_sum += n;
  report.note_check();
  if (depth_sum != vsw.queued_packets()) {
    report.fail(name(), "vSwitch backlog: per-tenant sum " +
                            std::to_string(depth_sum) + " != queued " +
                            std::to_string(vsw.queued_packets()));
  }

  // PVDMA cross-check: with on-demand pinning, each booted VM pins under
  // its own tenant id, so the two ledgers must agree per tenant.
  if (host_->hypervisor().config().use_pvdma) {
    for (VmId vm : host_->hypervisor().booted_vms()) {
      const Pvdma& pvdma = host_->hypervisor().pvdma(vm);
      report.note_check();
      if (pvdma.pinned_bytes() != iommu.pinned_bytes(pvdma.tenant())) {
        report.fail(name(), "VM " + std::to_string(vm) + " PVDMA pins " +
                                std::to_string(pvdma.pinned_bytes()) +
                                " bytes but IOMMU attributes " +
                                std::to_string(iommu.pinned_bytes(
                                    pvdma.tenant())) +
                                " to tenant " +
                                std::to_string(pvdma.tenant()));
      }
    }
  }
}

}  // namespace stellar
