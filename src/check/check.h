// Runtime invariant checking: STELLAR_CHECK / STELLAR_DCHECK / STELLAR_CHECK_OK.
//
// Production RDMA stacks ship auditable correctness tooling (MigrOS-style
// QP/connection-state invariants); a simulator claiming protocol fidelity
// needs the same. These macros replace bare assert(): they format a message,
// carry file:line, and route through a configurable fail handler so tests
// can trap violations instead of dying.
//
//   STELLAR_CHECK(cond)                 always compiled in
//   STELLAR_CHECK(cond, "fmt %d", x)    printf-style context message
//   STELLAR_CHECK_OK(status_or_expr)    requires .is_ok(); prints the status
//   STELLAR_DCHECK(...)                 compiled out unless audits or !NDEBUG
//
// The STELLAR_AUDIT_ENABLED compile flag (CMake option STELLAR_AUDIT) also
// gates STELLAR_AUDIT_ONLY(...), the wrapper hot paths use for the counter
// instrumentation that feeds the invariant auditors (see audit.h). With
// -DSTELLAR_AUDIT=OFF everything inside it vanishes from the build.
#pragma once

#include <functional>
#include <string>

#include "common/log.h"     // detail::format
#include "common/status.h"  // STELLAR_CHECK_OK over Status / StatusOr

#ifndef STELLAR_AUDIT_ENABLED
#define STELLAR_AUDIT_ENABLED 0
#endif

#if STELLAR_AUDIT_ENABLED
#define STELLAR_AUDIT_ONLY(...) __VA_ARGS__
#else
#define STELLAR_AUDIT_ONLY(...)
#endif

namespace stellar {

/// Everything known about one failed check, as handed to the fail handler.
struct CheckFailure {
  const char* file = nullptr;
  int line = 0;
  const char* condition = nullptr;  // stringified expression
  std::string message;              // formatted context ("" if none given)

  std::string to_string() const;
};

/// Called on every failed STELLAR_CHECK*. If the handler returns (instead
/// of throwing / longjmp-ing), the process aborts — a violated invariant
/// must never be silently survived.
using CheckFailHandler = std::function<void(const CheckFailure&)>;

/// Install a new fail handler; returns the previous one. Passing nullptr
/// restores the default (print to stderr, abort). Tests use this to trap
/// violations:
///   set_check_fail_handler([](const CheckFailure& f) { throw f; });
CheckFailHandler set_check_fail_handler(CheckFailHandler handler);

namespace detail {

/// Dispatch to the installed handler, then abort if it returns.
[[noreturn]] void check_failed(const char* file, int line,
                               const char* condition, std::string message);

inline std::string check_message() { return {}; }
template <typename... Args>
std::string check_message(const char* fmt, Args&&... args) {
  return format(fmt, std::forward<Args>(args)...);
}

inline const Status& check_status(const Status& s) { return s; }
template <typename T>
const Status& check_status(const StatusOr<T>& s) {
  return s.status();
}

}  // namespace detail
}  // namespace stellar

#define STELLAR_CHECK(cond, ...)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::stellar::detail::check_failed(                                  \
          __FILE__, __LINE__, #cond,                                    \
          ::stellar::detail::check_message(__VA_ARGS__));               \
    }                                                                   \
  } while (0)

/// Evaluates `expr` exactly once; fails unless `.is_ok()`, including the
/// status text in the report. Works with both Status and StatusOr<T>.
#define STELLAR_CHECK_OK(expr, ...)                                     \
  do {                                                                  \
    const auto& stellar_check_ok_result_ = (expr);                      \
    if (!stellar_check_ok_result_.is_ok()) {                            \
      ::stellar::detail::check_failed(                                  \
          __FILE__, __LINE__, #expr " is OK",                           \
          ::stellar::detail::check_status(stellar_check_ok_result_)     \
                  .to_string() +                                        \
              " " + ::stellar::detail::check_message(__VA_ARGS__));     \
    }                                                                   \
  } while (0)

#if STELLAR_AUDIT_ENABLED || !defined(NDEBUG)
#define STELLAR_DCHECK(cond, ...) STELLAR_CHECK(cond, ##__VA_ARGS__)
#define STELLAR_DCHECK_OK(expr, ...) STELLAR_CHECK_OK(expr, ##__VA_ARGS__)
#else
// Compiled out: the condition is parsed (stays valid C++) but never
// evaluated, so it carries no runtime cost and no side effects.
#define STELLAR_DCHECK(cond, ...) \
  do {                            \
    if (false) {                  \
      (void)(cond);               \
    }                             \
  } while (0)
#define STELLAR_DCHECK_OK(expr, ...) \
  do {                               \
    if (false) {                     \
      (void)(expr);                  \
    }                                \
  } while (0)
#endif
