// Lightweight statistics accumulators for benchmark reporting:
// running mean/min/max and a reservoir-free exact-percentile recorder.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace stellar {

/// Streaming summary: count / mean / min / max / stddev (Welford).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores every sample; exact percentiles on demand. Benchmarks record at
/// most a few million samples so this stays cheap and precise.
class PercentileRecorder {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }

  /// q in [0, 1]; nearest-rank percentile. Returns 0 when empty.
  double percentile(double q) {
    if (samples_.empty()) return 0.0;
    sort_if_needed();
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  double median() { return percentile(0.5); }
  double p99() { return percentile(0.99); }
  double max() { return percentile(1.0); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  void reset() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void sort_if_needed() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace stellar
