// Deterministic byte-stable snapshot encoding for control-plane state.
//
// The vStellar robustness story (backend hot-upgrade, VM live migration)
// rests on serializing guest-visible state into bytes that are *identical*
// across runs and across a serialize -> restore -> serialize round trip.
// The encoding is therefore deliberately primitive: fixed-width
// little-endian integers, length-prefixed strings, and tagged sections —
// no pointers, no varints, no platform-dependent layout. Components that
// keep state in unordered containers must emit entries in sorted key order.
//
// Doubles are encoded by bit pattern (IEEE-754 via memcpy), so a restored
// value is bit-exact and the round trip stays byte-identical.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/units.h"

namespace stellar {

/// Four-character section tags make snapshot corruption diagnosable: a
/// reader that desyncs fails at the next section boundary with the tag it
/// expected, instead of silently reading garbage integers.
constexpr std::uint32_t snapshot_tag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

class SnapshotWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }

  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void time(SimTime t) { i64(t.ps()); }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }

  void section(std::uint32_t tag) { u32(tag); }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    // Byte-order note: the simulation only targets little-endian hosts (the
    // whole repo assumes it); memcpy of the native representation is the
    // deterministic encoding on every supported platform.
    buf_.append(c, n);
  }

  std::string buf_;
};

class SnapshotReader {
 public:
  explicit SnapshotReader(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  bool b() { return u8() != 0; }
  std::uint16_t u16() {
    std::uint16_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::int64_t i64() {
    std::int64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  SimTime time() { return SimTime::picos(i64()); }

  std::string str() {
    const std::uint32_t n = u32();
    if (pos_ + n > bytes_.size()) {
      failed_ = true;
      return {};
    }
    std::string out(bytes_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  /// Consume a section marker, failing loudly on a tag mismatch (the
  /// reader is desynchronized or the snapshot is from a different layout).
  Status expect_section(std::uint32_t tag) {
    const std::uint32_t got = u32();
    if (failed_) return out_of_range("snapshot: truncated before section");
    if (got != tag) {
      return invalid_argument("snapshot: section tag mismatch (got " +
                              std::to_string(got) + ", want " +
                              std::to_string(tag) + ")");
    }
    return Status::ok();
  }

  /// False once any read ran past the end of the buffer.
  bool ok() const { return !failed_; }
  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

  Status finish() const {
    if (failed_) return out_of_range("snapshot: truncated");
    if (!exhausted()) {
      return invalid_argument("snapshot: trailing bytes (" +
                              std::to_string(remaining()) + ")");
    }
    return Status::ok();
  }

 private:
  void raw(void* p, std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      failed_ = true;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// FNV-1a 64-bit digest, rendered as fixed-width hex: the byte-stability
/// fingerprint benches embed in their JSON output.
inline std::string snapshot_digest(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xF];
    h >>= 4;
  }
  return out;
}

}  // namespace stellar
