// Minimal Status / StatusOr error-handling vocabulary.
//
// Hot simulation paths return Status codes instead of throwing; exceptions
// are reserved for unrecoverable configuration errors at construction time
// (per C++ Core Guidelines E.2/E.3: use exceptions for errors that cannot be
// handled locally, codes for expected outcomes).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace stellar {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,   // capacity limits: LUT full, VF limit, MTT full ...
  kFailedPrecondition,  // e.g. QP not in RTS state
  kPermissionDenied,    // protection-domain violation
  kUnavailable,         // device reset in progress, link down
  kOutOfRange,
  kInternal,
};

const char* status_code_name(StatusCode code);

/// Value-semantic error carrier: a code plus a human-readable message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  explicit operator bool() const { return is_ok(); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status permission_denied(std::string msg) {
  return {StatusCode::kPermissionDenied, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status out_of_range(std::string msg) {
  return {StatusCode::kOutOfRange, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

/// Status-or-value. Intentionally tiny: exactly what the simulation needs.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.is_ok() && "StatusOr from OK status requires a value");
  }

  bool is_ok() const { return status_.is_ok(); }
  explicit operator bool() const { return is_ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  T& value() & {
    assert(is_ok());
    return *value_;
  }
  T&& value() && {
    assert(is_ok());
    return *std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace stellar
