#include "common/log.h"

#include <cstring>

namespace stellar {

namespace {
LogLevel g_threshold = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

namespace detail {
void log_line(LogLevel level, const char* file, int line, std::string msg) {
  const char* base = std::strrchr(file, '/');
  base = base ? base + 1 : file;
  std::fprintf(stderr, "[%s] %s:%d %s\n", level_name(level), base, line,
               msg.c_str());
}
}  // namespace detail

}  // namespace stellar
