// Deterministic iteration over unordered associative containers.
//
// std::unordered_{map,set} iteration order is implementation-defined and
// changes with load factor and libstdc++ version, so any loop that feeds an
// emitter (to_json, save_state, audit findings) or schedules events must
// not walk one directly — that is stellar-lint rule `unordered-iter`. The
// fix is always the same collect-then-sort idiom; these helpers are that
// idiom, named so call sites read as intent.
#pragma once

#include <algorithm>
#include <vector>

namespace stellar {

/// All keys of an (unordered) map, ascending. Iterate this, then look the
/// values up, to visit a hash map in deterministic order.
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& [k, v] : m) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// All elements of an (unordered) set, ascending.
template <typename Set>
std::vector<typename Set::key_type> sorted_elems(const Set& s) {
  std::vector<typename Set::key_type> elems(s.begin(), s.end());
  std::sort(elems.begin(), elems.end());
  return elems;
}

}  // namespace stellar
