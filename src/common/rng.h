// Deterministic, fast PRNG for the simulation (xoshiro256**).
//
// std::mt19937_64 is avoided on hot paths: xoshiro is ~3x faster and its
// state is 32 bytes, so every flow / selector can own an independent,
// seeded stream, keeping experiments reproducible run-to-run.
#pragma once

#include <cstdint>

namespace stellar {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is < 2^-32 for all bounds the simulation uses.
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Stateless 64-bit mix, used for ECMP-style header hashing where the same
/// input must always map to the same output (unlike Rng draws).
constexpr std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return hash_mix(a ^ (b + 0x9E3779B97F4A7C15ull + (a << 6) + (a >> 2)));
}

}  // namespace stellar
