#include "common/units.h"

#include <array>
#include <cstdio>

namespace stellar {

// Float formatting is fine here: to_string renders for humans (CLI/log
// lines); machine-readable emitters serialize integer picoseconds
// (stellar-lint rule float-format exempts to_string by name).
std::string SimTime::to_string() const {
  char buf[64];
  if (ps_ < 1000) {
    std::snprintf(buf, sizeof(buf), "%ld ps", static_cast<long>(ps_));
  } else if (ps_ < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ns", ns());
  } else if (ps_ < 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f us", us());
  } else if (ps_ < 1'000'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ms());
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", sec());
  }
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB",
                                                         "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[32];
  if (i == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kSuffix[i]);
  }
  return buf;
}

}  // namespace stellar
