// Strong-typed units used throughout the Stellar simulation.
//
// All simulated time is carried as integer picoseconds to keep event
// ordering exact (no floating-point drift when dividing bandwidths).
// Helper literals/constructors are provided for the common magnitudes.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace stellar {

// ---------------------------------------------------------------------------
// Identity
// ---------------------------------------------------------------------------

/// One tenant (a VM / RunD container) as the unit of isolation, accounting
/// and QoS. Numerically identical to VmId (rnic/verbs.h) — defined here, at
/// the bottom of the layering DAG, so memory/pcie/net layers can attribute
/// shared-resource usage without depending on the virtualization stack.
using TenantId = std::uint32_t;

/// Usage that predates the tenant layer (or belongs to the host itself) is
/// attributed to tenant 0, mirroring kHostVm.
inline constexpr TenantId kHostTenant = 0;

// ---------------------------------------------------------------------------
// Time
// ---------------------------------------------------------------------------

/// A point in (or duration of) simulated time, in integer picoseconds.
/// Picosecond resolution lets us represent per-byte serialization delays of
/// 400 Gbps links (20 ps/byte) exactly.
class SimTime {
 public:
  constexpr SimTime() = default;
  static constexpr SimTime picos(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime nanos(std::int64_t v) { return SimTime{v * 1000}; }
  static constexpr SimTime micros(std::int64_t v) {
    return SimTime{v * 1'000'000};
  }
  static constexpr SimTime millis(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  static constexpr SimTime seconds(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e12)};
  }
  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double us() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double ms() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double sec() const { return static_cast<double>(ps_) / 1e12; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ps_ + o.ps_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ps_ - o.ps_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ps_ * k}; }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime{ps_ / k}; }
  constexpr double operator/(SimTime o) const {
    return static_cast<double>(ps_) / static_cast<double>(o.ps_);
  }

  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

// ---------------------------------------------------------------------------
// Data sizes
// ---------------------------------------------------------------------------

constexpr std::uint64_t operator""_B(unsigned long long v) { return v; }
constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return v * 1024ull;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull;
}
constexpr std::uint64_t operator""_TiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull * 1024ull;
}

/// Pretty "4 KiB" / "1.5 GiB" formatting for logs and bench tables.
std::string format_bytes(std::uint64_t bytes);

// ---------------------------------------------------------------------------
// Bandwidth
// ---------------------------------------------------------------------------

/// Link/bus bandwidth. Stored as bits-per-second; converts byte counts to
/// serialization delays without losing integer exactness for common rates.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  static constexpr Bandwidth bits_per_sec(std::int64_t v) {
    return Bandwidth{v};
  }
  static constexpr Bandwidth gbps(double v) {
    return Bandwidth{static_cast<std::int64_t>(v * 1e9)};
  }

  constexpr std::int64_t bps() const { return bps_; }
  constexpr double as_gbps() const { return static_cast<double>(bps_) / 1e9; }
  constexpr double gigabytes_per_sec() const {
    return static_cast<double>(bps_) / 8e9;
  }

  /// Time to serialize `bytes` at this rate.
  constexpr SimTime transmit_time(std::uint64_t bytes) const {
    // ps = bytes * 8 bits * 1e12 / bps. Split to avoid overflow for large
    // byte counts: 8e12/bps is ps-per-byte (may not be integral; use i128).
    const __int128 ps =
        static_cast<__int128>(bytes) * 8 * 1'000'000'000'000ll / bps_;
    return SimTime::picos(static_cast<std::int64_t>(ps));
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;

 private:
  constexpr explicit Bandwidth(std::int64_t bps) : bps_(bps) {}
  std::int64_t bps_ = 0;
};

}  // namespace stellar
