// Annotated synchronization primitives for state the parallel (PDES)
// engine will share across shards.
//
//  * Mutex / MutexLock — std::mutex wrapped with the clang thread-safety
//    capability annotations, so `STELLAR_GUARDED_BY(mu_)` members are
//    machine-checked on clang builds. Used today by the obs layer
//    (MetricsRegistry / Tracer), whose counters may be driven from worker
//    threads in the threaded TSan smoke.
//
//  * SingleOwner — a *virtual* capability for state that is deliberately
//    NOT locked: one shard (today: the one simulation thread) owns it
//    outright. `assert_held()` tells the static analysis the capability is
//    held, and in audit builds additionally enforces the discipline at
//    runtime: the first thread to touch the object claims it, and any
//    access from another thread aborts with a diagnostic. This is how the
//    Simulator, AuditRegistry, FaultInjector and FaultTelemetry document
//    "shard-local, no locks" in a way TSan and -Wthread-safety can check.
//
// This header sits in src/common and must not depend on src/check, so the
// runtime tripwire reports via fprintf+abort rather than STELLAR_CHECK.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/thread_annotations.h"

#ifndef STELLAR_AUDIT_ENABLED
#define STELLAR_AUDIT_ENABLED 0
#endif

namespace stellar {

/// std::mutex with capability annotations. Non-reentrant.
class STELLAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STELLAR_ACQUIRE() { mu_.lock(); }
  void unlock() STELLAR_RELEASE() { mu_.unlock(); }
  bool try_lock() STELLAR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (the only way hot paths should take one).
class STELLAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STELLAR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() STELLAR_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Virtual capability: exactly one thread (shard) may touch the guarded
/// state, and it never blocks — there is no lock to take. Annotate members
/// with STELLAR_GUARDED_BY(owner_), private helpers with
/// STELLAR_REQUIRES(owner_), and open every public entry point with
/// owner_.assert_held().
///
/// Audit builds enforce the claim at runtime (first toucher owns; a second
/// thread aborts). Release builds compile assert_held() to nothing.
class STELLAR_CAPABILITY("single-owner") SingleOwner {
 public:
  SingleOwner() = default;
  SingleOwner(const SingleOwner&) = delete;
  SingleOwner& operator=(const SingleOwner&) = delete;

  void assert_held() const STELLAR_ASSERT_CAPABILITY() {
#if STELLAR_AUDIT_ENABLED
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id owner = owner_.load(std::memory_order_relaxed);
    if (owner == std::thread::id{}) {
      // First access claims ownership; CAS so two racing claimants cannot
      // both win (the loser trips the check below).
      if (owner_.compare_exchange_strong(owner, self,
                                         std::memory_order_acq_rel)) {
        return;
      }
    }
    if (owner != self &&
        owner_.load(std::memory_order_acquire) != self) {
      std::fprintf(stderr,
                   "stellar: SingleOwner violation — state owned by another "
                   "thread was accessed without a hand-off (release()).\n");
      std::abort();
    }
#endif
  }

  /// Explicit ownership hand-off (e.g. live migration moving a shard to a
  /// new worker): the current owner renounces, the next toucher claims.
  void release() const STELLAR_RELEASE() {
#if STELLAR_AUDIT_ENABLED
    owner_.store(std::thread::id{}, std::memory_order_release);
#endif
  }

 private:
#if STELLAR_AUDIT_ENABLED
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace stellar
