// Clang thread-safety annotation macros (absl style, STELLAR_ prefix).
//
// These annotate the locking contract of shared state so clang's
// -Wthread-safety analysis checks it at compile time; the repo's clang CI
// gate (tools/ci_checks.sh) promotes the whole diagnostic group to an
// error. On compilers without the attribute (gcc builds in this container)
// every macro expands to nothing, so annotations are free to apply
// everywhere.
//
// Today the engine is single-threaded; the annotations document which
// state the planned parallel (PDES) engine will share across shards and
// under which capability — so the locking discipline is machine-checked
// *before* the parallel scheduler lands, not debugged after a flaky soak.
// docs/STATIC_ANALYSIS.md covers the conventions; src/common/mutex.h has
// the annotated Mutex / MutexLock / SingleOwner capability types.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define STELLAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STELLAR_THREAD_ANNOTATION(x)
#endif

/// Class attribute: instances are capabilities (lockable / ownable).
#define STELLAR_CAPABILITY(name) \
  STELLAR_THREAD_ANNOTATION(capability(name))

/// Class attribute: RAII object that acquires a capability in its
/// constructor and releases it in its destructor.
#define STELLAR_SCOPED_CAPABILITY \
  STELLAR_THREAD_ANNOTATION(scoped_lockable)

/// Data member attribute: access requires holding `x`.
#define STELLAR_GUARDED_BY(x) STELLAR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member attribute: the *pointee* is guarded by `x`.
#define STELLAR_PT_GUARDED_BY(x) STELLAR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: caller must hold the capability (exclusively).
#define STELLAR_REQUIRES(...) \
  STELLAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: caller must hold the capability (shared).
#define STELLAR_REQUIRES_SHARED(...) \
  STELLAR_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability (exclusively).
#define STELLAR_ACQUIRE(...) \
  STELLAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function attribute: acquires the capability (shared).
#define STELLAR_ACQUIRE_SHARED(...) \
  STELLAR_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function attribute: releases the capability.
#define STELLAR_RELEASE(...) \
  STELLAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attribute: releases a shared hold of the capability.
#define STELLAR_RELEASE_SHARED(...) \
  STELLAR_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attribute: acquires the capability iff the return value is
/// `b` (e.g. try_lock).
#define STELLAR_TRY_ACQUIRE(b, ...) \
  STELLAR_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function attribute: caller must NOT hold the capability (deadlock guard).
#define STELLAR_EXCLUDES(...) \
  STELLAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: the analysis treats the capability as held after the
/// call returns (runtime-checked assertion points, e.g.
/// SingleOwner::assert_held).
#define STELLAR_ASSERT_CAPABILITY(...) \
  STELLAR_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/// Function attribute: returns a reference to the named capability.
#define STELLAR_RETURN_CAPABILITY(x) \
  STELLAR_THREAD_ANNOTATION(lock_returned(x))

/// Function attribute: opt this function out of the analysis (rare; justify
/// at the use site).
#define STELLAR_NO_THREAD_SAFETY_ANALYSIS \
  STELLAR_THREAD_ANNOTATION(no_thread_safety_analysis)
