// Tiny leveled logger. Disabled below the compile/runtime threshold so the
// simulator's inner loops carry no formatting cost by default.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace stellar {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global runtime threshold; defaults to kWarn so unit tests stay quiet.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_line(LogLevel level, const char* file, int line, std::string msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}
inline std::string format(const char* msg) { return msg; }
}  // namespace detail

#define STELLAR_LOG(level, ...)                                       \
  do {                                                                \
    if (level >= ::stellar::log_threshold()) {                        \
      ::stellar::detail::log_line(level, __FILE__, __LINE__,          \
                                  ::stellar::detail::format(__VA_ARGS__)); \
    }                                                                 \
  } while (0)

#define LOG_DEBUG(...) STELLAR_LOG(::stellar::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) STELLAR_LOG(::stellar::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) STELLAR_LOG(::stellar::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) STELLAR_LOG(::stellar::LogLevel::kError, __VA_ARGS__)

}  // namespace stellar
