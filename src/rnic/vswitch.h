// RNIC vSwitch hardware flow-steering model — the baseline component behind
// the paper's Problem (5): TCP and RDMA share one ordered rule pipeline, so
// RDMA lookup latency depends on how many (and where) TCP rules sit in the
// table, and one tenant's TCP churn perturbs another tenant's RDMA.
//
// Stellar's fix is architectural (RDMA never enters this pipeline); the
// model exists so tests and benches can demonstrate the interference — and,
// for the multi-tenant work (docs/TENANCY.md), so per-tenant QoS can bound
// it. Each tenant may carry a TenantQos: a rule-slot quota (stops table
// churn from pushing neighbors' rules deep into the walk), a token-bucket
// rate (over-rate senders are delayed, never their neighbors), and a WDRR
// weight consumed by the explicit enqueue()/dequeue() egress scheduler.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace stellar {

enum class TrafficClass : std::uint8_t { kTcp, kRdma };

struct SteeringRule {
  std::uint64_t id = 0;
  TrafficClass match = TrafficClass::kTcp;
  std::uint32_t tenant = 0;
  bool vxlan_encap = false;
  // The driver fills VxLAN outer MACs from its routing table; a local
  // forwarding route yields zero MACs — valid for the kernel stack, fatal
  // for RDMA via the ToR (the cross-RNIC bug in §3.1(5)).
  std::uint64_t outer_src_mac = 0;
  std::uint64_t outer_dst_mac = 0;
};

/// Per-tenant QoS contract enforced by the vSwitch. Zero-valued fields mean
/// "uncapped" so tenants without a contract behave exactly as before.
struct TenantQos {
  std::uint32_t weight = 1;          // WDRR share (relative)
  Bandwidth rate{};                  // token-bucket rate; 0 = unlimited
  std::uint64_t burst_bytes = 0;     // bucket depth; 0 with a rate = no burst
  std::size_t max_rules = 0;         // rule-slot quota; 0 = uncapped
  std::size_t max_queue_packets = 0; // egress backlog cap; 0 = uncapped
};

class VSwitch {
 public:
  struct Config {
    std::size_t capacity = 4096;                 // hardware rule slots
    SimTime base_latency = SimTime::nanos(100);  // pipeline entry cost
    SimTime per_rule_latency = SimTime::nanos(4);  // per ordered entry walked
    std::uint64_t wdrr_quantum_bytes = 4096;     // DRR quantum per weight unit
  };

  VSwitch() : config_(Config{}) {}
  explicit VSwitch(Config config) : config_(config) {}

  // -- Rule table ------------------------------------------------------------

  /// Append a rule (hardware tables are priority-ordered; insertion order
  /// is match order, which is exactly how the production incident arose:
  /// TCP entries landed ahead of RDMA entries). A tenant with a rule quota
  /// that is already at it is shed loudly — its churn cannot push other
  /// tenants' rules deeper into the walk.
  Status add_rule(SteeringRule rule) {
    auto qos = qos_.find(rule.tenant);
    if (qos != qos_.end() && qos->second.max_rules != 0 &&
        rule_count(rule.tenant) >= qos->second.max_rules) {
      return failed_precondition("VSwitch: tenant rule quota exceeded");
    }
    if (rules_.size() >= config_.capacity) {
      return resource_exhausted("VSwitch: rule table full");
    }
    rules_.push_back(rule);
    ++rules_by_tenant_[rule.tenant];
    return Status::ok();
  }

  Status remove_rule(std::uint64_t id) {
    for (auto it = rules_.begin(); it != rules_.end(); ++it) {
      if (it->id == id) {
        debit_rule(it->tenant);
        rules_.erase(it);
        return Status::ok();
      }
    }
    return not_found("VSwitch: unknown rule");
  }

  /// Drop every rule owned by `tenant` (tenant-kill reclaim path).
  std::size_t remove_tenant_rules(TenantId tenant) {
    std::size_t removed = 0;
    for (auto it = rules_.begin(); it != rules_.end();) {
      if (it->tenant == tenant) {
        it = rules_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    rules_by_tenant_.erase(tenant);
    return removed;
  }

  struct LookupResult {
    const SteeringRule* rule = nullptr;
    SimTime latency;
    std::size_t rules_walked = 0;
  };

  /// First-match lookup; latency grows with the rule's position.
  StatusOr<LookupResult> lookup(TrafficClass cls, std::uint32_t tenant) const {
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].match == cls && rules_[i].tenant == tenant) {
        return LookupResult{
            &rules_[i],
            config_.base_latency +
                config_.per_rule_latency * static_cast<std::int64_t>(i + 1),
            i + 1};
      }
    }
    return not_found("VSwitch: no matching rule");
  }

  std::size_t rule_count() const { return rules_.size(); }
  std::size_t rule_count(TenantId tenant) const {
    auto it = rules_by_tenant_.find(tenant);
    return it == rules_by_tenant_.end() ? 0 : it->second;
  }
  std::size_t capacity() const { return config_.capacity; }

  // -- Per-tenant QoS --------------------------------------------------------

  void set_qos(TenantId tenant, TenantQos qos) { qos_[tenant] = qos; }
  void clear_qos(TenantId tenant) { qos_.erase(tenant); }
  const TenantQos* qos(TenantId tenant) const {
    auto it = qos_.find(tenant);
    return it == qos_.end() ? nullptr : &it->second;
  }

  struct ForwardResult {
    SimTime latency;           // rule walk + any token-bucket delay
    std::size_t rules_walked = 0;
    bool throttled = false;    // token bucket forced a delay
    SimTime throttle_delay;    // the delayed portion of `latency`
  };

  /// One-shot forwarding decision at sim time `now`: rule lookup, then the
  /// tenant's token bucket. Over-rate tenants are *delayed* (throttled), not
  /// failed — graceful degradation charges the wait to the sender alone.
  StatusOr<ForwardResult> forward(TrafficClass cls, TenantId tenant,
                                  std::uint64_t bytes, SimTime now) {
    auto hit = lookup(cls, tenant);
    if (!hit.is_ok()) return hit.status();
    ForwardResult out{hit.value().latency, hit.value().rules_walked, false,
                      SimTime::zero()};
    auto qos = qos_.find(tenant);
    if (qos != qos_.end() && qos->second.rate.bps() > 0) {
      out.throttle_delay = bucket_consume(tenant, qos->second, bytes, now);
      if (out.throttle_delay > SimTime::zero()) {
        out.throttled = true;
        ++throttle_events_;
        ++throttles_by_tenant_[tenant];
        out.latency += out.throttle_delay;
      }
    }
    forwarded_bytes_by_tenant_[tenant] += bytes;
    return out;
  }

  // -- WDRR egress scheduler -------------------------------------------------

  struct QueuedPacket {
    TenantId tenant = kHostTenant;
    std::uint64_t bytes = 0;
    std::uint64_t cookie = 0;  // caller-defined identity
  };

  /// Queue one packet for weighted egress. A tenant over its backlog cap is
  /// shed with kResourceExhausted — its flood fills its own queue only.
  Status enqueue(TenantId tenant, std::uint64_t bytes, std::uint64_t cookie) {
    auto qos = qos_.find(tenant);
    auto& q = queues_[tenant];
    if (qos != qos_.end() && qos->second.max_queue_packets != 0 &&
        q.packets.size() >= qos->second.max_queue_packets) {
      ++sheds_by_tenant_[tenant];
      return resource_exhausted("VSwitch: tenant egress queue full");
    }
    q.packets.push_back(QueuedPacket{tenant, bytes, cookie});
    ++queued_packets_;
    return Status::ok();
  }

  /// Serve the next packet in weighted deficit round-robin order. Tenants
  /// are visited in ascending TenantId order from the last served position;
  /// each visit grants quantum*weight credit, and a visited tenant keeps
  /// serving while its deficit covers its head-of-line packet (classic DRR).
  /// Deterministic by construction.
  std::optional<QueuedPacket> dequeue() {
    if (queued_packets_ == 0) return std::nullopt;
    while (true) {
      if (visiting_) {
        auto cur = queues_.find(cursor_);
        if (cur != queues_.end() && !cur->second.packets.empty() &&
            cur->second.deficit >= cur->second.packets.front().bytes) {
          return serve(cur);
        }
        visiting_ = false;
      }
      auto it = queues_.upper_bound(cursor_);
      if (it == queues_.end()) it = queues_.begin();
      cursor_ = it->first;
      if (it->second.packets.empty()) {
        queues_.erase(it);
        continue;
      }
      it->second.deficit += config_.wdrr_quantum_bytes * weight_of(it->first);
      if (it->second.deficit >= it->second.packets.front().bytes) {
        visiting_ = true;
        return serve(it);
      }
      // Deficit carries to this tenant's next visit.
    }
  }

  std::size_t queued_packets() const { return queued_packets_; }
  std::size_t queue_depth(TenantId tenant) const {
    auto it = queues_.find(tenant);
    return it == queues_.end() ? 0 : it->second.packets.size();
  }
  std::map<TenantId, std::size_t> queue_depth_by_tenant() const {
    std::map<TenantId, std::size_t> out;
    for (const auto& [tenant, q] : queues_) {
      if (!q.packets.empty()) out[tenant] = q.packets.size();
    }
    return out;
  }
  const std::map<TenantId, std::size_t>& rules_by_tenant() const {
    return rules_by_tenant_;
  }

  // -- Introspection ---------------------------------------------------------

  std::uint64_t throttle_events() const { return throttle_events_; }
  std::uint64_t throttles(TenantId tenant) const {
    auto it = throttles_by_tenant_.find(tenant);
    return it == throttles_by_tenant_.end() ? 0 : it->second;
  }
  std::uint64_t sheds(TenantId tenant) const {
    auto it = sheds_by_tenant_.find(tenant);
    return it == sheds_by_tenant_.end() ? 0 : it->second;
  }
  std::uint64_t forwarded_bytes(TenantId tenant) const {
    auto it = forwarded_bytes_by_tenant_.find(tenant);
    return it == forwarded_bytes_by_tenant_.end() ? 0 : it->second;
  }
  std::uint64_t dequeues(TenantId tenant) const {
    auto it = dequeues_by_tenant_.find(tenant);
    return it == dequeues_by_tenant_.end() ? 0 : it->second;
  }
  const std::map<TenantId, std::uint64_t>& forwarded_by_tenant() const {
    return forwarded_bytes_by_tenant_;
  }

 private:
  struct TenantQueue {
    std::deque<QueuedPacket> packets;
    std::uint64_t deficit = 0;
  };

  struct Bucket {
    std::uint64_t tokens = 0;
    SimTime last_refill;
    bool primed = false;
  };

  std::optional<QueuedPacket> serve(
      std::map<TenantId, TenantQueue>::iterator it) {
    QueuedPacket pkt = it->second.packets.front();
    it->second.packets.pop_front();
    it->second.deficit -= pkt.bytes;
    if (it->second.packets.empty()) {
      // Empty queue forfeits its residual credit (standard DRR) and its
      // visit: the next dequeue() advances to the following tenant.
      queues_.erase(it);
      visiting_ = false;
    }
    --queued_packets_;
    ++dequeues_by_tenant_[pkt.tenant];
    return pkt;
  }

  std::uint32_t weight_of(TenantId tenant) const {
    auto it = qos_.find(tenant);
    return it == qos_.end() || it->second.weight == 0 ? 1 : it->second.weight;
  }

  void debit_rule(TenantId tenant) {
    auto it = rules_by_tenant_.find(tenant);
    if (it == rules_by_tenant_.end()) return;
    if (--it->second == 0) rules_by_tenant_.erase(it);
  }

  static std::uint64_t bytes_accrued(Bandwidth rate, SimTime dt) {
    // bytes = bps * ps / (8 * 1e12); i128 to survive long idle gaps.
    const __int128 b = static_cast<__int128>(rate.bps()) * dt.ps() /
                       (8 * static_cast<__int128>(1'000'000'000'000ll));
    return static_cast<std::uint64_t>(b);
  }

  /// Refill and debit the tenant's token bucket; returns the delay until the
  /// packet's tokens are available (zero when it passes immediately).
  SimTime bucket_consume(TenantId tenant, const TenantQos& qos,
                         std::uint64_t bytes, SimTime now) {
    Bucket& b = buckets_[tenant];
    if (!b.primed) {
      b.tokens = qos.burst_bytes;
      b.last_refill = now;
      b.primed = true;
    }
    if (now > b.last_refill) {
      const std::uint64_t add = bytes_accrued(qos.rate, now - b.last_refill);
      b.tokens = b.tokens + add > qos.burst_bytes ? qos.burst_bytes
                                                  : b.tokens + add;
      b.last_refill = now;
    }
    if (b.tokens >= bytes) {
      b.tokens -= bytes;
      return SimTime::zero();
    }
    const std::uint64_t deficit = bytes - b.tokens;
    b.tokens = 0;
    const SimTime wait = qos.rate.transmit_time(deficit);
    // The bucket is exactly empty at now+wait; future refills start there.
    b.last_refill = now + wait;
    return wait;
  }

  Config config_;
  std::vector<SteeringRule> rules_;
  std::map<TenantId, std::size_t> rules_by_tenant_;
  std::map<TenantId, TenantQos> qos_;
  std::map<TenantId, Bucket> buckets_;
  std::map<TenantId, TenantQueue> queues_;
  TenantId cursor_ = 0;   // last visited tenant (WDRR position)
  bool visiting_ = false;  // cursor_'s queue may keep serving on its deficit
  std::size_t queued_packets_ = 0;
  std::uint64_t throttle_events_ = 0;
  std::map<TenantId, std::uint64_t> throttles_by_tenant_;
  std::map<TenantId, std::uint64_t> sheds_by_tenant_;
  std::map<TenantId, std::uint64_t> forwarded_bytes_by_tenant_;
  std::map<TenantId, std::uint64_t> dequeues_by_tenant_;
};

}  // namespace stellar
