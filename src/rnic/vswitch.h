// RNIC vSwitch hardware flow-steering model — the baseline component behind
// the paper's Problem (5): TCP and RDMA share one ordered rule pipeline, so
// RDMA lookup latency depends on how many (and where) TCP rules sit in the
// table, and one tenant's TCP churn perturbs another tenant's RDMA.
//
// Stellar's fix is architectural (RDMA never enters this pipeline); the
// model exists so tests and benches can demonstrate the interference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace stellar {

enum class TrafficClass : std::uint8_t { kTcp, kRdma };

struct SteeringRule {
  std::uint64_t id = 0;
  TrafficClass match = TrafficClass::kTcp;
  std::uint32_t tenant = 0;
  bool vxlan_encap = false;
  // The driver fills VxLAN outer MACs from its routing table; a local
  // forwarding route yields zero MACs — valid for the kernel stack, fatal
  // for RDMA via the ToR (the cross-RNIC bug in §3.1(5)).
  std::uint64_t outer_src_mac = 0;
  std::uint64_t outer_dst_mac = 0;
};

class VSwitch {
 public:
  struct Config {
    std::size_t capacity = 4096;                 // hardware rule slots
    SimTime base_latency = SimTime::nanos(100);  // pipeline entry cost
    SimTime per_rule_latency = SimTime::nanos(4);  // per ordered entry walked
  };

  VSwitch() : config_(Config{}) {}
  explicit VSwitch(Config config) : config_(config) {}

  /// Append a rule (hardware tables are priority-ordered; insertion order
  /// is match order, which is exactly how the production incident arose:
  /// TCP entries landed ahead of RDMA entries).
  Status add_rule(SteeringRule rule) {
    if (rules_.size() >= config_.capacity) {
      return resource_exhausted("VSwitch: rule table full");
    }
    rules_.push_back(rule);
    return Status::ok();
  }

  Status remove_rule(std::uint64_t id) {
    for (auto it = rules_.begin(); it != rules_.end(); ++it) {
      if (it->id == id) {
        rules_.erase(it);
        return Status::ok();
      }
    }
    return not_found("VSwitch: unknown rule");
  }

  struct LookupResult {
    const SteeringRule* rule = nullptr;
    SimTime latency;
    std::size_t rules_walked = 0;
  };

  /// First-match lookup; latency grows with the rule's position.
  StatusOr<LookupResult> lookup(TrafficClass cls, std::uint32_t tenant) const {
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      if (rules_[i].match == cls && rules_[i].tenant == tenant) {
        return LookupResult{
            &rules_[i],
            config_.base_latency +
                config_.per_rule_latency * static_cast<std::int64_t>(i + 1),
            i + 1};
      }
    }
    return not_found("VSwitch: no matching rule");
  }

  std::size_t rule_count() const { return rules_.size(); }
  std::size_t capacity() const { return config_.capacity; }

 private:
  Config config_;
  std::vector<SteeringRule> rules_;
};

}  // namespace stellar
