// GDR data-path engine: models sustained GPU Direct RDMA throughput for the
// three translation designs compared in Figures 8 and 14:
//
//   kEmtt      - Stellar: MTT holds the final HPA; TLPs go out pre-
//                translated and P2P-route at the switch. No per-page stall.
//   kAtsAtc    - SR-IOV/VF baseline: MTT holds an IoVa; the RNIC's ATC
//                caches ATS results. ATC misses stall the pipeline; on top,
//                IOMMU IOTLB misses during the ATS walk stall further.
//   kRcRouted  - HyV/MasQ: untranslated TLPs detour through the Root
//                Complex, whose P2P forwarding bandwidth caps throughput.
//
// The engine walks a message page-by-page against the *real* ATC/IOTLB
// LRU state, so the throughput cliffs emerge from cache capacities and the
// access pattern, not from hard-coded breakpoints.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "memory/address.h"
#include "pcie/atc.h"
#include "pcie/host_pcie.h"

namespace stellar {

enum class GdrMode { kEmtt, kAtsAtc, kRcRouted };

const char* gdr_mode_name(GdrMode mode);

struct GdrEngineConfig {
  Bandwidth nic_rate = Bandwidth::gbps(400);
  /// The issuing NIC function; used to classify the PCIe route (direct P2P
  /// vs RC detour) with a probe TLP per transfer.
  Bdf requester;
  std::uint32_t page_size = 4096;   // paper tests 4 KiB GDR pages
  std::uint32_t wire_overhead = 66; // per-TLP header bytes on the NIC port
  /// Concurrent ATS requests the NIC sustains; an ATC-miss stall is the ATS
  /// round trip divided by this depth (pipelined translation).
  std::uint32_t ats_pipeline_depth = 32;
  /// Concurrent page walks the IOMMU sustains during ATS service.
  std::uint32_t iommu_walk_depth = 8;
};

/// Result of pushing one message through the engine.
struct GdrTransfer {
  SimTime duration;
  double gbps = 0.0;
  std::uint64_t atc_misses = 0;
  std::uint64_t iotlb_misses = 0;
};

class GdrEngine {
 public:
  /// `atc` may be null for kEmtt / kRcRouted modes.
  GdrEngine(HostPcie& fabric, GdrEngineConfig config, GdrMode mode, Atc* atc)
      : fabric_(&fabric), config_(config), mode_(mode), atc_(atc) {}

  /// Model a GDR WRITE of `len` bytes starting at device address `iova`
  /// (pages are touched sequentially, as perftest does).
  GdrTransfer transfer(IoVa iova, std::uint64_t len);

  GdrMode mode() const { return mode_; }

 private:
  HostPcie* fabric_;
  GdrEngineConfig config_;
  GdrMode mode_;
  Atc* atc_;
};

}  // namespace stellar
