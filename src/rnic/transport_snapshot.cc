// Checkpoint/restore of the transport layer — the RNIC half of the
// vStellar control-plane robustness story.
//
// save_state() walks every sender QP (config, PSN space, unacked packets,
// queued messages, CC context, path blacklists) and the receiver state
// (PSN floors, partial messages) into the deterministic snapshot encoding
// of common/snapshot.h. Unordered containers are emitted in sorted key
// order so the bytes are identical across runs and across a
// serialize -> restore -> serialize round trip.
//
// Two consumers:
//  - hot_restart(): backend hot-upgrade. State is rebuilt *in place* on the
//    same engine object (auditors and fault injectors hold raw pointers to
//    it — the real system keeps guest/hardware state while the backend
//    process is replaced). Message completion callbacks are harvested and
//    re-attached; the round trip is verified byte-identical.
//  - restore_state() on a fresh engine: live migration. Connections are
//    re-created from their serialized configs; application callbacks start
//    empty and the runtime re-registers them.

#include <algorithm>
#include <utility>
#include <vector>

#include "check/check.h"
#include "common/ordered.h"
#include "rnic/transport.h"

namespace stellar {

namespace {

constexpr std::uint32_t kEngineTag = snapshot_tag('R', 'E', 'N', 'G');
constexpr std::uint32_t kConnTag = snapshot_tag('C', 'O', 'N', 'N');
constexpr std::uint32_t kRxTag = snapshot_tag('R', 'X', 'S', 'T');

void write_cc_config(SnapshotWriter& w, const CcConfig& cc) {
  w.u32(cc.mtu);
  w.u64(cc.init_window);
  w.u64(cc.min_window);
  w.u64(cc.max_window);
  w.f64(cc.ecn_gain);
  w.time(cc.base_rtt);
  w.f64(cc.rtt_high_factor);
  w.f64(cc.rtt_backoff);
  w.f64(cc.timeout_backoff);
}

CcConfig read_cc_config(SnapshotReader& r) {
  CcConfig cc;
  cc.mtu = r.u32();
  cc.init_window = r.u64();
  cc.min_window = r.u64();
  cc.max_window = r.u64();
  cc.ecn_gain = r.f64();
  cc.base_rtt = r.time();
  cc.rtt_high_factor = r.f64();
  cc.rtt_backoff = r.f64();
  cc.timeout_backoff = r.f64();
  return cc;
}

void write_config(SnapshotWriter& w, const TransportConfig& c) {
  w.u32(c.mtu);
  w.u16(c.num_paths);
  w.u8(static_cast<std::uint8_t>(c.algo));
  w.time(c.rto);
  write_cc_config(w, c.cc);
  w.u8(static_cast<std::uint8_t>(c.cc_algo));
  w.u32(c.extra_header_bytes);
  w.time(c.per_packet_overhead);
  w.i64(c.stack_rate_cap.bps());
  w.u32(c.max_retries);
  w.u32(c.blacklist_threshold);
  w.time(c.blacklist_hold);
  w.b(c.blacklist_probe);
  w.time(c.probe_interval);
  w.b(c.per_path_cc);
  w.u32(c.tenant);
}

TransportConfig read_config(SnapshotReader& r) {
  TransportConfig c;
  c.mtu = r.u32();
  c.num_paths = r.u16();
  c.algo = static_cast<MultipathAlgo>(r.u8());
  c.rto = r.time();
  c.cc = read_cc_config(r);
  c.cc_algo = static_cast<CcAlgo>(r.u8());
  c.extra_header_bytes = r.u32();
  c.per_packet_overhead = r.time();
  c.stack_rate_cap = Bandwidth::bits_per_sec(r.i64());
  c.max_retries = r.u32();
  c.blacklist_threshold = r.u32();
  c.blacklist_hold = r.time();
  c.blacklist_probe = r.b();
  c.probe_interval = r.time();
  c.per_path_cc = r.b();
  c.tenant = r.u32();
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// RdmaConnection
// ---------------------------------------------------------------------------

void RdmaConnection::save_state(SnapshotWriter& w) const {
  w.section(kConnTag);
  w.u64(id_);
  w.u32(local_);
  w.u32(remote_);
  write_config(w, config_);

  w.u64(next_psn_);
  w.u64(next_msg_id_);
  w.u64(inflight_bytes_);
  w.time(stack_next_free_);
  w.u64(next_probe_seq_);

  w.u64(completed_messages_);
  w.u64(completed_bytes_);
  w.u64(retransmits_);
  w.u64(timeouts_);
  w.u64(packets_sent_);
  w.u64(probes_sent_);
  w.u64(probes_acked_);
  w.u64(paths_reinstated_);

  w.b(error_);
  w.u8(static_cast<std::uint8_t>(error_status_.code()));
  w.str(error_status_.message());

  w.u32(static_cast<std::uint32_t>(unsent_queue_.size()));
  for (std::uint64_t id : unsent_queue_) w.u64(id);

  // Messages in sorted id order (unordered container). Completion
  // callbacks are deliberately absent — see the class comment.
  w.u32(static_cast<std::uint32_t>(messages_.size()));
  for (std::uint64_t id : sorted_keys(messages_)) {
    const Message& m = messages_.at(id);
    w.u64(m.id);
    w.u64(m.total);
    w.u64(m.sent);
    w.u64(m.acked);
    w.u32(m.tag);
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.time(m.posted_at);
  }

  // outstanding_ is an ordered map: PSN order is already deterministic.
  w.u32(static_cast<std::uint32_t>(outstanding_.size()));
  for (const auto& [psn, o] : outstanding_) {
    w.u64(psn);
    w.u32(o.bytes);
    w.u16(o.path);
    w.time(o.sent_at);
    w.u64(o.msg_id);
    w.u64(o.msg_offset);
    w.u64(o.msg_total);
    w.u32(o.msg_tag);
    w.u8(static_cast<std::uint8_t>(o.kind));
    w.u32(o.retries);
  }

  w.u32(static_cast<std::uint32_t>(path_timeout_streak_.size()));
  for (std::uint16_t path : sorted_keys(path_timeout_streak_)) {
    w.u16(path);
    w.u32(path_timeout_streak_.at(path));
  }
  w.u32(static_cast<std::uint32_t>(blacklist_.size()));
  for (std::uint16_t path : sorted_keys(blacklist_)) {
    w.u16(path);
    w.time(blacklist_.at(path));
  }

  cc_->save(w);
  if (config_.per_path_cc) {
    for (const auto& cc : per_path_cc_) cc->save(w);
    for (std::uint64_t inflight : per_path_inflight_) w.u64(inflight);
  }
}

void RdmaConnection::restore_state(SnapshotReader& r) {
  // Caller (the engine) already consumed the section tag, id, local, remote
  // and the config, and guaranteed this object matches them.
  next_psn_ = r.u64();
  next_msg_id_ = r.u64();
  inflight_bytes_ = r.u64();
  stack_next_free_ = r.time();
  next_probe_seq_ = r.u64();

  completed_messages_ = r.u64();
  completed_bytes_ = r.u64();
  retransmits_ = r.u64();
  timeouts_ = r.u64();
  packets_sent_ = r.u64();
  probes_sent_ = r.u64();
  probes_acked_ = r.u64();
  paths_reinstated_ = r.u64();

  error_ = r.b();
  const auto code = static_cast<StatusCode>(r.u8());
  std::string msg = r.str();
  error_status_ = error_ ? Status(code, std::move(msg)) : Status::ok();

  unsent_queue_.clear();
  const std::uint32_t unsent = r.u32();
  for (std::uint32_t i = 0; i < unsent; ++i) unsent_queue_.push_back(r.u64());

  messages_.clear();
  const std::uint32_t n_msgs = r.u32();
  for (std::uint32_t i = 0; i < n_msgs; ++i) {
    Message m;
    m.id = r.u64();
    m.total = r.u64();
    m.sent = r.u64();
    m.acked = r.u64();
    m.tag = r.u32();
    m.kind = static_cast<PacketKind>(r.u8());
    m.posted_at = r.time();
    messages_.emplace(m.id, std::move(m));
  }

  outstanding_.clear();
  const std::uint32_t n_out = r.u32();
  for (std::uint32_t i = 0; i < n_out; ++i) {
    const std::uint64_t psn = r.u64();
    Outstanding o;
    o.bytes = r.u32();
    o.path = r.u16();
    o.sent_at = r.time();
    o.msg_id = r.u64();
    o.msg_offset = r.u64();
    o.msg_total = r.u64();
    o.msg_tag = r.u32();
    o.kind = static_cast<PacketKind>(r.u8());
    o.retries = r.u32();
    outstanding_.emplace(psn, o);
  }

  path_timeout_streak_.clear();
  const std::uint32_t n_streak = r.u32();
  for (std::uint32_t i = 0; i < n_streak; ++i) {
    const std::uint16_t path = r.u16();
    path_timeout_streak_[path] = r.u32();
  }
  blacklist_.clear();
  const std::uint32_t n_black = r.u32();
  for (std::uint32_t i = 0; i < n_black; ++i) {
    const std::uint16_t path = r.u16();
    blacklist_[path] = r.time();
  }

  cc_->restore(r);
  if (config_.per_path_cc) {
    for (auto& cc : per_path_cc_) cc->restore(r);
    for (auto& inflight : per_path_inflight_) inflight = r.u64();
  }
}

void RdmaConnection::cancel_timers() {
  Simulator& sim = engine_.simulator();
  if (rto_event_.valid()) {
    sim.cancel(rto_event_);
    rto_event_ = EventHandle{};
  }
  for (auto& [path, handle] : probe_events_) sim.cancel(handle);
  probe_events_.clear();
}

void RdmaConnection::resume_after_restore() {
  if (error_) return;  // dead QPs stay dead across a restart
  arm_rto();
  // Packets the old backend had queued in its stack pacer are gone with the
  // process; the new one starts pacing from now.
  if (stack_next_free_ < engine_.simulator().now()) {
    stack_next_free_ = engine_.simulator().now();
  }
  if (config_.blacklist_probe && !blacklist_.empty() && !idle()) {
    kick_probes();
  }
  send_more();
}

// ---------------------------------------------------------------------------
// RdmaEngine
// ---------------------------------------------------------------------------

std::string RdmaEngine::save_state() const {
  SnapshotWriter w;
  w.section(kEngineTag);
  w.u32(self_);
  w.u64(next_conn_seq_);
  w.u64(next_read_id_);
  write_config(w, default_config_);

  w.u64(rx_goodput_bytes_);
  w.u64(rx_duplicates_);
  w.u64(rx_out_of_order_);
  w.u64(unexpected_sends_);
  w.u64(device_resets_);
  w.u64(reset_drops_);
  w.u64(quiesce_drops_);
  w.u64(hot_restarts_);
  w.time(reset_until_);
  w.time(quiesce_until_);

  w.u32(static_cast<std::uint32_t>(rx_path_histogram_.size()));
  for (std::uint16_t path : sorted_keys(rx_path_histogram_)) {
    w.u16(path);
    w.u64(rx_path_histogram_.at(path));
  }

  // Receiver PSN floors + partial messages, sorted by (remote) conn id.
  w.section(kRxTag);
  w.u32(static_cast<std::uint32_t>(rx_.size()));
  for (std::uint64_t conn : sorted_keys(rx_)) {
    const RxState& st = rx_.at(conn);
    w.u64(conn);
    w.u64(st.psn_floor);
    w.u64(st.highest_psn);
    w.b(st.any);
    std::vector<std::uint64_t> psns(st.psns_above_floor.begin(),
                                    st.psns_above_floor.end());
    std::sort(psns.begin(), psns.end());
    w.u32(static_cast<std::uint32_t>(psns.size()));
    for (std::uint64_t psn : psns) w.u64(psn);
    w.u32(static_cast<std::uint32_t>(st.messages.size()));
    for (std::uint64_t msg : sorted_keys(st.messages)) {
      w.u64(msg);
      w.u64(st.messages.at(msg).received);
    }
  }

  // Unexpected (eagerly buffered) SENDs; posted receive WRs are handlers
  // and stay live in place across a hot restart.
  std::vector<std::uint64_t> recv_conns;
  for (const auto& [conn, q] : recv_queues_) {
    if (!q.unexpected.empty()) recv_conns.push_back(conn);
  }
  std::sort(recv_conns.begin(), recv_conns.end());
  w.u32(static_cast<std::uint32_t>(recv_conns.size()));
  for (std::uint64_t conn : recv_conns) {
    const RecvQueue& q = recv_queues_.at(conn);
    w.u64(conn);
    w.u32(static_cast<std::uint32_t>(q.unexpected.size()));
    for (const RxMessage& rx : q.unexpected) {
      w.u64(rx.conn_id);
      w.u64(rx.msg_id);
      w.u64(rx.bytes);
      w.u32(rx.tag);
      w.u32(rx.src);
      w.u8(static_cast<std::uint8_t>(rx.kind));
    }
  }

  // Sender QPs, in creation order (deterministic, and re-creation on a
  // fresh engine preserves it).
  w.u32(static_cast<std::uint32_t>(connections_.size()));
  for (const auto& conn : connections_) conn->save_state(w);
  return w.take();
}

Status RdmaEngine::restore_core(SnapshotReader& r) {
  if (Status s = r.expect_section(kEngineTag); !s.is_ok()) return s;
  const EndpointId self = r.u32();
  if (self != self_) {
    return invalid_argument(
        "RdmaEngine::restore: snapshot is for endpoint " +
        std::to_string(self) + ", engine is endpoint " + std::to_string(self_));
  }
  next_conn_seq_ = r.u64();
  next_read_id_ = r.u64();
  default_config_ = read_config(r);

  rx_goodput_bytes_ = r.u64();
  rx_duplicates_ = r.u64();
  rx_out_of_order_ = r.u64();
  unexpected_sends_ = r.u64();
  device_resets_ = r.u64();
  reset_drops_ = r.u64();
  quiesce_drops_ = r.u64();
  hot_restarts_ = r.u64();
  reset_until_ = r.time();
  quiesce_until_ = r.time();

  rx_path_histogram_.clear();
  const std::uint32_t n_hist = r.u32();
  for (std::uint32_t i = 0; i < n_hist; ++i) {
    const std::uint16_t path = r.u16();
    rx_path_histogram_[path] = r.u64();
  }

  if (Status s = r.expect_section(kRxTag); !s.is_ok()) return s;
  rx_.clear();
  const std::uint32_t n_rx = r.u32();
  for (std::uint32_t i = 0; i < n_rx; ++i) {
    const std::uint64_t conn = r.u64();
    RxState st;
    st.psn_floor = r.u64();
    st.highest_psn = r.u64();
    st.any = r.b();
    const std::uint32_t n_psn = r.u32();
    for (std::uint32_t j = 0; j < n_psn; ++j) st.psns_above_floor.insert(r.u64());
    const std::uint32_t n_msg = r.u32();
    for (std::uint32_t j = 0; j < n_msg; ++j) {
      const std::uint64_t msg = r.u64();
      st.messages[msg].received = r.u64();
    }
    rx_.emplace(conn, std::move(st));
  }

  const std::uint32_t n_recv = r.u32();
  for (auto& [conn, q] : recv_queues_) q.unexpected.clear();
  for (std::uint32_t i = 0; i < n_recv; ++i) {
    const std::uint64_t conn = r.u64();
    RecvQueue& q = recv_queues_[conn];
    const std::uint32_t n_unexp = r.u32();
    for (std::uint32_t j = 0; j < n_unexp; ++j) {
      RxMessage rx;
      rx.conn_id = r.u64();
      rx.msg_id = r.u64();
      rx.bytes = r.u64();
      rx.tag = r.u32();
      rx.src = r.u32();
      rx.kind = static_cast<PacketKind>(r.u8());
      q.unexpected.push_back(rx);
    }
  }

  const std::uint32_t n_conns = r.u32();
  for (std::uint32_t i = 0; i < n_conns; ++i) {
    if (Status s = r.expect_section(kConnTag); !s.is_ok()) return s;
    const std::uint64_t id = r.u64();
    const EndpointId local = r.u32();
    const EndpointId remote = r.u32();
    if (local != self_) {
      return invalid_argument("RdmaEngine::restore: connection " +
                              std::to_string(id) + " is local to endpoint " +
                              std::to_string(local));
    }
    const TransportConfig config = read_config(r);
    RdmaConnection* conn = nullptr;
    auto it = by_id_.find(id);
    if (it != by_id_.end()) {
      // Hot restart: same object, state rebuilt in place (external holders
      // of the pointer — collectives, auditors — stay valid).
      conn = it->second;
      conn->cancel_timers();
      conn->config_ = config;
      conn->rebuild_from_config();
    } else {
      // Migration onto a fresh engine: re-create the QP with its guest-
      // visible identity (conn id) intact.
      auto created = std::unique_ptr<RdmaConnection>(
          new RdmaConnection(*this, id, self_, remote, config));
      conn = created.get();
      connections_.push_back(std::move(created));
      by_id_.emplace(id, conn);
    }
    conn->restore_state(r);
  }
  if (!r.ok()) return out_of_range("RdmaEngine::restore: snapshot truncated");
  return Status::ok();
}

Status RdmaEngine::restore_state(const std::string& bytes) {
  SnapshotReader r(bytes);
  if (Status s = restore_core(r); !s.is_ok()) return s;
  if (Status s = r.finish(); !s.is_ok()) return s;
  for (auto& conn : connections_) conn->resume_after_restore();
  return Status::ok();
}

StatusOr<std::string> RdmaEngine::hot_restart() {
  ++hot_restarts_;  // counted in the snapshot: survives the restart
  std::string snapshot = save_state();

  // Harvest the volatile runtime the snapshot cannot carry: message
  // completion callbacks, keyed (conn id, msg id). The new backend
  // re-attaches them after reconstructing the QP tables.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, RdmaConnection::Completion>>
      completions;
  for (auto& conn : connections_) {
    conn->cancel_timers();
    for (auto& [msg_id, msg] : conn->messages_) {
      if (msg.on_complete) {
        completions[conn->id()][msg_id] = std::move(msg.on_complete);
      }
    }
  }

  SnapshotReader r(snapshot);
  Status restored = restore_core(r);
  if (restored.is_ok()) restored = r.finish();
  if (!restored.is_ok()) return restored;

  // Round-trip proof: the reconstructed state must re-serialize to the
  // exact bytes the old backend produced.
  if (save_state() != snapshot) {
    return internal_error(
        "RdmaEngine::hot_restart: snapshot round trip not byte-identical");
  }

  for (auto& [conn_id, by_msg] : completions) {
    RdmaConnection* conn = connection(conn_id);
    if (conn == nullptr) continue;
    for (auto& [msg_id, cb] : by_msg) {
      auto it = conn->messages_.find(msg_id);
      if (it != conn->messages_.end()) it->second.on_complete = std::move(cb);
    }
  }
  for (auto& conn : connections_) conn->resume_after_restore();
  return snapshot;
}

void RdmaEngine::quiesce(SimTime window) {
  const SimTime until = sim_->now() + window;
  if (until > quiesce_until_) quiesce_until_ = until;
}

}  // namespace stellar
