// Congestion control for the Stellar transport.
//
// WindowCc is the production algorithm — a stand-in for the paper's
// in-house "window-based CC that adjusts based on ECN and RTT" (§7.2):
// DCTCP-style ECN-fraction estimation plus an RTT guard, with a single
// congestion-control context shared by all paths of a connection (§9).
//
// SwiftCc is a delay-target alternative (in the spirit of Google's Swift)
// kept for comparison: no ECN dependence, purely RTT-driven.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/snapshot.h"
#include "common/units.h"

namespace stellar {

/// Interface every CC implementation satisfies; the transport only ever
/// talks through it.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;
  virtual bool can_send(std::uint64_t inflight_bytes) const = 0;
  virtual void on_ack(std::uint32_t bytes, bool ecn_echo, SimTime rtt) = 0;
  virtual void on_timeout() = 0;
  virtual std::uint64_t window() const = 0;

  /// Hybrid fidelity thaw: seed the window directly from the fluid rate
  /// (rate * base RTT), clamped to the algorithm's window bounds, so packet
  /// mode resumes near the max-min operating point instead of re-probing
  /// from init_window. Default: no-op (algorithm keeps its current window).
  virtual void seed_window(std::uint64_t bytes) { (void)bytes; }

  /// Checkpoint/restore of the mutable CC context (the config is rebuilt by
  /// the owner, which serializes its TransportConfig separately). restore()
  /// must accept exactly the bytes save() produced for the same algorithm.
  virtual void save(SnapshotWriter& w) const = 0;
  virtual void restore(SnapshotReader& r) = 0;
};

struct CcConfig {
  std::uint32_t mtu = 4096;
  std::uint64_t init_window = 256 * 1024;   // ~2x BDP of the target fabric
  std::uint64_t min_window = 4096;
  std::uint64_t max_window = 1024 * 1024;
  double ecn_gain = 0.0625;                 // DCTCP g
  SimTime base_rtt = SimTime::micros(8);
  double rtt_high_factor = 3.0;             // RTT guard threshold
  double rtt_backoff = 0.85;                // multiplicative RTT response
  /// Window response to an RTO. Stellar treats timeout loss as *failure*,
  /// not congestion — congestion is owned by ECN/RTT, and a random-loss
  /// link must not collapse the window (the Figure-11 resilience story).
  /// 1.0 = no cut (production default); set 0.5 for TCP-like halving.
  double timeout_backoff = 1.0;
};

class WindowCc final : public CongestionControl {
 public:
  explicit WindowCc(CcConfig config = {})
      : config_(config), window_(config.init_window) {}

  std::uint64_t window() const override { return window_; }

  bool can_send(std::uint64_t inflight_bytes) const override {
    return inflight_bytes < window_;
  }

  void on_ack(std::uint32_t bytes, bool ecn_echo, SimTime rtt) override {
    // DCTCP alpha: EWMA of the marked fraction, updated per ACK with the
    // byte-weighted contribution.
    const double frac = ecn_echo ? 1.0 : 0.0;
    const double w =
        std::min(1.0, static_cast<double>(bytes) / static_cast<double>(window_));
    alpha_ = (1.0 - config_.ecn_gain * w) * alpha_ + config_.ecn_gain * w * frac;

    if (ecn_echo) {
      // Proportional per-ACK decrease; integrates to the DCTCP per-window
      // cut of alpha/2.
      const double cut = alpha_ / 2.0 * static_cast<double>(bytes);
      shrink(static_cast<std::uint64_t>(cut));
    } else {
      // Additive increase: ~1 MTU per RTT.
      const double gain = static_cast<double>(config_.mtu) *
                          static_cast<double>(bytes) /
                          static_cast<double>(window_);
      grow(static_cast<std::uint64_t>(gain) + 1);
    }

    // RTT guard: persistent queueing that ECN misses (e.g. on the reverse
    // path) still triggers a decrease, rate-limited to once per RTT.
    if (rtt > SimTime::picos(static_cast<std::int64_t>(
                  config_.rtt_high_factor *
                  static_cast<double>(config_.base_rtt.ps())))) {
      if (acked_since_rtt_cut_ >= window_) {
        window_ = std::max(
            config_.min_window,
            static_cast<std::uint64_t>(static_cast<double>(window_) *
                                       config_.rtt_backoff));
        acked_since_rtt_cut_ = 0;
      }
    }
    acked_since_rtt_cut_ += bytes;
  }

  void on_timeout() override {
    window_ = std::max(
        config_.min_window,
        static_cast<std::uint64_t>(static_cast<double>(window_) *
                                   config_.timeout_backoff));
  }

  void seed_window(std::uint64_t bytes) override {
    window_ = std::clamp(bytes, config_.min_window, config_.max_window);
    // A fresh operating point invalidates the marked-fraction history.
    alpha_ = 0.0;
    acked_since_rtt_cut_ = 0;
  }

  void save(SnapshotWriter& w) const override {
    w.u64(window_);
    w.f64(alpha_);
    w.u64(acked_since_rtt_cut_);
  }
  void restore(SnapshotReader& r) override {
    window_ = r.u64();
    alpha_ = r.f64();
    acked_since_rtt_cut_ = r.u64();
  }

  double alpha() const { return alpha_; }
  const CcConfig& config() const { return config_; }

 private:
  void grow(std::uint64_t bytes) {
    window_ = std::min(config_.max_window, window_ + bytes);
  }
  void shrink(std::uint64_t bytes) {
    window_ = window_ > bytes ? window_ - bytes : config_.min_window;
    window_ = std::max(config_.min_window, window_);
  }

  CcConfig config_;
  std::uint64_t window_;
  double alpha_ = 0.0;
  std::uint64_t acked_since_rtt_cut_ = 0;
};

/// Delay-target window CC (Swift-flavoured): additive increase while the
/// RTT sits below the target, multiplicative decrease proportional to the
/// overshoot — ECN marks are ignored entirely.
class SwiftCc final : public CongestionControl {
 public:
  explicit SwiftCc(CcConfig config = {})
      : config_(config), window_(config.init_window) {}

  std::uint64_t window() const override { return window_; }

  bool can_send(std::uint64_t inflight_bytes) const override {
    return inflight_bytes < window_;
  }

  void on_ack(std::uint32_t bytes, bool ecn_echo, SimTime rtt) override {
    (void)ecn_echo;
    // Target: base fabric RTT plus half a window's worth of queueing slack.
    const double target_us = config_.base_rtt.us() * 1.5;
    const double rtt_us = rtt.us();
    if (rtt_us <= target_us) {
      const double gain = static_cast<double>(config_.mtu) *
                          static_cast<double>(bytes) /
                          static_cast<double>(window_);
      window_ = std::min(config_.max_window,
                         window_ + static_cast<std::uint64_t>(gain) + 1);
      acked_since_cut_ += bytes;
      return;
    }
    // Overshoot: cut proportionally, at most once per window of ACKs.
    acked_since_cut_ += bytes;
    if (acked_since_cut_ < window_) return;
    acked_since_cut_ = 0;
    const double overshoot = std::min(0.5, (rtt_us - target_us) / rtt_us);
    window_ = std::max(
        config_.min_window,
        static_cast<std::uint64_t>(static_cast<double>(window_) *
                                   (1.0 - 0.8 * overshoot)));
  }

  void on_timeout() override {
    window_ = std::max(
        config_.min_window,
        static_cast<std::uint64_t>(static_cast<double>(window_) *
                                   config_.timeout_backoff));
  }

  void seed_window(std::uint64_t bytes) override {
    window_ = std::clamp(bytes, config_.min_window, config_.max_window);
    acked_since_cut_ = 0;
  }

  void save(SnapshotWriter& w) const override {
    w.u64(window_);
    w.u64(acked_since_cut_);
  }
  void restore(SnapshotReader& r) override {
    window_ = r.u64();
    acked_since_cut_ = r.u64();
  }

 private:
  CcConfig config_;
  std::uint64_t window_;
  std::uint64_t acked_since_cut_ = 0;
};

enum class CcAlgo : std::uint8_t { kWindowEcnRtt, kSwiftDelay };

inline std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgo algo, const CcConfig& config) {
  switch (algo) {
    case CcAlgo::kWindowEcnRtt:
      return std::make_unique<WindowCc>(config);
    case CcAlgo::kSwiftDelay:
      return std::make_unique<SwiftCc>(config);
  }
  return nullptr;
}

inline const char* cc_algo_name(CcAlgo algo) {
  switch (algo) {
    case CcAlgo::kWindowEcnRtt:
      return "ECN+RTT window";
    case CcAlgo::kSwiftDelay:
      return "Swift-delay";
  }
  return "?";
}

}  // namespace stellar
