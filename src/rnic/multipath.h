// Multipath path-selection algorithms evaluated in §7.2.
//
// A selector picks the path id carried by each outgoing packet. Stellar's
// production choice is 128-path Oblivious Packet Spraying (OBS); the other
// algorithms are the baselines of Figures 9-12:
//   SinglePath  - classic RDMA: every packet of a connection on one path.
//   RoundRobin  - deterministic cycling over all paths.
//   OBS         - uniform pseudo-random path per packet (oblivious).
//   DWRR        - dynamic weighted round-robin; weights track per-path RTT.
//   BestRtt     - latency-greedy: prefer the lowest-EWMA-RTT path.
//   MprdmaLike  - congestion-aware probabilistic spraying in the spirit of
//                 MP-RDMA's per-path ACK clocking (ECN-penalised paths are
//                 chosen less often).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace stellar {

enum class MultipathAlgo {
  kSinglePath,
  kRoundRobin,
  kObs,
  kDwrr,
  kBestRtt,
  kMprdmaLike,
  // Flowlet switching (§7.1): keep the current path while packets follow
  // each other closely; re-pick a random path after an idle gap long
  // enough that in-flight reordering is impossible. The paper plans to
  // enable this on older-generation GPU clusters — provided here as the
  // implemented extension.
  kFlowlet,
};

const char* multipath_algo_name(MultipathAlgo algo);

class PathSelector {
 public:
  virtual ~PathSelector() = default;

  /// Choose the path id for the next packet.
  virtual std::uint16_t pick() = 0;

  /// Time-aware variant used by gap-sensitive selectors (flowlet); the
  /// default ignores the clock.
  virtual std::uint16_t pick_at(SimTime now) {
    (void)now;
    return pick();
  }

  /// Feedback from an acknowledged packet sent on `path`.
  virtual void on_ack(std::uint16_t path, SimTime rtt, bool ecn) {
    (void)path;
    (void)rtt;
    (void)ecn;
  }

  /// Feedback from a retransmission timeout on `path`.
  virtual void on_timeout(std::uint16_t path) { (void)path; }

  /// Hybrid fidelity: long-run fraction of packets this selector would put
  /// on each path id, used to weight a fluid flow's footprint on the link
  /// graph. Spraying selectors are uniform in the long run (the default);
  /// SinglePath concentrates everything on its fixed path.
  virtual void fluid_path_weights(std::vector<double>& weights) const {
    weights.assign(num_paths(), 1.0 / static_cast<double>(num_paths()));
  }

  virtual std::uint16_t num_paths() const = 0;

  static std::unique_ptr<PathSelector> create(MultipathAlgo algo,
                                              std::uint16_t num_paths,
                                              std::uint64_t seed);
};

}  // namespace stellar
