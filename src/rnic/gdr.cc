#include "rnic/gdr.h"

#include <algorithm>

#include "obs/obs.h"

namespace stellar {

const char* gdr_mode_name(GdrMode mode) {
  switch (mode) {
    case GdrMode::kEmtt:
      return "eMTT";
    case GdrMode::kAtsAtc:
      return "ATS/ATC";
    case GdrMode::kRcRouted:
      return "RC-routed";
  }
  return "?";
}

GdrTransfer GdrEngine::transfer(IoVa iova, std::uint64_t len) {
  GdrTransfer out;
  if (len == 0) return out;

  const std::uint32_t page = config_.page_size;
  const std::uint64_t pages = pages_covering(iova, len, page);

  // Per-page serialization time on the NIC port, including TLP overhead.
  const SimTime page_wire =
      config_.nic_rate.transmit_time(page + config_.wire_overhead);

  // RC-routed P2P (HyV/MasQ): the Root Complex forwarding rate is the
  // bottleneck; translation latency hides entirely behind it.
  const Bandwidth rc_cap = fabric_->config().rc_p2p_bandwidth;
  const SimTime rc_page_wire = rc_cap.transmit_time(page + config_.wire_overhead);

  // Classify the PCIe route once per transfer with a probe TLP — the
  // remaining TLPs of the message follow the identical path. eMTT emits
  // pre-translated TLPs; RC-routed (HyV/MasQ) emits untranslated ones.
  bool emtt_via_rc = false;
  if (mode_ == GdrMode::kEmtt || mode_ == GdrMode::kRcRouted) {
    Tlp probe;
    probe.requester = config_.requester;
    probe.at = mode_ == GdrMode::kEmtt ? AtField::kTranslated
                                       : AtField::kUntranslated;
    probe.address = iova.value();
    probe.length = page;
    auto outcome = fabric_->dma(probe);
    emtt_via_rc = outcome.is_ok() &&
                  outcome.value().route != DmaOutcome::Route::kDirectP2P;
  }

  std::int64_t total_ps = 0;
  for (std::uint64_t i = 0; i < pages; ++i) {
    const IoVa addr = iova.align_down(page) + i * page;
    switch (mode_) {
      case GdrMode::kEmtt:
        // Final HPA comes from the eMTT at line rate; the switch routes
        // P2P. If ACS/LUT forces an RC detour, the RC cap applies.
        total_ps += emtt_via_rc
                        ? std::max(page_wire.ps(), rc_page_wire.ps())
                        : page_wire.ps();
        break;
      case GdrMode::kRcRouted:
        total_ps += std::max(page_wire.ps(), rc_page_wire.ps());
        break;
      case GdrMode::kAtsAtc: {
        std::int64_t stall_ps = 0;
        auto lookup = atc_->translate(addr);
        if (lookup.is_ok() && !lookup.value().hit) {
          ++out.atc_misses;
          // ATS round trip amortized over the NIC's translation pipeline.
          stall_ps = lookup.value().latency.ps() /
                     static_cast<std::int64_t>(config_.ats_pipeline_depth);
          if (!lookup.value().iotlb_hit) {
            ++out.iotlb_misses;
            // The IOMMU serializes page walks much harder than the NIC
            // pipelines ATS requests — this is the second Figure-8 cliff.
            stall_ps += fabric_->iommu().config().page_walk_latency.ps() /
                        static_cast<std::int64_t>(config_.iommu_walk_depth);
          }
        }
        total_ps += page_wire.ps() + stall_ps;
        break;
      }
    }
  }

  out.duration = SimTime::picos(total_ps);
  out.gbps = static_cast<double>(len) * 8.0 / out.duration.sec() / 1e9;
  STELLAR_TRACE_ONLY(
      obs::count("gdr/transfers");
      obs::count("gdr/bytes", len);
      obs::record_time("gdr/transfer_ps", out.duration);
      obs::complete_here(
          obs::TraceCat::kGdr, "transfer", out.duration,
          obs::TraceArgs{"bytes", static_cast<std::int64_t>(len),
                         "atc_misses",
                         static_cast<std::int64_t>(out.atc_misses),
                         "iotlb_misses",
                         static_cast<std::int64_t>(out.iotlb_misses)});)
  return out;
}

}  // namespace stellar
