// Verbs-style control-plane objects: Protection Domains, Memory Regions and
// Queue Pairs, with the isolation rules vStellar relies on (§9): a QP may
// only touch an MR of its own protection domain, and every tenant VM gets a
// dedicated PD so cross-tenant access is rejected in "hardware".
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "memory/address.h"

namespace stellar {

using PdId = std::uint32_t;
using MrKey = std::uint32_t;
using QpNum = std::uint32_t;
using VmId = std::uint32_t;

inline constexpr VmId kHostVm = 0;

enum class MemoryOwner : std::uint8_t { kHostDram, kGpuHbm };

enum class QpState : std::uint8_t { kReset, kInit, kRtr, kRts, kError };

struct MemoryRegion {
  MrKey key = 0;
  PdId pd = 0;
  Gva base;             // guest/application virtual address
  std::uint64_t len = 0;
  MemoryOwner owner = MemoryOwner::kHostDram;
};

struct QueuePair {
  QpNum num = 0;
  PdId pd = 0;
  QpState state = QpState::kReset;
  std::uint32_t remote_qp = 0;
};

/// Registry of verbs objects for one RNIC (or one virtual device).
class VerbsResources {
 public:
  PdId create_pd(VmId vm) {
    const PdId id = next_pd_++;
    pd_owner_.emplace(id, vm);
    return id;
  }

  StatusOr<VmId> pd_vm(PdId pd) const {
    auto it = pd_owner_.find(pd);
    if (it == pd_owner_.end()) return not_found("unknown PD");
    return it->second;
  }

  StatusOr<MrKey> register_mr(PdId pd, Gva base, std::uint64_t len,
                              MemoryOwner owner) {
    if (pd_owner_.count(pd) == 0) return not_found("register_mr: unknown PD");
    if (len == 0) return invalid_argument("register_mr: zero length");
    const MrKey key = next_mr_++;
    mrs_.emplace(key, MemoryRegion{key, pd, base, len, owner});
    return key;
  }

  Status deregister_mr(MrKey key) {
    if (mrs_.erase(key) == 0) return not_found("deregister_mr: unknown MR");
    return Status::ok();
  }

  StatusOr<const MemoryRegion*> mr(MrKey key) const {
    auto it = mrs_.find(key);
    if (it == mrs_.end()) return not_found("unknown MR");
    return &it->second;
  }

  StatusOr<QpNum> create_qp(PdId pd) {
    if (pd_owner_.count(pd) == 0) return not_found("create_qp: unknown PD");
    const QpNum num = next_qp_++;
    qps_.emplace(num, QueuePair{num, pd, QpState::kReset, 0});
    return num;
  }

  Status modify_qp(QpNum num, QpState target, std::uint32_t remote_qp = 0) {
    auto it = qps_.find(num);
    if (it == qps_.end()) return not_found("modify_qp: unknown QP");
    QueuePair& qp = it->second;
    // Enforce the legal verbs state ladder RESET->INIT->RTR->RTS.
    const bool legal =
        (target == QpState::kInit && qp.state == QpState::kReset) ||
        (target == QpState::kRtr && qp.state == QpState::kInit) ||
        (target == QpState::kRts && qp.state == QpState::kRtr) ||
        target == QpState::kError || target == QpState::kReset;
    if (!legal) {
      return failed_precondition("modify_qp: illegal state transition");
    }
    qp.state = target;
    if (remote_qp != 0) qp.remote_qp = remote_qp;
    return Status::ok();
  }

  StatusOr<const QueuePair*> qp(QpNum num) const {
    auto it = qps_.find(num);
    if (it == qps_.end()) return not_found("unknown QP");
    return &it->second;
  }

  Status destroy_qp(QpNum num) {
    if (qps_.erase(num) == 0) return not_found("destroy_qp: unknown QP");
    return Status::ok();
  }

  // -- Migration adoption -------------------------------------------------------
  // A migrated guest keeps its MR keys and QP numbers (they are baked into
  // its WQEs and wire protocol); the destination RNIC adopts the objects
  // verbatim instead of allocating new ones. Key collisions with resident
  // tenants are a hard error — the orchestrator must pick another RNIC.

  Status adopt_mr(const MemoryRegion& mr) {
    if (pd_owner_.count(mr.pd) == 0) return not_found("adopt_mr: unknown PD");
    if (mrs_.count(mr.key) != 0) {
      return already_exists("adopt_mr: MR key in use");
    }
    mrs_.emplace(mr.key, mr);
    next_mr_ = std::max(next_mr_, mr.key + 1);
    return Status::ok();
  }

  Status adopt_qp(const QueuePair& qp) {
    if (pd_owner_.count(qp.pd) == 0) return not_found("adopt_qp: unknown PD");
    if (qps_.count(qp.num) != 0) {
      return already_exists("adopt_qp: QP number in use");
    }
    qps_.emplace(qp.num, qp);
    next_qp_ = std::max(next_qp_, qp.num + 1);
    return Status::ok();
  }

  /// All MRs of one protection domain, sorted by key (deterministic).
  std::vector<MemoryRegion> mrs_in_pd(PdId pd) const {
    std::vector<MemoryRegion> out;
    for (const auto& [key, mr] : mrs_) {
      if (mr.pd == pd) out.push_back(mr);
    }
    std::sort(out.begin(), out.end(),
              [](const MemoryRegion& a, const MemoryRegion& b) {
                return a.key < b.key;
              });
    return out;
  }

  /// All QPs of one protection domain, sorted by number (deterministic).
  std::vector<QueuePair> qps_in_pd(PdId pd) const {
    std::vector<QueuePair> out;
    for (const auto& [num, qp] : qps_) {
      if (qp.pd == pd) out.push_back(qp);
    }
    std::sort(out.begin(), out.end(),
              [](const QueuePair& a, const QueuePair& b) {
                return a.num < b.num;
              });
    return out;
  }

  /// The protection-domain check performed by hardware on every access:
  /// QP and MR must share a PD (and the QP must be RTS for data ops).
  Status check_access(QpNum qp_num, MrKey mr_key) const {
    auto qit = qps_.find(qp_num);
    if (qit == qps_.end()) return not_found("check_access: unknown QP");
    auto mit = mrs_.find(mr_key);
    if (mit == mrs_.end()) return not_found("check_access: unknown MR");
    if (qit->second.pd != mit->second.pd) {
      return permission_denied("QP and MR belong to different PDs");
    }
    if (qit->second.state != QpState::kRts) {
      return failed_precondition("QP not in RTS state");
    }
    return Status::ok();
  }

  std::size_t pd_count() const { return pd_owner_.size(); }
  std::size_t mr_count() const { return mrs_.size(); }
  std::size_t qp_count() const { return qps_.size(); }

  // -- Per-tenant attribution ---------------------------------------------------
  // Every PD is owned by exactly one VM, so MR/QP ownership rolls up through
  // the PD. Derived on demand into ordered maps (safe to feed emitters); the
  // TenantIsolationAuditor cross-checks these sums against the totals above.

  std::map<VmId, std::size_t> mr_count_by_vm() const {
    std::map<VmId, std::size_t> out;
    for (const auto& [key, mr] : mrs_) out[pd_owner_.at(mr.pd)] += 1;
    return out;
  }

  std::map<VmId, std::size_t> qp_count_by_vm() const {
    std::map<VmId, std::size_t> out;
    for (const auto& [num, qp] : qps_) out[pd_owner_.at(qp.pd)] += 1;
    return out;
  }

  std::size_t mr_count(VmId vm) const {
    std::size_t n = 0;
    for (const auto& [key, mr] : mrs_) {
      auto it = pd_owner_.find(mr.pd);
      if (it != pd_owner_.end() && it->second == vm) ++n;
    }
    return n;
  }

  std::size_t qp_count(VmId vm) const {
    std::size_t n = 0;
    for (const auto& [num, qp] : qps_) {
      auto it = pd_owner_.find(qp.pd);
      if (it != pd_owner_.end() && it->second == vm) ++n;
    }
    return n;
  }

 private:
  PdId next_pd_ = 1;
  MrKey next_mr_ = 1;
  QpNum next_qp_ = 1;
  std::unordered_map<PdId, VmId> pd_owner_;
  std::unordered_map<MrKey, MemoryRegion> mrs_;
  std::unordered_map<QpNum, QueuePair> qps_;
};

}  // namespace stellar
