#include "rnic/device.h"

#include <stdexcept>

namespace stellar {

Rnic::Rnic(HostPcie& pcie, Bdf pf_bdf, std::size_t switch_id,
           RnicConfig config)
    : pcie_(&pcie),
      pf_bdf_(pf_bdf),
      switch_id_(switch_id),
      config_(std::move(config)),
      mtt_(config_.mtt_capacity_pages) {
  auto bar = pcie_->attach_device(pf_bdf_, switch_id_, config_.doorbell_bar_bytes);
  if (!bar.is_ok()) {
    throw std::runtime_error("Rnic: cannot attach PF: " +
                             bar.status().to_string());
  }
  bar_ = bar.value();
}

StatusOr<SimTime> Rnic::set_num_vfs(std::uint32_t count) {
  if (count > config_.max_vfs) {
    return resource_exhausted("Rnic: VF count exceeds hardware maximum");
  }
  if (!vfs_.empty() && count != 0) {
    // The vendor constraint of Problem (1): no incremental reconfiguration.
    return failed_precondition(
        "Rnic: VF count can only change between zero and a value; "
        "destroy all VFs first");
  }
  SimTime cost = SimTime::zero();
  if (count == 0) {
    for (const VfState& vf : vfs_) {
      pcie_->disable_p2p(vf.bdf);
      (void)pcie_->detach_device(vf.bdf);
    }
    vfs_.clear();
    cost = config_.vf_reset_time;
    return cost;
  }
  cost = config_.vf_reset_time;
  for (std::uint32_t i = 0; i < count; ++i) {
    // VFs take function numbers after the PF on the same bus/device.
    const Bdf bdf{pf_bdf_.bus(),
                  static_cast<std::uint8_t>(pf_bdf_.device() + 1 + i / 8),
                  static_cast<std::uint8_t>((i % 8))};
    auto bar = pcie_->attach_device(bdf, switch_id_, kPage4K * 64);
    if (!bar.is_ok()) {
      // Roll back partial creation.
      for (const VfState& vf : vfs_) (void)pcie_->detach_device(vf.bdf);
      vfs_.clear();
      return bar.status();
    }
    vfs_.push_back(VfState{bdf});
    cost += config_.vf_create_time;
  }
  return cost;
}

StatusOr<Bdf> Rnic::vf_bdf(std::uint32_t index) const {
  if (index >= vfs_.size()) return out_of_range("Rnic: VF index");
  return vfs_[index].bdf;
}

Status Rnic::enable_vf_gdr(std::uint32_t index) {
  if (index >= vfs_.size()) return out_of_range("Rnic: VF index");
  return pcie_->enable_p2p(vfs_[index].bdf);
}

StatusOr<Rnic::VirtualDevice> Rnic::create_virtual_device(VmId vm) {
  if (vdevs_.size() >= config_.max_virtual_devices) {
    return resource_exhausted("Rnic: virtual device limit reached");
  }
  std::uint64_t offset = 0;
  if (!free_doorbells_.empty()) {
    offset = free_doorbells_.back();
    free_doorbells_.pop_back();
  } else {
    if (next_doorbell_offset_ + kPage4K > config_.doorbell_bar_bytes) {
      return resource_exhausted("Rnic: doorbell BAR exhausted");
    }
    offset = next_doorbell_offset_;
    next_doorbell_offset_ += kPage4K;
  }
  VirtualDevice dev;
  dev.id = next_vdev_id_++;
  dev.doorbell = bar_.base + offset;
  dev.vm = vm;
  vdevs_.emplace(dev.id, dev);
  return dev;
}

Status Rnic::destroy_virtual_device(std::uint32_t id) {
  auto it = vdevs_.find(id);
  if (it == vdevs_.end()) return not_found("Rnic: unknown virtual device");
  free_doorbells_.push_back(it->second.doorbell - bar_.base);
  vdevs_.erase(it);
  return Status::ok();
}

}  // namespace stellar
