// Stellar's multipath RDMA transport (§7).
//
// Sender: packetizes posted verbs (WRITE / SEND / READ) into MTU-sized
// packets, sprays each packet on a selector-chosen path, and paces with a
// window-based congestion-control context — by default a single context
// shared across all paths (§9); per-path windows are available for the
// ablation of that design choice. Loss recovery is purely RTO-based
// (250 us default): timed-out packets are retransmitted on a *different*
// path, and repeatedly failing paths are blacklisted (failure mitigation).
//
// Receiver: Direct Packet Placement — out-of-order packets are placed as
// they arrive (no reorder buffer), deduplicated by PSN against a
// compacting floor, and each packet is acknowledged individually with the
// ECN mark echoed. SENDs consume posted receive WRs; READ responses flow
// on an auto-created reverse-direction connection.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/snapshot.h"
#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "rnic/congestion.h"
#include "rnic/multipath.h"
#include "sim/hybrid.h"
#include "sim/simulator.h"

namespace stellar {

struct TransportConfig {
  std::uint32_t mtu = 4096;
  std::uint16_t num_paths = 128;
  MultipathAlgo algo = MultipathAlgo::kObs;
  SimTime rto = SimTime::micros(250);
  CcConfig cc;
  CcAlgo cc_algo = CcAlgo::kWindowEcnRtt;
  /// Stack-dependent overheads (Figure 13's VF+VxLAN baseline): extra
  /// encapsulation bytes on every packet, a fixed per-packet processing
  /// delay (vSwitch rule walk + encap) before the wire, and a sustained
  /// throughput ceiling of the encap engine (zero = uncapped).
  std::uint32_t extra_header_bytes = 0;
  SimTime per_packet_overhead = SimTime::zero();
  Bandwidth stack_rate_cap = Bandwidth::bits_per_sec(0);
  /// A packet retransmitted this many times moves the QP to an error
  /// state (mirrors the verbs retry counter); keeps a dead peer from
  /// spinning the RTO forever.
  std::uint32_t max_retries = 64;
  /// Failure mitigation (§7.2's third parameter): a path that times out
  /// this many times consecutively is blacklisted for `blacklist_hold`,
  /// steering the spray around a dead link without waiting for BGP.
  /// 0 disables blacklisting.
  std::uint32_t blacklist_threshold = 3;
  SimTime blacklist_hold = SimTime::millis(10);
  /// Probe-based reinstatement: a blacklisted path is re-admitted only once
  /// a single-packet probe on it is acknowledged (first probe goes out
  /// `blacklist_hold` after blacklisting, then every `probe_interval` while
  /// the connection has work pending). With `blacklist_probe = false` the
  /// blacklist falls back to blind hold-down expiry: after `blacklist_hold`
  /// the path is simply tried again.
  bool blacklist_probe = true;
  SimTime probe_interval = SimTime::millis(1);
  /// Per-path congestion control (§9's alternative design): each path gets
  /// its own window of init_window/num_paths. The paper rejected this
  /// because the silicon budget then caps the fan-out at ~4 paths; the
  /// ablation bench exercises exactly that trade.
  bool per_path_cc = false;
  /// Owning tenant of every QP opened with this config — the attribution
  /// key for per-tenant goodput/SLO tracking (docs/TENANCY.md).
  TenantId tenant = kHostTenant;
};

class RdmaEngine;

/// Sender-side connection state. Created via RdmaEngine::connect().
///
/// Implements FluidClient (sim/hybrid.h): when the connection's fabric
/// region is in fluid mode, posted WRITEs are served analytically at the
/// max-min rate instead of being packetized — freeze rewinds unacked wire
/// bytes into unsent demand, thaw seeds the congestion window from the
/// fluid rate and resumes packet transmission.
class RdmaConnection : public FluidClient {
 public:
  using Completion = std::function<void()>;
  using ErrorHandler = std::function<void(const Status&)>;

  /// Queue an RDMA WRITE of `bytes`. `on_complete` fires when every packet
  /// of the message has been acknowledged. Returns the message id (unique
  /// per connection), which the receiver-side handler also observes.
  /// `tag` is an opaque application label delivered with the receiver-side
  /// completion (collectives use it as the slice lane).
  std::uint64_t post_write(std::uint64_t bytes, Completion on_complete = {},
                           std::uint32_t tag = 0);

  /// Two-sided SEND: like WRITE on the wire, but the receiver matches it
  /// against a posted receive WR (RdmaEngine::post_recv).
  std::uint64_t post_send(std::uint64_t bytes, Completion on_complete = {},
                          std::uint32_t tag = 0);

  /// RDMA READ of `bytes` from the remote peer. `on_data` fires at *this*
  /// endpoint once the full response has been placed.
  std::uint64_t post_read(std::uint64_t bytes, Completion on_data = {});

  std::uint64_t id() const { return id_; }
  EndpointId local() const { return local_; }
  EndpointId remote() const { return remote_; }
  TenantId tenant() const { return config_.tenant; }

  std::uint64_t inflight_bytes() const { return inflight_bytes_; }
  std::uint64_t completed_messages() const { return completed_messages_; }
  std::uint64_t completed_bytes() const { return completed_bytes_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  /// Idle = no unacked packets and no unsent data. Checked on the
  /// *outstanding table*, not on inflight_bytes_: a zero-length message in
  /// flight carries zero payload bytes but still owns a PSN slot, and the
  /// connection must not report drained (probes dormant, quiesce "done")
  /// until that packet is acknowledged or the QP errors.
  bool idle() const { return outstanding_.empty() && unsent_queue_.empty(); }
  /// True once a packet exhausted its retry budget (QP in error state).
  bool in_error() const { return error_; }
  /// OK while healthy; the terminal error (kUnavailable) once the QP moved
  /// to the error state. Collectives poll this to distinguish "still
  /// flowing" from "dead peer" without waiting for a wall-clock timeout.
  Status status() const { return error_ ? error_status_ : Status::ok(); }
  /// Fires exactly once when the QP enters the error state (retry budget
  /// exhausted or device reset). Pending completions never fire after an
  /// error; this callback is the failure signal that replaces them. A
  /// handler installed *after* the QP already errored fires immediately —
  /// the exactly-once contract holds regardless of registration order
  /// (e.g. a zero-length message whose QP dies before the application
  /// wires its handler).
  void set_on_error(ErrorHandler handler) {
    on_error_ = std::move(handler);
    if (error_ && on_error_) {
      ErrorHandler h = std::move(on_error_);
      on_error_ = {};
      h(error_status_);
    }
  }
  std::size_t blacklisted_paths() const { return blacklist_.size(); }
  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t probes_acked() const { return probes_acked_; }
  /// Paths taken off the blacklist by a successful probe or data ACK.
  std::uint64_t paths_reinstated() const { return paths_reinstated_; }

  /// Window of the shared context, or the sum across per-path contexts.
  std::uint64_t window() const;

  const CongestionControl& cc() const { return *cc_; }
  PathSelector& selector() { return *selector_; }

  // -- FluidClient (hybrid fidelity; called by HybridDriver) ----------------

  std::uint64_t fluid_conn_id() const override { return id_; }
  EndpointId fluid_endpoint() const override { return local_; }
  bool fluid_eligible() const override;
  bool fluid_errored() const override { return error_; }
  FluidFlowDesc fluid_freeze() override;
  void fluid_thaw(double rate_bytes_per_sec) override;
  std::uint64_t fluid_serve(std::uint64_t bytes) override;
  std::uint64_t fluid_remaining() const override;
  std::uint64_t fluid_next_completion_bytes() const override;
  std::uint64_t fluid_retransmit_count() const override {
    return retransmits_;
  }

  ~RdmaConnection() override;

 private:
  friend class RdmaEngine;
  friend class TransportAuditor;    // reads QP state for invariant audits
  friend struct TransportTestPeer;  // corruption injection in audit tests

  RdmaConnection(RdmaEngine& engine, std::uint64_t id, EndpointId local,
                 EndpointId remote, const TransportConfig& config);

  struct Message {
    std::uint64_t id = 0;
    std::uint64_t total = 0;
    std::uint64_t sent = 0;
    std::uint64_t acked = 0;
    std::uint32_t tag = 0;
    PacketKind kind = PacketKind::kWrite;
    SimTime posted_at;  // post time, for the message-lifetime trace span
    Completion on_complete;
  };

  struct Outstanding {
    std::uint32_t bytes = 0;
    std::uint16_t path = 0;
    SimTime sent_at;
    std::uint64_t msg_id = 0;
    std::uint64_t msg_offset = 0;
    std::uint64_t msg_total = 0;
    std::uint32_t msg_tag = 0;
    PacketKind kind = PacketKind::kWrite;
    std::uint32_t retries = 0;
  };

  void send_more();
  void transmit(std::uint64_t psn, const Outstanding& meta);
  void handle_ack(const NetPacket& ack);
  void arm_rto();
  void on_rto_fire();

  /// Terminal transition to the error state: flush all in-flight state,
  /// fail (drop) pending messages, cancel timers/probes, fire on_error.
  void enter_error(Status reason);

  /// Blacklist probing (probe-based reinstatement).
  void schedule_probe(std::uint16_t path, SimTime delay);
  void send_probe(std::uint16_t path);
  void kick_probes();

  std::uint64_t enqueue_message(std::uint64_t bytes, PacketKind kind,
                                std::uint32_t tag, Completion on_complete);

  /// The hybrid driver attached to the fabric, or nullptr (pure packet).
  HybridDriver* hybrid_driver() const;
  /// Complete one message under fluid service: receiver delivery first,
  /// then the sender completion — the same order packet mode produces.
  void fluid_complete_message(Message& msg);

  /// Checkpoint/restore of the full sender-side QP context (config, PSN
  /// space, unacked packets, queued messages, CC state, blacklists).
  /// Message completion callbacks are NOT serialized — the engine harvests
  /// and re-attaches them across a hot restart; a cold restore (migration)
  /// starts with empty callbacks and the application re-registers.
  /// Driven by RdmaEngine::save_state / restore_state.
  void save_state(SnapshotWriter& w) const;
  void restore_state(SnapshotReader& r);
  /// Re-create CC contexts / path selector from config_ (shared with the
  /// ctor); restore_state then overlays the serialized CC state. The spray
  /// selector's learned weights are ephemeral hardware state and restart
  /// fresh — deterministically, from the connection-id seed.
  void rebuild_from_config();
  /// Re-arm timers/probes and resume transmission after restore_state.
  void resume_after_restore();
  /// Cancel every pending timer/probe without touching logical state —
  /// the pre-restore half of a hot restart.
  void cancel_timers();

  /// Path choice honoring the blacklist.
  std::uint16_t pick_path();
  void note_path_timeout(std::uint16_t path);
  void note_path_ack(std::uint16_t path);

  /// Congestion admission / bookkeeping (shared or per-path).
  bool admit(std::uint16_t path, std::uint32_t bytes) const;
  CongestionControl& cc_for(std::uint16_t path);

  RdmaEngine& engine_;
  TransportConfig config_;
  std::uint64_t id_;
  EndpointId local_;
  EndpointId remote_;

  std::unique_ptr<CongestionControl> cc_;  // shared context (default)
  std::vector<std::unique_ptr<CongestionControl>> per_path_cc_;  // ablation
  std::vector<std::uint64_t> per_path_inflight_;
  std::unique_ptr<PathSelector> selector_;

  std::uint64_t next_psn_ = 0;
  std::uint64_t next_msg_id_ = 0;
  std::uint64_t inflight_bytes_ = 0;

  std::deque<std::uint64_t> unsent_queue_;            // msg ids with unsent data
  std::unordered_map<std::uint64_t, Message> messages_;
  std::map<std::uint64_t, Outstanding> outstanding_;  // psn -> in-flight meta
  SimTime stack_next_free_;  // pacing point of the (optional) encap engine

  // Failure mitigation: consecutive timeouts per path and hold-down expiry.
  std::unordered_map<std::uint16_t, std::uint32_t> path_timeout_streak_;
  std::unordered_map<std::uint16_t, SimTime> blacklist_;
  // One pending probe event per blacklisted path (probe mode only). Probes
  // go dormant while the connection is idle so the simulator can drain.
  std::unordered_map<std::uint16_t, EventHandle> probe_events_;
  std::uint64_t next_probe_seq_ = 0;

  EventHandle rto_event_;

  std::uint64_t completed_messages_ = 0;
  std::uint64_t completed_bytes_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t probes_sent_ = 0;
  std::uint64_t probes_acked_ = 0;
  std::uint64_t paths_reinstated_ = 0;
  bool error_ = false;
  Status error_status_;
  ErrorHandler on_error_;
  /// True while this connection's region is in fluid mode (set by
  /// fluid_freeze, cleared by fluid_thaw / enter_error).
  bool fluid_ = false;
};

/// Message observed complete at the receiver (all payload bytes placed).
struct RxMessage {
  std::uint64_t conn_id = 0;
  std::uint64_t msg_id = 0;
  std::uint64_t bytes = 0;
  std::uint32_t tag = 0;
  EndpointId src = kInvalidEndpoint;
  PacketKind kind = PacketKind::kWrite;
};

/// Per-endpoint transport engine: owns sender connections and all
/// receiver-side state, and is registered as the endpoint's packet handler.
///
/// Implements FluidReceiver: whole-message fluid deliveries land through
/// the same deliver_message() path packet completions use, with goodput
/// compensation for partially received messages and a completed-message
/// ledger that suppresses double delivery across mode boundaries.
class RdmaEngine : public FluidReceiver {
 public:
  using MessageHandler = std::function<void(const RxMessage&)>;
  using RecvHandler = std::function<void(const RxMessage&)>;

  RdmaEngine(Simulator& sim, ClosFabric& fabric, EndpointId self);
  ~RdmaEngine() override;

  RdmaEngine(const RdmaEngine&) = delete;
  RdmaEngine& operator=(const RdmaEngine&) = delete;

  /// Open a connection to `remote` (must share rail/plane with `self`).
  StatusOr<RdmaConnection*> connect(EndpointId remote,
                                    const TransportConfig& config);

  /// Hard device reset (fault injection): every QP of this engine moves to
  /// the error state (firing its on_error handler), and for `down_for` of
  /// simulated time every arriving packet is dropped at the device — the
  /// window a real function-level reset is unresponsive for.
  void reset_device(SimTime down_for);
  std::uint64_t device_resets() const { return device_resets_; }
  /// Packets discarded because they arrived during a reset window.
  std::uint64_t reset_drops() const { return reset_drops_; }

  /// Called whenever a full message lands at this endpoint.
  void set_message_handler(MessageHandler handler) {
    message_handler_ = std::move(handler);
  }

  /// Per-connection receive handler (takes precedence over the global one).
  /// Collectives register the peer's conn id here to drive their state
  /// machines off receiver-side completions.
  void set_conn_message_handler(std::uint64_t conn_id, MessageHandler handler) {
    conn_handlers_[conn_id] = std::move(handler);
  }

  /// Post a receive WR for SENDs arriving on `conn_id`. SENDs completing
  /// with no WR posted are parked and match the next post_recv (eager
  /// buffering). The handler fires when a SEND is matched.
  void post_recv(std::uint64_t conn_id, RecvHandler on_recv);
  std::size_t pending_recvs(std::uint64_t conn_id) const;
  std::uint64_t unexpected_sends() const { return unexpected_sends_; }

  /// Transport config used for auto-created READ responder connections.
  void set_default_config(const TransportConfig& config) {
    default_config_ = config;
  }

  EndpointId self() const { return self_; }
  Simulator& simulator() { return *sim_; }
  ClosFabric& fabric() { return *fabric_; }

  /// Goodput: first-copy payload bytes delivered to this endpoint.
  std::uint64_t rx_goodput_bytes() const { return rx_goodput_bytes_; }
  std::uint64_t rx_duplicate_packets() const { return rx_duplicates_; }
  std::uint64_t rx_out_of_order_packets() const { return rx_out_of_order_; }
  void reset_rx_stats() {
    rx_goodput_bytes_ = 0;
    rx_duplicates_ = 0;
    rx_out_of_order_ = 0;
  }

  /// Per-path packet counts observed at this receiver — the path-level
  /// observability that RNIC-side spraying preserves and switch-side
  /// adaptive routing destroys (§7.1's monitoring argument).
  const std::unordered_map<std::uint16_t, std::uint64_t>& rx_path_histogram()
      const {
    return rx_path_histogram_;
  }

  const std::vector<std::unique_ptr<RdmaConnection>>& connections() const {
    return connections_;
  }

  RdmaConnection* connection(std::uint64_t conn_id) const {
    auto it = by_id_.find(conn_id);
    return it == by_id_.end() ? nullptr : it->second;
  }

  /// Sender-side completed payload bytes summed per owning tenant — derived
  /// on demand from the connections, so there is no extra counter to keep
  /// coherent across snapshots. Ordered map: safe to feed emitters.
  std::map<TenantId, std::uint64_t> completed_bytes_by_tenant() const {
    std::map<TenantId, std::uint64_t> out;
    for (const auto& conn : connections_) {
      out[conn->tenant()] += conn->completed_bytes();
    }
    return out;
  }

  /// Checkpoint the engine's full guest-visible transport state (sender QPs
  /// incl. unacked packets and CC context, receiver PSN floors and partial
  /// messages, counters) into a deterministic byte-stable snapshot.
  /// Application callbacks (message handlers, completions, posted receive
  /// WRs) are never serialized: across a hot restart they stay live in
  /// place, across a migration the application re-registers them.
  std::string save_state() const;

  /// Restore a snapshot produced by save_state(). Works on the engine that
  /// produced it (backend hot-upgrade: state rebuilt in place, pending
  /// timers re-armed) or on a freshly constructed engine for the same
  /// endpoint (live migration: connections are re-created from their
  /// serialized configs). In-flight packets of the old incarnation are
  /// recovered by the normal RTO/retransmit path.
  Status restore_state(const std::string& bytes);

  /// Backend hot-upgrade of this engine: snapshot, tear down the mutable
  /// runtime (timers, probes), reconstruct from the snapshot, verify the
  /// round trip re-serializes byte-identically, and resume. Message
  /// completion callbacks are preserved across the restart. Returns the
  /// snapshot taken, for digest/size reporting.
  StatusOr<std::string> hot_restart();
  std::uint64_t hot_restarts() const { return hot_restarts_; }

  /// Backend-restart blackout: for `window` of simulated time every
  /// arriving packet is dropped at the device (the old backend process is
  /// gone, the new one not yet attached). Unlike reset_device this does NOT
  /// error any QP — lost packets are recovered by RTO/retransmit.
  void quiesce(SimTime window);
  std::uint64_t quiesce_drops() const { return quiesce_drops_; }

  // -- FluidReceiver (hybrid fidelity) --------------------------------------

  /// Whole-message delivery from a fluid-served sender. Skipped if the
  /// message already completed in packet mode (its ACKs were mid-flight at
  /// freeze); otherwise credits only the not-yet-received bytes as goodput
  /// and fires the normal receiver completion path.
  void fluid_deliver(const FluidDelivery& delivery) override;
  /// Thaw-time sync of a fluid-served prefix: raises the message's
  /// reassembly watermark to the sender's served byte count and credits the
  /// delta as goodput, so a message that straddles a fluid epoch still
  /// completes when its packet-mode tail lands.
  void fluid_advance(const FluidDelivery& delivery) override;
  /// Fluid deliveries dropped because the destination endpoint has no
  /// registered engine (the fluid analogue of dropped_no_handler).
  std::uint64_t fluid_undeliverable() const { return fluid_undeliverable_; }

 private:
  friend class RdmaConnection;
  friend class TransportAuditor;    // reads receiver PSN state for audits
  friend struct TransportTestPeer;  // corruption injection in audit tests

  // READ responses flow on a reverse connection whose id sets this bit.
  static constexpr std::uint64_t kReverseFlag = 1ull << 63;

  struct RxMessageState {
    std::uint64_t received = 0;
  };

  // PSN tracking with a compacting floor: everything below `psn_floor` has
  // been received, only the (bounded, ~one window) set above it is stored.
  struct RxState {
    std::uint64_t psn_floor = 0;
    std::unordered_set<std::uint64_t> psns_above_floor;
    std::unordered_map<std::uint64_t, RxMessageState> messages;
    std::uint64_t highest_psn = 0;
    bool any = false;

    /// Returns false (duplicate) or true (fresh, recorded).
    bool record(std::uint64_t psn) {
      if (psn < psn_floor) return false;
      if (!psns_above_floor.insert(psn).second) return false;
      while (psns_above_floor.erase(psn_floor) != 0) ++psn_floor;
      return true;
    }
  };

  struct RecvQueue {
    std::deque<RecvHandler> posted;
    std::deque<RxMessage> unexpected;
  };

  // Receiver-side ledger of completed message ids per connection, with a
  // compacting floor (message ids are per-connection monotonic and complete
  // near-in-order, so the above-floor set stays tiny). Consulted by
  // fluid_deliver to suppress double delivery of a message that completed
  // in packet mode but whose ACKs were absorbed at freeze — the sender
  // re-serves its unacked bytes in fluid, and without the ledger the
  // receiver completion (and goodput) would fire twice. Maintained only
  // while a hybrid driver is attached.
  struct RxCompleted {
    std::uint64_t floor = 0;
    std::unordered_set<std::uint64_t> above;
    void mark(std::uint64_t id) {
      if (id < floor) return;
      above.insert(id);
      while (above.erase(floor) != 0) ++floor;
    }
    bool contains(std::uint64_t id) const {
      return id < floor || above.count(id) != 0;
    }
  };

  /// Route a fluid delivery (or, with `advance`, a thaw-time partial
  /// progress sync) to the remote endpoint's engine.
  void fluid_deliver_remote(EndpointId remote, const FluidDelivery& delivery,
                            bool advance = false);

  void on_packet(NetPacket&& p);
  void handle_data(NetPacket&& p);
  /// Deserialize engine + connection state (shared by restore_state and
  /// hot_restart). Does not touch application callbacks.
  Status restore_core(SnapshotReader& r);
  void send_ack(const NetPacket& data);
  void deliver_message(const RxMessage& rx);
  void serve_read_request(const NetPacket& p);
  RdmaConnection& reverse_connection(std::uint64_t forward_id,
                                     EndpointId peer);

  Simulator* sim_;
  ClosFabric* fabric_;
  EndpointId self_;
  std::uint64_t next_conn_seq_ = 1;
  TransportConfig default_config_;

  std::vector<std::unique_ptr<RdmaConnection>> connections_;
  std::unordered_map<std::uint64_t, RdmaConnection*> by_id_;
  std::unordered_map<std::uint64_t, RxState> rx_;
  std::unordered_map<std::uint64_t, RxCompleted> rx_completed_;
  std::uint64_t fluid_undeliverable_ = 0;
  MessageHandler message_handler_;
  std::unordered_map<std::uint64_t, MessageHandler> conn_handlers_;
  std::unordered_map<std::uint64_t, RecvQueue> recv_queues_;

  // Requester-side pending READs: key = reverse conn id, tag = read id.
  struct PendingRead {
    RdmaConnection::Completion on_data;
  };
  std::unordered_map<std::uint64_t, PendingRead> pending_reads_;
  std::uint64_t next_read_id_ = 1;

  std::uint64_t rx_goodput_bytes_ = 0;
  std::uint64_t rx_duplicates_ = 0;
  std::uint64_t rx_out_of_order_ = 0;
  std::uint64_t unexpected_sends_ = 0;
  std::unordered_map<std::uint16_t, std::uint64_t> rx_path_histogram_;

  // Device-reset fault window: packets arriving before reset_until_ are
  // discarded at the device (the fabric already counted them delivered).
  SimTime reset_until_ = SimTime::zero();
  std::uint64_t device_resets_ = 0;
  std::uint64_t reset_drops_ = 0;

  // Backend-restart blackout window (quiesce): drops without erroring QPs.
  SimTime quiesce_until_ = SimTime::zero();
  std::uint64_t quiesce_drops_ = 0;
  std::uint64_t hot_restarts_ = 0;
};

}  // namespace stellar
