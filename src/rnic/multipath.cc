#include "rnic/multipath.h"

#include <algorithm>
#include <vector>

namespace stellar {

const char* multipath_algo_name(MultipathAlgo algo) {
  switch (algo) {
    case MultipathAlgo::kSinglePath:
      return "SinglePath";
    case MultipathAlgo::kRoundRobin:
      return "RR";
    case MultipathAlgo::kObs:
      return "OBS";
    case MultipathAlgo::kDwrr:
      return "DWRR";
    case MultipathAlgo::kBestRtt:
      return "BestRTT";
    case MultipathAlgo::kMprdmaLike:
      return "MPRDMA";
    case MultipathAlgo::kFlowlet:
      return "Flowlet";
  }
  return "?";
}

namespace {

class SinglePath final : public PathSelector {
 public:
  SinglePath(std::uint16_t n, std::uint64_t seed)
      : n_(n), fixed_(static_cast<std::uint16_t>(hash_mix(seed) % n)) {}
  std::uint16_t pick() override { return fixed_; }
  std::uint16_t num_paths() const override { return n_; }
  void fluid_path_weights(std::vector<double>& weights) const override {
    weights.assign(n_, 0.0);
    weights[fixed_] = 1.0;
  }

 private:
  std::uint16_t n_;
  std::uint16_t fixed_;
};

class RoundRobin final : public PathSelector {
 public:
  RoundRobin(std::uint16_t n, std::uint64_t seed)
      : n_(n), next_(static_cast<std::uint16_t>(hash_mix(seed) % n)) {}
  std::uint16_t pick() override {
    const std::uint16_t p = next_;
    next_ = static_cast<std::uint16_t>((next_ + 1) % n_);
    return p;
  }
  std::uint16_t num_paths() const override { return n_; }

 private:
  std::uint16_t n_;
  std::uint16_t next_;
};

class Obs final : public PathSelector {
 public:
  Obs(std::uint16_t n, std::uint64_t seed) : n_(n), rng_(seed) {}
  std::uint16_t pick() override {
    return static_cast<std::uint16_t>(rng_.below(n_));
  }
  std::uint16_t num_paths() const override { return n_; }

 private:
  std::uint16_t n_;
  Rng rng_;
};

/// Shared per-path RTT/ECN bookkeeping for the adaptive selectors.
struct PathScore {
  double rtt_us = 10.0;   // EWMA RTT estimate
  double ecn = 0.0;       // EWMA of ECN-mark fraction
  void update(SimTime rtt, bool ecn_mark) {
    constexpr double kG = 0.125;
    rtt_us = (1 - kG) * rtt_us + kG * rtt.us();
    ecn = (1 - kG) * ecn + kG * (ecn_mark ? 1.0 : 0.0);
  }
};

class BestRtt final : public PathSelector {
 public:
  BestRtt(std::uint16_t n, std::uint64_t seed) : scores_(n), rng_(seed) {}
  std::uint16_t pick() override {
    // 5% exploration keeps stale paths' estimates alive; otherwise greedy.
    if (rng_.chance(0.05)) {
      return static_cast<std::uint16_t>(rng_.below(scores_.size()));
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < scores_.size(); ++i) {
      if (scores_[i].rtt_us < scores_[best].rtt_us) best = i;
    }
    return static_cast<std::uint16_t>(best);
  }
  void on_ack(std::uint16_t path, SimTime rtt, bool ecn) override {
    scores_[path].update(rtt, ecn);
  }
  void on_timeout(std::uint16_t path) override {
    scores_[path].rtt_us *= 2.0;  // back off a path that lost packets
  }
  std::uint16_t num_paths() const override {
    return static_cast<std::uint16_t>(scores_.size());
  }

 private:
  std::vector<PathScore> scores_;
  Rng rng_;
};

class Dwrr final : public PathSelector {
 public:
  Dwrr(std::uint16_t n, std::uint64_t seed)
      : scores_(n), credits_(n, 0.0), rng_(seed) {}

  std::uint16_t pick() override {
    // Pick the path with the largest credit; replenish proportionally to
    // weight (inverse RTT) when everything is exhausted. Low-RTT paths get
    // served more often — the concentration Figure 10a punishes.
    auto max_it = std::max_element(credits_.begin(), credits_.end());
    if (*max_it < 1.0) {
      replenish();
      max_it = std::max_element(credits_.begin(), credits_.end());
    }
    *max_it -= 1.0;
    return static_cast<std::uint16_t>(max_it - credits_.begin());
  }
  void on_ack(std::uint16_t path, SimTime rtt, bool ecn) override {
    scores_[path].update(rtt, ecn);
  }
  void on_timeout(std::uint16_t path) override {
    scores_[path].rtt_us *= 2.0;
  }
  std::uint16_t num_paths() const override {
    return static_cast<std::uint16_t>(scores_.size());
  }

 private:
  void replenish() {
    double min_rtt = scores_[0].rtt_us;
    for (const auto& s : scores_) min_rtt = std::min(min_rtt, s.rtt_us);
    for (std::size_t i = 0; i < credits_.size(); ++i) {
      // Weight in [0,1]: quadratic falloff with relative RTT, so a path at
      // 2x the best RTT receives a quarter of the quantum.
      const double rel = min_rtt / scores_[i].rtt_us;
      credits_[i] += 8.0 * rel * rel;
    }
  }
  std::vector<PathScore> scores_;
  std::vector<double> credits_;
  Rng rng_;
};

class MprdmaLike final : public PathSelector {
 public:
  MprdmaLike(std::uint16_t n, std::uint64_t seed) : scores_(n), rng_(seed) {}

  std::uint16_t pick() override {
    // Two random candidates; keep the one with the lower congestion signal
    // (power-of-two-choices over ECN history). Retains high fan-out while
    // steering around marked paths, mimicking MP-RDMA's congestion-aware
    // path selection.
    const auto a = static_cast<std::uint16_t>(rng_.below(scores_.size()));
    const auto b = static_cast<std::uint16_t>(rng_.below(scores_.size()));
    return scores_[a].ecn <= scores_[b].ecn ? a : b;
  }
  void on_ack(std::uint16_t path, SimTime rtt, bool ecn) override {
    scores_[path].update(rtt, ecn);
  }
  void on_timeout(std::uint16_t path) override {
    scores_[path].ecn = 1.0;  // strongly avoid a path that lost packets
  }
  std::uint16_t num_paths() const override {
    return static_cast<std::uint16_t>(scores_.size());
  }

 private:
  std::vector<PathScore> scores_;
  Rng rng_;
};

class Flowlet final : public PathSelector {
 public:
  Flowlet(std::uint16_t n, std::uint64_t seed, SimTime gap)
      : n_(n), rng_(seed), gap_(gap),
        current_(static_cast<std::uint16_t>(rng_.below(n))) {}

  std::uint16_t pick() override { return pick_at(last_); }

  std::uint16_t pick_at(SimTime now) override {
    // A gap larger than the flowlet timeout starts a new flowlet on a
    // fresh random path; consecutive packets stick to the current one, so
    // no reordering can occur within a flowlet.
    if (now - last_ > gap_) {
      current_ = static_cast<std::uint16_t>(rng_.below(n_));
    }
    last_ = now;
    return current_;
  }

  void on_timeout(std::uint16_t path) override {
    if (path == current_) {
      current_ = static_cast<std::uint16_t>(rng_.below(n_));
    }
  }

  std::uint16_t num_paths() const override { return n_; }

 private:
  std::uint16_t n_;
  Rng rng_;
  SimTime gap_;
  std::uint16_t current_;
  SimTime last_;
};

}  // namespace

std::unique_ptr<PathSelector> PathSelector::create(MultipathAlgo algo,
                                                   std::uint16_t num_paths,
                                                   std::uint64_t seed) {
  switch (algo) {
    case MultipathAlgo::kSinglePath:
      return std::make_unique<SinglePath>(num_paths, seed);
    case MultipathAlgo::kRoundRobin:
      return std::make_unique<RoundRobin>(num_paths, seed);
    case MultipathAlgo::kObs:
      return std::make_unique<Obs>(num_paths, seed);
    case MultipathAlgo::kDwrr:
      return std::make_unique<Dwrr>(num_paths, seed);
    case MultipathAlgo::kBestRtt:
      return std::make_unique<BestRtt>(num_paths, seed);
    case MultipathAlgo::kMprdmaLike:
      return std::make_unique<MprdmaLike>(num_paths, seed);
    case MultipathAlgo::kFlowlet:
      // Gap chosen above the fabric's one-way delay spread so flowlet
      // boundaries cannot reorder (Let-It-Flow's criterion).
      return std::make_unique<Flowlet>(num_paths, seed, SimTime::micros(20));
  }
  return nullptr;
}

}  // namespace stellar
