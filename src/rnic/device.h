// RNIC device model: function provisioning (PF / SR-IOV VFs / Scalable
// Functions), doorbell space, and the MTT.
//
// Provisioning reproduces the operational constraints of §3.1:
//  * VFs are static — the enabled count can only toggle between zero and a
//    value; going 2 -> 3 requires destroying all VFs first (Problem 1).
//  * Each enabled VF consumes a fixed memory overhead (63 virtual queues of
//    5000 MTU-sized buffers ≈ 2.4 GB) and burns a BDF + switch LUT slot.
//  * SFs / vStellar devices are dynamic, share the parent BDF, take a 4 KiB
//    doorbell page, and are bounded only by doorbell space (64 k devices).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "pcie/host_pcie.h"
#include "rnic/mtt.h"
#include "rnic/verbs.h"

namespace stellar {

struct RnicConfig {
  std::string name = "rnic0";
  Bandwidth line_rate = Bandwidth::gbps(400);
  std::uint32_t ports = 2;
  std::uint64_t mtt_capacity_pages = 64ull << 20;  // 64M pages = 256 GiB
  std::size_t atc_capacity_pages = 8192;
  std::uint32_t max_vfs = 64;
  std::uint64_t vf_memory_overhead = 2'400ull << 20;  // ~2.4 GB per VF
  std::uint32_t max_virtual_devices = 64 * 1024;      // SF/vStellar bound
  std::uint64_t doorbell_bar_bytes = 64ull * 1024 * kPage4K;  // 64k pages
  SimTime vf_reset_time = SimTime::seconds(8.0);   // full function reset
  SimTime vf_create_time = SimTime::seconds(1.0);  // per VF after reset
  SimTime sf_create_time = SimTime::seconds(1.5);  // matches MasQ/vStellar
};

class Rnic {
 public:
  /// Attaches the RNIC's PF under `switch_id` of the host PCIe fabric.
  Rnic(HostPcie& pcie, Bdf pf_bdf, std::size_t switch_id,
       RnicConfig config = {});

  const RnicConfig& config() const { return config_; }
  Bdf pf_bdf() const { return pf_bdf_; }
  const Bar& bar() const { return bar_; }
  HostPcie& pcie() { return *pcie_; }

  // -- SR-IOV VFs (baseline path) ---------------------------------------------

  /// Set the enabled VF count. Only 0 -> n or n -> 0 transitions are legal
  /// without a reset; the returned time covers the reset + creation cost.
  StatusOr<SimTime> set_num_vfs(std::uint32_t count);

  std::uint32_t num_vfs() const { return static_cast<std::uint32_t>(vfs_.size()); }
  std::uint64_t vf_memory_bytes() const {
    return vfs_.size() * config_.vf_memory_overhead;
  }
  StatusOr<Bdf> vf_bdf(std::uint32_t index) const;

  /// Register a VF for GDR: claims a slot in the PCIe switch LUT.
  Status enable_vf_gdr(std::uint32_t index);

  // -- Scalable / vStellar functions ------------------------------------------

  struct VirtualDevice {
    std::uint32_t id = 0;
    Hpa doorbell;          // 4 KiB doorbell page inside the PF BAR
    VmId vm = kHostVm;
  };

  /// Dynamic creation; no BDF, no LUT slot, ~1.5 s. GDR works out of the
  /// box because traffic uses the PF's (already LUT-registered) BDF.
  StatusOr<VirtualDevice> create_virtual_device(VmId vm);
  Status destroy_virtual_device(std::uint32_t id);
  std::uint32_t virtual_device_count() const {
    return static_cast<std::uint32_t>(vdevs_.size());
  }

  /// Enable GDR for the PF itself (one LUT slot for *all* virtual devices).
  Status enable_pf_gdr() { return pcie_->enable_p2p(pf_bdf_); }

  // -- Shared resources ---------------------------------------------------------

  VerbsResources& verbs() { return verbs_; }
  const VerbsResources& verbs() const { return verbs_; }
  Mtt& mtt() { return mtt_; }
  const Mtt& mtt() const { return mtt_; }

 private:
  HostPcie* pcie_;
  Bdf pf_bdf_;
  std::size_t switch_id_;
  RnicConfig config_;
  Bar bar_;
  VerbsResources verbs_;
  Mtt mtt_;

  struct VfState {
    Bdf bdf;
  };
  std::vector<VfState> vfs_;

  std::unordered_map<std::uint32_t, VirtualDevice> vdevs_;
  std::uint32_t next_vdev_id_ = 1;
  std::uint64_t next_doorbell_offset_ = 0;
  std::vector<std::uint64_t> free_doorbells_;
};

}  // namespace stellar
