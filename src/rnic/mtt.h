// Memory Translation Table and its Stellar extension (eMTT, §6).
//
// The classic MTT maps an MR's virtual address to a DMA address that still
// needs IOMMU/ATS translation (in a RunD guest: GVA -> GPA). The eMTT entry
// additionally stores the *final* HPA and the memory owner (host DRAM vs
// GPU HBM), letting the RNIC emit pre-translated TLPs (AT=0b10) that PCIe
// switches route peer-to-peer — no ATC, no RC detour.
//
// Capacity is counted in 4 KiB pages; the paper notes MTT capacity is
// orders of magnitude larger than the PCIe ATC, which is why caching final
// translations there eliminates the Figure-8 droop. The table is still a
// shared per-RNIC resource: registrations carry the owning TenantId, and a
// per-tenant page cap (docs/TENANCY.md) turns an MR-churn storm into a
// kFailedPrecondition on the storming tenant instead of kResourceExhausted
// collateral on everyone else.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "common/status.h"
#include "common/units.h"
#include "memory/address.h"
#include "memory/range_map.h"
#include "obs/obs.h"
#include "rnic/verbs.h"

namespace stellar {

struct MttEntry {
  std::uint64_t target = 0;  // IoVa (untranslated) or HPA (eMTT, translated)
  MemoryOwner owner = MemoryOwner::kHostDram;
  bool translated = false;   // true => eMTT entry carrying a final HPA
};

class Mtt {
 public:
  explicit Mtt(std::uint64_t capacity_pages) : capacity_pages_(capacity_pages) {}

  /// Install the translation for one MR covering [base, base+len).
  Status register_region(MrKey key, Gva base, std::uint64_t len,
                         std::uint64_t target, MemoryOwner owner,
                         bool translated, TenantId tenant = kHostTenant) {
    const std::uint64_t pages = pages_covering(base, len, kPage4K);
    auto cap = tenant_page_cap_.find(tenant);
    if (cap != tenant_page_cap_.end() &&
        tenant_pages(tenant) + pages > cap->second) {
      return failed_precondition("Mtt: tenant page quota exceeded");
    }
    if (used_pages_ + pages > capacity_pages_) {
      return resource_exhausted("Mtt: table full");
    }
    auto [it, inserted] = regions_.try_emplace(key);
    if (!inserted) return already_exists("Mtt: MR already registered");
    Status s = it->second.map.map(base, Gva{target}, len);
    if (!s.is_ok()) {
      regions_.erase(it);
      return s;
    }
    it->second.owner = owner;
    it->second.translated = translated;
    it->second.pages = pages;
    it->second.tenant = tenant;
    used_pages_ += pages;
    tenant_pages_[tenant] += pages;
    return Status::ok();
  }

  Status deregister(MrKey key) {
    auto it = regions_.find(key);
    if (it == regions_.end()) return not_found("Mtt: unknown MR");
    used_pages_ -= it->second.pages;
    auto tp = tenant_pages_.find(it->second.tenant);
    if (tp != tenant_pages_.end()) {
      tp->second -= it->second.pages;
      if (tp->second == 0) tenant_pages_.erase(tp);
    }
    regions_.erase(it);
    return Status::ok();
  }

  /// Hardware lookup on the RX/TX pipeline: MR key + virtual address.
  StatusOr<MttEntry> lookup(MrKey key, Gva va) const {
    STELLAR_TRACE_ONLY(obs::count("mtt/lookups");)
    auto it = regions_.find(key);
    if (it == regions_.end()) {
      STELLAR_TRACE_ONLY(obs::count("mtt/misses");)
      return not_found("Mtt: unknown MR");
    }
    auto target = it->second.map.translate(va);
    if (!target.is_ok()) {
      STELLAR_TRACE_ONLY(obs::count("mtt/misses");)
      return out_of_range("Mtt: address outside MR");
    }
    STELLAR_TRACE_ONLY(
        if (it->second.translated) obs::count("mtt/translated_hits");)
    return MttEntry{target.value().value(), it->second.owner,
                    it->second.translated};
  }

  /// Cap one tenant's resident MTT pages (0 = uncapped).
  void set_tenant_page_cap(TenantId tenant, std::uint64_t max_pages) {
    if (max_pages == 0) {
      tenant_page_cap_.erase(tenant);
    } else {
      tenant_page_cap_[tenant] = max_pages;
    }
  }
  std::uint64_t tenant_pages(TenantId tenant) const {
    auto it = tenant_pages_.find(tenant);
    return it == tenant_pages_.end() ? 0 : it->second;
  }
  const std::map<TenantId, std::uint64_t>& pages_by_tenant() const {
    return tenant_pages_;
  }

  std::uint64_t used_pages() const { return used_pages_; }
  std::uint64_t capacity_pages() const { return capacity_pages_; }
  std::size_t region_count() const { return regions_.size(); }

 private:
  struct Region {
    RangeMap<Gva, Gva> map;  // Gva -> target (reuses Gva arithmetic; the
                             // `translated` flag says how to interpret it)
    MemoryOwner owner = MemoryOwner::kHostDram;
    bool translated = false;
    std::uint64_t pages = 0;
    TenantId tenant = kHostTenant;
  };

  std::uint64_t capacity_pages_;
  std::uint64_t used_pages_ = 0;
  std::unordered_map<MrKey, Region> regions_;
  std::map<TenantId, std::uint64_t> tenant_pages_;
  std::map<TenantId, std::uint64_t> tenant_page_cap_;
};

}  // namespace stellar
