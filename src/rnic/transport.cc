#include "rnic/transport.h"

#include "check/check.h"
#include "common/ordered.h"
#include "obs/obs.h"

namespace stellar {

// ---------------------------------------------------------------------------
// RdmaConnection (sender side)
// ---------------------------------------------------------------------------

RdmaConnection::RdmaConnection(RdmaEngine& engine, std::uint64_t id,
                               EndpointId local, EndpointId remote,
                               const TransportConfig& config)
    : engine_(engine),
      config_(config),
      id_(id),
      local_(local),
      remote_(remote) {
  rebuild_from_config();
  // Hybrid fidelity: connections created while a driver is attached are
  // fluid clients from birth — if the region is already in fluid mode the
  // driver freezes them immediately (a trivial freeze: nothing in flight).
  if (HybridDriver* driver = hybrid_driver()) driver->register_client(this);
}

RdmaConnection::~RdmaConnection() {
  if (HybridDriver* driver = hybrid_driver()) driver->unregister_client(this);
}

HybridDriver* RdmaConnection::hybrid_driver() const {
  return engine_.fabric_->hybrid_driver();
}

void RdmaConnection::rebuild_from_config() {
  cc_ = make_congestion_control(config_.cc_algo, config_.cc);
  selector_ = PathSelector::create(config_.algo, config_.num_paths,
                                   hash_combine(id_, 0xA11CE));
  per_path_cc_.clear();
  per_path_inflight_.clear();
  if (config_.per_path_cc) {
    // Split the silicon budget: each path context gets a 1/paths share of
    // the window resources (the §9 trade-off made concrete).
    CcConfig per_path = config_.cc;
    per_path.init_window =
        std::max<std::uint64_t>(per_path.mtu,
                                per_path.init_window / config_.num_paths);
    per_path.max_window =
        std::max<std::uint64_t>(per_path.mtu,
                                per_path.max_window / config_.num_paths);
    per_path.min_window = std::min(per_path.min_window, per_path.init_window);
    per_path_cc_.reserve(config_.num_paths);
    for (std::uint16_t p = 0; p < config_.num_paths; ++p) {
      per_path_cc_.push_back(
          make_congestion_control(config_.cc_algo, per_path));
    }
    per_path_inflight_.assign(config_.num_paths, 0);
  }
}

std::uint64_t RdmaConnection::window() const {
  if (!config_.per_path_cc) return cc_->window();
  std::uint64_t total = 0;
  for (const auto& cc : per_path_cc_) total += cc->window();
  return total;
}

bool RdmaConnection::admit(std::uint16_t path, std::uint32_t bytes) const {
  (void)bytes;
  if (!config_.per_path_cc) return cc_->can_send(inflight_bytes_);
  return per_path_cc_[path]->can_send(per_path_inflight_[path]);
}

CongestionControl& RdmaConnection::cc_for(std::uint16_t path) {
  return config_.per_path_cc ? *per_path_cc_[path] : *cc_;
}

std::uint64_t RdmaConnection::enqueue_message(std::uint64_t bytes,
                                              PacketKind kind,
                                              std::uint32_t tag,
                                              Completion on_complete) {
  const std::uint64_t msg_id = next_msg_id_++;
  // A post to a dead QP is silently discarded (verbs semantics: the WR
  // completes with a flush error; on_error already told the application).
  if (error_) return msg_id;
  Message msg;
  msg.id = msg_id;
  msg.total = bytes;
  msg.tag = tag;
  msg.kind = kind;
  msg.posted_at = engine_.simulator().now();
  msg.on_complete = std::move(on_complete);
  STELLAR_TRACE_ONLY(obs::count("transport/messages_posted");
                     obs::count("transport/bytes_posted", bytes);)
  messages_.emplace(msg_id, std::move(msg));
  unsent_queue_.push_back(msg_id);
  if (fluid_) {
    // Under fluid service no packet is built. A WRITE joins the flow's
    // analytic demand; anything else (SEND/READ) zooms the region back to
    // packet mode, which thaws this connection and re-runs send_more.
    if (kind == PacketKind::kWrite) {
      hybrid_driver()->on_fluid_post(this);
    } else {
      hybrid_driver()->on_ineligible_post(this);
    }
    return msg_id;
  }
  send_more();
  return msg_id;
}

std::uint64_t RdmaConnection::post_write(std::uint64_t bytes,
                                         Completion on_complete,
                                         std::uint32_t tag) {
  return enqueue_message(bytes, PacketKind::kWrite, tag,
                         std::move(on_complete));
}

std::uint64_t RdmaConnection::post_send(std::uint64_t bytes,
                                        Completion on_complete,
                                        std::uint32_t tag) {
  return enqueue_message(bytes, PacketKind::kSend, tag,
                         std::move(on_complete));
}

std::uint64_t RdmaConnection::post_read(std::uint64_t bytes,
                                        Completion on_data) {
  // The request is a small reliable control message; the tag carries the
  // read id the requester's engine uses to complete `on_data` when the
  // response lands. The responder reads the wanted length from msg_bytes.
  const std::uint64_t read_id = engine_.next_read_id_++;
  engine_.pending_reads_.emplace(read_id,
                                 RdmaEngine::PendingRead{std::move(on_data)});
  return enqueue_message(bytes, PacketKind::kReadRequest,
                         static_cast<std::uint32_t>(read_id), {});
}

std::uint16_t RdmaConnection::pick_path() {
  STELLAR_TRACE_ONLY(obs::count("multipath/picks");)
  std::uint16_t path = selector_->pick_at(engine_.simulator().now());
  if (config_.blacklist_threshold == 0 || blacklist_.empty()) return path;
  const SimTime now = engine_.simulator().now();
  for (int attempt = 0; attempt < 8; ++attempt) {
    auto it = blacklist_.find(path);
    if (it == blacklist_.end()) return path;
    STELLAR_TRACE_ONLY(obs::count("multipath/blacklist_skips");)
    // Blind hold-down expiry: once the hold elapses the path is simply
    // tried again. In probe mode the path stays out until a probe ACK
    // (note_path_ack) reinstates it.
    if (!config_.blacklist_probe && it->second <= now) {
      blacklist_.erase(it);
      path_timeout_streak_[path] = 0;
      return path;
    }
    path = selector_->pick_at(now);
  }
  return path;  // everything looks dead: send anyway, RTO will sort it out
}

void RdmaConnection::note_path_timeout(std::uint16_t path) {
  selector_->on_timeout(path);
  if (config_.blacklist_threshold == 0) return;
  if (++path_timeout_streak_[path] >= config_.blacklist_threshold) {
    blacklist_[path] =
        engine_.simulator().now() + config_.blacklist_hold;
    STELLAR_TRACE_ONLY(
        obs::count("multipath/paths_blacklisted");
        obs::instant(obs::TraceCat::kTransport, "path_blacklisted",
                     engine_.simulator().now(),
                     obs::TraceArgs{"conn", static_cast<std::int64_t>(id_),
                                    "path", path});)
    if (config_.blacklist_probe) {
      schedule_probe(path, config_.blacklist_hold);
    }
  }
}

void RdmaConnection::note_path_ack(std::uint16_t path) {
  if (config_.blacklist_threshold == 0) return;
  path_timeout_streak_[path] = 0;
  if (blacklist_.erase(path) != 0) {
    ++paths_reinstated_;
    auto probe = probe_events_.find(path);
    if (probe != probe_events_.end()) {
      engine_.simulator().cancel(probe->second);
      probe_events_.erase(probe);
    }
  }
}

void RdmaConnection::schedule_probe(std::uint16_t path, SimTime delay) {
  if (error_) return;
  if (probe_events_.count(path) != 0) return;  // one in flight per path
  probe_events_[path] = engine_.simulator().schedule_after(
      delay, [this, path] { send_probe(path); });
}

void RdmaConnection::send_probe(std::uint16_t path) {
  probe_events_.erase(path);
  if (error_ || blacklist_.count(path) == 0) return;
  // Dormant while idle: no work pending means nothing re-arms the probe, so
  // the simulator can drain. kick_probes() restarts it on the next post.
  if (idle()) return;
  ++probes_sent_;

  NetPacket p;
  p.kind = PacketKind::kWrite;
  p.is_probe = true;
  p.conn_id = id_;
  p.psn = next_probe_seq_++;  // own sequence space; never hits RxState
  p.payload = 0;
  p.header = 64 + config_.extra_header_bytes;
  p.src = local_;
  p.dst = remote_;
  p.path_id = path;
  STELLAR_CHECK_OK(engine_.fabric().send(std::move(p)),
                   "probe transmit rejected by fabric");
  schedule_probe(path, config_.probe_interval);
}

void RdmaConnection::kick_probes() {
  // blacklist_ is a hash map: iterating it directly would schedule probe
  // events in implementation-defined order and perturb the event sequence
  // numbers across platforms. Walk the paths sorted.
  for (std::uint16_t path : sorted_keys(blacklist_)) {
    schedule_probe(path, config_.probe_interval);
  }
}

void RdmaConnection::send_more() {
  while (!unsent_queue_.empty()) {
    Message& msg = messages_.at(unsent_queue_.front());
    const std::uint64_t remaining = msg.total - msg.sent;
    // READ requests ride as one small control packet regardless of the
    // requested length.
    const auto chunk = msg.kind == PacketKind::kReadRequest
                           ? 64u
                           : static_cast<std::uint32_t>(
                                 std::min<std::uint64_t>(config_.mtu,
                                                         remaining));
    const std::uint16_t path = pick_path();
    if (!admit(path, chunk)) break;

    Outstanding meta;
    meta.bytes = chunk;
    meta.path = path;
    meta.sent_at = engine_.simulator().now();
    meta.msg_id = msg.id;
    meta.msg_offset = msg.sent;
    meta.msg_total = msg.total;
    meta.msg_tag = msg.tag;
    meta.kind = msg.kind;

    const std::uint64_t psn = next_psn_++;
    outstanding_.emplace(psn, meta);
    inflight_bytes_ += chunk;
    if (config_.per_path_cc) per_path_inflight_[path] += chunk;
    msg.sent = msg.kind == PacketKind::kReadRequest ? msg.total
                                                    : msg.sent + chunk;
    if (msg.sent >= msg.total) unsent_queue_.pop_front();

    transmit(psn, meta);
  }
  arm_rto();
  // Work is pending again: wake the dormant blacklist probes.
  if (config_.blacklist_probe && !blacklist_.empty() && !idle()) {
    kick_probes();
  }
}

void RdmaConnection::transmit(std::uint64_t psn, const Outstanding& meta) {
  NetPacket p;
  p.kind = meta.kind;
  p.conn_id = id_;
  p.psn = psn;
  p.payload = meta.bytes;
  p.header = 64 + config_.extra_header_bytes;
  p.msg_id = meta.msg_id;
  p.msg_bytes = meta.msg_total;
  p.msg_offset = meta.msg_offset;
  p.msg_tag = meta.msg_tag;
  p.src = local_;
  p.dst = remote_;
  p.path_id = meta.path;
  ++packets_sent_;
  STELLAR_TRACE_ONLY(obs::count("transport/packets_sent");)

  // Stack processing before the wire: a fixed per-packet delay plus the
  // encap engine's sustained-rate pacing (Figure 13's VF+VxLAN tax).
  SimTime depart = engine_.simulator().now() + config_.per_packet_overhead;
  if (config_.stack_rate_cap.bps() > 0) {
    if (stack_next_free_ > depart) depart = stack_next_free_;
    stack_next_free_ =
        depart + config_.stack_rate_cap.transmit_time(p.wire_bytes());
  }
  if (depart > engine_.simulator().now()) {
    engine_.simulator().schedule_at(
        depart, [this, p = std::move(p)]() mutable {
          STELLAR_CHECK_OK(engine_.fabric().send(std::move(p)),
                           "delayed data transmit rejected by fabric");
        });
    return;
  }
  STELLAR_CHECK_OK(engine_.fabric().send(std::move(p)),
                   "data transmit rejected by fabric");
}

void RdmaConnection::handle_ack(const NetPacket& ack) {
  if (error_) return;  // flushed QP: late ACKs are meaningless
  if (ack.is_probe) {
    ++probes_acked_;
    note_path_ack(ack.path_id);
    send_more();  // the reinstated path may unblock stalled work
    return;
  }
  auto it = outstanding_.find(ack.ack_psn);
  if (it == outstanding_.end()) return;  // ack for a superseded copy
  const Outstanding meta = it->second;
  outstanding_.erase(it);

  const SimTime rtt = engine_.simulator().now() - meta.sent_at;
  STELLAR_TRACE_ONLY(obs::count("transport/acks");
                     obs::record_time("transport/rtt_ps", rtt);)
  cc_for(meta.path).on_ack(meta.bytes, ack.ecn_echo, rtt);
  selector_->on_ack(meta.path, rtt, ack.ecn_echo);
  note_path_ack(meta.path);
  inflight_bytes_ -= meta.bytes;
  if (config_.per_path_cc) per_path_inflight_[meta.path] -= meta.bytes;

  auto msg_it = messages_.find(meta.msg_id);
  if (msg_it != messages_.end()) {
    Message& msg = msg_it->second;
    msg.acked += meta.kind == PacketKind::kReadRequest ? msg.total
                                                       : meta.bytes;
    if (msg.acked >= msg.total) {
      completed_bytes_ += msg.total;
      ++completed_messages_;
      STELLAR_TRACE_ONLY(
          const SimTime now = engine_.simulator().now();
          obs::count("transport/messages_completed");
          obs::record_time("transport/msg_latency_ps", now - msg.posted_at);
          obs::complete(obs::TraceCat::kTransport, "message", msg.posted_at,
                        now - msg.posted_at,
                        obs::TraceArgs{
                            "conn", static_cast<std::int64_t>(id_), "msg",
                            static_cast<std::int64_t>(msg.id), "bytes",
                            static_cast<std::int64_t>(msg.total)});)
      Completion cb = std::move(msg.on_complete);
      messages_.erase(msg_it);
      if (cb) cb();
    }
  }

  arm_rto();
  send_more();
}

void RdmaConnection::arm_rto() {
  Simulator& sim = engine_.simulator();
  if (rto_event_.valid()) {
    sim.cancel(rto_event_);
    rto_event_ = EventHandle{};
  }
  if (outstanding_.empty()) return;
  SimTime oldest = SimTime::max();
  for (const auto& [psn, meta] : outstanding_) {
    if (meta.sent_at < oldest) oldest = meta.sent_at;
  }
  SimTime deadline = oldest + config_.rto;
  if (deadline < sim.now()) deadline = sim.now();
  rto_event_ = sim.schedule_at(deadline, [this] {
    rto_event_ = EventHandle{};
    on_rto_fire();
  });
}

void RdmaConnection::on_rto_fire() {
  Simulator& sim = engine_.simulator();
  const SimTime now = sim.now();
  bool fired = false;
  bool exhausted = false;
  for (auto& [psn, meta] : outstanding_) {
    if (now - meta.sent_at < config_.rto) continue;
    if (meta.retries >= config_.max_retries) {
      // Retry budget exhausted: the peer (or every path to it) is gone.
      // Move the QP to error instead of spinning the RTO forever.
      exhausted = true;
      break;
    }
    ++meta.retries;
    // Retransmit on a *different* path: the paper's instant-failover trick —
    // a broken link only costs one RTO before traffic routes around it.
    note_path_timeout(meta.path);
    if (config_.per_path_cc) {
      per_path_inflight_[meta.path] -= meta.bytes;
      per_path_cc_[meta.path]->on_timeout();
    }
    meta.path = pick_path();
    if (config_.per_path_cc) per_path_inflight_[meta.path] += meta.bytes;
    meta.sent_at = now;
    ++retransmits_;
    STELLAR_TRACE_ONLY(obs::count("transport/retransmits");)
    fired = true;
    transmit(psn, meta);
  }
  if (exhausted) {
    enter_error(unavailable(
        "RdmaConnection: retry budget exhausted (peer or all paths dead)"));
    return;
  }
  if (fired) {
    ++timeouts_;
    STELLAR_TRACE_ONLY(
        obs::count("transport/rto_fires");
        obs::instant(obs::TraceCat::kTransport, "rto_fire", now,
                     obs::TraceArgs{"conn", static_cast<std::int64_t>(id_)});)
    if (!config_.per_path_cc) cc_->on_timeout();
  }
  arm_rto();
}

void RdmaConnection::enter_error(Status reason) {
  if (error_) return;  // terminal: first cause wins
  error_ = true;
  error_status_ = std::move(reason);
  STELLAR_TRACE_ONLY(
      obs::count("transport/qp_errors");
      obs::instant(obs::TraceCat::kTransport, "qp_error",
                   engine_.simulator().now(),
                   obs::TraceArgs{"conn", static_cast<std::int64_t>(id_)});)

  // Flush all state; pending messages never complete (QP error) — the
  // on_error callback is the failure signal that replaces them.
  outstanding_.clear();
  inflight_bytes_ = 0;
  if (config_.per_path_cc) {
    per_path_inflight_.assign(config_.num_paths, 0);
  }
  unsent_queue_.clear();
  messages_.clear();

  Simulator& sim = engine_.simulator();
  if (rto_event_.valid()) {
    sim.cancel(rto_event_);
    rto_event_ = EventHandle{};
  }
  for (auto& [path, handle] : probe_events_) sim.cancel(handle);
  probe_events_.clear();

  // A frozen QP dying takes its flow out of the solver; the driver never
  // re-freezes it (dead clients are skipped at every future freeze).
  if (fluid_) {
    fluid_ = false;
    if (HybridDriver* driver = hybrid_driver()) driver->on_client_error(this);
  }

  // Exactly-once: move the handler out before invoking, so a re-entrant
  // enter_error (or a later set_on_error) can never fire it a second time.
  if (on_error_) {
    ErrorHandler h = std::move(on_error_);
    on_error_ = {};
    h(error_status_);
  }
}

// ---------------------------------------------------------------------------
// RdmaConnection: FluidClient (hybrid fidelity)
// ---------------------------------------------------------------------------

bool RdmaConnection::fluid_eligible() const {
  if (error_) return false;
  // stellar-lint: allow(unordered-iter) order-insensitive: computes one
  // all-WRITEs boolean; no per-element emission or scheduling.
  for (const auto& [id, msg] : messages_) {
    if (msg.kind != PacketKind::kWrite) return false;
  }
  return true;
}

FluidFlowDesc RdmaConnection::fluid_freeze() {
  // No packets exist under fluid service: nothing can time out, so timers
  // and probes go quiet (the same teardown a hot restart performs).
  Simulator& sim = engine_.simulator();
  if (rto_event_.valid()) {
    sim.cancel(rto_event_);
    rto_event_ = EventHandle{};
  }
  for (auto& [path, handle] : probe_events_) sim.cancel(handle);
  probe_events_.clear();

  // Rewind unacked wire bytes into unsent demand. The packets the links
  // absorbed carried exactly the bytes in [acked, sent) of each message;
  // those bytes continue as fluid flow state, so the conversion is
  // loss-free and the conservation ledger closes (absorbed is a terminal
  // packet outcome, the payload lives on in the flow).
  outstanding_.clear();
  inflight_bytes_ = 0;
  if (config_.per_path_cc) per_path_inflight_.assign(config_.num_paths, 0);
  unsent_queue_.clear();
  FluidFlowDesc desc;
  for (const std::uint64_t msg_id : sorted_keys(messages_)) {
    Message& msg = messages_.at(msg_id);
    msg.sent = msg.acked;
    if (msg.sent < msg.total) {
      unsent_queue_.push_back(msg_id);
      desc.remaining += msg.total - msg.acked;
    }
  }
  fluid_ = true;

  // Footprint on the link graph: the selector's long-run path weights
  // mapped over each path's route, links merged in first-encounter order
  // so the share vector is identical run to run (never pointer order).
  std::vector<double> weights;
  selector_->fluid_path_weights(weights);
  std::unordered_map<const NetLink*, std::size_t> index;
  for (std::size_t path = 0; path < weights.size(); ++path) {
    if (weights[path] <= 0.0) continue;
    for (const NetLink* link : engine_.fabric().path_links(
             local_, remote_, id_, static_cast<std::uint16_t>(path))) {
      auto [it, inserted] = index.emplace(link, desc.shares.size());
      if (inserted) {
        desc.shares.emplace_back(link, weights[path]);
      } else {
        desc.shares[it->second].second += weights[path];
      }
    }
  }
  return desc;
}

void RdmaConnection::fluid_thaw(double rate_bytes_per_sec) {
  fluid_ = false;
  if (error_) return;
  // Sync fluid-served prefixes to the receiver. Bytes served under fluid
  // never travel as packets, so a message that straddles the epoch would
  // otherwise stall at the receiver: its packet-mode tail alone can never
  // reach msg_bytes, and both the completion and the goodput would vanish.
  for (const std::uint64_t msg_id : unsent_queue_) {
    const Message& msg = messages_.at(msg_id);
    if (msg.acked == 0) continue;
    engine_.fluid_deliver_remote(
        remote_, FluidDelivery{id_, msg.id, msg.acked, msg.tag, local_},
        /*advance=*/true);
  }
  if (rate_bytes_per_sec > 0.0) {
    // Seed the window at the fluid operating point: rate * base RTT is the
    // BDP of the assigned max-min share; twice that leaves the bottleneck
    // queue (not the window) pacing the first RTTs while CC re-converges.
    const auto seed = static_cast<std::uint64_t>(
        rate_bytes_per_sec * config_.cc.base_rtt.sec() * 2.0);
    if (!config_.per_path_cc) {
      cc_->seed_window(seed);
    } else {
      const std::uint64_t per_path =
          std::max<std::uint64_t>(1, seed / config_.num_paths);
      for (auto& cc : per_path_cc_) cc->seed_window(per_path);
    }
  }
  send_more();
}

std::uint64_t RdmaConnection::fluid_serve(std::uint64_t bytes) {
  std::uint64_t served = 0;
  while (served < bytes && !unsent_queue_.empty()) {
    Message& msg = messages_.at(unsent_queue_.front());
    // A non-WRITE at the head means a zoom is already pending for this
    // region (on_ineligible_post); stop serving at the boundary.
    if (msg.kind != PacketKind::kWrite) break;
    const std::uint64_t take =
        std::min(msg.total - msg.acked, bytes - served);
    msg.acked += take;
    msg.sent = msg.acked;  // nothing is ever in flight under fluid
    served += take;
    if (msg.acked >= msg.total) {
      unsent_queue_.pop_front();
      fluid_complete_message(msg);  // erases msg from messages_
    }
  }
  return served;
}

void RdmaConnection::fluid_complete_message(Message& msg) {
  completed_bytes_ += msg.total;
  ++completed_messages_;
  STELLAR_TRACE_ONLY(
      const SimTime now = engine_.simulator().now();
      obs::count("transport/messages_completed");
      obs::record_time("transport/msg_latency_ps", now - msg.posted_at);
      obs::complete(obs::TraceCat::kTransport, "message", msg.posted_at,
                    now - msg.posted_at,
                    obs::TraceArgs{
                        "conn", static_cast<std::int64_t>(id_), "msg",
                        static_cast<std::int64_t>(msg.id), "bytes",
                        static_cast<std::int64_t>(msg.total)});)
  // Receiver first, then the sender completion — the order packet mode
  // produces (the final ACK only departs after the final payload landed).
  engine_.fluid_deliver_remote(
      remote_, FluidDelivery{id_, msg.id, msg.total, msg.tag, local_});
  Completion cb = std::move(msg.on_complete);
  messages_.erase(msg.id);  // invalidates msg
  if (cb) cb();
}

std::uint64_t RdmaConnection::fluid_remaining() const {
  std::uint64_t remaining = 0;
  for (const std::uint64_t msg_id : unsent_queue_) {
    const Message& msg = messages_.at(msg_id);
    if (msg.kind != PacketKind::kWrite) break;
    remaining += msg.total - msg.acked;
  }
  return remaining;
}

std::uint64_t RdmaConnection::fluid_next_completion_bytes() const {
  if (unsent_queue_.empty()) return 0;
  const Message& msg = messages_.at(unsent_queue_.front());
  if (msg.kind != PacketKind::kWrite) return 0;
  return msg.total - msg.acked;
}

// ---------------------------------------------------------------------------
// RdmaEngine
// ---------------------------------------------------------------------------

RdmaEngine::RdmaEngine(Simulator& sim, ClosFabric& fabric, EndpointId self)
    : sim_(&sim), fabric_(&fabric), self_(self) {
  fabric_->set_handler(self_, [this](NetPacket&& p) { on_packet(std::move(p)); });
  if (HybridDriver* driver = fabric_->hybrid_driver()) {
    driver->register_receiver(self_, this);
  }
}

RdmaEngine::~RdmaEngine() {
  // The connections' dtors (members, destroyed after this body) also talk
  // to the driver, so a driver attached at construction must still be
  // attached here — benches create the HybridDriver before any engine and
  // destroy it after them.
  if (HybridDriver* driver = fabric_->hybrid_driver()) {
    driver->unregister_receiver(self_);
  }
}

StatusOr<RdmaConnection*> RdmaEngine::connect(EndpointId remote,
                                              const TransportConfig& config) {
  if (remote == self_) {
    return invalid_argument("RdmaEngine::connect: self-connection");
  }
  if (fabric_->physical_paths(self_, remote) == 0) {
    return invalid_argument(
        "RdmaEngine::connect: endpoints not reachable (rail/plane mismatch)");
  }
  const std::uint64_t id = (static_cast<std::uint64_t>(self_) << 24) |
                           next_conn_seq_++;
  auto conn = std::unique_ptr<RdmaConnection>(
      new RdmaConnection(*this, id, self_, remote, config));
  RdmaConnection* raw = conn.get();
  connections_.push_back(std::move(conn));
  by_id_.emplace(id, raw);
  return raw;
}

RdmaConnection& RdmaEngine::reverse_connection(std::uint64_t forward_id,
                                               EndpointId peer) {
  const std::uint64_t id = forward_id | kReverseFlag;
  auto it = by_id_.find(id);
  if (it != by_id_.end()) return *it->second;
  auto conn = std::unique_ptr<RdmaConnection>(
      new RdmaConnection(*this, id, self_, peer, default_config_));
  RdmaConnection* raw = conn.get();
  connections_.push_back(std::move(conn));
  by_id_.emplace(id, raw);
  return *raw;
}

void RdmaEngine::reset_device(SimTime down_for) {
  ++device_resets_;
  const SimTime until = sim_->now() + down_for;
  if (until > reset_until_) reset_until_ = until;
  // A function-level reset tears down every QP: each connection moves to
  // the error state and tells its application via on_error.
  for (auto& conn : connections_) {
    conn->enter_error(unavailable("RdmaEngine: device reset"));
  }
}

void RdmaEngine::post_recv(std::uint64_t conn_id, RecvHandler on_recv) {
  RecvQueue& q = recv_queues_[conn_id];
  if (!q.unexpected.empty()) {
    const RxMessage rx = q.unexpected.front();
    q.unexpected.pop_front();
    if (on_recv) on_recv(rx);
    return;
  }
  q.posted.push_back(std::move(on_recv));
}

std::size_t RdmaEngine::pending_recvs(std::uint64_t conn_id) const {
  auto it = recv_queues_.find(conn_id);
  return it == recv_queues_.end() ? 0 : it->second.posted.size();
}

void RdmaEngine::on_packet(NetPacket&& p) {
  if (sim_->now() < quiesce_until_) {
    // Backend restart blackout: the old backend process is gone and the new
    // one has not attached yet, so the device has nobody to hand packets
    // to. Unlike a reset this does not error any QP — the sender's
    // RTO/retransmit path recovers the loss once the new backend is up.
    ++quiesce_drops_;
    return;
  }
  if (sim_->now() < reset_until_) {
    // Device mid-reset: the function drops everything on the floor. The
    // fabric already counted the packet delivered, so conservation holds.
    ++reset_drops_;
    return;
  }
  if (p.is_ack) {
    auto it = by_id_.find(p.conn_id);
    if (it != by_id_.end()) it->second->handle_ack(p);
    return;
  }
  handle_data(std::move(p));
}

void RdmaEngine::handle_data(NetPacket&& p) {
  if (p.is_probe) {
    // Blacklist-reinstatement probe: ACK it straight back on the same path.
    // Probes ride their own sequence space and must not touch RxState.
    send_ack(p);
    return;
  }
  RxState& state = rx_[p.conn_id];

  const bool fresh = state.record(p.psn);
  if (!fresh) {
    ++rx_duplicates_;
    STELLAR_TRACE_ONLY(obs::count("transport/rx_duplicates");)
    send_ack(p);  // the earlier ACK may have been lost; re-ack
    return;
  }
  if (state.any && p.psn < state.highest_psn) {
    // Direct Packet Placement: the packet is placed at msg_offset without
    // buffering; we only count it as out-of-order for telemetry.
    ++rx_out_of_order_;
    STELLAR_TRACE_ONLY(
        obs::count("transport/rx_out_of_order");
        obs::record("transport/ooo_depth", state.highest_psn - p.psn);)
  }
  state.highest_psn = std::max(state.highest_psn, p.psn);
  state.any = true;
  ++rx_path_histogram_[p.path_id];

  if (p.kind == PacketKind::kReadRequest) {
    send_ack(p);
    serve_read_request(p);
    return;
  }

  if (fabric_->hybrid_driver() != nullptr) {
    auto done = rx_completed_.find(p.conn_id);
    if (done != rx_completed_.end() && done->second.contains(p.msg_id)) {
      // The message already completed via a fluid delivery and the sender
      // re-sent part of it after a thaw: a duplicate at message
      // granularity. ACK it (the sender still needs to retire its copy)
      // without re-crediting goodput or re-creating reassembly state.
      ++rx_duplicates_;
      STELLAR_TRACE_ONLY(obs::count("transport/rx_duplicates");)
      send_ack(p);
      return;
    }
  }

  rx_goodput_bytes_ += p.payload;
  STELLAR_TRACE_ONLY(obs::count("transport/rx_goodput_bytes", p.payload);)
  RxMessageState& msg = state.messages[p.msg_id];
  msg.received += p.payload;
  const bool complete = msg.received >= p.msg_bytes;

  send_ack(p);

  if (complete) {
    state.messages.erase(p.msg_id);
    if (fabric_->hybrid_driver() != nullptr) {
      // Ledger for cross-mode double-delivery suppression: if this
      // message's ACKs are absorbed at a future freeze, the sender's fluid
      // re-serve must not complete it at the receiver a second time.
      rx_completed_[p.conn_id].mark(p.msg_id);
    }
    deliver_message(
        RxMessage{p.conn_id, p.msg_id, p.msg_bytes, p.msg_tag, p.src, p.kind});
  }
}

void RdmaEngine::deliver_message(const RxMessage& rx) {
  // READ response landing back at the requester?
  if ((rx.conn_id & kReverseFlag) != 0) {
    auto pending = pending_reads_.find(rx.tag);
    if (pending != pending_reads_.end()) {
      auto cb = std::move(pending->second.on_data);
      pending_reads_.erase(pending);
      if (cb) cb();
      return;
    }
  }

  if (rx.kind == PacketKind::kSend) {
    RecvQueue& q = recv_queues_[rx.conn_id];
    if (!q.posted.empty()) {
      RecvHandler h = std::move(q.posted.front());
      q.posted.pop_front();
      if (h) h(rx);
    } else {
      ++unexpected_sends_;
      q.unexpected.push_back(rx);
    }
    return;
  }

  auto it = conn_handlers_.find(rx.conn_id);
  if (it != conn_handlers_.end()) {
    it->second(rx);
  } else if (message_handler_) {
    message_handler_(rx);
  }
}

void RdmaEngine::fluid_deliver_remote(EndpointId remote,
                                      const FluidDelivery& delivery,
                                      bool advance) {
  HybridDriver* driver = fabric_->hybrid_driver();
  FluidReceiver* rx = driver == nullptr ? nullptr : driver->receiver(remote);
  if (rx == nullptr) {
    // Fluid analogue of the fabric's dropped_no_handler: the destination
    // endpoint never attached an engine.
    ++fluid_undeliverable_;
    return;
  }
  if (advance) {
    rx->fluid_advance(delivery);
  } else {
    rx->fluid_deliver(delivery);
  }
}

void RdmaEngine::fluid_advance(const FluidDelivery& delivery) {
  if (rx_completed_[delivery.conn_id].contains(delivery.msg_id)) {
    // Completed here in packet mode pre-freeze; the sender's view lags.
    return;
  }
  RxMessageState& msg = rx_[delivery.conn_id].messages[delivery.msg_id];
  if (delivery.bytes <= msg.received) return;  // receiver is already ahead
  const std::uint64_t fresh = delivery.bytes - msg.received;
  msg.received = delivery.bytes;
  rx_goodput_bytes_ += fresh;
  STELLAR_TRACE_ONLY(obs::count("transport/rx_goodput_bytes", fresh);)
}

void RdmaEngine::fluid_deliver(const FluidDelivery& delivery) {
  RxCompleted& ledger = rx_completed_[delivery.conn_id];
  if (ledger.contains(delivery.msg_id)) {
    // Completed in packet mode before the freeze (its ACKs were absorbed
    // mid-flight); the fluid re-serve is the duplicate, not the original.
    return;
  }
  ledger.mark(delivery.msg_id);

  // Goodput compensation: credit only the bytes packet mode had not yet
  // placed, and retire the partial reassembly state the placed bytes left.
  std::uint64_t already = 0;
  auto rx_it = rx_.find(delivery.conn_id);
  if (rx_it != rx_.end()) {
    auto partial = rx_it->second.messages.find(delivery.msg_id);
    if (partial != rx_it->second.messages.end()) {
      already = partial->second.received;
      rx_it->second.messages.erase(partial);
    }
  }
  const std::uint64_t fresh =
      delivery.bytes > already ? delivery.bytes - already : 0;
  rx_goodput_bytes_ += fresh;
  STELLAR_TRACE_ONLY(obs::count("transport/rx_goodput_bytes", fresh);)
  deliver_message(RxMessage{delivery.conn_id, delivery.msg_id, delivery.bytes,
                            delivery.tag, delivery.src, PacketKind::kWrite});
}

void RdmaEngine::serve_read_request(const NetPacket& p) {
  // Respond with a WRITE-like stream on the reverse connection; the tag
  // routes the data back to the requester's pending read.
  RdmaConnection& reverse = reverse_connection(p.conn_id, p.src);
  reverse.post_write(p.msg_bytes, {}, p.msg_tag);
}

void RdmaEngine::send_ack(const NetPacket& data) {
  NetPacket ack;
  ack.conn_id = data.conn_id;
  ack.is_ack = true;
  ack.ack_psn = data.psn;
  ack.ecn_echo = data.ecn_marked;
  ack.is_probe = data.is_probe;
  ack.payload = 0;
  ack.header = 64;
  ack.src = self_;
  ack.dst = data.src;
  ack.path_id = data.path_id;  // reverse traffic reuses the path index
  STELLAR_CHECK_OK(fabric_->send(std::move(ack)),
                   "ACK transmit rejected by fabric");
}

}  // namespace stellar
