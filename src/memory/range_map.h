// Range-based address mapping: the building block for every page table in
// the simulation (guest PT, host PT, EPT, IOMMU table, MTT).
//
// Stores disjoint source ranges [start, start+len) each mapped linearly to
// a destination base. Range granularity (instead of per-page entries) keeps
// a 1.6 TB container mapping to a handful of nodes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "common/snapshot.h"
#include "common/status.h"
#include "memory/address.h"

namespace stellar {

template <typename Src, typename Dst>
class RangeMap {
 public:
  struct Entry {
    std::uint64_t len = 0;
    Dst dst;
  };

  /// Map [src, src+len) -> [dst, dst+len). Fails on any overlap with an
  /// existing range (page tables never silently re-map).
  Status map(Src src, Dst dst, std::uint64_t len) {
    if (len == 0) return invalid_argument("RangeMap::map: zero length");
    if (overlaps(src, len)) {
      return already_exists("RangeMap::map: overlapping mapping");
    }
    ranges_.emplace(src.value(), Entry{len, dst});
    return Status::ok();
  }

  /// Remove the range that starts exactly at `src`.
  Status unmap(Src src) {
    auto it = ranges_.find(src.value());
    if (it == ranges_.end()) {
      return not_found("RangeMap::unmap: no range starts here");
    }
    ranges_.erase(it);
    return Status::ok();
  }

  /// Remove every range fully contained in [src, src+len). Returns how many
  /// ranges were removed, so callers can tell an effective teardown from a
  /// double-unmap of an already-empty window.
  std::size_t unmap_contained(Src src, std::uint64_t len) {
    std::size_t removed = 0;
    auto it = ranges_.lower_bound(src.value());
    while (it != ranges_.end() && it->first + it->second.len <= src.value() + len) {
      it = ranges_.erase(it);
      ++removed;
    }
    return removed;
  }

  /// Split the range containing [src, src+len) and remove exactly that
  /// window, keeping the left/right remainders mapped. Used to punch a
  /// device-register hole into a large RAM mapping.
  Status carve(Src src, std::uint64_t len) {
    auto it = ranges_.upper_bound(src.value());
    if (it == ranges_.begin()) return not_found("RangeMap::carve: unmapped");
    --it;
    const std::uint64_t start = it->first;
    const Entry e = it->second;
    if (start + e.len <= src.value()) {
      return not_found("RangeMap::carve: unmapped");
    }
    if (src.value() + len > start + e.len) {
      return out_of_range("RangeMap::carve: window spans range end");
    }
    ranges_.erase(it);
    if (src.value() > start) {
      ranges_.emplace(start, Entry{src.value() - start, e.dst});
    }
    const std::uint64_t right = src.value() + len;
    if (right < start + e.len) {
      ranges_.emplace(right,
                      Entry{start + e.len - right, e.dst + (right - start)});
    }
    return Status::ok();
  }

  /// Translate a single address.
  StatusOr<Dst> translate(Src src) const {
    const Entry* e = find(src);
    if (e == nullptr) return not_found("RangeMap::translate: unmapped");
    const std::uint64_t base = owning_start(src);
    return e->dst + (src.value() - base);
  }

  /// True iff the whole of [src, src+len) is covered (possibly by several
  /// contiguous ranges).
  bool covers(Src src, std::uint64_t len) const {
    std::uint64_t cur = src.value();
    const std::uint64_t end = src.value() + len;
    while (cur < end) {
      auto it = find_containing(cur);
      if (it == ranges_.end()) return false;
      cur = it->first + it->second.len;
    }
    return true;
  }

  bool contains(Src src) const { return find(src) != nullptr; }

  bool overlaps(Src src, std::uint64_t len) const {
    if (len == 0) return false;
    auto it = ranges_.upper_bound(src.value());
    if (it != ranges_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second.len > src.value()) return true;
    }
    return it != ranges_.end() && it->first < src.value() + len;
  }

  std::size_t range_count() const { return ranges_.size(); }

  std::uint64_t mapped_bytes() const {
    std::uint64_t total = 0;
    for (const auto& [start, e] : ranges_) total += e.len;
    return total;
  }

  void clear() { ranges_.clear(); }

  /// Checkpoint/restore: ranges are already kept in address order, so the
  /// bytes are deterministic. `restore_state` replaces the whole table.
  void save_state(SnapshotWriter& w) const {
    w.u32(static_cast<std::uint32_t>(ranges_.size()));
    for (const auto& [start, e] : ranges_) {
      w.u64(start);
      w.u64(e.len);
      w.u64(e.dst.value());
    }
  }
  void restore_state(SnapshotReader& r) {
    ranges_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t start = r.u64();
      const std::uint64_t len = r.u64();
      const std::uint64_t dst = r.u64();
      ranges_.emplace(start, Entry{len, Dst{dst}});
    }
  }

  /// Iterate (start, Entry) pairs in address order.
  auto begin() const { return ranges_.begin(); }
  auto end() const { return ranges_.end(); }

 private:
  using Map = std::map<std::uint64_t, Entry>;

  typename Map::const_iterator find_containing(std::uint64_t v) const {
    auto it = ranges_.upper_bound(v);
    if (it == ranges_.begin()) return ranges_.end();
    --it;
    if (it->first + it->second.len <= v) return ranges_.end();
    return it;
  }

  const Entry* find(Src src) const {
    auto it = find_containing(src.value());
    return it == ranges_.end() ? nullptr : &it->second;
  }

  std::uint64_t owning_start(Src src) const {
    auto it = find_containing(src.value());
    return it->first;
  }

  Map ranges_;
};

}  // namespace stellar
