// Host physical memory (HPA) allocator with first-fit free-list semantics.
// The PCIe topology carves BAR windows out of the same HPA space, so the
// allocator supports both anonymous allocation and explicit reservation.
#pragma once

#include <cstdint>
#include <map>

#include "common/status.h"
#include "memory/address.h"

namespace stellar {

class HostMemory {
 public:
  /// [base, base+size) is the allocatable window.
  HostMemory(Hpa base, std::uint64_t size);

  /// First-fit allocation, aligned to `align` (power of two).
  StatusOr<Hpa> allocate(std::uint64_t len, std::uint64_t align = kPage4K);

  /// Reserve an exact range (e.g. a BAR window). Fails if any byte is taken.
  Status reserve(Hpa addr, std::uint64_t len);

  /// Release a previously allocated/reserved range starting at `addr`.
  Status release(Hpa addr);

  std::uint64_t total_bytes() const { return size_; }
  std::uint64_t used_bytes() const { return used_; }
  std::uint64_t free_bytes() const { return size_ - used_; }

 private:
  Hpa base_;
  std::uint64_t size_;
  std::uint64_t used_ = 0;
  std::map<std::uint64_t, std::uint64_t> free_;       // start -> len
  std::map<std::uint64_t, std::uint64_t> allocated_;  // start -> len

  void insert_free(std::uint64_t start, std::uint64_t len);
};

}  // namespace stellar
