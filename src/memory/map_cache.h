// PVDMA Map Cache: tracks which fixed-size guest-physical blocks are
// already registered in the IOMMU (Figure 4, stage 3).
//
// A hit means the DMA can proceed immediately (memory already pinned); a
// miss triggers on-demand registration + pinning. Blocks carry a use count
// so PVDMA knows when an unmap would be safe — the paper's Figure 5 bug is
// exactly a block kept alive by one user (the GPU command queue) while a
// stale 4 KiB sub-mapping (the vDB) lingers inside it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ordered.h"
#include "common/snapshot.h"
#include "common/status.h"
#include "memory/address.h"

namespace stellar {

class MapCache {
 public:
  explicit MapCache(std::uint64_t block_size = kPage2M)
      : block_size_(block_size) {}

  std::uint64_t block_size() const { return block_size_; }

  Gpa block_of(Gpa gpa) const { return gpa.align_down(block_size_); }

  /// Is the block containing `gpa` registered? Counts hit/miss statistics.
  bool lookup(Gpa gpa) {
    const bool hit = blocks_.count(block_of(gpa).value()) != 0;
    hit ? ++hits_ : ++misses_;
    return hit;
  }

  bool contains(Gpa gpa) const {
    return blocks_.count(block_of(gpa).value()) != 0;
  }

  /// Register the block containing `gpa` with one initial user.
  void insert(Gpa gpa) { blocks_[block_of(gpa).value()].users = 1; }

  /// Another DMA consumer started using the block.
  void add_user(Gpa gpa) {
    auto it = blocks_.find(block_of(gpa).value());
    if (it != blocks_.end()) ++it->second.users;
  }

  /// A consumer finished. Returns true if the block is now unused and the
  /// caller may unmap/unpin it.
  bool release_user(Gpa gpa) {
    auto it = blocks_.find(block_of(gpa).value());
    if (it == blocks_.end()) return false;
    if (it->second.users > 0) --it->second.users;
    return it->second.users == 0;
  }

  std::uint32_t users(Gpa gpa) const {
    auto it = blocks_.find(block_of(gpa).value());
    return it == blocks_.end() ? 0 : it->second.users;
  }

  void erase(Gpa gpa) { blocks_.erase(block_of(gpa).value()); }

  /// Visit every resident block as (block-start GPA, user count) — the
  /// residency sweep the pin-accounting auditor performs. Visits in
  /// ascending block order: the container is unordered, and the callback
  /// may emit audit findings whose order must be deterministic.
  template <typename Fn>
  void for_each_block(Fn&& fn) const {
    for (const std::uint64_t start : sorted_keys(blocks_)) {
      fn(Gpa{start}, blocks_.at(start).users);
    }
  }

  std::size_t block_count() const { return blocks_.size(); }
  std::uint64_t registered_bytes() const {
    return blocks_.size() * block_size_;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Checkpoint/restore: resident blocks in sorted block-start order (the
  /// container is unordered), plus hit/miss statistics.
  void save_state(SnapshotWriter& w) const {
    w.u64(block_size_);
    w.u64(hits_);
    w.u64(misses_);
    std::vector<std::uint64_t> starts;
    starts.reserve(blocks_.size());
    for (const auto& [start, block] : blocks_) starts.push_back(start);
    std::sort(starts.begin(), starts.end());
    w.u32(static_cast<std::uint32_t>(starts.size()));
    for (std::uint64_t start : starts) {
      w.u64(start);
      w.u32(blocks_.at(start).users);
    }
  }
  Status restore_state(SnapshotReader& r) {
    const std::uint64_t bs = r.u64();
    if (bs != block_size_) {
      return invalid_argument("MapCache::restore: block size mismatch");
    }
    hits_ = r.u64();
    misses_ = r.u64();
    blocks_.clear();
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t start = r.u64();
      blocks_[start].users = r.u32();
    }
    return Status::ok();
  }

 private:
  struct Block {
    std::uint32_t users = 0;
  };

  std::uint64_t block_size_;
  std::unordered_map<std::uint64_t, Block> blocks_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace stellar
