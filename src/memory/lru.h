// Generic capacity-bounded LRU set/map, reused by every hardware
// translation cache in the simulation (IOTLB, PCIe ATC, RNIC caches).
#pragma once

#include <cstdint>
#include <iterator>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace stellar {

template <typename Key, typename Value>
class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look up and refresh recency. nullptr on miss.
  const Value* get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Peek without touching recency or counters.
  const Value* peek(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  /// Insert or refresh. Evicts the LRU entry when at capacity; the victim
  /// (if any) is returned so owners that keep side accounting — e.g. the
  /// IOMMU's per-tenant IOTLB occupancy ledger — can debit the right party.
  std::optional<std::pair<Key, Value>> put(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return std::nullopt;
    }
    if (capacity_ == 0) return std::nullopt;
    std::optional<std::pair<Key, Value>> victim;
    if (index_.size() >= capacity_) {
      ++evictions_;
      victim = std::move(order_.back());
      index_.erase(victim->first);
      order_.pop_back();
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    return victim;
  }

  /// Evict the least-recently-used entry satisfying `pred(key, value)` and
  /// return it. Walks from the LRU end — O(n) worst case, but only invoked
  /// on quota-enforcement paths (a tenant over its cache share evicts its
  /// own coldest entry instead of a neighbor's).
  template <typename Pred>
  std::optional<std::pair<Key, Value>> evict_lru_matching(Pred pred) {
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (!pred(it->first, it->second)) continue;
      std::pair<Key, Value> victim = std::move(*it);
      ++evictions_;
      index_.erase(victim.first);
      order_.erase(std::next(it).base());
      return victim;
    }
    return std::nullopt;
  }

  bool erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void reset_counters() { hits_ = misses_ = evictions_ = 0; }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // MRU at front
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator>
      index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace stellar
