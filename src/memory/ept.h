// Extended Page Table: the hardware-assisted GPA -> HPA mapping the
// hypervisor registers with the MMU (Figure 1(a)).
//
// In the simulation the EPT also tracks which guest-physical ranges are
// *direct-mapped device registers* (e.g. the vStellar virtual Doorbell),
// because the PVDMA conflict of Figure 5 is precisely an overlap between a
// 4 KiB EPT register mapping and a 2 MiB PVDMA IOMMU block.
#pragma once

#include <cstdint>

#include "common/snapshot.h"
#include "common/status.h"
#include "memory/address.h"
#include "memory/range_map.h"

namespace stellar {

class Ept {
 public:
  enum class Kind { kRam, kDeviceRegister };

  Status map(Gpa gpa, Hpa hpa, std::uint64_t len, Kind kind = Kind::kRam) {
    Status s = table_.map(gpa, hpa, len);
    if (!s.is_ok()) return s;
    if (kind == Kind::kDeviceRegister) (void)registers_.map(gpa, hpa, len);
    return Status::ok();
  }

  Status unmap(Gpa gpa) {
    (void)registers_.unmap(gpa);  // not-found is fine for plain RAM ranges
    return table_.unmap(gpa);
  }

  /// Replace the mapping of [gpa, gpa+len) (which must lie inside an
  /// existing range) with a device-register mapping to `hpa`. Models the
  /// hypervisor direct-mapping a doorbell into a guest RAM hole.
  Status map_register_hole(Gpa gpa, Hpa hpa, std::uint64_t len) {
    Status s = table_.carve(gpa, len);
    if (!s.is_ok()) return s;
    return map(gpa, hpa, len, Kind::kDeviceRegister);
  }

  /// Undo map_register_hole: restore the RAM mapping to `ram_hpa`.
  Status restore_ram(Gpa gpa, Hpa ram_hpa, std::uint64_t len) {
    Status s = unmap(gpa);
    if (!s.is_ok()) return s;
    return map(gpa, ram_hpa, len, Kind::kRam);
  }

  /// Re-back [gpa, gpa+len) with a different HPA frame — what a host swap
  /// out / fault-in cycle does to an unpinned guest page (§3.1(2)).
  Status remap_ram(Gpa gpa, Hpa new_hpa, std::uint64_t len) {
    Status s = table_.carve(gpa, len);
    if (!s.is_ok()) return s;
    return map(gpa, new_hpa, len, Kind::kRam);
  }

  StatusOr<Hpa> translate(Gpa gpa) const { return table_.translate(gpa); }

  bool contains(Gpa gpa) const { return table_.contains(gpa); }

  /// Does [gpa, gpa+len) overlap any direct-mapped device register range?
  bool overlaps_device_register(Gpa gpa, std::uint64_t len) const {
    return registers_.overlaps(gpa, len);
  }

  std::uint64_t mapped_bytes() const { return table_.mapped_bytes(); }
  std::size_t range_count() const { return table_.range_count(); }

  /// Checkpoint the full GPA->HPA table plus the device-register subset.
  void save_state(SnapshotWriter& w) const {
    table_.save_state(w);
    registers_.save_state(w);
  }

  /// Restore a checkpoint. For a backend hot-upgrade the guest keeps its
  /// physical frames: `delta = 0`, `include_registers = true` reproduces
  /// the table exactly. For live migration the destination host backs the
  /// guest with a different physical window: HPAs inside the old backing
  /// window [old_base, old_base+old_len) are rebased by
  /// `delta = new_base - old_base`, and device-register windows (host MMIO
  /// of the *source* host's RNIC BARs) are dropped — the destination
  /// re-maps them when it re-creates the virtual devices.
  void restore_state(SnapshotReader& r, std::int64_t delta, Hpa old_base,
                     std::uint64_t old_len, bool include_registers) {
    RangeMap<Gpa, Hpa> table;
    RangeMap<Gpa, Hpa> registers;
    table.restore_state(r);
    registers.restore_state(r);
    table_.clear();
    registers_.clear();
    for (const auto& [start, e] : table) {
      const bool is_register = registers.contains(Gpa{start});
      if (is_register && !include_registers) continue;
      Hpa dst = e.dst;
      if (!is_register && dst.value() >= old_base.value() &&
          dst.value() < old_base.value() + old_len) {
        dst = Hpa{static_cast<std::uint64_t>(
            static_cast<std::int64_t>(dst.value()) + delta)};
      }
      (void)table_.map(Gpa{start}, dst, e.len);
      if (is_register) (void)registers_.map(Gpa{start}, dst, e.len);
    }
  }

 private:
  RangeMap<Gpa, Hpa> table_;
  RangeMap<Gpa, Hpa> registers_;  // subset of table_: device registers
};

}  // namespace stellar
