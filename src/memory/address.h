// Strong-typed addresses for the four translation layers of Figure 1(a):
//   GVA --guest PT--> GPA --EPT/IOMMU--> HPA,   HVA --host PT--> HPA
// plus the device (DMA) address space programmed into the IOMMU.
//
// Mixing layers is the root cause of several production bugs the paper
// describes, so the types are deliberately non-convertible.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "common/units.h"  // byte-size literals accompany addresses

namespace stellar {

inline constexpr std::uint64_t kPage4K = 4096;
inline constexpr std::uint64_t kPage2M = 2 * 1024 * 1024;

template <typename Tag>
class Addr {
 public:
  constexpr Addr() = default;
  constexpr explicit Addr(std::uint64_t v) : value_(v) {}

  constexpr std::uint64_t value() const { return value_; }

  constexpr auto operator<=>(const Addr&) const = default;

  constexpr Addr operator+(std::uint64_t off) const {
    return Addr{value_ + off};
  }
  constexpr Addr operator-(std::uint64_t off) const {
    return Addr{value_ - off};
  }
  /// Byte distance between two addresses in the same space.
  constexpr std::uint64_t operator-(Addr o) const { return value_ - o.value_; }

  constexpr Addr align_down(std::uint64_t page) const {
    return Addr{value_ & ~(page - 1)};
  }
  constexpr Addr align_up(std::uint64_t page) const {
    return Addr{(value_ + page - 1) & ~(page - 1)};
  }
  constexpr std::uint64_t page_offset(std::uint64_t page) const {
    return value_ & (page - 1);
  }
  constexpr bool is_aligned(std::uint64_t page) const {
    return page_offset(page) == 0;
  }

 private:
  std::uint64_t value_ = 0;
};

using Gva = Addr<struct GvaTag>;   // guest virtual
using Gpa = Addr<struct GpaTag>;   // guest physical
using Hva = Addr<struct HvaTag>;   // host virtual
using Hpa = Addr<struct HpaTag>;   // host physical
using IoVa = Addr<struct IoVaTag>; // device/DMA address ("DA" in the paper)

/// Number of pages covering [addr, addr+len) at the given page size.
template <typename Tag>
constexpr std::uint64_t pages_covering(Addr<Tag> addr, std::uint64_t len,
                                       std::uint64_t page) {
  if (len == 0) return 0;
  const std::uint64_t first = addr.align_down(page).value();
  const std::uint64_t last = (addr + (len - 1)).align_down(page).value();
  return (last - first) / page + 1;
}

}  // namespace stellar

namespace std {
template <typename Tag>
struct hash<stellar::Addr<Tag>> {
  size_t operator()(const stellar::Addr<Tag>& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.value());
  }
};
}  // namespace std
