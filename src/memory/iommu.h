// IOMMU model: the DMA-remapping unit in the PCIe Root Complex.
//
// Carries (a) the IoVa->HPA page table programmed by the hypervisor/driver,
// (b) a capacity-bounded IOTLB whose misses cost a page walk, and (c) the
// pin-cost model that dominates RunD container start-up in the paper
// (1.6 TB pinned in ~390 s => ~0.9 us per 4 KiB page).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"
#include "memory/address.h"
#include "memory/lru.h"
#include "memory/range_map.h"

namespace stellar {

struct IommuConfig {
  std::size_t iotlb_capacity = 8192;            // 4 KiB-page entries
  SimTime iotlb_hit_latency = SimTime::nanos(20);
  SimTime page_walk_latency = SimTime::nanos(250);  // IOTLB miss penalty
  // Pin model calibrated to the paper: 390 s / (1.6 TiB / 4 KiB pages).
  SimTime pin_per_page = SimTime::nanos(900);
  SimTime pin_call_overhead = SimTime::micros(10);
};

class Iommu {
 public:
  explicit Iommu(IommuConfig config = {})
      : config_(config), iotlb_(config.iotlb_capacity) {}

  // -- Table programming (hypervisor / PVDMA side) --------------------------

  Status map(IoVa iova, Hpa hpa, std::uint64_t len) {
    return table_.map(iova, hpa, len);
  }

  /// Remove the mapping starting at `iova`. Returns kNotFound when no
  /// mapping starts there — a double-unmap is a caller bug (a pin-lifecycle
  /// violation the auditors flag), not a tolerated race. The IOTLB is
  /// shot down either way: conservative full invalidation, matching the
  /// whole-IOTLB flush real drivers issue on teardown.
  Status unmap(IoVa iova) {
    const Status s = table_.unmap(iova);
    iotlb_.clear();
    if (!s.is_ok()) {
      return not_found("Iommu::unmap: no mapping starts at this IoVa");
    }
    return Status::ok();
  }

  /// Remove every mapping fully contained in [iova, iova+len) — used by
  /// PVDMA block teardown, where a block was registered as several
  /// contiguous runs. Returns the number of mappings removed: zero means
  /// the window was already empty (a likely double-unpin).
  std::size_t unmap_range(IoVa iova, std::uint64_t len) {
    const std::size_t removed = table_.unmap_contained(iova, len);
    iotlb_.clear();
    return removed;
  }

  bool is_mapped(IoVa iova) const { return table_.contains(iova); }
  bool covers(IoVa iova, std::uint64_t len) const {
    return table_.covers(iova, len);
  }

  // -- Translation (device side, via ATS or untranslated TLPs) --------------

  struct Translation {
    Hpa hpa;
    SimTime latency;   // IOTLB hit latency or page-walk penalty
    bool iotlb_hit = false;
  };

  StatusOr<Translation> translate(IoVa iova) {
    const IoVa page = iova.align_down(kPage4K);
    if (const Hpa* hit = iotlb_.get(page.value())) {
      return Translation{*hit + iova.page_offset(kPage4K),
                         config_.iotlb_hit_latency, true};
    }
    auto hpa = table_.translate(iova);
    if (!hpa.is_ok()) return hpa.status();
    ++page_walks_;
    iotlb_.put(page.value(), hpa.value().align_down(kPage4K));
    return Translation{hpa.value(), config_.page_walk_latency, false};
  }

  // -- Pinning cost model ----------------------------------------------------

  /// Time the hypervisor spends pinning `bytes` of guest memory (page-by-
  /// page IOMMU map + page-table walk on the host).
  SimTime pin_cost(std::uint64_t bytes) const {
    const std::uint64_t pages = (bytes + kPage4K - 1) / kPage4K;
    return config_.pin_call_overhead +
           config_.pin_per_page * static_cast<std::int64_t>(pages);
  }

  void note_pinned(std::uint64_t bytes) { pinned_bytes_ += bytes; }
  void note_unpinned(std::uint64_t bytes) {
    pinned_bytes_ -= bytes < pinned_bytes_ ? bytes : pinned_bytes_;
  }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }

  // -- Introspection ---------------------------------------------------------

  const IommuConfig& config() const { return config_; }
  std::uint64_t iotlb_hits() const { return iotlb_.hits(); }
  std::uint64_t iotlb_misses() const { return iotlb_.misses(); }
  std::uint64_t page_walks() const { return page_walks_; }
  std::size_t mapped_ranges() const { return table_.range_count(); }
  std::uint64_t mapped_bytes() const { return table_.mapped_bytes(); }
  const RangeMap<IoVa, Hpa>& table() const { return table_; }

 private:
  IommuConfig config_;
  RangeMap<IoVa, Hpa> table_;
  LruCache<std::uint64_t, Hpa> iotlb_;
  std::uint64_t page_walks_ = 0;
  std::uint64_t pinned_bytes_ = 0;
};

}  // namespace stellar
