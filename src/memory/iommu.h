// IOMMU model: the DMA-remapping unit in the PCIe Root Complex.
//
// Carries (a) the IoVa->HPA page table programmed by the hypervisor/driver,
// (b) a capacity-bounded IOTLB whose misses cost a page walk, and (c) the
// pin-cost model that dominates RunD container start-up in the paper
// (1.6 TB pinned in ~390 s => ~0.9 us per 4 KiB page).
//
// Multi-tenant isolation (docs/TENANCY.md): both shared resources the IOMMU
// owns are attributable and budgetable per tenant —
//   * the IOTLB: every entry carries the TenantId that installed it; a
//     tenant with a configured share cap that is already at its cap evicts
//     its *own* LRU entry instead of a neighbor's (so an IOTLB-thrash scan
//     cannot flush other tenants' hot translations);
//   * pinned bytes: note_pinned()/note_unpinned() take the responsible
//     tenant, and a host-wide pin_capacity_bytes models the finite pin
//     budget that a pin-pressure flood exhausts.
#pragma once

#include <cstdint>
#include <map>

#include "common/status.h"
#include "common/units.h"
#include "memory/address.h"
#include "memory/lru.h"
#include "memory/range_map.h"

namespace stellar {

struct IommuConfig {
  std::size_t iotlb_capacity = 8192;            // 4 KiB-page entries
  SimTime iotlb_hit_latency = SimTime::nanos(20);
  SimTime page_walk_latency = SimTime::nanos(250);  // IOTLB miss penalty
  // Pin model calibrated to the paper: 390 s / (1.6 TiB / 4 KiB pages).
  SimTime pin_per_page = SimTime::nanos(900);
  SimTime pin_call_overhead = SimTime::micros(10);
  /// Host-wide ceiling on pinned bytes (0 = unlimited). Pinning beyond it
  /// is transient pressure: it lifts when another tenant unpins.
  std::uint64_t pin_capacity_bytes = 0;
};

class Iommu {
 public:
  explicit Iommu(IommuConfig config = {})
      : config_(config), iotlb_(config.iotlb_capacity) {}

  // -- Table programming (hypervisor / PVDMA side) --------------------------

  Status map(IoVa iova, Hpa hpa, std::uint64_t len) {
    return table_.map(iova, hpa, len);
  }

  /// Remove the mapping starting at `iova`. Returns kNotFound when no
  /// mapping starts there — a double-unmap is a caller bug (a pin-lifecycle
  /// violation the auditors flag), not a tolerated race. The IOTLB is
  /// shot down either way: conservative full invalidation, matching the
  /// whole-IOTLB flush real drivers issue on teardown.
  Status unmap(IoVa iova) {
    const Status s = table_.unmap(iova);
    clear_iotlb();
    if (!s.is_ok()) {
      return not_found("Iommu::unmap: no mapping starts at this IoVa");
    }
    return Status::ok();
  }

  /// Remove every mapping fully contained in [iova, iova+len) — used by
  /// PVDMA block teardown, where a block was registered as several
  /// contiguous runs. Returns the number of mappings removed: zero means
  /// the window was already empty (a likely double-unpin).
  std::size_t unmap_range(IoVa iova, std::uint64_t len) {
    const std::size_t removed = table_.unmap_contained(iova, len);
    clear_iotlb();
    return removed;
  }

  bool is_mapped(IoVa iova) const { return table_.contains(iova); }
  bool covers(IoVa iova, std::uint64_t len) const {
    return table_.covers(iova, len);
  }

  // -- Translation (device side, via ATS or untranslated TLPs) --------------

  struct Translation {
    Hpa hpa;
    SimTime latency;   // IOTLB hit latency or page-walk penalty
    bool iotlb_hit = false;
  };

  /// Translate on behalf of `tenant`. The tenant tag only affects IOTLB
  /// bookkeeping: the installed entry is attributed to the tenant, and if
  /// the tenant has an IOTLB share cap and is at it, its own LRU entry is
  /// evicted to make room (never a neighbor's).
  StatusOr<Translation> translate(IoVa iova, TenantId tenant = kHostTenant) {
    const IoVa page = iova.align_down(kPage4K);
    if (const IotlbEntry* hit = iotlb_.get(page.value())) {
      return Translation{hit->hpa + iova.page_offset(kPage4K),
                         config_.iotlb_hit_latency, true};
    }
    auto hpa = table_.translate(iova);
    if (!hpa.is_ok()) return hpa.status();
    ++page_walks_;
    install_iotlb(page.value(), hpa.value().align_down(kPage4K), tenant);
    return Translation{hpa.value(), config_.page_walk_latency, false};
  }

  /// Cap one tenant's IOTLB residency at `max_entries` (0 = uncapped).
  void set_iotlb_share(TenantId tenant, std::size_t max_entries) {
    if (max_entries == 0) {
      iotlb_share_.erase(tenant);
    } else {
      iotlb_share_[tenant] = max_entries;
    }
  }
  /// Entries currently installed on behalf of `tenant`.
  std::size_t iotlb_occupancy(TenantId tenant) const {
    auto it = iotlb_occupancy_.find(tenant);
    return it == iotlb_occupancy_.end() ? 0 : it->second;
  }
  const std::map<TenantId, std::size_t>& iotlb_occupancy_by_tenant() const {
    return iotlb_occupancy_;
  }
  /// Evictions where an over-share tenant displaced its own entry.
  std::uint64_t iotlb_self_evictions() const { return iotlb_self_evictions_; }
  std::size_t iotlb_size() const { return iotlb_.size(); }

  // -- Pinning cost model ----------------------------------------------------

  /// Time the hypervisor spends pinning `bytes` of guest memory (page-by-
  /// page IOMMU map + page-table walk on the host).
  SimTime pin_cost(std::uint64_t bytes) const {
    const std::uint64_t pages = (bytes + kPage4K - 1) / kPage4K;
    return config_.pin_call_overhead +
           config_.pin_per_page * static_cast<std::int64_t>(pages);
  }

  /// Would pinning `bytes` more stay within the host-wide pin capacity?
  /// Always true when pin_capacity_bytes is 0 (unlimited).
  bool pin_capacity_available(std::uint64_t bytes) const {
    return config_.pin_capacity_bytes == 0 ||
           pinned_bytes_ + bytes <= config_.pin_capacity_bytes;
  }

  void note_pinned(std::uint64_t bytes, TenantId tenant = kHostTenant) {
    pinned_bytes_ += bytes;
    pinned_by_tenant_[tenant] += bytes;
  }
  void note_unpinned(std::uint64_t bytes, TenantId tenant = kHostTenant) {
    pinned_bytes_ -= bytes < pinned_bytes_ ? bytes : pinned_bytes_;
    auto it = pinned_by_tenant_.find(tenant);
    if (it != pinned_by_tenant_.end()) {
      it->second -= bytes < it->second ? bytes : it->second;
      if (it->second == 0) pinned_by_tenant_.erase(it);
    }
  }
  std::uint64_t pinned_bytes() const { return pinned_bytes_; }
  std::uint64_t pinned_bytes(TenantId tenant) const {
    auto it = pinned_by_tenant_.find(tenant);
    return it == pinned_by_tenant_.end() ? 0 : it->second;
  }
  const std::map<TenantId, std::uint64_t>& pinned_by_tenant() const {
    return pinned_by_tenant_;
  }

  // -- Introspection ---------------------------------------------------------

  const IommuConfig& config() const { return config_; }
  std::uint64_t iotlb_hits() const { return iotlb_.hits(); }
  std::uint64_t iotlb_misses() const { return iotlb_.misses(); }
  std::uint64_t page_walks() const { return page_walks_; }
  std::size_t mapped_ranges() const { return table_.range_count(); }
  std::uint64_t mapped_bytes() const { return table_.mapped_bytes(); }
  const RangeMap<IoVa, Hpa>& table() const { return table_; }

 private:
  struct IotlbEntry {
    Hpa hpa;
    TenantId tenant = kHostTenant;
  };

  void clear_iotlb() {
    iotlb_.clear();
    iotlb_occupancy_.clear();
  }

  void install_iotlb(std::uint64_t page, Hpa hpa, TenantId tenant) {
    auto share = iotlb_share_.find(tenant);
    if (share != iotlb_share_.end() &&
        iotlb_occupancy(tenant) >= share->second) {
      // Over-share tenants recycle their own coldest slot: the thrash stays
      // contained to the tenant generating it.
      auto victim = iotlb_.evict_lru_matching(
          [tenant](std::uint64_t, const IotlbEntry& e) {
            return e.tenant == tenant;
          });
      if (victim) {
        ++iotlb_self_evictions_;
        debit_occupancy(victim->second.tenant);
      }
    }
    auto evicted = iotlb_.put(page, IotlbEntry{hpa, tenant});
    if (evicted) debit_occupancy(evicted->second.tenant);
    ++iotlb_occupancy_[tenant];
  }

  void debit_occupancy(TenantId tenant) {
    auto it = iotlb_occupancy_.find(tenant);
    if (it == iotlb_occupancy_.end()) return;
    if (--it->second == 0) iotlb_occupancy_.erase(it);
  }

  friend struct IommuTestPeer;  // corruption injection in audit tests

  IommuConfig config_;
  RangeMap<IoVa, Hpa> table_;
  LruCache<std::uint64_t, IotlbEntry> iotlb_;
  std::map<TenantId, std::size_t> iotlb_share_;
  std::map<TenantId, std::size_t> iotlb_occupancy_;
  std::uint64_t iotlb_self_evictions_ = 0;
  std::uint64_t page_walks_ = 0;
  std::uint64_t pinned_bytes_ = 0;
  std::map<TenantId, std::uint64_t> pinned_by_tenant_;
};

}  // namespace stellar
