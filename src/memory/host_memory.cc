#include "memory/host_memory.h"

namespace stellar {

HostMemory::HostMemory(Hpa base, std::uint64_t size)
    : base_(base), size_(size) {
  free_.emplace(base.value(), size);
}

StatusOr<Hpa> HostMemory::allocate(std::uint64_t len, std::uint64_t align) {
  if (len == 0) return invalid_argument("HostMemory::allocate: zero length");
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::uint64_t start = it->first;
    const std::uint64_t flen = it->second;
    const std::uint64_t aligned = (start + align - 1) & ~(align - 1);
    const std::uint64_t pad = aligned - start;
    if (flen < pad + len) continue;
    // Carve [aligned, aligned+len) out of this free block.
    free_.erase(it);
    if (pad > 0) free_.emplace(start, pad);
    if (flen > pad + len) free_.emplace(aligned + len, flen - pad - len);
    allocated_.emplace(aligned, len);
    used_ += len;
    return Hpa{aligned};
  }
  return resource_exhausted("HostMemory::allocate: out of physical memory");
}

Status HostMemory::reserve(Hpa addr, std::uint64_t len) {
  if (len == 0) return invalid_argument("HostMemory::reserve: zero length");
  const std::uint64_t want = addr.value();
  // Find the free block containing [want, want+len).
  auto it = free_.upper_bound(want);
  if (it == free_.begin()) {
    return already_exists("HostMemory::reserve: range not free");
  }
  --it;
  const std::uint64_t start = it->first;
  const std::uint64_t flen = it->second;
  if (want < start || want + len > start + flen) {
    return already_exists("HostMemory::reserve: range not free");
  }
  free_.erase(it);
  if (want > start) free_.emplace(start, want - start);
  if (start + flen > want + len) {
    free_.emplace(want + len, start + flen - want - len);
  }
  allocated_.emplace(want, len);
  used_ += len;
  return Status::ok();
}

Status HostMemory::release(Hpa addr) {
  auto it = allocated_.find(addr.value());
  if (it == allocated_.end()) {
    return not_found("HostMemory::release: not an allocation start");
  }
  const std::uint64_t start = it->first;
  const std::uint64_t len = it->second;
  allocated_.erase(it);
  used_ -= len;
  insert_free(start, len);
  return Status::ok();
}

void HostMemory::insert_free(std::uint64_t start, std::uint64_t len) {
  // Coalesce with neighbours.
  auto next = free_.upper_bound(start);
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  if (next != free_.end() && start + len == next->first) {
    len += next->second;
    free_.erase(next);
  }
  free_.emplace(start, len);
}

}  // namespace stellar
