// Analytic LLM training-job model: 3D/expert parallelism communication
// volumes, compute time, and the iteration-time composition used for
// Table 1 and Figures 15/16.
//
// Formulas follow the standard Megatron-LM / DeepSpeed accounting:
//  * compute: ~6 * params * tokens FLOPs per iteration, split over GPUs;
//  * TP: 4 all-reduces of (mb x seq x hidden) activations per layer per
//    microbatch (2 forward + 2 backward), ring cost 2(t-1)/t each;
//  * PP: one activation tensor each way per microbatch per stage boundary;
//  * DP: one gradient all-reduce of the local shard per iteration, ring
//    cost 2(d-1)/d — amortized over all `grad_accum` microbatches, which
//    is why GPT-200B (ga=117) shows 1.49% DP time while Llama-33B (ga=58,
//    dp=148) shows 21% (Table 1);
//  * EP: two all-to-alls per MoE layer per microbatch.
#pragma once

#include <cstdint>
#include <string>

namespace stellar {

struct ModelSpec {
  std::string name;
  double params_billion = 0;
  std::uint32_t layers = 0;
  std::uint32_t hidden = 0;
  std::uint32_t seq_len = 2048;
  std::uint32_t moe_layers = 0;  // layers with expert parallelism
  double bytes_per_element = 2.0;  // bf16
};

struct ParallelConfig {
  std::uint32_t tp = 1;
  std::uint32_t pp = 1;
  std::uint32_t dp = 1;
  std::uint32_t ep = 1;
  std::uint32_t micro_batch = 1;
  std::uint32_t grad_accum = 1;
  std::uint32_t global_batch = 1;

  std::uint32_t gpus() const { return tp * pp * dp; }
};

/// Per-GPU communication volumes for one training iteration, in bytes.
struct CommVolumes {
  double tp_bytes = 0;
  double dp_bytes = 0;
  double pp_bytes = 0;
  double ep_bytes = 0;
  double total() const { return tp_bytes + dp_bytes + pp_bytes + ep_bytes; }
};

struct TrainJob {
  ModelSpec model;
  ParallelConfig parallel;
  /// Sustained per-GPU throughput (achieved, not peak) in TFLOP/s.
  double gpu_tflops = 150.0;
  /// Fraction of communication hidden behind computation (§9 discussion:
  /// overlap is real but never complete).
  double overlap = 0.55;
  /// DP traffic knobs for framework-specific behaviour:
  ///  * volume multiplier — ZeRO-3 runs three ring collectives per step
  ///    (2x param all-gather + grad reduce-scatter) vs the plain gradient
  ///    all-reduce's two phases: multiplier 1.5;
  ///  * exposed fraction — DeepSpeed prefetch overlaps most ZeRO-3 gather
  ///    traffic with compute, so only a small share hits the critical path.
  double dp_volume_multiplier = 1.0;
  double dp_exposed_fraction = 1.0;
};

CommVolumes comm_volumes(const TrainJob& job);

/// Pure-compute time of one iteration, seconds.
double compute_seconds(const TrainJob& job);

/// Communication time of one iteration assuming `bw_gbps` effective
/// per-GPU network bandwidth for each traffic class, seconds (no overlap).
/// With `include_pp_bubble`, PP time also counts the pipeline bubble
/// ((pp-1)/(ga+pp-1) of compute) — measured "PP communication" shares in
/// production (Table 1) include that stall time, which dwarfs the wire
/// bytes for deep pipelines.
struct CommSeconds {
  double tp = 0, dp = 0, pp = 0, ep = 0;
  double total() const { return tp + dp + pp + ep; }
};
CommSeconds comm_seconds(const TrainJob& job, double tp_bw_gbps,
                         double dp_bw_gbps, double pp_bw_gbps,
                         double ep_bw_gbps, bool include_pp_bubble = false);

/// Table-1 style communication ratios: share of the (non-overlapped)
/// iteration time spent in each traffic class.
struct CommRatios {
  double tp = 0, dp = 0, pp = 0, ep = 0;
};
CommRatios comm_ratios(const TrainJob& job, double bw_gbps);

/// End-to-end iteration time with partial overlap: compute + residual comm.
double iteration_seconds(const TrainJob& job, double bw_gbps);

/// Same, but with a distinct bandwidth for DP traffic (the class that
/// crosses segments in the Figure-16 placements).
double iteration_seconds_split(const TrainJob& job, double intra_bw_gbps,
                               double cross_bw_gbps);

}  // namespace stellar
