#include "workload/placement.h"

#include <stdexcept>

namespace stellar {

const char* placement_policy_name(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kReranked:
      return "reranked";
    case PlacementPolicy::kRandomRanking:
      return "random";
  }
  return "?";
}

std::vector<EndpointId> place_job(const ClosFabric& fabric,
                                  std::uint32_t world,
                                  std::uint32_t job_index,
                                  PlacementPolicy policy,
                                  std::uint64_t seed) {
  const FabricConfig& cfg = fabric.config();
  const std::uint32_t segments = cfg.segments;
  const std::uint32_t hosts = cfg.hosts_per_segment;
  const std::uint32_t per_segment = (world + segments - 1) / segments;
  if (per_segment > hosts) {
    throw std::invalid_argument("place_job: world too large for the fabric");
  }
  // Jobs occupy disjoint host windows.
  const std::uint32_t base = (job_index * per_segment) % hosts;

  std::vector<EndpointId> out;
  out.reserve(world);
  switch (policy) {
    case PlacementPolicy::kReranked:
      // Fill segment 0 with the first ranks, then segment 1, ...
      for (std::uint32_t r = 0; r < world; ++r) {
        const std::uint32_t seg = r / per_segment;
        const std::uint32_t host = (base + r % per_segment) % hosts;
        out.push_back(fabric.endpoint(seg, host, 0, 0));
      }
      break;
    case PlacementPolicy::kRandomRanking: {
      // Deterministic scatter: alternate segments, permute the host order.
      std::vector<std::uint32_t> host_order(per_segment);
      for (std::uint32_t i = 0; i < per_segment; ++i) {
        host_order[i] = (base + i) % hosts;
      }
      Rng rng(hash_combine(seed, job_index));
      for (std::size_t i = host_order.size(); i > 1; --i) {
        std::swap(host_order[i - 1], host_order[rng.below(i)]);
      }
      for (std::uint32_t r = 0; r < world; ++r) {
        const std::uint32_t seg = r % segments;
        const std::uint32_t host = host_order[(r / segments) % per_segment];
        out.push_back(fabric.endpoint(seg, host, 0, 0));
      }
      break;
    }
  }
  return out;
}

double cross_segment_hop_fraction(const ClosFabric& fabric,
                                  const std::vector<EndpointId>& ranks) {
  if (ranks.size() < 2) return 0.0;
  std::size_t crossing = 0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const auto a = fabric.coords(ranks[i]);
    const auto b = fabric.coords(ranks[(i + 1) % ranks.size()]);
    if (a.segment != b.segment) ++crossing;
  }
  return static_cast<double>(crossing) / static_cast<double>(ranks.size());
}

}  // namespace stellar
