// The concrete training jobs of Table 1 and the Figure-16 parallel
// configurations, with model shapes matching the public architectures.
#pragma once

#include <vector>

#include "workload/llm.h"

namespace stellar {

/// Megatron Llama-33B — Table 1 row 1: TP2 PP3 DP148, mb 1, ga 58, gb 8584.
TrainJob table1_llama33b();

/// Megatron GPT-200B — Table 1 row 2: TP4 PP12 DP34, mb 1, ga 117, gb 3978.
TrainJob table1_gpt200b();

/// DeepSpeed ZeRO-1 Llama-2B — Table 1 row 3: DP16, mb 1, ga 2, gb 32.
TrainJob table1_llama2b_zero1();

/// DeepSpeed ZeRO-3 Llama-13B — Table 1 row 4: DP440, mb 1, ga 1, gb 440.
TrainJob table1_llama13b_zero3();

std::vector<TrainJob> table1_jobs();

/// The four (TP, PP, DP, EP) cluster-scheduling configurations on the
/// Figure-16 x-axis, instantiated on a 1,024-GPU-class job.
std::vector<TrainJob> figure16_jobs();

}  // namespace stellar
