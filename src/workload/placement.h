// Cluster-scheduler placement strategies (§8.2): reranking co-locates
// communicating ranks inside a network segment; random ranking scatters
// them, maximizing cross-segment traffic — the knob the paper turns to
// control congestion in the Figure-16 experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/fabric.h"

namespace stellar {

enum class PlacementPolicy : std::uint8_t { kReranked, kRandomRanking };

const char* placement_policy_name(PlacementPolicy policy);

/// Build a `world`-rank communication group over the fabric's (rail 0,
/// plane 0) endpoints, `job_index` selecting a disjoint host set so that
/// several jobs can coexist.
///
///  * kReranked: consecutive ranks fill one segment before spilling into
///    the next — only the segment-boundary ring hops cross the aggregation
///    layer.
///  * kRandomRanking: ranks are drawn from alternating segments in a
///    deterministic shuffle — (nearly) every ring hop crosses segments.
std::vector<EndpointId> place_job(const ClosFabric& fabric,
                                  std::uint32_t world,
                                  std::uint32_t job_index,
                                  PlacementPolicy policy,
                                  std::uint64_t seed = 1);

/// Fraction of ring hops (i -> i+1 mod world) that cross segments — the
/// congestion exposure of a placement.
double cross_segment_hop_fraction(const ClosFabric& fabric,
                                  const std::vector<EndpointId>& ranks);

}  // namespace stellar
