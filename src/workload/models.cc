#include "workload/models.h"

namespace stellar {

TrainJob table1_llama33b() {
  TrainJob job;
  job.model = {"Llama-33B", 32.5, 60, 6656, 2048, 0, 2.0};
  job.parallel = {2, 3, 148, 1, 1, 58, 8584};
  return job;
}

TrainJob table1_gpt200b() {
  TrainJob job;
  job.model = {"GPT-200B", 200.0, 96, 12288, 2048, 0, 2.0};
  job.parallel = {4, 12, 34, 1, 1, 117, 3978};
  return job;
}

TrainJob table1_llama2b_zero1() {
  TrainJob job;
  job.model = {"Llama-2B", 2.0, 24, 2560, 2048, 0, 2.0};
  job.parallel = {1, 1, 16, 1, 1, 2, 32};
  return job;
}

TrainJob table1_llama13b_zero3() {
  TrainJob job;
  job.model = {"Llama-13B", 13.0, 40, 5120, 2048, 0, 2.0};
  job.parallel = {1, 1, 440, 1, 1, 1, 440};
  // ZeRO-3: three ring collectives per step (1.5x the all-reduce volume),
  // but DeepSpeed's prefetch overlaps ~85% of the gather traffic.
  job.dp_volume_multiplier = 1.5;
  job.dp_exposed_fraction = 0.15;
  return job;
}

std::vector<TrainJob> table1_jobs() {
  return {table1_llama33b(), table1_gpt200b(), table1_llama2b_zero1(),
          table1_llama13b_zero3()};
}

std::vector<TrainJob> figure16_jobs() {
  // Four 1,024-GPU-class placements varying which parallel dimension
  // stresses the scale-out network. Shapes chosen so TP*PP*DP = 1024.
  std::vector<TrainJob> jobs;

  {  // TP-heavy dense model
    TrainJob j;
    j.model = {"Dense-70B", 70.0, 80, 8192, 4096, 0, 2.0};
    j.parallel = {8, 4, 32, 1, 1, 32, 1024};
    jobs.push_back(j);
  }
  {  // PP-heavy very deep model
    TrainJob j;
    j.model = {"Dense-180B", 180.0, 96, 12288, 4096, 0, 2.0};
    j.parallel = {8, 16, 8, 1, 1, 64, 512};
    jobs.push_back(j);
  }
  {  // DP-heavy medium model (gradient all-reduce dominates)
    TrainJob j;
    j.model = {"Dense-13B", 13.0, 40, 5120, 4096, 0, 2.0};
    j.parallel = {2, 1, 512, 1, 1, 4, 2048};
    jobs.push_back(j);
  }
  {  // MoE with expert parallelism
    TrainJob j;
    j.model = {"MoE-8x22B", 141.0, 56, 6144, 4096, 28, 2.0};
    j.parallel = {4, 4, 64, 8, 1, 16, 1024};
    jobs.push_back(j);
  }
  return jobs;
}

}  // namespace stellar
