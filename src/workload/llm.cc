#include "workload/llm.h"

#include <algorithm>

namespace stellar {

namespace {
constexpr double kBytesPerGrad = 2.0;  // bf16 gradients
}

CommVolumes comm_volumes(const TrainJob& job) {
  const ModelSpec& m = job.model;
  const ParallelConfig& p = job.parallel;
  CommVolumes out;

  const double act_bytes = static_cast<double>(p.micro_batch) *
                           static_cast<double>(m.seq_len) *
                           static_cast<double>(m.hidden) *
                           m.bytes_per_element;
  const double layers_per_stage =
      static_cast<double>(m.layers) / static_cast<double>(p.pp);
  const double microbatches = static_cast<double>(p.grad_accum);

  // Tensor parallelism: 2 all-reduces forward + 2 backward per transformer
  // layer; each ring all-reduce moves 2(t-1)/t of the tensor per GPU.
  if (p.tp > 1) {
    const double ring = 2.0 * (p.tp - 1) / static_cast<double>(p.tp);
    out.tp_bytes = 4.0 * ring * act_bytes * layers_per_stage * microbatches;
  }

  // Pipeline parallelism: activation fwd + gradient bwd per microbatch per
  // stage boundary (a non-edge stage both sends and receives; we charge
  // the per-GPU send volume).
  if (p.pp > 1) {
    out.pp_bytes = 2.0 * act_bytes * microbatches / p.tp;
  }

  // Data parallelism: one gradient ring all-reduce of the local parameter
  // shard per iteration. On a rail-optimized fabric, NCCL splits the ring
  // across a host's 8 rails when a host's GPUs share one DP group (pure or
  // near-pure DP jobs), dividing per-NIC wire bytes accordingly.
  if (p.dp > 1) {
    const double shard_params =
        m.params_billion * 1e9 / (static_cast<double>(p.tp) * p.pp);
    const double ring = 2.0 * (p.dp - 1) / static_cast<double>(p.dp);
    const double rail_share =
        8.0 / std::min(8.0, static_cast<double>(p.tp) * p.pp);
    out.dp_bytes = ring * shard_params * kBytesPerGrad / rail_share *
                   job.dp_volume_multiplier * job.dp_exposed_fraction;
  }

  // Expert parallelism: dispatch + combine all-to-all per MoE layer per
  // microbatch; each GPU exchanges (ep-1)/ep of its tokens, twice per
  // direction (forward and backward).
  if (p.ep > 1 && m.moe_layers > 0) {
    const double a2a = static_cast<double>(p.ep - 1) / p.ep;
    const double moe_per_stage =
        static_cast<double>(m.moe_layers) / static_cast<double>(p.pp);
    out.ep_bytes = 4.0 * a2a * act_bytes * moe_per_stage * microbatches;
  }
  return out;
}

double compute_seconds(const TrainJob& job) {
  const ModelSpec& m = job.model;
  const ParallelConfig& p = job.parallel;
  const double tokens = static_cast<double>(p.global_batch) * m.seq_len;
  // 6 FLOPs per parameter per token (fwd 2 + bwd 4), standard accounting.
  const double flops = 6.0 * m.params_billion * 1e9 * tokens;
  const double per_gpu = flops / static_cast<double>(p.gpus());
  return per_gpu / (job.gpu_tflops * 1e12);
}

CommSeconds comm_seconds(const TrainJob& job, double tp_bw_gbps,
                         double dp_bw_gbps, double pp_bw_gbps,
                         double ep_bw_gbps, bool include_pp_bubble) {
  const CommVolumes v = comm_volumes(job);
  CommSeconds out;
  auto secs = [](double bytes, double gbps) {
    return gbps > 0 ? bytes * 8.0 / (gbps * 1e9) : 0.0;
  };
  // TP traffic rides NVLink-class intra-host fabric; the paper's Table 1
  // still counts it as communication time.
  out.tp = secs(v.tp_bytes, tp_bw_gbps);
  out.dp = secs(v.dp_bytes, dp_bw_gbps);
  out.pp = secs(v.pp_bytes, pp_bw_gbps);
  out.ep = secs(v.ep_bytes, ep_bw_gbps);
  if (include_pp_bubble && job.parallel.pp > 1) {
    const double bubble =
        static_cast<double>(job.parallel.pp - 1) /
        static_cast<double>(job.parallel.grad_accum + job.parallel.pp - 1);
    out.pp += bubble * compute_seconds(job);
  }
  return out;
}

CommRatios comm_ratios(const TrainJob& job, double bw_gbps) {
  // Table 1's ratios: TP over NVLink-class bandwidth, DP/PP/EP over the
  // scale-out network; PP includes the pipeline bubble, as a production
  // profiler would attribute it.
  const double kNvlinkGbps = 2400.0;  // ~300 GB/s effective all-reduce bw
  const CommSeconds c = comm_seconds(job, kNvlinkGbps, bw_gbps, bw_gbps,
                                     bw_gbps, /*include_pp_bubble=*/true);
  const double total = compute_seconds(job) + c.total();
  CommRatios out;
  if (total <= 0) return out;
  out.tp = c.tp / total;
  out.dp = c.dp / total;
  out.pp = c.pp / total;
  out.ep = c.ep / total;
  return out;
}

double iteration_seconds(const TrainJob& job, double bw_gbps) {
  return iteration_seconds_split(job, bw_gbps, bw_gbps);
}

double iteration_seconds_split(const TrainJob& job, double intra_bw_gbps,
                               double cross_bw_gbps) {
  const double kNvlinkGbps = 2400.0;
  // DP gradient all-reduce is the class whose ring spans segments in the
  // Figure-16 placements; TP stays on NVLink, PP/EP inside a segment.
  const CommSeconds c = comm_seconds(job, kNvlinkGbps, cross_bw_gbps,
                                     intra_bw_gbps, intra_bw_gbps);
  const double residual = (1.0 - job.overlap) * c.total();
  return compute_seconds(job) + residual;
}

}  // namespace stellar
