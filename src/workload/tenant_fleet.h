// Seeded multi-tenant serverless fleet traffic: the dense-inference
// deployment of §3.1 (hundreds-to-thousands of RunD containers per server,
// each wanting a GDR-capable RDMA device) as a deterministic, replayable op
// stream.
//
// The generator emits PLAIN DATA — a time-ordered vector of FleetOps — so
// this library stays at the bottom of the layering DAG (common only). The
// serverless_inference example and bench/fig_tenants both replay the same
// stream against a live StellarHost: cold-start stampede waves (boot +
// device create + first MR), then steady-state PVDMA churn (demand-pins
// walking each tenant's working set, with re-touches that exercise the Map
// Cache) and vSwitch sends. Same config + seed => byte-identical op stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace stellar {

enum class FleetOpKind : std::uint8_t {
  kBoot,          // boot the tenant's RunD container
  kCreateDevice,  // create one vStellar device for the tenant
  kRegisterMr,    // register a host-DRAM MR of `bytes` at `gva`
  kPrepareDma,    // PVDMA demand-pin of [gpa, gpa+bytes)
  kSend,          // push `bytes` through the tenant's vSwitch/transport path
};

const char* fleet_op_kind_name(FleetOpKind kind);

struct FleetOp {
  SimTime at;
  TenantId tenant = kHostTenant;
  FleetOpKind kind = FleetOpKind::kBoot;
  std::uint64_t gpa = 0;    // kPrepareDma: guest-physical start
  std::uint64_t gva = 0;    // kRegisterMr: guest-virtual start
  std::uint64_t bytes = 0;  // kRegisterMr / kPrepareDma / kSend
  /// Per-tenant sequence number of this op (deterministic sort tie-break
  /// and a convenient replay-side label).
  std::uint32_t seq = 0;
};

struct TenantFleetConfig {
  std::uint64_t seed = 1;
  std::uint32_t tenants = 120;
  /// Tenant ids are first_tenant .. first_tenant + tenants - 1; keep off 0
  /// (kHostTenant) so fleet usage never aliases host-attributed usage.
  TenantId first_tenant = 100;
  std::uint64_t guest_mem_bytes = 2ull * 1024 * 1024 * 1024;

  // Cold-start stampede shape: containers boot in waves of stampede_width,
  // boot_spacing apart within a wave, wave_spacing between wave starts.
  // Each boot is followed by a device create and the tenant's first MR.
  std::uint32_t stampede_width = 8;
  SimTime wave_spacing = SimTime::micros(50);
  SimTime boot_spacing = SimTime::nanos(500);

  std::uint64_t mr_bytes = 4ull * 1024 * 1024;

  // Steady state (starts after the last wave): every tenant issues
  // dma_ops_per_tenant demand-pins walking a working_set_bytes window of
  // its guest memory — `dma_retouch` of them revisit an already-pinned
  // block (Map Cache hit path) — and sends_per_tenant vSwitch messages.
  std::uint32_t dma_ops_per_tenant = 8;
  std::uint64_t dma_bytes_min = 4 * 1024;
  std::uint64_t dma_bytes_max = 64 * 1024;
  double dma_retouch = 0.5;
  std::uint64_t working_set_bytes = 256ull * 1024 * 1024;
  SimTime dma_spacing = SimTime::micros(2);

  std::uint32_t sends_per_tenant = 4;
  std::uint64_t send_bytes_min = 1024;
  std::uint64_t send_bytes_max = 16 * 1024;
  SimTime send_spacing = SimTime::micros(1);
};

/// Time of the last boot wave's start (steady-state traffic begins one
/// wave_spacing later) — lets replayers split cold-start from steady phase.
SimTime fleet_steady_start(const TenantFleetConfig& config);

/// The whole fleet's op stream, sorted by (at, tenant, seq). Deterministic:
/// per-tenant draws come from independent seed-derived streams, so changing
/// the fleet size does not perturb the ops of tenants that stay.
std::vector<FleetOp> generate_fleet_ops(const TenantFleetConfig& config);

}  // namespace stellar
