#include "workload/tenant_fleet.h"

#include <algorithm>

#include "check/check.h"
#include "common/rng.h"

namespace stellar {

const char* fleet_op_kind_name(FleetOpKind kind) {
  switch (kind) {
    case FleetOpKind::kBoot: return "boot";
    case FleetOpKind::kCreateDevice: return "create_device";
    case FleetOpKind::kRegisterMr: return "register_mr";
    case FleetOpKind::kPrepareDma: return "prepare_dma";
    case FleetOpKind::kSend: return "send";
  }
  return "unknown";
}

namespace {

// 4 KiB-aligned offset inside the tenant's working set. Alignment keeps
// re-touches landing on the same PVDMA block as the first touch.
std::uint64_t aligned_offset(Rng& rng, std::uint64_t span) {
  const std::uint64_t pages = span / 4096 ? span / 4096 : 1;
  return rng.below(pages) * 4096;
}

std::uint64_t bytes_in(Rng& rng, std::uint64_t lo, std::uint64_t hi) {
  return hi > lo ? lo + rng.below(hi - lo + 1) : lo;
}

}  // namespace

SimTime fleet_steady_start(const TenantFleetConfig& config) {
  const std::uint32_t width = std::max<std::uint32_t>(config.stampede_width, 1);
  const std::uint32_t waves = (config.tenants + width - 1) / width;
  return config.wave_spacing * (waves > 0 ? waves : 1);
}

std::vector<FleetOp> generate_fleet_ops(const TenantFleetConfig& config) {
  STELLAR_CHECK(config.first_tenant != kHostTenant,
                "fleet tenants must not alias kHostTenant");
  const std::uint32_t width = std::max<std::uint32_t>(config.stampede_width, 1);
  std::vector<FleetOp> ops;
  ops.reserve(static_cast<std::size_t>(config.tenants) *
              (3 + config.dma_ops_per_tenant + config.sends_per_tenant));

  const SimTime steady = fleet_steady_start(config);
  for (std::uint32_t i = 0; i < config.tenants; ++i) {
    const TenantId tenant = config.first_tenant + i;
    // Independent per-tenant stream: adding/removing tenants leaves every
    // other tenant's draws untouched.
    Rng rng(hash_combine(config.seed, tenant));
    std::uint32_t seq = 0;
    auto push = [&](SimTime at, FleetOpKind kind, std::uint64_t gpa,
                    std::uint64_t gva, std::uint64_t bytes) {
      FleetOp op;
      op.at = at;
      op.tenant = tenant;
      op.kind = kind;
      op.gpa = gpa;
      op.gva = gva;
      op.bytes = bytes;
      op.seq = seq++;
      ops.push_back(op);
    };

    // Cold-start stampede: wave (i / width), slot (i % width) within it.
    const SimTime boot_at = config.wave_spacing * (i / width) +
                            config.boot_spacing * (i % width);
    push(boot_at, FleetOpKind::kBoot, 0, 0, 0);
    push(boot_at, FleetOpKind::kCreateDevice, 0, 0, 0);
    push(boot_at, FleetOpKind::kRegisterMr, 0, /*gva=*/0x1000,
         config.mr_bytes);

    // Steady-state PVDMA churn over the tenant's working set.
    const std::uint64_t span =
        std::min(config.working_set_bytes, config.guest_mem_bytes);
    std::uint64_t last_gpa = 0;
    bool pinned_once = false;
    for (std::uint32_t d = 0; d < config.dma_ops_per_tenant; ++d) {
      const SimTime at = steady + config.dma_spacing * d;
      const std::uint64_t bytes =
          bytes_in(rng, config.dma_bytes_min, config.dma_bytes_max);
      std::uint64_t gpa;
      if (pinned_once && rng.chance(config.dma_retouch)) {
        gpa = last_gpa;  // Map Cache hit path
      } else {
        gpa = aligned_offset(rng, span > bytes ? span - bytes : 1);
        last_gpa = gpa;
        pinned_once = true;
      }
      push(at, FleetOpKind::kPrepareDma, gpa, 0, bytes);
    }

    for (std::uint32_t sidx = 0; sidx < config.sends_per_tenant; ++sidx) {
      const SimTime at = steady + config.send_spacing * sidx;
      push(at, FleetOpKind::kSend, 0, 0,
           bytes_in(rng, config.send_bytes_min, config.send_bytes_max));
    }
  }

  std::sort(ops.begin(), ops.end(), [](const FleetOp& a, const FleetOp& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.seq < b.seq;
  });
  return ops;
}

}  // namespace stellar
