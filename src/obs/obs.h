// ObsHub: the process-wide observability attachment point.
//
// A hub owns one MetricsRegistry + one Tracer and (optionally) a Simulator
// clock. Hot paths do NOT talk to a hub directly — they call the free
// probe helpers below (obs::count, obs::record_time, obs::complete, ...),
// each of which is a no-op when no hub is installed, and every call site is
// additionally wrapped in STELLAR_TRACE_ONLY(...) so -DSTELLAR_TRACE=OFF
// removes the probes from the build entirely (mirroring STELLAR_AUDIT).
//
// Clock handling: layers that own a Simulator pass `sim.now()` explicitly;
// clockless layers (PVDMA, ATC, MTT, GDR) use obs::now(), which reads the
// hub clock installed via set_clock() (and returns t=0 when none is set —
// metrics are unaffected, only trace timestamps degrade).
//
// Determinism contract: a hub never perturbs the simulation. Installing
// one adds no events except via attach_periodic(), whose sampler re-arms
// only while the simulator still has other work queued (the same pattern
// as AuditRegistry / FaultTelemetry), so run() termination is unchanged.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

#ifndef STELLAR_TRACE_ENABLED
#define STELLAR_TRACE_ENABLED 0
#endif

#if STELLAR_TRACE_ENABLED
#define STELLAR_TRACE_ONLY(...) __VA_ARGS__
#else
#define STELLAR_TRACE_ONLY(...)
#endif

namespace stellar::obs {

class ObsHub {
 public:
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Clock for clockless layers; trace timestamps read this when the call
  /// site has no Simulator of its own.
  void set_clock(const Simulator* sim) { clock_ = sim; }
  SimTime now() const {
    return clock_ != nullptr ? clock_->now() : SimTime::zero();
  }

  /// Periodically mirror every gauge onto a "C" counter track (category
  /// kSim) so levels show up as area charts in Perfetto. Re-arms only
  /// while the simulator has other pending work, so it never keeps a
  /// drained simulation alive.
  void attach_periodic(Simulator& sim, SimTime period);
  void detach_periodic();

 private:
  // Runs as a simulator event, i.e. on the owning shard's thread; it
  // asserts ownership itself rather than REQUIRES so the scheduling lambda
  // needs no annotation.
  void fire_periodic();

  // Shard-safety contract: metrics_ and tracer_ are internally synchronized
  // (atomic counters / Mutex) and safe to probe from any thread. The
  // periodic-sampler state below belongs to the thread driving the
  // simulator — it is SingleOwner like the Simulator itself, not locked.
  MetricsRegistry metrics_;
  Tracer tracer_;
  const Simulator* clock_ = nullptr;  // set once at setup, then read-only
  SingleOwner owner_;
  Simulator* periodic_sim_ STELLAR_GUARDED_BY(owner_) = nullptr;
  SimTime period_ STELLAR_GUARDED_BY(owner_) = SimTime::zero();
  EventHandle pending_ STELLAR_GUARDED_BY(owner_){};
};

/// The hub probes resolve to: this thread's override when one is set
/// (per-run capture on a RunSet worker), else the process-wide hub, else
/// nullptr (all probes no-op).
ObsHub* hub();

/// Install `h` (nullptr uninstalls); returns the previous hub. Tests and
/// benches install a stack-local hub for the duration of a run.
ObsHub* install_hub(ObsHub* h);

/// Override the hub for the *calling thread only* (nullptr clears);
/// returns the previous override. RunSet workers point this at a per-run
/// capture hub (obs/run_capture.h) for the duration of a job, so
/// concurrent runs record into disjoint hubs that merge deterministically
/// afterwards. The process-wide hub is untouched.
ObsHub* install_thread_hub(ObsHub* h);

// ---------------------------------------------------------------------------
// Probe helpers — every call is a no-op without an installed hub. Call
// sites additionally wrap these in STELLAR_TRACE_ONLY(...).
// ---------------------------------------------------------------------------

inline SimTime now() {
  ObsHub* h = hub();
  return h != nullptr ? h->now() : SimTime::zero();
}

inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (ObsHub* h = hub()) h->metrics().counter(name).add(delta);
}

inline void gauge_set(std::string_view name, std::int64_t v) {
  if (ObsHub* h = hub()) h->metrics().gauge(name).set(v);
}

inline void gauge_add(std::string_view name, std::int64_t delta) {
  if (ObsHub* h = hub()) h->metrics().gauge(name).add(delta);
}

inline void record(std::string_view name, std::uint64_t v) {
  if (ObsHub* h = hub()) h->metrics().histogram(name).record(v);
}

inline void record_time(std::string_view name, SimTime t) {
  if (ObsHub* h = hub()) {
    h->metrics().histogram(name).record(
        static_cast<std::uint64_t>(t.ps() < 0 ? 0 : t.ps()));
  }
}

/// Span with explicit timestamps (sim-owning layers pass sim.now()).
inline void complete(TraceCat cat, std::string_view name, SimTime ts,
                     SimTime dur, const TraceArgs& args = {}) {
  if (ObsHub* h = hub()) h->tracer().complete(cat, name, ts, dur, args);
}

/// Span ending now (clockless layers; ts = hub clock − dur).
inline void complete_here(TraceCat cat, std::string_view name, SimTime dur,
                          const TraceArgs& args = {}) {
  if (ObsHub* h = hub()) {
    h->tracer().complete(cat, name, h->now(), dur, args);
  }
}

inline void instant(TraceCat cat, std::string_view name, SimTime ts,
                    const TraceArgs& args = {}) {
  if (ObsHub* h = hub()) h->tracer().instant(cat, name, ts, args);
}

inline void instant_here(TraceCat cat, std::string_view name,
                         const TraceArgs& args = {}) {
  if (ObsHub* h = hub()) h->tracer().instant(cat, name, h->now(), args);
}

inline void track(TraceCat cat, std::string_view name, SimTime ts,
                  std::int64_t value) {
  if (ObsHub* h = hub()) h->tracer().counter(cat, name, ts, value);
}

}  // namespace stellar::obs
