// Sim-time span/event tracer emitting byte-deterministic Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing).
//
// Timestamps are sim *picoseconds*, written verbatim into the `ts`/`dur`
// fields. Chrome's JSON format nominally uses microseconds; we set
// `displayTimeUnit` and simply accept that the UI shows ps as µs — the
// numbers stay exact integers, which is what the determinism contract
// requires (docs/OBSERVABILITY.md).
//
// Event kinds emitted:
//   "X" complete   — a span with ts + dur (e.g. pvdma.prepare_dma)
//   "i" instant    — a point event (e.g. transport.rto_fire)
//   "C" counter    — a counter track sample (e.g. link queue bytes)
//   "M" metadata   — thread_name records naming each category track
//
// Each TraceCat renders as its own track (pid 0, tid = category id).
// Events append in call order; since all producers run inside the single-
// threaded deterministic simulator, the file is byte-identical across
// seeded replays. A per-category keep-1-of-N sampling knob bounds trace
// size on big runs without breaking determinism (the decision depends only
// on the per-category offered-event count).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"

namespace stellar::obs {

/// One track per instrumented layer.
enum class TraceCat : std::uint8_t {
  kSim = 0,
  kPvdma,
  kAtc,
  kMtt,
  kGdr,
  kTransport,
  kNet,
  kLink,
  kFault,
  kCollective,
  kCount,
};

constexpr int kTraceCats = static_cast<int>(TraceCat::kCount);

/// Stable track name for a category ("pvdma", "transport", ...).
std::string_view trace_cat_name(TraceCat cat);

/// Parse a category name; returns kCount on no match.
TraceCat trace_cat_from_name(std::string_view name);

/// Up to four integer key/value arguments attached to an event.
struct TraceArgs {
  struct Arg {
    const char* key = nullptr;
    std::int64_t value = 0;
  };
  Arg args[4];
  int n = 0;

  TraceArgs() = default;
  TraceArgs(const char* k0, std::int64_t v0) : n(1) { args[0] = {k0, v0}; }
  TraceArgs(const char* k0, std::int64_t v0, const char* k1, std::int64_t v1)
      : n(2) {
    args[0] = {k0, v0};
    args[1] = {k1, v1};
  }
  TraceArgs(const char* k0, std::int64_t v0, const char* k1, std::int64_t v1,
            const char* k2, std::int64_t v2)
      : n(3) {
    args[0] = {k0, v0};
    args[1] = {k1, v1};
    args[2] = {k2, v2};
  }
  TraceArgs(const char* k0, std::int64_t v0, const char* k1, std::int64_t v1,
            const char* k2, std::int64_t v2, const char* k3, std::int64_t v3)
      : n(4) {
    args[0] = {k0, v0};
    args[1] = {k1, v1};
    args[2] = {k2, v2};
    args[3] = {k3, v3};
  }
};

/// Thread safety: every public entry point takes mu_, so concurrent
/// producers (the threaded TSan smoke; eventually PDES worker shards
/// funnelling into a shared tracer) serialize on emission. On the
/// deterministic single-threaded engine the mutex is uncontended and
/// byte-determinism is unchanged: event order is call order.
class Tracer {
 public:
  Tracer();

  /// Enable/disable a category track (all enabled by default).
  void set_enabled(TraceCat cat, bool on) STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    enabled_[static_cast<int>(cat)] = on;
  }
  bool enabled(TraceCat cat) const STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return enabled_[static_cast<int>(cat)];
  }

  /// Keep 1 of every `period` offered events in `cat` (1 = keep all).
  /// The filter is deterministic: it counts offered events per category.
  void set_sample_period(TraceCat cat, std::uint32_t period)
      STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    sample_period_[static_cast<int>(cat)] = period == 0 ? 1 : period;
  }

  /// Apply `set_enabled` from a comma-separated category list
  /// ("transport,net,link"); everything not listed is disabled.
  /// An empty list enables everything. Returns false on an unknown name.
  bool set_category_filter(std::string_view csv) STELLAR_EXCLUDES(mu_);

  /// A span with explicit start and duration.
  void complete(TraceCat cat, std::string_view name, SimTime ts, SimTime dur,
                const TraceArgs& args = {}) STELLAR_EXCLUDES(mu_);
  /// A point event.
  void instant(TraceCat cat, std::string_view name, SimTime ts,
               const TraceArgs& args = {}) STELLAR_EXCLUDES(mu_);
  /// A counter-track sample (renders as a stacked area chart).
  void counter(TraceCat cat, std::string_view name, SimTime ts,
               std::int64_t value) STELLAR_EXCLUDES(mu_);

  std::size_t event_count() const STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return events_.size();
  }
  std::uint64_t dropped_by_sampling() const STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return dropped_;
  }

  /// Mirror another tracer's admission configuration (enabled categories
  /// and sample periods) without touching its events. Used by per-run
  /// capture hubs (obs/run_capture.h) so every run samples exactly as the
  /// base tracer would.
  void copy_config(const Tracer& from) STELLAR_EXCLUDES(mu_);

  /// Deterministic merge: append every event of `from` (in its recorded
  /// order) after this tracer's events and fold in its offered/dropped
  /// sampling accounting. Callers merge per-run tracers in run-index
  /// order, which makes the combined stream independent of thread count.
  void append_from(const Tracer& from) STELLAR_EXCLUDES(mu_);

  /// Serialize to Chrome trace-event JSON: one event per line, metadata
  /// records first, byte-deterministic.
  std::string to_json() const STELLAR_EXCLUDES(mu_);

  /// Write to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  // Sampling admission for one offered event in `cat`.
  bool admit(TraceCat cat) STELLAR_REQUIRES(mu_);

  struct Event {
    char phase;        // 'X', 'i', 'C'
    TraceCat cat;
    std::string name;  // event or counter name
    SimTime ts;
    SimTime dur;       // 'X' only
    TraceArgs args;    // 'C' stores the value in args[0]
  };

  mutable Mutex mu_;
  bool enabled_[kTraceCats] STELLAR_GUARDED_BY(mu_);
  std::uint32_t sample_period_[kTraceCats] STELLAR_GUARDED_BY(mu_);
  std::uint64_t offered_[kTraceCats] STELLAR_GUARDED_BY(mu_);
  std::uint64_t dropped_ STELLAR_GUARDED_BY(mu_) = 0;
  std::vector<Event> events_ STELLAR_GUARDED_BY(mu_);
};

}  // namespace stellar::obs
