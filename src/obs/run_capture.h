// Per-run observability capture for parallel independent runs.
//
// When a RunSet (sim/parallel.h) executes fig-bench runs on worker
// threads, probes from different runs would interleave nondeterministically
// in one shared hub. RunCaptureSet gives every run its own ObsHub —
// installed as the worker's thread-local hub for the job's duration — and
// merges them into the base hub in run-index order afterwards:
//
//   * traces: per-run events append in run order (Tracer::append_from),
//     each run sampled with the base tracer's config from a fresh
//     per-run offered-count, so admission is a per-run property;
//   * metrics: counters/gauges add, histograms merge bucket-wise — exact.
//
// The merged output is a pure function of (runs, config) — never of
// thread count — so BENCH JSON and trace files are byte-identical between
// --threads=1 and --threads=N. Callers must use per-run capture for every
// thread count (ShardedRunSet in core/run_shard.h does), keeping
// single-thread output the reference rather than a special case.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "obs/obs.h"

namespace stellar::obs {

class RunCaptureSet {
 public:
  /// `base` is the hub the runs merge into; nullptr (no --trace, no
  /// installed hub) disables capture entirely and scopes become no-ops.
  RunCaptureSet(ObsHub* base, std::size_t runs) : base_(base) {
    if (base_ == nullptr) return;
    hubs_.reserve(runs);
    for (std::size_t i = 0; i < runs; ++i) {
      auto hub = std::make_unique<ObsHub>();
      hub->tracer().copy_config(base_->tracer());
      hubs_.push_back(std::move(hub));
    }
  }

  /// The capture hub for run `i`, or nullptr when capture is disabled.
  ObsHub* run_hub(std::size_t i) const {
    return i < hubs_.size() ? hubs_[i].get() : nullptr;
  }

  /// Installs run `i`'s hub as the calling thread's hub for its lifetime.
  class Scope {
   public:
    Scope(RunCaptureSet& set, std::size_t run)
        : active_(set.run_hub(run) != nullptr),
          prev_(active_ ? install_thread_hub(set.run_hub(run)) : nullptr) {}
    ~Scope() {
      if (active_) install_thread_hub(prev_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    bool active_;
    ObsHub* prev_;
  };

  /// Fold every run hub into the base, in run-index order. Call once,
  /// after all runs completed (the merged barrier).
  void merge_into_base() {
    if (base_ == nullptr) return;
    for (auto& hub : hubs_) {
      base_->tracer().append_from(hub->tracer());
      base_->metrics().merge_from(hub->metrics());
    }
    hubs_.clear();
  }

 private:
  ObsHub* base_;
  std::vector<std::unique_ptr<ObsHub>> hubs_;
};

}  // namespace stellar::obs
