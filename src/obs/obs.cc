#include "obs/obs.h"

#include <atomic>

namespace stellar::obs {

namespace {
// Atomic so worker threads (TSan smoke; future PDES shards) can read the
// installed hub while another thread installs/uninstalls one. Release on
// install pairs with acquire on read, so a thread that sees the pointer
// also sees the fully constructed hub behind it.
std::atomic<ObsHub*> g_hub{nullptr};

// Per-thread override for RunSet per-run capture. thread_local: each
// worker sees only its own slot, so this is shard-private, not shared.
thread_local ObsHub* tl_hub = nullptr;
}  // namespace

ObsHub* hub() {
  if (tl_hub != nullptr) return tl_hub;
  return g_hub.load(std::memory_order_acquire);
}

ObsHub* install_hub(ObsHub* h) {
  return g_hub.exchange(h, std::memory_order_acq_rel);
}

ObsHub* install_thread_hub(ObsHub* h) {
  ObsHub* prev = tl_hub;
  tl_hub = h;
  return prev;
}

void ObsHub::attach_periodic(Simulator& sim, SimTime period) {
  owner_.assert_held();
  detach_periodic();
  periodic_sim_ = &sim;
  period_ = period;
  pending_ = sim.schedule_after(period, [this] { fire_periodic(); });
}

void ObsHub::detach_periodic() {
  owner_.assert_held();
  if (periodic_sim_ != nullptr && pending_.valid()) {
    periodic_sim_->cancel(pending_);
  }
  pending_ = EventHandle{};
  periodic_sim_ = nullptr;
}

void ObsHub::fire_periodic() {
  owner_.assert_held();
  pending_ = EventHandle{};
  const SimTime at = periodic_sim_->now();
  metrics_.for_each_gauge([&](const std::string& name, std::int64_t v) {
    tracer_.counter(TraceCat::kSim, name, at, v);
  });
  // Re-arm only while other work is queued (same pattern as AuditRegistry /
  // FaultTelemetry): the firing that observes an empty queue recorded the
  // drained end state, and run() must be allowed to terminate.
  if (!periodic_sim_->empty()) {
    pending_ = periodic_sim_->schedule_after(period_, [this] {
      fire_periodic();
    });
  }
}

}  // namespace stellar::obs
