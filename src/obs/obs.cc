#include "obs/obs.h"

namespace stellar::obs {

namespace {
ObsHub* g_hub = nullptr;
}  // namespace

ObsHub* hub() { return g_hub; }

ObsHub* install_hub(ObsHub* h) {
  ObsHub* prev = g_hub;
  g_hub = h;
  return prev;
}

void ObsHub::attach_periodic(Simulator& sim, SimTime period) {
  detach_periodic();
  periodic_sim_ = &sim;
  period_ = period;
  pending_ = sim.schedule_after(period, [this] { fire_periodic(); });
}

void ObsHub::detach_periodic() {
  if (periodic_sim_ != nullptr && pending_.valid()) {
    periodic_sim_->cancel(pending_);
  }
  pending_ = EventHandle{};
  periodic_sim_ = nullptr;
}

void ObsHub::fire_periodic() {
  pending_ = EventHandle{};
  const SimTime at = periodic_sim_->now();
  metrics_.for_each_gauge([&](const std::string& name, std::int64_t v) {
    tracer_.counter(TraceCat::kSim, name, at, v);
  });
  // Re-arm only while other work is queued (same pattern as AuditRegistry /
  // FaultTelemetry): the firing that observes an empty queue recorded the
  // drained end state, and run() must be allowed to terminate.
  if (!periodic_sim_->empty()) {
    pending_ = periodic_sim_->schedule_after(period_, [this] {
      fire_periodic();
    });
  }
}

}  // namespace stellar::obs
