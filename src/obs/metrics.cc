#include "obs/metrics.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>
#include <vector>

namespace stellar::obs {

std::uint64_t LogHistogram::value_at_rank(std::uint64_t r) const {
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[static_cast<std::size_t>(i)];
    if (seen > r) return bucket_mid(i);
  }
  return max_;
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Mirror PercentileRecorder::percentile(): pos = q*(n-1), interpolate
  // between the floor and ceil ranks.
  const double pos = q * static_cast<double>(count_ - 1);
  const std::uint64_t lo = static_cast<std::uint64_t>(pos);
  const std::uint64_t hi = std::min(lo + 1, count_ - 1);
  const double frac = pos - static_cast<double>(lo);
  const double vlo = static_cast<double>(value_at_rank(lo));
  const double vhi = static_cast<double>(value_at_rank(hi));
  return vlo + (vhi - vlo) * frac;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    // try_emplace: Counter holds an atomic and is neither copyable nor
    // movable, so it must be constructed in place.
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Snapshot under the source lock, apply through the public accessors
  // (which take our own lock per series): the two registries' mutexes are
  // never held together.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, LogHistogram>> histograms;
  {
    MutexLock lock(other.mu_);
    counters.reserve(other.counters_.size());
    for (const auto& [name, c] : other.counters_) {
      counters.emplace_back(name, c.value());
    }
    gauges.reserve(other.gauges_.size());
    for (const auto& [name, g] : other.gauges_) {
      gauges.emplace_back(name, g.value());
    }
    histograms.reserve(other.histograms_.size());
    for (const auto& [name, h] : other.histograms_) {
      histograms.emplace_back(name, h);
    }
  }
  for (const auto& [name, v] : counters) counter(name).add(v);
  for (const auto& [name, v] : gauges) gauge(name).add(v);
  for (const auto& [name, h] : histograms) histogram(name).merge_from(h);
}

namespace {

void append_kv(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  MutexLock lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    append_kv(out, "%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
              static_cast<unsigned long long>(c.value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    append_kv(out, "%s\n    \"%s\": %lld", first ? "" : ",", name.c_str(),
              static_cast<long long>(g.value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    append_kv(
        out,
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
        "\"max\": %llu, \"mean\": %llu, \"p50\": %llu, \"p99\": %llu}",
        first ? "" : ",", name.c_str(),
        static_cast<unsigned long long>(h.count()),
        static_cast<unsigned long long>(h.sum()),
        static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.max()),
        static_cast<unsigned long long>(h.mean()),
        static_cast<unsigned long long>(h.quantile(0.50)),
        static_cast<unsigned long long>(h.quantile(0.99)));
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::to_table() const {
  MutexLock lock(mu_);
  std::string out;
  std::size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_) {
    width = std::max(width, name.size());
  }
  const int w = static_cast<int>(width);
  for (const auto& [name, c] : counters_) {
    append_kv(out, "  %-*s  %llu\n", w, name.c_str(),
              static_cast<unsigned long long>(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    append_kv(out, "  %-*s  %lld\n", w, name.c_str(),
              static_cast<long long>(g.value()));
  }
  for (const auto& [name, h] : histograms_) {
    append_kv(out,
              "  %-*s  n=%llu mean=%llu p50=%llu p99=%llu max=%llu\n", w,
              name.c_str(), static_cast<unsigned long long>(h.count()),
              static_cast<unsigned long long>(h.mean()),
              static_cast<unsigned long long>(h.quantile(0.50)),
              static_cast<unsigned long long>(h.quantile(0.99)),
              static_cast<unsigned long long>(h.max()));
  }
  return out;
}

}  // namespace stellar::obs
