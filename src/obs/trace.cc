#include "obs/trace.h"

#include <cstdarg>
#include <cstdio>

namespace stellar::obs {

namespace {

constexpr std::string_view kCatNames[kTraceCats] = {
    "sim",       "pvdma", "atc",  "mtt",   "gdr",
    "transport", "net",   "link", "fault", "collective",
};

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string_view trace_cat_name(TraceCat cat) {
  return kCatNames[static_cast<int>(cat)];
}

TraceCat trace_cat_from_name(std::string_view name) {
  for (int i = 0; i < kTraceCats; ++i) {
    if (kCatNames[i] == name) return static_cast<TraceCat>(i);
  }
  return TraceCat::kCount;
}

Tracer::Tracer() {
  for (int i = 0; i < kTraceCats; ++i) {
    enabled_[i] = true;
    sample_period_[i] = 1;
    offered_[i] = 0;
  }
}

bool Tracer::set_category_filter(std::string_view csv) {
  MutexLock lock(mu_);
  if (csv.empty()) {
    for (int i = 0; i < kTraceCats; ++i) enabled_[i] = true;
    return true;
  }
  bool want[kTraceCats] = {};
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string_view tok =
        csv.substr(pos, comma == std::string_view::npos ? csv.size() - pos
                                                        : comma - pos);
    if (!tok.empty()) {
      const TraceCat cat = trace_cat_from_name(tok);
      if (cat == TraceCat::kCount) return false;
      want[static_cast<int>(cat)] = true;
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  for (int i = 0; i < kTraceCats; ++i) enabled_[i] = want[i];
  return true;
}

void Tracer::copy_config(const Tracer& from) {
  bool enabled[kTraceCats];
  std::uint32_t period[kTraceCats];
  {
    MutexLock lock(from.mu_);
    for (int i = 0; i < kTraceCats; ++i) {
      enabled[i] = from.enabled_[i];
      period[i] = from.sample_period_[i];
    }
  }
  MutexLock lock(mu_);
  for (int i = 0; i < kTraceCats; ++i) {
    enabled_[i] = enabled[i];
    sample_period_[i] = period[i];
  }
}

void Tracer::append_from(const Tracer& from) {
  // Copy under the source lock, splice under ours: never hold both (the
  // merge runs on one thread, but a fixed single-lock discipline keeps the
  // analysis and TSan trivially happy).
  std::vector<Event> copied;
  std::uint64_t offered[kTraceCats];
  std::uint64_t dropped = 0;
  {
    MutexLock lock(from.mu_);
    copied = from.events_;
    for (int i = 0; i < kTraceCats; ++i) offered[i] = from.offered_[i];
    dropped = from.dropped_;
  }
  MutexLock lock(mu_);
  events_.insert(events_.end(), std::make_move_iterator(copied.begin()),
                 std::make_move_iterator(copied.end()));
  for (int i = 0; i < kTraceCats; ++i) offered_[i] += offered[i];
  dropped_ += dropped;
}

bool Tracer::admit(TraceCat cat) {
  const int c = static_cast<int>(cat);
  if (!enabled_[c]) return false;
  const std::uint64_t n = offered_[c]++;
  if (n % sample_period_[c] != 0) {
    ++dropped_;
    return false;
  }
  return true;
}

void Tracer::complete(TraceCat cat, std::string_view name, SimTime ts,
                      SimTime dur, const TraceArgs& args) {
  MutexLock lock(mu_);
  if (!admit(cat)) return;
  events_.push_back(Event{'X', cat, std::string(name), ts, dur, args});
}

void Tracer::instant(TraceCat cat, std::string_view name, SimTime ts,
                     const TraceArgs& args) {
  MutexLock lock(mu_);
  if (!admit(cat)) return;
  events_.push_back(
      Event{'i', cat, std::string(name), ts, SimTime::zero(), args});
}

void Tracer::counter(TraceCat cat, std::string_view name, SimTime ts,
                     std::int64_t value) {
  MutexLock lock(mu_);
  if (!admit(cat)) return;
  events_.push_back(Event{'C', cat, std::string(name), ts, SimTime::zero(),
                          TraceArgs{"value", value}});
}

std::string Tracer::to_json() const {
  MutexLock lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  // Metadata first: name each category track.
  for (int i = 0; i < kTraceCats; ++i) {
    append_fmt(out,
               "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\","
               "\"args\":{\"name\":\"%.*s\"}},\n",
               i, static_cast<int>(kCatNames[i].size()), kCatNames[i].data());
  }
  for (std::size_t e = 0; e < events_.size(); ++e) {
    const Event& ev = events_[e];
    const int tid = static_cast<int>(ev.cat);
    switch (ev.phase) {
      case 'X':
        append_fmt(out,
                   "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%lld,"
                   "\"dur\":%lld,\"name\":\"%s\"",
                   tid, static_cast<long long>(ev.ts.ps()),
                   static_cast<long long>(ev.dur.ps()), ev.name.c_str());
        break;
      case 'i':
        append_fmt(out,
                   "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%lld,"
                   "\"s\":\"t\",\"name\":\"%s\"",
                   tid, static_cast<long long>(ev.ts.ps()), ev.name.c_str());
        break;
      case 'C':
        append_fmt(out,
                   "{\"ph\":\"C\",\"pid\":0,\"tid\":%d,\"ts\":%lld,"
                   "\"name\":\"%s\"",
                   tid, static_cast<long long>(ev.ts.ps()), ev.name.c_str());
        break;
      default:
        continue;
    }
    if (ev.args.n > 0) {
      out += ",\"args\":{";
      for (int a = 0; a < ev.args.n; ++a) {
        append_fmt(out, "%s\"%s\":%lld", a == 0 ? "" : ",",
                   ev.args.args[a].key,
                   static_cast<long long>(ev.args.args[a].value));
      }
      out += "}";
    }
    out += "},\n";
  }
  // Drop the trailing comma (there is always at least the metadata block).
  out.erase(out.size() - 2);
  out += "\n]}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fclose(f) == 0;
  if (n != json.size()) std::fclose(f);
  return ok;
}

}  // namespace stellar::obs
