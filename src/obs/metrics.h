// Deterministic metrics registry: monotonic counters, gauges, and
// log-bucketed latency histograms.
//
// The paper's evaluation (§7) is built on per-layer telemetry — ATC miss
// rates, pin latency, RTO counts, per-path PSN trajectories. This registry
// is the simulation-side equivalent: every layer increments named series,
// and `to_json()` / `to_table()` render a byte-deterministic snapshot so
// tests can golden the output (see docs/OBSERVABILITY.md for the naming
// scheme and the determinism contract).
//
// Determinism rules:
//  - names are stored in a std::map, so dump order is lexicographic and
//    independent of registration order;
//  - all dumped values are integers (counts, sums, picoseconds) — no
//    floating-point formatting is ever emitted;
//  - nothing here reads wall-clock time.
//
// Shard-safety (PDES readiness): counter/gauge updates are relaxed atomics
// and the name->series maps are guarded by an internal Mutex, so shards may
// bump shared series concurrently (tests/tsan_smoke_test.cc runs this under
// TSan). Histograms stay shard-local by convention: record() is NOT
// thread-safe and concurrent recording must go through per-shard series.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace stellar::obs {

/// Monotonically non-decreasing event count. Updates are relaxed atomics:
/// safe from any shard, and exactly as cheap as a plain add when only one
/// thread exists (the whole single-threaded engine today).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, pinned bytes, blacklisted paths...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// HDR-style log-bucketed histogram over non-negative integer samples
/// (typically latencies in picoseconds).
///
/// Bucketing: values below 2^kSubBits*2 (= 16) are recorded exactly; above
/// that, each power-of-two octave is split into 2^kSubBits = 8 sub-buckets,
/// so the relative bucket width is at most 1/8 (12.5%). `quantile()`
/// mirrors the exact `PercentileRecorder::percentile()` interpolation using
/// bucket midpoints, which bounds the estimate error to one bucket width —
/// the property tests/obs_metrics_property_test.cc locks down.
class LogHistogram {
 public:
  static constexpr int kSubBits = 3;
  static constexpr int kSub = 1 << kSubBits;  // 8 sub-buckets per octave
  // Buckets: [0, 2*kSub) exact, then (64 - kSubBits - 1) octaves * kSub.
  static constexpr int kBuckets = 2 * kSub + (64 - kSubBits - 1) * kSub;

  /// Bucket index for a sample value.
  static int bucket_index(std::uint64_t v) {
    if (v < 2ull * kSub) return static_cast<int>(v);
    const int octave = std::bit_width(v) - 1;               // >= kSubBits + 1
    const int top = static_cast<int>((v >> (octave - kSubBits)) & (kSub - 1));
    return ((octave - kSubBits) << kSubBits) + top + kSub;
  }

  /// Inclusive lower bound of bucket `i`.
  static std::uint64_t bucket_lo(int i) {
    if (i < 2 * kSub) return static_cast<std::uint64_t>(i);
    const int u = i - kSub;
    const int octave = (u >> kSubBits) + kSubBits;
    const std::uint64_t top = static_cast<std::uint64_t>(u & (kSub - 1));
    return (kSub + top) << (octave - kSubBits);
  }

  /// Exclusive upper bound of bucket `i`. The topmost bucket's true bound
  /// (2^64) is unrepresentable, so it saturates to ~0ull.
  static std::uint64_t bucket_hi(int i) {
    if (i < 2 * kSub) return static_cast<std::uint64_t>(i) + 1;
    const int u = i - kSub;
    const int octave = (u >> kSubBits) + kSubBits;
    const std::uint64_t lo = bucket_lo(i);
    const std::uint64_t hi = lo + (1ull << (octave - kSubBits));
    return hi > lo ? hi : ~0ull;
  }

  /// Midpoint of bucket `i` (integer division; exact buckets return the
  /// sample value itself).
  static std::uint64_t bucket_mid(int i) {
    if (i < 2 * kSub) return static_cast<std::uint64_t>(i);
    return bucket_lo(i) + (bucket_hi(i) - bucket_lo(i)) / 2;
  }

  void record(std::uint64_t v) {
    ++counts_[static_cast<std::size_t>(bucket_index(v))];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  std::uint64_t mean() const { return count_ ? sum_ / count_ : 0; }

  /// Quantile estimate mirroring PercentileRecorder::percentile(): rank
  /// pos = q * (n - 1), linear interpolation between the two nearest ranks,
  /// each rank's value approximated by its bucket midpoint. Returns 0 when
  /// empty. `q` is clamped to [0, 1].
  double quantile(double q) const;

  /// Fold another histogram's samples into this one (bucket-wise add).
  /// Exact: the merged histogram equals the one that would have recorded
  /// both sample streams directly, so per-run histograms merged in run
  /// order (obs/run_capture.h) dump byte-identically for any thread count.
  void merge_from(const LogHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) {
      counts_[static_cast<std::size_t>(i)] +=
          other.counts_[static_cast<std::size_t>(i)];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  /// Bucket-midpoint of the sample at (0-based) rank `r`.
  std::uint64_t value_at_rank(std::uint64_t r) const;

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Name → series registry. References returned by counter()/gauge()/
/// histogram() stay valid for the registry's lifetime (std::map nodes are
/// stable), so hot paths may cache them.
///
/// Thread-safety: registration (the map mutations) is serialized on mu_;
/// cached Counter/Gauge references are safe to bump from any shard (atomic
/// updates). The visitors and dumps also hold mu_ — do not re-enter the
/// same registry from inside a visitor.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name) STELLAR_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) STELLAR_EXCLUDES(mu_);
  LogHistogram& histogram(std::string_view name) STELLAR_EXCLUDES(mu_);

  std::size_t size() const STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Visit every counter/gauge in lexicographic name order (used by the
  /// periodic sampler to mirror levels onto trace counter tracks).
  template <typename Fn>
  void for_each_counter(Fn&& fn) const STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (const auto& [name, c] : counters_) fn(name, c.value());
  }
  template <typename Fn>
  void for_each_gauge(Fn&& fn) const STELLAR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (const auto& [name, g] : gauges_) fn(name, g.value());
  }

  /// Fold another registry into this one: counters and gauges add their
  /// values, histograms merge bucket-wise (all exact). Merging per-run
  /// registries in run-index order yields the same lexicographic dump for
  /// any thread count.
  void merge_from(const MetricsRegistry& other) STELLAR_EXCLUDES(mu_);

  /// Byte-deterministic JSON snapshot: lexicographic name order, integer
  /// values only. Histograms dump count/sum/min/max/p50/p99 (quantiles
  /// rendered as integer picoseconds via truncation).
  std::string to_json() const STELLAR_EXCLUDES(mu_);

  /// Human-readable aligned table (same order/content as to_json).
  std::string to_table() const STELLAR_EXCLUDES(mu_);

 private:
  /// Serializes registration and dumps; series values are atomics.
  mutable Mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_
      STELLAR_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ STELLAR_GUARDED_BY(mu_);
  std::map<std::string, LogHistogram, std::less<>> histograms_
      STELLAR_GUARDED_BY(mu_);
};

}  // namespace stellar::obs
