// Whole-host PCIe fabric: Root Complex (with IOMMU), switches, devices and
// the TLP routing rules of Figures 1(b) and 7.
//
// Routing semantics reproduced:
//  * AT = kTranslated + requester LUT-registered + target BAR on the same
//    switch  -> direct P2P, one switch hop (the eMTT fast path).
//  * AT = kTranslated but ACS/LUT does not allow direct routing -> detour
//    via the Root Complex (the HyV/MasQ GDR path; bandwidth-capped).
//  * AT = kUntranslated -> always via the RC, IOMMU translates (IOTLB
//    hit/miss latency), then on to main memory or back down to a BAR.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "memory/host_memory.h"
#include "memory/iommu.h"
#include "pcie/bdf.h"
#include "pcie/pcie_switch.h"
#include "pcie/tlp.h"

namespace stellar {

struct PcieLatencies {
  SimTime switch_hop = SimTime::nanos(150);
  SimTime rc_forward = SimTime::nanos(250);   // RC internal forwarding
  SimTime device_internal = SimTime::nanos(50);
  SimTime ats_request_overhead = SimTime::nanos(300);  // ATS msg processing
};

struct HostPcieConfig {
  std::uint64_t main_memory_bytes = 2ull << 40;  // 2 TiB
  std::size_t lut_capacity_per_switch = 32;
  PcieLatencies latencies;
  IommuConfig iommu;
  /// Peak throughput of P2P traffic detouring through the Root Complex —
  /// the bottleneck that caps HyV/MasQ GDR at ~141 Gbps in Figure 14.
  Bandwidth rc_p2p_bandwidth = Bandwidth::gbps(150);
};

/// Where a DMA ended up and what it cost.
struct DmaOutcome {
  enum class Route {
    kDirectP2P,    // switch-local peer-to-peer (eMTT fast path)
    kP2PViaRc,     // peer-to-peer detoured through the Root Complex
    kMainMemory,   // translated access to DRAM via RC
    kIommuPath,    // untranslated: RC + IOMMU walk, then to destination
  };
  Route route = Route::kMainMemory;
  Hpa resolved;          // final physical address
  SimTime latency;       // fabric + translation latency for this TLP
  bool iotlb_hit = true; // meaningful only for kIommuPath
};

class HostPcie {
 public:
  explicit HostPcie(HostPcieConfig config = {});

  // -- Topology construction -------------------------------------------------

  /// Add a switch; returns its index.
  std::size_t add_switch(std::string name);

  /// Attach a device under switch `switch_id`, reserving a BAR of `bar_len`
  /// bytes in HPA space. Returns the allocated BAR.
  StatusOr<Bar> attach_device(Bdf bdf, std::size_t switch_id,
                              std::uint64_t bar_len);

  Status detach_device(Bdf bdf);

  /// Register `bdf` in its switch's LUT (GDR enablement). Fails when full.
  Status enable_p2p(Bdf bdf);
  void disable_p2p(Bdf bdf);
  bool p2p_enabled(Bdf bdf) const;

  // -- TLP processing ----------------------------------------------------------

  /// Route a memory read/write TLP from `tlp.requester`; returns route and
  /// latency. The fabric is stateless w.r.t. bandwidth — sustained-rate
  /// modelling lives in the RNIC pipelines, which use `route` + latency.
  StatusOr<DmaOutcome> dma(const Tlp& tlp);

  /// ATS translation request from a device (used to fill its ATC).
  struct AtsResult {
    Hpa hpa;
    SimTime latency;
    bool iotlb_hit = false;
  };
  StatusOr<AtsResult> ats_translate(Bdf requester, IoVa iova);

  // -- Accessors ---------------------------------------------------------------

  Iommu& iommu() { return iommu_; }
  const Iommu& iommu() const { return iommu_; }
  HostMemory& main_memory() { return memory_; }
  PcieSwitch& pcie_switch(std::size_t id) { return *switches_.at(id); }
  const PcieSwitch& pcie_switch(std::size_t id) const {
    return *switches_.at(id);
  }
  std::size_t switch_count() const { return switches_.size(); }
  const HostPcieConfig& config() const { return config_; }

  StatusOr<Bar> device_bar(Bdf bdf) const;
  StatusOr<std::size_t> switch_of(Bdf bdf) const;

  // -- Counters ----------------------------------------------------------------

  std::uint64_t direct_p2p_tlps() const { return direct_p2p_; }
  std::uint64_t rc_detour_tlps() const { return rc_detour_; }
  std::uint64_t iommu_path_tlps() const { return iommu_path_; }

 private:
  struct DeviceInfo {
    std::size_t switch_id = 0;
    Bar bar;
  };

  HostPcieConfig config_;
  HostMemory memory_;     // DRAM window: [0, main_memory_bytes)
  HostMemory bar_space_;  // MMIO window above DRAM for device BARs
  Iommu iommu_;
  std::vector<std::unique_ptr<PcieSwitch>> switches_;
  std::unordered_map<Bdf, DeviceInfo> devices_;
  Hpa main_memory_base_;
  std::uint64_t main_memory_len_;

  std::uint64_t direct_p2p_ = 0;
  std::uint64_t rc_detour_ = 0;
  std::uint64_t iommu_path_ = 0;

  bool is_main_memory(Hpa addr) const {
    return addr >= main_memory_base_ &&
           addr.value() < main_memory_base_.value() + main_memory_len_;
  }

  /// Find which device's BAR claims `addr`, searching every switch.
  std::optional<std::pair<Bdf, std::size_t>> owner_of(Hpa addr) const;
};

}  // namespace stellar
