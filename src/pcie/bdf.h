// PCIe Bus/Device/Function identifiers and BAR windows.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "memory/address.h"

namespace stellar {

/// Bus-Device-Function triple: the PCIe identity of a (virtual) device.
/// A central point of the paper: SR-IOV VFs each burn one BDF (and a PCIe
/// switch LUT slot), while Stellar SF/vStellar devices all share their
/// parent's BDF.
class Bdf {
 public:
  constexpr Bdf() = default;
  constexpr Bdf(std::uint8_t bus, std::uint8_t device, std::uint8_t function)
      : packed_((static_cast<std::uint16_t>(bus) << 8) |
                (static_cast<std::uint16_t>(device & 0x1F) << 3) |
                (function & 0x7)) {}

  constexpr std::uint8_t bus() const {
    return static_cast<std::uint8_t>(packed_ >> 8);
  }
  constexpr std::uint8_t device() const {
    return static_cast<std::uint8_t>((packed_ >> 3) & 0x1F);
  }
  constexpr std::uint8_t function() const {
    return static_cast<std::uint8_t>(packed_ & 0x7);
  }
  constexpr std::uint16_t packed() const { return packed_; }

  constexpr auto operator<=>(const Bdf&) const = default;

  std::string to_string() const;

 private:
  std::uint16_t packed_ = 0;
};

/// A Base Address Register window: a range of HPA space owned by a device.
struct Bar {
  Hpa base;
  std::uint64_t len = 0;

  bool contains(Hpa addr) const {
    return addr >= base && addr.value() < base.value() + len;
  }
};

}  // namespace stellar

namespace std {
template <>
struct hash<stellar::Bdf> {
  size_t operator()(const stellar::Bdf& b) const noexcept {
    return std::hash<std::uint16_t>{}(b.packed());
  }
};
}  // namespace std
