#include "pcie/host_pcie.h"

namespace stellar {

namespace {
// MMIO/BAR window placed well above any realistic DRAM size.
constexpr std::uint64_t kBarWindowBase = 1ull << 46;
constexpr std::uint64_t kBarWindowLen = 1ull << 40;
}  // namespace

HostPcie::HostPcie(HostPcieConfig config)
    : config_(config),
      memory_(Hpa{0}, config.main_memory_bytes),
      bar_space_(Hpa{kBarWindowBase}, kBarWindowLen),
      iommu_(config.iommu),
      main_memory_base_(Hpa{0}),
      main_memory_len_(config.main_memory_bytes) {}

std::size_t HostPcie::add_switch(std::string name) {
  switches_.push_back(std::make_unique<PcieSwitch>(
      std::move(name), config_.lut_capacity_per_switch));
  return switches_.size() - 1;
}

StatusOr<Bar> HostPcie::attach_device(Bdf bdf, std::size_t switch_id,
                                      std::uint64_t bar_len) {
  if (switch_id >= switches_.size()) {
    return invalid_argument("HostPcie::attach_device: bad switch id");
  }
  if (devices_.count(bdf) != 0) {
    return already_exists("HostPcie::attach_device: BDF in use");
  }
  auto base = bar_space_.allocate(bar_len, kPage4K);
  if (!base.is_ok()) return base.status();
  const Bar bar{base.value(), bar_len};
  Status s = switches_[switch_id]->attach(bdf, bar);
  if (!s.is_ok()) {
    (void)bar_space_.release(base.value());
    return s;
  }
  devices_.emplace(bdf, DeviceInfo{switch_id, bar});
  return bar;
}

Status HostPcie::detach_device(Bdf bdf) {
  auto it = devices_.find(bdf);
  if (it == devices_.end()) {
    return not_found("HostPcie::detach_device: unknown BDF");
  }
  (void)switches_[it->second.switch_id]->detach(bdf);
  (void)bar_space_.release(it->second.bar.base);
  devices_.erase(it);
  return Status::ok();
}

Status HostPcie::enable_p2p(Bdf bdf) {
  auto it = devices_.find(bdf);
  if (it == devices_.end()) {
    return not_found("HostPcie::enable_p2p: unknown BDF");
  }
  return switches_[it->second.switch_id]->lut_register(bdf);
}

void HostPcie::disable_p2p(Bdf bdf) {
  auto it = devices_.find(bdf);
  if (it == devices_.end()) return;
  switches_[it->second.switch_id]->lut_unregister(bdf);
}

bool HostPcie::p2p_enabled(Bdf bdf) const {
  auto it = devices_.find(bdf);
  if (it == devices_.end()) return false;
  return switches_[it->second.switch_id]->lut_contains(bdf);
}

StatusOr<Bar> HostPcie::device_bar(Bdf bdf) const {
  auto it = devices_.find(bdf);
  if (it == devices_.end()) {
    return not_found("HostPcie::device_bar: unknown BDF");
  }
  return it->second.bar;
}

StatusOr<std::size_t> HostPcie::switch_of(Bdf bdf) const {
  auto it = devices_.find(bdf);
  if (it == devices_.end()) {
    return not_found("HostPcie::switch_of: unknown BDF");
  }
  return it->second.switch_id;
}

std::optional<std::pair<Bdf, std::size_t>> HostPcie::owner_of(Hpa addr) const {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (auto bdf = switches_[i]->device_claiming(addr)) {
      return std::make_pair(*bdf, i);
    }
  }
  return std::nullopt;
}

StatusOr<DmaOutcome> HostPcie::dma(const Tlp& tlp) {
  auto req = devices_.find(tlp.requester);
  if (req == devices_.end()) {
    return not_found("HostPcie::dma: requester BDF not attached");
  }
  const std::size_t src_switch = req->second.switch_id;
  const PcieLatencies& lat = config_.latencies;

  DmaOutcome out;

  if (tlp.at == AtField::kTranslated) {
    const Hpa hpa{tlp.address};
    out.resolved = hpa;
    if (is_main_memory(hpa)) {
      // Pre-translated write to DRAM still flows through the RC (but skips
      // the IOMMU because the address is final).
      out.route = DmaOutcome::Route::kMainMemory;
      out.latency = lat.device_internal + lat.switch_hop + lat.rc_forward;
      ++iommu_path_;  // counted as RC traffic, no walk
      return out;
    }
    auto owner = owner_of(hpa);
    if (!owner.has_value()) {
      return not_found("HostPcie::dma: translated address unclaimed");
    }
    const bool same_switch = owner->second == src_switch;
    const bool lut_ok = switches_[src_switch]->lut_contains(tlp.requester) &&
                        switches_[owner->second]->lut_contains(owner->first);
    if (same_switch && lut_ok) {
      // The eMTT fast path of Figure 7: switch sees AT=0b10 and routes
      // straight to the peer's BAR.
      out.route = DmaOutcome::Route::kDirectP2P;
      out.latency = lat.device_internal + lat.switch_hop;
      ++direct_p2p_;
    } else {
      // ACS redirect / cross-switch: up to the RC and back down.
      out.route = DmaOutcome::Route::kP2PViaRc;
      out.latency = lat.device_internal + lat.switch_hop + lat.rc_forward +
                    lat.switch_hop;
      ++rc_detour_;
    }
    return out;
  }

  // Untranslated: the RC's IOMMU resolves the IoVa first.
  auto tr = iommu_.translate(IoVa{tlp.address});
  if (!tr.is_ok()) return tr.status();
  out.route = DmaOutcome::Route::kIommuPath;
  out.resolved = tr.value().hpa;
  out.iotlb_hit = tr.value().iotlb_hit;
  out.latency = lat.device_internal + lat.switch_hop + lat.rc_forward +
                tr.value().latency;
  if (!is_main_memory(tr.value().hpa)) {
    // Destination is a peer BAR: back down through (possibly another) switch.
    out.latency += lat.switch_hop;
  }
  ++iommu_path_;
  return out;
}

StatusOr<HostPcie::AtsResult> HostPcie::ats_translate(Bdf requester,
                                                      IoVa iova) {
  if (devices_.count(requester) == 0) {
    return not_found("HostPcie::ats_translate: unknown BDF");
  }
  auto tr = iommu_.translate(iova);
  if (!tr.is_ok()) return tr.status();
  const PcieLatencies& lat = config_.latencies;
  // Round trip: device -> switch -> RC (walk) -> switch -> device.
  const SimTime rtt = lat.ats_request_overhead + lat.switch_hop * 2 +
                      lat.rc_forward + tr.value().latency;
  return AtsResult{tr.value().hpa, rtt, tr.value().iotlb_hit};
}

}  // namespace stellar
