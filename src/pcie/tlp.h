// PCIe Transaction Layer Packet essentials: just the fields the Stellar
// design decisions hinge on — most importantly the Address Translation (AT)
// field that eMTT sets to 0b10 so switches route GDR writes peer-to-peer
// without a Root Complex detour (Figure 7).
#pragma once

#include <cstdint>

#include "pcie/bdf.h"

namespace stellar {

/// PCIe spec AT field encodings.
enum class AtField : std::uint8_t {
  kUntranslated = 0b00,        // address is an IoVa; IOMMU must translate
  kTranslationRequest = 0b01,  // ATS translation request
  kTranslated = 0b10,          // address is already an HPA
};

enum class TlpKind : std::uint8_t {
  kMemRead,
  kMemWrite,
  kCompletion,
  kAtsRequest,
  kAtsCompletion,
};

struct Tlp {
  TlpKind kind = TlpKind::kMemWrite;
  Bdf requester;
  AtField at = AtField::kUntranslated;
  /// Raw 64-bit address; interpreted as HPA when at==kTranslated, else IoVa.
  std::uint64_t address = 0;
  std::uint32_t length = 0;  // payload bytes
};

}  // namespace stellar
