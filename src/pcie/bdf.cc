#include "pcie/bdf.h"

#include <cstdio>

namespace stellar {

std::string Bdf::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02x:%02x.%x", bus(), device(), function());
  return buf;
}

}  // namespace stellar
