// Address Translation Cache: the device-side cache of ATS results
// (PCIe ATS). Capacity is small — "tens of thousands of pages" per the
// paper — which is what makes GDR throughput droop once the working set
// outgrows it (Figure 8). Lives inside the requesting device (the RNIC).
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/units.h"
#include "memory/address.h"
#include "memory/lru.h"
#include "obs/obs.h"
#include "pcie/host_pcie.h"

namespace stellar {

class Atc {
 public:
  Atc(HostPcie& fabric, Bdf owner, std::size_t capacity_pages)
      : fabric_(&fabric), owner_(owner), cache_(capacity_pages) {}

  struct Lookup {
    Hpa hpa;
    SimTime latency;  // zero-ish on hit; full ATS round-trip on miss
    bool hit = false;
    bool iotlb_hit = true;  // of the ATS walk, when a miss occurred
  };

  /// Translate an IoVa using the cache, falling back to an ATS request.
  StatusOr<Lookup> translate(IoVa iova) {
    const IoVa page = iova.align_down(kPage4K);
    if (const Hpa* hit = cache_.get(page.value())) {
      STELLAR_TRACE_ONLY(obs::count("atc/hits");)
      return Lookup{*hit + iova.page_offset(kPage4K), SimTime::nanos(5), true,
                    true};
    }
    auto ats = fabric_->ats_translate(owner_, page);
    if (!ats.is_ok()) return ats.status();
    STELLAR_TRACE_ONLY(const std::uint64_t ev_before = cache_.evictions();)
    cache_.put(page.value(), ats.value().hpa.align_down(kPage4K));
    STELLAR_TRACE_ONLY(
        obs::count("atc/misses");
        obs::count("atc/evictions", cache_.evictions() - ev_before);
        obs::record_time("atc/miss_latency_ps", ats.value().latency);
        obs::complete_here(obs::TraceCat::kAtc, "ats_translate",
                           ats.value().latency,
                           obs::TraceArgs{"iotlb_hit",
                                          ats.value().iotlb_hit ? 1 : 0});)
    return Lookup{ats.value().hpa + iova.page_offset(kPage4K),
                  ats.value().latency, false, ats.value().iotlb_hit};
  }

  /// ATS invalidation from the RC (e.g. after an IOMMU unmap).
  void invalidate_all() { cache_.clear(); }

  std::uint64_t hits() const { return cache_.hits(); }
  std::uint64_t misses() const { return cache_.misses(); }
  double hit_rate() const { return cache_.hit_rate(); }
  std::size_t capacity() const { return cache_.capacity(); }
  std::size_t size() const { return cache_.size(); }

 private:
  HostPcie* fabric_;
  Bdf owner_;
  LruCache<std::uint64_t, Hpa> cache_;
};

}  // namespace stellar
