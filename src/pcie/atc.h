// Address Translation Cache: the device-side cache of ATS results
// (PCIe ATS). Capacity is small — "tens of thousands of pages" per the
// paper — which is what makes GDR throughput droop once the working set
// outgrows it (Figure 8). Lives inside the requesting device (the RNIC).
//
// The ATC is shared by every tenant behind the RNIC, so a scan-patterned
// tenant can thrash out neighbors' hot translations. Entries carry the
// installing TenantId; tenants with a configured occupancy share that are
// at their cap recycle their own coldest entry (docs/TENANCY.md).
#pragma once

#include <cstdint>
#include <map>

#include "common/status.h"
#include "common/units.h"
#include "memory/address.h"
#include "memory/lru.h"
#include "obs/obs.h"
#include "pcie/host_pcie.h"

namespace stellar {

class Atc {
 public:
  Atc(HostPcie& fabric, Bdf owner, std::size_t capacity_pages)
      : fabric_(&fabric), owner_(owner), cache_(capacity_pages) {}

  struct Lookup {
    Hpa hpa;
    SimTime latency;  // zero-ish on hit; full ATS round-trip on miss
    bool hit = false;
    bool iotlb_hit = true;  // of the ATS walk, when a miss occurred
  };

  /// Translate an IoVa using the cache, falling back to an ATS request.
  /// The tenant tag attributes the installed entry for share enforcement.
  StatusOr<Lookup> translate(IoVa iova, TenantId tenant = kHostTenant) {
    const IoVa page = iova.align_down(kPage4K);
    if (const Entry* hit = cache_.get(page.value())) {
      STELLAR_TRACE_ONLY(obs::count("atc/hits");)
      return Lookup{hit->hpa + iova.page_offset(kPage4K), SimTime::nanos(5),
                    true, true};
    }
    auto ats = fabric_->ats_translate(owner_, page);
    if (!ats.is_ok()) return ats.status();
    STELLAR_TRACE_ONLY(const std::uint64_t ev_before = cache_.evictions();)
    install(page.value(), ats.value().hpa.align_down(kPage4K), tenant);
    STELLAR_TRACE_ONLY(
        obs::count("atc/misses");
        obs::count("atc/evictions", cache_.evictions() - ev_before);
        obs::record_time("atc/miss_latency_ps", ats.value().latency);
        obs::complete_here(obs::TraceCat::kAtc, "ats_translate",
                           ats.value().latency,
                           obs::TraceArgs{"iotlb_hit",
                                          ats.value().iotlb_hit ? 1 : 0});)
    return Lookup{ats.value().hpa + iova.page_offset(kPage4K),
                  ats.value().latency, false, ats.value().iotlb_hit};
  }

  /// ATS invalidation from the RC (e.g. after an IOMMU unmap).
  void invalidate_all() {
    cache_.clear();
    occupancy_.clear();
  }

  /// Cap one tenant's ATC residency at `max_entries` (0 = uncapped).
  void set_share(TenantId tenant, std::size_t max_entries) {
    if (max_entries == 0) {
      share_.erase(tenant);
    } else {
      share_[tenant] = max_entries;
    }
  }
  std::size_t occupancy(TenantId tenant) const {
    auto it = occupancy_.find(tenant);
    return it == occupancy_.end() ? 0 : it->second;
  }
  const std::map<TenantId, std::size_t>& occupancy_by_tenant() const {
    return occupancy_;
  }
  std::uint64_t self_evictions() const { return self_evictions_; }

  std::uint64_t hits() const { return cache_.hits(); }
  std::uint64_t misses() const { return cache_.misses(); }
  double hit_rate() const { return cache_.hit_rate(); }
  std::size_t capacity() const { return cache_.capacity(); }
  std::size_t size() const { return cache_.size(); }

 private:
  struct Entry {
    Hpa hpa;
    TenantId tenant = kHostTenant;
  };

  void install(std::uint64_t page, Hpa hpa, TenantId tenant) {
    auto share = share_.find(tenant);
    if (share != share_.end() && occupancy(tenant) >= share->second) {
      auto victim = cache_.evict_lru_matching(
          [tenant](std::uint64_t, const Entry& e) {
            return e.tenant == tenant;
          });
      if (victim) {
        ++self_evictions_;
        debit(victim->second.tenant);
      }
    }
    auto evicted = cache_.put(page, Entry{hpa, tenant});
    if (evicted) debit(evicted->second.tenant);
    ++occupancy_[tenant];
  }

  void debit(TenantId tenant) {
    auto it = occupancy_.find(tenant);
    if (it == occupancy_.end()) return;
    if (--it->second == 0) occupancy_.erase(it);
  }

  HostPcie* fabric_;
  Bdf owner_;
  LruCache<std::uint64_t, Entry> cache_;
  std::map<TenantId, std::size_t> share_;
  std::map<TenantId, std::size_t> occupancy_;
  std::uint64_t self_evictions_ = 0;
};

}  // namespace stellar
