// PCIe switch model: downstream ports, P2P routing and — critically for the
// paper's Problem (3) — a capacity-limited Look-Up Table. Only BDFs with a
// LUT slot may receive direct (ACS-bypassing) peer-to-peer traffic; on one
// of Alibaba's server models the LUT holds just 32 entries, capping GDR-
// capable VFs at 32 per server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "pcie/bdf.h"

namespace stellar {

class PcieSwitch {
 public:
  PcieSwitch(std::string name, std::size_t lut_capacity)
      : name_(std::move(name)), lut_capacity_(lut_capacity) {}

  const std::string& name() const { return name_; }

  // -- Downstream ports ------------------------------------------------------

  /// Attach a device (with its BAR) below this switch.
  Status attach(Bdf bdf, Bar bar) {
    if (ports_.count(bdf) != 0) {
      return already_exists("PcieSwitch::attach: BDF already attached");
    }
    ports_.emplace(bdf, bar);
    return Status::ok();
  }

  Status detach(Bdf bdf) {
    lut_.erase(bdf);
    if (ports_.erase(bdf) == 0) {
      return not_found("PcieSwitch::detach: BDF not attached");
    }
    return Status::ok();
  }

  bool has_device(Bdf bdf) const { return ports_.count(bdf) != 0; }

  /// Which attached device (if any) claims this HPA via its BAR?
  std::optional<Bdf> device_claiming(Hpa addr) const {
    for (const auto& [bdf, bar] : ports_) {
      if (bar.contains(addr)) return bdf;
    }
    return std::nullopt;
  }

  // -- LUT (P2P permission table) --------------------------------------------

  /// Register a BDF for direct P2P routing. Fails when the LUT is full —
  /// the exact failure mode that prevents dense GDR deployments (§3.1(3)).
  Status lut_register(Bdf bdf) {
    if (lut_.count(bdf) != 0) return Status::ok();  // idempotent
    if (lut_.size() >= lut_capacity_) {
      return resource_exhausted("PcieSwitch LUT full (" + name_ + ")");
    }
    lut_.insert(bdf);
    return Status::ok();
  }

  void lut_unregister(Bdf bdf) { lut_.erase(bdf); }
  bool lut_contains(Bdf bdf) const { return lut_.count(bdf) != 0; }
  std::size_t lut_size() const { return lut_.size(); }
  std::size_t lut_capacity() const { return lut_capacity_; }
  std::size_t lut_free() const { return lut_capacity_ - lut_.size(); }

 private:
  std::string name_;
  std::size_t lut_capacity_;
  std::unordered_map<Bdf, Bar> ports_;
  std::unordered_set<Bdf> lut_;
};

}  // namespace stellar
