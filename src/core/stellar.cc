#include "core/stellar.h"

#include <algorithm>
#include <stdexcept>

#include "core/tenant.h"

namespace stellar {

namespace {
constexpr std::uint32_t kDevicesTag = snapshot_tag('S', 'H', 'D', 'V');
}  // namespace

StellarHost::StellarHost(StellarHostConfig config)
    : config_(std::move(config)) {
  pcie_ = std::make_unique<HostPcie>(config_.pcie);
  hypervisor_ = std::make_unique<Hypervisor>(*pcie_, config_.hypervisor);

  for (std::uint32_t s = 0; s < config_.pcie_switches; ++s) {
    pcie_->add_switch("pcie_sw" + std::to_string(s));
  }

  // One RNIC per switch, GPUs striped across switches (the 4-switch,
  // 4-RNIC, 8-GPU server of §3.1(3)).
  for (std::uint32_t i = 0; i < config_.rnics; ++i) {
    const auto bus = static_cast<std::uint8_t>(0x10 + i * 0x10);
    RnicConfig rc = config_.rnic;
    rc.name = "rnic" + std::to_string(i);
    rnics_.push_back(std::make_unique<Rnic>(*pcie_, Bdf{bus, 0, 0},
                                            i % config_.pcie_switches, rc));
    Status s = rnics_.back()->enable_pf_gdr();
    if (!s.is_ok()) {
      throw std::runtime_error("StellarHost: PF GDR enable failed: " +
                               s.to_string());
    }
  }

  for (std::uint32_t g = 0; g < config_.gpus; ++g) {
    const auto bus = static_cast<std::uint8_t>(0x18 + g * 0x10);
    const Bdf bdf{bus, 1, 0};
    const std::size_t sw = g % config_.pcie_switches;
    auto bar = pcie_->attach_device(bdf, sw, config_.gpu_bar_bytes);
    if (!bar.is_ok()) {
      throw std::runtime_error("StellarHost: GPU attach failed: " +
                               bar.status().to_string());
    }
    Status s = pcie_->enable_p2p(bdf);
    if (!s.is_ok()) {
      throw std::runtime_error("StellarHost: GPU LUT registration failed: " +
                               s.to_string());
    }
    gpu_bdfs_.push_back(bdf);
    gpu_bars_.push_back(bar.value());
  }

  tenants_ = std::make_unique<TenantManager>(*this);
}

StellarHost::~StellarHost() = default;

TenantManager& StellarHost::tenants() { return *tenants_; }

StatusOr<VStellarDevice*> StellarHost::create_vstellar_device(
    RundContainer& container, std::size_t rnic_index) {
  if (rnic_index >= rnics_.size()) {
    return out_of_range("StellarHost: rnic index");
  }
  if (!container.booted()) {
    return failed_precondition("StellarHost: container not booted");
  }
  if (Status s = tenants_->admit_device(container.id()); !s.is_ok()) return s;
  // The container's PVDMA exists by now — (re)apply its pin budget.
  tenants_->apply(container.id());
  Rnic& rnic = *rnics_[rnic_index];
  auto hw = rnic.create_virtual_device(container.id());
  if (!hw.is_ok()) return hw.status();

  auto vdb = hypervisor_->map_vdb(container, hw.value().doorbell);
  if (!vdb.is_ok()) {
    (void)rnic.destroy_virtual_device(hw.value().id);
    return vdb.status();
  }

  const SimTime create_time =
      rnic.config().sf_create_time +
      hypervisor_->control_path(container.id()).execute(ControlCommand::kCreatePd);

  auto dev = std::unique_ptr<VStellarDevice>(new VStellarDevice(
      *this, container, rnic, hw.value(), vdb.value(), create_time));
  VStellarDevice* raw = dev.get();
  devices_.push_back(std::move(dev));
  return raw;
}

Status StellarHost::destroy_vstellar_device(VStellarDevice* device) {
  for (auto it = devices_.begin(); it != devices_.end(); ++it) {
    if (it->get() != device) continue;
    (void)hypervisor_->unmap_vdb(*device->container_, device->vdb_);
    (void)device->rnic_->destroy_virtual_device(device->hw_.id);
    devices_.erase(it);
    return Status::ok();
  }
  return not_found("StellarHost: unknown vStellar device");
}

std::vector<VStellarDevice*> StellarHost::devices_for_vm(VmId vm) {
  std::vector<VStellarDevice*> out;
  for (const auto& dev : devices_) {
    if (dev->vm() == vm) out.push_back(dev.get());
  }
  return out;
}

std::size_t StellarHost::device_count(VmId vm) const {
  std::size_t n = 0;
  for (const auto& dev : devices_) {
    if (dev->vm() == vm) ++n;
  }
  return n;
}

StatusOr<StellarHost::TenantKillReport> StellarHost::kill_tenant(
    RundContainer& container) {
  const VmId vm = container.id();
  TenantKillReport report;
  const std::uint64_t pinned_before = pcie_->iommu().pinned_bytes(vm);

  // Tear down every device: MRs first (releasing the PVDMA pins), then the
  // QPs, then the device itself. Deterministic order via sorted MR keys.
  for (VStellarDevice* dev : devices_for_vm(vm)) {
    for (MrKey key : dev->memory_keys()) {
      if (Status s = dev->deregister_memory(key); !s.is_ok()) return s;
      ++report.mrs;
    }
    for (const QueuePair& qp : dev->rnic().verbs().qps_in_pd(dev->pd())) {
      if (Status s = dev->rnic().verbs().destroy_qp(qp.num); !s.is_ok()) {
        return s;
      }
      ++report.qps;
    }
    if (Status s = destroy_vstellar_device(dev); !s.is_ok()) return s;
    ++report.devices;
  }

  report.rules_removed = vswitch_.remove_tenant_rules(vm);
  vswitch_.clear_qos(vm);

  if (container.booted()) {
    if (Status s = hypervisor_->shutdown_container(container); !s.is_ok()) {
      return s;
    }
  }

  report.unpinned_bytes = pinned_before - pcie_->iommu().pinned_bytes(vm);
  std::uint64_t residue = pcie_->iommu().pinned_bytes(vm);
  residue += device_count(vm);
  for (const auto& rnic : rnics_) {
    residue += rnic->mtt().tenant_pages(vm);
    residue += rnic->verbs().mr_count(vm);
    residue += rnic->verbs().qp_count(vm);
  }
  report.fully_reclaimed = residue == 0;
  return report;
}

StatusOr<std::string> StellarHost::serialize_vm_devices(VmId vm) const {
  SnapshotWriter w;
  w.section(kDevicesTag);
  w.u32(vm);

  std::vector<const VStellarDevice*> devs;
  for (const auto& dev : devices_) {
    if (dev->vm() == vm) devs.push_back(dev.get());
  }
  w.u32(static_cast<std::uint32_t>(devs.size()));

  for (const VStellarDevice* dev : devs) {
    std::size_t rnic_index = rnics_.size();
    for (std::size_t i = 0; i < rnics_.size(); ++i) {
      if (rnics_[i].get() == dev->rnic_) rnic_index = i;
    }
    if (rnic_index == rnics_.size()) {
      return internal_error("serialize_vm_devices: device RNIC not owned");
    }
    w.u32(static_cast<std::uint32_t>(rnic_index));

    std::vector<MrKey> keys;
    keys.reserve(dev->mr_records_.size());
    for (const auto& [key, rec] : dev->mr_records_) keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w.u32(static_cast<std::uint32_t>(keys.size()));
    for (MrKey key : keys) {
      const VStellarDevice::MrRecord& rec = dev->mr_records_.at(key);
      w.u32(key);
      w.u64(rec.va.value());
      w.u64(rec.len);
      w.u8(static_cast<std::uint8_t>(rec.owner));
      w.u64(rec.guest_addr);
      w.u32(rec.gpu_index);
    }

    const auto qps = dev->rnic_->verbs().qps_in_pd(dev->pd_);
    w.u32(static_cast<std::uint32_t>(qps.size()));
    for (const QueuePair& qp : qps) {
      w.u32(qp.num);
      w.u8(static_cast<std::uint8_t>(qp.state));
      w.u32(qp.remote_qp);
    }
  }
  return w.take();
}

StatusOr<StellarHost::DeviceRestoreReport> StellarHost::restore_vm_devices(
    RundContainer& container, const std::string& bytes) {
  SnapshotReader r(bytes);
  if (Status s = r.expect_section(kDevicesTag); !s.is_ok()) return s;
  if (r.u32() != container.id()) {
    return invalid_argument("restore_vm_devices: VM id mismatch");
  }

  DeviceRestoreReport report;
  Hypervisor& hyp = *hypervisor_;
  const std::uint32_t dev_count = r.u32();
  for (std::uint32_t d = 0; d < dev_count; ++d) {
    const std::uint32_t rnic_index = r.u32();
    auto dev_or = create_vstellar_device(container, rnic_index);
    if (!dev_or.is_ok()) return dev_or.status();
    VStellarDevice* dev = dev_or.value();
    ++report.devices;
    report.provision_time += dev->creation_time();

    const std::uint32_t mr_count = r.u32();
    for (std::uint32_t m = 0; m < mr_count; ++m) {
      const MrKey key = r.u32();
      VStellarDevice::MrRecord rec;
      rec.va = Gva{r.u64()};
      rec.len = r.u64();
      rec.owner = static_cast<MemoryOwner>(r.u8());
      rec.guest_addr = r.u64();
      rec.gpu_index = r.u32();

      report.control_time +=
          hyp.control_path(dev->vm_).execute(ControlCommand::kRegisterMr);
      std::uint64_t final_hpa = 0;
      if (rec.owner == MemoryOwner::kHostDram) {
        // The destination pin table starts empty: this is the Map Cache
        // cold path re-pinning the guest's working set on demand.
        auto pin = hyp.pvdma(dev->vm_).prepare_dma(Gpa{rec.guest_addr},
                                                   rec.len);
        if (!pin.is_ok()) return pin.status();
        report.control_time += pin.value().cost;
        report.repinned_bytes += pin.value().pinned_bytes;
        auto hpa = hyp.ept(dev->vm_).translate(Gpa{rec.guest_addr});
        if (!hpa.is_ok()) return hpa.status();
        final_hpa = hpa.value().value();
      } else {
        if (rec.gpu_index >= gpu_count()) {
          return out_of_range("restore_vm_devices: gpu index");
        }
        final_hpa = gpu_bars_.at(rec.gpu_index).base.value() + rec.guest_addr;
      }

      MemoryRegion mr{key, dev->pd_, rec.va, rec.len, rec.owner};
      if (Status s = dev->rnic_->verbs().adopt_mr(mr); !s.is_ok()) return s;
      if (Status s = dev->rnic_->mtt().register_region(
              key, rec.va, rec.len, final_hpa, rec.owner, /*translated=*/true,
              dev->vm_);
          !s.is_ok()) {
        return s;
      }
      if (rec.owner == MemoryOwner::kHostDram) {
        dev->pinned_ranges_.emplace(key,
                                    std::make_pair(Gpa{rec.guest_addr},
                                                   rec.len));
      }
      dev->mr_records_.emplace(key, rec);
      ++report.mrs;
    }

    const std::uint32_t qp_count = r.u32();
    for (std::uint32_t q = 0; q < qp_count; ++q) {
      QueuePair qp;
      qp.num = r.u32();
      qp.pd = dev->pd_;
      qp.state = static_cast<QpState>(r.u8());
      qp.remote_qp = r.u32();

      auto& control = hyp.control_path(dev->vm_);
      report.control_time += control.execute(ControlCommand::kCreateQp);
      // Re-walk the verbs ladder for however far the QP had progressed.
      const int steps = qp.state == QpState::kInit   ? 1
                        : qp.state == QpState::kRtr  ? 2
                        : qp.state == QpState::kRts  ? 3
                                                     : 0;
      for (int i = 0; i < steps; ++i) {
        report.control_time += control.execute(ControlCommand::kModifyQp);
      }
      if (Status s = dev->rnic_->verbs().adopt_qp(qp); !s.is_ok()) return s;
      ++report.qps;
    }
  }
  if (Status s = r.finish(); !s.is_ok()) return s;
  return report;
}

GdrEngine StellarHost::make_gdr_engine(GdrMode mode, std::size_t rnic_index) {
  Rnic& rnic = *rnics_.at(rnic_index);
  GdrEngineConfig cfg;
  cfg.nic_rate = rnic.config().line_rate;
  cfg.requester = rnic.pf_bdf();
  Atc* atc = nullptr;
  if (mode == GdrMode::kAtsAtc) {
    atcs_.push_back(std::make_unique<Atc>(*pcie_, rnic.pf_bdf(),
                                          rnic.config().atc_capacity_pages));
    atc = atcs_.back().get();
    tenants_->apply_to_atc(*atc);
  }
  return GdrEngine(*pcie_, cfg, mode, atc);
}

// ---------------------------------------------------------------------------
// VStellarDevice
// ---------------------------------------------------------------------------

VStellarDevice::VStellarDevice(StellarHost& host, RundContainer& container,
                               Rnic& rnic, Rnic::VirtualDevice hw,
                               Hypervisor::VdbMapping vdb,
                               SimTime creation_time)
    : host_(&host),
      container_(&container),
      rnic_(&rnic),
      hw_(hw),
      vdb_(vdb),
      creation_time_(creation_time),
      vm_(container.id()),
      pd_(rnic.verbs().create_pd(container.id())) {}

StatusOr<VStellarDevice::RegisterResult> VStellarDevice::register_memory(
    Gva va, std::uint64_t len, MemoryOwner owner, std::uint64_t guest_addr,
    std::size_t gpu_index) {
  Hypervisor& hyp = host_->hypervisor();
  if (Status s = host_->tenants().admit_mr(vm_); !s.is_ok()) return s;
  RegisterResult out;
  out.latency = hyp.control_path(vm_).execute(ControlCommand::kRegisterMr);

  std::uint64_t final_hpa = 0;
  if (owner == MemoryOwner::kHostDram) {
    const Gpa gpa{guest_addr};
    // PVDMA: pin the covering blocks on demand (Figure 4 stages 1-2).
    auto pin = hyp.pvdma(vm_).prepare_dma(gpa, len);
    if (!pin.is_ok()) return pin.status();
    out.latency += pin.value().cost;
    out.pinned_now = !pin.value().cache_hit;
    auto hpa = hyp.ept(vm_).translate(gpa);
    if (!hpa.is_ok()) return hpa.status();
    final_hpa = hpa.value().value();
  } else {
    if (gpu_index >= host_->gpu_count()) {
      return out_of_range("register_memory: gpu index");
    }
    const Bar bar = host_->gpu_bar(gpu_index);
    if (guest_addr + len > bar.len) {
      return out_of_range("register_memory: beyond GPU BAR");
    }
    final_hpa = bar.base.value() + guest_addr;
  }

  auto mr = rnic_->verbs().register_mr(pd_, va, len, owner);
  if (!mr.is_ok()) return mr.status();

  // The Stellar twist: the MTT entry stores the *final* HPA and the memory
  // owner — an eMTT entry (§6).
  Status s = rnic_->mtt().register_region(mr.value(), va, len, final_hpa,
                                          owner, /*translated=*/true, vm_);
  if (!s.is_ok()) {
    (void)rnic_->verbs().deregister_mr(mr.value());
    return s;
  }
  out.key = mr.value();
  if (owner == MemoryOwner::kHostDram) {
    pinned_ranges_.emplace(out.key, std::make_pair(Gpa{guest_addr}, len));
  }
  mr_records_.emplace(
      out.key,
      MrRecord{va, len, owner, guest_addr,
               static_cast<std::uint32_t>(gpu_index)});
  return out;
}

std::vector<MrKey> VStellarDevice::memory_keys() const {
  std::vector<MrKey> keys;
  keys.reserve(mr_records_.size());
  for (const auto& [key, rec] : mr_records_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status VStellarDevice::deregister_memory(MrKey key) {
  auto mr = rnic_->verbs().mr(key);
  if (!mr.is_ok()) return mr.status();
  if (auto it = pinned_ranges_.find(key); it != pinned_ranges_.end()) {
    host_->hypervisor().pvdma(vm_).release_dma(it->second.first,
                                               it->second.second);
    pinned_ranges_.erase(it);
  }
  mr_records_.erase(key);
  (void)rnic_->mtt().deregister(key);
  return rnic_->verbs().deregister_mr(key);
}

StatusOr<QpNum> VStellarDevice::create_qp() {
  if (Status s = host_->tenants().admit_qp(vm_); !s.is_ok()) return s;
  host_->hypervisor().control_path(vm_).execute(ControlCommand::kCreateQp);
  return rnic_->verbs().create_qp(pd_);
}

Status VStellarDevice::connect_qp(QpNum qp, QpNum remote_qp) {
  auto& control = host_->hypervisor().control_path(vm_);
  control.execute(ControlCommand::kModifyQp);
  Status s = rnic_->verbs().modify_qp(qp, QpState::kInit);
  if (!s.is_ok()) return s;
  control.execute(ControlCommand::kModifyQp);
  s = rnic_->verbs().modify_qp(qp, QpState::kRtr, remote_qp);
  if (!s.is_ok()) return s;
  control.execute(ControlCommand::kModifyQp);
  return rnic_->verbs().modify_qp(qp, QpState::kRts, remote_qp);
}

Status VStellarDevice::check_access(QpNum qp, MrKey mr) const {
  return rnic_->verbs().check_access(qp, mr);
}

StatusOr<GdrTransfer> VStellarDevice::gdr_write(MrKey mr, Gva va,
                                                std::uint64_t len) {
  auto entry = rnic_->mtt().lookup(mr, va);
  if (!entry.is_ok()) return entry.status();
  if (!entry.value().translated) {
    return failed_precondition("gdr_write: MR lacks an eMTT translation");
  }
  GdrEngineConfig cfg;
  cfg.nic_rate = rnic_->config().line_rate;
  cfg.requester = rnic_->pf_bdf();
  GdrEngine engine(host_->pcie(), cfg, GdrMode::kEmtt, nullptr);
  return engine.transfer(IoVa{entry.value().target}, len);
}

}  // namespace stellar
