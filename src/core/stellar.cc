#include "core/stellar.h"

#include <stdexcept>

namespace stellar {

StellarHost::StellarHost(StellarHostConfig config)
    : config_(std::move(config)) {
  pcie_ = std::make_unique<HostPcie>(config_.pcie);
  hypervisor_ = std::make_unique<Hypervisor>(*pcie_, config_.hypervisor);

  for (std::uint32_t s = 0; s < config_.pcie_switches; ++s) {
    pcie_->add_switch("pcie_sw" + std::to_string(s));
  }

  // One RNIC per switch, GPUs striped across switches (the 4-switch,
  // 4-RNIC, 8-GPU server of §3.1(3)).
  for (std::uint32_t i = 0; i < config_.rnics; ++i) {
    const auto bus = static_cast<std::uint8_t>(0x10 + i * 0x10);
    RnicConfig rc = config_.rnic;
    rc.name = "rnic" + std::to_string(i);
    rnics_.push_back(std::make_unique<Rnic>(*pcie_, Bdf{bus, 0, 0},
                                            i % config_.pcie_switches, rc));
    Status s = rnics_.back()->enable_pf_gdr();
    if (!s.is_ok()) {
      throw std::runtime_error("StellarHost: PF GDR enable failed: " +
                               s.to_string());
    }
  }

  for (std::uint32_t g = 0; g < config_.gpus; ++g) {
    const auto bus = static_cast<std::uint8_t>(0x18 + g * 0x10);
    const Bdf bdf{bus, 1, 0};
    const std::size_t sw = g % config_.pcie_switches;
    auto bar = pcie_->attach_device(bdf, sw, config_.gpu_bar_bytes);
    if (!bar.is_ok()) {
      throw std::runtime_error("StellarHost: GPU attach failed: " +
                               bar.status().to_string());
    }
    Status s = pcie_->enable_p2p(bdf);
    if (!s.is_ok()) {
      throw std::runtime_error("StellarHost: GPU LUT registration failed: " +
                               s.to_string());
    }
    gpu_bdfs_.push_back(bdf);
    gpu_bars_.push_back(bar.value());
  }
}

StellarHost::~StellarHost() = default;

StatusOr<VStellarDevice*> StellarHost::create_vstellar_device(
    RundContainer& container, std::size_t rnic_index) {
  if (rnic_index >= rnics_.size()) {
    return out_of_range("StellarHost: rnic index");
  }
  if (!container.booted()) {
    return failed_precondition("StellarHost: container not booted");
  }
  Rnic& rnic = *rnics_[rnic_index];
  auto hw = rnic.create_virtual_device(container.id());
  if (!hw.is_ok()) return hw.status();

  auto vdb = hypervisor_->map_vdb(container, hw.value().doorbell);
  if (!vdb.is_ok()) {
    (void)rnic.destroy_virtual_device(hw.value().id);
    return vdb.status();
  }

  const SimTime create_time =
      rnic.config().sf_create_time +
      hypervisor_->control_path(container.id()).execute(ControlCommand::kCreatePd);

  auto dev = std::unique_ptr<VStellarDevice>(new VStellarDevice(
      *this, container, rnic, hw.value(), vdb.value(), create_time));
  VStellarDevice* raw = dev.get();
  devices_.push_back(std::move(dev));
  return raw;
}

Status StellarHost::destroy_vstellar_device(VStellarDevice* device) {
  for (auto it = devices_.begin(); it != devices_.end(); ++it) {
    if (it->get() != device) continue;
    (void)hypervisor_->unmap_vdb(*device->container_, device->vdb_);
    (void)device->rnic_->destroy_virtual_device(device->hw_.id);
    devices_.erase(it);
    return Status::ok();
  }
  return not_found("StellarHost: unknown vStellar device");
}

GdrEngine StellarHost::make_gdr_engine(GdrMode mode, std::size_t rnic_index) {
  Rnic& rnic = *rnics_.at(rnic_index);
  GdrEngineConfig cfg;
  cfg.nic_rate = rnic.config().line_rate;
  cfg.requester = rnic.pf_bdf();
  Atc* atc = nullptr;
  if (mode == GdrMode::kAtsAtc) {
    atcs_.push_back(std::make_unique<Atc>(*pcie_, rnic.pf_bdf(),
                                          rnic.config().atc_capacity_pages));
    atc = atcs_.back().get();
  }
  return GdrEngine(*pcie_, cfg, mode, atc);
}

// ---------------------------------------------------------------------------
// VStellarDevice
// ---------------------------------------------------------------------------

VStellarDevice::VStellarDevice(StellarHost& host, RundContainer& container,
                               Rnic& rnic, Rnic::VirtualDevice hw,
                               Hypervisor::VdbMapping vdb,
                               SimTime creation_time)
    : host_(&host),
      container_(&container),
      rnic_(&rnic),
      hw_(hw),
      vdb_(vdb),
      creation_time_(creation_time),
      vm_(container.id()),
      pd_(rnic.verbs().create_pd(container.id())) {}

StatusOr<VStellarDevice::RegisterResult> VStellarDevice::register_memory(
    Gva va, std::uint64_t len, MemoryOwner owner, std::uint64_t guest_addr,
    std::size_t gpu_index) {
  Hypervisor& hyp = host_->hypervisor();
  RegisterResult out;
  out.latency = hyp.control_path(vm_).execute(ControlCommand::kRegisterMr);

  std::uint64_t final_hpa = 0;
  if (owner == MemoryOwner::kHostDram) {
    const Gpa gpa{guest_addr};
    // PVDMA: pin the covering blocks on demand (Figure 4 stages 1-2).
    auto pin = hyp.pvdma(vm_).prepare_dma(gpa, len);
    if (!pin.is_ok()) return pin.status();
    out.latency += pin.value().cost;
    out.pinned_now = !pin.value().cache_hit;
    auto hpa = hyp.ept(vm_).translate(gpa);
    if (!hpa.is_ok()) return hpa.status();
    final_hpa = hpa.value().value();
  } else {
    if (gpu_index >= host_->gpu_count()) {
      return out_of_range("register_memory: gpu index");
    }
    const Bar bar = host_->gpu_bar(gpu_index);
    if (guest_addr + len > bar.len) {
      return out_of_range("register_memory: beyond GPU BAR");
    }
    final_hpa = bar.base.value() + guest_addr;
  }

  auto mr = rnic_->verbs().register_mr(pd_, va, len, owner);
  if (!mr.is_ok()) return mr.status();

  // The Stellar twist: the MTT entry stores the *final* HPA and the memory
  // owner — an eMTT entry (§6).
  Status s = rnic_->mtt().register_region(mr.value(), va, len, final_hpa,
                                          owner, /*translated=*/true);
  if (!s.is_ok()) {
    (void)rnic_->verbs().deregister_mr(mr.value());
    return s;
  }
  out.key = mr.value();
  if (owner == MemoryOwner::kHostDram) {
    pinned_ranges_.emplace(out.key, std::make_pair(Gpa{guest_addr}, len));
  }
  return out;
}

Status VStellarDevice::deregister_memory(MrKey key) {
  auto mr = rnic_->verbs().mr(key);
  if (!mr.is_ok()) return mr.status();
  if (auto it = pinned_ranges_.find(key); it != pinned_ranges_.end()) {
    host_->hypervisor().pvdma(vm_).release_dma(it->second.first,
                                               it->second.second);
    pinned_ranges_.erase(it);
  }
  (void)rnic_->mtt().deregister(key);
  return rnic_->verbs().deregister_mr(key);
}

StatusOr<QpNum> VStellarDevice::create_qp() {
  host_->hypervisor().control_path(vm_).execute(ControlCommand::kCreateQp);
  return rnic_->verbs().create_qp(pd_);
}

Status VStellarDevice::connect_qp(QpNum qp, QpNum remote_qp) {
  auto& control = host_->hypervisor().control_path(vm_);
  control.execute(ControlCommand::kModifyQp);
  Status s = rnic_->verbs().modify_qp(qp, QpState::kInit);
  if (!s.is_ok()) return s;
  control.execute(ControlCommand::kModifyQp);
  s = rnic_->verbs().modify_qp(qp, QpState::kRtr, remote_qp);
  if (!s.is_ok()) return s;
  control.execute(ControlCommand::kModifyQp);
  return rnic_->verbs().modify_qp(qp, QpState::kRts, remote_qp);
}

Status VStellarDevice::check_access(QpNum qp, MrKey mr) const {
  return rnic_->verbs().check_access(qp, mr);
}

StatusOr<GdrTransfer> VStellarDevice::gdr_write(MrKey mr, Gva va,
                                                std::uint64_t len) {
  auto entry = rnic_->mtt().lookup(mr, va);
  if (!entry.is_ok()) return entry.status();
  if (!entry.value().translated) {
    return failed_precondition("gdr_write: MR lacks an eMTT translation");
  }
  GdrEngineConfig cfg;
  cfg.nic_rate = rnic_->config().line_rate;
  cfg.requester = rnic_->pf_bdf();
  GdrEngine engine(host_->pcie(), cfg, GdrMode::kEmtt, nullptr);
  return engine.transfer(IoVa{entry.value().target}, len);
}

}  // namespace stellar
