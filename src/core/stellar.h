// Public Stellar API — the host-side view (§4, Figure 3).
//
// A StellarHost models one GPU server: a PCIe fabric with per-switch
// RNIC+GPU pairs, a hypervisor running RunD secure containers, and RNICs
// that expose dynamic vStellar virtual devices instead of SR-IOV VFs.
//
// A VStellarDevice is the tenant-facing RDMA device:
//  * control path (QP/MR verbs) rides the virtio control queue, where the
//    host applies policy — each VM gets a dedicated protection domain;
//  * data path is direct: the doorbell page is mapped into the guest (via
//    the virtio shm region) and MRs are written into the RNIC's eMTT with
//    their *final* HPA and memory owner, enabling switch-P2P GDR;
//  * registration of host memory pins on demand through PVDMA.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/snapshot.h"
#include "common/status.h"
#include "common/units.h"
#include "pcie/atc.h"
#include "pcie/host_pcie.h"
#include "rnic/device.h"
#include "rnic/gdr.h"
#include "rnic/vswitch.h"
#include "virt/container.h"
#include "virt/hypervisor.h"
#include "virt/runtime.h"

namespace stellar {

struct StellarHostConfig {
  std::uint32_t pcie_switches = 4;
  std::uint32_t rnics = 4;           // one per switch
  std::uint32_t gpus = 8;            // two per switch
  std::uint64_t gpu_bar_bytes = 32ull << 30;
  RnicConfig rnic;
  HostPcieConfig pcie;
  HypervisorConfig hypervisor;
};

class VStellarDevice;
class TenantManager;

class StellarHost {
 public:
  explicit StellarHost(StellarHostConfig config = {});
  ~StellarHost();

  StellarHost(const StellarHost&) = delete;
  StellarHost& operator=(const StellarHost&) = delete;

  // -- Hardware access ---------------------------------------------------------

  HostPcie& pcie() { return *pcie_; }
  Hypervisor& hypervisor() { return *hypervisor_; }
  Rnic& rnic(std::size_t i) { return *rnics_.at(i); }
  const Rnic& rnic(std::size_t i) const { return *rnics_.at(i); }
  std::size_t rnic_count() const { return rnics_.size(); }
  /// ATCs created for kAtsAtc GDR engines (tenant shares apply to them).
  Atc& atc(std::size_t i) { return *atcs_.at(i); }
  std::size_t atc_count() const { return atcs_.size(); }
  /// Host-level flow-steering table shared by every tenant's kernel stack.
  VSwitch& vswitch() { return vswitch_; }
  const VSwitch& vswitch() const { return vswitch_; }
  Bdf gpu_bdf(std::size_t i) const { return gpu_bdfs_.at(i); }
  Bar gpu_bar(std::size_t i) const { return gpu_bars_.at(i); }
  std::size_t gpu_count() const { return gpu_bdfs_.size(); }

  // -- Container lifecycle -------------------------------------------------------

  StatusOr<Hypervisor::BootReport> boot(RundContainer& container) {
    return hypervisor_->boot_container(container);
  }
  Status shutdown(RundContainer& container) {
    return hypervisor_->shutdown_container(container);
  }

  // -- vStellar devices -----------------------------------------------------------

  /// Create a vStellar device on `rnic_index` for `container`. Seconds, not
  /// minutes: no VF reset, no new BDF, no LUT slot. The returned pointer is
  /// owned by the host.
  StatusOr<VStellarDevice*> create_vstellar_device(RundContainer& container,
                                                   std::size_t rnic_index);
  Status destroy_vstellar_device(VStellarDevice* device);
  std::size_t vstellar_device_count() const { return devices_.size(); }

  /// Build a GDR engine for benchmarking a given translation design against
  /// GPU `gpu_index`'s memory through `rnic_index`.
  GdrEngine make_gdr_engine(GdrMode mode, std::size_t rnic_index);

  /// All vStellar devices owned by `vm`, in creation order.
  std::vector<VStellarDevice*> devices_for_vm(VmId vm);
  std::size_t device_count(VmId vm) const;

  // -- Multi-tenant isolation ------------------------------------------------------

  /// Budget/admission/degradation policy layer (docs/TENANCY.md).
  TenantManager& tenants();

  struct TenantKillReport {
    std::size_t devices = 0;
    std::size_t mrs = 0;
    std::size_t qps = 0;
    std::size_t rules_removed = 0;
    std::uint64_t unpinned_bytes = 0;
    /// Every per-tenant ledger (pins, MTT pages, verbs objects, IOTLB
    /// occupancy after shootdown) reads zero after the reclaim.
    bool fully_reclaimed = false;
  };

  /// Forcibly evict a tenant — the attacker-killed-mid-flood path. Tears
  /// down every vStellar device (deregistering MRs, releasing PVDMA pins,
  /// destroying QPs), drops the tenant's vSwitch rules and QoS state, and
  /// shuts the container down. All shared-resource accounting for the
  /// tenant must return to zero (auditors stay green), with zero effect on
  /// other tenants' resources.
  StatusOr<TenantKillReport> kill_tenant(RundContainer& container);

  // -- Live migration ------------------------------------------------------------

  /// Serialize the guest-visible verbs state of every vStellar device owned
  /// by `vm`: per device the RNIC index, every MR (key, GVA, length, owner,
  /// guest address, GPU index) and every QP (number, state, remote QP).
  /// Byte-stable for a given state; restore_vm_devices() rebuilds the
  /// devices on another host with identical guest-visible keys.
  StatusOr<std::string> serialize_vm_devices(VmId vm) const;

  struct DeviceRestoreReport {
    std::size_t devices = 0;
    std::size_t mrs = 0;
    std::size_t qps = 0;
    /// Host-DRAM bytes re-pinned through the PVDMA cold path.
    std::uint64_t repinned_bytes = 0;
    /// vStellar device provisioning (sf_create_time + PD setup). Depends
    /// only on placement, not guest state — a migration orchestrator
    /// overlaps it with pre-copy, so it is reported separately from the
    /// downtime-critical control_time.
    SimTime provision_time;
    /// Downtime-critical control work: per-MR registration (incl. PVDMA
    /// re-pin cost) + per-QP re-establishment.
    SimTime control_time;
  };

  /// Migration destination: re-create `vm`'s devices from a
  /// serialize_vm_devices() snapshot. The container must already be
  /// restored (restore_container): MR registration re-pins guest DRAM
  /// through PVDMA on demand and rebuilds eMTT entries with the *new* final
  /// HPAs; MR keys and QP numbers are adopted verbatim.
  StatusOr<DeviceRestoreReport> restore_vm_devices(RundContainer& container,
                                                   const std::string& bytes);

  const StellarHostConfig& config() const { return config_; }

 private:
  friend class VStellarDevice;
  friend class EmttCoherenceAuditor;  // walks devices for eMTT audits

  StellarHostConfig config_;
  std::unique_ptr<HostPcie> pcie_;
  std::unique_ptr<Hypervisor> hypervisor_;
  std::vector<std::unique_ptr<Rnic>> rnics_;
  std::vector<Bdf> gpu_bdfs_;
  std::vector<Bar> gpu_bars_;
  std::vector<std::unique_ptr<VStellarDevice>> devices_;
  std::vector<std::unique_ptr<Atc>> atcs_;  // for baseline GDR engines
  VSwitch vswitch_;
  std::unique_ptr<TenantManager> tenants_;
};

class VStellarDevice {
 public:
  VmId vm() const { return vm_; }
  PdId pd() const { return pd_; }
  std::uint32_t id() const { return hw_.id; }
  Hpa doorbell_hpa() const { return hw_.doorbell; }
  const Hypervisor::VdbMapping& doorbell_mapping() const { return vdb_; }
  SimTime creation_time() const { return creation_time_; }
  Rnic& rnic() { return *rnic_; }

  // -- Control path (virtio-mediated verbs) -------------------------------------

  /// Register guest memory for RDMA. For host DRAM, `guest_addr` is the GPA
  /// of the buffer: PVDMA pins the covering blocks and the eMTT entry
  /// stores the final HPA. For GPU HBM, `guest_addr` is the offset into the
  /// assigned GPU's BAR. Returns the MR key plus the modelled latency.
  struct RegisterResult {
    MrKey key = 0;
    SimTime latency;       // virtio control RTT + (host) PVDMA pin time
    bool pinned_now = false;
  };
  StatusOr<RegisterResult> register_memory(Gva va, std::uint64_t len,
                                           MemoryOwner owner,
                                           std::uint64_t guest_addr,
                                           std::size_t gpu_index = 0);
  Status deregister_memory(MrKey key);

  /// Everything needed to re-register an MR on another host (the verbs-side
  /// MemoryRegion lacks the guest address and GPU index).
  struct MrRecord {
    Gva va;
    std::uint64_t len = 0;
    MemoryOwner owner = MemoryOwner::kHostDram;
    std::uint64_t guest_addr = 0;
    std::uint32_t gpu_index = 0;
  };
  const std::unordered_map<MrKey, MrRecord>& memory_records() const {
    return mr_records_;
  }
  /// Registered MR keys in sorted order (deterministic iteration).
  std::vector<MrKey> memory_keys() const;

  StatusOr<QpNum> create_qp();
  Status connect_qp(QpNum qp, QpNum remote_qp);

  /// The hardware PD check, as the RNIC would apply it on a data access.
  Status check_access(QpNum qp, MrKey mr) const;

  /// GDR write through the eMTT fast path: looks up the MR's eMTT entry,
  /// emits pre-translated TLPs, and returns the modelled transfer.
  StatusOr<GdrTransfer> gdr_write(MrKey mr, Gva va, std::uint64_t len);

 private:
  friend class StellarHost;
  friend class EmttCoherenceAuditor;  // reads pinned ranges for eMTT audits
  VStellarDevice(StellarHost& host, RundContainer& container, Rnic& rnic,
                 Rnic::VirtualDevice hw, Hypervisor::VdbMapping vdb,
                 SimTime creation_time);

  StellarHost* host_;
  RundContainer* container_;
  Rnic* rnic_;
  Rnic::VirtualDevice hw_;
  Hypervisor::VdbMapping vdb_;
  SimTime creation_time_;
  VmId vm_;
  PdId pd_;
  /// Host-DRAM MRs: the guest-physical range PVDMA pinned, needed again at
  /// deregistration (the MR itself records only the GVA).
  std::unordered_map<MrKey, std::pair<Gpa, std::uint64_t>> pinned_ranges_;
  /// Full registration arguments per MR, for migration re-registration.
  std::unordered_map<MrKey, MrRecord> mr_records_;
};

}  // namespace stellar
