// StellarCluster: convenience wrapper bundling the simulator, the Clos
// fabric and an RdmaEngine fleet — the five-line on-ramp for examples and
// quick experiments:
//
//   stellar::StellarCluster cluster{cfg};
//   auto* conn = cluster.connect(a, b).value();
//   conn->post_write(64_MiB, [&]{ ... });
//   cluster.run();
#pragma once

#include "collective/fleet.h"
#include "net/fabric.h"
#include "rnic/transport.h"
#include "sim/simulator.h"

namespace stellar {

struct ClusterConfig {
  FabricConfig fabric;
  TransportConfig transport;  // defaults: 128-path OBS, 250 us RTO
};

class StellarCluster {
 public:
  explicit StellarCluster(ClusterConfig config = {})
      : config_(config),
        fabric_(sim_, config.fabric),
        fleet_(sim_, fabric_) {}

  Simulator& simulator() { return sim_; }
  ClosFabric& fabric() { return fabric_; }
  EngineFleet& fleet() { return fleet_; }
  const ClusterConfig& config() const { return config_; }

  EndpointId endpoint(std::uint32_t segment, std::uint32_t host,
                      std::uint32_t rail = 0, std::uint32_t plane = 0) const {
    return fabric_.endpoint(segment, host, rail, plane);
  }

  /// Open a connection with the cluster's default transport settings.
  /// Instantiates both endpoint engines.
  StatusOr<RdmaConnection*> connect(EndpointId from, EndpointId to) {
    return fleet_.connect(from, to, config_.transport);
  }
  StatusOr<RdmaConnection*> connect(EndpointId from, EndpointId to,
                                    const TransportConfig& transport) {
    return fleet_.connect(from, to, transport);
  }

  /// Run the simulation until every queued event has executed.
  std::uint64_t run() { return sim_.run(); }
  std::uint64_t run_for(SimTime duration) {
    return sim_.run_until(sim_.now() + duration);
  }

 private:
  ClusterConfig config_;
  Simulator sim_;
  ClosFabric fabric_;
  EngineFleet fleet_;
};

}  // namespace stellar
