// First-class tenant layer: budgets, admission, and graceful degradation
// (docs/TENANCY.md).
//
// A tenant is one RunD container / VM (TenantId == VmId numerically; the
// alias lives in common/units.h at the bottom of the layering DAG). Every
// shared host resource — verbs QP/MR tables, the per-RNIC MTT, the IOMMU
// pin budget and IOTLB, the vSwitch rule table and egress port — already
// attributes its usage per tenant; the TenantManager is the policy layer
// on top:
//
//  * TenantBudgets declares the contract (zero = uncapped);
//  * register_tenant() pushes the caps into the owning resources;
//  * admit_*() gates are consulted by the control path *before* consuming
//    a shared slot, shedding over-budget tenants with kFailedPrecondition
//    (loud, attributable, non-retryable) instead of letting them exhaust a
//    global table into everyone's kResourceExhausted;
//  * level() grades each tenant on the degradation ladder — kGreen (under
//    80% of every cap), kThrottled (≥80% somewhere: the vSwitch token
//    bucket and WDRR weights are doing the shaping), kShed (at a cap:
//    new acquisitions are rejected) — recoverable in both directions as
//    the tenant releases resources;
//  * set_enforcement(false) lifts every cap in place (the bench's
//    "unprotected baseline" mode) and set_enforcement(true) restores them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "rnic/vswitch.h"

namespace stellar {

class Atc;
class StellarHost;

/// Per-tenant resource contract. Zero means uncapped for that dimension.
struct TenantBudgets {
  std::uint64_t max_devices = 0;       // vStellar devices
  std::uint64_t max_qps = 0;           // across all RNICs
  std::uint64_t max_mrs = 0;           // across all RNICs
  std::uint64_t pin_budget_bytes = 0;  // PVDMA-pinned host memory
  std::uint64_t mtt_page_cap = 0;      // resident MTT pages per RNIC
  std::size_t iotlb_share_entries = 0; // IOTLB residency cap
  std::size_t atc_share_entries = 0;   // ATC residency cap (GDR engines)
  TenantQos qos;                       // vSwitch rate/weight/rule contract
};

/// Where a tenant sits on the graceful-degradation ladder.
enum class DegradeLevel : std::uint8_t { kGreen, kThrottled, kShed };

const char* to_string(DegradeLevel level);

class TenantManager {
 public:
  explicit TenantManager(StellarHost& host) : host_(&host) {}

  /// Declare (or replace) a tenant's contract and push the caps into every
  /// owning resource. Call again after boot to (re)apply the PVDMA budget.
  Status register_tenant(TenantId tenant, TenantBudgets budgets);
  /// Drop the contract and lift the tenant's caps everywhere.
  Status deregister_tenant(TenantId tenant);
  const TenantBudgets* budgets(TenantId tenant) const;
  /// Registered tenants in sorted order (deterministic iteration).
  std::vector<TenantId> registered() const;

  /// Toggle enforcement host-wide. Off = every cap lifted in place (the
  /// noisy-neighbor bench's unprotected baseline); on = contracts restored.
  void set_enforcement(bool on);
  bool enforcement() const { return enforce_; }

  /// Re-push the tenant's caps into resources that (re)appeared since
  /// registration — notably the PVDMA instance created at container boot.
  void apply(TenantId tenant);

  /// Seed a freshly created ATC with every registered tenant's share
  /// (StellarHost::make_gdr_engine creates ATCs after registration).
  void apply_to_atc(Atc& atc) const;

  // -- Admission gates (control path) ---------------------------------------

  Status admit_device(TenantId tenant);
  Status admit_qp(TenantId tenant);
  Status admit_mr(TenantId tenant);

  // -- Accounting / grading --------------------------------------------------

  struct Usage {
    std::uint64_t devices = 0;
    std::uint64_t qps = 0;
    std::uint64_t mrs = 0;
    std::uint64_t pinned_bytes = 0;
    std::uint64_t mtt_pages = 0;   // max over RNICs (the cap is per RNIC)
    std::uint64_t iotlb_entries = 0;
  };
  Usage usage(TenantId tenant) const;

  DegradeLevel level(TenantId tenant) const;

  std::uint64_t admitted(TenantId tenant) const;
  std::uint64_t shed(TenantId tenant) const;

  /// Deterministic (sorted keys, integer-only) JSON for emitters.
  std::string to_json() const;

 private:
  /// Push `budgets` (or lifted caps when !enforce_) into the resources.
  void push(TenantId tenant, const TenantBudgets& budgets);
  Status gate(TenantId tenant, std::uint64_t used, std::uint64_t cap,
              const char* what);

  StellarHost* host_;
  bool enforce_ = true;
  std::map<TenantId, TenantBudgets> budgets_;
  std::map<TenantId, std::uint64_t> admits_;
  std::map<TenantId, std::uint64_t> sheds_;
};

}  // namespace stellar
