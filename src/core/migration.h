// VM live migration for vStellar guests (control-plane robustness).
//
// Orchestrates pause → copy → resume of one RunD container from a source
// StellarHost onto a destination StellarHost:
//
//  1. Pre-copy: guest RAM is shipped in 2 MiB chunks while the guest keeps
//     running; each round re-copies the chunks dirtied during the previous
//     round (a fixed, configured dirty fraction — deterministic by design).
//  2. Stop-and-copy (downtime starts): the guest pauses, the final dirty
//     chunks are copied, the hypervisor state (EPT, PVDMA, shm, virtio) and
//     the vStellar device state (MR keys, QP numbers) are serialized.
//  3. Source teardown: every MR is deregistered (releasing its PVDMA pins —
//     the IOMMU pin accounting must drain to zero), the vStellar devices
//     are destroyed, and the container shuts down.
//  4. Destination resume: the container restores onto fresh backing memory
//     (EPT rebased, pin table empty), devices are re-created with identical
//     guest-visible keys, and host-DRAM MRs re-pin on demand through the
//     Map Cache cold path. Downtime ends.
//
// Everything is arithmetic over modelled costs, so the same inputs always
// produce the same MigrationReport — byte-deterministic bench output.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/units.h"
#include "core/stellar.h"

namespace stellar {

struct MigrationConfig {
  /// Pre-copy granularity; matches the PVDMA/EPT 2 MiB block size.
  std::uint64_t chunk_bytes = 2ull << 20;
  /// Migration-stream rate (one NIC's worth by default).
  Bandwidth copy_rate = Bandwidth::bits_per_sec(100ll * 1000 * 1000 * 1000);
  /// Fraction of the chunks copied in round N that the guest dirties
  /// before round N+1 finishes.
  double dirty_fraction = 0.05;
  /// Stop-and-copy once the dirty set shrinks to this many chunks.
  std::uint64_t min_dirty_chunks = 4;
  std::uint32_t max_precopy_rounds = 16;
};

struct MigrationReport {
  /// Guest-visible pause (stop-and-copy through destination resume).
  SimTime downtime;
  /// Pre-copy wall time (guest keeps running).
  SimTime precopy_time;
  std::uint32_t precopy_rounds = 0;
  std::uint64_t chunks_total = 0;
  /// Dirty chunks shipped during stop-and-copy.
  std::uint64_t chunks_final = 0;
  std::uint64_t snapshot_bytes = 0;
  std::size_t devices = 0;
  std::size_t mrs = 0;
  std::size_t qps = 0;
  /// Host-DRAM bytes re-pinned at the destination (Map Cache cold path).
  std::uint64_t repinned_bytes = 0;
  /// FNV-1a digest of the serialized state (hypervisor + devices), for
  /// byte-determinism checks across runs.
  std::string digest;
};

/// Migrate `vm` from `source` to `destination`. `src_container` must be
/// booted on `source` with its devices created; `dst_container` must be a
/// not-yet-booted container with the same VM id and memory size. On
/// success the guest runs on `destination` (same MR keys, same QP numbers)
/// and the source holds no trace of it — devices gone, pins drained,
/// container shut down.
StatusOr<MigrationReport> migrate_vm(StellarHost& source,
                                     StellarHost& destination,
                                     RundContainer& src_container,
                                     RundContainer& dst_container,
                                     const MigrationConfig& config = {});

}  // namespace stellar
