#include "core/migration.h"

#include <algorithm>

#include "common/snapshot.h"

namespace stellar {

StatusOr<MigrationReport> migrate_vm(StellarHost& source,
                                     StellarHost& destination,
                                     RundContainer& src_container,
                                     RundContainer& dst_container,
                                     const MigrationConfig& config) {
  if (src_container.id() != dst_container.id()) {
    return invalid_argument("migrate_vm: containers disagree on VM id");
  }
  if (src_container.memory_bytes() != dst_container.memory_bytes()) {
    return invalid_argument("migrate_vm: containers disagree on memory size");
  }
  if (!src_container.booted()) {
    return failed_precondition("migrate_vm: source container not booted");
  }
  if (dst_container.booted()) {
    return failed_precondition("migrate_vm: destination already booted");
  }
  if (config.chunk_bytes == 0 || config.copy_rate.bps() <= 0) {
    return invalid_argument("migrate_vm: bad chunk size or copy rate");
  }
  const VmId vm = src_container.id();
  if (!source.hypervisor().booted(vm)) {
    return failed_precondition("migrate_vm: VM unknown to source hypervisor");
  }

  MigrationReport report;

  // -- 1. Pre-copy rounds (guest running) ----------------------------------
  report.chunks_total =
      (src_container.memory_bytes() + config.chunk_bytes - 1) /
      config.chunk_bytes;
  std::uint64_t dirty = report.chunks_total;
  while (dirty > config.min_dirty_chunks &&
         report.precopy_rounds < config.max_precopy_rounds) {
    report.precopy_time +=
        config.copy_rate.transmit_time(dirty * config.chunk_bytes);
    ++report.precopy_rounds;
    // The guest dirties a fixed fraction of what the round just shipped.
    dirty = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(dirty) * config.dirty_fraction));
  }
  report.chunks_final = dirty;

  // -- 2. Stop-and-copy: pause, ship the residue, serialize ---------------
  SimTime downtime =
      config.copy_rate.transmit_time(report.chunks_final * config.chunk_bytes);

  auto vm_blob = source.hypervisor().serialize_vm(vm);
  if (!vm_blob.is_ok()) return vm_blob.status();
  auto dev_blob = source.serialize_vm_devices(vm);
  if (!dev_blob.is_ok()) return dev_blob.status();
  report.snapshot_bytes = vm_blob.value().size() + dev_blob.value().size();
  report.digest =
      snapshot_digest(vm_blob.value() + dev_blob.value());
  downtime += config.copy_rate.transmit_time(report.snapshot_bytes);

  // Carry the guest allocator cursor: the destination container must hand
  // out the same GPAs the guest already holds.
  dst_container.set_alloc_cursor(src_container.alloc_cursor());

  // -- 3. Source teardown: drain pins, drop devices, shut down ------------
  for (VStellarDevice* dev : source.devices_for_vm(vm)) {
    for (MrKey key : dev->memory_keys()) {
      if (Status s = dev->deregister_memory(key); !s.is_ok()) return s;
    }
    if (Status s = source.destroy_vstellar_device(dev); !s.is_ok()) return s;
  }
  if (Status s = source.shutdown(src_container); !s.is_ok()) return s;

  // -- 4. Destination resume ----------------------------------------------
  // The destination shell (backing memory, EPT page tables) and the
  // vStellar devices depend only on the guest's *placement*, which is known
  // from migration start — a real orchestrator provisions them while
  // pre-copy streams. Their cost therefore lands in precopy_time; only the
  // state adoption (MR re-registration + re-pin, QP ladder) is downtime.
  auto boot = destination.hypervisor().restore_container(dst_container,
                                                         vm_blob.value());
  if (!boot.is_ok()) return boot.status();
  report.precopy_time += boot.value().total;

  auto devs = destination.restore_vm_devices(dst_container, dev_blob.value());
  if (!devs.is_ok()) return devs.status();
  report.precopy_time += devs.value().provision_time;
  downtime += devs.value().control_time;

  report.devices = devs.value().devices;
  report.mrs = devs.value().mrs;
  report.qps = devs.value().qps;
  report.repinned_bytes = devs.value().repinned_bytes;
  report.downtime = downtime;
  return report;
}

}  // namespace stellar
