#include "core/tenant.h"

#include <algorithm>

#include "core/stellar.h"

namespace stellar {

const char* to_string(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kGreen: return "green";
    case DegradeLevel::kThrottled: return "throttled";
    case DegradeLevel::kShed: return "shed";
  }
  return "?";
}

Status TenantManager::register_tenant(TenantId tenant, TenantBudgets budgets) {
  budgets_[tenant] = budgets;
  apply(tenant);
  return Status::ok();
}

Status TenantManager::deregister_tenant(TenantId tenant) {
  auto it = budgets_.find(tenant);
  if (it == budgets_.end()) {
    return not_found("TenantManager: tenant not registered");
  }
  // Lift every cap before forgetting the contract.
  push(tenant, TenantBudgets{});
  host_->vswitch().clear_qos(tenant);
  budgets_.erase(it);
  return Status::ok();
}

const TenantBudgets* TenantManager::budgets(TenantId tenant) const {
  auto it = budgets_.find(tenant);
  return it == budgets_.end() ? nullptr : &it->second;
}

std::vector<TenantId> TenantManager::registered() const {
  std::vector<TenantId> out;
  out.reserve(budgets_.size());
  for (const auto& [tenant, b] : budgets_) out.push_back(tenant);
  return out;
}

void TenantManager::set_enforcement(bool on) {
  if (enforce_ == on) return;
  enforce_ = on;
  for (const auto& [tenant, b] : budgets_) apply(tenant);
}

void TenantManager::apply(TenantId tenant) {
  auto it = budgets_.find(tenant);
  if (it == budgets_.end()) return;
  push(tenant, enforce_ ? it->second : TenantBudgets{});
}

void TenantManager::apply_to_atc(Atc& atc) const {
  for (const auto& [tenant, b] : budgets_) {
    atc.set_share(tenant, enforce_ ? b.atc_share_entries : 0);
  }
}

void TenantManager::push(TenantId tenant, const TenantBudgets& b) {
  Iommu& iommu = host_->pcie().iommu();
  iommu.set_iotlb_share(tenant, b.iotlb_share_entries);
  for (std::size_t i = 0; i < host_->rnic_count(); ++i) {
    host_->rnic(i).mtt().set_tenant_page_cap(tenant, b.mtt_page_cap);
  }
  for (std::size_t i = 0; i < host_->atc_count(); ++i) {
    host_->atc(i).set_share(tenant, b.atc_share_entries);
  }
  if (host_->hypervisor().booted(tenant)) {
    host_->hypervisor().pvdma(tenant).set_pin_budget(b.pin_budget_bytes);
  }
  if (b.qos.rate.bps() > 0 || b.qos.weight != 1 || b.qos.max_rules != 0 ||
      b.qos.max_queue_packets != 0 || b.qos.burst_bytes != 0) {
    host_->vswitch().set_qos(tenant, b.qos);
  } else {
    host_->vswitch().clear_qos(tenant);
  }
}

Status TenantManager::gate(TenantId tenant, std::uint64_t used,
                           std::uint64_t cap, const char* what) {
  if (enforce_ && cap != 0 && used >= cap) {
    ++sheds_[tenant];
    return failed_precondition(std::string("TenantManager: ") + what +
                               " budget exceeded for tenant " +
                               std::to_string(tenant));
  }
  ++admits_[tenant];
  return Status::ok();
}

Status TenantManager::admit_device(TenantId tenant) {
  const TenantBudgets* b = budgets(tenant);
  return gate(tenant, host_->device_count(tenant), b ? b->max_devices : 0,
              "device");
}

Status TenantManager::admit_qp(TenantId tenant) {
  const Usage u = usage(tenant);
  const TenantBudgets* b = budgets(tenant);
  return gate(tenant, u.qps, b ? b->max_qps : 0, "QP");
}

Status TenantManager::admit_mr(TenantId tenant) {
  const Usage u = usage(tenant);
  const TenantBudgets* b = budgets(tenant);
  return gate(tenant, u.mrs, b ? b->max_mrs : 0, "MR");
}

TenantManager::Usage TenantManager::usage(TenantId tenant) const {
  Usage u;
  u.devices = host_->device_count(tenant);
  for (std::size_t i = 0; i < host_->rnic_count(); ++i) {
    const Rnic& rnic = host_->rnic(i);
    u.qps += rnic.verbs().qp_count(tenant);
    u.mrs += rnic.verbs().mr_count(tenant);
    u.mtt_pages = std::max(u.mtt_pages, rnic.mtt().tenant_pages(tenant));
  }
  const Iommu& iommu = host_->pcie().iommu();
  u.pinned_bytes = iommu.pinned_bytes(tenant);
  u.iotlb_entries = iommu.iotlb_occupancy(tenant);
  return u;
}

namespace {
/// Utilization in percent against a cap; 0 when uncapped.
std::uint64_t util_pct(std::uint64_t used, std::uint64_t cap) {
  return cap == 0 ? 0 : used * 100 / cap;
}
}  // namespace

DegradeLevel TenantManager::level(TenantId tenant) const {
  const TenantBudgets* b = budgets(tenant);
  if (!enforce_ || b == nullptr) return DegradeLevel::kGreen;
  const Usage u = usage(tenant);
  std::uint64_t worst = util_pct(u.devices, b->max_devices);
  worst = std::max(worst, util_pct(u.qps, b->max_qps));
  worst = std::max(worst, util_pct(u.mrs, b->max_mrs));
  worst = std::max(worst, util_pct(u.pinned_bytes, b->pin_budget_bytes));
  worst = std::max(worst, util_pct(u.mtt_pages, b->mtt_page_cap));
  worst = std::max(worst, util_pct(u.iotlb_entries, b->iotlb_share_entries));
  if (worst >= 100) return DegradeLevel::kShed;
  if (worst >= 80) return DegradeLevel::kThrottled;
  return DegradeLevel::kGreen;
}

std::uint64_t TenantManager::admitted(TenantId tenant) const {
  auto it = admits_.find(tenant);
  return it == admits_.end() ? 0 : it->second;
}

std::uint64_t TenantManager::shed(TenantId tenant) const {
  auto it = sheds_.find(tenant);
  return it == sheds_.end() ? 0 : it->second;
}

std::string TenantManager::to_json() const {
  std::string out = "{\"enforcement\":";
  out += enforce_ ? "1" : "0";
  out += ",\"tenants\":[";
  bool first = true;
  for (const auto& [tenant, b] : budgets_) {
    if (!first) out += ",";
    first = false;
    const Usage u = usage(tenant);
    out += "{\"tenant\":" + std::to_string(tenant);
    out += ",\"level\":\"" + std::string(to_string(level(tenant))) + "\"";
    out += ",\"devices\":" + std::to_string(u.devices);
    out += ",\"qps\":" + std::to_string(u.qps);
    out += ",\"mrs\":" + std::to_string(u.mrs);
    out += ",\"pinned_bytes\":" + std::to_string(u.pinned_bytes);
    out += ",\"mtt_pages\":" + std::to_string(u.mtt_pages);
    out += ",\"iotlb_entries\":" + std::to_string(u.iotlb_entries);
    out += ",\"admitted\":" + std::to_string(admitted(tenant));
    out += ",\"shed\":" + std::to_string(shed(tenant));
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace stellar
