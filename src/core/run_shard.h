// Run-level sharding: whole independent simulation runs homed on shards.
//
// The fig benches sweep many mutually independent runs (algorithm x
// path-count points, tenant mixes, failure scenarios); each run builds its
// own Simulator + ClosFabric + engines, so the natural parallel unit is
// the *run*, not the packet. ShardedRunSet combines the two pieces built
// for that:
//
//   * sim/parallel.h RunSet — index-deterministic job placement across
//     worker threads (job i on worker i % threads, each worker in index
//     order);
//   * obs/run_capture.h RunCaptureSet — a private ObsHub per run,
//     installed thread-locally for the job's duration and merged into the
//     base hub in run-index order at the end.
//
// Jobs must write their results into index-addressed slots and the caller
// prints them after execute() returns, in index order — then stdout,
// BENCH JSON and traces are byte-identical for every --threads=N.
// Per-run capture is used even at threads=1, so the single-thread
// reference shares the exact emission semantics it is compared against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "check/check.h"
#include "obs/obs.h"
#include "obs/run_capture.h"
#include "sim/parallel.h"

namespace stellar {

class ShardedRunSet {
 public:
  /// Captures into the currently installed hub (if any); `threads` as in
  /// RunSet::execute. `expected_runs` must be the exact number of add()
  /// calls that will follow — per-run capture hubs are allocated up front.
  ShardedRunSet(std::uint32_t threads, std::size_t expected_runs)
      : threads_(threads == 0 ? 1 : threads),
        capture_(obs::hub(), expected_runs) {
    STELLAR_CHECK(expected_runs > 0,
                  "ShardedRunSet needs the run count up front (per-run "
                  "capture hubs are allocated before workers start)");
  }

  /// Queue run-job `index` (indices must be 0..expected_runs-1, each used
  /// once). The callable runs on a worker thread with the run's capture
  /// hub installed; anything it touches must be private to the run or
  /// internally synchronized (bench EngineMeter is).
  template <typename Fn>
  void add(Fn job) {
    const std::size_t index = next_index_++;
    runs_.add([this, index, job = std::move(job)]() mutable {
      obs::RunCaptureSet::Scope scope(capture_, index);
      job();
    });
  }

  /// Runs every job, then merges per-run observability into the base hub
  /// in run-index order. Single-use.
  void execute() {
    runs_.execute(threads_);
    capture_.merge_into_base();
  }

  std::uint32_t threads() const { return threads_; }

 private:
  std::uint32_t threads_;
  std::size_t next_index_ = 0;
  obs::RunCaptureSet capture_;
  RunSet runs_;
};

}  // namespace stellar
