// Dense serverless LLM inference — the deployment that broke the SR-IOV
// stack (§3.1, Problems 1-3) and that Stellar was built for.
//
// One GPU server, 120 tenant containers, each wanting a GDR-capable RDMA
// device. We first try the SR-IOV/VFIO route and watch it hit the VF and
// PCIe-LUT walls, then do the same with vStellar devices.
//
// Run: ./examples/serverless_inference
#include <cstdio>
#include <memory>
#include <vector>

#include "core/stellar.h"

using namespace stellar;

int main() {
  std::printf("== Dense serverless inference: 120 tenants on one server ==\n");

  // The problematic server model of §3.1(3): 4 switches, 4 RNICs, 8 GPUs,
  // and tiny per-switch LUTs that cap GDR registrations at 32 VFs/host.
  StellarHostConfig cfg;
  cfg.pcie.main_memory_bytes = 512_GiB;
  // 8 GDR slots per RNIC after the PF and two GPUs take theirs — the
  // server model of §3.1(3) that capped GDR-capable VFs at 32 per host.
  cfg.pcie.lut_capacity_per_switch = 11;
  StellarHost host(cfg);

  constexpr int kTenants = 120;

  // ---------------------------------------------------------------------------
  std::printf("\n-- Attempt 1: SR-IOV VFs --\n");
  SimTime vf_time = SimTime::zero();
  int vf_ok = 0, vf_gdr = 0;
  for (std::size_t r = 0; r < host.rnic_count(); ++r) {
    Rnic& rnic = host.rnic(r);
    // Each RNIC tries to host its share of tenants as VFs.
    const auto want = static_cast<std::uint32_t>(kTenants / host.rnic_count());
    auto t = rnic.set_num_vfs(std::min(want, rnic.config().max_vfs));
    if (!t.is_ok()) {
      std::printf("  rnic%zu: %s\n", r, t.status().to_string().c_str());
      continue;
    }
    vf_time += t.value();
    vf_ok += rnic.num_vfs();
    for (std::uint32_t i = 0; i < rnic.num_vfs(); ++i) {
      if (rnic.enable_vf_gdr(i).is_ok()) ++vf_gdr;
    }
    std::printf(
        "  rnic%zu: %u VFs in %s, memory overhead %s\n", r, rnic.num_vfs(),
        t.value().to_string().c_str(),
        format_bytes(rnic.vf_memory_bytes()).c_str());
  }
  std::printf("  => %d/%d tenants got a VF; only %d are GDR-capable\n",
              vf_ok, kTenants, vf_gdr);
  std::printf("     (each PCIe switch LUT: 11 slots minus RNIC PF + 2 GPUs ="
              " 8 VF slots; VFs beyond that lose GDR)\n");
  std::printf("     total VF provisioning time: %s\n",
              vf_time.to_string().c_str());

  // Roll back the VFs before the vStellar pass.
  for (std::size_t r = 0; r < host.rnic_count(); ++r) {
    (void)host.rnic(r).set_num_vfs(0);
  }

  // ---------------------------------------------------------------------------
  std::printf("\n-- Attempt 2: vStellar devices --\n");
  std::vector<std::unique_ptr<RundContainer>> tenants;
  SimTime create_time = SimTime::zero();
  int created = 0, gdr_capable = 0;
  for (int i = 0; i < kTenants; ++i) {
    tenants.push_back(std::make_unique<RundContainer>(
        100 + i, "tenant-" + std::to_string(i), 2_GiB));
    auto boot = host.boot(*tenants.back());
    if (!boot.is_ok()) {
      std::printf("  tenant %d boot failed: %s\n", i,
                  boot.status().to_string().c_str());
      break;
    }
    auto dev = host.create_vstellar_device(*tenants.back(),
                                           i % host.rnic_count());
    if (!dev.is_ok()) {
      std::printf("  tenant %d device failed: %s\n", i,
                  dev.status().to_string().c_str());
      break;
    }
    create_time += dev.value()->creation_time();
    ++created;
    // Every vStellar device can register GPU memory and do GDR: traffic
    // rides the PF's BDF, which is already in the LUT.
    auto mr = dev.value()->register_memory(
        Gva{0x1000}, 64_MiB, MemoryOwner::kGpuHbm, /*offset=*/i * 64_MiB,
        /*gpu=*/static_cast<std::size_t>(i % host.gpu_count()));
    if (mr.is_ok()) ++gdr_capable;
  }
  std::printf("  => %d/%d tenants got a vStellar device; %d GDR-capable\n",
              created, kTenants, gdr_capable);
  std::printf("     average device creation: %s; LUT usage unchanged\n",
              (create_time / (created ? created : 1)).to_string().c_str());

  // GDR sanity: a random tenant pushes 16 MiB to its GPU at line rate.
  auto probe = host.make_gdr_engine(GdrMode::kEmtt, 0);
  const GdrTransfer t = probe.transfer(IoVa{host.gpu_bar(0).base.value()},
                                       16_MiB);
  std::printf("     sample tenant GDR write: %.1f Gbps via eMTT\n", t.gbps);
  return 0;
}
