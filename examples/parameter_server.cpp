// Parameter-server style inference serving over the full verbs surface:
// workers fetch model shards with RDMA READ, stream requests with SEND /
// posted receives, and push results with RDMA WRITE — all sprayed over 128
// paths through the dual-plane fabric.
//
// Demonstrates the two-sided and one-sided verbs the vStellar device
// exposes to tenants beyond the WRITE-only collective path.
//
// Run: ./examples/parameter_server
#include <cstdio>
#include <vector>

#include "core/cluster.h"

using namespace stellar;

int main() {
  std::printf("== Parameter server over Stellar verbs ==\n\n");

  ClusterConfig cfg;
  cfg.fabric.segments = 2;
  cfg.fabric.hosts_per_segment = 5;
  StellarCluster cluster(cfg);

  const EndpointId server = cluster.endpoint(0, 0);
  constexpr int kWorkers = 8;
  constexpr std::uint64_t kShard = 64_MiB;
  constexpr std::uint64_t kRequest = 64_KiB;
  constexpr std::uint64_t kResult = 1_MiB;

  struct Worker {
    RdmaConnection* to_server = nullptr;
    bool shard_loaded = false;
    int results_pushed = 0;
  };
  std::vector<Worker> workers(kWorkers);

  // Connect every worker to the server (both endpoint engines come up).
  for (int w = 0; w < kWorkers; ++w) {
    const EndpointId ep =
        cluster.endpoint((w + 1) / 5, 1 + (w + 1) % 4);  // spread across hosts
    workers[w].to_server = cluster.connect(ep, server).value();
  }

  // Phase 1: every worker READs its model shard from the server.
  std::printf("[1] %d workers RDMA-READ a %s shard each from the server\n",
              kWorkers, format_bytes(kShard).c_str());
  const SimTime t0 = cluster.simulator().now();
  int shards_done = 0;
  for (int w = 0; w < kWorkers; ++w) {
    workers[w].to_server->post_read(kShard, [&, w] {
      workers[w].shard_loaded = true;
      ++shards_done;
    });
  }
  cluster.run();
  const SimTime load_time = cluster.simulator().now() - t0;
  std::printf("    all %d shards loaded in %s (%.1f Gbps aggregate)\n",
              shards_done, load_time.to_string().c_str(),
              kWorkers * static_cast<double>(kShard) * 8 / load_time.sec() / 1e9);

  // Phase 2: request/response — the server posts receives, workers SEND
  // requests, the server WRITEs results back... modelled from the worker
  // side: SEND a request, then WRITE the computed result.
  std::printf("[2] request/response: SEND %s requests; WRITE %s results\n",
              format_bytes(kRequest).c_str(), format_bytes(kResult).c_str());
  int requests_served = 0;
  auto& server_engine = cluster.fleet().at(server);
  for (int w = 0; w < kWorkers; ++w) {
    for (int r = 0; r < 4; ++r) {
      server_engine.post_recv(workers[w].to_server->id(),
                              [&](const RxMessage&) { ++requests_served; });
    }
  }
  for (int w = 0; w < kWorkers; ++w) {
    for (int r = 0; r < 4; ++r) {
      workers[w].to_server->post_send(kRequest, [&, w] {
        workers[w].to_server->post_write(kResult, [&, w] {
          ++workers[w].results_pushed;
        });
      });
    }
  }
  cluster.run();

  int total_results = 0;
  for (const Worker& w : workers) total_results += w.results_pushed;
  std::printf("    served %d requests, %d results written back\n",
              requests_served, total_results);

  std::printf(
      "\nVerbs exercised: READ (shard fetch, responder auto-streams on the\n"
      "reverse path), SEND + posted RECVs (requests), WRITE (results) —\n"
      "all over %u-path OBS spray with DPP reordering absorption.\n",
      cluster.config().transport.num_paths);
  return shards_done == kWorkers && requests_served == kWorkers * 4 &&
                 total_results == kWorkers * 4
             ? 0
             : 1;
}
