// Mixture-of-Experts expert parallelism over the Stellar fabric: the
// dispatch/combine all-to-alls of the paper's §9 discussion ("MoE
// introducing expert parallelism"), under both cluster placements, with
// single-path ECMP and 128-path OBS side by side.
//
// All-to-all is the hardest collective for a shared fabric: every rank
// talks to every other rank at once, so hash collisions hurt immediately.
//
// Run: ./examples/moe_expert_parallel
#include <cstdio>
#include <functional>

#include "collective/collectives.h"
#include "workload/placement.h"

using namespace stellar;

namespace {

double run(PlacementPolicy policy, MultipathAlgo algo, std::uint16_t paths) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 8;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 16;
  fc.fabric_link.bandwidth = Bandwidth::gbps(200);  // 1:1 ToR radix
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);

  // 16 experts, one per GPU; each iteration dispatches 32 MiB of tokens.
  auto ranks = place_job(fabric, 16, 0, policy);
  CollectiveConfig cfg;
  cfg.data_bytes = 32_MiB;
  cfg.transport.algo = algo;
  cfg.transport.num_paths = paths;
  AllToAll dispatch(fleet, ranks, cfg);

  double total = 0;
  int measured = 0;
  std::function<void()> chain = [&] {
    total += dispatch.algo_bandwidth_gbps();
    if (++measured < 3) dispatch.start(chain);
  };
  dispatch.start(chain);
  sim.run_until(SimTime::millis(100));
  return measured ? total / measured : 0;
}

}  // namespace

int main() {
  std::printf("== MoE expert-parallel all-to-all (16 experts, 32 MiB) ==\n\n");
  std::printf("%-12s%-22s%-22s\n", "placement", "CX7 single-path Gbps",
              "Stellar OBS/128 Gbps");
  for (auto policy :
       {PlacementPolicy::kReranked, PlacementPolicy::kRandomRanking}) {
    const double single = run(policy, MultipathAlgo::kSinglePath, 128);
    const double obs = run(policy, MultipathAlgo::kObs, 128);
    std::printf("%-12s%-22.1f%-22.1f  (%+.1f%%)\n",
                placement_policy_name(policy), single, obs,
                100.0 * (obs / single - 1.0));
  }
  std::printf(
      "\nNote the contrast with ring collectives (multipath_training):\n"
      "all-to-all decomposes into many small flows, giving plain ECMP\n"
      "enough entropy to spread load — so spraying roughly ties here.\n"
      "Elephant-flow rings are where spraying wins big. This matches the\n"
      "paper's §9 observation that today's regular, high-entropy-enough\n"
      "patterns keep simple OBS sufficient, with advanced multipath held\n"
      "in reserve for future traffic.\n");
  return 0;
}
