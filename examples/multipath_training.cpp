// Multipath training workload: a 32-rank cross-segment ring AllReduce on
// the dual-plane fabric, comparing classic single-path RDMA against
// Stellar's 128-path OBS spray — including a mid-run link failure.
//
// This is the §7 story end-to-end: spraying flattens ToR queues, and when
// a link dies, the 250 us RTO retransmits on another path so the collective
// barely notices.
//
// Run: ./examples/multipath_training
#include <cstdio>
#include <functional>

#include "collective/allreduce.h"

using namespace stellar;

namespace {

struct RunResult {
  double first_bw = 0;     // bus bandwidth before the failure
  double failover_bw = 0;  // bus bandwidth of the iteration during failure
  std::uint64_t retransmits = 0;
  double max_queue_kib = 0;
};

RunResult run(MultipathAlgo algo, std::uint16_t paths) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 16;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 16;
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);

  std::vector<EndpointId> ranks;
  for (std::uint32_t i = 0; i < 32; ++i) {
    ranks.push_back(fabric.endpoint(i % 2, i / 2, 0, 0));
  }
  AllReduceConfig cfg;
  cfg.data_bytes = 64_MiB;
  cfg.transport.algo = algo;
  cfg.transport.num_paths = paths;
  RingAllReduce ar(fleet, ranks, cfg);

  RunResult out;
  int iteration = 0;
  std::function<void()> chain = [&] {
    if (iteration == 0) out.first_bw = ar.bus_bandwidth_gbps();
    if (iteration == 1) {
      // A fiber goes dark between iterations 1 and 2.
      fabric.tor_uplink(0, 0, 0, /*agg=*/5).set_drop_probability(1.0);
    }
    if (iteration == 2) out.failover_bw = ar.bus_bandwidth_gbps();
    if (++iteration < 3) ar.start(chain);
  };
  ar.start(chain);
  sim.run_until(SimTime::millis(500));

  out.retransmits = ar.total_retransmits();
  for (NetLink* l : fabric.all_tor_uplinks()) {
    out.max_queue_kib =
        std::max(out.max_queue_kib, l->max_queue_bytes() / 1024.0);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("== 32-rank cross-segment AllReduce, with a link failure ==\n");
  std::printf("%-14s%-12s%-14s%-14s%-12s\n", "transport", "bus Gbps",
              "bus Gbps", "retransmits", "max queue");
  std::printf("%-14s%-12s%-14s%-14s%-12s\n", "", "(healthy)", "(1 link down)",
              "", "(KiB)");
  for (auto [algo, paths] :
       {std::pair{MultipathAlgo::kSinglePath, std::uint16_t{128}},
        std::pair{MultipathAlgo::kObs, std::uint16_t{4}},
        std::pair{MultipathAlgo::kObs, std::uint16_t{128}}}) {
    const RunResult r = run(algo, paths);
    char name[32];
    std::snprintf(name, sizeof(name), "%s/%u", multipath_algo_name(algo),
                  paths);
    std::printf("%-14s%-12.1f%-14.1f%-14llu%-12.1f\n", name, r.first_bw,
                r.failover_bw, static_cast<unsigned long long>(r.retransmits),
                r.max_queue_kib);
  }
  std::printf(
      "\nExpected: OBS keeps the collective moving through the failure —\n"
      "the dead link carries 1/16th of the spray and every timed-out packet\n"
      "is re-sent on another path after the 250us RTO — while single-path\n"
      "connections hashed onto the dead link stall the whole ring (0 Gbps\n"
      "until the control plane would reroute).\n");
  return 0;
}
