// Quickstart: the 60-second tour of the Stellar API.
//
//  1. Build a GPU host, boot a RunD secure container (fast, thanks PVDMA).
//  2. Create a vStellar device in seconds — no SR-IOV reset, no LUT slot.
//  3. Register GPU memory (eMTT) and do a GDR write at ~400 Gbps.
//  4. Spin up a two-segment cluster and push an RDMA WRITE through the
//     multipath transport (128-path OBS spray).
//
// Run: ./examples/quickstart
#include <cstdio>

#include "core/cluster.h"
#include "core/stellar.h"

using namespace stellar;

int main() {
  std::printf("== Stellar quickstart ==\n\n");

  // --- 1. Host + secure container -------------------------------------------
  StellarHostConfig host_cfg;
  host_cfg.pcie.main_memory_bytes = 256_GiB;
  StellarHost host(host_cfg);

  RundContainer container(/*id=*/1, "tenant-a", /*memory=*/64_GiB);
  auto boot = host.boot(container);
  if (!boot.is_ok()) {
    std::printf("boot failed: %s\n", boot.status().to_string().c_str());
    return 1;
  }
  std::printf("booted 64 GiB secure container in %s (pinning: %s)\n",
              boot.value().total.to_string().c_str(),
              boot.value().pin_time.to_string().c_str());

  // --- 2. vStellar device -----------------------------------------------------
  auto dev = host.create_vstellar_device(container, /*rnic=*/0);
  if (!dev.is_ok()) {
    std::printf("device creation failed: %s\n",
                dev.status().to_string().c_str());
    return 1;
  }
  std::printf("created vStellar device #%u in %s (doorbell in shm: %s)\n",
              dev.value()->id(),
              dev.value()->creation_time().to_string().c_str(),
              dev.value()->doorbell_mapping().in_shm ? "yes" : "no");

  // --- 3. GDR through the eMTT -------------------------------------------------
  auto mr = dev.value()->register_memory(Gva{0x10000}, 256_MiB,
                                         MemoryOwner::kGpuHbm,
                                         /*gpu_offset=*/0, /*gpu=*/0);
  if (!mr.is_ok()) {
    std::printf("register_memory failed: %s\n",
                mr.status().to_string().c_str());
    return 1;
  }
  auto transfer = dev.value()->gdr_write(mr.value().key, Gva{0x10000}, 64_MiB);
  std::printf("GDR write 64 MiB: %.1f Gbps, %llu ATC misses (eMTT bypasses "
              "the ATC)\n",
              transfer.value().gbps,
              static_cast<unsigned long long>(transfer.value().atc_misses));

  // --- 4. Multipath RDMA across the fabric ------------------------------------
  ClusterConfig cluster_cfg;
  cluster_cfg.fabric.segments = 2;
  cluster_cfg.fabric.hosts_per_segment = 4;
  StellarCluster cluster(cluster_cfg);

  auto conn = cluster.connect(cluster.endpoint(0, 0), cluster.endpoint(1, 0));
  bool done = false;
  conn.value()->post_write(64_MiB, [&] { done = true; });
  cluster.run();

  std::printf("RDMA WRITE 64 MiB across segments: %s in %s "
              "(%.1f Gbps, %llu packets over %u paths)\n",
              done ? "completed" : "FAILED",
              cluster.simulator().now().to_string().c_str(),
              64.0 * 8 * 1024 * 1024 * 1024 /
                  cluster.simulator().now().sec() / 1e9 / 1024,
              static_cast<unsigned long long>(conn.value()->packets_sent()),
              conn.value()->selector().num_paths());
  std::printf("\nquickstart OK\n");
  return 0;
}
