// Narrated replay of Figure 5: how on-demand PVDMA pinning can leave a
// stale doorbell mapping in the IOMMU and send GPU DMA into the RNIC's
// registers — and how mapping the vDB into the virtio shm region makes the
// hazard structurally impossible.
//
// Run: ./examples/pvdma_conflict
#include <cstdio>

#include "pcie/host_pcie.h"
#include "virt/container.h"
#include "virt/hypervisor.h"

using namespace stellar;

namespace {

void run(bool vdb_in_shm) {
  std::printf("\n==== vDB mapped %s ====\n",
              vdb_in_shm ? "into the virtio shm I/O space (the fix)"
                         : "into guest RAM (pre-fix layout)");

  HostPcieConfig pc;
  pc.main_memory_bytes = 8_GiB;
  HostPcie pcie(pc);
  const std::size_t sw = pcie.add_switch("sw0");
  auto rnic_bar = pcie.attach_device(Bdf{0x10, 0, 0}, sw, 1_MiB);

  HypervisorConfig hc;
  hc.use_pvdma = true;
  hc.vdb_in_shm = vdb_in_shm;
  Hypervisor hyp(pcie, hc);
  RundContainer container(1, "tenant", 2_GiB);
  (void)hyp.boot_container(container);
  Pvdma& pvdma = hyp.pvdma(1);

  std::printf("[1] RDMA program starts; hypervisor maps the vDB\n");
  auto vdb = hyp.map_vdb(container, rnic_bar.value().base);
  if (vdb.value().in_shm) {
    std::printf("    vDB at shm offset 0x%llx (outside guest RAM)\n",
                static_cast<unsigned long long>(vdb.value().shm.value()));
  } else {
    std::printf("    vDB at GPA 0x%llx (a 4 KiB hole punched into RAM)\n",
                static_cast<unsigned long long>(vdb.value().gpa.value()));
  }

  std::printf("[2] GPU driver allocates its command queue adjacent to it\n");
  auto cmdq = container.alloc(16 * kPage4K, kPage4K);
  std::printf("    Cmd Q at GPA 0x%llx\n",
              static_cast<unsigned long long>(cmdq.value().value()));

  std::printf("[3] GPU DMAs the queue; PVDMA pins the covering 2 MiB block\n");
  (void)pvdma.prepare_dma(cmdq.value(), 16 * kPage4K);
  std::printf("    blocks registered: %llu, pinned: %s\n",
              static_cast<unsigned long long>(pvdma.blocks_registered()),
              format_bytes(pvdma.pinned_bytes()).c_str());

  std::printf("[4] RDMA program exits; vDB mapping torn down, GPA reusable\n");
  (void)hyp.unmap_vdb(container, vdb.value());

  std::printf("[5] Guest OS reuses the old vDB GPA for a new command queue\n");
  const Gpa reused = vdb.value().in_shm
                         ? container.alloc(kPage4K).value()
                         : vdb.value().gpa;
  (void)pvdma.prepare_dma(reused, kPage4K);

  std::printf("    GPU DMA to Cmd Q' at GPA 0x%llx -> ",
              static_cast<unsigned long long>(reused.value()));
  const auto access = pvdma.translate_for_device(reused);
  switch (access.kind) {
    case Pvdma::AccessKind::kRam:
      std::printf("RAM at HPA 0x%llx  [OK]\n",
                  static_cast<unsigned long long>(access.hpa.value()));
      break;
    case Pvdma::AccessKind::kStaleDeviceMapping:
      std::printf("STALE mapping -> RNIC doorbell at HPA 0x%llx\n",
                  static_cast<unsigned long long>(access.hpa.value()));
      std::printf("    !!! the GPU just wrote into the NIC's registers — "
                  "invalid commands,\n        unrecoverable system error "
                  "(the Figure-5 production incident)\n");
      break;
    case Pvdma::AccessKind::kFault:
      std::printf("IOMMU fault\n");
      break;
  }
}

}  // namespace

int main() {
  std::printf("== PVDMA / direct-mapped doorbell conflict (Figure 5) ==\n");
  run(/*vdb_in_shm=*/false);
  run(/*vdb_in_shm=*/true);
  std::printf(
      "\nThe shm region is a separate I/O address space: PVDMA's 2 MiB\n"
      "blocks cover only guest RAM, so no doorbell can ever be swallowed.\n");
  return 0;
}
