// Table 1: parallel strategy and communication ratio of typical models.
//
// Reproduces the paper's table from the analytic 3D-parallelism model with
// the published parallel parameters (TP, PP, DP, mb, ga, gb). Paper values
// for comparison: Llama-33B TP 4.57% / DP 20.95% / PP 2.65%;
// GPT-200B TP 10.88% / DP 1.49% / PP 20.14%; Zero1 Llama-2B DP 17.3%;
// Zero3 Llama-13B DP 10.5%.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "workload/models.h"

using namespace stellar;
using namespace stellar::bench;

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "table1");
  print_header(
      "Table 1 - parallel strategy and communication ratio\n"
      "(computed from the analytic model; paper-measured values in "
      "brackets)");
  print_row({"model", "params(TP,PP,DP,ga,gb)", "TP com.", "DP com.",
             "PP com."},
            24);

  struct PaperRow {
    double tp, dp, pp;
  };
  const PaperRow paper[] = {{4.57, 20.95, 2.65},
                            {10.88, 1.49, 20.14},
                            {0, 17.3, 0},
                            {0, 10.5, 0}};

  // Effective per-GPU scale-out bandwidth for production-size rings that
  // cross segments and share the aggregation layer (NIC line rate is 400G,
  // sustained ring goodput is far lower).
  const double bw_gbps = 40.0;
  const auto jobs = table1_jobs();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const TrainJob& job = jobs[i];
    const CommRatios r = comm_ratios(job, bw_gbps);
    char params[64];
    std::snprintf(params, sizeof(params), "%u,%u,%u,%u,%u", job.parallel.tp,
                  job.parallel.pp, job.parallel.dp, job.parallel.grad_accum,
                  job.parallel.global_batch);
    auto cell = [&](double model_pct, double paper_pct) {
      if (paper_pct == 0 && model_pct < 0.0001) return std::string("N/A");
      return fmt(100.0 * model_pct, 2) + "% [" + fmt(paper_pct, 2) + "%]";
    };
    print_row({job.model.name, params, cell(r.tp, paper[i].tp),
               cell(r.dp, paper[i].dp), cell(r.pp, paper[i].pp)},
              24);
  }
  std::printf(
      "\nShape checks (paper): DP dominates Llama-33B; PP dominates\n"
      "GPT-200B with tiny DP (grad-accum 117 amortizes the all-reduce);\n"
      "DeepSpeed jobs are DP-only with 10-20%% communication share.\n");
  return 0;
}
