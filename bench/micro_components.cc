// google-benchmark microbenchmarks for the hot simulation components:
// event queue throughput, LRU caches, range-map translation, MTT lookup,
// path-selector picks and end-to-end simulated packet throughput. These
// bound how much simulated traffic the figure benches can afford.
#include <benchmark/benchmark.h>

#include "collective/fleet.h"
#include "memory/lru.h"
#include "memory/range_map.h"
#include "rnic/mtt.h"
#include "rnic/multipath.h"
#include "sim/simulator.h"

namespace stellar {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_at(SimTime::nanos((i * 7919) % 100000), [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_LruCacheChurn(benchmark::State& state) {
  LruCache<std::uint64_t, std::uint64_t> cache(
      static_cast<std::size_t>(state.range(0)));
  std::uint64_t key = 0;
  for (auto _ : state) {
    cache.put(key, key);
    benchmark::DoNotOptimize(cache.get(key / 2));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheChurn)->Arg(1024)->Arg(65536);

void BM_RangeMapTranslate(benchmark::State& state) {
  RangeMap<Gva, Hpa> map;
  const int ranges = static_cast<int>(state.range(0));
  for (int i = 0; i < ranges; ++i) {
    (void)map.map(Gva{static_cast<std::uint64_t>(i) * 2 * kPage2M},
                  Hpa{static_cast<std::uint64_t>(i) * kPage2M}, kPage2M);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        map.translate(Gva{(addr % ranges) * 2 * kPage2M + 512}));
    ++addr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RangeMapTranslate)->Arg(16)->Arg(1024);

void BM_MttLookup(benchmark::State& state) {
  Mtt mtt(1 << 20);
  for (MrKey k = 1; k <= 64; ++k) {
    (void)mtt.register_region(k, Gva{k * 16_MiB}, 1_MiB, k * 1_MiB,
                              MemoryOwner::kGpuHbm, true);
  }
  MrKey key = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mtt.lookup(key, Gva{key * 16_MiB + 4096}));
    key = key % 64 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MttLookup);

void BM_PathSelectorPick(benchmark::State& state) {
  auto algo = static_cast<MultipathAlgo>(state.range(0));
  auto sel = PathSelector::create(algo, 128, 42);
  for (auto _ : state) {
    const std::uint16_t p = sel->pick();
    benchmark::DoNotOptimize(p);
    sel->on_ack(p, SimTime::micros(10), false);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(multipath_algo_name(algo));
}
BENCHMARK(BM_PathSelectorPick)
    ->Arg(static_cast<int>(MultipathAlgo::kObs))
    ->Arg(static_cast<int>(MultipathAlgo::kRoundRobin))
    ->Arg(static_cast<int>(MultipathAlgo::kBestRtt))
    ->Arg(static_cast<int>(MultipathAlgo::kDwrr));

void BM_EndToEndPacketSim(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    FabricConfig fc;
    fc.segments = 2;
    fc.hosts_per_segment = 2;
    fc.rails = 1;
    fc.planes = 1;
    fc.aggs_per_plane = 8;
    ClosFabric fabric(sim, fc);
    EngineFleet fleet(sim, fabric);
    auto conn = fleet.connect(fabric.endpoint(0, 0, 0, 0),
                              fabric.endpoint(1, 0, 0, 0), TransportConfig{});
    conn.value()->post_write(4_MiB);
    sim.run();
    benchmark::DoNotOptimize(sim.executed_events());
  }
  // 4 MiB / 4 KiB = 1024 data packets (plus ACKs) per iteration.
  state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_EndToEndPacketSim);

}  // namespace
}  // namespace stellar

BENCHMARK_MAIN();
