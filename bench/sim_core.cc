// Event-engine core microbenchmark.
//
// Exercises the Simulator hot path directly — no network model in the way —
// against a faithful in-bench copy of the pre-wheel scheduler (binary-heap
// priority_queue + tombstone/pending unordered_sets + std::function
// actions), so the wheel-vs-heap speedup is measured inside one binary on
// identical workloads:
//
//   schedule_fire   self-rescheduling hold model, short deltas (the mix the
//                   >=3x acceptance bar is measured on)
//   cancel_heavy    2 of every 3 scheduled events cancelled before firing
//   far_future      ~5% of deltas beyond the wheel horizon (overflow heap)
//   spray_3tier     real 3-tier Clos permutation run (wheel engine only)
//
// Emits BENCH_sim_core.json with events, wall seconds, and events/sec per
// (mix, scheduler) row plus the wheel/heap speedup. An optional argv[1]
// scales iteration counts (tools/ci_checks.sh passes 0.05 as a smoke run);
// the >=3x bar is only enforced at full scale.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_set>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "bench/bench_util.h"
#include "check/check.h"
#include "collective/fleet.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

// -- Legacy scheduler (reference) ---------------------------------------------
//
// Byte-for-byte the algorithm the Simulator used before the timing wheel:
// one heap entry per event carrying a std::function, O(log n) push/pop,
// and two hash sets (pending ids, cancel tombstones) touched per event.

class LegacyScheduler {
 public:
  using Action = std::function<void()>;
  struct Handle {
    std::uint64_t id = 0;
  };

  SimTime now() const { return now_; }

  Handle schedule_at(SimTime at, Action action) {
    const std::uint64_t id = next_id_++;
    queue_.push(Event{at, next_seq_++, id, std::move(action)});
    pending_ids_.insert(id);
    ++live_events_;
    return Handle{id};
  }
  Handle schedule_after(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  bool cancel(Handle handle) {
    auto it = pending_ids_.find(handle.id);
    if (it == pending_ids_.end()) return false;
    pending_ids_.erase(it);
    cancelled_.insert(handle.id);
    --live_events_;
    return true;
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
      Event& top = const_cast<Event&>(queue_.top());
      if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        queue_.pop();
        continue;
      }
      Event ev = std::move(top);
      queue_.pop();
      pending_ids_.erase(ev.id);
      now_ = ev.at;
      --live_events_;
      ++executed_;
      ++n;
      ev.action();
    }
    return n;
  }

  std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    Action action;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_ids_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t live_events_ = 0;
  std::uint64_t executed_ = 0;
};

// -- Synthetic mixes ----------------------------------------------------------

constexpr std::uint64_t lcg(std::uint64_t x) {
  return x * 6364136223846793005ull + 1442695040888963407ull;
}

enum class Mix { kScheduleFire, kCancelHeavy, kFarFuture };

/// Per-mix delta distribution. schedule_fire/cancel_heavy stay within the
/// level-0 wheel (1 ns .. ~32 us, the link/transport event scale);
/// far_future sends ~15% of deltas to the outer wheel and ~5% beyond the
/// ~137 ms horizon into the overflow heap.
SimTime delta_for(Mix mix, std::uint64_t r) {
  if (mix == Mix::kFarFuture) {
    const std::uint64_t pick = (r >> 32) % 100;
    if (pick >= 95) return SimTime::millis(200 + (r >> 40) % 800);  // heap
    if (pick >= 80) return SimTime::micros(100 + (r >> 40) % 900);  // L1
  }
  return SimTime::nanos(1 + (r >> 33) % 32000);  // L0
}

/// One self-rescheduling actor: fires `rounds` times, each firing drawing
/// the next delta from a private LCG stream. cancel_heavy additionally
/// schedules two victim events per firing and cancels both immediately
/// (2/3 of all scheduled events die before running). The 8-byte capture
/// keeps the hot closure inside InlineAction's buffer.
template <class Engine>
struct Actor {
  Engine* eng = nullptr;
  std::uint64_t rng = 0;
  std::uint32_t rounds_left = 0;
  Mix mix = Mix::kScheduleFire;
  std::uint64_t victims_fired = 0;  // stays 0: victims die before firing

  void fire() {
    if (rounds_left == 0) return;
    --rounds_left;
    rng = lcg(rng);
    if (mix == Mix::kCancelHeavy) {
      Actor* self = this;
      auto v1 = eng->schedule_after(delta_for(mix, lcg(rng ^ 1)),
                                    [self] { ++self->victims_fired; });
      auto v2 = eng->schedule_after(delta_for(mix, lcg(rng ^ 2)),
                                    [self] { ++self->victims_fired; });
      eng->cancel(v1);
      eng->cancel(v2);
    }
    Actor* self = this;
    eng->schedule_after(delta_for(mix, rng), [self] { self->fire(); });
  }
};

struct MixResult {
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  std::int64_t final_ps = 0;  // cross-engine determinism check
};

template <class Engine>
MixResult run_mix(Mix mix, std::size_t actors, std::uint32_t rounds) {
  Engine eng;
  std::vector<Actor<Engine>> pool(actors);
  // stellar-lint: allow(wall-clock) host-side wall timing of the run
  // itself (events/sec); never feeds simulation state.
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < actors; ++i) {
    pool[i] = {&eng, lcg(i + 1), rounds, mix, 0};
    Actor<Engine>* self = &pool[i];
    eng.schedule_after(delta_for(mix, pool[i].rng), [self] { self->fire(); });
  }
  eng.run();
  // stellar-lint: allow(wall-clock) host-side wall timing (see t0).
  const auto t1 = std::chrono::steady_clock::now();
  MixResult out;
  out.events = eng.executed_events();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.events_per_sec =
      out.wall_s > 0 ? static_cast<double>(out.events) / out.wall_s : 0;
  out.final_ps = eng.now().ps();
  if constexpr (std::is_same_v<Engine, Simulator>) engine_meter().add(eng);
  for (const auto& a : pool) {
    STELLAR_CHECK(a.victims_fired == 0 && a.rounds_left == 0,
                  "sim_core actor finished dirty (victims=%llu rounds=%u)",
                  static_cast<unsigned long long>(a.victims_fired),
                  a.rounds_left);
  }
  return out;
}

/// Real-workload leg: permutation traffic across a small 3-tier Clos
/// (ToR -> agg -> plane), 16 spray paths per connection — the event
/// pattern of the fig09/fig15 benches, measured as raw engine throughput.
MixResult run_spray_3tier(double scale) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 4;
  fc.hosts_per_segment = 2;
  fc.rails = 1;
  fc.planes = 2;
  fc.aggs_per_plane = 4;
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);

  TransportConfig t;
  t.algo = MultipathAlgo::kObs;
  t.num_paths = 16;

  // stellar-lint: allow(wall-clock) host-side wall timing of the run
  // itself (events/sec); never feeds simulation state.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RdmaConnection*> conns;
  for (std::uint16_t s = 0; s < fc.segments; ++s) {
    for (std::uint16_t h = 0; h < fc.hosts_per_segment; ++h) {
      const EndpointId src = fabric.endpoint(s, h, 0, 0);
      const EndpointId dst =
          fabric.endpoint((s + 1) % fc.segments, h, 0, 0);
      conns.push_back(fleet.connect(src, dst, t).value());
    }
  }
  for (auto* c : conns) {
    auto repost = std::make_shared<std::function<void()>>();
    *repost = [c, repost] { c->post_write(256_KiB, *repost); };
    c->post_write(256_KiB, *repost);
  }
  sim.run_until(SimTime::micros(
      static_cast<std::int64_t>(2000 * scale < 50 ? 50 : 2000 * scale)));
  // stellar-lint: allow(wall-clock) host-side wall timing (see t0).
  const auto t1 = std::chrono::steady_clock::now();

  MixResult out;
  out.events = sim.executed_events();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.events_per_sec =
      out.wall_s > 0 ? static_cast<double>(out.events) / out.wall_s : 0;
  out.final_ps = sim.now().ps();
  engine_meter().add(sim);
  return out;
}

// -- Parallel engine scaling (sharded conservative PDES) ----------------------
//
// The schedule_fire hold model homed on the 8 shards of a ShardedEngine:
// 8192 actors per shard keep the 65536-pending working set of the
// single-threaded mix, and every ~16th firing hands an event to the next
// shard at >= lookahead — enough cross-shard traffic to exercise the
// conservative windows without serializing on them. The per-shard XOR
// accumulators are a pure function of the workload, so comparing their
// fold across thread counts is the bench's own determinism check.

struct PdesActor {
  ShardedEngine* eng = nullptr;
  std::uint64_t* accs = nullptr;  // per-shard accumulators (shard-private)
  std::uint32_t shard = 0;
  std::uint32_t shards = 0;
  std::uint64_t rng = 0;
  std::uint32_t rounds_left = 0;
  std::int64_t lookahead_ps = 0;

  void fire() {
    accs[shard] ^= lcg(rng + rounds_left);
    if (rounds_left == 0) return;
    --rounds_left;
    rng = lcg(rng);
    Simulator& sim = eng->shard(shard);
    if ((rng >> 20) % 16 == 0) {
      const std::uint32_t to = (shard + 1) % shards;
      const std::uint64_t tag = rng;
      std::uint64_t* dst = &accs[to];
      eng->post(shard, to,
                sim.now() + SimTime::picos(lookahead_ps) +
                    SimTime::nanos((rng >> 8) % 400),
                [dst, tag] { *dst ^= tag; });
    }
    PdesActor* self = this;
    sim.schedule_after(SimTime::nanos(1 + (rng >> 33) % 32000),
                      [self] { self->fire(); });
  }
};

struct ShardedMixResult {
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_sec = 0;
  std::uint64_t hash = 0;  // workload fingerprint; thread-count invariant
};

ShardedMixResult run_pdes_scaling(std::uint32_t shards, std::uint32_t threads,
                                  std::size_t actors_total,
                                  std::uint32_t rounds) {
  PdesConfig cfg;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.lookahead = SimTime::nanos(600);
  ShardedEngine eng(cfg);
  std::vector<std::uint64_t> accs(shards, 0);
  std::vector<PdesActor> pool(actors_total);
  for (std::size_t i = 0; i < actors_total; ++i) {
    const std::uint32_t s = static_cast<std::uint32_t>(i % shards);
    pool[i] = {&eng,  accs.data(), s, shards, lcg(i + 0x5eed),
               rounds, cfg.lookahead.ps()};
    PdesActor* self = &pool[i];
    eng.shard(s).schedule_at(SimTime::nanos(1 + (i / shards) % 4096),
                             [self] { self->fire(); });
  }
  // stellar-lint: allow(wall-clock) host-side wall timing of the run
  // itself (events/sec); never feeds simulation state.
  const auto t0 = std::chrono::steady_clock::now();
  eng.run_until(SimTime::millis(40));
  // stellar-lint: allow(wall-clock) host-side wall timing (see t0).
  const auto t1 = std::chrono::steady_clock::now();

  ShardedMixResult out;
  out.events = eng.executed_events();
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.events_per_sec =
      out.wall_s > 0 ? static_cast<double>(out.events) / out.wall_s : 0;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint32_t s = 0; s < shards; ++s) {
    h = lcg(h ^ accs[s]);
    h = lcg(h ^ eng.shard_executed(s));
  }
  out.hash = h;
  const ShardedEngine::EngineStats st = eng.stats();
  STELLAR_CHECK(st.in_flight == 0 && st.posted == st.drained,
                "handoff leak: posted=%llu drained=%llu in_flight=%llu",
                static_cast<unsigned long long>(st.posted),
                static_cast<unsigned long long>(st.drained),
                static_cast<unsigned long long>(st.in_flight));
  engine_meter().add(eng);
  return out;
}

// CPUs actually available to this process. hardware_concurrency() reports
// host logical CPUs even under a container CPU quota or a restricted
// affinity mask (shared CI runners), which would arm the 4-thread scaling
// bar on machines that cannot run 4 threads — so take the minimum of the
// affinity mask and the cgroup (v2 then v1) quota as well.
unsigned effective_cpus() {
  unsigned n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
#if defined(__linux__)
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const unsigned affinity = static_cast<unsigned>(CPU_COUNT(&mask));
    if (affinity > 0 && affinity < n) n = affinity;
  }
  long long quota = 0, period = 0;
  bool have_quota = false;
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r")) {
    // cgroup v2: "<quota> <period>", or "max <period>" when unlimited
    // (which %lld rejects, leaving have_quota false).
    have_quota = std::fscanf(f, "%lld %lld", &quota, &period) == 2;
    std::fclose(f);
  } else if (std::FILE* q =
                 std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", "r")) {
    // cgroup v1: quota of -1 means unlimited.
    have_quota = std::fscanf(q, "%lld", &quota) == 1;
    std::fclose(q);
    if (std::FILE* p =
            std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_period_us", "r")) {
      have_quota = have_quota && std::fscanf(p, "%lld", &period) == 1;
      std::fclose(p);
    } else {
      have_quota = false;
    }
  }
  if (have_quota && quota > 0 && period > 0) {
    const long long budget = quota / period;
    const unsigned eff = budget < 1 ? 1u : static_cast<unsigned>(budget);
    if (eff < n) n = eff;
  }
#endif
  return n;
}

const char* mix_name(Mix mix) {
  switch (mix) {
    case Mix::kScheduleFire: return "schedule_fire";
    case Mix::kCancelHeavy: return "cancel_heavy";
    case Mix::kFarFuture: return "far_future";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
  engine_meter();
  print_header(
      "sim_core - event-engine hot path: timing wheel vs legacy binary heap\n"
      "mixes: self-rescheduling hold model; >50% cancels; overflow deltas;\n"
      "plus a real 3-tier Clos spray run (wheel engine only)");
  print_row({"mix", "scheduler", "events", "wall s", "M events/s", "speedup"});

  JsonResult json("sim_core");
  // 64k self-rescheduling actors = 64k concurrent pending events, the
  // pending-set size of a production-scale fabric sim (fig15/16 training
  // runs). This is where the engines diverge hardest: the wheel's working
  // set stays flat while the old heap's sift paths and tombstone/pending
  // hash sets fall out of cache (2.0x at 4k pending -> ~5x at 64k).
  const std::size_t actors = 65536;
  const auto rounds = [&](std::uint32_t full) {
    const double r = full * scale;
    return static_cast<std::uint32_t>(r < 4 ? 4 : r);
  };

  double schedule_fire_speedup = 0;
  double schedule_fire_wheel_eps = 0;
  const struct {
    Mix mix;
    std::uint32_t full_rounds;
  } mixes[] = {
      {Mix::kScheduleFire, 62},
      {Mix::kCancelHeavy, 24},
      {Mix::kFarFuture, 37},
  };
  for (const auto& m : mixes) {
    const std::uint32_t r = rounds(m.full_rounds);
    const MixResult wheel = run_mix<Simulator>(m.mix, actors, r);
    const MixResult heap = run_mix<LegacyScheduler>(m.mix, actors, r);
    STELLAR_CHECK(wheel.events == heap.events &&
                      wheel.final_ps == heap.final_ps,
                  "engines diverged on %s: %llu ev @ %lld ps vs %llu ev @ "
                  "%lld ps",
                  mix_name(m.mix),
                  static_cast<unsigned long long>(wheel.events),
                  static_cast<long long>(wheel.final_ps),
                  static_cast<unsigned long long>(heap.events),
                  static_cast<long long>(heap.final_ps));
    const double speedup = heap.events_per_sec > 0
                               ? wheel.events_per_sec / heap.events_per_sec
                               : 0;
    if (m.mix == Mix::kScheduleFire) {
      schedule_fire_speedup = speedup;
      schedule_fire_wheel_eps = wheel.events_per_sec;
    }
    print_row({mix_name(m.mix), "wheel", std::to_string(wheel.events),
               fmt(wheel.wall_s, 3), fmt(wheel.events_per_sec / 1e6, 2),
               fmt(speedup, 2) + "x"});
    print_row({"", "legacy_heap", std::to_string(heap.events),
               fmt(heap.wall_s, 3), fmt(heap.events_per_sec / 1e6, 2), "-"});
    json.add_row({{"mix", jstr(mix_name(m.mix))},
                  {"scheduler", jstr("wheel")},
                  {"events", jint(static_cast<long long>(wheel.events))},
                  {"wall_s", jnum(wheel.wall_s, 4)},
                  {"events_per_sec", jnum(wheel.events_per_sec, 0)},
                  {"speedup_vs_heap", jnum(speedup, 2)}});
    json.add_row({{"mix", jstr(mix_name(m.mix))},
                  {"scheduler", jstr("legacy_heap")},
                  {"events", jint(static_cast<long long>(heap.events))},
                  {"wall_s", jnum(heap.wall_s, 4)},
                  {"events_per_sec", jnum(heap.events_per_sec, 0)}});
  }

  // -- Multi-thread scaling: sharded conservative PDES over 8 shards ------
  // Events/s is aggregate across shards; merge_overhead_pct (threads=1 row)
  // is the cost of the PDES machinery itself — sharded engine at one
  // thread vs the plain wheel on the same schedule_fire working set.
  std::printf("\n--- parallel engine: 8 shards, 65536 pending, "
              "--threads sweep ---\n");
  print_row({"threads", "events", "wall s", "M events/s", "speedup",
             "overhead"});
  const std::uint32_t pdes_rounds = rounds(30);
  const unsigned cpus = effective_cpus();
  double pdes_eps1 = 0, pdes_eps4 = 0;
  std::uint64_t pdes_hash_ref = 0;
  for (std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const ShardedMixResult r =
        run_pdes_scaling(8, threads, actors, pdes_rounds);
    if (threads == 1) {
      pdes_eps1 = r.events_per_sec;
      pdes_hash_ref = r.hash;
    }
    STELLAR_CHECK(r.hash == pdes_hash_ref,
                  "parallel engine diverged at %u threads "
                  "(hash %llx vs reference %llx)",
                  threads, static_cast<unsigned long long>(r.hash),
                  static_cast<unsigned long long>(pdes_hash_ref));
    if (threads == 4) pdes_eps4 = r.events_per_sec;
    const double speedup = pdes_eps1 > 0 ? r.events_per_sec / pdes_eps1 : 0;
    const double overhead_pct =
        threads == 1 && schedule_fire_wheel_eps > 0
            ? (1.0 - r.events_per_sec / schedule_fire_wheel_eps) * 100.0
            : 0;
    print_row({std::to_string(threads), std::to_string(r.events),
               fmt(r.wall_s, 3), fmt(r.events_per_sec / 1e6, 2),
               fmt(speedup, 2) + "x",
               threads == 1 ? fmt(overhead_pct, 1) + "%" : "-"});
    JsonResult::Row row = {
        {"mix", jstr("pdes_scaling")},
        {"scheduler", jstr("sharded_wheel")},
        {"threads", jint(threads)},
        {"shards", jint(8)},
        {"events", jint(static_cast<long long>(r.events))},
        {"wall_s", jnum(r.wall_s, 4)},
        {"events_per_sec", jnum(r.events_per_sec, 0)},
        {"speedup_vs_1thread", jnum(speedup, 2)}};
    if (threads == 1) {
      row.push_back({"merge_overhead_pct", jnum(overhead_pct, 1)});
    }
    json.add_row(std::move(row));
  }

  const MixResult spray = run_spray_3tier(scale);
  print_row({"spray_3tier", "wheel", std::to_string(spray.events),
             fmt(spray.wall_s, 3), fmt(spray.events_per_sec / 1e6, 2), "-"});
  json.add_row({{"mix", jstr("spray_3tier")},
                {"scheduler", jstr("wheel")},
                {"events", jint(static_cast<long long>(spray.events))},
                {"wall_s", jnum(spray.wall_s, 4)},
                {"events_per_sec", jnum(spray.events_per_sec, 0)}});

  json.write();
  engine_meter().report();

  if (scale >= 1.0 && schedule_fire_speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: schedule_fire wheel speedup %.2fx < 3.0x bar\n",
                 schedule_fire_speedup);
    return 1;
  }
  if (scale < 1.0 && schedule_fire_speedup < 3.0) {
    std::fprintf(stderr,
                 "warning: smoke-scale speedup %.2fx below 3.0x bar "
                 "(not enforced at scale %.2f)\n",
                 schedule_fire_speedup, scale);
  }

  // Parallel-engine bar: >=2x aggregate throughput at 4 threads on the
  // 65536-pending mix. Only meaningful with real cores underneath — with
  // fewer than 4 effective CPUs (affinity mask and cgroup quota included,
  // see effective_cpus()) the sweep still runs (and still must be
  // deterministic, checked above), but the bar is reported rather than
  // enforced. STELLAR_PERF_ENFORCE=1 forces enforcement on dedicated perf
  // runners; =0 demotes the bar to a warning everywhere.
  const double pdes_scaling = pdes_eps1 > 0 ? pdes_eps4 / pdes_eps1 : 0;
  const char* enforce_env = std::getenv("STELLAR_PERF_ENFORCE");
  const bool enforce_bar =
      enforce_env ? enforce_env[0] == '1' : cpus >= 4;
  if (!enforce_bar) {
    std::fprintf(stderr,
                 "note: 4-thread scaling %.2fx not enforced "
                 "(effective cpus=%u%s)\n",
                 pdes_scaling, cpus,
                 enforce_env ? ", STELLAR_PERF_ENFORCE=0" : " < 4");
  } else if (scale >= 1.0 && pdes_scaling < 2.0) {
    std::fprintf(stderr,
                 "FAIL: parallel engine 4-thread scaling %.2fx < 2.0x bar\n",
                 pdes_scaling);
    return 1;
  } else if (scale < 1.0 && pdes_scaling < 2.0) {
    std::fprintf(stderr,
                 "warning: smoke-scale 4-thread scaling %.2fx below 2.0x "
                 "bar (not enforced at scale %.2f)\n",
                 pdes_scaling, scale);
  }
  return 0;
}
