// Figure 10: AllReduce bus bandwidth for a test job competing with
// (a) static and (b) bursty background AllReduce jobs.
//
// Paper: 2 background + 1 test 512-GPU AllReduce (scaled to 8-rank rings
// across two segments). (a) with 128 paths, RR/OBS saturate the NIC while
// BestRTT/DWRR concentrate on few paths and congest. (b) 128 paths
// mitigates bursts; OBS slightly more resilient than RR.
#include <cstddef>
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/allreduce.h"
#include "collective/traffic.h"
#include "core/run_shard.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

FabricConfig fabric_config() {
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 12;
  fc.rails = 1;
  fc.planes = 1;
  // Mildly oversubscribed aggregation layer (8x200G uplinks vs 12x200G
  // host ports): with three jobs' cross-segment rings in flight, how well
  // an algorithm spreads load decides the attainable bandwidth — the
  // regime the paper's 512-GPU tasks create on the production fabric.
  fc.aggs_per_plane = 8;
  fc.fabric_link.bandwidth = Bandwidth::gbps(200);
  return fc;
}

/// Cross-segment ring: ranks alternate segments so every hop crosses aggs.
std::vector<EndpointId> cross_ring(ClosFabric& fabric, std::uint32_t n,
                                   std::uint32_t host_base) {
  std::vector<EndpointId> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(fabric.endpoint(i % 2, host_base + i / 2, 0, 0));
  }
  return out;
}

TransportConfig transport(MultipathAlgo algo, std::uint16_t paths) {
  TransportConfig t;
  t.algo = algo;
  t.num_paths = paths;
  return t;
}

double static_background_bw(MultipathAlgo algo, std::uint16_t paths) {
  Simulator sim;
  ClosFabric fabric(sim, fabric_config());
  EngineFleet fleet(sim, fabric);

  AllReduceConfig bg_cfg;
  bg_cfg.data_bytes = 16_MiB;
  bg_cfg.transport = transport(algo, paths);
  RingAllReduce bg1(fleet, cross_ring(fabric, 8, 0), bg_cfg);
  RingAllReduce bg2(fleet, cross_ring(fabric, 8, 4), bg_cfg);
  // Background jobs iterate forever.
  auto loop = [&sim](RingAllReduce& ar) {
    auto restart = std::make_shared<std::function<void()>>();
    *restart = [&ar, restart] { ar.start(*restart); };
    ar.start(*restart);
    (void)sim;
  };
  loop(bg1);
  loop(bg2);

  AllReduceConfig test_cfg = bg_cfg;
  RingAllReduce test(fleet, cross_ring(fabric, 8, 8), test_cfg);

  // Warm-up, then measure 3 consecutive test AllReduces.
  sim.run_until(SimTime::millis(1));
  double total_bw = 0;
  int measured = 0;
  std::function<void()> chain = [&] {
    total_bw += test.bus_bandwidth_gbps();
    if (++measured < 3) test.start(chain);
  };
  test.start(chain);
  // Step the clock until the three measurements land (the background jobs
  // loop forever, so a fixed long horizon would waste most of the run).
  const SimTime deadline = sim.now() + SimTime::millis(60);
  while (measured < 3 && sim.now() < deadline) {
    sim.run_until(sim.now() + SimTime::millis(1));
  }
  engine_meter().add(sim);
  return measured > 0 ? total_bw / measured : 0.0;
}

double bursty_background_bw(MultipathAlgo algo, std::uint16_t paths) {
  Simulator sim;
  ClosFabric fabric(sim, fabric_config());
  EngineFleet fleet(sim, fabric);

  AllReduceConfig bg_cfg;
  bg_cfg.data_bytes = 16_MiB;
  bg_cfg.transport = transport(MultipathAlgo::kObs, 128);
  RingAllReduce bg(fleet, cross_ring(fabric, 8, 0), bg_cfg);
  // Paper: 5 s on / 5 s off, scaled to 2 ms / 2 ms.
  BurstyDriver bursty(
      sim, [&](std::function<void()> done) { bg.start(std::move(done)); },
      SimTime::millis(2), SimTime::millis(2));
  bursty.run();

  AllReduceConfig test_cfg;
  test_cfg.data_bytes = 16_MiB;
  test_cfg.transport = transport(algo, paths);
  RingAllReduce test(fleet, cross_ring(fabric, 8, 6), test_cfg);

  sim.run_until(SimTime::millis(1));
  double total_bw = 0;
  int measured = 0;
  std::function<void()> chain = [&] {
    total_bw += test.bus_bandwidth_gbps();
    if (++measured < 6) test.start(chain);
  };
  test.start(chain);
  const SimTime deadline = sim.now() + SimTime::millis(120);
  while (measured < 6 && sim.now() < deadline) {
    sim.run_until(sim.now() + SimTime::millis(1));
  }
  engine_meter().add(sim);
  return measured > 0 ? total_bw / measured : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig10");
  engine_meter();  // start the engine wall clock
  print_header(
      "Figure 10a - test AllReduce bus bandwidth (Gbps) under static\n"
      "background (2 looping AllReduce jobs), 8-rank cross-segment rings\n"
      "paper: at 128 paths RR/OBS saturate; BestRTT/DWRR concentrate & lose");
  print_row({"algorithm", "4 paths", "128 paths"});
  const MultipathAlgo algos[] = {
      MultipathAlgo::kSinglePath, MultipathAlgo::kBestRtt,
      MultipathAlgo::kDwrr, MultipathAlgo::kRoundRobin,
      MultipathAlgo::kMprdmaLike, MultipathAlgo::kObs};
  const MultipathAlgo bursty_algos[] = {MultipathAlgo::kRoundRobin,
                                        MultipathAlgo::kObs};

  // All 16 (scenario, algo, paths) runs are independent, so they shard
  // across --threads=N workers (core/run_shard.h); both tables print
  // after the merge, in sweep order — byte-identical for any thread count.
  const std::uint32_t threads = threads_arg(argc, argv);
  double static_bw[6][2];
  double bursty_bw[2][2];
  ShardedRunSet runs(threads, 2 * 6 + 2 * 2);
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t p = 0; p < 2; ++p) {
      const MultipathAlgo algo = algos[a];
      const std::uint16_t paths = p == 0 ? 4 : 128;
      double* slot = &static_bw[a][p];
      runs.add([algo, paths, slot] {
        *slot = static_background_bw(algo, paths);
      });
    }
  }
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t p = 0; p < 2; ++p) {
      const MultipathAlgo algo = bursty_algos[a];
      const std::uint16_t paths = p == 0 ? 4 : 128;
      double* slot = &bursty_bw[a][p];
      runs.add([algo, paths, slot] {
        *slot = bursty_background_bw(algo, paths);
      });
    }
  }
  runs.execute();

  for (std::size_t a = 0; a < 6; ++a) {
    print_row({multipath_algo_name(algos[a]), fmt(static_bw[a][0], 1),
               fmt(static_bw[a][1], 1)});
  }

  print_header(
      "Figure 10b - test AllReduce bus bandwidth (Gbps) under bursty\n"
      "background (2ms on / 2ms off; paper 5s/5s)\n"
      "paper: 128 paths mitigates bursts; OBS more resilient than RR");
  print_row({"algorithm", "4 paths", "128 paths"});
  for (std::size_t a = 0; a < 2; ++a) {
    print_row({multipath_algo_name(bursty_algos[a]), fmt(bursty_bw[a][0], 1),
               fmt(bursty_bw[a][1], 1)});
  }
  engine_meter().report();
  return 0;
}
