// Figure 11: AllReduce performance under random packet loss on one link
// (1% and 3%), per algorithm and path count.
//
// Paper: with 128 paths every multipath algorithm tolerates the lossy link
// with almost no degradation — spraying divides the *perceived* loss rate
// by the path count, and the short RTO retransmits on a different path.
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/allreduce.h"
#include "core/run_shard.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

double one_trial(MultipathAlgo algo, std::uint16_t paths,
                 double loss_probability, std::uint32_t lossy_agg) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 8;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 32;
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);

  // Drop packets on one ToR uplink of segment 0.
  fabric.tor_uplink(0, 0, 0, lossy_agg).set_drop_probability(loss_probability);

  std::vector<EndpointId> ranks;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ranks.push_back(fabric.endpoint(i % 2, i / 2, 0, 0));
  }
  AllReduceConfig cfg;
  cfg.data_bytes = 32_MiB;
  cfg.transport.algo = algo;
  cfg.transport.num_paths = paths;
  RingAllReduce ar(fleet, ranks, cfg);

  double total = 0;
  int measured = 0;
  std::function<void()> chain = [&] {
    total += ar.bus_bandwidth_gbps();
    if (++measured < 2) ar.start(chain);
  };
  ar.start(chain);
  sim.run_until(SimTime::millis(400));
  engine_meter().add(sim);
  return measured > 0 ? total / measured : 0.0;
}

/// Average over several positions of the lossy link: which connections a
/// single-path hash pins onto the bad uplink is a lottery, so a single
/// trial under-represents the baseline's risk.
double allreduce_bw(MultipathAlgo algo, std::uint16_t paths,
                    double loss_probability) {
  double total = 0;
  constexpr std::uint32_t kTrials = 3;
  for (std::uint32_t t = 0; t < kTrials; ++t) {
    total += one_trial(algo, paths, loss_probability, 1 + t * 9);
  }
  return total / kTrials;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig11");
  engine_meter();  // start the engine wall clock
  print_header(
      "Figure 11 - AllReduce bus bandwidth (Gbps) with a lossy link,\n"
      "16-rank cross-segment ring, loss injected on one ToR uplink\n"
      "paper: 128 paths => near-zero degradation even at 3% loss");

  const MultipathAlgo algos[] = {MultipathAlgo::kSinglePath,
                                 MultipathAlgo::kRoundRobin,
                                 MultipathAlgo::kObs};
  // The 18 (paths, algo, loss) sweep points are independent, so they shard
  // across --threads=N workers (core/run_shard.h); table + JSON emission
  // happen after the merge, in sweep order — byte-identical output for
  // every thread count.
  const std::uint32_t threads = threads_arg(argc, argv);
  struct RunSpec {
    std::uint16_t paths;
    MultipathAlgo algo;
    double loss;
  };
  const double losses[] = {0.0, 0.01, 0.03};
  std::vector<RunSpec> specs;
  for (std::uint16_t paths : {4, 128}) {
    for (MultipathAlgo algo : algos) {
      for (double loss : losses) specs.push_back({paths, algo, loss});
    }
  }
  std::vector<double> bw(specs.size());
  ShardedRunSet runs(threads, specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec spec = specs[i];
    double* slot = &bw[i];
    runs.add([spec, slot] {
      *slot = allreduce_bw(spec.algo, spec.paths, spec.loss);
    });
  }
  runs.execute();

  JsonResult json("fig11");
  std::size_t i = 0;
  for (std::uint16_t paths : {4, 128}) {
    std::printf("\n--- %u paths ---\n", paths);
    print_row({"algorithm", "0% loss", "1% loss", "3% loss", "3% degr."});
    for (MultipathAlgo algo : algos) {
      const double clean = bw[i++];
      const double loss1 = bw[i++];
      const double loss3 = bw[i++];
      print_row({multipath_algo_name(algo), fmt(clean, 1), fmt(loss1, 1),
                 fmt(loss3, 1),
                 fmt(100.0 * (1.0 - loss3 / clean), 1) + "%"});
      json.add_row({{"paths", jint(paths)},
                    {"algorithm", jstr(multipath_algo_name(algo))},
                    {"bw_clean_gbps", jnum(clean, 2)},
                    {"bw_loss1_gbps", jnum(loss1, 2)},
                    {"bw_loss3_gbps", jnum(loss3, 2)},
                    {"degradation_pct",
                     jnum(100.0 * (1.0 - loss3 / clean), 2)}});
    }
  }
  json.write();
  std::printf(
      "\nScale note: with 16 ranks over 32 aggs, every connection's traffic\n"
      "funnels through the one lossy ToR ~30x more than in the paper's\n"
      "960-GPU / 60-agg fabric, so the residual percent-level degradation\n"
      "here corresponds to well under 1%% at production scale. The paper's\n"
      "qualitative claim holds: no algorithm collapses, recovery is one\n"
      "250us RTO, and total link death (see examples/multipath_training)\n"
      "stalls single-path rings while the spray barely notices.\n");
  engine_meter().report();
  return 0;
}
