// Multi-tenant isolation under adversarial neighbors (docs/TENANCY.md).
//
// Four phases, one process, one deterministic BENCH_tenants.json:
//
//   scale    2048 tenants boot / create a vStellar device / register a
//            host-DRAM MR through the shared src/workload tenant-fleet
//            generator (the same seeded stream examples/serverless_inference
//            replays at 120 tenants), then the degradation ladder is walked
//            up and back down on one tenant (green -> throttled -> shed ->
//            green) to show grading is recoverable in both directions.
//
//   attacks  three noisy-neighbor patterns, each run A/B against the same
//            seeded victim workload — "enforced" (per-tenant budgets on) vs
//            "unenforced" (set_enforcement(false), every cap lifted):
//              rule_churn    vSwitch rule-table pollution ahead of victim
//                            rules (positional first-match walk)
//              pin_flood     host pin-capacity exhaustion; victims ride the
//                            hypervisor retry path
//              iotlb_thrash  IOTLB pollution scans vs victim hot sets
//            Headline per pattern: victim p99 degradation vs a victims-only
//            baseline. Gates: enforced < 20%, unenforced > 100% (2x).
//
//   soak     the attacker is killed mid-flood under periodic invariant
//            auditors (emtt-coherence, tenant-isolation, simulator-heap,
//            trap-on-finding). The storm runs through FaultInjector
//            TenantTarget hooks; FaultTelemetry attributes pin retries per
//            tenant (attacker vs victim collateral). Gates: zero findings,
//            kill_tenant reports fully_reclaimed, every victim op completes.
//
// All JSON values are integers or fixed strings; two runs of this binary
// produce byte-identical BENCH_tenants.json (tools/ci_checks.sh diffs them).
//
// Run: ./bench/fig_tenants
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "check/audit.h"
#include "check/auditors.h"
#include "common/stats.h"
#include "core/stellar.h"
#include "core/tenant.h"
#include "fault/fault.h"
#include "fault/telemetry.h"
#include "memory/iommu.h"
#include "net/fabric.h"
#include "rnic/vswitch.h"
#include "sim/simulator.h"
#include "workload/tenant_fleet.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

constexpr TenantId kAdversary = 50;
constexpr TenantId kFirstVictim = 100;

enum class Mode { kBaseline, kEnforced, kUnenforced };

/// (p99 / baseline - 1) in parts-per-million, the headline metric.
long long degradation_ppm(double p99, double baseline) {
  if (baseline <= 0.0) return 0;
  return static_cast<long long>(std::llround((p99 / baseline - 1.0) * 1e6));
}

long long ns_to_ps(double ns) {
  return static_cast<long long>(std::llround(ns * 1000.0));
}

bool check_gates(const char* pattern, long long enforced_ppm,
                 long long unenforced_ppm) {
  const bool ok = enforced_ppm < 200'000 && unenforced_ppm > 1'000'000;
  std::printf("  %-13s enforced %+.1f%%  unenforced %+.1f%%  -> %s\n",
              pattern, static_cast<double>(enforced_ppm) / 1e4,
              static_cast<double>(unenforced_ppm) / 1e4,
              ok ? "PASS" : "FAIL");
  return ok;
}

// ---------------------------------------------------------------------------
// Phase 1: scale — thousands of tenants through the shared fleet generator.
// ---------------------------------------------------------------------------

bool run_scale(JsonResult& json) {
  print_header("Phase 1: 2048-tenant fleet + degradation ladder");

  StellarHostConfig cfg;
  StellarHost host(cfg);

  TenantFleetConfig fleet;
  fleet.seed = 7;
  fleet.tenants = 2048;
  fleet.first_tenant = kFirstVictim;
  fleet.guest_mem_bytes = 64_MiB;
  fleet.stampede_width = 32;
  fleet.mr_bytes = 4_MiB;
  fleet.dma_ops_per_tenant = 0;  // boot/device/MR only at this scale
  fleet.sends_per_tenant = 0;

  TenantBudgets budgets;
  budgets.max_devices = 2;
  budgets.max_qps = 8;
  budgets.max_mrs = 4;
  budgets.pin_budget_bytes = 16_MiB;

  std::vector<std::unique_ptr<RundContainer>> containers;
  containers.reserve(fleet.tenants);
  std::size_t booted = 0, devices = 0, mrs = 0;
  for (const FleetOp& op : generate_fleet_ops(fleet)) {
    switch (op.kind) {
      case FleetOpKind::kBoot: {
        containers.push_back(std::make_unique<RundContainer>(
            op.tenant, "t" + std::to_string(op.tenant),
            fleet.guest_mem_bytes));
        STELLAR_CHECK_OK(host.boot(*containers.back()).status(),
                         "scale: boot failed");
        STELLAR_CHECK_OK(host.tenants().register_tenant(op.tenant, budgets),
                         "scale: register_tenant failed");
        ++booted;
        break;
      }
      case FleetOpKind::kCreateDevice: {
        auto dev = host.create_vstellar_device(
            *containers.back(), (op.tenant - kFirstVictim) % host.rnic_count());
        STELLAR_CHECK_OK(dev.status(), "scale: device failed");
        ++devices;
        break;
      }
      case FleetOpKind::kRegisterMr: {
        auto devs = host.devices_for_vm(op.tenant);
        STELLAR_CHECK(!devs.empty(), "scale: no device for MR");
        auto mr = devs.front()->register_memory(Gva{op.gva}, op.bytes,
                                                MemoryOwner::kHostDram,
                                                /*guest_addr=*/0);
        STELLAR_CHECK_OK(mr.status(), "scale: MR failed");
        ++mrs;
        break;
      }
      default:
        break;
    }
  }

  std::size_t green = 0, throttled = 0, shed = 0;
  for (TenantId t : host.tenants().registered()) {
    switch (host.tenants().level(t)) {
      case DegradeLevel::kGreen: ++green; break;
      case DegradeLevel::kThrottled: ++throttled; break;
      case DegradeLevel::kShed: ++shed; break;
    }
  }

  // Walk one tenant up the ladder and back: 4 MiB MR pins put it at 25% of
  // its 16 MiB pin budget (green); five more demand-pinned blocks reach
  // 87.5% (throttled); one more hits the cap (shed); releasing the extra
  // blocks recovers green. Grading must be recoverable in both directions.
  const TenantId probe = kFirstVictim;
  Pvdma& pvdma = host.hypervisor().pvdma(probe);
  std::string ladder = to_string(host.tenants().level(probe));
  for (std::uint64_t k = 0; k < 5; ++k) {
    STELLAR_CHECK_OK(pvdma.prepare_dma(Gpa{4_MiB + k * 2_MiB}, 2_MiB).status(),
                     "ladder: pin failed");
  }
  ladder += std::string(",") + to_string(host.tenants().level(probe));
  STELLAR_CHECK_OK(pvdma.prepare_dma(Gpa{14_MiB}, 2_MiB).status(),
                   "ladder: final pin failed");
  ladder += std::string(",") + to_string(host.tenants().level(probe));
  pvdma.release_dma(Gpa{4_MiB}, 12_MiB);
  ladder += std::string(",") + to_string(host.tenants().level(probe));

  const bool ok = booted == fleet.tenants && devices == fleet.tenants &&
                  mrs == fleet.tenants && green == fleet.tenants &&
                  ladder == "green,throttled,shed,green";
  std::printf("  %zu tenants booted, %zu devices, %zu MRs; levels: "
              "%zu green / %zu throttled / %zu shed\n",
              booted, devices, mrs, green, throttled, shed);
  std::printf("  ladder walk on tenant %u: %s -> %s\n", probe, ladder.c_str(),
              ok ? "PASS" : "FAIL");

  json.add_row({{"phase", jstr("scale")},
                {"tenants", jint(static_cast<long long>(booted))},
                {"devices", jint(static_cast<long long>(devices))},
                {"mrs", jint(static_cast<long long>(mrs))},
                {"green", jint(static_cast<long long>(green))},
                {"throttled", jint(static_cast<long long>(throttled))},
                {"shed", jint(static_cast<long long>(shed))},
                {"pinned_bytes", jint(static_cast<long long>(
                                     host.pcie().iommu().pinned_bytes()))},
                {"ladder", jstr(ladder)},
                {"gate_pass", jint(ok ? 1 : 0)}});
  return ok;
}

// ---------------------------------------------------------------------------
// Attack pattern 1: vSwitch rule churn.
// ---------------------------------------------------------------------------

double rule_churn_run(Mode mode, std::uint64_t* adversary_sheds) {
  VSwitch vs;
  std::uint64_t rule_id = 1;
  if (mode != Mode::kBaseline) {
    if (mode == Mode::kEnforced) {
      TenantQos qos;
      qos.max_rules = 4;  // the rule-slot quota is the whole defense here
      vs.set_qos(kAdversary, qos);
    }
    for (int i = 0; i < 3500; ++i) {
      SteeringRule rule;
      rule.id = rule_id++;
      rule.match = TrafficClass::kTcp;
      rule.tenant = kAdversary;
      if (!vs.add_rule(rule).is_ok()) ++*adversary_sheds;  // defense working
    }
  }
  for (TenantId t = kFirstVictim; t < kFirstVictim + 16; ++t) {
    SteeringRule rule;
    rule.id = rule_id++;
    rule.match = TrafficClass::kRdma;
    rule.tenant = t;
    STELLAR_CHECK_OK(vs.add_rule(rule), "rule_churn: victim rule rejected");
  }
  PercentileRecorder rec;
  SimTime now = SimTime::zero();
  for (int round = 0; round < 256; ++round) {
    for (TenantId t = kFirstVictim; t < kFirstVictim + 16; ++t) {
      auto fwd = vs.forward(TrafficClass::kRdma, t, 1024, now);
      STELLAR_CHECK_OK(fwd.status(), "rule_churn: forward failed");
      rec.add(fwd.value().latency.ns());
      now = now + SimTime::micros(1);
    }
  }
  return rec.p99();
}

// ---------------------------------------------------------------------------
// Attack pattern 2: PVDMA pin flood against host pin capacity.
// ---------------------------------------------------------------------------

struct PinFloodOutcome {
  double p99_ns = 0.0;
  std::size_t issued = 0;
  std::size_t completed = 0;
  std::uint64_t adversary_budget_sheds = 0;
  std::uint64_t flood_pinned = 0;
};

PinFloodOutcome pin_flood_run(Mode mode) {
  Simulator sim;
  StellarHostConfig cfg;
  cfg.pcie.iommu.pin_capacity_bytes = 8_GiB;
  StellarHost host(cfg);

  TenantFleetConfig fleet;
  fleet.seed = 11;
  fleet.tenants = 16;
  fleet.first_tenant = kFirstVictim;
  fleet.guest_mem_bytes = 256_MiB;
  fleet.stampede_width = 16;
  fleet.dma_ops_per_tenant = 24;
  fleet.dma_spacing = SimTime::micros(25);
  fleet.working_set_bytes = 64_MiB;
  fleet.sends_per_tenant = 0;
  const std::vector<FleetOp> ops = generate_fleet_ops(fleet);

  TenantBudgets victim_budgets;
  victim_budgets.pin_budget_bytes = 128_MiB;

  std::vector<std::unique_ptr<RundContainer>> containers;
  PinFloodOutcome out;
  PercentileRecorder rec;

  for (const FleetOp& op : ops) {
    if (op.kind != FleetOpKind::kBoot) continue;
    containers.push_back(std::make_unique<RundContainer>(
        op.tenant, "v" + std::to_string(op.tenant), fleet.guest_mem_bytes));
    STELLAR_CHECK_OK(host.boot(*containers.back()).status(),
                     "pin_flood: victim boot failed");
    STELLAR_CHECK_OK(host.tenants().register_tenant(op.tenant, victim_budgets),
                     "pin_flood: register failed");
  }

  std::unique_ptr<RundContainer> adversary;
  if (mode != Mode::kBaseline) {
    adversary = std::make_unique<RundContainer>(kAdversary, "adversary", 8_GiB);
    STELLAR_CHECK_OK(host.boot(*adversary).status(),
                     "pin_flood: adversary boot failed");
    TenantBudgets adv;
    adv.pin_budget_bytes = 256_MiB;  // the cap that protects the victims
    STELLAR_CHECK_OK(host.tenants().register_tenant(kAdversary, adv),
                     "pin_flood: adversary register failed");
    if (mode == Mode::kUnenforced) host.tenants().set_enforcement(false);

    sim.schedule_at(SimTime::micros(100), [&host, &out] {
      Pvdma& pvdma = host.hypervisor().pvdma(kAdversary);
      for (std::uint64_t gpa = 0; gpa < 8_GiB; gpa += 2_MiB) {
        auto r = pvdma.prepare_dma(Gpa{gpa}, 2_MiB);
        if (r.is_ok()) {
          out.flood_pinned += 2_MiB;
          continue;
        }
        if (r.status().code() == StatusCode::kFailedPrecondition) {
          ++out.adversary_budget_sheds;  // own-budget shed: defense working
        }
        break;  // budget or capacity: the flood can grow no further
      }
    });
    sim.schedule_at(SimTime::micros(1300), [&host] {
      host.hypervisor().pvdma(kAdversary).release_all();
    });
  }

  for (const FleetOp& op : ops) {
    if (op.kind != FleetOpKind::kPrepareDma) continue;
    ++out.issued;
    sim.schedule_at(op.at, [&host, &sim, &rec, &out, op] {
      const SimTime issue = sim.now();
      host.hypervisor().prepare_dma_with_retry(
          sim, op.tenant, Gpa{op.gpa}, op.bytes,
          [&sim, &rec, &out, issue](StatusOr<Pvdma::MapResult> r) {
            if (!r.is_ok()) return;  // terminal failure: left uncounted
            ++out.completed;
            rec.add(((sim.now() - issue) + r.value().cost).ns());
          });
    });
  }

  sim.run();
  engine_meter().add(sim);
  out.p99_ns = rec.p99();
  return out;
}

// ---------------------------------------------------------------------------
// Attack pattern 3: IOTLB thrash scans vs victim hot sets.
// ---------------------------------------------------------------------------

double iotlb_run(Mode mode) {
  IommuConfig cfg;
  cfg.iotlb_capacity = 2048;
  Iommu iommu(cfg);

  constexpr std::size_t kVictims = 4;
  constexpr std::size_t kHotPages = 128;
  for (std::size_t v = 0; v < kVictims; ++v) {
    const std::uint64_t base = (v + 1) * 64_MiB;
    STELLAR_CHECK_OK(iommu.map(IoVa{base}, Hpa{base}, kHotPages * kPage4K),
                     "iotlb: victim map failed");
  }
  const std::uint64_t scan_base = 1_GiB;
  const std::uint64_t scan_pages = 16384;
  STELLAR_CHECK_OK(
      iommu.map(IoVa{scan_base}, Hpa{scan_base}, scan_pages * kPage4K),
      "iotlb: adversary map failed");
  if (mode == Mode::kEnforced) {
    iommu.set_iotlb_share(kAdversary, 256);  // self-evicting share cap
  }

  auto touch_victims = [&](PercentileRecorder* rec) {
    for (std::size_t v = 0; v < kVictims; ++v) {
      const std::uint64_t base = (v + 1) * 64_MiB;
      for (std::size_t p = 0; p < kHotPages; ++p) {
        auto tr = iommu.translate(IoVa{base + p * kPage4K},
                                  kFirstVictim + static_cast<TenantId>(v));
        STELLAR_CHECK_OK(tr.status(), "iotlb: victim translate failed");
        if (rec != nullptr) rec->add(tr.value().latency.ns());
      }
    }
  };

  touch_victims(nullptr);  // warm the hot sets
  touch_victims(nullptr);

  PercentileRecorder rec;
  for (std::uint64_t round = 0; round < 64; ++round) {
    if (mode != Mode::kBaseline) {
      for (std::uint64_t p = 0; p < 4096; ++p) {
        const std::uint64_t page = (round * 4096 + p) % scan_pages;
        auto tr =
            iommu.translate(IoVa{scan_base + page * kPage4K}, kAdversary);
        STELLAR_CHECK_OK(tr.status(), "iotlb: scan translate failed");
      }
    }
    touch_victims(&rec);
  }
  return rec.p99();
}

// ---------------------------------------------------------------------------
// The A/B driver shared by the three patterns.
// ---------------------------------------------------------------------------

bool run_attacks(JsonResult& json) {
  print_header("Phase 2: noisy-neighbor attacks, enforced vs unenforced");
  bool all_ok = true;

  {  // rule_churn
    std::uint64_t sheds_enforced = 0, sheds_unenforced = 0, sheds_none = 0;
    const double base = rule_churn_run(Mode::kBaseline, &sheds_none);
    const double enf = rule_churn_run(Mode::kEnforced, &sheds_enforced);
    const double unenf = rule_churn_run(Mode::kUnenforced, &sheds_unenforced);
    const long long enf_ppm = degradation_ppm(enf, base);
    const long long unenf_ppm = degradation_ppm(unenf, base);
    all_ok &= check_gates("rule_churn", enf_ppm, unenf_ppm);
    json.add_row({{"phase", jstr("attack")},
                  {"pattern", jstr("rule_churn")},
                  {"baseline_p99_ps", jint(ns_to_ps(base))},
                  {"enforced_p99_ps", jint(ns_to_ps(enf))},
                  {"unenforced_p99_ps", jint(ns_to_ps(unenf))},
                  {"enforced_degradation_ppm", jint(enf_ppm)},
                  {"unenforced_degradation_ppm", jint(unenf_ppm)},
                  {"adversary_sheds",
                   jint(static_cast<long long>(sheds_enforced))},
                  {"gate_pass", jint(enf_ppm < 200'000 &&
                                     unenf_ppm > 1'000'000 ? 1 : 0)}});
  }

  {  // pin_flood
    const PinFloodOutcome base = pin_flood_run(Mode::kBaseline);
    const PinFloodOutcome enf = pin_flood_run(Mode::kEnforced);
    const PinFloodOutcome unenf = pin_flood_run(Mode::kUnenforced);
    const long long enf_ppm = degradation_ppm(enf.p99_ns, base.p99_ns);
    const long long unenf_ppm = degradation_ppm(unenf.p99_ns, base.p99_ns);
    const bool complete = base.completed == base.issued &&
                          enf.completed == enf.issued &&
                          unenf.completed == unenf.issued;
    all_ok &= check_gates("pin_flood", enf_ppm, unenf_ppm) && complete;
    std::printf("    victim ops %zu/%zu/%zu completed of %zu; adversary "
                "pinned %llu MiB unenforced (budget sheds enforced: %llu)\n",
                base.completed, enf.completed, unenf.completed, base.issued,
                static_cast<unsigned long long>(unenf.flood_pinned >> 20),
                static_cast<unsigned long long>(enf.adversary_budget_sheds));
    json.add_row(
        {{"phase", jstr("attack")},
         {"pattern", jstr("pin_flood")},
         {"baseline_p99_ps", jint(ns_to_ps(base.p99_ns))},
         {"enforced_p99_ps", jint(ns_to_ps(enf.p99_ns))},
         {"unenforced_p99_ps", jint(ns_to_ps(unenf.p99_ns))},
         {"enforced_degradation_ppm", jint(enf_ppm)},
         {"unenforced_degradation_ppm", jint(unenf_ppm)},
         {"victim_ops", jint(static_cast<long long>(base.issued))},
         {"victim_ops_completed_unenforced",
          jint(static_cast<long long>(unenf.completed))},
         {"adversary_sheds",
          jint(static_cast<long long>(enf.adversary_budget_sheds))},
         {"adversary_flood_bytes",
          jint(static_cast<long long>(unenf.flood_pinned))},
         {"gate_pass", jint(enf_ppm < 200'000 && unenf_ppm > 1'000'000 &&
                            complete ? 1 : 0)}});
  }

  {  // iotlb_thrash
    const double base = iotlb_run(Mode::kBaseline);
    const double enf = iotlb_run(Mode::kEnforced);
    const double unenf = iotlb_run(Mode::kUnenforced);
    const long long enf_ppm = degradation_ppm(enf, base);
    const long long unenf_ppm = degradation_ppm(unenf, base);
    all_ok &= check_gates("iotlb_thrash", enf_ppm, unenf_ppm);
    json.add_row({{"phase", jstr("attack")},
                  {"pattern", jstr("iotlb_thrash")},
                  {"baseline_p99_ps", jint(ns_to_ps(base))},
                  {"enforced_p99_ps", jint(ns_to_ps(enf))},
                  {"unenforced_p99_ps", jint(ns_to_ps(unenf))},
                  {"enforced_degradation_ppm", jint(enf_ppm)},
                  {"unenforced_degradation_ppm", jint(unenf_ppm)},
                  {"gate_pass", jint(enf_ppm < 200'000 &&
                                     unenf_ppm > 1'000'000 ? 1 : 0)}});
  }

  return all_ok;
}

// ---------------------------------------------------------------------------
// Phase 3: kill-the-attacker-mid-flood chaos soak under auditors.
// ---------------------------------------------------------------------------

struct AdversaryState {
  StellarHost* host = nullptr;
  RundContainer* container = nullptr;
  VStellarDevice* dev = nullptr;
  std::uint64_t flood_cursor = 0;
  std::uint64_t guest_bytes = 0;
  std::uint64_t quota_sheds = 0;
  std::uint64_t capacity_sheds = 0;
  std::vector<QpNum> held_qps;
  std::vector<MrKey> held_mrs;
  std::uint32_t churn_seq = 0;
  bool killed = false;
  bool fully_reclaimed = false;
  std::uint64_t reclaimed_bytes = 0;
};

bool run_soak(JsonResult& json) {
  print_header("Phase 3: kill-mid-flood chaos soak under invariant auditors");

  Simulator sim;
  StellarHostConfig cfg;
  cfg.pcie.iommu.pin_capacity_bytes = 2_GiB;
  StellarHost host(cfg);

  FabricConfig fabric_cfg;  // minimal fabric: the injector requires one
  fabric_cfg.segments = 1;
  fabric_cfg.hosts_per_segment = 2;
  fabric_cfg.rails = 1;
  fabric_cfg.planes = 1;
  fabric_cfg.aggs_per_plane = 1;
  ClosFabric fabric(sim, fabric_cfg);

  FaultTelemetry telemetry;
  telemetry.set_seed(7);
  telemetry.watch_hypervisor(&host.hypervisor());
  telemetry.attach(sim, SimTime::micros(50));
  FaultInjector injector(sim, fabric, &telemetry);

  // -- Victims: 8 tenants via the shared fleet generator -----------------------
  TenantFleetConfig fleet;
  fleet.seed = 13;
  fleet.tenants = 8;
  fleet.first_tenant = kFirstVictim;
  fleet.guest_mem_bytes = 256_MiB;
  fleet.stampede_width = 8;
  fleet.mr_bytes = 4_MiB;
  fleet.dma_ops_per_tenant = 16;
  fleet.dma_spacing = SimTime::micros(40);
  fleet.working_set_bytes = 64_MiB;
  fleet.sends_per_tenant = 0;
  const std::vector<FleetOp> ops = generate_fleet_ops(fleet);

  TenantBudgets victim_budgets;
  victim_budgets.max_devices = 2;
  victim_budgets.max_qps = 8;
  victim_budgets.max_mrs = 4;
  victim_budgets.pin_budget_bytes = 128_MiB;

  std::vector<std::unique_ptr<RundContainer>> victims;
  for (const FleetOp& op : ops) {
    switch (op.kind) {
      case FleetOpKind::kBoot:
        victims.push_back(std::make_unique<RundContainer>(
            op.tenant, "v" + std::to_string(op.tenant),
            fleet.guest_mem_bytes));
        STELLAR_CHECK_OK(host.boot(*victims.back()).status(),
                         "soak: victim boot failed");
        STELLAR_CHECK_OK(
            host.tenants().register_tenant(op.tenant, victim_budgets),
            "soak: victim register failed");
        break;
      case FleetOpKind::kCreateDevice:
        STELLAR_CHECK_OK(
            host.create_vstellar_device(*victims.back(),
                                        (op.tenant - kFirstVictim) %
                                            host.rnic_count())
                .status(),
            "soak: victim device failed");
        break;
      case FleetOpKind::kRegisterMr:
        STELLAR_CHECK_OK(host.devices_for_vm(op.tenant)
                             .front()
                             ->register_memory(Gva{op.gva}, op.bytes,
                                               MemoryOwner::kHostDram,
                                               /*guest_addr=*/0)
                             .status(),
                         "soak: victim MR failed");
        break;
      default:
        break;
    }
  }

  // -- The adversary: uncapped pins, capped verbs objects ----------------------
  AdversaryState adv;
  adv.host = &host;
  adv.guest_bytes = 4_GiB;
  auto adv_container = std::make_unique<RundContainer>(kAdversary, "adversary",
                                                       adv.guest_bytes);
  adv.container = adv_container.get();
  STELLAR_CHECK_OK(host.boot(*adv.container).status(),
                   "soak: adversary boot failed");
  TenantBudgets adv_budgets;
  adv_budgets.max_qps = 4;
  adv_budgets.max_mrs = 4;
  adv_budgets.iotlb_share_entries = 256;
  adv_budgets.qos.max_rules = 8;
  STELLAR_CHECK_OK(host.tenants().register_tenant(kAdversary, adv_budgets),
                   "soak: adversary register failed");
  auto adv_dev = host.create_vstellar_device(*adv.container, 0);
  STELLAR_CHECK_OK(adv_dev.status(), "soak: adversary device failed");
  adv.dev = adv_dev.value();
  STELLAR_CHECK_OK(adv.dev
                       ->register_memory(Gva{0x1000}, 4_MiB,
                                         MemoryOwner::kHostDram,
                                         /*guest_addr=*/0)
                       .status(),
                   "soak: adversary MR failed");
  for (int i = 0; i < 2; ++i) {
    auto qp = adv.dev->create_qp();
    STELLAR_CHECK_OK(qp.status(), "soak: adversary QP failed");
  }
  for (int i = 0; i < 4; ++i) {
    SteeringRule rule;
    rule.id = 9000 + static_cast<std::uint64_t>(i);
    rule.match = TrafficClass::kTcp;
    rule.tenant = kAdversary;
    STELLAR_CHECK_OK(host.vswitch().add_rule(rule),
                     "soak: adversary rule failed");
  }

  // -- TenantTarget hooks: the storms the injector drives ----------------------
  FaultInjector::TenantTarget target;
  target.tenant = kAdversary;
  target.pin_flood = [&adv](std::uint64_t bytes) -> Status {
    if (adv.killed) return Status::ok();
    Pvdma& pvdma = adv.host->hypervisor().pvdma(kAdversary);
    std::uint64_t pinned = 0;
    while (pinned < bytes && adv.flood_cursor < adv.guest_bytes) {
      auto r = pvdma.prepare_dma(Gpa{adv.flood_cursor}, 2_MiB);
      adv.flood_cursor += 2_MiB;
      if (r.is_ok()) {
        pinned += 2_MiB;
        continue;
      }
      if (r.status().code() == StatusCode::kFailedPrecondition) {
        ++adv.quota_sheds;
      } else {
        ++adv.capacity_sheds;
      }
      break;  // the shared resource is defended or exhausted: burst over
    }
    return Status::ok();
  };
  target.qp_churn = [&adv](std::uint64_t rounds) -> Status {
    if (adv.killed) return Status::ok();
    // Two creates against one destroy per round: the attacker both churns
    // the QP table and keeps slamming into its own max_qps quota.
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (int i = 0; i < 2; ++i) {
        auto qp = adv.dev->create_qp();
        if (qp.is_ok()) {
          adv.held_qps.push_back(qp.value());
        } else {
          ++adv.quota_sheds;  // admit_qp shed the over-quota attacker
        }
      }
      if (adv.held_qps.size() > 1) {
        (void)adv.dev->rnic().verbs().destroy_qp(adv.held_qps.front());
        adv.held_qps.erase(adv.held_qps.begin());
      }
    }
    return Status::ok();
  };
  target.mr_churn = [&adv](std::uint64_t rounds) -> Status {
    if (adv.killed) return Status::ok();
    // Three registrations against a drain-to-one per round: walks the MR
    // count up to the max_mrs quota every round, so both the churn path and
    // the admission shed path stay exercised.
    for (std::uint64_t r = 0; r < rounds; ++r) {
      for (int i = 0; i < 3; ++i) {
        const std::uint64_t slot = adv.churn_seq++ % 8;
        auto mr = adv.dev->register_memory(
            Gva{0x40000000ull + slot * 2_MiB}, 2_MiB, MemoryOwner::kHostDram,
            /*guest_addr=*/2_GiB + slot * 2_MiB);
        if (mr.is_ok()) {
          adv.held_mrs.push_back(mr.value().key);
        } else if (mr.status().code() == StatusCode::kFailedPrecondition) {
          ++adv.quota_sheds;
        } else {
          ++adv.capacity_sheds;  // pin capacity full mid-flood
        }
      }
      while (adv.held_mrs.size() > 1) {
        (void)adv.dev->deregister_memory(adv.held_mrs.front());
        adv.held_mrs.erase(adv.held_mrs.begin());
      }
    }
    return Status::ok();
  };
  target.iotlb_thrash = [&adv](std::uint64_t pages) -> Status {
    if (adv.killed || adv.flood_cursor == 0) return Status::ok();
    Iommu& iommu = adv.host->pcie().iommu();
    for (std::uint64_t p = 0; p < pages; ++p) {
      const std::uint64_t iova = (p * kPage4K) % adv.flood_cursor;
      if (!iommu.translate(IoVa{iova}, kAdversary).is_ok()) break;
    }
    return Status::ok();
  };
  target.kill = [&adv]() -> StatusOr<std::uint64_t> {
    auto report = adv.host->kill_tenant(*adv.container);
    if (!report.is_ok()) return report.status();
    adv.killed = true;
    adv.fully_reclaimed = report.value().fully_reclaimed;
    adv.reclaimed_bytes = report.value().unpinned_bytes;
    return report.value().unpinned_bytes;
  };
  injector.register_tenant_target(std::move(target));

  // -- The plan: storms, then the kill mid-flood, then one post-kill burst -----
  FaultPlan plan;
  plan.seed = 7;
  auto storm = [&plan](SimTime at, FaultKind kind, const char* label,
                       std::uint64_t intensity) {
    FaultEvent e;
    e.at = at;
    e.kind = kind;
    e.label = label;
    e.tenant = 0;  // first registered tenant target
    e.intensity = intensity;
    plan.events.push_back(e);
  };
  storm(SimTime::micros(100), FaultKind::kPinFlood, "flood-1", 2_GiB);
  storm(SimTime::micros(160), FaultKind::kQpChurn, "qp-storm", 64);
  storm(SimTime::micros(220), FaultKind::kMrChurn, "mr-storm", 64);
  storm(SimTime::micros(280), FaultKind::kIotlbThrash, "thrash", 2048);
  storm(SimTime::micros(340), FaultKind::kPinFlood, "flood-2", 512_MiB);
  storm(SimTime::micros(420), FaultKind::kTenantKill, "kill-adversary", 1);
  storm(SimTime::micros(480), FaultKind::kPinFlood, "flood-post-kill",
        64_MiB);
  STELLAR_CHECK_OK(injector.arm(plan), "soak: arm failed");

  // -- Victim steady-state DMA through the retry path --------------------------
  std::size_t issued = 0, completed = 0;
  PercentileRecorder victim_lat;
  for (const FleetOp& op : ops) {
    if (op.kind != FleetOpKind::kPrepareDma) continue;
    ++issued;
    sim.schedule_at(op.at, [&host, &sim, &victim_lat, &completed, op] {
      const SimTime issue = sim.now();
      host.hypervisor().prepare_dma_with_retry(
          sim, op.tenant, Gpa{op.gpa}, op.bytes,
          [&sim, &victim_lat, &completed, issue](
              StatusOr<Pvdma::MapResult> r) {
            if (!r.is_ok()) return;
            ++completed;
            victim_lat.add(((sim.now() - issue) + r.value().cost).ns());
          });
    });
  }

  // -- Auditors: periodic, trap-on-finding ------------------------------------
  AuditRegistry registry;
  registry.add(std::make_unique<EmttCoherenceAuditor>(host));
  registry.add(std::make_unique<TenantIsolationAuditor>(host));
  registry.add(std::make_unique<SimulatorAuditor>(sim));
  registry.attach_periodic(sim, SimTime::micros(50));

  // The periodic auditors re-arm forever; run to a horizon safely past the
  // last victim op (~650 us) plus the full pin-retry backoff tail.
  sim.run_until(SimTime::millis(5));
  engine_meter().add(sim);

  registry.detach();
  telemetry.detach();
  registry.run_all();  // final audit over the drained end state

  std::uint64_t attacker_retries = 0, victim_retries = 0;
  for (const auto& [vm, retries] : telemetry.pin_retries_by_tenant()) {
    if (vm == kAdversary) {
      attacker_retries += retries;
    } else {
      victim_retries += retries;
    }
  }
  std::size_t faults_cleared = 0;
  for (const auto& fault : telemetry.faults()) {
    if (fault.cleared) ++faults_cleared;
  }

  const bool ok = registry.total_findings() == 0 && adv.fully_reclaimed &&
                  completed == issued && faults_cleared == plan.events.size();
  std::printf("  %llu audit runs, %llu findings; kill reclaimed %llu MiB "
              "(fully_reclaimed=%d)\n",
              static_cast<unsigned long long>(registry.runs()),
              static_cast<unsigned long long>(registry.total_findings()),
              static_cast<unsigned long long>(adv.reclaimed_bytes >> 20),
              adv.fully_reclaimed ? 1 : 0);
  std::printf("  victim ops %zu/%zu completed; pin retries: victims %llu, "
              "attacker %llu; adversary sheds: quota %llu, capacity %llu\n",
              completed, issued,
              static_cast<unsigned long long>(victim_retries),
              static_cast<unsigned long long>(attacker_retries),
              static_cast<unsigned long long>(adv.quota_sheds),
              static_cast<unsigned long long>(adv.capacity_sheds));
  std::printf("  soak -> %s\n", ok ? "PASS" : "FAIL");

  json.add_row(
      {{"phase", jstr("soak")},
       {"auditor_runs", jint(static_cast<long long>(registry.runs()))},
       {"findings", jint(static_cast<long long>(registry.total_findings()))},
       {"fully_reclaimed", jint(adv.fully_reclaimed ? 1 : 0)},
       {"reclaimed_bytes", jint(static_cast<long long>(adv.reclaimed_bytes))},
       {"victim_ops", jint(static_cast<long long>(issued))},
       {"victim_ops_completed", jint(static_cast<long long>(completed))},
       {"victim_p99_ps", jint(ns_to_ps(victim_lat.p99()))},
       {"victim_pin_retries", jint(static_cast<long long>(victim_retries))},
       {"attacker_pin_retries",
        jint(static_cast<long long>(attacker_retries))},
       {"adversary_quota_sheds",
        jint(static_cast<long long>(adv.quota_sheds))},
       {"adversary_capacity_sheds",
        jint(static_cast<long long>(adv.capacity_sheds))},
       {"faults_injected", jint(static_cast<long long>(plan.events.size()))},
       {"faults_cleared", jint(static_cast<long long>(faults_cleared))},
       {"gate_pass", jint(ok ? 1 : 0)}});
  return ok;
}

}  // namespace

int main() {
  engine_meter();
  print_header(
      "Multi-tenant isolation: per-tenant QoS vs noisy neighbors "
      "(docs/TENANCY.md)");

  JsonResult json("tenants");
  bool ok = true;
  ok &= run_scale(json);
  ok &= run_attacks(json);
  ok &= run_soak(json);
  json.write();
  engine_meter().report();

  std::printf("\n%s\n", ok ? "ALL GATES PASS"
                           : "GATE FAILURE: isolation contract violated");
  return ok ? 0 : 1;
}
