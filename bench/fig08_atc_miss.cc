// Figure 8: GDR write bandwidth vs message size — PCIe ATS/ATC baseline
// (CX6-like 200G) against vStellar's eMTT (400G), 16 connections with
// independent GPU buffers, 4 KiB GDR pages (the ATC worst case).
//
// Paper shape: the ATS/ATC NIC holds ~190 Gbps until the 16-connection
// working set outgrows the ATC (>2 MB messages -> ~170 Gbps), then the
// IOMMU IOTLB starts missing too (>32 MB -> ~150 Gbps). vStellar is flat.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "pcie/atc.h"
#include "pcie/host_pcie.h"
#include "rnic/gdr.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

struct Setup {
  HostPcie pcie;
  std::vector<IoVa> buffers;  // one per connection

  explicit Setup(std::size_t connections, std::uint64_t buffer_bytes)
      : pcie([] {
          HostPcieConfig cfg;
          cfg.main_memory_bytes = 64_GiB;
          // IOTLB sized so that its capacity cliff lands past the ATC's.
          cfg.iommu.iotlb_capacity = 64 * 1024;  // covers 256 MiB
          return cfg;
        }()) {
    const std::size_t sw = pcie.add_switch("sw0");
    (void)pcie.attach_device(Bdf{0x10, 0, 0}, sw, 1_MiB);
    // Map one large IOMMU window per connection (the VF's GPU buffer).
    for (std::size_t c = 0; c < connections; ++c) {
      const IoVa base{(1ull + c) << 32};
      (void)pcie.iommu().map(base, Hpa{1_GiB + c * buffer_bytes},
                             buffer_bytes);
      buffers.push_back(base);
    }
  }
};

/// Round-robin GDR writes of `msg` bytes on every connection, like the
/// paper's 16-connection perftest loop.
GdrTransfer run_round_robin(GdrEngine& engine, const std::vector<IoVa>& bufs,
                            std::uint64_t msg, int rounds) {
  GdrTransfer total;
  std::int64_t ps = 0;
  std::uint64_t bytes = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const IoVa buf : bufs) {
      const GdrTransfer t = engine.transfer(buf, msg);
      ps += t.duration.ps();
      bytes += msg;
      total.atc_misses += t.atc_misses;
      total.iotlb_misses += t.iotlb_misses;
    }
  }
  total.duration = SimTime::picos(ps);
  total.gbps = static_cast<double>(bytes) * 8.0 / total.duration.sec() / 1e9;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig08");
  print_header(
      "Figure 8 - GDR bandwidth vs message size, 16 connections, 4KiB pages\n"
      "paper: CX6 ATS/ATC droops 190->170->150 Gbps; vStellar eMTT flat "
      "~393 Gbps");

  constexpr std::size_t kConnections = 16;
  constexpr std::uint64_t kBufferBytes = 512_MiB;

  print_row({"msg size", "ATS/ATC Gbps", "atc miss%", "iotlb miss%",
             "eMTT Gbps"});

  const std::uint64_t sizes[] = {64_KiB, 256_KiB, 1_MiB,  2_MiB,  4_MiB,
                                 8_MiB,  16_MiB,  32_MiB, 64_MiB, 128_MiB};

  // Persistent state across message sizes, like a long-running perftest.
  Setup atc_setup(kConnections, kBufferBytes);
  GdrEngineConfig cx6;
  cx6.nic_rate = Bandwidth::gbps(200);
  Atc atc(atc_setup.pcie, Bdf{0x10, 0, 0}, /*capacity_pages=*/8192);
  GdrEngine cx6_engine(atc_setup.pcie, cx6, GdrMode::kAtsAtc, &atc);

  Setup emtt_setup(kConnections, kBufferBytes);
  GdrEngineConfig stellar400;
  stellar400.nic_rate = Bandwidth::gbps(400);
  GdrEngine emtt_engine(emtt_setup.pcie, stellar400, GdrMode::kEmtt, nullptr);

  for (std::uint64_t msg : sizes) {
    // Keep per-point work bounded: ~256 MiB of traffic per point.
    const int rounds =
        static_cast<int>(std::max<std::uint64_t>(1, 256_MiB / (msg * kConnections)));
    const GdrTransfer a =
        run_round_robin(cx6_engine, atc_setup.buffers, msg, rounds);
    const GdrTransfer e =
        run_round_robin(emtt_engine, emtt_setup.buffers, msg, rounds);
    const double pages = static_cast<double>(msg) / kPage4K *
                         kConnections * rounds;
    print_row({format_bytes(msg), fmt(a.gbps, 1),
               fmt(100.0 * static_cast<double>(a.atc_misses) / pages, 1),
               fmt(100.0 * static_cast<double>(a.iotlb_misses) / pages, 1),
               fmt(e.gbps, 1)});
  }
  std::printf(
      "\nATC capacity 8192 pages (32 MiB across 16 conns -> cliff at 2 MiB\n"
      "messages); IOTLB 64k pages (256 MiB -> second cliff at 16-32 MiB).\n");
  return 0;
}
