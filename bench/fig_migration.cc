// Control-plane robustness bench: vStellar backend hot-upgrade and VM live
// migration (the fig06-style companion for the control plane).
//
// Three measurements, all byte-deterministic:
//  A. Host-level live migration sweep — pause/copy/resume of a RunD
//     container (with a vStellar device, registered MRs and connected QPs)
//     onto a second StellarHost. Reports pre-copy time, guest-visible
//     downtime (sub-second by design: the destination resumes on a
//     pre-warmed microvm shell and re-pins through the Map Cache cold
//     path), re-pinned bytes, and the snapshot digest.
//  B. Backend hot-upgrade under load — an AllReduce keeps running while
//     every RNIC backend is quiesced, serialized, torn down and rebuilt
//     from its snapshot; in-flight packets are recovered by the 250 us RTO
//     path. Reports completion overhead vs clean and the goodput dip.
//  C. Hypervisor hot-upgrade — per-VM snapshot/restore with the virtio
//     control queues parked; asserts the round trip is byte-identical.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/allreduce.h"
#include "core/migration.h"
#include "core/stellar.h"
#include "fault/telemetry.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

// -- A. host-level live migration ------------------------------------------

struct MigrationRow {
  std::uint64_t gib = 0;
  MigrationReport report;
};

MigrationRow one_migration(std::uint64_t gib) {
  StellarHostConfig hc;
  StellarHost source(hc);
  StellarHost destination(hc);

  RundContainer src(/*id=*/7, "train-src", gib << 30);
  RundContainer dst(/*id=*/7, "train-dst", gib << 30);
  STELLAR_CHECK_OK(source.boot(src).status(), "source boot failed");

  auto dev = source.create_vstellar_device(src, /*rnic_index=*/0);
  STELLAR_CHECK_OK(dev.status(), "device create failed");

  // A training-like footprint: four host-DRAM MRs (gradient buckets) and
  // one HBM MR, with a few connected QPs.
  std::vector<MrKey> mrs;
  for (int i = 0; i < 4; ++i) {
    auto gpa = src.alloc(64_MiB, kPage2M);
    STELLAR_CHECK_OK(gpa.status(), "guest alloc failed");
    auto mr = dev.value()->register_memory(Gva{0x10000000ull + (i << 28)},
                                           64_MiB, MemoryOwner::kHostDram,
                                           gpa.value().value());
    STELLAR_CHECK_OK(mr.status(), "register_memory failed");
    mrs.push_back(mr.value().key);
  }
  auto hbm = dev.value()->register_memory(Gva{0x7f0000000ull}, 128_MiB,
                                          MemoryOwner::kGpuHbm, 0, 0);
  STELLAR_CHECK_OK(hbm.status(), "HBM register failed");

  for (int q = 0; q < 3; ++q) {
    auto qp = dev.value()->create_qp();
    STELLAR_CHECK_OK(qp.status(), "create_qp failed");
    STELLAR_CHECK_OK(
        dev.value()->connect_qp(qp.value(), /*remote_qp=*/100 + q),
        "connect_qp failed");
  }

  auto report = migrate_vm(source, destination, src, dst);
  STELLAR_CHECK_OK(report.status(), "migration failed");

  // The guest must be fully usable at the destination: same keys, PD check
  // passes, GDR path intact.
  auto moved = destination.devices_for_vm(7);
  STELLAR_CHECK(moved.size() == 1, "device missing at destination");
  for (MrKey key : mrs) {
    STELLAR_CHECK(moved[0]->memory_records().count(key) == 1,
                  "MR key lost in migration");
  }
  return MigrationRow{gib, report.value()};
}

// -- B. backend hot-upgrade under AllReduce --------------------------------

struct UpgradeTrial {
  double seconds = 0.0;
  bool completed = false;
  double goodput_dip = 1.0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t quiesce_drops = 0;
  std::uint64_t retransmits = 0;
};

UpgradeTrial upgrade_trial(bool upgrade_mid_run) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 8;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 8;
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);

  std::vector<EndpointId> ranks;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ranks.push_back(fabric.endpoint(i % 2, i / 2, 0, 0));
  }
  AllReduceConfig cfg;
  cfg.data_bytes = 32_MiB;
  cfg.transport.algo = MultipathAlgo::kObs;
  cfg.transport.num_paths = 16;
  RingAllReduce ar(fleet, ranks, cfg);

  FaultTelemetry telemetry;
  fleet.for_each_engine(
      [&](RdmaEngine& engine) { telemetry.watch_engine(&engine); });
  telemetry.attach(sim, SimTime::micros(50));

  UpgradeTrial out;
  ar.start([&] { out.completed = true; });

  if (upgrade_mid_run) {
    // Quarter of the clean duration in: quiesce + snapshot-restart every
    // backend. Packets in flight across the window are lost and recovered
    // by the RTO path.
    sim.schedule_at(SimTime::micros(400), [&] {
      fleet.for_each_engine([&](RdmaEngine& engine) {
        engine.quiesce(SimTime::micros(30));
        auto snap = engine.hot_restart();
        STELLAR_CHECK_OK(snap.status(), "hot_restart failed");
        out.snapshot_bytes += snap.value().size();
      });
    });
  }

  sim.run_until(SimTime::millis(400));
  STELLAR_CHECK_OK(ar.status(), "AllReduce errored");
  STELLAR_CHECK(out.completed, "AllReduce stalled");
  out.seconds = ar.last_duration().sec();
  out.retransmits = ar.total_retransmits();
  fleet.for_each_engine([&](RdmaEngine& engine) {
    out.quiesce_drops += engine.quiesce_drops();
  });
  for (const auto& a : telemetry.analyze()) out.goodput_dip = a.goodput_dip;
  engine_meter().add(sim);
  return out;
}

// -- C. hypervisor hot-upgrade ---------------------------------------------

struct HypUpgradeRow {
  Hypervisor::HotUpgradeReport report;
  std::size_t devices = 0;
};

HypUpgradeRow hypervisor_upgrade() {
  StellarHost host;
  std::vector<std::unique_ptr<RundContainer>> containers;
  for (VmId vm = 1; vm <= 4; ++vm) {
    containers.push_back(std::make_unique<RundContainer>(
        vm, "vm" + std::to_string(vm), 16ull << 30));
    STELLAR_CHECK_OK(host.boot(*containers.back()).status(), "boot failed");
    auto dev = host.create_vstellar_device(*containers.back(), vm % 4);
    STELLAR_CHECK_OK(dev.status(), "device create failed");
    // Distinct guest-physical layouts so the VMs' pinned blocks land on
    // disjoint IOMMU ranges.
    containers.back()->set_alloc_cursor(vm * (1ull << 30));
    auto gpa = containers.back()->alloc(32_MiB, kPage2M);
    STELLAR_CHECK_OK(gpa.status(), "alloc failed");
    auto mr = dev.value()->register_memory(Gva{0x20000000}, 32_MiB,
                                           MemoryOwner::kHostDram,
                                           gpa.value().value());
    STELLAR_CHECK_OK(mr.status(), "register failed");
  }
  auto report = host.hypervisor().hot_upgrade();
  STELLAR_CHECK_OK(report.status(), "hot_upgrade failed");
  return HypUpgradeRow{report.value(), host.vstellar_device_count()};
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "migration");
  engine_meter();
  print_header(
      "Control-plane robustness - VM live migration + backend hot-upgrade\n"
      "paper: vStellar's paravirt control path makes the backend a process\n"
      "that can be swapped or moved without guest cooperation");

  JsonResult json("migration");

  std::printf("\n--- A. live migration (pause/copy/resume, 100 Gbps stream) ---\n");
  print_row({"memory", "precopy ms", "downtime ms", "rounds", "repin MiB",
             "mrs", "qps", "digest"},
            12);
  for (std::uint64_t gib : {16ull, 32ull, 64ull}) {
    const MigrationRow row = one_migration(gib);
    const MigrationReport& r = row.report;
    print_row({std::to_string(gib) + " GiB", fmt(r.precopy_time.sec() * 1e3, 1),
               fmt(r.downtime.sec() * 1e3, 1),
               std::to_string(r.precopy_rounds),
               fmt(static_cast<double>(r.repinned_bytes) / (1 << 20), 0),
               std::to_string(r.mrs), std::to_string(r.qps),
               r.digest.substr(0, 8)},
              12);
    json.add_row(
        {{"part", jstr("live_migration")},
         {"memory_gib", jint(static_cast<long long>(row.gib))},
         {"precopy_ms", jnum(r.precopy_time.sec() * 1e3, 4)},
         {"downtime_ms", jnum(r.downtime.sec() * 1e3, 4)},
         {"precopy_rounds", jint(r.precopy_rounds)},
         {"chunks_final", jint(static_cast<long long>(r.chunks_final))},
         {"snapshot_bytes", jint(static_cast<long long>(r.snapshot_bytes))},
         {"repinned_bytes", jint(static_cast<long long>(r.repinned_bytes))},
         {"mrs", jint(static_cast<long long>(r.mrs))},
         {"qps", jint(static_cast<long long>(r.qps))},
         {"digest", jstr(r.digest)}});
  }

  std::printf("\n--- B. backend hot-upgrade mid-AllReduce (16 ranks, 32 MiB) ---\n");
  const UpgradeTrial clean = upgrade_trial(false);
  const UpgradeTrial upgraded = upgrade_trial(true);
  const double overhead =
      clean.seconds > 0.0 ? 100.0 * (upgraded.seconds / clean.seconds - 1.0)
                          : 0.0;
  print_row({"run", "ms", "overhead", "dip", "drops", "retx", "snap KiB"}, 12);
  print_row({"clean", fmt(clean.seconds * 1e3, 2), "-",
             fmt(clean.goodput_dip, 2), "0",
             std::to_string(clean.retransmits), "-"},
            12);
  print_row({"hot-upgrade", fmt(upgraded.seconds * 1e3, 2),
             fmt(overhead, 1) + "%", fmt(upgraded.goodput_dip, 2),
             std::to_string(upgraded.quiesce_drops),
             std::to_string(upgraded.retransmits),
             fmt(static_cast<double>(upgraded.snapshot_bytes) / 1024, 1)},
            12);
  json.add_row(
      {{"part", jstr("hot_upgrade_allreduce")},
       {"clean_ms", jnum(clean.seconds * 1e3, 4)},
       {"upgraded_ms", jnum(upgraded.seconds * 1e3, 4)},
       {"overhead_pct", jnum(overhead, 2)},
       {"goodput_dip", jnum(upgraded.goodput_dip, 4)},
       {"quiesce_drops", jint(static_cast<long long>(upgraded.quiesce_drops))},
       {"retransmits", jint(static_cast<long long>(upgraded.retransmits))},
       {"snapshot_bytes",
        jint(static_cast<long long>(upgraded.snapshot_bytes))}});

  std::printf("\n--- C. hypervisor hot-upgrade (4 VMs, virtio parked) ---\n");
  const HypUpgradeRow hyp = hypervisor_upgrade();
  print_row({"vms", "devices", "snap KiB", "roundtrip", "stalled"}, 12);
  print_row({std::to_string(hyp.report.vms), std::to_string(hyp.devices),
             fmt(static_cast<double>(hyp.report.snapshot_bytes) / 1024, 1),
             hyp.report.roundtrip_identical ? "identical" : "DIVERGED",
             std::to_string(hyp.report.stalled_commands)},
            12);
  json.add_row(
      {{"part", jstr("hypervisor_hot_upgrade")},
       {"vms", jint(static_cast<long long>(hyp.report.vms))},
       {"snapshot_bytes",
        jint(static_cast<long long>(hyp.report.snapshot_bytes))},
       {"roundtrip_identical", hyp.report.roundtrip_identical ? "true"
                                                              : "false"},
       {"stalled_commands",
        jint(static_cast<long long>(hyp.report.stalled_commands))}});

  json.write();
  std::printf(
      "\nReading: downtime is dominated by the per-GiB resume overhead and\n"
      "stays sub-second for training pods; MR keys and QP numbers survive\n"
      "the move verbatim, and host-DRAM working sets re-pin lazily at the\n"
      "destination (Map Cache cold path). The backend swap under load costs\n"
      "roughly one quiesce window + one RTO of goodput.\n");
  engine_meter().report();
  return 0;
}
