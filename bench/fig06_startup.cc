// Figure 6: GPU pod start-up time vs container memory, with and without
// PVDMA, plus the §4 device-provisioning comparison (VF vs vStellar).
//
// Paper reference points: pinning a 1.6 TB container takes ~390 s; with
// PVDMA boot stays below ~20 s at every size, and the 160 GB -> 1.6 TB
// growth (~11 s) is general hypervisor overhead, not pinning.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "virt/hypervisor.h"
#include "virt/runtime.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

Hypervisor::BootReport boot_once(bool pvdma, std::uint64_t mem) {
  HostPcieConfig pc;
  pc.main_memory_bytes = 4ull << 40;
  HostPcie pcie(pc);
  HypervisorConfig hc;
  hc.use_pvdma = pvdma;
  Hypervisor hyp(pcie, hc);
  RundContainer container(1, "pod", mem);
  return hyp.boot_container(container).value();
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig06");
  print_header(
      "Figure 6 - GPU pod startup time (s) vs container memory\n"
      "paper: w/o PVDMA grows to ~390s+ at 1.6TB; with PVDMA <20s flat");

  print_row({"memory", "w/o PVDMA", "with PVDMA", "speedup", "pin share"});
  const std::uint64_t sizes[] = {16_GiB, 64_GiB, 160_GiB, 640_GiB,
                                 1600ull * 1_GiB};
  for (std::uint64_t mem : sizes) {
    const auto base = boot_once(false, mem);
    const auto pvdma = boot_once(true, mem);
    print_row({format_bytes(mem), fmt(base.total.sec(), 1),
               fmt(pvdma.total.sec(), 1),
               fmt(base.total.sec() / pvdma.total.sec(), 1) + "x",
               fmt(100.0 * base.pin_time.sec() / base.total.sec(), 1) + "%"});
  }

  print_header(
      "Aux (Section 4) - virtual device provisioning: SR-IOV VF vs vStellar");
  print_row({"mode", "provision(s)", "per-device mem", "GDR LUT slot"});
  RnicConfig rnic;
  print_row({"SR-IOV VF",
             fmt((rnic.vf_reset_time + rnic.vf_create_time).sec(), 1),
             format_bytes(rnic.vf_memory_overhead), "1 per VF"});
  print_row({"vStellar", fmt(rnic.sf_create_time.sec(), 1),
             format_bytes(kPage4K) + " (doorbell)", "0 (shares PF)"});
  std::printf(
      "\nvStellar devices per RNIC: up to %u (doorbell-BAR bound), matching\n"
      "the paper's 64k virtual devices claim; device creation %0.1fs matches\n"
      "MasQ.\n",
      rnic.max_virtual_devices, rnic.sf_create_time.sec());
  return 0;
}
