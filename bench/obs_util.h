// Observability wiring for the figure benches: an RAII scope that installs
// an ObsHub for the duration of a run and, when --trace is passed, dumps
// the sim-time trace + a metrics snapshot on exit.
//
// Flags (parsed from argv; unknown flags are ignored so each bench keeps
// its own positional arguments):
//   --trace[=path]     dump Chrome trace-event JSON (default: trace.json)
//                      plus BENCH_<name>_obs.json with the metrics snapshot
//   --trace-sample=N   keep 1 of every N trace events per category
//   --trace-cats=a,b   only trace the listed categories (see trace.h);
//                      metrics are always collected in full
//
// With -DSTELLAR_TRACE=OFF the probes are compiled out of the libraries;
// passing --trace then warns and produces empty output rather than lying.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/obs.h"
#include "sim/hybrid.h"

namespace stellar::bench {

/// Emit every fluid/packet mode span of a HybridDriver into the tracer's
/// kSim category, so traces show the fast-forwarded regions and
/// tools/trace_summarize can report the % of sim time spent in fluid mode.
/// The sim layer itself stays obs-free; this is the bench-side bridge.
inline void attach_fluid_spans(HybridDriver& driver) {
  driver.set_span_hook([](std::uint32_t region, RegionMode mode, SimTime begin,
                          SimTime end) {
    (void)region;
    (void)mode;
    (void)begin;
    (void)end;
    STELLAR_TRACE_ONLY(obs::complete(
        obs::TraceCat::kSim,
        mode == RegionMode::kFluid ? "fluid_epoch" : "packet_epoch", begin,
        end - begin,
        obs::TraceArgs{"region", static_cast<std::int64_t>(region)});)
  });
}

/// Positional scale argument (argv[1]-style) that ignores --flags, so
/// `fig09 0.1 --trace` and `fig09 --trace 0.1` both work.
inline double scale_arg(int argc, char** argv, double def = 1.0) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) continue;
    const double v = std::atof(argv[i]);
    if (v > 0.0) return v;
  }
  return def;
}

class ObsScope {
 public:
  ObsScope(int argc, char** argv, std::string bench)
      : bench_(std::move(bench)) {
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--trace") == 0) {
        enabled_ = true;
      } else if (std::strncmp(a, "--trace=", 8) == 0) {
        enabled_ = true;
        path_ = a + 8;
      } else if (std::strncmp(a, "--trace-sample=", 15) == 0) {
        sample_ = static_cast<std::uint32_t>(std::atoi(a + 15));
      } else if (std::strncmp(a, "--trace-cats=", 13) == 0) {
        cats_ = a + 13;
      }
    }
    if (!enabled_) return;
    if (!STELLAR_TRACE_ENABLED) {
      std::fprintf(stderr,
                   "warning: --trace requested but this binary was built "
                   "with -DSTELLAR_TRACE=OFF; no events will be recorded\n");
    }
    hub_ = new obs::ObsHub();
    if (sample_ > 1) {
      for (int c = 0; c < obs::kTraceCats; ++c) {
        hub_->tracer().set_sample_period(static_cast<obs::TraceCat>(c),
                                         sample_);
      }
    }
    if (!cats_.empty() && !hub_->tracer().set_category_filter(cats_)) {
      std::fprintf(stderr, "warning: --trace-cats=%s has unknown categories\n",
                   cats_.c_str());
    }
    prev_ = obs::install_hub(hub_);
  }

  ~ObsScope() {
    if (hub_ == nullptr) return;
    obs::install_hub(prev_);
    if (!hub_->tracer().write_json(path_)) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
    } else {
      std::printf("[obs] wrote %s (%zu events, %llu sampled out)\n",
                  path_.c_str(), hub_->tracer().event_count(),
                  static_cast<unsigned long long>(
                      hub_->tracer().dropped_by_sampling()));
    }
    const std::string mpath = "BENCH_" + bench_ + "_obs.json";
    std::FILE* f = std::fopen(mpath.c_str(), "wb");
    if (f != nullptr) {
      const std::string body = hub_->metrics().to_json();
      std::fwrite(body.data(), 1, body.size(), f);
      std::fclose(f);
      std::printf("[obs] wrote %s (%zu series)\n", mpath.c_str(),
                  hub_->metrics().size());
    }
    delete hub_;
  }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

  bool enabled() const { return hub_ != nullptr; }

  /// Give clockless layers (PVDMA/ATC/MTT/GDR) trace timestamps from this
  /// simulator. Benches that build several sequential Simulators call this
  /// per run; pass nullptr when the simulator dies.
  void set_clock(const Simulator* sim) {
    if (hub_ != nullptr) hub_->set_clock(sim);
  }

  obs::ObsHub* hub() { return hub_; }

 private:
  std::string bench_;
  std::string path_ = "trace.json";
  std::string cats_;
  std::uint32_t sample_ = 1;
  bool enabled_ = false;
  obs::ObsHub* hub_ = nullptr;
  obs::ObsHub* prev_ = nullptr;
};

}  // namespace stellar::bench
