// Figure 14: GDR write throughput — vStellar (eMTT) vs HyV/MasQ
// (RC-routed P2P) vs bare-metal Stellar, across message sizes.
//
// Paper: HyV/MasQ tops out at ~141 Gbps (~36% of vStellar's 393 Gbps)
// because their GDR traffic detours through the PCIe Root Complex;
// vStellar and bare-metal Stellar are indistinguishable.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "core/stellar.h"

using namespace stellar;
using namespace stellar::bench;

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig14");
  print_header(
      "Figure 14 - GDR write throughput (Gbps) vs message size\n"
      "paper: vStellar ~393, HyV/MasQ ~141 (36%), bare-metal == vStellar");

  StellarHostConfig cfg;
  cfg.pcie.main_memory_bytes = 64_GiB;
  cfg.pcie.rc_p2p_bandwidth = Bandwidth::gbps(145);
  StellarHost host(cfg);

  // Map an IOMMU window for the RC-routed (HyV/MasQ) path: it carries
  // untranslated GPA addresses.
  const IoVa gpu_window{1ull << 40};
  (void)host.pcie().iommu().map(gpu_window, host.gpu_bar(0).base, 1_GiB);

  GdrEngine emtt = host.make_gdr_engine(GdrMode::kEmtt, 0);
  GdrEngine rc = host.make_gdr_engine(GdrMode::kRcRouted, 0);
  GdrEngine bare = host.make_gdr_engine(GdrMode::kEmtt, 0);

  // eMTT transfers carry the final HPA (the GPU BAR); the RC-routed
  // baseline carries the untranslated device address.
  const IoVa gpu_hpa{host.gpu_bar(0).base.value()};
  print_row({"msg size", "vStellar", "HyV/MasQ", "bare-metal", "MasQ/vStlr"});
  for (std::uint64_t msg : {256_KiB, 1_MiB, 4_MiB, 16_MiB, 64_MiB}) {
    const GdrTransfer e = emtt.transfer(gpu_hpa, msg);
    const GdrTransfer r = rc.transfer(gpu_window, msg);
    const GdrTransfer b = bare.transfer(gpu_hpa, msg);
    print_row({format_bytes(msg), fmt(e.gbps, 1), fmt(r.gbps, 1),
               fmt(b.gbps, 1), fmt(100.0 * r.gbps / e.gbps, 1) + "%"});
  }
  return 0;
}
