// Auxiliary reproductions of the §3.1 operational problems that motivate
// Stellar's architecture (no figure number in the paper — these are the
// war stories of Problems 4 and 5) plus the §7.1 monitoring argument:
//
//  (4) conflicting PCIe fabric settings: ATS vs iommu=pt on the affected
//      server model, and what each escape hatch costs;
//  (5) RNIC vSwitch interference: RDMA lookup latency as a function of
//      foreign TCP rules installed ahead of it;
//  (7.1) path observability: RNIC-side spraying keeps the path id in the
//      packet, so a receiver can attribute load per path — switch-side
//      adaptive routing cannot.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/fleet.h"
#include "rnic/vswitch.h"
#include "virt/virtio_net.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

void problem4() {
  print_header(
      "Problem 4 - conflicting PCIe settings on the affected server model\n"
      "(baseline stack; Stellar's eMTT+SF needs neither ATS nor pt)");
  print_row({"config", "valid?", "GDR?", "host TCP Gbps"}, 18);
  struct Case {
    const char* name;
    IommuMode mode;
    bool ats;
  };
  const Case cases[] = {
      {"pt + ATS", IommuMode::kPassthrough, true},
      {"pt, no ATS", IommuMode::kPassthrough, false},
      {"nopt + ATS", IommuMode::kNoPassthrough, true},
  };
  for (const Case& c : cases) {
    HostPlatformConfig cfg;
    cfg.iommu_mode = c.mode;
    cfg.ats_enabled = c.ats;
    const Status valid = validate_platform(cfg);
    print_row({c.name, valid.is_ok() ? "yes" : "NO",
               valid.is_ok() && baseline_gdr_possible(cfg) ? "yes" : "no",
               valid.is_ok() ? fmt(host_tcp_throughput(cfg).as_gbps(), 0)
                             : "-"},
              18);
  }
  std::printf(
      "\nProduction had to pick 'nopt + ATS' to keep GDR, eating the host\n"
      "TCP regression; with Stellar both GDR (eMTT) and TCP (SF/vDPA) are\n"
      "independent of these settings.\n");
}

void problem5() {
  print_header(
      "Problem 5 - vSwitch steering interference: RDMA rule lookup latency\n"
      "vs foreign TCP rules installed ahead of it");
  print_row({"TCP rules ahead", "RDMA lookup", "TCP lookup"}, 18);
  for (std::size_t tcp_rules : {0, 64, 256, 1024}) {
    VSwitch vsw;
    for (std::size_t i = 0; i < tcp_rules; ++i) {
      (void)vsw.add_rule({i, TrafficClass::kTcp, /*tenant=*/1, true, 1, 1});
    }
    (void)vsw.add_rule({9999, TrafficClass::kRdma, /*tenant=*/2, false, 1, 1});
    (void)vsw.add_rule({9998, TrafficClass::kTcp, /*tenant=*/2, true, 1, 1});
    auto rdma = vsw.lookup(TrafficClass::kRdma, 2);
    auto tcp = vsw.lookup(TrafficClass::kTcp,
                          tcp_rules > 0 ? 1 : 2);  // first-match TCP rule
    print_row({std::to_string(tcp_rules),
               rdma.is_ok() ? rdma.value().latency.to_string() : "-",
               tcp.is_ok() ? tcp.value().latency.to_string() : "-"},
              18);
  }
  std::printf(
      "\nOne tenant's TCP churn linearly inflates another tenant's RDMA\n"
      "lookup latency. Stellar removes RDMA from this pipeline entirely.\n");
}

void monitoring() {
  print_header(
      "Section 7.1 - path observability under RNIC-side spraying\n"
      "(per-path packet counts reconstructed at the receiver)");
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 2;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 16;
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);
  TransportConfig t;
  t.algo = MultipathAlgo::kObs;
  t.num_paths = 128;
  auto conn = fleet.connect(fabric.endpoint(0, 0, 0, 0),
                            fabric.endpoint(1, 0, 0, 0), t);
  conn.value()->post_write(64_MiB);
  sim.run();
  engine_meter().add(sim);
  const auto& hist = fleet.at(fabric.endpoint(1, 0, 0, 0)).rx_path_histogram();
  std::uint64_t total = 0, max_count = 0, min_count = ~0ull;
  for (const auto& [path, count] : hist) {
    total += count;
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  std::printf(
      "paths observed: %zu / 128, packets attributed: %llu (100%% of the\n"
      "transfer), per-path min/max: %llu/%llu\n",
      hist.size(), static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(min_count),
      static_cast<unsigned long long>(max_count));
  std::printf(
      "Every packet carries its sender-chosen path id, so diagnostics can\n"
      "localize a misbehaving path — impossible with switch-side AR, where\n"
      "identical headers take different paths invisibly.\n");
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "aux");
  engine_meter();  // start the engine wall clock
  problem4();
  problem5();
  monitoring();
  engine_meter().report();
  return 0;
}
