// Shared helpers for the figure-reproduction benches: consistent table
// printing so bench output can be diffed against EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace stellar::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace stellar::bench
