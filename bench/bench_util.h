// Shared helpers for the figure-reproduction benches: consistent table
// printing so bench output can be diffed against EXPERIMENTS.md, plus a
// minimal JSON result writer so tooling can consume runs without scraping
// the tables.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/hybrid.h"
#include "sim/parallel.h"
#include "sim/simulator.h"

namespace stellar::bench {

// -- Fidelity selection -------------------------------------------------------
//
// --fidelity={packet,fluid,hybrid} picks the simulation engine for benches
// that support the hybrid fidelity driver (fig09/fig12/fig15_16):
//   packet  per-packet reference engine (the default; byte-identical to
//           builds without the driver attached)
//   hybrid  fluid fast-forward of stable epochs with packet-level zoom over
//           the measured window (docs/HYBRID.md)
//   fluid   flow-level everywhere triggers allow; forced zooms promote back
//           after one epoch

enum class Fidelity { kPacket, kFluid, kHybrid };

inline const char* fidelity_name(Fidelity f) {
  switch (f) {
    case Fidelity::kPacket: return "packet";
    case Fidelity::kFluid: return "fluid";
    case Fidelity::kHybrid: return "hybrid";
  }
  return "?";
}

inline Fidelity fidelity_arg(int argc, char** argv,
                             Fidelity def = Fidelity::kPacket) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fidelity=", 11) == 0) {
      const char* v = argv[i] + 11;
      if (std::strcmp(v, "packet") == 0) return Fidelity::kPacket;
      if (std::strcmp(v, "fluid") == 0) return Fidelity::kFluid;
      if (std::strcmp(v, "hybrid") == 0) return Fidelity::kHybrid;
      std::fprintf(stderr,
                   "warning: unknown --fidelity=%s "
                   "(want packet|fluid|hybrid); using packet\n",
                   v);
    }
  }
  return def;
}

/// Build the driver for the requested fidelity — nullptr for packet, so the
/// packet path stays exactly the no-driver build. Must be called before any
/// RdmaEngine is constructed on `fabric` and destroyed after all of them.
inline std::unique_ptr<HybridDriver> make_fidelity_driver(Simulator& sim,
                                                          ClosFabric& fabric,
                                                          Fidelity f) {
  if (f == Fidelity::kPacket) return nullptr;
  HybridConfig hc;
  if (f == Fidelity::kFluid) hc.poll_triggers = false;
  return std::make_unique<HybridDriver>(sim, fabric, hc);
}

/// --threads=N flag shared by every simulator-driving bench: the worker
/// count for run-level sharding (core/run_shard.h) or the parallel engine
/// (sim/parallel.h). 1 (the default) is the single-threaded reference
/// path; any N must produce byte-identical BENCH JSON and traces
/// (tools/ci_checks.sh diffs fig09-mini at 1 vs 4).
inline std::uint32_t threads_arg(int argc, char** argv,
                                 std::uint32_t def = 1) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const int v = std::atoi(argv[i] + 10);
      if (v >= 1) return static_cast<std::uint32_t>(v);
    }
  }
  return def;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// -- Engine throughput reporting ----------------------------------------------
//
// Every simulator-driving bench ends with one "[engine]" line: total events
// executed across all its Simulator instances, wall-clock, and events/sec.
// The wall clock starts at the first engine_meter() call, so touch the
// meter at the top of main() before running anything; each run() helper
// adds its drained Simulator just before the instance goes out of scope.

class EngineMeter {
 public:
  /// Per-shard attribution slots: RunSet workers land on their worker id,
  /// ShardedEngine shards on their shard id; slot 0 doubles as "no shard"
  /// for plain single-threaded runs.
  static constexpr std::size_t kMaxSlots = 64;

  EngineMeter() : start_(std::chrono::steady_clock::now()) {}

  /// Fold one finished Simulator's executed-event count into the total.
  /// Thread-safe: RunSet worker jobs call this concurrently, and the
  /// events are attributed to the calling worker's shard slot.
  void add(const Simulator& sim) {
    const int w = RunSet::current_worker();
    add_shard(w > 0 ? static_cast<std::uint32_t>(w) : 0,
              sim.executed_events());
    runs_.fetch_add(1, std::memory_order_relaxed);
    if (w > 0) sharded_.store(true, std::memory_order_relaxed);
  }

  /// Fold a ShardedEngine run with per-shard attribution.
  void add(const ShardedEngine& engine) {
    for (std::uint32_t s = 0; s < engine.shards(); ++s) {
      add_shard(s, engine.shard_executed(s));
    }
    runs_.fetch_add(1, std::memory_order_relaxed);
    if (engine.shards() > 1) sharded_.store(true, std::memory_order_relaxed);
  }

  /// Attribute `events` executed events to `shard`.
  void add_shard(std::uint32_t shard, std::uint64_t events) {
    events_.fetch_add(events, std::memory_order_relaxed);
    shard_events_[shard < kMaxSlots ? shard : kMaxSlots - 1].fetch_add(
        events, std::memory_order_relaxed);
  }

  std::uint64_t events() const {
    return events_.load(std::memory_order_relaxed);
  }
  std::uint64_t shard_events(std::uint32_t shard) const {
    return shard < kMaxSlots
               ? shard_events_[shard].load(std::memory_order_relaxed)
               : 0;
  }
  double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double events_per_sec() const {
    const double w = wall_seconds();
    return w > 0.0 ? static_cast<double>(events()) / w : 0.0;
  }

  /// Aggregate "[engine]" line, plus per-shard events/s lines whenever
  /// more than one shard/worker contributed.
  void report() const {
    const double wall = wall_seconds();
    std::printf(
        "\n[engine] %llu simulator runs, %llu events, %.2f s wall, "
        "%.2f M events/s aggregate\n",
        static_cast<unsigned long long>(
            runs_.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(events()), wall,
        events_per_sec() / 1e6);
    if (!sharded_.load(std::memory_order_relaxed)) return;
    for (std::size_t s = 0; s < kMaxSlots; ++s) {
      const std::uint64_t ev =
          shard_events_[s].load(std::memory_order_relaxed);
      if (ev == 0) continue;
      std::printf("[engine]   shard %2zu: %llu events, %.2f M events/s\n", s,
                  static_cast<unsigned long long>(ev),
                  wall > 0.0 ? static_cast<double>(ev) / wall / 1e6 : 0.0);
    }
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> runs_{0};
  std::atomic<bool> sharded_{false};
  std::atomic<std::uint64_t> shard_events_[kMaxSlots] = {};
};

/// Process-wide meter: benches call this once at the top of main() (to start
/// the wall clock) and add() each Simulator when its run completes.
inline EngineMeter& engine_meter() {
  static EngineMeter meter;
  return meter;
}

// -- JSON result emission -----------------------------------------------------
//
// Each bench that wants machine-readable output collects flat rows of
// (key, value-fragment) pairs and writes one BENCH_<name>.json file next to
// its working directory. Values are raw JSON fragments: use jstr()/jnum()/
// jint() to build them, so quoting and formatting stay consistent.

inline std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

inline std::string jnum(double v, int decimals = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string jint(long long v) { return std::to_string(v); }

class JsonResult {
 public:
  using Row = std::vector<std::pair<std::string, std::string>>;

  explicit JsonResult(std::string bench) : bench_(std::move(bench)) {}

  void add_row(Row row) { rows_.push_back(std::move(row)); }

  std::string to_string() const {
    std::string out = "{\n  \"bench\": " + jstr(bench_) + ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    {";
      for (std::size_t k = 0; k < rows_[i].size(); ++k) {
        if (k > 0) out += ", ";
        out += jstr(rows_[i][k].first) + ": " + rows_[i][k].second;
      }
      out += "}";
    }
    out += rows_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
  }

  /// Write BENCH_<name>.json (or an explicit path). Returns false and warns
  /// on stderr if the file cannot be written; the bench still succeeds.
  bool write(const std::string& path = "") const {
    const std::string target =
        path.empty() ? "BENCH_" + bench_ + ".json" : path;
    std::FILE* f = std::fopen(target.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", target.c_str());
      return false;
    }
    const std::string body = to_string();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("\n[json] wrote %s (%zu rows)\n", target.c_str(),
                rows_.size());
    return true;
  }

 private:
  std::string bench_;
  std::vector<Row> rows_;
};

}  // namespace stellar::bench
