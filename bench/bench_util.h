// Shared helpers for the figure-reproduction benches: consistent table
// printing so bench output can be diffed against EXPERIMENTS.md, plus a
// minimal JSON result writer so tooling can consume runs without scraping
// the tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace stellar::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// -- Engine throughput reporting ----------------------------------------------
//
// Every simulator-driving bench ends with one "[engine]" line: total events
// executed across all its Simulator instances, wall-clock, and events/sec.
// The wall clock starts at the first engine_meter() call, so touch the
// meter at the top of main() before running anything; each run() helper
// adds its drained Simulator just before the instance goes out of scope.

class EngineMeter {
 public:
  EngineMeter() : start_(std::chrono::steady_clock::now()) {}

  /// Fold one finished Simulator's executed-event count into the total.
  void add(const Simulator& sim) {
    events_ += sim.executed_events();
    ++runs_;
  }

  std::uint64_t events() const { return events_; }
  double wall_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double events_per_sec() const {
    const double w = wall_seconds();
    return w > 0.0 ? static_cast<double>(events_) / w : 0.0;
  }

  void report() const {
    std::printf(
        "\n[engine] %llu simulator runs, %llu events, %.2f s wall, "
        "%.2f M events/s\n",
        static_cast<unsigned long long>(runs_),
        static_cast<unsigned long long>(events_), wall_seconds(),
        events_per_sec() / 1e6);
  }

 private:
  std::chrono::steady_clock::time_point start_;
  std::uint64_t events_ = 0;
  std::uint64_t runs_ = 0;
};

/// Process-wide meter: benches call this once at the top of main() (to start
/// the wall clock) and add() each Simulator when its run completes.
inline EngineMeter& engine_meter() {
  static EngineMeter meter;
  return meter;
}

// -- JSON result emission -----------------------------------------------------
//
// Each bench that wants machine-readable output collects flat rows of
// (key, value-fragment) pairs and writes one BENCH_<name>.json file next to
// its working directory. Values are raw JSON fragments: use jstr()/jnum()/
// jint() to build them, so quoting and formatting stay consistent.

inline std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

inline std::string jnum(double v, int decimals = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string jint(long long v) { return std::to_string(v); }

class JsonResult {
 public:
  using Row = std::vector<std::pair<std::string, std::string>>;

  explicit JsonResult(std::string bench) : bench_(std::move(bench)) {}

  void add_row(Row row) { rows_.push_back(std::move(row)); }

  std::string to_string() const {
    std::string out = "{\n  \"bench\": " + jstr(bench_) + ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    {";
      for (std::size_t k = 0; k < rows_[i].size(); ++k) {
        if (k > 0) out += ", ";
        out += jstr(rows_[i][k].first) + ": " + rows_[i][k].second;
      }
      out += "}";
    }
    out += rows_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
  }

  /// Write BENCH_<name>.json (or an explicit path). Returns false and warns
  /// on stderr if the file cannot be written; the bench still succeeds.
  bool write(const std::string& path = "") const {
    const std::string target =
        path.empty() ? "BENCH_" + bench_ + ".json" : path;
    std::FILE* f = std::fopen(target.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", target.c_str());
      return false;
    }
    const std::string body = to_string();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("\n[json] wrote %s (%zu rows)\n", target.c_str(),
                rows_.size());
    return true;
  }

 private:
  std::string bench_;
  std::vector<Row> rows_;
};

}  // namespace stellar::bench
