// Figure 11b (companion): AllReduce under HARD failures — a ToR uplink cut
// mid-run and a whole aggregation switch dying mid-run — driven by the
// fault-injection framework, with detection/recovery telemetry.
//
// Paper (§7.2): packet spraying plus RTO-driven rerouting and path
// blacklisting make a hard failure cost roughly one RTO: the sprayed
// algorithms complete within a few percent of the fault-free time, while a
// single-path connection pinned to the dead device either crawls or moves
// its QP to the error state (fail fast) instead of hanging.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/allreduce.h"
#include "core/run_shard.h"
#include "fault/fault.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

constexpr std::uint32_t kFaultAgg = 3;  // the device that dies

struct Trial {
  double seconds = 0.0;
  bool completed = false;
  std::string status = "OK";
  std::uint64_t probes_sent = 0;
  std::uint64_t paths_reinstated = 0;
  bool detected = false;
  double detect_us = 0.0;
  bool recovered = false;
  double recover_us = 0.0;
  double goodput_dip = 1.0;
};

Trial one_trial(MultipathAlgo algo, std::uint16_t paths,
                const std::string& scenario, SimTime inject_at) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 8;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 32;
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);

  std::vector<EndpointId> ranks;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ranks.push_back(fabric.endpoint(i % 2, i / 2, 0, 0));
  }
  AllReduceConfig cfg;
  cfg.data_bytes = 32_MiB;
  cfg.transport.algo = algo;
  cfg.transport.num_paths = paths;
  cfg.transport.max_retries = 32;  // fail fast instead of grinding forever
  RingAllReduce ar(fleet, ranks, cfg);

  FaultTelemetry telemetry;
  fleet.for_each_engine(
      [&](RdmaEngine& engine) { telemetry.watch_engine(&engine); });

  FaultInjector injector(sim, fabric, &telemetry);
  FaultPlan plan;
  plan.seed = 7;
  if (scenario == "link_down") {
    FaultEvent e;
    e.at = inject_at;
    e.kind = FaultKind::kLinkDown;
    e.label = "tor_uplink";
    e.link = {LinkLayer::kTorUp, 0, 0, 0, kFaultAgg};
    plan.events.push_back(e);
  } else if (scenario == "switch_down") {
    FaultEvent e;
    e.at = inject_at;
    e.kind = FaultKind::kSwitchDown;
    e.label = "agg_switch";
    e.sw.agg = kFaultAgg;
    plan.events.push_back(e);
  }
  STELLAR_CHECK_OK(injector.arm(plan), "fault plan rejected");
  telemetry.attach(sim, SimTime::micros(50));

  Trial out;
  ar.start([&] { out.completed = true; });
  sim.run_until(SimTime::millis(400));

  out.seconds = ar.last_duration().sec();
  if (!ar.status().is_ok()) {
    out.status = std::string("ERROR(") +
                 status_code_name(ar.status().code()) + ")";
  } else if (!out.completed) {
    out.status = "STALLED";
  }
  fleet.for_each_engine([&](RdmaEngine& engine) {
    for (const auto& conn : engine.connections()) {
      out.probes_sent += conn->probes_sent();
      out.paths_reinstated += conn->paths_reinstated();
    }
  });
  for (const auto& a : telemetry.analyze()) {
    out.detected = a.detected;
    out.detect_us = a.detect_latency.sec() * 1e6;
    out.recovered = a.recovered;
    out.recover_us = a.recover_latency.sec() * 1e6;
    out.goodput_dip = a.goodput_dip;
  }
  engine_meter().add(sim);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig11b");
  engine_meter();  // start the engine wall clock
  print_header(
      "Figure 11b - AllReduce under hard failures (one ToR uplink cut /\n"
      "one Agg switch dead, injected mid-run), 16-rank cross-segment ring\n"
      "paper: spraying turns a hard failure into ~one RTO of disturbance");

  struct Config {
    MultipathAlgo algo;
    std::uint16_t paths;
  };
  const Config configs[] = {{MultipathAlgo::kObs, 4},
                            {MultipathAlgo::kObs, 128},
                            {MultipathAlgo::kRoundRobin, 128},
                            {MultipathAlgo::kSinglePath, 128}};

  JsonResult json("fig11b");
  // Each (scenario, config) cell — a clean trial plus the fault trial whose
  // injection time derives from it — is one independent job; the 8 cells
  // shard across --threads=N workers (core/run_shard.h). Tables + JSON
  // emit after the merge, in sweep order — byte-identical output for every
  // thread count.
  const std::uint32_t threads = threads_arg(argc, argv);
  struct Cell {
    Trial clean;
    Trial fault;
  };
  const std::string scenarios[] = {"link_down", "switch_down"};
  std::vector<Cell> cells(2 * 4);
  ShardedRunSet runs(threads, cells.size());
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t k = 0; k < 4; ++k) {
      const std::string scenario = scenarios[s];
      const Config c = configs[k];
      Cell* slot = &cells[s * 4 + k];
      runs.add([scenario, c, slot] {
        slot->clean = one_trial(c.algo, c.paths, "none", SimTime::zero());
        // Inject a quarter of the way into the fault-free duration.
        const SimTime inject_at = SimTime::picos(
            static_cast<std::int64_t>(slot->clean.seconds * 1e12 / 4));
        slot->fault = one_trial(c.algo, c.paths, scenario, inject_at);
      });
    }
  }
  runs.execute();

  for (std::size_t s = 0; s < 2; ++s) {
    const std::string scenario = scenarios[s];
    std::printf("\n--- scenario: %s (agg %u) ---\n", scenario.c_str(),
                kFaultAgg);
    print_row({"algorithm", "paths", "clean ms", "fault ms", "overhead",
               "status", "detect us", "dip"},
              11);
    for (std::size_t k = 0; k < 4; ++k) {
      const Config& c = configs[k];
      const Trial& clean = cells[s * 4 + k].clean;
      const Trial& fault = cells[s * 4 + k].fault;
      const double overhead =
          clean.seconds > 0.0 && fault.status == "OK"
              ? 100.0 * (fault.seconds / clean.seconds - 1.0)
              : 0.0;
      print_row({multipath_algo_name(c.algo), std::to_string(c.paths),
                 fmt(clean.seconds * 1e3, 2), fmt(fault.seconds * 1e3, 2),
                 fault.status == "OK" ? fmt(overhead, 1) + "%" : "-",
                 fault.status,
                 fault.detected ? fmt(fault.detect_us, 0) : "-",
                 fmt(fault.goodput_dip, 2)},
                11);
      json.add_row(
          {{"scenario", jstr(scenario)},
           {"algorithm", jstr(multipath_algo_name(c.algo))},
           {"paths", jint(c.paths)},
           {"clean_ms", jnum(clean.seconds * 1e3, 4)},
           {"fault_ms", jnum(fault.seconds * 1e3, 4)},
           {"overhead_pct", jnum(overhead, 2)},
           {"status", jstr(fault.status)},
           {"detected", fault.detected ? "true" : "false"},
           {"detect_us", jnum(fault.detect_us, 1)},
           {"recovered", fault.recovered ? "true" : "false"},
           {"recover_us", jnum(fault.recover_us, 1)},
           {"goodput_dip", jnum(fault.goodput_dip, 4)},
           {"probes_sent", jint(static_cast<long long>(fault.probes_sent))},
           {"paths_reinstated",
            jint(static_cast<long long>(fault.paths_reinstated))}});
    }
  }
  json.write();

  std::printf(
      "\nReading: sprayed algorithms absorb both failures with percent-level\n"
      "overhead (one RTO to notice, blacklist steers around, probes\n"
      "reinstate nothing while the device stays dead). SinglePath rings\n"
      "whose hash lands on the dead device move the QP to the error state\n"
      "after the retry budget (status ERROR) instead of hanging - the\n"
      "fail-fast half of the recovery story.\n");
  engine_meter().report();
  return 0;
}
