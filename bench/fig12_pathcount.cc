// Figure 12: ToR uplink load imbalance vs number of paths per connection.
//
// Paper setup: RDMA bandwidth between two RNICs with 16 connections,
// sweeping 4..256 paths; imbalance = (max - min uplink load) / port
// bandwidth. Ideal balance is reached only around 128 paths — enough to
// cover all aggregation switches (60 in production, 16 here).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/fleet.h"
#include "core/run_shard.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

struct Imbalance {
  double max_min_delta_pct = 0;  // (max-min)/port bandwidth
  double cov_pct = 0;            // coefficient of variation of loads
};

Imbalance run(std::uint16_t paths, Fidelity fidelity) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 2;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 16;
  ClosFabric fabric(sim, fc);
  auto hybrid = make_fidelity_driver(sim, fabric, fidelity);
  if (hybrid != nullptr) attach_fluid_spans(*hybrid);
  EngineFleet fleet(sim, fabric);

  // Two RNICs (one per segment host 0), 16 connections between them.
  const EndpointId a = fabric.endpoint(0, 0, 0, 0);
  const EndpointId b = fabric.endpoint(1, 0, 0, 0);
  TransportConfig t;
  t.algo = MultipathAlgo::kObs;
  t.num_paths = paths;

  std::vector<RdmaConnection*> conns;
  for (int i = 0; i < 16; ++i) {
    conns.push_back(fleet.connect(a, b, t).value());
  }
  // Continuous streaming on all 16 connections.
  for (auto* c : conns) {
    auto repost = std::make_shared<std::function<void()>>();
    *repost = [c, repost] { c->post_write(512_KiB, *repost); };
    c->post_write(512_KiB, *repost);
  }

  // Hybrid: fluid fast-forward over the first half of the warmup, packet
  // zoom from there through the whole measured window — per-uplink
  // bytes_sent (the imbalance metric) only exists in packet mode.
  if (fidelity == Fidelity::kHybrid) {
    hybrid->request_zoom_window(SimTime::micros(500), SimTime::millis(5));
  }
  sim.run_until(SimTime::millis(1));  // warm up
  fabric.reset_stats();
  const SimTime window = SimTime::millis(4);
  sim.run_until(sim.now() + window);
  engine_meter().add(sim);

  double max_load = 0, min_load = 1e18, sum = 0, sum2 = 0;
  const auto uplinks = fabric.tor_uplinks(0, 0, 0);
  for (NetLink* l : uplinks) {
    const double gbps =
        static_cast<double>(l->bytes_sent()) * 8.0 / window.sec() / 1e9;
    max_load = std::max(max_load, gbps);
    min_load = std::min(min_load, gbps);
    sum += gbps;
    sum2 += gbps * gbps;
  }
  const double n = static_cast<double>(uplinks.size());
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  Imbalance out;
  // Paper metric: (max - min load) over the traffic actually offered to
  // the port group (normalizing by raw 400G port capacity would shrink
  // every number by the utilization factor without changing the shape).
  out.max_min_delta_pct = mean > 0
                              ? 100.0 * (max_load - min_load) / (mean * n)
                              : 0;
  out.cov_pct = mean > 0 ? 100.0 * std::sqrt(std::max(0.0, var)) / mean : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig12");
  engine_meter();  // start the engine wall clock
  print_header(
      "Figure 12 - ToR uplink imbalance vs paths per connection\n"
      "2 RNICs, 16 connections, 16 aggregation switches\n"
      "paper: balance becomes ideal only at >=128 paths");
  print_row({"paths", "max-min delta %", "load CoV %"});
  // Independent sweep points shard across --threads=N workers
  // (core/run_shard.h); printing happens after the merge, in sweep order,
  // so output is byte-identical for every thread count.
  const std::uint32_t threads = threads_arg(argc, argv);
  const Fidelity fidelity = fidelity_arg(argc, argv);
  std::printf("fidelity: %s\n", fidelity_name(fidelity));
  const std::vector<std::uint16_t> sweep = {4, 8, 16, 32, 64, 128, 256};
  std::vector<Imbalance> results(sweep.size());
  ShardedRunSet runs(threads, sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::uint16_t paths = sweep[i];
    Imbalance* slot = &results[i];
    runs.add([paths, slot, fidelity] { *slot = run(paths, fidelity); });
  }
  runs.execute();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    print_row({std::to_string(sweep[i]), fmt(results[i].max_min_delta_pct, 2),
               fmt(results[i].cov_pct, 1)});
  }
  engine_meter().report();
  return 0;
}
