// Figures 15 & 16: end-to-end LLM training performance.
//
// Method (hybrid measurement + model, as the substrate is a simulator):
//  1. measure effective AllReduce bandwidth on the packet-level fabric for
//     each (placement, transport) combination — reranked placement keeps
//     rings inside a segment; random ranking forces cross-segment rings;
//  2. feed the measured bandwidths into the analytic iteration-time model
//     (workload/llm.h) for the paper's parallel configurations.
//
// Paper: Fig 16a (reranked) Stellar ~0.72% faster than the CX7 baseline;
// Fig 16b (random) ~6% average, up to 14%. Fig 15: secure (vStellar) vs
// regular containers are indistinguishable on the same Stellar transport.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/allreduce.h"
#include "core/run_shard.h"
#include "workload/models.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

enum class Placement { kReranked, kRandom };

/// Measured per-GPU effective AllReduce bandwidth (Gbps) on the simulated
/// fabric for a given placement and transport. `endpoints` scales the
/// fabric (2 segments x endpoints/2 hosts; two rings of endpoints/2 ranks);
/// the default 32 reduces every index formula to the original fixed-size
/// bench, byte for byte.
double measure_allreduce_bw(Placement placement, MultipathAlgo algo,
                            std::uint16_t paths, std::uint32_t endpoints = 32,
                            Fidelity fidelity = Fidelity::kPacket,
                            SimTime control_path_tax = SimTime::zero()) {
  Simulator sim;
  const std::uint32_t hosts = endpoints / 2;
  const std::uint32_t ring = endpoints / 2;  // two rings cover all endpoints
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = hosts;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 16;
  // 1:1 ToR provisioning (200G uplinks matching 200G host ports): ECMP
  // hash collisions genuinely oversubscribe a link, which is what the
  // random-ranking placement exposes and packet spray avoids.
  fc.fabric_link.bandwidth = Bandwidth::gbps(200);
  ClosFabric fabric(sim, fc);
  auto hybrid = make_fidelity_driver(sim, fabric, fidelity);
  if (hybrid != nullptr) attach_fluid_spans(*hybrid);
  EngineFleet fleet(sim, fabric);

  // Two concurrent rings model co-scheduled tenants fighting for the
  // aggregation layer. Ring AllReduce is pure WRITE traffic, so under
  // --fidelity=hybrid/fluid the whole run fast-forwards flow-level: no
  // trigger ever forces a packet zoom, which is what buys the scale-up
  // wall-clock headroom (docs/HYBRID.md).
  auto ring_ranks = [&](std::uint32_t base) {
    std::vector<EndpointId> out;
    for (std::uint32_t i = 0; i < ring; ++i) {
      if (placement == Placement::kReranked) {
        // Reranking co-locates communicating ranks: ring/2 consecutive
        // ranks per segment, so only 2 ring hops cross the aggregation
        // layer.
        out.push_back(fabric.endpoint(
            i / (ring / 2), (base * (ring / 2) + i % (ring / 2)) % hosts, 0,
            0));
      } else {
        // Random ranking: every hop crosses segments.
        out.push_back(fabric.endpoint(
            i % 2, (base * (ring / 4) + i / 2) % hosts, 0, 0));
      }
    }
    return out;
  };

  AllReduceConfig cfg;
  cfg.data_bytes = 32_MiB;
  cfg.transport.algo = algo;
  cfg.transport.num_paths = paths;
  RingAllReduce ring_a(fleet, ring_ranks(0), cfg);
  RingAllReduce ring_b(fleet, ring_ranks(1), cfg);

  auto loop_b = std::make_shared<std::function<void()>>();
  *loop_b = [&ring_b, loop_b] { ring_b.start(*loop_b); };
  ring_b.start(*loop_b);

  double total = 0;
  int measured = 0;
  std::function<void()> chain = [&] {
    total += ring_a.bus_bandwidth_gbps();
    if (++measured < 3) ring_a.start(chain);
  };
  ring_a.start(chain);
  // ring_b loops forever; stop as soon as ring_a's three runs finish.
  while (measured < 3 && sim.now() < SimTime::millis(200)) {
    sim.run_until(sim.now() + SimTime::millis(1));
  }
  engine_meter().add(sim);
  double bw = measured > 0 ? total / measured : 0.0;
  // Secure containers add only the (per-iteration amortized) control-path
  // cost, which is ~zero relative to data-path time — Figure 15's result.
  (void)control_path_tax;
  return bw;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig15_16");
  engine_meter();  // start the engine wall clock
  // ---- Measure transport bandwidths under both placements -----------------
  // The four (placement, transport) measurements are independent
  // simulations, so they shard across --threads=N workers
  // (core/run_shard.h); everything downstream is closed-form on the merged
  // results, so output stays byte-identical for every thread count.
  const std::uint32_t threads = threads_arg(argc, argv);
  const Fidelity fidelity = fidelity_arg(argc, argv);
  // --endpoints=N scales the fabric/ring size (default 32 = the paper-shape
  // bench; the CI scale gate runs 256 to compare hybrid vs packet
  // wall-clock). Must be a multiple of 4.
  std::uint32_t endpoints = 32;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--endpoints=", 12) == 0) {
      const int v = std::atoi(argv[i] + 12);
      if (v >= 4 && v % 4 == 0) endpoints = static_cast<std::uint32_t>(v);
    }
  }
  std::printf("fidelity: %s  endpoints: %u\n", fidelity_name(fidelity),
              endpoints);
  double stellar_reranked = 0, cx7_reranked = 0;
  double stellar_random = 0, cx7_random = 0;
  {
    ShardedRunSet runs(threads, 4);
    runs.add([&stellar_reranked, endpoints, fidelity] {
      stellar_reranked = measure_allreduce_bw(
          Placement::kReranked, MultipathAlgo::kObs, 128, endpoints, fidelity);
    });
    runs.add([&cx7_reranked, endpoints, fidelity] {
      cx7_reranked =
          measure_allreduce_bw(Placement::kReranked, MultipathAlgo::kSinglePath,
                               128, endpoints, fidelity);
    });
    runs.add([&stellar_random, endpoints, fidelity] {
      stellar_random = measure_allreduce_bw(
          Placement::kRandom, MultipathAlgo::kObs, 128, endpoints, fidelity);
    });
    runs.add([&cx7_random, endpoints, fidelity] {
      cx7_random =
          measure_allreduce_bw(Placement::kRandom, MultipathAlgo::kSinglePath,
                               128, endpoints, fidelity);
    });
    runs.execute();
  }

  print_header("Measured AllReduce bus bandwidth (Gbps) on the fabric");
  print_row({"placement", "Stellar OBS/128", "CX7 single-path"});
  print_row({"reranked", fmt(stellar_reranked, 1), fmt(cx7_reranked, 1)});
  print_row({"random", fmt(stellar_random, 1), fmt(cx7_random, 1)});

  const double intra_bw = 180.0;  // intra-segment PP/EP traffic, ~uncongested

  // ---- Figure 16: training speed vs the CX7 SOTA --------------------------
  const auto jobs = figure16_jobs();
  auto run_fig16 = [&](const char* title, double stellar_bw, double cx7_bw) {
    print_header(title);
    print_row({"TP,PP,DP,EP", "model", "Stellar it/s", "CX7 it/s", "gain"},
              16);
    double total_gain = 0;
    double max_gain = 0;
    for (const TrainJob& job : jobs) {
      const double t_stellar =
          iteration_seconds_split(job, intra_bw, stellar_bw);
      const double t_cx7 = iteration_seconds_split(job, intra_bw, cx7_bw);
      const double gain = 100.0 * (t_cx7 / t_stellar - 1.0);
      total_gain += gain;
      max_gain = std::max(max_gain, gain);
      char label[32];
      std::snprintf(label, sizeof(label), "%u,%u,%u,%u", job.parallel.tp,
                    job.parallel.pp, job.parallel.dp, job.parallel.ep);
      print_row({label, job.model.name, fmt(1.0 / t_stellar, 3),
                 fmt(1.0 / t_cx7, 3), fmt(gain, 2) + "%"},
                16);
    }
    std::printf("average gain: %.2f%%   max gain: %.2f%%\n",
                total_gain / static_cast<double>(jobs.size()), max_gain);
  };

  run_fig16(
      "Figure 16a - training speed, RERANKED placement\n"
      "paper: Stellar beats CX7 by ~0.72% on average",
      stellar_reranked, cx7_reranked);
  run_fig16(
      "Figure 16b - training speed, RANDOM ranking\n"
      "paper: ~6% average improvement, max 14%",
      stellar_random, cx7_random);

  // ---- Figure 15: secure vs regular containers ----------------------------
  print_header(
      "Figure 15 - secure (vStellar) vs regular container, random ranking\n"
      "paper: indistinguishable — vStellar's data path adds no overhead");
  print_row({"model", "regular it/s", "secure it/s", "delta"}, 16);
  for (const TrainJob& job : jobs) {
    const double t_regular =
        iteration_seconds_split(job, intra_bw, stellar_random);
    // Secure container: identical data path; the virtio control path only
    // matters at connection setup (~200 commands x 30 us), amortized over
    // a 10k-iteration job — a vanishing per-iteration tax.
    const double setup_tax = 200.0 * 30e-6 / 10'000.0;
    const double t_secure = t_regular + setup_tax;
    print_row({job.model.name, fmt(1.0 / t_regular, 3), fmt(1.0 / t_secure, 3),
               fmt(100.0 * (t_secure / t_regular - 1.0), 3) + "%"},
              16);
  }
  engine_meter().report();
  return 0;
}
