// Figure 9: ToR switch queue depth under permutation RDMA-write traffic,
// comparing the multipath algorithms with 4 paths vs 128 paths per
// connection.
//
// Paper setup: 30 GPU servers across two segments, 120 flows. Scaled here
// to 32 endpoints / 32 flows (documented in EXPERIMENTS.md); per-link rates
// match production (200G host links, 400G fabric links).
//
// Paper shape: with 4 paths, RR and OBS already beat Single/BestRTT; with
// 128 paths every spraying algorithm collapses the average and maximum
// queue depth (~90% reduction vs single path).
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/traffic.h"
#include "common/stats.h"
#include "core/run_shard.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

struct QueueStats {
  double mean_kib = 0;
  double max_kib = 0;
  double goodput_gbps = 0;
};

QueueStats run_permutation(MultipathAlgo algo, std::uint16_t paths,
                           double scale, Fidelity fidelity) {
  Simulator sim;
  if (obs::ObsHub* h = obs::hub()) h->set_clock(&sim);
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 16;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 16;
  // 1:1 ToR radix (16x200G host ports, 16x200G uplinks): an ECMP hash
  // collision of two elephant flows genuinely oversubscribes an uplink,
  // as in the production dual-plane fabric.
  fc.fabric_link.bandwidth = Bandwidth::gbps(200);
  ClosFabric fabric(sim, fc);
  auto hybrid = make_fidelity_driver(sim, fabric, fidelity);
  if (hybrid != nullptr) attach_fluid_spans(*hybrid);
  EngineFleet fleet(sim, fabric);

  std::vector<EndpointId> eps;
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint32_t h = 0; h < 16; ++h) {
      eps.push_back(fabric.endpoint(s, h, 0, 0));
    }
  }

  PermutationConfig pc;
  pc.message_bytes = 1_MiB;
  pc.transport.algo = algo;
  pc.transport.num_paths = paths;
  pc.seed = 7;  // same derangement for every algorithm
  PermutationTraffic traffic(fleet, eps, {}, pc);

  traffic.start();
  // Warm up CC, then measure a 2 ms window (both scaled by the optional
  // positional argument; scale=1 reproduces the paper tables exactly).
  const SimTime warmup =
      SimTime::picos(static_cast<std::int64_t>(1e9 * scale));
  const SimTime window =
      SimTime::picos(static_cast<std::int64_t>(2e9 * scale));
  // Hybrid: fast-forward the first half of the warmup flow-level, then zoom
  // to packets for the second half (CC re-converges from the fluid rates)
  // and the entire measured window — queue depths are real packet-mode
  // observations. Pure fluid runs flow-level throughout (queues stay ~0).
  if (fidelity == Fidelity::kHybrid) {
    hybrid->request_zoom_window(SimTime::picos(warmup.ps() / 2),
                                warmup + window);
  }
  sim.run_until(warmup);
  fabric.reset_stats();
  const std::uint64_t before = traffic.completed_bytes();
  sim.run_until(sim.now() + window);
  const std::uint64_t delivered = traffic.completed_bytes() - before;
  traffic.stop();
  engine_meter().add(sim);
  if (obs::ObsHub* h = obs::hub()) h->set_clock(nullptr);

  QueueStats out;
  RunningStats mean_q, max_q;
  for (NetLink* l : fabric.all_tor_uplinks()) {
    mean_q.add(l->mean_queue_bytes());
    max_q.add(static_cast<double>(l->max_queue_bytes()));
  }
  out.mean_kib = mean_q.mean() / 1024.0;
  out.max_kib = max_q.max() / 1024.0;
  out.goodput_gbps =
      static_cast<double>(delivered) * 8.0 / window.sec() / 1e9 / 32.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  engine_meter();  // start the engine wall clock
  ObsScope obs_scope(argc, argv, "fig09");
  const double scale = scale_arg(argc, argv);
  const std::uint32_t threads = threads_arg(argc, argv);
  const Fidelity fidelity = fidelity_arg(argc, argv);
  print_header(
      "Figure 9 - ToR uplink queue depth, permutation traffic (32 flows,\n"
      "2 segments, 16 aggs/plane; paper uses 30 servers / 120 flows)\n"
      "columns: mean queue KiB | max queue KiB | per-flow goodput Gbps");
  std::printf("fidelity: %s\n", fidelity_name(fidelity));

  const MultipathAlgo algos[] = {
      MultipathAlgo::kSinglePath, MultipathAlgo::kBestRtt,
      MultipathAlgo::kRoundRobin, MultipathAlgo::kDwrr,
      MultipathAlgo::kMprdmaLike, MultipathAlgo::kObs};
  const std::uint16_t path_counts[] = {4, 128};

  // The 12 (algorithm x path-count) runs are independent, so they shard
  // across --threads=N workers (core/run_shard.h). Results land in
  // index-addressed slots and all printing/JSON emission happens after the
  // merge, in index order — byte-identical output for every thread count.
  struct RunSpec {
    MultipathAlgo algo;
    std::uint16_t paths;
  };
  std::vector<RunSpec> specs;
  for (std::uint16_t paths : path_counts) {
    for (MultipathAlgo algo : algos) specs.push_back({algo, paths});
  }
  std::vector<QueueStats> results(specs.size());

  ShardedRunSet runs(threads, specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunSpec spec = specs[i];
    QueueStats* slot = &results[i];
    runs.add([spec, slot, scale, fidelity] {
      *slot = run_permutation(spec.algo, spec.paths, scale, fidelity);
    });
  }
  runs.execute();

  JsonResult json("fig09");
  std::size_t i = 0;
  for (std::uint16_t paths : path_counts) {
    std::printf("\n--- %u paths per connection ---\n", paths);
    print_row({"algorithm", "mean KiB", "max KiB", "goodput Gbps"});
    for (MultipathAlgo algo : algos) {
      const QueueStats& s = results[i++];
      print_row({multipath_algo_name(algo), fmt(s.mean_kib, 1),
                 fmt(s.max_kib, 1), fmt(s.goodput_gbps, 1)});
      json.add_row({{"algo", jstr(multipath_algo_name(algo))},
                    {"paths", jint(paths)},
                    {"fidelity", jstr(fidelity_name(fidelity))},
                    {"mean_queue_kib", jnum(s.mean_kib)},
                    {"max_queue_kib", jnum(s.max_kib)},
                    {"goodput_gbps", jnum(s.goodput_gbps)}});
    }
  }
  json.write();
  engine_meter().report();
  return 0;
}
