// Figure 13: perftest-style microbenchmarks — RDMA write latency and
// throughput vs message size for three stacks:
//   bare-metal Stellar, vStellar (secure container), VF+VxLAN (CX7-like).
//
// Paper: vStellar is indistinguishable from bare metal (the data path is
// direct-mapped); the VF+VxLAN baseline pays ~7% extra latency at 8 B and
// ~9% bandwidth at 8 MB from encapsulation and vSwitch rule processing.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/fleet.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

enum class Stack { kBareMetal, kVStellar, kVfVxlan };

const char* stack_name(Stack s) {
  switch (s) {
    case Stack::kBareMetal:
      return "bare-metal";
    case Stack::kVStellar:
      return "vStellar";
    case Stack::kVfVxlan:
      return "VF+VxLAN";
  }
  return "?";
}

TransportConfig stack_transport(Stack s) {
  TransportConfig t;
  t.algo = MultipathAlgo::kObs;
  t.num_paths = 128;
  if (s == Stack::kVfVxlan) {
    // VxLAN outer headers (~50 B), vSwitch steering pipeline per packet,
    // and the encap engine's sustained-rate ceiling.
    t.extra_header_bytes = 50;
    t.per_packet_overhead = SimTime::nanos(85);
    t.stack_rate_cap = Bandwidth::gbps(182);
  }
  // vStellar == bare metal on the data path: the whole Figure-13 point.
  return t;
}

struct Result {
  double latency_us = 0;
  double gbps = 0;
};

Result run(Stack stack, std::uint64_t msg_bytes) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 1;
  fc.hosts_per_segment = 2;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 1;
  fc.host_link.bandwidth = Bandwidth::gbps(200);
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);
  const EndpointId a = fabric.endpoint(0, 0, 0, 0);
  const EndpointId b = fabric.endpoint(0, 1, 0, 0);
  auto conn = fleet.connect(a, b, stack_transport(stack));

  Result out;
  // Latency: one-way time until receiver-side completion, averaged over
  // several pings after warm-up.
  {
    int received = 0;
    SimTime total = SimTime::zero();
    SimTime posted;
    std::function<void()> ping = [&] {
      posted = sim.now();
      conn.value()->post_write(msg_bytes);
    };
    fleet.at(b).set_message_handler([&](const RxMessage&) {
      if (received > 0) total += sim.now() - posted;  // skip cold ping
      if (++received <= 8) ping();
    });
    ping();
    sim.run();
    out.latency_us = total.us() / 8.0;
  }
  // Throughput: stream 64 MiB.
  {
    const std::uint64_t bytes = 64_MiB;
    const SimTime t0 = sim.now();
    bool done = false;
    conn.value()->post_write(bytes, [&] { done = true; });
    sim.run();
    (void)done;
    out.gbps = static_cast<double>(bytes) * 8.0 / (sim.now() - t0).sec() / 1e9;
  }
  engine_meter().add(sim);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig13");
  engine_meter();  // start the engine wall clock
  print_header(
      "Figure 13 - perftest microbenchmark: one-way latency (us) and\n"
      "streaming throughput (Gbps), two hosts under one ToR, 200G links\n"
      "paper: vStellar == bare-metal; VF+VxLAN ~7% worse latency, ~9% less "
      "bw");

  print_row({"msg size", "bare lat", "vStlr lat", "VxLAN lat", "bare bw",
             "vStlr bw", "VxLAN bw"},
            11);
  for (std::uint64_t msg : {2_B, 64_B, 1_KiB, 64_KiB, 1_MiB, 8_MiB}) {
    const Result bare = run(Stack::kBareMetal, msg);
    const Result vstellar = run(Stack::kVStellar, msg);
    const Result vxlan = run(Stack::kVfVxlan, msg);
    print_row({format_bytes(msg), fmt(bare.latency_us, 2),
               fmt(vstellar.latency_us, 2), fmt(vxlan.latency_us, 2),
               fmt(bare.gbps, 1), fmt(vstellar.gbps, 1), fmt(vxlan.gbps, 1)},
              11);
  }
  const Result bare = run(Stack::kBareMetal, 2);
  const Result vxlan = run(Stack::kVfVxlan, 2);
  std::printf("\nVF+VxLAN small-message latency overhead: +%.1f%%\n",
              100.0 * (vxlan.latency_us / bare.latency_us - 1.0));
  const Result bare8m = run(Stack::kBareMetal, 8_MiB);
  const Result vxlan8m = run(Stack::kVfVxlan, 8_MiB);
  std::printf("VF+VxLAN 8 MiB bandwidth loss: -%.1f%%\n",
              100.0 * (1.0 - vxlan8m.gbps / bare8m.gbps));
  engine_meter().report();
  return 0;
}
