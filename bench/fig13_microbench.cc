// Figure 13: perftest-style microbenchmarks — RDMA write latency and
// throughput vs message size for three stacks:
//   bare-metal Stellar, vStellar (secure container), VF+VxLAN (CX7-like).
//
// Paper: vStellar is indistinguishable from bare metal (the data path is
// direct-mapped); the VF+VxLAN baseline pays ~7% extra latency at 8 B and
// ~9% bandwidth at 8 MB from encapsulation and vSwitch rule processing.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/fleet.h"
#include "core/run_shard.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

enum class Stack { kBareMetal, kVStellar, kVfVxlan };

const char* stack_name(Stack s) {
  switch (s) {
    case Stack::kBareMetal:
      return "bare-metal";
    case Stack::kVStellar:
      return "vStellar";
    case Stack::kVfVxlan:
      return "VF+VxLAN";
  }
  return "?";
}

TransportConfig stack_transport(Stack s) {
  TransportConfig t;
  t.algo = MultipathAlgo::kObs;
  t.num_paths = 128;
  if (s == Stack::kVfVxlan) {
    // VxLAN outer headers (~50 B), vSwitch steering pipeline per packet,
    // and the encap engine's sustained-rate ceiling.
    t.extra_header_bytes = 50;
    t.per_packet_overhead = SimTime::nanos(85);
    t.stack_rate_cap = Bandwidth::gbps(182);
  }
  // vStellar == bare metal on the data path: the whole Figure-13 point.
  return t;
}

struct Result {
  double latency_us = 0;
  double gbps = 0;
};

Result run(Stack stack, std::uint64_t msg_bytes) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 1;
  fc.hosts_per_segment = 2;
  fc.rails = 1;
  fc.planes = 1;
  fc.aggs_per_plane = 1;
  fc.host_link.bandwidth = Bandwidth::gbps(200);
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);
  const EndpointId a = fabric.endpoint(0, 0, 0, 0);
  const EndpointId b = fabric.endpoint(0, 1, 0, 0);
  auto conn = fleet.connect(a, b, stack_transport(stack));

  Result out;
  // Latency: one-way time until receiver-side completion, averaged over
  // several pings after warm-up.
  {
    int received = 0;
    SimTime total = SimTime::zero();
    SimTime posted;
    std::function<void()> ping = [&] {
      posted = sim.now();
      conn.value()->post_write(msg_bytes);
    };
    fleet.at(b).set_message_handler([&](const RxMessage&) {
      if (received > 0) total += sim.now() - posted;  // skip cold ping
      if (++received <= 8) ping();
    });
    ping();
    sim.run();
    out.latency_us = total.us() / 8.0;
  }
  // Throughput: stream 64 MiB.
  {
    const std::uint64_t bytes = 64_MiB;
    const SimTime t0 = sim.now();
    bool done = false;
    conn.value()->post_write(bytes, [&] { done = true; });
    sim.run();
    (void)done;
    out.gbps = static_cast<double>(bytes) * 8.0 / (sim.now() - t0).sec() / 1e9;
  }
  engine_meter().add(sim);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "fig13");
  engine_meter();  // start the engine wall clock
  print_header(
      "Figure 13 - perftest microbenchmark: one-way latency (us) and\n"
      "streaming throughput (Gbps), two hosts under one ToR, 200G links\n"
      "paper: vStellar == bare-metal; VF+VxLAN ~7% worse latency, ~9% less "
      "bw");

  print_row({"msg size", "bare lat", "vStlr lat", "VxLAN lat", "bare bw",
             "vStlr bw", "VxLAN bw"},
            11);
  // The 18 table cells plus the 4 summary-line runs are independent
  // simulations, so they shard across --threads=N workers
  // (core/run_shard.h); the table and summary print after the merge, in
  // sweep order — byte-identical output for every thread count.
  const std::uint32_t threads = threads_arg(argc, argv);
  const std::vector<std::uint64_t> sizes = {2_B,    64_B,  1_KiB,
                                            64_KiB, 1_MiB, 8_MiB};
  const Stack stacks[] = {Stack::kBareMetal, Stack::kVStellar,
                          Stack::kVfVxlan};
  std::vector<Result> table(sizes.size() * 3);
  Result summary[4];  // bare@2B, vxlan@2B, bare@8MiB, vxlan@8MiB
  ShardedRunSet runs(threads, table.size() + 4);
  for (std::size_t m = 0; m < sizes.size(); ++m) {
    for (std::size_t s = 0; s < 3; ++s) {
      const Stack stack = stacks[s];
      const std::uint64_t msg = sizes[m];
      Result* slot = &table[m * 3 + s];
      runs.add([stack, msg, slot] { *slot = run(stack, msg); });
    }
  }
  const struct {
    Stack stack;
    std::uint64_t msg;
  } summary_specs[4] = {{Stack::kBareMetal, 2},
                        {Stack::kVfVxlan, 2},
                        {Stack::kBareMetal, 8_MiB},
                        {Stack::kVfVxlan, 8_MiB}};
  for (std::size_t i = 0; i < 4; ++i) {
    const Stack stack = summary_specs[i].stack;
    const std::uint64_t msg = summary_specs[i].msg;
    Result* slot = &summary[i];
    runs.add([stack, msg, slot] { *slot = run(stack, msg); });
  }
  runs.execute();

  for (std::size_t m = 0; m < sizes.size(); ++m) {
    const Result& bare = table[m * 3 + 0];
    const Result& vstellar = table[m * 3 + 1];
    const Result& vxlan = table[m * 3 + 2];
    print_row({format_bytes(sizes[m]), fmt(bare.latency_us, 2),
               fmt(vstellar.latency_us, 2), fmt(vxlan.latency_us, 2),
               fmt(bare.gbps, 1), fmt(vstellar.gbps, 1), fmt(vxlan.gbps, 1)},
              11);
  }
  std::printf("\nVF+VxLAN small-message latency overhead: +%.1f%%\n",
              100.0 * (summary[1].latency_us / summary[0].latency_us - 1.0));
  std::printf("VF+VxLAN 8 MiB bandwidth loss: -%.1f%%\n",
              100.0 * (1.0 - summary[3].gbps / summary[2].gbps));
  engine_meter().report();
  return 0;
}
