// Ablations for the design choices DESIGN.md calls out:
//   (a) single shared CC context with 128 paths vs per-path CC with 4
//       paths (§9: per-path CC would shrink the feasible fan-out 128 -> 4);
//   (b) PVDMA block size: 4 KiB vs 2 MiB vs 16 MiB (map-cache size vs pin
//       overhead vs conflict surface, §5);
//   (c) RTO sweep under a lossy link (the 250 us production choice, §7).
#include <cmath>
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "bench/obs_util.h"
#include "collective/allreduce.h"
#include "virt/pvdma.h"

using namespace stellar;
using namespace stellar::bench;

namespace {

struct AblationResult {
  double bw_gbps = 0;
  double uplink_cov_pct = 0;  // load imbalance across ToR uplinks
};

AblationResult allreduce_bw(std::uint16_t paths, SimTime rto, double loss,
                            bool per_path_cc = false,
                            CcAlgo cc_algo = CcAlgo::kWindowEcnRtt) {
  Simulator sim;
  FabricConfig fc;
  fc.segments = 2;
  fc.hosts_per_segment = 8;
  // Oversubscribed 1:2 aggregation layer at 200G: spreading quality (the
  // benefit of high fan-out) decides attainable bandwidth.
  fc.aggs_per_plane = 8;
  fc.fabric_link.bandwidth = Bandwidth::gbps(200);
  fc.rails = 1;
  fc.planes = 1;
  ClosFabric fabric(sim, fc);
  EngineFleet fleet(sim, fabric);
  if (loss > 0) fabric.tor_uplink(0, 0, 0, 2).set_drop_probability(loss);

  std::vector<EndpointId> ranks;
  for (std::uint32_t i = 0; i < 16; ++i) {
    ranks.push_back(fabric.endpoint(i % 2, i / 2, 0, 0));
  }
  AllReduceConfig cfg;
  cfg.data_bytes = 16_MiB;
  cfg.transport.algo = MultipathAlgo::kObs;
  cfg.transport.num_paths = paths;
  cfg.transport.rto = rto;
  cfg.transport.per_path_cc = per_path_cc;
  cfg.transport.cc_algo = cc_algo;
  RingAllReduce ar(fleet, ranks, cfg);
  double total = 0;
  int measured = 0;
  std::function<void()> chain = [&] {
    total += ar.bus_bandwidth_gbps();
    if (++measured < 2) ar.start(chain);
  };
  fabric.reset_stats();
  const SimTime window_start = sim.now();
  ar.start(chain);
  sim.run_until(SimTime::millis(300));
  engine_meter().add(sim);

  AblationResult out;
  out.bw_gbps = measured ? total / measured : 0;
  double sum = 0, sum2 = 0;
  const auto uplinks = fabric.tor_uplinks(0, 0, 0);
  const double window_sec = (sim.now() - window_start).sec();
  for (NetLink* l : uplinks) {
    const double gbps =
        static_cast<double>(l->bytes_sent()) * 8.0 / window_sec / 1e9;
    sum += gbps;
    sum2 += gbps * gbps;
  }
  const double n = static_cast<double>(uplinks.size());
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  out.uplink_cov_pct =
      mean > 0 ? 100.0 * std::sqrt(std::max(0.0, var)) / mean : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsScope obs_scope(argc, argv, "ablation");
  engine_meter();  // start the engine wall clock
  print_header(
      "Ablation (a) - shared CC context, 128 paths vs per-path CC's\n"
      "feasible fan-out of 4 (same silicon budget), under a lossy link");
  print_row({"design", "clean Gbps", "1% loss Gbps", "uplink CoV"});
  {
    const AblationResult clean = allreduce_bw(128, SimTime::micros(250), 0);
    const AblationResult lossy =
        allreduce_bw(128, SimTime::micros(250), 0.01);
    print_row({"shared CCC, 128p", fmt(clean.bw_gbps, 1),
               fmt(lossy.bw_gbps, 1), fmt(clean.uplink_cov_pct, 1) + "%"});
  }
  {
    const AblationResult clean =
        allreduce_bw(4, SimTime::micros(250), 0, true);
    const AblationResult lossy =
        allreduce_bw(4, SimTime::micros(250), 0.01, true);
    print_row({"per-path CC, 4p", fmt(clean.bw_gbps, 1),
               fmt(lossy.bw_gbps, 1), fmt(clean.uplink_cov_pct, 1) + "%"});
  }
  std::printf(
      "\nPer-path CC reacts more precisely (the §9 trade), but its 4-path\n"
      "fan-out covers the aggregation layer far less evenly — the CoV gap\n"
      "is what turns into collisions and tail latency with many tenants\n"
      "(cf. Figures 9/12).\n");

  print_header(
      "Ablation (b) - PVDMA block size: pin cost of first touch vs\n"
      "map-cache entries for a 1 GiB hot set (the 2 MiB balance point)");
  print_row({"block", "first-touch pin", "entries for 1GiB", "covers vDB?"});
  for (std::uint64_t block : {kPage4K, kPage2M, 16 * kPage2M}) {
    Iommu iommu;
    Ept ept;
    (void)ept.map(Gpa{0}, Hpa{16_GiB}, 2_GiB);
    PvdmaConfig pc;
    pc.block_size = block;
    Pvdma pvdma(iommu, ept, pc);
    const auto r = pvdma.prepare_dma(Gpa{0}, 4096);
    print_row({format_bytes(block), r.value().cost.to_string(),
               std::to_string(1_GiB / block),
               block > kPage4K ? "yes (Fig.5 hazard)" : "no"});
  }

  print_header(
      "Ablation (c) - RTO sweep under 1% loss on one link, OBS/128\n"
      "paper choice: 250 us for a low-latency datacenter topology");
  print_row({"RTO", "bus bw Gbps"});
  for (std::int64_t us : {100, 250, 1000, 4000, 16000}) {
    print_row({std::to_string(us) + " us",
               fmt(allreduce_bw(128, SimTime::micros(us), 0.01).bw_gbps, 1)});
  }

  print_header(
      "Ablation (d) - congestion-control algorithm under OBS/128 on the\n"
      "oversubscribed fabric: the paper's ECN+RTT window CC vs a pure\n"
      "delay-target (Swift-like) alternative");
  print_row({"CC algorithm", "clean Gbps", "1% loss Gbps"});
  for (CcAlgo algo : {CcAlgo::kWindowEcnRtt, CcAlgo::kSwiftDelay}) {
    print_row({cc_algo_name(algo),
               fmt(allreduce_bw(128, SimTime::micros(250), 0, false, algo)
                       .bw_gbps,
                   1),
               fmt(allreduce_bw(128, SimTime::micros(250), 0.01, false, algo)
                       .bw_gbps,
                   1)});
  }
  engine_meter().report();
  return 0;
}
