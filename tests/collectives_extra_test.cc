// Tests for the extended collective family (ReduceScatter, AllGather,
// AllToAll) and the placement policies.
#include <gtest/gtest.h>

#include "collective/collectives.h"
#include "workload/placement.h"

namespace stellar {
namespace {

FabricConfig fabric_config() {
  FabricConfig cfg;
  cfg.segments = 2;
  cfg.hosts_per_segment = 8;
  cfg.rails = 1;
  cfg.planes = 1;
  cfg.aggs_per_plane = 8;
  return cfg;
}

class CollectivesExtraTest : public ::testing::Test {
 protected:
  CollectivesExtraTest()
      : fabric_(sim_, fabric_config()), fleet_(sim_, fabric_) {}

  std::vector<EndpointId> ranks(std::uint32_t n) {
    std::vector<EndpointId> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      out.push_back(fabric_.endpoint(i % 2, i / 2, 0, 0));
    }
    return out;
  }

  CollectiveConfig config(std::uint64_t bytes = 8_MiB) {
    CollectiveConfig cfg;
    cfg.data_bytes = bytes;
    cfg.transport.algo = MultipathAlgo::kObs;
    cfg.transport.num_paths = 128;
    return cfg;
  }

  Simulator sim_;
  ClosFabric fabric_;
  EngineFleet fleet_;
};

TEST_F(CollectivesExtraTest, ReduceScatterCompletes) {
  RingReduceScatter rs(fleet_, ranks(8), config());
  bool done = false;
  rs.start([&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_GT(rs.bus_bandwidth_gbps(), 10.0);
}

TEST_F(CollectivesExtraTest, AllGatherCompletes) {
  RingAllGather ag(fleet_, ranks(8), config());
  bool done = false;
  ag.start([&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
}

TEST_F(CollectivesExtraTest, SinglePhaseIsRoughlyTwiceAsFastAsAllReduce) {
  // ReduceScatter moves half the units of an AllReduce over the same ring.
  RingReduceScatter rs(fleet_, ranks(8), config(32_MiB));
  rs.start();
  sim_.run();
  const SimTime t_rs = rs.last_duration();

  RingAllGather ag(fleet_, ranks(8), config(32_MiB));
  ag.start();
  sim_.run();
  const SimTime t_ag = ag.last_duration();
  // Same wire pattern => same duration (within scheduling noise).
  EXPECT_NEAR(t_rs.us(), t_ag.us(), t_rs.us() * 0.1);
}

TEST_F(CollectivesExtraTest, AllToAllCompletes) {
  AllToAll a2a(fleet_, ranks(8), config(16_MiB));
  bool done = false;
  a2a.start([&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(a2a.shard_bytes(), 2_MiB);
  EXPECT_GT(a2a.algo_bandwidth_gbps(), 10.0);
}

TEST_F(CollectivesExtraTest, AllToAllRestartable) {
  AllToAll a2a(fleet_, ranks(4), config(4_MiB));
  int iterations = 0;
  std::function<void()> chain = [&] {
    if (++iterations < 3) a2a.start(chain);
  };
  a2a.start(chain);
  sim_.run();
  EXPECT_EQ(iterations, 3);
}

TEST_F(CollectivesExtraTest, RingCollectiveValidation) {
  EXPECT_THROW(RingReduceScatter(fleet_, ranks(1), config()),
               std::invalid_argument);
  CollectiveConfig bad = config();
  bad.slices = 0;
  EXPECT_THROW(RingAllGather(fleet_, ranks(4), bad), std::invalid_argument);
  EXPECT_THROW(AllToAll(fleet_, ranks(1), config()), std::invalid_argument);
}

TEST_F(CollectivesExtraTest, PlacementRerankedMinimizesCrossings) {
  auto reranked = place_job(fabric_, 16, 0, PlacementPolicy::kReranked);
  ASSERT_EQ(reranked.size(), 16u);
  EXPECT_NEAR(cross_segment_hop_fraction(fabric_, reranked), 2.0 / 16, 1e-9);
}

TEST_F(CollectivesExtraTest, PlacementRandomMaximizesCrossings) {
  auto random = place_job(fabric_, 16, 0, PlacementPolicy::kRandomRanking);
  ASSERT_EQ(random.size(), 16u);
  EXPECT_DOUBLE_EQ(cross_segment_hop_fraction(fabric_, random), 1.0);
}

TEST_F(CollectivesExtraTest, PlacementJobsAreDisjoint) {
  auto job0 = place_job(fabric_, 8, 0, PlacementPolicy::kReranked);
  auto job1 = place_job(fabric_, 8, 1, PlacementPolicy::kReranked);
  for (EndpointId a : job0) {
    for (EndpointId b : job1) EXPECT_NE(a, b);
  }
}

TEST_F(CollectivesExtraTest, PlacementEndpointsAreUnique) {
  for (auto policy :
       {PlacementPolicy::kReranked, PlacementPolicy::kRandomRanking}) {
    auto ranks16 = place_job(fabric_, 16, 0, policy);
    std::set<EndpointId> unique(ranks16.begin(), ranks16.end());
    EXPECT_EQ(unique.size(), ranks16.size())
        << placement_policy_name(policy);
  }
}

TEST_F(CollectivesExtraTest, PlacementTooLargeRejected) {
  EXPECT_THROW(place_job(fabric_, 64, 0, PlacementPolicy::kReranked),
               std::invalid_argument);
}

TEST_F(CollectivesExtraTest, CollectivesOverPlacements) {
  // End-to-end: a random-ranked AllToAll (the MoE dispatch pattern) on a
  // contended fabric completes and reports sane bandwidth.
  auto ranks16 = place_job(fabric_, 16, 0, PlacementPolicy::kRandomRanking);
  AllToAll a2a(fleet_, ranks16, config(16_MiB));
  bool done = false;
  a2a.start([&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_GT(a2a.algo_bandwidth_gbps(), 5.0);
}

}  // namespace
}  // namespace stellar
