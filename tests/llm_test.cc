#include <gtest/gtest.h>

#include "workload/models.h"

namespace stellar {
namespace {

TEST(LlmModelTest, CommVolumesZeroWhenDimensionIsOne) {
  TrainJob job = table1_llama2b_zero1();  // pure DP
  const CommVolumes v = comm_volumes(job);
  EXPECT_EQ(v.tp_bytes, 0.0);
  EXPECT_EQ(v.pp_bytes, 0.0);
  EXPECT_EQ(v.ep_bytes, 0.0);
  EXPECT_GT(v.dp_bytes, 0.0);
}

TEST(LlmModelTest, DpVolumeScalesWithShard) {
  TrainJob job = table1_llama33b();
  const CommVolumes v = comm_volumes(job);
  // Ring all-reduce of the (params / tp*pp) shard: 2(d-1)/d * shard * 2B,
  // divided by the rail share 8/min(8, tp*pp) = 8/6.
  const double shard = 32.5e9 / (2 * 3);
  const double expect = 2.0 * 147.0 / 148.0 * shard * 2.0 / (8.0 / 6.0);
  EXPECT_NEAR(v.dp_bytes, expect, expect * 1e-9);
}

TEST(LlmModelTest, Zero3KnobsScaleDpVolume) {
  TrainJob base = table1_llama13b_zero3();
  TrainJob plain = base;
  plain.dp_volume_multiplier = 1.0;
  plain.dp_exposed_fraction = 1.0;
  EXPECT_NEAR(comm_volumes(base).dp_bytes,
              comm_volumes(plain).dp_bytes * 1.5 * 0.15, 1.0);
}

TEST(LlmModelTest, TpVolumeGrowsWithGradAccum) {
  TrainJob a = table1_llama33b();
  TrainJob b = a;
  b.parallel.grad_accum *= 2;
  EXPECT_NEAR(comm_volumes(b).tp_bytes, 2 * comm_volumes(a).tp_bytes, 1.0);
  // DP volume is independent of grad accumulation (one all-reduce/iter).
  EXPECT_NEAR(comm_volumes(b).dp_bytes, comm_volumes(a).dp_bytes, 1.0);
}

TEST(LlmModelTest, ComputeTimeAccounting) {
  TrainJob job = table1_llama2b_zero1();
  // 6 * 2e9 * (32*2048) tokens / 16 GPUs / 150 TFLOPs.
  const double expect = 6.0 * 2e9 * (32.0 * 2048) / 16.0 / 150e12;
  EXPECT_NEAR(compute_seconds(job), expect, expect * 1e-9);
}

TEST(LlmModelTest, Table1RatiosQualitativeShape) {
  // Effective cross-segment all-reduce bandwidth per GPU: ~40 Gbps is what
  // large production rings achieve (the per-GPU NIC is 400G but rings
  // span segments and share the aggregation layer).
  const double bw = 40.0;
  // Llama-33B: DP dominates (paper: 20.95% DP vs 4.57% TP vs 2.65% PP).
  {
    const CommRatios r = comm_ratios(table1_llama33b(), bw);
    EXPECT_GT(r.dp, r.tp);
    EXPECT_GT(r.dp, r.pp);
    EXPECT_GT(r.dp, 0.08);
  }
  // GPT-200B: PP dominates (bubble + activations), DP is small because
  // grad-accum 117 amortizes the single gradient all-reduce
  // (paper: 20.14% PP vs 1.49% DP).
  {
    const CommRatios r = comm_ratios(table1_gpt200b(), bw);
    EXPECT_GT(r.pp, r.dp);
    EXPECT_GT(r.pp, r.tp);
    EXPECT_LT(r.dp, 0.10);
  }
  // DeepSpeed jobs: only DP is nonzero and it is substantial.
  {
    const CommRatios r = comm_ratios(table1_llama2b_zero1(), bw);
    EXPECT_EQ(r.tp, 0.0);
    EXPECT_EQ(r.pp, 0.0);
    EXPECT_GT(r.dp, 0.08);
  }
}

TEST(LlmModelTest, IterationTimeMonotoneInBandwidth) {
  TrainJob job = table1_llama33b();
  const double slow = iteration_seconds(job, 100.0);
  const double fast = iteration_seconds(job, 800.0);
  EXPECT_LT(fast, slow);
  // At infinite bandwidth, only compute remains.
  EXPECT_NEAR(iteration_seconds(job, 1e12), compute_seconds(job),
              compute_seconds(job) * 0.01);
}

TEST(LlmModelTest, OverlapReducesIterationTime) {
  TrainJob job = table1_llama33b();
  TrainJob no_overlap = job;
  no_overlap.overlap = 0.0;
  TrainJob full_overlap = job;
  full_overlap.overlap = 1.0;
  EXPECT_LT(iteration_seconds(full_overlap, 400.0),
            iteration_seconds(job, 400.0));
  EXPECT_LT(iteration_seconds(job, 400.0),
            iteration_seconds(no_overlap, 400.0));
  EXPECT_NEAR(iteration_seconds(full_overlap, 400.0), compute_seconds(job),
              1e-12);
}

TEST(LlmModelTest, SplitBandwidthOnlyDpUsesCrossLink) {
  TrainJob job = table1_llama2b_zero1();  // pure DP
  const double base = iteration_seconds_split(job, 400.0, 400.0);
  const double congested = iteration_seconds_split(job, 400.0, 100.0);
  EXPECT_GT(congested, base);
  // For a pure-DP job, intra bandwidth is irrelevant.
  EXPECT_NEAR(iteration_seconds_split(job, 50.0, 400.0), base, 1e-12);
}

TEST(LlmModelTest, EpVolumePresentOnlyForMoe) {
  const auto jobs = figure16_jobs();
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(comm_volumes(jobs[0]).ep_bytes, 0.0);
  EXPECT_GT(comm_volumes(jobs[3]).ep_bytes, 0.0);  // the MoE config
  for (const auto& job : jobs) {
    EXPECT_EQ(job.parallel.gpus() * (job.parallel.ep >= 1 ? 1 : 1), 1024u);
  }
}

TEST(LlmModelTest, EpVolumeFormula) {
  TrainJob job = figure16_jobs()[3];  // the MoE config: ep=8, moe layers 28
  const CommVolumes v = comm_volumes(job);
  const ModelSpec& m = job.model;
  const ParallelConfig& p = job.parallel;
  const double act = static_cast<double>(p.micro_batch) * m.seq_len *
                     m.hidden * m.bytes_per_element;
  const double expected = 4.0 * (p.ep - 1.0) / p.ep *
                          (static_cast<double>(m.moe_layers) / p.pp) * act *
                          p.grad_accum;
  EXPECT_NEAR(v.ep_bytes, expected, expected * 1e-9);
}

TEST(LlmModelTest, PipelineBubbleAccounting) {
  TrainJob job = table1_gpt200b();  // pp=12, ga=117
  const CommSeconds with_bubble =
      comm_seconds(job, 2400, 40, 40, 40, /*include_pp_bubble=*/true);
  const CommSeconds wire_only =
      comm_seconds(job, 2400, 40, 40, 40, /*include_pp_bubble=*/false);
  const double bubble = with_bubble.pp - wire_only.pp;
  const double expected =
      11.0 / (117.0 + 11.0) * compute_seconds(job);  // (pp-1)/(ga+pp-1)
  EXPECT_NEAR(bubble, expected, expected * 1e-9);
  // No pipeline => no bubble.
  TrainJob flat = table1_llama2b_zero1();
  const CommSeconds f =
      comm_seconds(flat, 2400, 40, 40, 40, /*include_pp_bubble=*/true);
  EXPECT_EQ(f.pp, 0.0);
}

TEST(LlmModelTest, DeeperPipelinesHaveBiggerBubbles) {
  TrainJob job = table1_gpt200b();
  TrainJob deeper = job;
  deeper.parallel.pp *= 2;
  deeper.parallel.dp /= 2;  // keep the GPU count fixed
  const double r1 = comm_ratios(job, 40.0).pp;
  const double r2 = comm_ratios(deeper, 40.0).pp;
  EXPECT_GT(r2, r1);
}

TEST(LlmModelTest, Table1JobsMatchPaperParameters) {
  const auto jobs = table1_jobs();
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].parallel.tp, 2u);
  EXPECT_EQ(jobs[0].parallel.pp, 3u);
  EXPECT_EQ(jobs[0].parallel.dp, 148u);
  EXPECT_EQ(jobs[0].parallel.grad_accum, 58u);
  EXPECT_EQ(jobs[0].parallel.global_batch, 8584u);
  EXPECT_EQ(jobs[1].parallel.grad_accum, 117u);
  EXPECT_EQ(jobs[2].parallel.dp, 16u);
  EXPECT_EQ(jobs[3].parallel.dp, 440u);
}

}  // namespace
}  // namespace stellar
