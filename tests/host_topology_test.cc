// StellarHost topology behaviours: cross-switch GDR falls back to the RC
// path, per-RNIC resource independence, and config-driven shapes.
#include <gtest/gtest.h>

#include "core/stellar.h"

namespace stellar {
namespace {

StellarHostConfig small_host() {
  StellarHostConfig cfg;
  cfg.pcie.main_memory_bytes = 64_GiB;
  cfg.gpu_bar_bytes = 4_GiB;
  return cfg;
}

TEST(HostTopologyTest, GpuStripingAcrossSwitches) {
  StellarHost host(small_host());
  // 8 GPUs over 4 switches: GPU g sits under switch g % 4, next to RNIC
  // g % 4 — the paper's server layout.
  for (std::size_t g = 0; g < host.gpu_count(); ++g) {
    auto sw = host.pcie().switch_of(host.gpu_bdf(g));
    ASSERT_TRUE(sw.is_ok());
    EXPECT_EQ(sw.value(), g % 4);
  }
}

TEST(HostTopologyTest, SameSwitchGdrIsDirect) {
  StellarHost host(small_host());
  RundContainer c(1, "t", 4_GiB);
  ASSERT_TRUE(host.boot(c).is_ok());
  // RNIC 2 and GPU 2 share switch 2.
  auto dev = host.create_vstellar_device(c, 2);
  ASSERT_TRUE(dev.is_ok());
  auto mr = dev.value()->register_memory(Gva{0}, 64_MiB,
                                         MemoryOwner::kGpuHbm, 0, /*gpu=*/2);
  ASSERT_TRUE(mr.is_ok());
  auto t = dev.value()->gdr_write(mr.value().key, Gva{0}, 16_MiB);
  ASSERT_TRUE(t.is_ok());
  EXPECT_GT(t.value().gbps, 380.0);
  EXPECT_GT(host.pcie().direct_p2p_tlps(), 0u);
}

TEST(HostTopologyTest, CrossSwitchGdrDetoursAndSlows) {
  StellarHostConfig cfg = small_host();
  cfg.pcie.rc_p2p_bandwidth = Bandwidth::gbps(145);
  StellarHost host(cfg);
  RundContainer c(1, "t", 4_GiB);
  ASSERT_TRUE(host.boot(c).is_ok());
  // RNIC 0 (switch 0) writing to GPU 1 (switch 1): must cross the RC.
  auto dev = host.create_vstellar_device(c, 0);
  ASSERT_TRUE(dev.is_ok());
  auto mr = dev.value()->register_memory(Gva{0}, 64_MiB,
                                         MemoryOwner::kGpuHbm, 0, /*gpu=*/1);
  ASSERT_TRUE(mr.is_ok());
  auto t = dev.value()->gdr_write(mr.value().key, Gva{0}, 16_MiB);
  ASSERT_TRUE(t.is_ok());
  EXPECT_LT(t.value().gbps, 150.0);  // RC forwarding cap
  EXPECT_GT(host.pcie().rc_detour_tlps(), 0u);
}

TEST(HostTopologyTest, DevicesOnDifferentRnicsAreIndependent) {
  StellarHost host(small_host());
  RundContainer c(1, "t", 4_GiB);
  ASSERT_TRUE(host.boot(c).is_ok());
  auto d0 = host.create_vstellar_device(c, 0);
  auto d3 = host.create_vstellar_device(c, 3);
  ASSERT_TRUE(d0.is_ok() && d3.is_ok());
  // MR keys live per-RNIC: registering on one NIC never consumes the
  // other's MTT capacity.
  const std::uint64_t before = host.rnic(3).mtt().used_pages();
  auto mr = d0.value()->register_memory(Gva{0}, 64_MiB,
                                        MemoryOwner::kGpuHbm, 0, 0);
  ASSERT_TRUE(mr.is_ok());
  EXPECT_EQ(host.rnic(3).mtt().used_pages(), before);
  EXPECT_GT(host.rnic(0).mtt().used_pages(), 0u);
}

TEST(HostTopologyTest, ConfigurableShape) {
  StellarHostConfig cfg = small_host();
  cfg.pcie_switches = 2;
  cfg.rnics = 2;
  cfg.gpus = 4;
  StellarHost host(cfg);
  EXPECT_EQ(host.rnic_count(), 2u);
  EXPECT_EQ(host.gpu_count(), 4u);
}

TEST(HostTopologyTest, RnicIndexValidated) {
  StellarHost host(small_host());
  RundContainer c(1, "t", 1_GiB);
  ASSERT_TRUE(host.boot(c).is_ok());
  EXPECT_EQ(host.create_vstellar_device(c, 99).status().code(),
            StatusCode::kOutOfRange);
}

TEST(HostTopologyTest, DestroyUnknownDeviceFails) {
  StellarHost host(small_host());
  EXPECT_EQ(host.destroy_vstellar_device(nullptr).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace stellar
