#include "common/units.h"

#include <gtest/gtest.h>

namespace stellar {
namespace {

TEST(SimTimeTest, ConstructorsAgree) {
  EXPECT_EQ(SimTime::nanos(1), SimTime::picos(1000));
  EXPECT_EQ(SimTime::micros(1), SimTime::nanos(1000));
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::millis(1000));
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::micros(3);
  const SimTime b = SimTime::micros(1);
  EXPECT_EQ(a + b, SimTime::micros(4));
  EXPECT_EQ(a - b, SimTime::micros(2));
  EXPECT_EQ(a * 2, SimTime::micros(6));
  EXPECT_EQ(a / 3, SimTime::micros(1));
  EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(SimTimeTest, Conversions) {
  const SimTime t = SimTime::micros(1500);
  EXPECT_DOUBLE_EQ(t.us(), 1500.0);
  EXPECT_DOUBLE_EQ(t.ms(), 1.5);
  EXPECT_DOUBLE_EQ(t.ns(), 1'500'000.0);
  EXPECT_DOUBLE_EQ(t.sec(), 0.0015);
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_EQ(SimTime::picos(500).to_string(), "500 ps");
  EXPECT_EQ(SimTime::nanos(42).to_string(), "42.00 ns");
  EXPECT_EQ(SimTime::micros(250).to_string(), "250.00 us");
  EXPECT_EQ(SimTime::millis(7).to_string(), "7.00 ms");
  EXPECT_EQ(SimTime::seconds(390).to_string(), "390.00 s");
}

TEST(ByteLiteralsTest, Magnitudes) {
  EXPECT_EQ(1_KiB, 1024ull);
  EXPECT_EQ(1_MiB, 1024ull * 1024);
  EXPECT_EQ(1_GiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(2_TiB, 2ull * 1024 * 1024 * 1024 * 1024);
}

TEST(FormatBytesTest, HumanReadable) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(2_MiB), "2.00 MiB");
  EXPECT_EQ(format_bytes(1600ull * 1_GiB), "1.56 TiB");
}

TEST(BandwidthTest, TransmitTimeExact) {
  // 400 Gbps = 50 bytes/ns => 4 KiB in 81.92 ns.
  const Bandwidth bw = Bandwidth::gbps(400);
  EXPECT_EQ(bw.transmit_time(4096), SimTime::picos(81'920));
  // 200 Gbps: 1 byte = 40 ps.
  EXPECT_EQ(Bandwidth::gbps(200).transmit_time(1), SimTime::picos(40));
}

TEST(BandwidthTest, Conversions) {
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(200).as_gbps(), 200.0);
  EXPECT_DOUBLE_EQ(Bandwidth::gbps(400).gigabytes_per_sec(), 50.0);
}

TEST(BandwidthTest, LargeTransferNoOverflow) {
  // 1 TiB at 100 Gbps ~ 87.96 s; must not overflow int64 picoseconds math.
  const SimTime t = Bandwidth::gbps(100).transmit_time(1_TiB);
  EXPECT_NEAR(t.sec(), 87.96, 0.05);
}

}  // namespace
}  // namespace stellar
