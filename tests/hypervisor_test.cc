#include "virt/hypervisor.h"

#include <gtest/gtest.h>

#include "virt/runtime.h"

namespace stellar {
namespace {

HostPcieConfig big_host() {
  HostPcieConfig cfg;
  cfg.main_memory_bytes = 4ull << 40;  // 4 TiB host
  return cfg;
}

TEST(HypervisorTest, PinAllBootIsMinuteScaleFor1600GB) {
  HostPcie pcie(big_host());
  HypervisorConfig hcfg;
  hcfg.use_pvdma = false;
  Hypervisor hyp(pcie, hcfg);
  RundContainer container(1, "big", 1600ull * 1_GiB);
  auto report = hyp.boot_container(container);
  ASSERT_TRUE(report.is_ok());
  // The §3.1(2) observation: ~390 s of pinning dominates start-up.
  EXPECT_GT(report.value().pin_time.sec(), 300.0);
  EXPECT_GT(report.value().total.sec(), 300.0);
  // The whole guest is pinned up front.
  EXPECT_EQ(pcie.iommu().pinned_bytes(), 1600ull * 1_GiB);
}

TEST(HypervisorTest, PvdmaBootIsSecondsScale) {
  HostPcie pcie(big_host());
  HypervisorConfig hcfg;
  hcfg.use_pvdma = true;
  Hypervisor hyp(pcie, hcfg);
  RundContainer container(1, "big", 1600ull * 1_GiB);
  auto report = hyp.boot_container(container);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().pin_time, SimTime::zero());
  // "below 20 seconds in all cases" (Figure 6).
  EXPECT_LT(report.value().total.sec(), 25.0);
  EXPECT_EQ(pcie.iommu().pinned_bytes(), 0u);
}

TEST(HypervisorTest, BootSpeedupMatchesPaperScale) {
  auto boot_time = [](bool pvdma, std::uint64_t mem) {
    HostPcie pcie(big_host());
    HypervisorConfig hcfg;
    hcfg.use_pvdma = pvdma;
    Hypervisor hyp(pcie, hcfg);
    RundContainer container(1, "c", mem);
    return hyp.boot_container(container).value().total.sec();
  };
  const double speedup = boot_time(false, 1600ull * 1_GiB) /
                         boot_time(true, 1600ull * 1_GiB);
  // The paper reports up to 15x (abstract) / 30x (§4) depending on the
  // baseline; the model lands in that band.
  EXPECT_GT(speedup, 10.0);
  EXPECT_LT(speedup, 40.0);
}

TEST(HypervisorTest, DoubleBootRejected) {
  HostPcie pcie;
  Hypervisor hyp(pcie, {});
  RundContainer container(1, "c", 1_GiB);
  ASSERT_TRUE(hyp.boot_container(container).is_ok());
  EXPECT_EQ(hyp.boot_container(container).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(HypervisorTest, ShutdownReleasesBacking) {
  HostPcie pcie;
  Hypervisor hyp(pcie, {});
  RundContainer container(1, "c", 1_GiB);
  const std::uint64_t before = pcie.main_memory().used_bytes();
  ASSERT_TRUE(hyp.boot_container(container).is_ok());
  EXPECT_EQ(pcie.main_memory().used_bytes(), before + 1_GiB);
  ASSERT_TRUE(hyp.shutdown_container(container).is_ok());
  EXPECT_EQ(pcie.main_memory().used_bytes(), before);
  EXPECT_FALSE(container.booted());
  EXPECT_EQ(hyp.shutdown_container(container).code(), StatusCode::kNotFound);
}

TEST(HypervisorTest, OversizedContainerFailsCleanly) {
  HostPcieConfig cfg;
  cfg.main_memory_bytes = 2_GiB;
  HostPcie pcie(cfg);
  Hypervisor hyp(pcie, {});
  RundContainer container(1, "huge", 8_GiB);
  EXPECT_EQ(hyp.boot_container(container).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(container.booted());
}

TEST(VirtioTest, ControlPathLatencyAndCount) {
  VirtioControlPath control;
  const SimTime t = control.execute(ControlCommand::kCreateQp);
  EXPECT_GT(t, SimTime::micros(10));
  EXPECT_LT(t, SimTime::micros(100));
  control.execute(ControlCommand::kRegisterMr);
  EXPECT_EQ(control.commands_executed(), 2u);
}

TEST(VirtioTest, ShmWindowsAreDisjoint) {
  ShmRegion shm(1_MiB);
  auto a = shm.map(Hpa{0x1000}, kPage4K);
  auto b = shm.map(Hpa{0x9000}, kPage4K);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(shm.translate(a.value()).value(), Hpa{0x1000});
  EXPECT_EQ(shm.translate(b.value()).value(), Hpa{0x9000});
  EXPECT_EQ(shm.window_count(), 2u);
  ASSERT_TRUE(shm.unmap(a.value()).is_ok());
  EXPECT_FALSE(shm.translate(a.value()).is_ok());
}

TEST(VirtioTest, ShmExhaustion) {
  ShmRegion shm(2 * kPage4K);
  ASSERT_TRUE(shm.map(Hpa{0}, kPage4K).is_ok());
  ASSERT_TRUE(shm.map(Hpa{0}, kPage4K).is_ok());
  EXPECT_EQ(shm.map(Hpa{0}, kPage4K).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(RuntimeTest, StartupOrderingAcrossModes) {
  RnicConfig rnic;
  IommuConfig iommu;
  HypervisorConfig hyp;
  const std::uint64_t mem = 256_GiB;
  const auto vfio =
      container_startup_cost(VirtMode::kSriovVfio, mem, rnic, iommu, hyp);
  const auto masq =
      container_startup_cost(VirtMode::kHyvMasq, mem, rnic, iommu, hyp);
  const auto vstellar =
      container_startup_cost(VirtMode::kVStellar, mem, rnic, iommu, hyp);
  const auto bare =
      container_startup_cost(VirtMode::kBareMetal, mem, rnic, iommu, hyp);

  // vStellar: no pin, cheap device; HyV/MasQ still pin; VFIO pins too.
  EXPECT_EQ(vstellar.memory_pin, SimTime::zero());
  EXPECT_GT(masq.memory_pin.sec(), 50.0);
  EXPECT_GT(vfio.memory_pin.sec(), 50.0);
  EXPECT_LT(vstellar.total().sec(), masq.total().sec() / 3);
  EXPECT_LT(vstellar.total().sec(), vfio.total().sec() / 3);
  EXPECT_EQ(bare.total(), SimTime::zero());
  // Device provisioning: vStellar matches MasQ (~1.5 s, §4).
  EXPECT_EQ(vstellar.device_provision, masq.device_provision);
  EXPECT_NEAR(vstellar.device_provision.sec(), 1.5, 0.01);
}

TEST(RuntimeTest, GdrModeMapping) {
  EXPECT_EQ(gdr_mode_for(VirtMode::kSriovVfio), GdrMode::kAtsAtc);
  EXPECT_EQ(gdr_mode_for(VirtMode::kHyvMasq), GdrMode::kRcRouted);
  EXPECT_EQ(gdr_mode_for(VirtMode::kVStellar), GdrMode::kEmtt);
  EXPECT_EQ(gdr_mode_for(VirtMode::kBareMetal), GdrMode::kEmtt);
}

TEST(RuntimeTest, ModeNames) {
  EXPECT_STREQ(virt_mode_name(VirtMode::kSriovVfio), "SR-IOV/VFIO");
  EXPECT_STREQ(virt_mode_name(VirtMode::kHyvMasq), "HyV/MasQ");
  EXPECT_STREQ(virt_mode_name(VirtMode::kVStellar), "vStellar");
  EXPECT_STREQ(virt_mode_name(VirtMode::kBareMetal), "bare-metal");
}

}  // namespace
}  // namespace stellar
