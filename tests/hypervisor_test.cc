#include "virt/hypervisor.h"

#include <gtest/gtest.h>

#include "virt/runtime.h"

namespace stellar {
namespace {

HostPcieConfig big_host() {
  HostPcieConfig cfg;
  cfg.main_memory_bytes = 4ull << 40;  // 4 TiB host
  return cfg;
}

TEST(HypervisorTest, PinAllBootIsMinuteScaleFor1600GB) {
  HostPcie pcie(big_host());
  HypervisorConfig hcfg;
  hcfg.use_pvdma = false;
  Hypervisor hyp(pcie, hcfg);
  RundContainer container(1, "big", 1600ull * 1_GiB);
  auto report = hyp.boot_container(container);
  ASSERT_TRUE(report.is_ok());
  // The §3.1(2) observation: ~390 s of pinning dominates start-up.
  EXPECT_GT(report.value().pin_time.sec(), 300.0);
  EXPECT_GT(report.value().total.sec(), 300.0);
  // The whole guest is pinned up front.
  EXPECT_EQ(pcie.iommu().pinned_bytes(), 1600ull * 1_GiB);
}

TEST(HypervisorTest, PvdmaBootIsSecondsScale) {
  HostPcie pcie(big_host());
  HypervisorConfig hcfg;
  hcfg.use_pvdma = true;
  Hypervisor hyp(pcie, hcfg);
  RundContainer container(1, "big", 1600ull * 1_GiB);
  auto report = hyp.boot_container(container);
  ASSERT_TRUE(report.is_ok());
  EXPECT_EQ(report.value().pin_time, SimTime::zero());
  // "below 20 seconds in all cases" (Figure 6).
  EXPECT_LT(report.value().total.sec(), 25.0);
  EXPECT_EQ(pcie.iommu().pinned_bytes(), 0u);
}

TEST(HypervisorTest, BootSpeedupMatchesPaperScale) {
  auto boot_time = [](bool pvdma, std::uint64_t mem) {
    HostPcie pcie(big_host());
    HypervisorConfig hcfg;
    hcfg.use_pvdma = pvdma;
    Hypervisor hyp(pcie, hcfg);
    RundContainer container(1, "c", mem);
    return hyp.boot_container(container).value().total.sec();
  };
  const double speedup = boot_time(false, 1600ull * 1_GiB) /
                         boot_time(true, 1600ull * 1_GiB);
  // The paper reports up to 15x (abstract) / 30x (§4) depending on the
  // baseline; the model lands in that band.
  EXPECT_GT(speedup, 10.0);
  EXPECT_LT(speedup, 40.0);
}

TEST(HypervisorTest, DoubleBootRejected) {
  HostPcie pcie;
  Hypervisor hyp(pcie, {});
  RundContainer container(1, "c", 1_GiB);
  ASSERT_TRUE(hyp.boot_container(container).is_ok());
  EXPECT_EQ(hyp.boot_container(container).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(HypervisorTest, ShutdownReleasesBacking) {
  HostPcie pcie;
  Hypervisor hyp(pcie, {});
  RundContainer container(1, "c", 1_GiB);
  const std::uint64_t before = pcie.main_memory().used_bytes();
  ASSERT_TRUE(hyp.boot_container(container).is_ok());
  EXPECT_EQ(pcie.main_memory().used_bytes(), before + 1_GiB);
  ASSERT_TRUE(hyp.shutdown_container(container).is_ok());
  EXPECT_EQ(pcie.main_memory().used_bytes(), before);
  EXPECT_FALSE(container.booted());
  EXPECT_EQ(hyp.shutdown_container(container).code(), StatusCode::kNotFound);
}

TEST(HypervisorTest, OversizedContainerFailsCleanly) {
  HostPcieConfig cfg;
  cfg.main_memory_bytes = 2_GiB;
  HostPcie pcie(cfg);
  Hypervisor hyp(pcie, {});
  RundContainer container(1, "huge", 8_GiB);
  EXPECT_EQ(hyp.boot_container(container).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_FALSE(container.booted());
}

// ---------------------------------------------------------------------------
// Jittered pin-retry backoff
// ---------------------------------------------------------------------------

// Boot one guest per hypervisor on a shared-size host and capture the
// completion time of a retried pin that spent `pressure` stuck behind
// injected resource pressure.
SimTime retry_completion_time(Hypervisor& hyp, Simulator& sim, VmId vm,
                              RundContainer& container, SimTime pressure) {
  EXPECT_TRUE(hyp.boot_container(container).is_ok());
  auto gpa = container.alloc(2_MiB, kPage2M);
  EXPECT_TRUE(gpa.is_ok());
  hyp.pvdma(vm).set_resource_pressure(true);
  sim.schedule_after(pressure,
                     [&hyp, vm] { hyp.pvdma(vm).set_resource_pressure(false); });
  SimTime done_at = SimTime::zero();
  hyp.prepare_dma_with_retry(sim, vm, gpa.value(), 2_MiB,
                             [&](StatusOr<Pvdma::MapResult> result) {
                               EXPECT_TRUE(result.is_ok())
                                   << result.status().to_string();
                               done_at = sim.now();
                             });
  sim.run();
  return done_at;
}

TEST(HypervisorTest, JitterDesynchronizesRetryingGuests) {
  // Two guests with identical layouts hit the same pressure window. With
  // jitter on (default), their retry schedules decorrelate: the pins clear
  // at different instants instead of stampeding together.
  Simulator sim;
  HostPcie pcie1(big_host()), pcie2(big_host());
  Hypervisor h1(pcie1), h2(pcie2);
  RundContainer c1(1, "g1", 4ull << 30), c2(2, "g2", 4ull << 30);
  const SimTime pressure = SimTime::micros(300);
  const SimTime t1 = retry_completion_time(h1, sim, 1, c1, pressure);
  Simulator sim2;
  const SimTime t2 = retry_completion_time(h2, sim2, 2, c2, pressure);
  EXPECT_GT(t1, pressure);
  EXPECT_GT(t2, pressure);
  EXPECT_NE(t1, t2) << "jittered guests retried in lock-step";
  EXPECT_GT(h1.pin_retries(), 0u);
}

TEST(HypervisorTest, ZeroJitterRestoresSynchronizedBackoff) {
  // jitter = 0 is the documented escape hatch back to the old synchronized
  // exponential schedule: identical guests complete at the identical tick.
  HypervisorConfig hcfg;
  hcfg.pin_retry.jitter = 0.0;
  Simulator sim;
  HostPcie pcie1(big_host()), pcie2(big_host());
  Hypervisor h1(pcie1, hcfg), h2(pcie2, hcfg);
  RundContainer c1(1, "g1", 4ull << 30), c2(2, "g2", 4ull << 30);
  const SimTime pressure = SimTime::micros(300);
  const SimTime t1 = retry_completion_time(h1, sim, 1, c1, pressure);
  Simulator sim2;
  const SimTime t2 = retry_completion_time(h2, sim2, 2, c2, pressure);
  EXPECT_EQ(t1, t2);
}

TEST(HypervisorTest, JitteredScheduleIsDeterministicAcrossRuns) {
  // Same seed, same guest, same pressure: the jittered completion time is
  // bit-identical run to run — randomized but reproducible.
  auto once = [] {
    Simulator sim;
    HostPcie pcie(big_host());
    Hypervisor hyp(pcie);
    RundContainer c(1, "g", 4ull << 30);
    return retry_completion_time(hyp, sim, 1, c, SimTime::micros(300));
  };
  EXPECT_EQ(once(), once());
}

TEST(VirtioTest, ControlPathLatencyAndCount) {
  VirtioControlPath control;
  const SimTime t = control.execute(ControlCommand::kCreateQp);
  EXPECT_GT(t, SimTime::micros(10));
  EXPECT_LT(t, SimTime::micros(100));
  control.execute(ControlCommand::kRegisterMr);
  EXPECT_EQ(control.commands_executed(), 2u);
}

TEST(VirtioTest, ShmWindowsAreDisjoint) {
  ShmRegion shm(1_MiB);
  auto a = shm.map(Hpa{0x1000}, kPage4K);
  auto b = shm.map(Hpa{0x9000}, kPage4K);
  ASSERT_TRUE(a.is_ok() && b.is_ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(shm.translate(a.value()).value(), Hpa{0x1000});
  EXPECT_EQ(shm.translate(b.value()).value(), Hpa{0x9000});
  EXPECT_EQ(shm.window_count(), 2u);
  ASSERT_TRUE(shm.unmap(a.value()).is_ok());
  EXPECT_FALSE(shm.translate(a.value()).is_ok());
}

TEST(VirtioTest, ShmExhaustion) {
  ShmRegion shm(2 * kPage4K);
  ASSERT_TRUE(shm.map(Hpa{0}, kPage4K).is_ok());
  ASSERT_TRUE(shm.map(Hpa{0}, kPage4K).is_ok());
  EXPECT_EQ(shm.map(Hpa{0}, kPage4K).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(RuntimeTest, StartupOrderingAcrossModes) {
  RnicConfig rnic;
  IommuConfig iommu;
  HypervisorConfig hyp;
  const std::uint64_t mem = 256_GiB;
  const auto vfio =
      container_startup_cost(VirtMode::kSriovVfio, mem, rnic, iommu, hyp);
  const auto masq =
      container_startup_cost(VirtMode::kHyvMasq, mem, rnic, iommu, hyp);
  const auto vstellar =
      container_startup_cost(VirtMode::kVStellar, mem, rnic, iommu, hyp);
  const auto bare =
      container_startup_cost(VirtMode::kBareMetal, mem, rnic, iommu, hyp);

  // vStellar: no pin, cheap device; HyV/MasQ still pin; VFIO pins too.
  EXPECT_EQ(vstellar.memory_pin, SimTime::zero());
  EXPECT_GT(masq.memory_pin.sec(), 50.0);
  EXPECT_GT(vfio.memory_pin.sec(), 50.0);
  EXPECT_LT(vstellar.total().sec(), masq.total().sec() / 3);
  EXPECT_LT(vstellar.total().sec(), vfio.total().sec() / 3);
  EXPECT_EQ(bare.total(), SimTime::zero());
  // Device provisioning: vStellar matches MasQ (~1.5 s, §4).
  EXPECT_EQ(vstellar.device_provision, masq.device_provision);
  EXPECT_NEAR(vstellar.device_provision.sec(), 1.5, 0.01);
}

TEST(RuntimeTest, GdrModeMapping) {
  EXPECT_EQ(gdr_mode_for(VirtMode::kSriovVfio), GdrMode::kAtsAtc);
  EXPECT_EQ(gdr_mode_for(VirtMode::kHyvMasq), GdrMode::kRcRouted);
  EXPECT_EQ(gdr_mode_for(VirtMode::kVStellar), GdrMode::kEmtt);
  EXPECT_EQ(gdr_mode_for(VirtMode::kBareMetal), GdrMode::kEmtt);
}

TEST(RuntimeTest, ModeNames) {
  EXPECT_STREQ(virt_mode_name(VirtMode::kSriovVfio), "SR-IOV/VFIO");
  EXPECT_STREQ(virt_mode_name(VirtMode::kHyvMasq), "HyV/MasQ");
  EXPECT_STREQ(virt_mode_name(VirtMode::kVStellar), "vStellar");
  EXPECT_STREQ(virt_mode_name(VirtMode::kBareMetal), "bare-metal");
}

}  // namespace
}  // namespace stellar
